// Command resccl-analyzers is a `go vet -vettool` backend enforcing the
// repository's static contracts (see internal/analyzers):
//
//   - determinism: the packages that must produce byte-identical traces
//     across runs — internal/sim, internal/sched, internal/obs — may
//     not read the host clock, draw from the global math/rand source,
//     or iterate maps;
//   - concurrency: the packages hosting cancellable work and locks —
//     internal/serve, internal/backend, internal/tune, internal/bench —
//     must propagate caller contexts (ctxflow), keep a consistent
//     mutex acquisition order (lockorder), and give every goroutine a
//     join or cancellation path (goleak).
//
// Usage:
//
//	go build -o resccl-analyzers ./cmd/resccl-analyzers
//	go vet -vettool=./resccl-analyzers ./...
//
// The tool speaks the cmd/vet unit-checker protocol directly with the
// standard library, so it carries no dependency on an external analysis
// framework:
//
//   - `resccl-analyzers -V=full` prints a version fingerprint (used by
//     the build cache);
//   - `resccl-analyzers -flags` prints the JSON list of tool flags
//     (none);
//   - `resccl-analyzers path/to/vet.cfg` analyzes one package: the cfg
//     names the package's Go files and maps each import to the compiled
//     export data of its dependencies, which go/importer reads for
//     type-checking.
//
// Findings are printed to stderr as file:line:col: message and the tool
// exits 2, which `go vet` reports as a failure. Packages outside every
// analyzer's scope type-check trivially to an empty result.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"github.com/resccl/resccl/internal/analyzers"
)

// vetConfig mirrors the fields of the vet.cfg JSON file that cmd/go
// writes for each package when invoking a vet tool.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func main() {
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			// The version string feeds go's build cache key; bump it when
			// the analyzers change behaviour.
			fmt.Println("resccl-analyzers version 2")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) != 2 || !strings.HasSuffix(os.Args[1], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: resccl-analyzers vet.cfg (invoke via go vet -vettool)\n")
		os.Exit(1)
	}
	n, err := run(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "resccl-analyzers:", err)
		os.Exit(1)
	}
	if n > 0 {
		os.Exit(2)
	}
}

// run analyzes the package described by the cfg file and returns the
// number of findings printed.
func run(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// go vet expects every invocation to leave a "facts" file behind for
	// downstream packages, even an empty one.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || !analyzers.Covered(cfg.ImportPath) {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The contract covers production code; tests may use wall time
		// and ad-hoc iteration for reporting.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, nil
	}

	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
			mapped, ok := cfg.ImportMap[path]
			if !ok {
				mapped = path
			}
			file, ok := cfg.PackageFile[mapped]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		Sizes: types.SizesFor(compiler, runtime.GOARCH),
	}
	if _, err := conf.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	ds := analyzers.RunAll(cfg.ImportPath, fset, files, info)
	for _, d := range ds {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s\n", pos, d.Message)
	}
	return len(ds), nil
}
