package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles this command into a temp dir and returns the binary
// path.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ressclc")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeCompile runs the compiler end to end on the shipped ring
// AllReduce program: exit 0, non-empty report, correctness verified.
func TestSmokeCompile(t *testing.T) {
	bin := buildCmd(t)
	src := filepath.Join("..", "..", "examples", "algorithms", "ring-allreduce.rcl")
	out, err := exec.Command(bin, "-in", src, "-nodes", "1", "-gpus", "8").CombinedOutput()
	if err != nil {
		t.Fatalf("ressclc failed: %v\n%s", err, out)
	}
	s := string(out)
	if len(strings.TrimSpace(s)) == 0 {
		t.Fatal("empty output")
	}
	for _, want := range []string{"Ring-AR", "verified", "schedule:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestSmokeSimulateAndExecute exercises the -simulate and -execute
// paths, which drive the simulator and the data-plane runtime.
func TestSmokeSimulateAndExecute(t *testing.T) {
	bin := buildCmd(t)
	src := filepath.Join("..", "..", "examples", "algorithms", "ring-allreduce.rcl")
	out, err := exec.Command(bin, "-in", src, "-nodes", "1", "-gpus", "8",
		"-simulate", "16MiB", "-execute", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("ressclc failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "simulation") && !strings.Contains(string(out), "completion") {
		t.Fatalf("no simulation output:\n%s", out)
	}
}

// TestSmokePlanRoundTrip saves a plan file and loads it back.
func TestSmokePlanRoundTrip(t *testing.T) {
	bin := buildCmd(t)
	src := filepath.Join("..", "..", "examples", "algorithms", "ring-allreduce.rcl")
	plan := filepath.Join(t.TempDir(), "plan.json")
	if out, err := exec.Command(bin, "-in", src, "-nodes", "1", "-gpus", "8", "-out", plan).CombinedOutput(); err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	if fi, err := os.Stat(plan); err != nil || fi.Size() == 0 {
		t.Fatalf("plan file missing or empty: %v", err)
	}
	out, err := exec.Command(bin, "-plan", plan, "-simulate", "16MiB").CombinedOutput()
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) == 0 {
		t.Fatal("empty output from loaded plan")
	}
}
