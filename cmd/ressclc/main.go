// Command ressclc is the ResCCL offline compiler: it reads a ResCCLang
// program, runs the full backend-optimization workflow (dependency
// analysis, HPDS scheduling, state-based TB allocation, kernel
// lowering), verifies the algorithm's collective semantics on the data
// plane, and reports the compiled plan.
//
// Usage:
//
//	ressclc -in algo.rcl -nodes 2 -gpus 8 [-policy hpds|rr|seq]
//	        [-alloc state|conn] [-dump-kernel] [-simulate 1GiB]
//	ressclc -list-algos
//	ressclc -algo hm-allreduce -nodes 2 -gpus 8 -simulate 1GiB
//	ressclc -algo hm-allreduce -nodes 2 -gpus 8 -vet [-strict]
//	        [-budget 32] [-max-gap 150] [-cert-out cert.json]
//	ressclc -tune -nodes 2 -gpus 8 -out dispatch.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/analyze/cert"
	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/rt"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/trace"
	"github.com/resccl/resccl/internal/tune"
)

func main() {
	var (
		in       = flag.String("in", "", "ResCCLang source file (required)")
		nodes    = flag.Int("nodes", 2, "number of servers")
		gpus     = flag.Int("gpus", 8, "GPUs per server")
		profile  = flag.String("profile", "a100", "hardware profile: a100 or v100")
		fabric   = flag.String("topology", "flat", "inter-node fabric: flat (single switch), clos (leaf/spine) or rail (rail-optimized)")
		spines   = flag.Int("spines", 4, "number of spine switches for -topology clos/rail")
		policy   = flag.String("policy", "hpds", "scheduling policy: hpds, rr or seq")
		alloc    = flag.String("alloc", "state", "TB allocation: state or conn")
		dump     = flag.Bool("dump-kernel", false, "print the generated kernel's TB programs")
		simulate = flag.String("simulate", "", "simulate execution with the given per-rank buffer (e.g. 256MiB, 1GiB)")
		timeline = flag.Bool("timeline", false, "with -simulate: draw an ASCII Gantt chart of TB activity (first 2 ranks)")
		execRT   = flag.Int("execute", 0, "run the kernel on the concurrent data-plane runtime with N micro-batches and verify the result")
		out      = flag.String("out", "", "write the compiled plan (kernel + topology) to this JSON file")
		analyze  = flag.String("analyze", "", "print the Eq. 3-5 strategy estimates for the given per-rank buffer (e.g. 1GiB)")
		planIn   = flag.String("plan", "", "load a previously compiled plan file instead of compiling -in")
		algoName = flag.String("algo", "", "compile a registered expert algorithm by name instead of a DSL file (see -list-algos)")
		listAlgo = flag.Bool("list-algos", false, "list the expert algorithm registry and exit")
		vetMode  = flag.Bool("vet", false, "statically analyze the compiled plan (deadlock, hazard, feasibility, dead-code and resource-budget lints) and exit: 0 clean or warnings only, 3 errors (any diagnostic with -strict)")
		strict   = flag.Bool("strict", false, "with -vet: promote warnings to errors, so any diagnostic exits 3 (CI gates)")
		budgetTB = flag.Int("budget", 0, "with -vet: SM/channel budget — the max concurrently active thread blocks per rank before the budget-tb lint fires (0 = default 32)")
		maxGap   = flag.Float64("max-gap", 0, "with -vet: certify the plan and warn when its optimality gap exceeds this percentage above the α–β lower bound (0 disables)")
		certOut  = flag.String("cert-out", "", "with -vet: certify the plan at 64 MiB and write the resource-efficiency certificate JSON to this path ('-' for stdout)")
		tuneMode = flag.Bool("tune", false, "run the autotuning sweep on the -nodes/-gpus topology and emit a dispatch table (JSON to -out, or stdout)")
		quick    = flag.Bool("quick", false, "with -tune: shrink the sweep grid and search effort for a fast smoke run")
		seed     = flag.Int64("seed", 1, "with -tune: search seed; the same topology and seed emit byte-identical tables")
	)
	flag.Parse()
	if *listAlgo {
		fmt.Println("registered expert algorithms:")
		for _, b := range expert.Registry() {
			params := "nRanks"
			if b.NParams == 2 {
				params = "nNodes, gpusPerNode"
			}
			fmt.Printf("  %-24s %v(%s)\n", b.Name, b.Op, params)
		}
		return
	}
	if *planIn != "" {
		if *vetMode {
			f, err := os.Open(*planIn)
			if err != nil {
				fatal(err)
			}
			k, ktp, err := kernel.Load(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			vetPlan(k, ktp, vetConfig{strict: *strict, budgetTB: *budgetTB, maxGap: *maxGap, certOut: *certOut})
			return
		}
		runLoadedPlan(*planIn, *simulate, *timeline, *execRT)
		return
	}
	if *in == "" && *algoName == "" && !*tuneMode {
		flag.Usage()
		os.Exit(2)
	}
	var src []byte
	if *in != "" {
		var err error
		src, err = os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
	}

	var prof topo.Profile
	switch strings.ToLower(*profile) {
	case "a100":
		prof = topo.A100()
	case "v100":
		prof = topo.V100()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	var tp *topo.Topology
	switch strings.ToLower(*fabric) {
	case "flat":
		tp = topo.New(*nodes, *gpus, prof)
	case "clos":
		tp = topo.NewClos(*nodes, *gpus, prof, *spines)
	case "rail":
		tp = topo.NewRail(*nodes, *gpus, prof, *spines)
	default:
		fatal(fmt.Errorf("unknown topology %q (flat, clos or rail)", *fabric))
	}

	opts := core.Options{}
	switch strings.ToLower(*policy) {
	case "hpds":
		opts.Policy = sched.PolicyHPDS
	case "rr":
		opts.Policy = sched.PolicyRR
	case "seq":
		opts.Policy = sched.PolicySequential
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	switch strings.ToLower(*alloc) {
	case "state":
		opts.Alloc = core.AllocStateBased
	case "conn":
		opts.Alloc = core.AllocConnectionBased
	default:
		fatal(fmt.Errorf("unknown allocation %q", *alloc))
	}

	if *tuneMode {
		if *in != "" || *algoName != "" {
			fatal(fmt.Errorf("-tune is mutually exclusive with -in and -algo"))
		}
		runTune(tp, *quick, *seed, *out)
		return
	}

	var c *core.Compiled
	if *algoName != "" {
		if *in != "" {
			fatal(fmt.Errorf("-in and -algo are mutually exclusive"))
		}
		b, ok := expert.Lookup(*algoName)
		if !ok {
			fatal(fmt.Errorf("unknown algorithm %q (see -list-algos)", *algoName))
		}
		params := []int{*nodes * *gpus}
		if b.NParams == 2 {
			params = []int{*nodes, *gpus}
		}
		algo, err := expert.Build(*algoName, params...)
		if err != nil {
			fatal(err)
		}
		c, err = core.Compile(context.Background(), algo, tp, opts)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		c, err = core.CompileDSL(context.Background(), string(src), tp, opts)
		if err != nil {
			fatal(err)
		}
	}

	if *vetMode {
		vetPlan(c.Kernel, tp, vetConfig{strict: *strict, budgetTB: *budgetTB, maxGap: *maxGap, certOut: *certOut})
		return
	}

	fmt.Printf("algorithm:      %s (%v, %d ranks, %d transfers)\n",
		c.Algo.Name, c.Algo.Op, c.Algo.NRanks, len(c.Algo.Transfers))
	fmt.Printf("topology:       %s\n", tp)
	fmt.Printf("correctness:    data-plane %v postcondition verified\n", c.Algo.Op)
	fmt.Printf("schedule:       %v, %d tasks in %d sub-pipelines\n",
		opts.Policy, c.Graph.NTasks(), c.Pipeline.NSubs())
	fmt.Printf("allocation:     %v, %d TBs total, max %d per GPU\n",
		opts.Alloc, c.Kernel.NTBs(), c.Kernel.MaxTBsPerRank())
	fmt.Printf("phases:         parse %v, analyze %v, schedule %v, alloc %v, lower %v (total %v)\n",
		c.Phases.Parse, c.Phases.Analyze, c.Phases.Schedule, c.Phases.Alloc, c.Phases.Lower, c.Phases.Total())

	if *analyze != "" {
		buf, err := parseSize(*analyze)
		if err != nil {
			fatal(err)
		}
		est, err := core.EstimateStrategies(c.Graph, buf, 1<<20)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("strategy est.:  %s\n", est)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := kernel.Save(c.Kernel, tp, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("plan:           written to %s\n", *out)
	}
	if *dump {
		dumpKernel(c.Kernel)
	}
	if *simulate != "" {
		buf, err := parseSize(*simulate)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Topo: tp, Kernel: c.Kernel, BufferBytes: buf, ChunkBytes: 1 << 20,
			RecordTimeline: *timeline,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simulation:     %s per rank in %.3f ms → %.1f GB/s algorithm bandwidth (%d micro-batches, link util %.1f%%)\n",
			*simulate, res.Completion*1e3, res.AlgoBW/1e9, res.Plan.NMicroBatches, 100*res.MeanLinkUtilization())
		if *timeline {
			fmt.Println()
			fmt.Print(trace.RenderTimeline(res, 100, 2))
		}
	}
	if *execRT > 0 {
		res, err := rt.Execute(rt.Config{Kernel: c.Kernel, MicroBatches: *execRT})
		if err != nil {
			fatal(err)
		}
		if err := res.Verify(); err != nil {
			fatal(err)
		}
		fmt.Printf("runtime:        %d TB goroutines executed %d invocations in %v; all %d micro-batches verified\n",
			c.Kernel.NTBs(), res.Instances, res.Elapsed.Round(time.Microsecond), *execRT)
	}
}

// runTune sweeps the topology and writes the emitted dispatch table:
// JSON to outPath when given, stdout otherwise (summary on stderr so
// the JSON stays pipeable).
func runTune(tp *topo.Topology, quick bool, seed int64, outPath string) {
	start := time.Now()
	res, err := tune.Sweep(context.Background(), tp, tune.Options{Quick: quick, Parallel: true, Seed: seed})
	if err != nil {
		fatal(err)
	}
	data, err := res.Table.MarshalJSON()
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	summary := fmt.Sprintf("tuned %s: %d cells measured, %d dispatch entries, hash %s… (%v)",
		tp, len(res.Cells), len(res.Table.Entries), res.Table.Hash()[:12],
		time.Since(start).Round(time.Millisecond))
	if outPath == "" {
		os.Stdout.Write(data)
		fmt.Fprintln(os.Stderr, summary)
		return
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("dispatch table: written to %s\n", outPath)
	fmt.Println(summary)
}

// runLoadedPlan loads a serialized plan and simulates/executes it.
func runLoadedPlan(path, simulate string, timeline bool, execRT int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	k, tp, err := kernel.Load(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan:           %s (%s mode, %d TBs) on %s\n", k.Name, k.Mode, k.NTBs(), tp)
	if simulate != "" {
		buf, err := parseSize(simulate)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(sim.Config{Topo: tp, Kernel: k, BufferBytes: buf, ChunkBytes: 1 << 20, RecordTimeline: timeline})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simulation:     %s per rank in %.3f ms → %.1f GB/s algorithm bandwidth\n",
			simulate, res.Completion*1e3, res.AlgoBW/1e9)
		if timeline {
			fmt.Print(trace.RenderTimeline(res, 100, 2))
		}
	}
	if execRT > 0 {
		res, err := rt.Execute(rt.Config{Kernel: k, MicroBatches: execRT})
		if err != nil {
			fatal(err)
		}
		if err := res.Verify(); err != nil {
			fatal(err)
		}
		fmt.Printf("runtime:        %d invocations verified across %d micro-batches\n", res.Instances, execRT)
	}
}

func dumpKernel(k *kernel.Kernel) {
	fmt.Println("kernel:")
	for _, tb := range k.TBs {
		fmt.Printf("  TB %3d rank %2d (%s) %s, %d slots:\n", tb.ID, tb.Rank, tb.Label, tb.Order, len(tb.Slots))
		for _, p := range tb.Slots {
			fmt.Printf("    %v\n", p)
		}
	}
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GIB"), strings.HasSuffix(upper, "GB"):
		mult = 1 << 30
		s = s[:strings.IndexAny(upper, "Gg")]
	case strings.HasSuffix(upper, "MIB"), strings.HasSuffix(upper, "MB"):
		mult = 1 << 20
		s = s[:strings.IndexAny(upper, "Mm")]
	case strings.HasSuffix(upper, "KIB"), strings.HasSuffix(upper, "KB"):
		mult = 1 << 10
		s = s[:strings.IndexAny(upper, "Kk")]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// vetConfig carries the -vet mode's resource-certification knobs.
type vetConfig struct {
	strict   bool
	budgetTB int
	maxGap   float64
	certOut  string
}

// vetPlan runs the full static analysis suite — plus the
// resource-budget lints and, when requested, full certification — over
// a compiled plan and exits with the vet convention: 0 when the plan is
// clean or carries only warnings, 3 when any error fired (-strict
// promotes warnings to errors). Operational failures keep the
// compiler's usual exit 1.
func vetPlan(k *kernel.Kernel, tp *topo.Topology, cfg vetConfig) {
	r, err := analyze.Plan(k, analyze.Options{})
	if err != nil {
		fatal(err)
	}
	if tp != nil {
		copts := cert.Options{Budget: cert.Budget{MaxTBsPerRank: cfg.budgetTB}}
		r.Attach(k.Graph, cert.BudgetLints(k, tp, copts)...)
		if cfg.maxGap > 0 || cfg.certOut != "" {
			crt, err := cert.Certify(k, tp, copts)
			if err != nil {
				fatal(err)
			}
			r.Attach(k.Graph, cert.GapLint(crt, cfg.maxGap)...)
			if cfg.certOut != "" {
				data, err := crt.MarshalIndent()
				if err != nil {
					fatal(err)
				}
				data = append(data, '\n')
				if cfg.certOut == "-" {
					os.Stdout.Write(data)
				} else if err := os.WriteFile(cfg.certOut, data, 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	fmt.Print(r.String())
	errs, warns, _ := r.Counts()
	if cfg.strict {
		errs += warns
	}
	if errs > 0 {
		os.Exit(3)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ressclc:", err)
	os.Exit(1)
}
