package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ressclsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeTrain runs a small training simulation end to end: exit 0
// and one result row per backend.
func TestSmokeTrain(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-model", "t5-220m", "-nodes", "2", "-gpus", "2",
		"-dp", "4", "-batch", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("ressclsim failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"T5-220M", "NCCL", "MSCCL", "ResCCL", "samples/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestSmokeTrainFaulted sweeps the fault-rate flag: the faulted
// iteration must succeed, mention the injection, and be no faster than
// the clean one.
func TestSmokeTrainFaulted(t *testing.T) {
	bin := buildCmd(t)
	args := []string{"-model", "t5-220m", "-nodes", "2", "-gpus", "2",
		"-dp", "4", "-batch", "4", "-backend", "resccl"}
	clean, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("clean run failed: %v\n%s", err, clean)
	}
	faulted, err := exec.Command(bin, append(args, "-fault-rate", "6", "-fault-seed", "3")...).CombinedOutput()
	if err != nil {
		t.Fatalf("faulted run failed: %v\n%s", err, faulted)
	}
	if !strings.Contains(string(faulted), "fault events") {
		t.Fatalf("faulted run does not report injection:\n%s", faulted)
	}
	cleanTP := lastSamplesPerSec(t, string(clean))
	faultTP := lastSamplesPerSec(t, string(faulted))
	if faultTP > cleanTP*1.001 {
		t.Fatalf("faults sped training up: %v vs clean %v", faultTP, cleanTP)
	}
}

// lastSamplesPerSec parses the final column of the last result row.
func lastSamplesPerSec(t *testing.T, out string) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	if len(fields) == 0 {
		t.Fatalf("no result row in output:\n%s", out)
	}
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("cannot parse throughput from %q: %v", fields[len(fields)-1], err)
	}
	return v
}
