// Command ressclsim runs the end-to-end distributed-training simulation
// (§5.5): a Megatron-style GPT-3 or T5 deployment whose collectives are
// served by the selected backend.
//
// Usage:
//
//	ressclsim -model gpt3-13b -nodes 2 -gpus 8 -tp 8 -batch 16
//	ressclsim -model t5-3b -nodes 2 -gpus 8 -dp 16 -batch 16 -backend all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/train"
)

var models = map[string]train.ModelConfig{
	"t5-220m":   train.T5_220M,
	"t5-770m":   train.T5_770M,
	"t5-3b":     train.T5_3B,
	"gpt3-6.7b": train.GPT3_6_7B,
	"gpt3-13b":  train.GPT3_13B,
	"gpt3-22b":  train.GPT3_22B,
	"gpt3-45b":  train.GPT3_45B,
}

func main() {
	var (
		model = flag.String("model", "gpt3-13b", "model: t5-{220m,770m,3b} or gpt3-{6.7b,13b,22b,45b}")
		nodes = flag.Int("nodes", 2, "number of servers")
		gpus  = flag.Int("gpus", 8, "GPUs per server")
		tp    = flag.Int("tp", 0, "tensor-parallel width (default: 8 for GPT-3, 1 for T5)")
		dp    = flag.Int("dp", 0, "data-parallel width (default: fills remaining GPUs)")
		batch = flag.Int("batch", 16, "global batch size")
		bk    = flag.String("backend", "all", "backend: resccl, nccl, msccl or all")
		proto = flag.String("protocol", "auto", "force a transport protocol tier on every collective: auto, ll, ll128 or simple")
		frate = flag.Int("fault-rate", 0, "inject N seeded fault events per collective (0 = none)")
		fseed = flag.Int64("fault-seed", 1, "seed for the injected fault schedule")
		fspec = flag.String("fault-spec", "", "JSON fault-schedule file (see docs/faults.md); mutually exclusive with -fault-rate")
		tout  = flag.String("trace-out", "", "write a Chrome trace-event JSON of every simulated collective to this path (open in Perfetto; see docs/observability.md)")
		mout  = flag.String("metrics-json", "", "write the counters/gauges registry as JSON to this path")
		cpup  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path")
		memp  = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this path")
	)
	flag.Parse()
	if *cpup != "" {
		f, err := os.Create(*cpup)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memp != "" {
		defer func() {
			f, err := os.Create(*memp)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	m, ok := models[strings.ToLower(*model)]
	if !ok {
		keys := make([]string, 0, len(models))
		for k := range models {
			keys = append(keys, k)
		}
		fatal(fmt.Errorf("unknown model %q (known: %s)", *model, strings.Join(keys, ", ")))
	}
	width := *tp
	if width == 0 {
		if strings.HasPrefix(strings.ToLower(*model), "gpt") {
			width = *gpus
		} else {
			width = 1
		}
	}
	depth := *dp
	if depth == 0 {
		depth = (*nodes) * (*gpus) / width
	}
	protocol, err := ir.ParseProtocol(*proto)
	if err != nil {
		fatal(err)
	}
	cfg := train.Config{
		Model: m, GlobalBatch: *batch,
		TP: width, DP: depth, NNodes: *nodes, GPN: *gpus,
		FaultRate: *frate, FaultSeed: *fseed,
		Protocol: protocol,
	}
	if *tout != "" {
		cfg.Trace = obs.NewTrace()
	}
	if *mout != "" {
		cfg.Metrics = obs.NewMetrics()
	}
	if *fspec != "" {
		if *frate > 0 {
			fatal(fmt.Errorf("-fault-spec and -fault-rate are mutually exclusive"))
		}
		data, err := os.ReadFile(*fspec)
		if err != nil {
			fatal(err)
		}
		// Spec resource IDs name the full cluster topology; thread-block
		// bounds are checked later by the simulator against each compiled
		// kernel.
		cluster := topo.New(*nodes, *gpus, topo.A100())
		sched, err := fault.ParseSchedule(data, cluster, 0)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *fspec, err))
		}
		cfg.Faults = sched
	}

	var bks []backend.Backend
	switch strings.ToLower(*bk) {
	case "all":
		bks = []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()}
	case "resccl":
		bks = []backend.Backend{backend.NewResCCL()}
	case "nccl":
		bks = []backend.Backend{backend.NewNCCL()}
	case "msccl":
		bks = []backend.Backend{backend.NewMSCCL()}
	default:
		fatal(fmt.Errorf("unknown backend %q", *bk))
	}

	fmt.Printf("%s on %d×%d GPUs, TP=%d DP=%d, batch %d", m.Name, *nodes, *gpus, width, depth, *batch)
	if *frate > 0 {
		fmt.Printf(", %d fault events/collective (seed %d)", *frate, *fseed)
	}
	if cfg.Faults != nil {
		fmt.Printf(", %d fault events from %s", len(cfg.Faults.Events), *fspec)
	}
	fmt.Printf("\n\n")
	fmt.Printf("%-8s %11s %12s %12s %12s %9s %8s %12s\n",
		"backend", "iter (ms)", "compute (ms)", "tp-comm (ms)", "dp-comm (ms)", "sm (ms)", "TB/GPU", "samples/s")
	for _, b := range bks {
		res, err := train.Simulate(cfg, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %11.1f %12.1f %12.1f %12.1f %9.1f %8d %12.2f\n",
			res.Backend, res.IterTime*1e3, res.Compute*1e3, res.TPComm*1e3, res.DPComm*1e3,
			res.SMPenalty*1e3, res.CommTBs, res.Throughput)
	}

	if *tout != "" {
		// Host spans are excluded by default, so the file depends only on
		// simulated time: two runs of the same command are byte-identical.
		if err := writeFile(*tout, func(w io.Writer) error { return cfg.Trace.WriteChrome(w) }); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *tout)
	}
	if *mout != "" {
		if err := writeFile(*mout, cfg.Metrics.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *mout)
	}
}

// writeFile streams render into path.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ressclsim:", err)
	os.Exit(1)
}
