// Command ressclbench regenerates the paper's evaluation tables and
// figures from the simulated system.
//
// Usage:
//
//	ressclbench -list
//	ressclbench -exp fig6
//	ressclbench -exp all [-quick] [-parallel] [-workers N]
//	ressclbench -exp all -quick -bench-json BENCH_run.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/bench"
)

// perfExperiment is one experiment's slice of a perf record.
type perfExperiment struct {
	ID          string  `json:"id"`
	WallMS      float64 `json:"wall_ms"`
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	SimEvents   int64   `json:"sim_events"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

// perfRecord is the machine-readable output of -bench-json. Records are
// committed as BENCH_*.json files so perf regressions show up in review
// (see docs/performance.md).
type perfRecord struct {
	GeneratedBy  string           `json:"generated_by"`
	Quick        bool             `json:"quick"`
	Parallel     bool             `json:"parallel"`
	Workers      int              `json:"workers"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	TotalWallMS  float64          `json:"total_wall_ms"`
	SimEvents    int64            `json:"sim_events"`
	SimRuns      int64            `json:"sim_runs"`
	RTInstances  int64            `json:"rt_instances"`
	Replans      int64            `json:"replans"`
	EventsPerSec float64          `json:"events_per_sec"`
	CacheHits    int64            `json:"cache_hits"`
	CacheMisses  int64            `json:"cache_misses"`
	CacheEntries int              `json:"cache_entries"`
	CacheHitRate float64          `json:"cache_hit_rate"`
	Experiments  []perfExperiment `json:"experiments"`
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		quick     = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list      = flag.Bool("list", false, "list available experiments")
		format    = flag.String("format", "text", "output format: text, csv or markdown")
		parallel  = flag.Bool("parallel", false, "fan independent simulation cells across a worker pool (output is byte-identical to a serial run)")
		workers   = flag.Int("workers", 0, "worker pool size for -parallel; 0 means GOMAXPROCS")
		benchJSON = flag.String("bench-json", "", "write a machine-readable perf record (wall clock, sim events/sec, cache hit rate) to this path")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	// One plan cache and one counter set span all experiments, so
	// repeated compilations across figures are shared and the perf
	// record reflects the whole run.
	cache := backend.NewCache()
	stats := bench.NewStats()
	opts := bench.Options{
		Quick:    *quick,
		Parallel: *parallel,
		Workers:  *workers,
		Cache:    cache,
		Stats:    stats,
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, err := bench.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	rec := perfRecord{
		GeneratedBy: "ressclbench -bench-json",
		Quick:       *quick,
		Parallel:    *parallel,
		Workers:     *workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	suiteStart := time.Now()
	for _, e := range exps {
		start := time.Now()
		preStats := cache.Stats()
		preEvents := stats.SimEvents()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		postStats := cache.Stats()
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
			switch *format {
			case "csv":
				t.FprintCSV(os.Stdout)
			case "markdown", "md":
				t.FprintMarkdown(os.Stdout)
			default:
				t.Fprint(os.Stdout)
			}
		}
		hits := postStats.Hits - preStats.Hits
		misses := postStats.Misses - preStats.Misses
		if *format == "text" {
			fmt.Printf("[%s completed in %v; plan cache %d hits / %d misses]\n\n",
				e.ID, elapsed.Round(time.Millisecond), hits, misses)
		}
		rec.Experiments = append(rec.Experiments, perfExperiment{
			ID:          e.ID,
			WallMS:      float64(elapsed.Microseconds()) / 1e3,
			Tables:      len(tables),
			Rows:        rows,
			SimEvents:   stats.SimEvents() - preEvents,
			CacheHits:   hits,
			CacheMisses: misses,
		})
	}

	if *benchJSON == "" {
		return
	}
	total := time.Since(suiteStart)
	st := cache.Stats()
	rec.TotalWallMS = float64(total.Microseconds()) / 1e3
	rec.SimEvents = stats.SimEvents()
	rec.SimRuns = stats.SimRuns()
	rec.RTInstances = stats.RTInstances()
	rec.Replans = stats.Replans()
	if s := total.Seconds(); s > 0 {
		rec.EventsPerSec = float64(stats.SimEvents()) / s
	}
	rec.CacheHits = st.Hits
	rec.CacheMisses = st.Misses
	rec.CacheEntries = st.Entries
	rec.CacheHitRate = st.HitRate()
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*benchJSON, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perf record written to %s\n", *benchJSON)
}
