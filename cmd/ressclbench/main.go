// Command ressclbench regenerates the paper's evaluation tables and
// figures from the simulated system.
//
// Usage:
//
//	ressclbench -list
//	ressclbench -exp fig6
//	ressclbench -exp all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/resccl/resccl/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list   = flag.Bool("list", false, "list available experiments")
		format = flag.String("format", "text", "output format: text, csv or markdown")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := bench.Options{Quick: *quick}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, err := bench.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			switch *format {
			case "csv":
				t.FprintCSV(os.Stdout)
			case "markdown", "md":
				t.FprintMarkdown(os.Stdout)
			default:
				t.Fprint(os.Stdout)
			}
		}
		if *format == "text" {
			fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
