// Command ressclbench regenerates the paper's evaluation tables and
// figures from the simulated system.
//
// Usage:
//
//	ressclbench -list
//	ressclbench -exp fig6
//	ressclbench -exp all [-quick] [-parallel] [-workers N]
//	ressclbench -exp all -quick -bench-json BENCH_run.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/bench"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/obs"
)

// startProfiles begins CPU profiling and arranges a heap snapshot,
// returning a stop function main must call before exiting (see
// docs/performance.md for the profiling workflow).
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		quick       = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list        = flag.Bool("list", false, "list available experiments")
		format      = flag.String("format", "text", "output format: text, csv or markdown")
		parallel    = flag.Bool("parallel", false, "fan independent simulation cells across a worker pool (output is byte-identical to a serial run)")
		workers     = flag.Int("workers", 0, "worker pool size for -parallel; 0 means GOMAXPROCS")
		protocol    = flag.String("protocol", "auto", "force a transport protocol tier on every compilation: auto, ll, ll128 or simple")
		benchJSON   = flag.String("bench-json", "", "write a machine-readable perf record (wall clock, sim events/sec, cache hit rate) to this path")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of every simulated cell to this path (forces a serial run for deterministic output)")
		metricsJSON = flag.String("metrics-json", "", "write the counters/gauges registry as JSON to this path")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this path")

		serveLoad     = flag.Bool("serve-load", false, "run the plan-service load generator instead of simulation experiments")
		serveURL      = flag.String("serve-url", "", "target a running ressclserve instance; empty self-hosts an in-process service")
		serveClients  = flag.Int("serve-clients", 8, "concurrent load-generator clients for -serve-load")
		serveTenants  = flag.Int("serve-tenants", 4, "distinct tenant IDs for -serve-load")
		serveRequests = flag.Int("serve-requests", 200, "total requests for -serve-load")
		serveWorkers  = flag.Int("serve-workers", 4, "compile slots of the self-hosted service for -serve-load")
	)
	flag.Parse()
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	if *serveLoad {
		runServeLoad(bench.ServeLoadOptions{
			URL:      *serveURL,
			Clients:  *serveClients,
			Tenants:  *serveTenants,
			Requests: *serveRequests,
			Workers:  *serveWorkers,
		}, *benchJSON)
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	// One plan cache and one counter set span all experiments, so
	// repeated compilations across figures are shared and the perf
	// record reflects the whole run.
	cache := backend.NewCache()
	stats := bench.NewStats()
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		// Timelines append in cell completion order; only a serial run
		// keeps that order (and the trace bytes) deterministic.
		*parallel = false
	}
	proto, err := ir.ParseProtocol(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := bench.Options{
		Quick:    *quick,
		Parallel: *parallel,
		Workers:  *workers,
		Cache:    cache,
		Stats:    stats,
		Trace:    tr,
		Protocol: proto,
		Ctx:      ctx,
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, err := bench.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	rec := bench.PerfRecord{
		GeneratedBy: "ressclbench -bench-json",
		Quick:       *quick,
		Parallel:    *parallel,
		Workers:     *workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	suiteStart := time.Now()
	for _, e := range exps {
		start := time.Now()
		preStats := cache.Stats()
		preEvents := stats.SimEvents()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		postStats := cache.Stats()
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
			switch *format {
			case "csv":
				t.FprintCSV(os.Stdout)
			case "markdown", "md":
				t.FprintMarkdown(os.Stdout)
			default:
				t.Fprint(os.Stdout)
			}
		}
		hits := postStats.Hits - preStats.Hits
		misses := postStats.Misses - preStats.Misses
		if *format == "text" {
			fmt.Printf("[%s completed in %v; plan cache %d hits / %d misses]\n\n",
				e.ID, elapsed.Round(time.Millisecond), hits, misses)
		}
		if e.ID == "protocol-crossover" {
			rec.SwitchPoints = bench.ProtocolSwitchPointRecords()
		}
		rec.Experiments = append(rec.Experiments, bench.PerfExperiment{
			ID:          e.ID,
			WallMS:      float64(elapsed.Microseconds()) / 1e3,
			Tables:      len(tables),
			Rows:        rows,
			SimEvents:   stats.SimEvents() - preEvents,
			CacheHits:   hits,
			CacheMisses: misses,
		})
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tr.WriteChrome(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	if *metricsJSON != "" {
		m := obs.NewMetrics()
		bench.PublishMetrics(m, cache, stats)
		f, err := os.Create(*metricsJSON)
		if err == nil {
			err = m.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsJSON)
	}
	if *benchJSON == "" {
		return
	}
	total := time.Since(suiteStart)
	st := cache.Stats()
	rec.TotalWallMS = float64(total.Microseconds()) / 1e3
	rec.SimEvents = stats.SimEvents()
	rec.SimRuns = stats.SimRuns()
	rec.RTInstances = stats.RTInstances()
	rec.Replans = stats.Replans()
	if s := total.Seconds(); s > 0 {
		rec.EventsPerSec = float64(stats.SimEvents()) / s
	}
	rec.CacheHits = st.Hits
	rec.CacheMisses = st.Misses
	rec.CacheEntries = st.Entries
	rec.CacheHitRate = st.HitRate()
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*benchJSON, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perf record written to %s\n", *benchJSON)
}

// runServeLoad drives the plan-service load generator. Service timings
// are load- and host-dependent, so the record goes to its own file
// (BENCH_serve.json by convention), never the deterministic baseline
// the bench gate compares.
func runServeLoad(opts bench.ServeLoadOptions, benchJSON string) {
	rec, err := bench.ServeLoad(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serve-load: %s — %d requests (%d clients, %d tenants): %d completed, %d shed, %d errors\n",
		rec.URL, rec.Requests, rec.Clients, rec.Tenants, rec.Completed, rec.Shed, rec.Errors)
	fmt.Printf("serve-load: %.1f req/s over %.1f ms; latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rec.ThroughputRPS, rec.WallMS, rec.P50MS, rec.P95MS, rec.P99MS)
	if benchJSON == "" {
		return
	}
	perf := bench.PerfRecord{
		GeneratedBy: "ressclbench -serve-load",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: rec.WallMS,
		ServeLoad:   rec,
	}
	out, err := json.MarshalIndent(perf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(benchJSON, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serve-load record written to %s\n", benchJSON)
}
