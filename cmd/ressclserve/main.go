// Command ressclserve is the multi-tenant plan service: an HTTP/JSON
// daemon exposing the compile / what-if-simulate / analyze pipeline to
// concurrent tenants with admission control, per-tenant quotas, a
// bounded shared plan cache, and graceful SIGTERM drain.
//
// Usage:
//
//	ressclserve -addr :8080
//	ressclserve -addr :8080 -workers 8 -quota 32 -drain-timeout 10s
//
// Endpoints: POST /v1/compile, /v1/simulate, /v1/analyze;
// GET /healthz, /readyz, /metricsz. See docs/serving.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		workers         = flag.Int("workers", serve.DefaultWorkers, "concurrent compile slots")
		maxQueue        = flag.Int("max-queue", serve.DefaultMaxQueue, "bounded work queue depth; excess requests shed with 429")
		queueBudget     = flag.Duration("queue-budget", serve.DefaultQueueBudget, "longest a request may wait for a worker before shedding (negative disables)")
		quota           = flag.Int("quota", serve.DefaultTenantQuota, "per-tenant in-flight request quota (negative disables)")
		defaultDeadline = flag.Duration("default-deadline", serve.DefaultDeadline, "processing deadline for requests without one (negative disables)")
		cacheEntries    = flag.Int("cache-entries", backend.DefaultMaxEntries, "plan cache entry bound")
		cacheBytes      = flag.Int64("cache-bytes", backend.DefaultMaxBytes, "plan cache byte bound")
		drainTimeout    = flag.Duration("drain-timeout", 15*time.Second, "how long SIGTERM drain waits for in-flight requests before hard-cancelling them")
		metricsJSON     = flag.String("metrics-json", "", "write the final metrics snapshot to this file on shutdown")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ressclserve: ")

	svc := serve.New(serve.Config{
		Workers:         *workers,
		MaxQueue:        *maxQueue,
		QueueBudget:     *queueBudget,
		TenantQuota:     *quota,
		DefaultDeadline: *defaultDeadline,
		CacheConfig: backend.CacheConfig{
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           serve.Handler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	log.Printf("serving on %s (workers=%d queue=%d quota=%d)", ln.Addr(), *workers, *maxQueue, *quota)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	// Graceful shutdown: stop admitting (readyz flips to 503, new work
	// sheds with ErrDraining) while the server keeps streaming in-flight
	// responses, then close the listener and flush metrics.
	log.Printf("signal received, draining (timeout %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}

	if err := flushMetrics(svc, *metricsJSON); err != nil {
		log.Printf("metrics flush: %v", err)
	}
	snap := svc.Metrics().Snapshot()
	log.Printf("drained: completed=%d shed=%d cancelled=%d cache=%+v",
		snap.Counters["serve.completed"],
		snap.Counters["serve.shed.overloaded"]+snap.Counters["serve.shed.quota"]+snap.Counters["serve.shed.draining"],
		snap.Counters["serve.cancelled"],
		svc.CacheStats())
}

// flushMetrics writes the deterministic metrics snapshot to path, or
// nowhere when no path was configured.
func flushMetrics(svc *serve.Service, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := svc.WriteMetricsJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ressclserve: metrics written to %s\n", path)
	return nil
}
