package analyzers

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkAll parses and type-checks src as a single-file package and runs
// the full scope-routed analyzer suite as if the package lived at
// importPath.
func checkAll(t *testing.T, importPath, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check(importPath, fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return RunAll(importPath, fset, []*ast.File{f}, info)
}

const serve = "github.com/resccl/resccl/internal/serve"

func TestCtxflowRootContextFlagged(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "context"
func run(ctx context.Context) {}
func f() { run(context.Background()) }
func g() { run(context.TODO()) }
`)
	got := checks(ds)
	if len(got) != 2 || got[0] != "ctxflow" || got[1] != "ctxflow" {
		t.Fatalf("want 2 ctxflow findings for Background/TODO, got %v", ds)
	}
}

func TestCtxflowExportedWithoutCtxFlagged(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "context"
var bg context.Context
func work(ctx context.Context) {}
func Blocked() { work(bg) }
`)
	if len(ds) != 1 || ds[0].Check != "ctxflow" ||
		!strings.Contains(ds[0].Message, "Blocked") {
		t.Fatalf("exported func calling a context-aware callee without a ctx param must be flagged, got %v", ds)
	}
}

func TestCtxflowPropagatingExportedAllowed(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "context"
func work(ctx context.Context) {}
func Fine(ctx context.Context, n int) { work(ctx) }
func unexported() { work(nil) }
type srv struct{}
func (s *srv) Method() { work(nil) }
func Deferred() func() {
	return func() { work(nil) }
}
`)
	if len(ds) != 0 {
		t.Fatalf("propagating/unexported/closure cases must pass, got %v", ds)
	}
}

func TestCtxflowCtxNotFirstFlagged(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "context"
func Odd(n int, ctx context.Context) {}
`)
	if len(ds) != 1 || ds[0].Check != "ctxflow" ||
		!strings.Contains(ds[0].Message, "first parameter") {
		t.Fatalf("ctx-not-first must be flagged, got %v", ds)
	}
}

func TestCtxflowAllowSuppression(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "context"
var bg = context.Background() //resccl:allow ctxflow
`)
	if len(ds) != 0 {
		t.Fatalf("resccl:allow ctxflow must suppress, got %v", ds)
	}
}

func TestGoleakUnjoinableFlagged(t *testing.T) {
	ds := checkAll(t, serve, `package p
func Spin() {
	go func() { println("orphan") }()
}
`)
	if len(ds) != 1 || ds[0].Check != "goleak" {
		t.Fatalf("goroutine with no join/cancel path must be flagged, got %v", ds)
	}
}

func TestGoleakJoinableAllowed(t *testing.T) {
	ds := checkAll(t, serve, `package p
import (
	"context"
	"sync"
)
func worker(ctx context.Context) {}
func OkCtx(ctx context.Context) {
	go func() { <-ctx.Done() }()
	go worker(ctx)
}
func OkWG(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}
func OkCh(ctx context.Context) chan int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}
`)
	if len(ds) != 0 {
		t.Fatalf("ctx/WaitGroup/channel goroutines must pass, got %v", ds)
	}
}

func TestGoleakAllowSuppression(t *testing.T) {
	ds := checkAll(t, serve, `package p
func Fire() {
	//resccl:allow goleak
	go func() { println("sanctioned") }()
}
`)
	if len(ds) != 0 {
		t.Fatalf("resccl:allow goleak must suppress, got %v", ds)
	}
}

func TestLockorderInversionFlagged(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "sync"
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
func f(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
func g(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`)
	if len(ds) != 1 || ds[0].Check != "lockorder" {
		t.Fatalf("opposite acquisition orders must yield one lockorder finding, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "A.mu") || !strings.Contains(ds[0].Message, "B.mu") {
		t.Fatalf("finding must name both lock classes, got %q", ds[0].Message)
	}
}

func TestLockorderConsistentAllowed(t *testing.T) {
	ds := checkAll(t, serve, `package p
import "sync"
type A struct{ mu sync.Mutex }
type B struct{ mu sync.RWMutex }
func f(a *A, b *B) {
	a.mu.Lock()
	b.mu.RLock()
	b.mu.RUnlock()
	a.mu.Unlock()
}
func g(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}
func single(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}
`)
	if len(ds) != 0 {
		t.Fatalf("consistent order and single locks must pass, got %v", ds)
	}
}

func TestConcurrencyScopeRouting(t *testing.T) {
	// The same root-context source is clean under import paths outside
	// the ctxflow scope.
	src := `package p
import "context"
var bg = context.Background()
`
	for path, want := range map[string]int{
		"github.com/resccl/resccl/internal/serve":   1,
		"github.com/resccl/resccl/internal/backend": 1,
		"github.com/resccl/resccl/internal/tune":    1,
		"github.com/resccl/resccl/internal/bench":   1,
		"github.com/resccl/resccl/internal/rt":      0,
		"github.com/resccl/resccl/internal/sim":     0,
	} {
		if got := len(checkAll(t, path, src)); got != want {
			t.Errorf("RunAll(%q) = %d findings, want %d", path, got, want)
		}
	}
}

func TestCoveredScope(t *testing.T) {
	for path, want := range map[string]bool{
		"github.com/resccl/resccl/internal/sim":     true, // determinism
		"github.com/resccl/resccl/internal/sched":   true,
		"github.com/resccl/resccl/internal/obs":     true,
		"github.com/resccl/resccl/internal/serve":   true, // concurrency
		"github.com/resccl/resccl/internal/backend": true,
		"github.com/resccl/resccl/internal/tune":    true,
		"github.com/resccl/resccl/internal/bench":   true,
		"github.com/resccl/resccl/internal/rt":      false,
		"github.com/resccl/resccl/internal/expert":  false,
		"time": false,
	} {
		if got := Covered(path); got != want {
			t.Errorf("Covered(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestRunAllMergesDeterminismFindings(t *testing.T) {
	// A determinism-scoped package still gets its lints through RunAll.
	ds := checkAll(t, "github.com/resccl/resccl/internal/sim", `package p
import "time"
var t0 = time.Now()
`)
	if len(ds) != 1 || ds[0].Check != "hosttime" {
		t.Fatalf("RunAll must route determinism lints to sim, got %v", ds)
	}
}
