// Concurrency lints: the second analyzer family, covering the packages
// that host long-lived goroutines, locks and cancellable work
// (internal/serve, internal/backend, internal/tune, internal/bench):
//
//   - ctxflow: cancellation must flow from the caller. Code below cmd/
//     may not synthesize root contexts (context.Background / TODO), and
//     an exported function that performs context-aware work (calls a
//     callee whose first parameter is a context.Context) must itself
//     accept a context.Context — first in its parameter list — and
//     propagate it;
//   - lockorder: within one package, any two mutexes acquired while
//     holding each other must always be acquired in the same order;
//     an A→B acquisition in one function and B→A in another is a
//     latent deadlock;
//   - goleak: a goroutine must have a join or cancellation path. A `go`
//     statement whose function neither references a context, a
//     sync.WaitGroup nor any channel is unstoppable and unjoinable —
//     a leak under every shutdown path.
//
// Like the determinism lints these are scope-routed by import path,
// skip test files, and honour `//resccl:allow <check>` suppressions.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ctxflowSuffixes and goleakSuffixes list the packages whose goroutines
// and blocking work must be cancellable; lockorderSuffixes the packages
// whose lock graphs are checked (the concurrent service and the sharded
// plan cache).
var (
	ctxflowSuffixes = []string{
		"internal/serve", "internal/backend", "internal/tune", "internal/bench",
	}
	goleakSuffixes = []string{
		"internal/serve", "internal/backend", "internal/tune", "internal/bench",
	}
	lockorderSuffixes = []string{
		"internal/serve", "internal/backend",
	}
)

func inScope(importPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Covered reports whether any analyzer family applies to the import
// path — the driver's routing predicate.
func Covered(importPath string) bool {
	return Deterministic(importPath) ||
		inScope(importPath, ctxflowSuffixes) ||
		inScope(importPath, goleakSuffixes) ||
		inScope(importPath, lockorderSuffixes)
}

// RunAll applies every analyzer family whose scope covers importPath
// and returns the merged findings sorted by position. Suppressed
// findings (resccl:allow) are already removed.
func RunAll(importPath string, fset *token.FileSet, files []*ast.File, info *types.Info) []Diagnostic {
	var ds []Diagnostic
	if Deterministic(importPath) {
		ds = append(ds, Run(fset, files, info)...)
	}
	if inScope(importPath, ctxflowSuffixes) {
		ds = append(ds, runCtxflow(fset, files, info)...)
	}
	if inScope(importPath, goleakSuffixes) {
		ds = append(ds, runGoleak(fset, files, info)...)
	}
	if inScope(importPath, lockorderSuffixes) {
		ds = append(ds, runLockorder(fset, files, info)...)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// reporter wraps the per-file allow-comment machinery shared by every
// analyzer family.
func reporter(fset *token.FileSet, f *ast.File, ds *[]Diagnostic) func(token.Pos, string, string) {
	allowed := allowLines(fset, f)
	return func(pos token.Pos, check, msg string) {
		line := fset.Position(pos).Line
		if allowed[lineCheck{line, check}] || allowed[lineCheck{line - 1, check}] {
			return
		}
		*ds = append(*ds, Diagnostic{Pos: pos, Check: check, Message: msg})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isWaitGroupType reports whether t is sync.WaitGroup (possibly behind
// a pointer).
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// ctxSignature reports whether the call's callee takes a
// context.Context as its first parameter.
func ctxSignature(call *ast.CallExpr, info *types.Info) bool {
	t := info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// runCtxflow enforces caller-supplied cancellation: no root contexts
// below cmd/, and exported context-aware functions must accept a
// leading context.Context.
func runCtxflow(fset *token.FileSet, files []*ast.File, info *types.Info) []Diagnostic {
	var ds []Diagnostic
	for _, f := range files {
		report := reporter(fset, f, &ds)
		// Rule 1: no synthesized root contexts anywhere in the package.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "context" {
				return true
			}
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				report(call.Pos(), "ctxflow", fmt.Sprintf(
					"context.%s synthesizes a root context below cmd/; accept and propagate the caller's context.Context", sel.Sel.Name))
			}
			return true
		})
		// Rule 2: exported context-aware functions accept a leading ctx.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if fn.Recv != nil && !exportedReceiver(fn.Recv) {
				continue // not reachable from outside the package
			}
			params := fn.Type.Params
			hasCtx, ctxFirst := false, false
			if params != nil {
				for i, field := range params.List {
					if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
						hasCtx = true
						ctxFirst = i == 0
					}
				}
			}
			if hasCtx {
				if !ctxFirst {
					report(fn.Pos(), "ctxflow", fmt.Sprintf(
						"exported %s takes a context.Context that is not its first parameter", fn.Name.Name))
				}
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a stored closure runs under its own caller
				}
				call, ok := n.(*ast.CallExpr)
				if ok && ctxSignature(call, info) {
					report(call.Pos(), "ctxflow", fmt.Sprintf(
						"exported %s calls a context-aware function but accepts no context.Context; accept one and propagate it", fn.Name.Name))
				}
				return true
			})
		}
	}
	return ds
}

// exportedReceiver reports whether a method's receiver base type is
// exported (an unexported receiver type makes the method unreachable
// from outside the package, so ctx plumbing is a package-local choice).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// runGoleak flags goroutines with no join or cancellation path: the
// spawned function references neither a context, a WaitGroup nor any
// channel, so nothing can stop it and nothing can wait for it.
func runGoleak(fset *token.FileSet, files []*ast.File, info *types.Info) []Diagnostic {
	var ds []Diagnostic
	for _, f := range files {
		report := reporter(fset, f, &ds)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goJoinable(g, info) {
				return true
			}
			report(g.Pos(), "goleak",
				"goroutine has no cancellation or join path (no context, WaitGroup or channel in scope); it can neither be stopped nor waited for")
			return true
		})
	}
	return ds
}

// goJoinable reports whether a go statement's function has any
// cancellation/join affordance: a context or WaitGroup value in reach,
// or any channel operation (send, receive, close, select, range).
func goJoinable(g *ast.GoStmt, info *types.Info) bool {
	joinable := false
	mark := func(t types.Type) {
		if t == nil {
			return
		}
		if isContextType(t) || isWaitGroupType(t) {
			joinable = true
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			joinable = true
		}
	}
	// Arguments passed to the spawned call (covers `go named(ctx, ch)`).
	for _, arg := range g.Call.Args {
		mark(info.TypeOf(arg))
	}
	// For function literals, every identifier the body references
	// (covers captured contexts, WaitGroups and channels).
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				mark(info.TypeOf(id))
			}
			return true
		})
	}
	return joinable
}

// lockUse is one mutex acquisition edge: while holding `held`, `locked`
// was acquired at Pos.
type lockEdge struct {
	held, locked string
	pos          token.Pos
}

// runLockorder checks intra-package mutex acquisition-order
// consistency: it records every (held → acquired) pair per function,
// then reports pairs acquired in both orders anywhere in the package.
func runLockorder(fset *token.FileSet, files []*ast.File, info *types.Info) []Diagnostic {
	var edges []lockEdge
	reporters := make(map[*ast.File]func(token.Pos, string, string))
	var ds []Diagnostic
	for _, f := range files {
		reporters[f] = reporter(fset, f, &ds)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			edges = append(edges, lockEdgesIn(fn.Body, info)...)
		}
	}
	// Index first-seen order of each directed pair; report reversals.
	seen := make(map[[2]string]token.Pos)
	for _, e := range edges {
		seen[[2]string{e.held, e.locked}] = e.pos
	}
	reported := make(map[[2]string]bool)
	for _, e := range edges {
		rev := [2]string{e.locked, e.held}
		if revPos, ok := seen[rev]; ok && !reported[[2]string{e.held, e.locked}] && !reported[rev] {
			reported[[2]string{e.held, e.locked}] = true
			// Attribute the finding to the file containing this edge so
			// its allow-comments apply.
			for f, rep := range reporters {
				if f.FileStart <= e.pos && e.pos < f.FileEnd {
					rep(e.pos, "lockorder", fmt.Sprintf(
						"%s acquired while holding %s, but the package also acquires them in the opposite order (%s) — inconsistent lock order risks deadlock",
						e.locked, e.held, fset.Position(revPos)))
				}
			}
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// lockEdgesIn scans a function body in source order, tracking the set
// of held mutexes and recording each acquisition made while another
// lock is held. Control flow is ignored (a lint, not a prover): a
// Lock() adds the key, an Unlock() removes it, and defer'd Unlocks hold
// to function end — matching the overwhelmingly common straight-line
// locking style.
func lockEdgesIn(body *ast.BlockStmt, info *types.Info) []lockEdge {
	var edges []lockEdge
	var held []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := mutexOp(call, info)
		if key == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			for _, h := range held {
				if h != key {
					edges = append(edges, lockEdge{held: h, locked: key, pos: call.Pos()})
				}
			}
			held = append(held, key)
		case "Unlock", "RUnlock":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == key {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
		return true
	})
	return edges
}

// mutexOp recognises m.Lock()/Unlock()/RLock()/RUnlock() calls on
// sync.Mutex/RWMutex values and returns a stable key naming the lock:
// the receiver's type plus the selector path (e.g. "cacheShard.mu").
func mutexOp(call *ast.CallExpr, info *types.Info) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	recv := info.TypeOf(sel.X)
	if recv == nil || !isMutexType(recv) {
		return "", ""
	}
	return lockKey(sel.X, info), sel.Sel.Name
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockKey names a mutex by the type that owns it and the field path
// reaching it, so `a.mu` and `b.mu` on two values of one struct type
// collapse to the same lock class while distinct fields stay distinct.
func lockKey(expr ast.Expr, info *types.Info) string {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		base := info.TypeOf(e.X)
		if base != nil {
			if p, ok := base.(*types.Pointer); ok {
				base = p.Elem()
			}
			if named, ok := base.(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return lockKey(e.X, info) + "." + e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return lockKey(e.X, info) + "[]"
	case *ast.CallExpr:
		return "call()"
	default:
		return "lock"
	}
}
