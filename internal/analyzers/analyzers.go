// Package analyzers implements the source-level determinism lints that
// keep the simulator's byte-identical-trace contract from regressing:
//
//   - hosttime: no direct time.Now / time.Since / time.Until — the host
//     clock must be injected so replays and golden traces are stable;
//   - globalrand: no package-level math/rand functions — randomness
//     must flow through an explicitly seeded *rand.Rand
//     (rand.New(rand.NewSource(seed)) is fine);
//   - mapiter: no `range` over a map — Go randomizes map iteration
//     order, so any output or scheduling decision derived from it
//     differs run to run; iterate a sorted key slice instead.
//
// The lints apply only to the deterministic packages (internal/sim,
// internal/sched, internal/obs) and skip test files. A deliberate
// exception carries a `//resccl:allow <check>` comment on the offending
// line or the line above it.
//
// The package uses only the standard library (go/ast, go/types): it is
// driven by cmd/resccl-analyzers, a self-contained `go vet -vettool`
// backend, so the repo needs no external analysis framework.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// deterministicSuffixes lists the package import-path suffixes the
// determinism contract covers.
var deterministicSuffixes = []string{
	"internal/sim",
	"internal/sched",
	"internal/obs",
}

// Deterministic reports whether the import path is under the
// determinism contract.
func Deterministic(importPath string) bool {
	for _, s := range deterministicSuffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// hosttimeFuncs are the time package functions that read the host clock.
var hosttimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalrandAllowed are the math/rand package-level functions that do
// NOT touch the global source and stay legal.
var globalrandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Run applies all determinism lints to one type-checked package and
// returns the findings sorted by position. Suppressed findings
// (resccl:allow) are already removed. Test files must be filtered out
// by the caller (the vet driver lists them separately).
func Run(fset *token.FileSet, files []*ast.File, info *types.Info) []Diagnostic {
	var ds []Diagnostic
	for _, f := range files {
		allowed := allowLines(fset, f)
		report := func(pos token.Pos, check, msg string) {
			line := fset.Position(pos).Line
			if allowed[lineCheck{line, check}] || allowed[lineCheck{line - 1, check}] {
				return
			}
			ds = append(ds, Diagnostic{Pos: pos, Check: check, Message: msg})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(n, info, report)
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						report(n.Range, "mapiter",
							"map iteration order is randomized; range over sorted keys instead (deterministic package)")
					}
				}
			}
			return true
		})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// checkSelector flags pkg.Func selections on the time and math/rand
// packages. Resolution goes through go/types (not import names), so
// aliased imports cannot hide a call.
func checkSelector(sel *ast.SelectorExpr, info *types.Info, report func(token.Pos, string, string)) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if hosttimeFuncs[sel.Sel.Name] {
			report(sel.Pos(), "hosttime",
				fmt.Sprintf("time.%s reads the host clock; inject the clock instead (deterministic package)", sel.Sel.Name))
		}
	case "math/rand", "math/rand/v2":
		if !globalrandAllowed[sel.Sel.Name] {
			report(sel.Pos(), "globalrand",
				fmt.Sprintf("rand.%s uses the shared global source; use an explicitly seeded rand.New(rand.NewSource(...)) (deterministic package)", sel.Sel.Name))
		}
	}
}

type lineCheck struct {
	line  int
	check string
}

// allowLines collects `//resccl:allow <check>` suppressions per line.
func allowLines(fset *token.FileSet, f *ast.File) map[lineCheck]bool {
	out := make(map[lineCheck]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "resccl:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, check := range strings.Fields(strings.TrimPrefix(text, "resccl:allow")) {
				out[lineCheck{line, check}] = true
			}
		}
	}
	return out
}
