package analyzers

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check parses and type-checks src as a single-file package and runs
// the lints over it.
func check(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Run(fset, []*ast.File{f}, info)
}

func checks(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Check
	}
	return out
}

func TestHosttimeFlagged(t *testing.T) {
	ds := check(t, `package p
import "time"
var t0 = time.Now()
func f() time.Duration { return time.Since(t0) + time.Until(t0) }
`)
	if got := checks(ds); len(got) != 3 {
		t.Fatalf("want 3 hosttime findings, got %v", got)
	}
	for _, d := range ds {
		if d.Check != "hosttime" {
			t.Errorf("unexpected check %q", d.Check)
		}
	}
}

func TestHosttimeAliasedImportStillFlagged(t *testing.T) {
	ds := check(t, `package p
import clock "time"
var t0 = clock.Now()
`)
	if len(ds) != 1 || ds[0].Check != "hosttime" {
		t.Fatalf("aliased import must still be flagged, got %v", ds)
	}
}

func TestHosttimeNonClockFunctionsAllowed(t *testing.T) {
	ds := check(t, `package p
import "time"
var d = 3 * time.Second
var tm = time.Unix(0, 0)
func f() { time.Sleep(d) }
`)
	if len(ds) != 0 {
		t.Fatalf("time.Second/Unix/Sleep must pass, got %v", ds)
	}
}

func TestGlobalRandFlagged(t *testing.T) {
	ds := check(t, `package p
import "math/rand"
func f() (int, float64) { rand.Shuffle(3, func(i, j int) {}); return rand.Intn(7), rand.Float64() }
`)
	if got := checks(ds); len(got) != 3 {
		t.Fatalf("want 3 globalrand findings, got %v", got)
	}
}

func TestSeededRandAllowed(t *testing.T) {
	ds := check(t, `package p
import "math/rand"
func f() int { r := rand.New(rand.NewSource(42)); return r.Intn(7) }
`)
	if len(ds) != 0 {
		t.Fatalf("seeded rand.New(rand.NewSource(...)) must pass, got %v", ds)
	}
}

func TestMapIterFlagged(t *testing.T) {
	ds := check(t, `package p
type set map[string]bool
func f(m map[int]int, s set) (n int) {
	for range m {
		n++
	}
	for k := range s {
		_ = k
	}
	return
}
`)
	if got := checks(ds); len(got) != 2 || got[0] != "mapiter" || got[1] != "mapiter" {
		t.Fatalf("want 2 mapiter findings (incl. named map type), got %v", got)
	}
}

func TestSliceRangeAllowed(t *testing.T) {
	ds := check(t, `package p
func f(xs []int, s string, ch chan int) (n int) {
	for range xs {
		n++
	}
	for range s {
		n++
	}
	for range ch {
		n++
	}
	return
}
`)
	if len(ds) != 0 {
		t.Fatalf("slice/string/channel ranges must pass, got %v", ds)
	}
}

func TestAllowSuppression(t *testing.T) {
	ds := check(t, `package p
import "time"
var a = time.Now() //resccl:allow hosttime
//resccl:allow hosttime
var b = time.Now()
var c = time.Now() //resccl:allow mapiter
`)
	if len(ds) != 1 || ds[0].Check != "hosttime" {
		t.Fatalf("only the mismatched suppression should fire, got %v", ds)
	}
	if ds[0].Pos == token.NoPos {
		t.Fatalf("finding lost its position")
	}
}

func TestAllowMultipleChecksOneComment(t *testing.T) {
	ds := check(t, `package p
import "math/rand"
//resccl:allow globalrand hosttime
var x = rand.Int()
`)
	if len(ds) != 0 {
		t.Fatalf("multi-check suppression must apply, got %v", ds)
	}
}

func TestDeterministicScope(t *testing.T) {
	for path, want := range map[string]bool{
		"github.com/resccl/resccl/internal/sim":   true,
		"github.com/resccl/resccl/internal/sched": true,
		"github.com/resccl/resccl/internal/obs":   true,
		"internal/sim":                            true,
		"github.com/resccl/resccl/internal/rt":    false,
		"github.com/resccl/resccl/internal/simx":  false,
		"time":                                    false,
	} {
		if got := Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
