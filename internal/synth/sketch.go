package synth

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/resccl/resccl/internal/ir"
)

// This file implements the sketch-guided plan family the search
// (search.go) explores. A communication sketch à la TACCL fixes the
// coarse shape of a plan — how chunks move inside a node and how they
// cross the inter-node fabric — and leaves a small set of discrete
// knobs (routing family, rail assignment, rail rotation) for the search
// to mutate. Every point in the family is a complete, valid algorithm;
// the knobs trade steps against rounds exactly along the SCCL pareto
// frontier: mesh/direct members minimize steps (latency-bound regime),
// ring members minimize rounds (bandwidth-bound regime), trees sit in
// between.

// IntraKind selects the intra-node routing family of a sketch.
type IntraKind uint8

// Intra-node routing families.
const (
	// IntraMesh fans a chunk out over the NVSwitch full mesh in one
	// logical step (fewest steps, gpn−1 concurrent rounds).
	IntraMesh IntraKind = iota
	// IntraRing forwards a chunk around the local ring (gpn−1 steps,
	// one round each — the bandwidth-optimal schedule).
	IntraRing
)

// InterKind selects the inter-node routing family of a sketch.
type InterKind uint8

// Inter-node routing families.
const (
	// InterDirect ships a chunk point-to-point from the source node to
	// every other node (one inter hop per destination).
	InterDirect InterKind = iota
	// InterRing forwards a chunk around the node ring (nNodes−1 hops,
	// each carrying the minimum volume).
	InterRing
	// InterTree broadcasts/reduces a chunk over a binomial tree of
	// nodes (⌈log2 nNodes⌉ hop depth).
	InterTree
)

// Genome is one point of the sketch family: a complete parameterization
// from which Build derives a verified algorithm deterministically.
type Genome struct {
	// Op is the collective operator (AllGather, AllReduce or
	// ReduceScatter).
	Op ir.OpType
	// NNodes and GPN fix the topology shape the plan targets.
	NNodes, GPN int
	// Intra and Inter select the routing families.
	Intra IntraKind
	Inter InterKind
	// Spread assigns every chunk its own NIC rail (local index
	// c mod gpn, rotated). Concentrated plans (Spread=false) relay all
	// of a node pair's traffic through one rotating rail, the
	// relay-concentration TACCL sketches express.
	Spread bool
	// Rotate shifts the rail assignment by a constant local offset —
	// the knob the local search uses to rebalance NIC load.
	Rotate int
}

// sketchPrefix starts every encoded genome name; the registry and the
// dispatch table rebuild plans from such names alone.
const sketchPrefix = "synth:sketch/"

var opCodes = []struct {
	op   ir.OpType
	code string
}{
	{ir.OpAllGather, "ag"},
	{ir.OpAllReduce, "ar"},
	{ir.OpReduceScatter, "rs"},
}

func opCode(op ir.OpType) (string, bool) {
	for _, e := range opCodes {
		if e.op == op {
			return e.code, true
		}
	}
	return "", false
}

// SketchCovers reports whether the sketch family can express op.
func SketchCovers(op ir.OpType) bool {
	_, ok := opCode(op)
	return ok
}

func (k IntraKind) code() byte {
	if k == IntraRing {
		return 'r'
	}
	return 'm'
}

func (k InterKind) code() byte {
	switch k {
	case InterRing:
		return 'r'
	case InterTree:
		return 't'
	default:
		return 'd'
	}
}

// Encode renders the genome as a registry-style plan name, e.g.
// "synth:sketch/ar/2x8/im-er-s1-r3". ParseGenome inverts it.
func (g Genome) Encode() string {
	spread := 0
	if g.Spread {
		spread = 1
	}
	code, _ := opCode(g.Op)
	return fmt.Sprintf("%s%s/%dx%d/i%c-e%c-s%d-r%d",
		sketchPrefix, code, g.NNodes, g.GPN,
		g.Intra.code(), g.Inter.code(), spread, g.Rotate)
}

// IsSketchName reports whether name encodes a sketch-family genome.
func IsSketchName(name string) bool { return strings.HasPrefix(name, sketchPrefix) }

// ParseGenome decodes a name produced by Encode.
func ParseGenome(name string) (Genome, error) {
	var g Genome
	if !IsSketchName(name) {
		return g, fmt.Errorf("synth: %q is not a sketch plan name", name)
	}
	parts := strings.Split(strings.TrimPrefix(name, sketchPrefix), "/")
	if len(parts) != 3 {
		return g, fmt.Errorf("synth: malformed sketch name %q", name)
	}
	opOK := false
	for _, e := range opCodes {
		if e.code == parts[0] {
			g.Op, opOK = e.op, true
		}
	}
	if !opOK {
		return g, fmt.Errorf("synth: unknown op code %q in %q", parts[0], name)
	}
	if _, err := fmt.Sscanf(parts[1], "%dx%d", &g.NNodes, &g.GPN); err != nil {
		return g, fmt.Errorf("synth: malformed shape in %q", name)
	}
	for _, field := range strings.Split(parts[2], "-") {
		if len(field) < 2 {
			return g, fmt.Errorf("synth: malformed knob %q in %q", field, name)
		}
		val := field[1:]
		switch field[0] {
		case 'i':
			switch val {
			case "m":
				g.Intra = IntraMesh
			case "r":
				g.Intra = IntraRing
			default:
				return g, fmt.Errorf("synth: unknown intra family %q in %q", val, name)
			}
		case 'e':
			switch val {
			case "d":
				g.Inter = InterDirect
			case "r":
				g.Inter = InterRing
			case "t":
				g.Inter = InterTree
			default:
				return g, fmt.Errorf("synth: unknown inter family %q in %q", val, name)
			}
		case 's':
			g.Spread = val == "1"
		case 'r':
			n, err := strconv.Atoi(val)
			if err != nil {
				return g, fmt.Errorf("synth: malformed rotation %q in %q", val, name)
			}
			g.Rotate = n
		default:
			return g, fmt.Errorf("synth: unknown knob %q in %q", field, name)
		}
	}
	return g, nil
}

// BuildNamed rebuilds a sketch plan from its encoded name — the path the
// dispatch table uses so a winning plan can be reconstructed without
// carrying transfer lists around.
func BuildNamed(name string) (*ir.Algorithm, error) {
	g, err := ParseGenome(name)
	if err != nil {
		return nil, err
	}
	return g.Build()
}

// builder tracks per-location data readiness while a genome's routes
// are laid out, so step numbers encode exactly the dependency and
// hazard ordering the verifier and analyzer demand.
type builder struct {
	a *ir.Algorithm
	// avail[r][c] is the first step at which rank r may read its copy
	// of chunk c; -1 means the location holds no (or stale) data.
	avail [][]int
	// lastRead[r][c] is the last step the location was read as a
	// transfer source; overwrites are placed strictly after it.
	lastRead [][]int
	// lastWrite[r][c] is the last step the location was written. Unlike
	// avail it survives phase resets, so a later phase's overwrite can
	// never be scheduled at or before a stale write.
	lastWrite [][]int
	// nicNext[r] serializes rank r's inter-node sends: one NIC flow at
	// a time, the queueing a shared 200 Gb/s port imposes.
	nicNext []int
}

func newBuilder(a *ir.Algorithm) *builder {
	b := &builder{
		a:         a,
		avail:     make([][]int, a.NRanks),
		lastRead:  make([][]int, a.NRanks),
		lastWrite: make([][]int, a.NRanks),
		nicNext:   make([]int, a.NRanks),
	}
	for r := range b.avail {
		b.avail[r] = make([]int, a.NChunks)
		b.lastRead[r] = make([]int, a.NChunks)
		b.lastWrite[r] = make([]int, a.NChunks)
		for c := range b.avail[r] {
			b.avail[r][c] = -1
			b.lastRead[r][c] = -1
			b.lastWrite[r][c] = -1
		}
	}
	return b
}

// send places one transfer no earlier than minStep, respecting source
// readiness, destination write-after-read ordering and (for reductions)
// destination readiness; it returns the chosen step. inter additionally
// serializes the hop behind the source rank's previous inter sends.
func (b *builder) send(src, dst ir.Rank, c ir.ChunkID, typ ir.CommType, minStep int, inter bool) int {
	s := minStep
	if av := b.avail[src][c]; av > s {
		s = av
	}
	if typ == ir.CommRecvReduceCopy {
		if av := b.avail[dst][c]; av > s {
			s = av
		}
	}
	if lr := b.lastRead[dst][c]; lr >= s {
		s = lr + 1
	}
	if lw := b.lastWrite[dst][c]; lw >= s {
		s = lw + 1
	}
	if inter {
		if n := b.nicNext[src]; n > s {
			s = n
		}
		b.nicNext[src] = s + 1
	}
	b.a.Transfers = append(b.a.Transfers, ir.Transfer{
		Src: src, Dst: dst, Step: ir.Step(s), Chunk: c, Type: typ,
	})
	if lr := b.lastRead[src][c]; s > lr {
		b.lastRead[src][c] = s
	}
	b.avail[dst][c] = s + 1
	b.lastWrite[dst][c] = s
	return s
}

// Build derives the genome's algorithm. The result carries the encoded
// genome as its name, NChunks = NRanks, and passes ir.Validate; the
// search layers the correctness gates (collective, verify, analyze) on
// top.
func (g Genome) Build() (*ir.Algorithm, error) {
	if g.NNodes < 1 || g.GPN < 1 {
		return nil, fmt.Errorf("synth: sketch needs a positive shape, got %d×%d", g.NNodes, g.GPN)
	}
	n := g.NNodes * g.GPN
	if n < 2 {
		return nil, fmt.Errorf("synth: sketch needs ≥2 ranks, got %d", n)
	}
	if _, ok := opCode(g.Op); !ok {
		return nil, fmt.Errorf("synth: sketch does not cover %v", g.Op)
	}
	if g.Rotate < 0 || g.Rotate >= g.GPN {
		return nil, fmt.Errorf("synth: rotation %d out of range for %d GPUs/node", g.Rotate, g.GPN)
	}
	a := &ir.Algorithm{
		Name:    g.Encode(),
		Op:      g.Op,
		NRanks:  n,
		NChunks: n,
		NWarps:  16,
	}
	b := newBuilder(a)
	switch g.Op {
	case ir.OpAllGather:
		for c := 0; c < n; c++ {
			b.avail[c][c] = 0
		}
		for c := 0; c < n; c++ {
			g.distribute(b, ir.ChunkID(c), ir.Rank(c))
		}
	case ir.OpReduceScatter:
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				b.avail[r][c] = 0
			}
		}
		for c := 0; c < n; c++ {
			g.converge(b, ir.ChunkID(c), ir.Rank(c))
		}
	case ir.OpAllReduce:
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				b.avail[r][c] = 0
			}
		}
		for c := 0; c < n; c++ {
			g.converge(b, ir.ChunkID(c), ir.Rank(c))
		}
		// After the reduce phase only the owner holds the fully reduced
		// chunk; every other copy is a stale partial the broadcast phase
		// overwrites (send's lastRead tracking orders those writes after
		// the partials' final reads).
		for c := 0; c < n; c++ {
			for r := 0; r < n; r++ {
				if r != c {
					b.avail[r][c] = -1
				}
			}
			g.distribute(b, ir.ChunkID(c), ir.Rank(c))
		}
	}
	return a, a.Validate()
}

// rank composes a global rank from (node, local index).
func (g Genome) rank(node, local int) ir.Rank { return ir.Rank(node*g.GPN + local) }

// rail picks the local index carrying chunk c between srcNode and
// dstNode. Ring and tree routes ignore the destination so the chunk
// stays on one rail across multi-hop paths.
func (g Genome) rail(c ir.ChunkID, srcNode, dstNode int) int {
	if g.GPN == 1 {
		return 0
	}
	if g.Spread {
		return (int(c) + g.Rotate) % g.GPN
	}
	if g.Inter == InterDirect {
		return (srcNode + dstNode + g.Rotate) % g.GPN
	}
	return g.Rotate % g.GPN
}

// distribute routes chunk c from owner to every rank: intra fan-out on
// the owner's node, inter shipping along the genome's family, intra
// fan-out on every receiving node. Inter hops overlap the owner-side
// fan-out whenever the rail rank already holds the chunk.
func (g Genome) distribute(b *builder, c ir.ChunkID, owner ir.Rank) {
	sn := int(owner) / g.GPN
	g.fanOut(b, c, sn)
	if g.NNodes == 1 {
		return
	}
	switch g.Inter {
	case InterDirect:
		for off := 1; off < g.NNodes; off++ {
			dn := (sn + off) % g.NNodes
			l := g.rail(c, sn, dn)
			b.send(g.rank(sn, l), g.rank(dn, l), c, ir.CommRecv, 0, true)
		}
	case InterRing:
		l := g.rail(c, sn, sn)
		for hop := 0; hop < g.NNodes-1; hop++ {
			a := (sn + hop) % g.NNodes
			d := (sn + hop + 1) % g.NNodes
			b.send(g.rank(a, l), g.rank(d, l), c, ir.CommRecv, 0, true)
		}
	case InterTree:
		l := g.rail(c, sn, sn)
		// Binomial doubling over node positions relative to the owner:
		// in round k, every holding position p < k ships to p+k.
		for k := 1; k < g.NNodes; k <<= 1 {
			for p := 0; p < k && p+k < g.NNodes; p++ {
				a := (sn + p) % g.NNodes
				d := (sn + p + k) % g.NNodes
				b.send(g.rank(a, l), g.rank(d, l), c, ir.CommRecv, 0, true)
			}
		}
	}
	for off := 1; off < g.NNodes; off++ {
		g.fanOut(b, c, (sn+off)%g.NNodes)
	}
}

// fanOut delivers chunk c to every rank of node nd from the node's
// earliest holder: one concurrent step over the mesh, or a walk around
// the local ring.
func (g Genome) fanOut(b *builder, c ir.ChunkID, nd int) {
	if g.GPN == 1 {
		return
	}
	holder, at := -1, int(^uint(0)>>1)
	for l := 0; l < g.GPN; l++ {
		r := g.rank(nd, l)
		if av := b.avail[r][c]; av >= 0 && av < at {
			holder, at = l, av
		}
	}
	if holder < 0 {
		return
	}
	switch g.Intra {
	case IntraMesh:
		src := g.rank(nd, holder)
		for off := 1; off < g.GPN; off++ {
			dst := g.rank(nd, (holder+off)%g.GPN)
			if b.avail[dst][c] >= 0 {
				continue
			}
			b.send(src, dst, c, ir.CommRecv, at, false)
		}
	case IntraRing:
		for off := 0; off < g.GPN-1; off++ {
			src := g.rank(nd, (holder+off)%g.GPN)
			dst := g.rank(nd, (holder+off+1)%g.GPN)
			if b.avail[dst][c] >= 0 {
				continue
			}
			b.send(src, dst, c, ir.CommRecv, 0, false)
		}
	}
}

// converge reduces every rank's term of chunk c into owner: intra
// reduction into each node's rail representative, then an inter
// reduction along the genome's family ending at the owner rank.
func (g Genome) converge(b *builder, c ir.ChunkID, owner ir.Rank) {
	sn := int(owner) / g.GPN
	ownerLocal := int(owner) % g.GPN
	rep := func(nd int) int {
		if nd == sn {
			return ownerLocal
		}
		return g.rail(c, nd, sn)
	}
	for nd := 0; nd < g.NNodes; nd++ {
		g.reduceLocal(b, c, nd, rep(nd))
	}
	if g.NNodes == 1 {
		return
	}
	switch g.Inter {
	case InterDirect:
		for off := 1; off < g.NNodes; off++ {
			nd := (sn + off) % g.NNodes
			b.send(g.rank(nd, rep(nd)), owner, c, ir.CommRecvReduceCopy, 0, true)
		}
	case InterRing:
		// Accumulate around the node ring ending at the owner: each hop
		// merges the running partial into the next node's rail partial.
		for hop := 1; hop < g.NNodes; hop++ {
			a := (sn + hop) % g.NNodes
			d := (sn + hop + 1) % g.NNodes
			b.send(g.rank(a, rep(a)), g.rank(d, rep(d)), c, ir.CommRecvReduceCopy, 0, true)
		}
	case InterTree:
		// Binomial halving toward position 0 (the owner's node): the
		// exact reverse of the distribute tree.
		top := 1
		for top < g.NNodes {
			top <<= 1
		}
		for k := top >> 1; k >= 1; k >>= 1 {
			for p := 0; p < k && p+k < g.NNodes; p++ {
				a := (sn + p + k) % g.NNodes
				d := (sn + p) % g.NNodes
				b.send(g.rank(a, rep(a)), g.rank(d, rep(d)), c, ir.CommRecvReduceCopy, 0, true)
			}
		}
	}
}

// reduceLocal folds every local term of chunk c on node nd into local
// index rep: pairwise over the mesh (serialized per destination
// location) or accumulated around the local ring.
func (g Genome) reduceLocal(b *builder, c ir.ChunkID, nd, rep int) {
	if g.GPN == 1 {
		return
	}
	dst := g.rank(nd, rep)
	switch g.Intra {
	case IntraMesh:
		for off := 1; off < g.GPN; off++ {
			src := g.rank(nd, (rep+off)%g.GPN)
			b.send(src, dst, c, ir.CommRecvReduceCopy, 0, false)
		}
	case IntraRing:
		for off := 1; off < g.GPN-1; off++ {
			src := g.rank(nd, (rep+off)%g.GPN)
			next := g.rank(nd, (rep+off+1)%g.GPN)
			b.send(src, next, c, ir.CommRecvReduceCopy, 0, false)
		}
		last := g.rank(nd, (rep+g.GPN-1)%g.GPN)
		b.send(last, dst, c, ir.CommRecvReduceCopy, 0, false)
	}
}
