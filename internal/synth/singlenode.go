package synth

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// Single-node synthesizer output. Real TACCL/TECCL plans inside one
// server exhibit the same pathologies the paper measures at scale:
// TACCL sketches concentrate traffic on a hub GPU, TECCL's flow-style
// plans serialize into phases. Both are valid algorithms that leave most
// NVSwitch links idle most of the time — the low link utilization of
// Table 1's first row.

func singleHeader(name string, op ir.OpType, gpn int) (*ir.Algorithm, error) {
	if gpn < 2 {
		return nil, fmt.Errorf("synth: %s needs ≥2 GPUs, got %d", name, gpn)
	}
	return &ir.Algorithm{
		Name:    name,
		Op:      op,
		NRanks:  gpn,
		NChunks: gpn,
		NWarps:  16,
	}, nil
}

// tacclAllGatherSingle builds a hub-and-spoke AllGather: every GPU ships
// its chunk to GPU 0, which then redistributes everything.
func tacclAllGatherSingle(gpn int) (*ir.Algorithm, error) {
	a, err := singleHeader("TACCL-AllGather", ir.OpAllGather, gpn)
	if err != nil {
		return nil, err
	}
	// Spokes → hub, serialized as the sketch solver emits them.
	for src := 1; src < gpn; src++ {
		a.Transfers = append(a.Transfers, ir.Transfer{
			Src: ir.Rank(src), Dst: 0,
			Step: ir.Step(src - 1), Chunk: ir.ChunkID(src), Type: ir.CommRecv,
		})
	}
	// Hub → spokes: chunk c goes to every GPU except its owner, one
	// step per chunk.
	base := gpn - 1
	for c := 0; c < gpn; c++ {
		for dst := 1; dst < gpn; dst++ {
			if dst == c {
				continue
			}
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: 0, Dst: ir.Rank(dst),
				Step: ir.Step(base + c), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}

// tacclAllReduceSingle reduces every chunk at the hub and broadcasts the
// results back — g× the optimal volume through one GPU's links.
func tacclAllReduceSingle(gpn int) (*ir.Algorithm, error) {
	a, err := singleHeader("TACCL-AllReduce", ir.OpAllReduce, gpn)
	if err != nil {
		return nil, err
	}
	for src := 1; src < gpn; src++ {
		for c := 0; c < gpn; c++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: 0,
				Step: ir.Step(src - 1), Chunk: ir.ChunkID(c), Type: ir.CommRecvReduceCopy,
			})
		}
	}
	base := gpn - 1
	for c := 0; c < gpn; c++ {
		for dst := 1; dst < gpn; dst++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: 0, Dst: ir.Rank(dst),
				Step: ir.Step(base + c), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}

// tecclAllGatherSingle routes every chunk through an intermediate relay
// (flow-style two-hop paths, as TECCL's multi-commodity formulation
// produces): GPU r ships its chunk to r+1, which then forwards it to the
// remaining peers. The forwarding dependency prevents lazy execution
// from overlapping the two hops.
func tecclAllGatherSingle(gpn int) (*ir.Algorithm, error) {
	a, err := singleHeader("TECCL-AllGather", ir.OpAllGather, gpn)
	if err != nil {
		return nil, err
	}
	for src := 0; src < gpn; src++ {
		relay := (src + 1) % gpn
		a.Transfers = append(a.Transfers, ir.Transfer{
			Src: ir.Rank(src), Dst: ir.Rank(relay),
			Step: 0, Chunk: ir.ChunkID(src), Type: ir.CommRecv,
		})
		for dst := 0; dst < gpn; dst++ {
			if dst == src || dst == relay {
				continue
			}
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(relay), Dst: ir.Rank(dst),
				Step: 1, Chunk: ir.ChunkID(src), Type: ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}

// tecclAllReduceSingle is a full-mesh ReduceScatter + AllGather with the
// same parity serialization in both phases.
func tecclAllReduceSingle(gpn int) (*ir.Algorithm, error) {
	a, err := singleHeader("TECCL-AllReduce", ir.OpAllReduce, gpn)
	if err != nil {
		return nil, err
	}
	half := (gpn + 1) / 2
	// ReduceScatter: src sends chunk d to GPU d; step encodes the
	// parity phase and the source's slot within it, so writes into
	// (d, chunk d) are totally ordered.
	for src := 0; src < gpn; src++ {
		step := (src%2)*half + src/2
		for off := 0; off < gpn-1; off++ {
			d := (src + off + 1) % gpn
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(d),
				Step: ir.Step(step), Chunk: ir.ChunkID(d), Type: ir.CommRecvReduceCopy,
			})
		}
	}
	// AllGather of the reduced chunks, parity-serialized again.
	agBase := 2 * half
	for src := 0; src < gpn; src++ {
		step := agBase + (src%2)*half + src/2
		for off := 0; off < gpn-1; off++ {
			d := (src + off + 1) % gpn
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(d),
				Step: ir.Step(step), Chunk: ir.ChunkID(src), Type: ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}
