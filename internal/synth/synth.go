// Package synth provides synthesizer substrates emulating TACCL and
// TECCL (§5.1): deterministic heuristic generators that produce valid
// collective algorithms with the structural properties the paper
// observes in real synthesizer output — hierarchical routing over
// communication sketches, relay-concentrated inter-node traffic with
// uneven per-link load (TACCL), and phase-serialized flow-style routing
// (TECCL, which has no native AllReduce: its AllReduce is assembled from
// ReduceScatter + AllGather, as the paper does in §5.2).
//
// The real synthesizers solve MILPs; the paper evaluates backends
// *executing* their plans, so what matters here is plan shape, not
// solver optimality. All generated plans pass the collective package's
// data-plane correctness check.
package synth

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

func header(name string, op ir.OpType, nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes < 2 || gpn < 2 {
		return nil, fmt.Errorf("synth: %s needs ≥2 nodes and ≥2 GPUs/node, got %d×%d", name, nNodes, gpn)
	}
	n := nNodes * gpn
	return &ir.Algorithm{
		Name:    name,
		Op:      op,
		NRanks:  n,
		NChunks: n,
		NWarps:  16,
	}, nil
}

// relay returns the local GPU index that the TACCL-style sketch routes
// (srcNode → dstNode) traffic through. Concentrating node-pair traffic
// on one relay per direction reproduces TACCL's uneven link load: with
// few nodes only a few locals carry all inter-node traffic.
func relay(srcNode, dstNode, gpn int) int { return (srcNode + dstNode) % gpn }

// TACCLAllGather emulates a TACCL-synthesized AllGather: sparse
// ring-based intra-node distribution (TACCL sketches keep each GPU
// talking to few peers), relay-concentrated inter-node shipping of every
// node's chunks, and a ring rebroadcast at the destination. Only the
// relay GPUs touch the network, reproducing TACCL's uneven link load.
func TACCLAllGather(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes == 1 {
		return tacclAllGatherSingle(gpn)
	}
	a, err := header("TACCL-AllGather", ir.OpAllGather, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	next := func(r int) int { return (r/gpn)*gpn + (r%gpn+1)%gpn }
	// Phase A (steps 0..gpn−2): intra-node ring AllGather of the node's
	// own chunks.
	for node := 0; node < nNodes; node++ {
		for l := 0; l < gpn; l++ {
			r := node*gpn + l
			for st := 0; st < gpn-1; st++ {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(r), Dst: ir.Rank(next(r)),
					Step: ir.Step(st), Chunk: ir.ChunkID(node*gpn + mod(l-st, gpn)),
					Type: ir.CommRecv,
				})
			}
		}
	}
	// Phase B: for every ordered node pair, the relay ships all gpn
	// chunks of the source node sequentially to the same relay index on
	// the destination node.
	baseB := gpn - 1
	for sn := 0; sn < nNodes; sn++ {
		for dn := 0; dn < nNodes; dn++ {
			if sn == dn {
				continue
			}
			rl := relay(sn, dn, gpn)
			src := sn*gpn + rl
			dst := dn*gpn + rl
			for k := 0; k < gpn; k++ {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(src), Dst: ir.Rank(dst),
					Step: ir.Step(baseB + k), Chunk: ir.ChunkID(sn*gpn + k), Type: ir.CommRecv,
				})
			}
		}
	}
	// Phase C: each received chunk travels the destination node's local
	// ring, one hop per step after its arrival.
	baseC := baseB + gpn
	for dn := 0; dn < nNodes; dn++ {
		for sn := 0; sn < nNodes; sn++ {
			if sn == dn {
				continue
			}
			rl := relay(sn, dn, gpn)
			for k := 0; k < gpn; k++ {
				chunk := ir.ChunkID(sn*gpn + k)
				for j := 0; j < gpn-1; j++ {
					holder := dn*gpn + (rl+j)%gpn
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(holder), Dst: ir.Rank(next(holder)),
						Step: ir.Step(baseC + k + j), Chunk: chunk, Type: ir.CommRecv,
					})
				}
			}
		}
	}
	return a, a.Validate()
}

// TACCLAllReduce emulates a TACCL-synthesized AllReduce assembled as
// ReduceScatter + AllGather with sparse ring intra-node phases and
// direct rep-to-owner inter-node routing: node partial sums converge on
// each chunk's owner through the owner's NIC (serialising there), then
// fan back out.
func TACCLAllReduce(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes == 1 {
		return tacclAllReduceSingle(gpn)
	}
	a, err := header("TACCL-AllReduce", ir.OpAllReduce, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	next := func(r int) int { return (r/gpn)*gpn + (r%gpn+1)%gpn }
	// Phase A (steps 0 .. nNodes(gpn−1)−1): intra-node ring
	// ReduceScatter, one ring pass per chunk group; afterwards local
	// index p holds the node partial of every chunk ≡ p (mod gpn).
	for node := 0; node < nNodes; node++ {
		for g := 0; g < nNodes; g++ {
			for l := 0; l < gpn; l++ {
				r := node*gpn + l
				for st := 0; st < gpn-1; st++ {
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(r), Dst: ir.Rank(next(r)),
						Step: ir.Step(g*(gpn-1) + st), Chunk: ir.ChunkID(g*gpn + mod(l-1-st, gpn)),
						Type: ir.CommRecvReduceCopy,
					})
				}
			}
		}
	}
	// Phase B: every node's representative sends its partial of chunk c
	// directly to c's owner, one step per contributing node.
	baseB := nNodes * (gpn - 1)
	n := a.NRanks
	for c := 0; c < n; c++ {
		ownNode := c / gpn
		k := 0
		for sn := 0; sn < nNodes; sn++ {
			if sn == ownNode {
				continue
			}
			rep := sn*gpn + c%gpn
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(rep), Dst: ir.Rank(c),
				Step: ir.Step(baseB + k), Chunk: ir.ChunkID(c), Type: ir.CommRecvReduceCopy,
			})
			k++
		}
	}
	// Phase C: the owner ships the fully reduced chunk back to the other
	// nodes' representatives.
	baseC := baseB + nNodes - 1
	for c := 0; c < n; c++ {
		ownNode := c / gpn
		k := 0
		for dn := 0; dn < nNodes; dn++ {
			if dn == ownNode {
				continue
			}
			rep := dn*gpn + c%gpn
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(c), Dst: ir.Rank(rep),
				Step: ir.Step(baseC + k), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
			})
			k++
		}
	}
	// Phase D: intra-node ring AllGather of the reduced chunks, one ring
	// pass per group.
	baseD := baseC + nNodes - 1
	for node := 0; node < nNodes; node++ {
		for g := 0; g < nNodes; g++ {
			for l := 0; l < gpn; l++ {
				r := node*gpn + l
				for st := 0; st < gpn-1; st++ {
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(r), Dst: ir.Rank(next(r)),
						Step: ir.Step(baseD + g*(gpn-1) + st), Chunk: ir.ChunkID(g*gpn + mod(l-st, gpn)),
						Type: ir.CommRecv,
					})
				}
			}
		}
	}
	return a, a.Validate()
}

// TECCLAllGather emulates a TECCL-synthesized AllGather: flow-balanced
// ring routing over every local index (all NICs carry equal load, unlike
// TACCL), but with strictly phase-serialized steps — the lazy structure
// that algorithm-level execution cannot pipeline.
func TECCLAllGather(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes == 1 {
		return tecclAllGatherSingle(gpn)
	}
	a, err := header("TECCL-AllGather", ir.OpAllGather, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	n := a.NRanks
	// Phase A: intra full mesh of own chunks (steps 0..gpn−2).
	for r := 0; r < n; r++ {
		node, local := r/gpn, r%gpn
		for off := 0; off < gpn-1; off++ {
			peer := node*gpn + (local+off+1)%gpn
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(peer),
				Step: ir.Step(off), Chunk: ir.ChunkID(r), Type: ir.CommRecv,
			})
		}
	}
	// Phase B: inter-node ring per local index (steps gpn−1 ..
	// gpn−1+nNodes−2), forwarding own-track chunks.
	baseB := gpn - 1
	for r := 0; r < n; r++ {
		peer := (r + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(peer),
				Step: ir.Step(baseB + b), Chunk: ir.ChunkID(mod(r-b*gpn, n)), Type: ir.CommRecv,
			})
		}
	}
	// Phase C: intra rebroadcast of the remote chunks (steps after all
	// of phase B).
	baseC := baseB + nNodes - 1
	for r := 0; r < n; r++ {
		node, local := r/gpn, r%gpn
		for b := 0; b < nNodes-1; b++ {
			for off := 0; off < gpn-1; off++ {
				peer := node*gpn + (local+off+1)%gpn
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(r), Dst: ir.Rank(peer),
					Step: ir.Step(baseC + b), Chunk: ir.ChunkID(mod(r-(b+1)*gpn, n)), Type: ir.CommRecv,
				})
			}
		}
	}
	return a, a.Validate()
}

// TECCLAllReduce assembles an AllReduce from TECCL-style ReduceScatter
// and AllGather phases using the paper's "general assembly technique"
// (§5.2): intra-mesh RS, inter-ring RS, inter-ring AG, intra-mesh AG —
// structurally like the expert HM algorithm but with fully serialized
// phase steps and no stage annotations, as synthesizer output has.
func TECCLAllReduce(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes == 1 {
		return tecclAllReduceSingle(gpn)
	}
	a, err := header("TECCL-AllReduce", ir.OpAllReduce, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	n := a.NRanks
	// Intra RS.
	for node := 0; node < nNodes; node++ {
		for r := 0; r < gpn; r++ {
			for b := 0; b < nNodes; b++ {
				for off := 0; off < gpn-1; off++ {
					src := node*gpn + r
					dst := node*gpn + (r+off+1)%gpn
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(src), Dst: ir.Rank(dst),
						Step: ir.Step(b*(gpn-1) + off), Chunk: ir.ChunkID(mod(dst+b*gpn, n)),
						Type: ir.CommRecvReduceCopy,
					})
				}
			}
		}
	}
	// Inter ring RS.
	base2 := nNodes * (gpn - 1)
	for src := 0; src < n; src++ {
		dst := (src + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(dst),
				Step: ir.Step(base2 + b), Chunk: ir.ChunkID(mod(src-b*gpn, n)),
				Type: ir.CommRecvReduceCopy,
			})
		}
	}
	// Inter ring AG.
	base3 := base2 + nNodes - 1
	for src := 0; src < n; src++ {
		dst := (src + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(dst),
				Step: ir.Step(base3 + b), Chunk: ir.ChunkID(mod(src-(b+nNodes-1)*gpn, n)),
				Type: ir.CommRecv,
			})
		}
	}
	// Intra AG.
	base4 := base3 + nNodes - 1
	for node := 0; node < nNodes; node++ {
		for r := 0; r < gpn; r++ {
			for b := 0; b < nNodes; b++ {
				for off := 0; off < gpn-1; off++ {
					src := node*gpn + r
					dst := node*gpn + (r+off+1)%gpn
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(src), Dst: ir.Rank(dst),
						Step: ir.Step(base4 + b), Chunk: ir.ChunkID(mod(src+b*gpn, n)),
						Type: ir.CommRecv,
					})
				}
			}
		}
	}
	return a, a.Validate()
}
