package synth

import (
	"testing"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

var shapes = [][2]int{{2, 4}, {2, 8}, {4, 4}, {4, 8}, {3, 3}}

func TestTACCLAllGatherCorrect(t *testing.T) {
	for _, c := range shapes {
		a, err := TACCLAllGather(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestTACCLAllReduceCorrect(t *testing.T) {
	for _, c := range shapes {
		a, err := TACCLAllReduce(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestTECCLAllGatherCorrect(t *testing.T) {
	for _, c := range shapes {
		a, err := TECCLAllGather(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestTECCLAllReduceCorrect(t *testing.T) {
	for _, c := range shapes {
		a, err := TECCLAllReduce(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

// TACCL plans must exhibit the relay concentration the paper observes:
// only a strict subset of local indices carries inter-node traffic when
// nodes are few.
func TestTACCLRelayConcentration(t *testing.T) {
	a, err := TACCLAllGather(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	interSenders := map[ir.Rank]bool{}
	for _, tr := range a.Transfers {
		if int(tr.Src)/8 != int(tr.Dst)/8 {
			interSenders[tr.Src] = true
		}
	}
	if len(interSenders) >= 16 {
		t.Errorf("TACCL plan uses %d inter-node senders; expected relay concentration (<16)", len(interSenders))
	}
}

// Synthesized plans carry no stage annotations: MSCCL executes them at
// algorithm level (§2.1).
func TestSynthesizedPlansHaveNoStages(t *testing.T) {
	builders := map[string]func(int, int) (*ir.Algorithm, error){
		"taccl-ag": TACCLAllGather, "taccl-ar": TACCLAllReduce,
		"teccl-ag": TECCLAllGather, "teccl-ar": TECCLAllReduce,
	}
	for name, b := range builders {
		a, err := b(2, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NStages() != 1 {
			t.Errorf("%s: synthesized plan has %d stages, want 1", name, a.NStages())
		}
	}
}

func TestSynthRejectsBadSizes(t *testing.T) {
	if _, err := TACCLAllGather(1, 1); err == nil {
		t.Error("TACCLAllGather(1,1) should fail")
	}
	if _, err := TECCLAllReduce(2, 1); err == nil {
		t.Error("TECCLAllReduce(2,1) should fail")
	}
}

func TestSolverAllGatherCorrect(t *testing.T) {
	for _, shape := range [][2]int{{1, 4}, {2, 4}, {2, 8}, {4, 4}, {3, 6}} {
		s := &Solver{Topo: topo.New(shape[0], shape[1], topo.A100())}
		a, err := s.SynthesizeAllGather()
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("%v: %v", shape, err)
		}
	}
}

func TestSolverAllReduceCorrect(t *testing.T) {
	for _, shape := range [][2]int{{2, 4}, {2, 8}, {4, 4}} {
		s := &Solver{Topo: topo.New(shape[0], shape[1], topo.A100())}
		a, err := s.SynthesizeAllReduce()
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("%v: %v", shape, err)
		}
	}
}

// The router must balance inter-node traffic across NICs: on 2×8 with 4
// NICs per node, no NIC should carry more than twice the mean egress
// load.
func TestSolverNICBalance(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	s := &Solver{Topo: tp}
	a, err := s.SynthesizeAllGather()
	if err != nil {
		t.Fatal(err)
	}
	egress := map[int]int{}
	total := 0
	for _, tr := range a.Transfers {
		if tp.SameNode(tr.Src, tr.Dst) {
			continue
		}
		egress[tp.NIC(tr.Src)]++
		total++
	}
	if total == 0 {
		t.Fatal("no inter-node transfers")
	}
	mean := float64(total) / float64(len(egress))
	for nic, n := range egress {
		if float64(n) > 2*mean {
			t.Errorf("NIC %d carries %d of %d inter hops (mean %.1f) — unbalanced", nic, n, total, mean)
		}
	}
}

func TestSolverRejectsBadInput(t *testing.T) {
	s := &Solver{}
	if _, err := s.SynthesizeAllGather(); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := (&Solver{Topo: topo.New(1, 1, topo.A100())}).SynthesizeAllGather(); err == nil {
		t.Error("single rank should fail")
	}
}

// Sparse TACCL plans: every GPU talks to at most ring-next, ring-prev
// and relay/owner peers — far fewer connections than a mesh, the
// property that lets ResCCL merge TBs down to Table 3's 4-6 per GPU.
func TestTACCLPlansAreSparse(t *testing.T) {
	a, err := TACCLAllGather(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := map[ir.Rank]map[ir.Rank]bool{}
	for _, tr := range a.Transfers {
		if out[tr.Src] == nil {
			out[tr.Src] = map[ir.Rank]bool{}
		}
		out[tr.Src][tr.Dst] = true
	}
	for r, peers := range out {
		if len(peers) > 3 {
			t.Errorf("rank %d has %d outgoing connections; sparse plans should have ≤3", r, len(peers))
		}
	}
}

// The relay function must concentrate node-pair traffic: for a fixed
// (src,dst) node pair every inter-node transfer uses one GPU pair.
func TestRelayDeterminism(t *testing.T) {
	a, err := TACCLAllGather(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[[2]int]map[[2]ir.Rank]bool{}
	for _, tr := range a.Transfers {
		sn, dn := int(tr.Src)/4, int(tr.Dst)/4
		if sn == dn {
			continue
		}
		key := [2]int{sn, dn}
		if pairs[key] == nil {
			pairs[key] = map[[2]ir.Rank]bool{}
		}
		pairs[key][[2]ir.Rank{tr.Src, tr.Dst}] = true
	}
	for np, conns := range pairs {
		if len(conns) != 1 {
			t.Errorf("node pair %v uses %d GPU pairs, want 1 (relay concentration)", np, len(conns))
		}
	}
}
