// Package search is the sketch-guided candidate search over the synth
// package's genome family: it enumerates sketch corners, mutates
// routing knobs under a seeded RNG, and scores candidates with the
// compile pipeline and the flow simulator, gating every genome through
// the full correctness gauntlet. It lives below synth so the expert
// registry can depend on the genome builders without pulling the
// compile pipeline into a cycle.
package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/verify"
)

// SearchOptions tune the sketch search. The zero value applies the
// defaults; the same options and seed always return the same
// candidates in the same order.
type SearchOptions struct {
	// Seed drives the mutation stream (default 1). The search never
	// touches the global rand source.
	Seed int64
	// Beam is how many candidates survive each round (default 4).
	Beam int
	// Rounds is how many mutation rounds run after the sketch
	// enumeration (default 2).
	Rounds int
	// Protocol is the transport tier candidates are scored under;
	// ProtoAuto scores at Simple-tier cost.
	Protocol ir.Protocol
	// ChunkBytes is the simulated transfer chunk size (default 1 MiB).
	ChunkBytes int64
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Beam <= 0 {
		o.Beam = 4
	}
	if o.Rounds < 0 {
		o.Rounds = 0
	} else if o.Rounds == 0 {
		o.Rounds = 2
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	return o
}

// Candidate is one verified, scored member of the sketch family.
type Candidate struct {
	// Genome is the point searched; Algo is its built plan (Name is
	// Genome.Encode(), so the plan can be rebuilt by name alone).
	Genome synth.Genome
	Algo   *ir.Algorithm
	// Completion is the simulated wall time (seconds) at the searched
	// buffer size and protocol tier.
	Completion float64
}

// Search runs the sketch-guided synthesis: enumerate every sketch of
// the family for (op, topology), score each by compiling it through the
// core pipeline and simulating bufferBytes at the requested tier, then
// run a seeded local search that mutates the surviving genomes' routing
// knobs. Every returned candidate has passed the full correctness
// gauntlet: ir.Validate, the concrete data-plane check
// (collective.Check), the symbolic postcondition verifier
// (verify.Check, up to its 64-rank bound) and the static analyzer.
func Search(tp *topo.Topology, op ir.OpType, bufferBytes int64, opts SearchOptions) ([]Candidate, error) {
	if tp == nil {
		return nil, fmt.Errorf("synth: search needs a topology")
	}
	if bufferBytes <= 0 {
		return nil, fmt.Errorf("synth: search needs a positive buffer size, got %d", bufferBytes)
	}
	if !synth.SketchCovers(op) {
		return nil, fmt.Errorf("synth: search does not cover %v", op)
	}
	if tp.NRanks() < 2 {
		return nil, fmt.Errorf("synth: search needs ≥2 ranks, got %d", tp.NRanks())
	}
	opts = opts.withDefaults()

	seen := map[string]bool{}
	var beam []Candidate
	score := func(g synth.Genome) {
		name := g.Encode()
		if seen[name] {
			return
		}
		seen[name] = true
		if cand, err := evaluate(tp, g, bufferBytes, opts); err == nil {
			beam = append(beam, cand)
		}
	}

	for _, g := range seedSketches(op, tp.NNodes, tp.GPUsPerNode) {
		score(g)
	}
	if len(beam) == 0 {
		return nil, fmt.Errorf("synth: no sketch survived the correctness gates for %v on %d×%d",
			op, tp.NNodes, tp.GPUsPerNode)
	}
	sortCandidates(beam)
	if len(beam) > opts.Beam {
		beam = beam[:opts.Beam]
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	for round := 0; round < opts.Rounds; round++ {
		// Mutate a snapshot of the beam; score() appends survivors.
		parents := append([]Candidate(nil), beam...)
		for _, p := range parents {
			for m := 0; m < 3; m++ {
				score(mutate(p.Genome, rng))
			}
		}
		sortCandidates(beam)
		if len(beam) > opts.Beam {
			beam = beam[:opts.Beam]
		}
	}
	return beam, nil
}

// seedSketches enumerates the sketch corners of the family for a shape:
// every intra × inter × rail-assignment combination that is distinct on
// the shape, at rotation 0.
func seedSketches(op ir.OpType, nNodes, gpn int) []synth.Genome {
	intras := []synth.IntraKind{synth.IntraMesh, synth.IntraRing}
	if gpn == 1 {
		intras = intras[:1]
	}
	inters := []synth.InterKind{synth.InterDirect, synth.InterRing, synth.InterTree}
	if nNodes == 1 {
		inters = inters[:1]
	}
	spreads := []bool{false, true}
	if gpn == 1 || nNodes == 1 {
		spreads = spreads[:1]
	}
	var out []synth.Genome
	for _, in := range intras {
		for _, ex := range inters {
			for _, sp := range spreads {
				out = append(out, synth.Genome{
					Op: op, NNodes: nNodes, GPN: gpn,
					Intra: in, Inter: ex, Spread: sp,
				})
			}
		}
	}
	return out
}

// mutate perturbs one routing knob of a genome: rotate the rail
// assignment, flip the per-chunk rail spreading, or switch a routing
// family (the steps-vs-rounds move).
func mutate(g synth.Genome, rng *rand.Rand) synth.Genome {
	switch rng.Intn(4) {
	case 0:
		if g.GPN > 1 {
			g.Rotate = (g.Rotate + 1 + rng.Intn(g.GPN-1)) % g.GPN
		}
	case 1:
		if g.GPN > 1 && g.NNodes > 1 {
			g.Spread = !g.Spread
		}
	case 2:
		if g.GPN > 1 {
			if g.Intra == synth.IntraMesh {
				g.Intra = synth.IntraRing
			} else {
				g.Intra = synth.IntraMesh
			}
		}
	default:
		if g.NNodes > 1 {
			g.Inter = synth.InterKind((int(g.Inter) + 1 + rng.Intn(2)) % 3)
		}
	}
	return g
}

// evaluate builds, gates and scores one genome. Genomes that fail any
// correctness gate are reported as errors and never scored.
func evaluate(tp *topo.Topology, g synth.Genome, bufferBytes int64, opts SearchOptions) (Candidate, error) {
	algo, err := g.Build()
	if err != nil {
		return Candidate{}, err
	}
	compiled, err := Gate(algo, tp, opts.Protocol)
	if err != nil {
		return Candidate{}, err
	}
	res, err := sim.Run(sim.Config{
		Topo:        tp,
		Kernel:      compiled.Kernel,
		BufferBytes: bufferBytes,
		ChunkBytes:  opts.ChunkBytes,
	})
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Genome: g, Algo: algo, Completion: res.Completion}, nil
}

// Gate runs the full correctness gauntlet on a synthesized algorithm —
// the concrete data-plane execution check, the symbolic postcondition
// verifier (within its rank bound) and the static analyzer's gate
// subset over the compiled plan — and returns the compiled result. It
// is the registration gate: nothing enters a beam, a registry or a
// dispatch table without passing it.
func Gate(algo *ir.Algorithm, tp *topo.Topology, proto ir.Protocol) (*core.Compiled, error) {
	if err := collective.Check(algo); err != nil {
		return nil, fmt.Errorf("synth: %s failed data-plane check: %w", algo.Name, err)
	}
	if algo.NRanks <= verify.MaxRanks {
		if _, err := verify.Check(algo.Op, algo.NRanks, algo.NChunks, nil, algo.Sorted(), verify.Expect{}); err != nil {
			return nil, fmt.Errorf("synth: %s failed symbolic verification: %w", algo.Name, err)
		}
	}
	compiled, err := core.Compile(context.Background(), algo, tp, core.Options{
		Protocol:   proto,
		SkipVerify: true, // the data-plane check above already ran
	})
	if err != nil {
		return nil, fmt.Errorf("synth: %s failed to compile: %w", algo.Name, err)
	}
	report, err := analyze.Plan(compiled.Kernel, analyze.Options{Checks: analyze.CheckGate})
	if err != nil {
		return nil, fmt.Errorf("synth: %s failed analysis: %w", algo.Name, err)
	}
	if err := report.Err(); err != nil {
		return nil, fmt.Errorf("synth: %s failed static analysis: %w", algo.Name, err)
	}
	return compiled, nil
}

// sortCandidates orders by completion, then name, so equal scores
// resolve deterministically.
func sortCandidates(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Completion != cands[j].Completion {
			return cands[i].Completion < cands[j].Completion
		}
		return cands[i].Algo.Name < cands[j].Algo.Name
	})
}
