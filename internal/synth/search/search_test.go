package search

import (
	"math/rand"
	"testing"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

var sketchOps = []ir.OpType{ir.OpAllGather, ir.OpAllReduce, ir.OpReduceScatter}

// sketchShapes covers single-node, single-GPU-per-node, dgx-like and
// non-power-of-two shapes; the verifier's 64-rank bound covers all.
var sketchShapes = []struct{ nodes, gpn int }{
	{1, 8}, {8, 1}, {2, 8}, {4, 4}, {3, 2}, {2, 3}, {3, 5},
}

func TestSketchNameRoundTrip(t *testing.T) {
	for _, op := range sketchOps {
		for _, sh := range sketchShapes {
			for _, g := range seedSketches(op, sh.nodes, sh.gpn) {
				g.Rotate = (sh.gpn - 1) / 2
				name := g.Encode()
				back, err := synth.ParseGenome(name)
				if err != nil {
					t.Fatalf("synth.ParseGenome(%q): %v", name, err)
				}
				if back != g {
					t.Fatalf("round trip %q: got %+v want %+v", name, back, g)
				}
			}
		}
	}
	if _, err := synth.ParseGenome("synth:sketch/zz/2x8/im-ed-s0-r0"); err == nil {
		t.Fatal("bad op code accepted")
	}
	if synth.IsSketchName("hm-allreduce") {
		t.Fatal("registry name misdetected as sketch")
	}
}

// TestSketchFamilyProvablyCorrect is the synthesizer's core property:
// every genome of the family — all sketch corners, every rotation, on
// every shape — must pass the full correctness gauntlet (data-plane
// check, symbolic verifier, static analyzer) under every protocol tier.
func TestSketchFamilyProvablyCorrect(t *testing.T) {
	tiers := []ir.Protocol{ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple}
	for _, op := range sketchOps {
		for _, sh := range sketchShapes {
			tp := topo.New(sh.nodes, sh.gpn, topo.A100())
			for _, g := range seedSketches(op, sh.nodes, sh.gpn) {
				for rot := 0; rot < sh.gpn; rot++ {
					g.Rotate = rot
					algo, err := g.Build()
					if err != nil {
						t.Fatalf("%s: build: %v", g.Encode(), err)
					}
					if algo.Name != g.Encode() {
						t.Fatalf("algorithm name %q != genome name %q", algo.Name, g.Encode())
					}
					tier := tiers[(rot+int(g.Intra)+int(g.Inter))%len(tiers)]
					if _, err := Gate(algo, tp, tier); err != nil {
						t.Fatalf("gate(%s, %v): %v", g.Encode(), tier, err)
					}
				}
			}
		}
	}
}

// TestSketchMutationsProvablyCorrect walks random mutation chains from
// every sketch corner and gates each visited genome — the states the
// beam search can actually reach.
func TestSketchMutationsProvablyCorrect(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		for _, sh := range []struct{ nodes, gpn int }{{2, 8}, {3, 2}} {
			tp := topo.New(sh.nodes, sh.gpn, topo.A100())
			for _, op := range sketchOps {
				g := seedSketches(op, sh.nodes, sh.gpn)[0]
				for step := 0; step < 6; step++ {
					g = mutate(g, rng)
					algo, err := g.Build()
					if err != nil {
						t.Fatalf("seed %d %s: build: %v", seed, g.Encode(), err)
					}
					if _, err := Gate(algo, tp, ir.ProtoAuto); err != nil {
						t.Fatalf("seed %d gate(%s): %v", seed, g.Encode(), err)
					}
				}
			}
		}
	}
}

func TestBuildNamedMatchesBuild(t *testing.T) {
	g := synth.Genome{Op: ir.OpAllReduce, NNodes: 2, GPN: 8, Intra: synth.IntraMesh, Inter: synth.InterRing, Spread: true, Rotate: 3}
	want, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := synth.BuildNamed(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Transfers) != len(want.Transfers) {
		t.Fatalf("synth.BuildNamed: %d transfers, want %d", len(got.Transfers), len(want.Transfers))
	}
	for i := range got.Transfers {
		if got.Transfers[i] != want.Transfers[i] {
			t.Fatalf("transfer %d differs: %+v vs %+v", i, got.Transfers[i], want.Transfers[i])
		}
	}
}

func TestSearchDeterministicAndSorted(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	opts := SearchOptions{Seed: 11, Beam: 3, Rounds: 2}
	a, err := Search(tp, ir.OpAllReduce, 4<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(tp, ir.OpAllReduce, 4<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) > 3 {
		t.Fatalf("beam size %d out of range", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("rerun returned %d candidates, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Algo.Name != b[i].Algo.Name || a[i].Completion != b[i].Completion {
			t.Fatalf("rerun diverged at %d: %s/%g vs %s/%g",
				i, a[i].Algo.Name, a[i].Completion, b[i].Algo.Name, b[i].Completion)
		}
		if i > 0 && a[i].Completion < a[i-1].Completion {
			t.Fatalf("beam not sorted: %g after %g", a[i].Completion, a[i-1].Completion)
		}
	}
}

func TestSearchCoversOpsAndTiers(t *testing.T) {
	tp := topo.New(2, 2, topo.A100())
	for _, op := range sketchOps {
		for _, tier := range []ir.Protocol{ir.ProtoLL, ir.ProtoSimple} {
			cands, err := Search(tp, op, 1<<20, SearchOptions{Seed: 3, Beam: 2, Rounds: 1, Protocol: tier})
			if err != nil {
				t.Fatalf("%v/%v: %v", op, tier, err)
			}
			if len(cands) == 0 {
				t.Fatalf("%v/%v: empty beam", op, tier)
			}
			for _, c := range cands {
				if c.Algo.Op != op {
					t.Fatalf("%v/%v: candidate op %v", op, tier, c.Algo.Op)
				}
			}
		}
	}
}

func TestSearchRejectsBadInput(t *testing.T) {
	tp := topo.New(2, 2, topo.A100())
	if _, err := Search(nil, ir.OpAllReduce, 1<<20, SearchOptions{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Search(tp, ir.OpAllReduce, 0, SearchOptions{}); err == nil {
		t.Fatal("zero buffer accepted")
	}
	if _, err := Search(tp, ir.OpBroadcast, 1<<20, SearchOptions{}); err == nil {
		t.Fatal("uncovered op accepted")
	}
}
