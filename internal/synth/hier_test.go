package synth

import (
	"testing"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/ir"
)

// Hierarchical AllReduce must be data-plane correct on small shapes,
// including non-power-of-two node counts (the binomial trees must
// handle ragged depths) and asymmetric gpn.
func TestHierAllReduceCorrect(t *testing.T) {
	for _, c := range [][2]int{{2, 2}, {2, 4}, {3, 4}, {4, 4}, {5, 3}, {4, 8}, {8, 2}} {
		a, err := HierAllReduce(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

// Plan size must grow linearly in node count at fixed gpn — the whole
// reason the composition exists. Exact count: two intra-node phases of
// nNodes·gpn·(gpn−1) transfers each, plus one rail reduce tree and one
// rail broadcast tree of gpn·(nNodes−1) transfers each.
func TestHierAllReduceLinearSize(t *testing.T) {
	for _, c := range [][2]int{{2, 4}, {8, 4}, {64, 8}, {512, 8}} {
		nodes, gpn := c[0], c[1]
		a, err := HierAllReduce(nodes, gpn)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		want := 2*nodes*gpn*(gpn-1) + 2*gpn*(nodes-1)
		if got := len(a.Transfers); got != want {
			t.Errorf("nodes=%d gpn=%d: %d transfers, want %d", nodes, gpn, got, want)
		}
		if a.NChunks != gpn {
			t.Errorf("nodes=%d gpn=%d: NChunks = %d, want %d (one chunk per rail)", nodes, gpn, a.NChunks, gpn)
		}
	}
}

// Every inter-node transfer must stay on its rail: src and dst share
// the same local index, so on a rail-optimized fabric no hierarchical
// traffic ever climbs to the spine tier.
func TestHierAllReduceRailAligned(t *testing.T) {
	const nodes, gpn = 6, 4
	a, err := HierAllReduce(nodes, gpn)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range a.Transfers {
		if int(tr.Src)/gpn == int(tr.Dst)/gpn {
			continue
		}
		if int(tr.Src)%gpn != int(tr.Dst)%gpn {
			t.Fatalf("inter-node transfer %d→%d crosses rails (locals %d and %d)",
				tr.Src, tr.Dst, int(tr.Src)%gpn, int(tr.Dst)%gpn)
		}
		if int(tr.Chunk) != int(tr.Src)%gpn {
			t.Fatalf("inter-node transfer %d→%d carries chunk %d off rail %d",
				tr.Src, tr.Dst, tr.Chunk, int(tr.Src)%gpn)
		}
	}
}

// Degenerate shapes must be rejected, not mis-built: the plan-lint CI
// matrix relies on the error (exit 1 = shape unsupported, skipped).
func TestHierAllReduceRejectsDegenerate(t *testing.T) {
	for _, c := range [][2]int{{1, 8}, {0, 4}, {2, 1}, {4, 0}} {
		if _, err := HierAllReduce(c[0], c[1]); err == nil {
			t.Errorf("nodes=%d gpn=%d: expected an error", c[0], c[1])
		}
	}
}

// The generated algorithm must carry valid metadata for the registry.
func TestHierAllReduceMetadata(t *testing.T) {
	a, err := HierAllReduce(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Op != ir.OpAllReduce || a.NRanks != 16 {
		t.Errorf("metadata: op=%v nranks=%d, want AllReduce/16", a.Op, a.NRanks)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
