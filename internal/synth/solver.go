package synth

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Solver is a small flow-routing synthesizer: the greedy heuristic core
// of what TECCL's multi-commodity MILP approximates. Given a topology it
// routes every chunk from its owner to every destination over
// load-balanced paths (direct intra-node hops, NIC-aware inter-node hops
// with per-NIC load tracking and optional relay hops), then assigns
// steps by path depth. The output is a valid algorithm-level plan —
// exactly the kind of synthesizer output the paper's backends consume.
type Solver struct {
	// Topo is the target cluster.
	Topo *topo.Topology
}

// nicLoad tracks how many chunk-hops have been placed on each NIC, so
// the router spreads inter-node traffic (the load balancing TECCL's
// objective encodes).
type nicLoad struct {
	egress, ingress []int
}

// SynthesizeAllGather routes every rank's chunk to all other ranks and
// returns the resulting plan.
func (s *Solver) SynthesizeAllGather() (*ir.Algorithm, error) {
	t := s.Topo
	if t == nil {
		return nil, fmt.Errorf("synth: solver needs a topology")
	}
	n := t.NRanks()
	if n < 2 {
		return nil, fmt.Errorf("synth: need ≥2 ranks, got %d", n)
	}
	a := &ir.Algorithm{
		Name:    "Solver-AllGather",
		Op:      ir.OpAllGather,
		NRanks:  n,
		NChunks: n,
		NWarps:  16,
	}
	load := &nicLoad{
		egress:  make([]int, t.NNodes*t.NICsPerNode),
		ingress: make([]int, t.NNodes*t.NICsPerNode),
	}
	// Per (rank, chunk) arrival step, so forwarding hops depend on
	// delivered data. Owners start at step −1 (available before step 0).
	arrival := make(map[[2]int]int, n*n)
	for c := 0; c < n; c++ {
		arrival[[2]int{c, c}] = -1
	}

	// Route chunks in round-robin over owners so NIC load interleaves.
	for c := 0; c < n; c++ {
		owner := ir.Rank(c)
		// Ship the chunk to a representative on every other node first
		// (inter-node hops are the scarce resource), then fan out
		// intra-node.
		for node := 0; node < t.NNodes; node++ {
			if node == t.Node(owner) {
				continue
			}
			if err := s.routeToNode(a, load, arrival, owner, ir.ChunkID(c), node); err != nil {
				return nil, err
			}
		}
		// Intra-node fan-out on every node (including the owner's).
		for node := 0; node < t.NNodes; node++ {
			s.fanOut(a, arrival, ir.ChunkID(c), node)
		}
	}
	return a, a.Validate()
}

// routeToNode places the inter-node hop carrying chunk c from a holder
// on the owner's node to some representative GPU on the target node,
// choosing the NIC pair with the least load.
func (s *Solver) routeToNode(a *ir.Algorithm, load *nicLoad, arrival map[[2]int]int,
	owner ir.Rank, c ir.ChunkID, dstNode int) error {

	t := s.Topo
	// Candidate sources: any GPU already holding the chunk (owner's node
	// GPUs after fan-out would need ordering; keep to GPUs with recorded
	// arrival).
	bestCost := int(^uint(0) >> 1)
	var bestSrc, bestDst ir.Rank = -1, -1
	for srcLocal := 0; srcLocal < t.GPUsPerNode; srcLocal++ {
		src := ir.Rank(t.Node(owner)*t.GPUsPerNode + srcLocal)
		if _, has := arrival[[2]int{int(src), int(c)}]; !has {
			continue
		}
		for dstLocal := 0; dstLocal < t.GPUsPerNode; dstLocal++ {
			dst := ir.Rank(dstNode*t.GPUsPerNode + dstLocal)
			cost := load.egress[t.NIC(src)] + load.ingress[t.NIC(dst)]
			if cost < bestCost {
				bestCost, bestSrc, bestDst = cost, src, dst
			}
		}
	}
	if bestSrc < 0 {
		return fmt.Errorf("synth: no holder of chunk %d on node %d", c, t.Node(owner))
	}
	srcArr := arrival[[2]int{int(bestSrc), int(c)}]
	step := srcArr + 1
	// Inter-node hops start after the intra fan-out window so plans
	// stay hazard-free; depth-based steps keep dependencies satisfied.
	if step < t.GPUsPerNode {
		step = t.GPUsPerNode
	}
	// Serialize per NIC: later placements on a loaded NIC get later
	// steps, encoding the queueing the MILP's makespan objective models.
	step += load.egress[t.NIC(bestSrc)]
	a.Transfers = append(a.Transfers, ir.Transfer{
		Src: bestSrc, Dst: bestDst, Step: ir.Step(step), Chunk: c, Type: ir.CommRecv,
	})
	load.egress[t.NIC(bestSrc)]++
	load.ingress[t.NIC(bestDst)]++
	key := [2]int{int(bestDst), int(c)}
	if prev, ok := arrival[key]; !ok || step < prev {
		arrival[key] = step
	}
	return nil
}

// fanOut broadcasts chunk c from its earliest holder on the node to all
// local peers, one step after arrival.
func (s *Solver) fanOut(a *ir.Algorithm, arrival map[[2]int]int, c ir.ChunkID, node int) {
	t := s.Topo
	// Find the earliest holder on this node.
	holder := ir.Rank(-1)
	at := int(^uint(0) >> 1)
	for l := 0; l < t.GPUsPerNode; l++ {
		r := ir.Rank(node*t.GPUsPerNode + l)
		if arr, ok := arrival[[2]int{int(r), int(c)}]; ok && arr < at {
			holder, at = r, arr
		}
	}
	if holder < 0 {
		return // chunk never reaches this node (cannot happen after routing)
	}
	step := at + 1
	for l := 0; l < t.GPUsPerNode; l++ {
		r := ir.Rank(node*t.GPUsPerNode + l)
		if r == holder {
			continue
		}
		if _, ok := arrival[[2]int{int(r), int(c)}]; ok {
			continue // already delivered by routing
		}
		a.Transfers = append(a.Transfers, ir.Transfer{
			Src: holder, Dst: r, Step: ir.Step(step), Chunk: c, Type: ir.CommRecv,
		})
		arrival[[2]int{int(r), int(c)}] = step
	}
}

// SynthesizeAllReduce assembles an AllReduce from the solver's routed
// AllGather combined with a reduce-to-owner phase — the "general
// assembly technique" of §5.2 for synthesizers without native AllReduce.
func (s *Solver) SynthesizeAllReduce() (*ir.Algorithm, error) {
	t := s.Topo
	if t == nil {
		return nil, fmt.Errorf("synth: solver needs a topology")
	}
	n := t.NRanks()
	if n < 2 {
		return nil, fmt.Errorf("synth: need ≥2 ranks, got %d", n)
	}
	a := &ir.Algorithm{
		Name:    "Solver-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  n,
		NChunks: n,
		NWarps:  16,
	}
	gpn := t.GPUsPerNode
	// Phase 1 — intra-node reduce: every GPU reduces chunk c into c's
	// node-local representative (local index c mod gpn), ordered by
	// sender local index.
	for node := 0; node < t.NNodes; node++ {
		for c := 0; c < n; c++ {
			rep := ir.Rank(node*gpn + c%gpn)
			step := 0
			for l := 0; l < gpn; l++ {
				src := ir.Rank(node*gpn + l)
				if src == rep {
					continue
				}
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: src, Dst: rep, Step: ir.Step(step), Chunk: ir.ChunkID(c),
					Type: ir.CommRecvReduceCopy,
				})
				step++
			}
		}
	}
	// Phase 2 — cross-node reduce to the chunk's owner representative,
	// NIC-load-balanced order.
	base2 := gpn // after phase 1's gpn−1 steps
	type hop struct {
		src, dst ir.Rank
		c        ir.ChunkID
	}
	var hops []hop
	for c := 0; c < n; c++ {
		ownRep := ir.Rank(c)
		for node := 0; node < t.NNodes; node++ {
			if node == t.Node(ownRep) {
				continue
			}
			hops = append(hops, hop{src: ir.Rank(node*gpn + c%gpn), dst: ownRep, c: ir.ChunkID(c)})
		}
	}
	sort.SliceStable(hops, func(i, j int) bool { // interleave chunks across NICs
		if hops[i].c%ir.ChunkID(gpn) != hops[j].c%ir.ChunkID(gpn) {
			return hops[i].c%ir.ChunkID(gpn) < hops[j].c%ir.ChunkID(gpn)
		}
		return i < j
	})
	perDst := map[ir.Rank]int{}
	for _, h := range hops {
		a.Transfers = append(a.Transfers, ir.Transfer{
			Src: h.src, Dst: h.dst, Step: ir.Step(base2 + perDst[h.dst]), Chunk: h.c,
			Type: ir.CommRecvReduceCopy,
		})
		perDst[h.dst]++
	}
	// Phase 3 — broadcast back: owner ships the reduced chunk to every
	// node's representative, then representatives fan out locally.
	base3 := base2 + t.NNodes // phase 2 uses ≤ nNodes−1 steps per owner
	for c := 0; c < n; c++ {
		owner := ir.Rank(c)
		k := 0
		for node := 0; node < t.NNodes; node++ {
			if node == t.Node(owner) {
				continue
			}
			rep := ir.Rank(node*gpn + c%gpn)
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: owner, Dst: rep, Step: ir.Step(base3 + k), Chunk: ir.ChunkID(c),
				Type: ir.CommRecv,
			})
			k++
		}
	}
	base4 := base3 + t.NNodes
	for c := 0; c < n; c++ {
		for node := 0; node < t.NNodes; node++ {
			holder := ir.Rank(node*gpn + c%gpn)
			if node == t.Node(ir.Rank(c)) {
				holder = ir.Rank(c)
			}
			step := 0
			for l := 0; l < gpn; l++ {
				dst := ir.Rank(node*gpn + l)
				if dst == holder {
					continue
				}
				if node == t.Node(ir.Rank(c)) && dst == ir.Rank(c) {
					continue
				}
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: holder, Dst: dst, Step: ir.Step(base4 + step), Chunk: ir.ChunkID(c),
					Type: ir.CommRecv,
				})
				step++
			}
		}
	}
	return a, a.Validate()
}
