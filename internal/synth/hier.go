package synth

import (
	"fmt"
	"math/bits"

	"github.com/resccl/resccl/internal/ir"
)

// Hierarchical collective composition à la HiCCL: instead of routing
// nRanks chunks through every rank (quadratic transfer counts that cap
// flat algorithms at a few dozen ranks), the collective factors into an
// intra-node stage × an inter-node stage over gpusPerNode chunks — one
// chunk per "rail" of same-local-index GPUs. Plan size then grows
// linearly in the rank count:
//
//	2·nNodes·gpn·(gpn−1)  intra-node mesh transfers
//	2·gpn·(nNodes−1)      inter-node binomial-tree transfers
//
// which is ~66K transfers for a 4096-rank (512×8) AllReduce versus
// ~134M for the flat O(n²) constructions — the difference between a
// plan that compiles, vets and simulates in seconds and one that cannot
// be built at all.

// HierAllReduce builds a hierarchical AllReduce over nNodes servers of
// gpn GPUs with NChunks = gpn, in four phases:
//
//  1. intra-node mesh ReduceScatter: local l ships chunk c to local c,
//     so local c accumulates the node's partial sum of chunk c;
//  2. per-rail binomial-tree reduce: the rank with local index c on
//     every node forms rail c; partial sums converge on node 0 up a
//     binomial tree (any node count, not just powers of two);
//  3. per-rail binomial-tree broadcast of the global sum back down;
//  4. intra-node mesh AllGather: local c fans chunk c out to the node's
//     other locals.
//
// On a rail-optimized fabric (topo.NewRail) phases 2–3 run entirely
// within rails — every inter-node transfer stays on one rail switch.
func HierAllReduce(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes < 2 || gpn < 2 {
		return nil, fmt.Errorf("synth: Hier-AllReduce needs ≥2 nodes and ≥2 GPUs/node, got %d×%d", nNodes, gpn)
	}
	a := &ir.Algorithm{
		Name:    "Hier-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  nNodes * gpn,
		NChunks: gpn,
		NWarps:  16,
	}
	rank := func(node, local int) ir.Rank { return ir.Rank(node*gpn + local) }
	// Tree depth: rounds needed to cover nNodes leaves.
	depth := bits.Len(uint(nNodes - 1))

	// Phase 1 (steps 0..gpn−2): intra-node mesh ReduceScatter. The step
	// offset mod(l−c) keeps the gpn−1 reductions into each (local c,
	// chunk c) location on distinct steps.
	for node := 0; node < nNodes; node++ {
		for c := 0; c < gpn; c++ {
			for l := 0; l < gpn; l++ {
				if l == c {
					continue
				}
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: rank(node, l), Dst: rank(node, c),
					Step: ir.Step(mod(l-c, gpn) - 1), Chunk: ir.ChunkID(c),
					Type: ir.CommRecvReduceCopy,
				})
			}
		}
	}

	// Phase 2 (steps base2..base2+depth−1): binomial-tree reduce within
	// each rail. Node nd (≠0) sends its subtree's partial to
	// nd − 2^k at round k = trailing-zeros(nd); every child of a parent
	// arrives on a distinct earlier round, so step order carries the
	// tree's data dependencies.
	base2 := gpn - 1
	for c := 0; c < gpn; c++ {
		for nd := 1; nd < nNodes; nd++ {
			k := bits.TrailingZeros(uint(nd))
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: rank(nd, c), Dst: rank(nd-1<<k, c),
				Step: ir.Step(base2 + k), Chunk: ir.ChunkID(c),
				Type: ir.CommRecvReduceCopy,
			})
		}
	}

	// Phase 3 (steps base3..base3+depth−1): binomial-tree broadcast back
	// down the same rail, highest subtree first (the mirror image of the
	// reduce).
	base3 := base2 + depth
	for c := 0; c < gpn; c++ {
		for j := depth - 1; j >= 0; j-- {
			for nd := 0; nd+1<<j < nNodes; nd += 2 << j {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: rank(nd, c), Dst: rank(nd+1<<j, c),
					Step: ir.Step(base3 + depth - 1 - j), Chunk: ir.ChunkID(c),
					Type: ir.CommRecv,
				})
			}
		}
	}

	// Phase 4 (steps base4..base4+gpn−2): intra-node mesh AllGather of
	// the now-global sums.
	base4 := base3 + depth
	for node := 0; node < nNodes; node++ {
		for c := 0; c < gpn; c++ {
			for l := 0; l < gpn; l++ {
				if l == c {
					continue
				}
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: rank(node, c), Dst: rank(node, l),
					Step: ir.Step(base4 + mod(l-c, gpn) - 1), Chunk: ir.ChunkID(c),
					Type: ir.CommRecv,
				})
			}
		}
	}
	return a, a.Validate()
}
