package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// TestPermanentValidation: the permanence ↔ infinite-duration pairing is
// enforced in both directions, alongside the NaN/Inf window edges.
func TestPermanentValidation(t *testing.T) {
	tp := topo.New(1, 2, topo.A100())
	good := []Event{
		LinkOut(0, 0),
		LinkOut(0, 0.5),
		RankOut(1, 0),
	}
	for i, e := range good {
		if err := e.Validate(tp, 0); err != nil {
			t.Errorf("good event %d rejected: %v", i, err)
		}
	}
	bad := []Event{
		// Permanent kind with a finite duration.
		{Kind: KindLinkOut, Start: 0, Duration: 1, Resources: []topo.ResourceID{0}},
		// Transient kind with an infinite duration.
		{Kind: KindLinkDown, Start: 0, Duration: math.Inf(1), Resources: []topo.ResourceID{0}},
		// Zero-duration window (empty half-open interval).
		{Kind: KindLinkDown, Start: 0, Duration: 0, Resources: []topo.ResourceID{0}},
		// NaN duration and infinite start.
		{Kind: KindLinkDown, Start: 0, Duration: math.NaN(), Resources: []topo.ResourceID{0}},
		{Kind: KindLinkOut, Start: math.Inf(1), Duration: math.Inf(1), Resources: []topo.ResourceID{0}},
		// Rank out of range.
		{Kind: KindRankOut, Start: 0, Duration: math.Inf(1), Rank: 2},
		{Kind: KindRankOut, Start: 0, Duration: math.Inf(1), Rank: -1},
		// Link-out without resources.
		{Kind: KindLinkOut, Start: 0, Duration: math.Inf(1)},
	}
	for i, e := range bad {
		if err := e.Validate(tp, 0); err == nil {
			t.Errorf("bad event %d (%+v) unexpectedly valid", i, e)
		}
	}
}

// TestOverlappingWindowsValid: overlapping (and nested) transient
// windows are legal — severities compose — and sort deterministically.
func TestOverlappingWindowsValid(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	l := tp.PairLink(0, 1)
	s := &Schedule{Events: []Event{
		LinkDown(l, 0.1, 0.5),
		LinkDown(l, 0.2, 0.1),          // nested
		LinkDegrade(l, 0.15, 0.5, 0.5), // overlapping
		LinkOut(l, 0.3),                // permanent over the same link
	}}
	if err := s.Validate(tp, 0); err != nil {
		t.Fatalf("overlapping windows rejected: %v", err)
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Start < sorted[i-1].Start {
			t.Fatalf("sorted order broken at %d: %+v", i, sorted)
		}
	}
	// The permanent event's End() is +Inf and must sort after finite
	// windows opening at the same time without panicking.
	if !math.IsInf(sorted[len(sorted)-1].End(), 1) && !s.HasPermanent() {
		t.Fatalf("permanent event lost in sort: %+v", sorted)
	}
}

// TestPermanentFailuresUnion: resources and ranks are deduplicated,
// sorted, and independent of event order.
func TestPermanentFailuresUnion(t *testing.T) {
	s := &Schedule{Events: []Event{
		RankOut(3, 0),
		LinkOut(7, 0),
		LinkOut(2, 0.1),
		LinkOut(7, 0.2), // duplicate resource
		RankOut(1, 0.3),
		RankOut(3, 0.4),      // duplicate rank
		LinkDown(9, 0, 1e-3), // transient: excluded
	}}
	res, ranks := s.PermanentFailures()
	if !reflect.DeepEqual(res, []topo.ResourceID{2, 7}) {
		t.Fatalf("resources %v, want [2 7]", res)
	}
	if !reflect.DeepEqual(ranks, []ir.Rank{1, 3}) {
		t.Fatalf("ranks %v, want [1 3]", ranks)
	}
	if !s.HasPermanent() {
		t.Fatal("HasPermanent false on a schedule with permanent events")
	}
	if (&Schedule{Events: []Event{LinkDown(0, 0, 1)}}).HasPermanent() {
		t.Fatal("HasPermanent true on a transient-only schedule")
	}
}

// TestGeneratePermanent: the Permanent budget yields that many distinct
// dead links, deterministically per seed.
func TestGeneratePermanent(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	p := Params{Seed: 11, N: 8, Horizon: 1e-2, Permanent: 3}
	a := Generate(tp, p)
	b := Generate(tp, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same params produced different schedules")
	}
	if err := a.Validate(tp, 0); err != nil {
		t.Fatal(err)
	}
	res, ranks := a.PermanentFailures()
	if len(res) != p.Permanent || len(ranks) != 0 {
		t.Fatalf("permanent failures: %d resources %d ranks, want %d/0", len(res), len(ranks), p.Permanent)
	}
	// Permanent-only generation must work too (N = 0).
	only := Generate(tp, Params{Seed: 5, Horizon: 1e-2, Permanent: 2})
	if got, _ := only.PermanentFailures(); len(got) != 2 || len(only.Events) != 2 {
		t.Fatalf("permanent-only generation: %+v", only.Events)
	}
}

// TestParseScheduleRoundTrip: a well-formed JSON spec parses into the
// equivalent schedule, including the permanent-duration convention.
func TestParseScheduleRoundTrip(t *testing.T) {
	tp := topo.New(2, 2, topo.A100())
	spec := `{
	  "seed": 9,
	  "events": [
	    {"kind": "link-down", "start": 0, "duration": 0.001, "resources": [0], "attempts": 4},
	    {"kind": "link-degrade", "start": 0.001, "duration": 0.002, "resources": [1], "factor": 0.5},
	    {"kind": "nic-flap", "start": 0, "duration": 0.001, "nic": 1},
	    {"kind": "straggler", "start": 0, "duration": 0.001, "tb": 2, "factor": 2.0},
	    {"kind": "link-out", "start": 0.002, "resources": [3]},
	    {"kind": "rank-out", "start": 0, "rank": 2}
	  ]
	}`
	s, err := ParseSchedule([]byte(spec), tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 9 || len(s.Events) != 6 {
		t.Fatalf("parsed schedule wrong shape: %+v", s)
	}
	eg, in := tp.NICResources(1)
	flap := s.Events[2]
	if flap.Kind != KindNICFlap || !reflect.DeepEqual(flap.Resources, []topo.ResourceID{eg, in}) {
		t.Fatalf("nic shorthand not expanded: %+v", flap)
	}
	if !math.IsInf(s.Events[4].Duration, 1) || !math.IsInf(s.Events[5].Duration, 1) {
		t.Fatalf("permanent events did not get infinite windows: %+v", s.Events[4:])
	}
	if s.Events[5].Rank != 2 {
		t.Fatalf("rank-out rank lost: %+v", s.Events[5])
	}
	res, ranks := s.PermanentFailures()
	if !reflect.DeepEqual(res, []topo.ResourceID{3}) || !reflect.DeepEqual(ranks, []ir.Rank{2}) {
		t.Fatalf("permanent failures %v %v", res, ranks)
	}
}

// TestParseScheduleErrors: every malformed spec names the offending
// event by index and kind, so the error is actionable.
func TestParseScheduleErrors(t *testing.T) {
	tp := topo.New(2, 2, topo.A100())
	cases := []struct {
		name, spec, want string
	}{
		{"no events", `{"events": []}`, "no events"},
		{"unknown kind", `{"events": [{"kind": "meteor", "start": 0, "duration": 1}]}`, `event 0 (kind "meteor")`},
		{"unknown field", `{"events": [{"kind": "link-down", "start": 0, "duration": 1, "resources": [0], "sevrity": 3}]}`, "sevrity"},
		{"permanent with duration", `{"events": [{"kind": "link-out", "start": 0, "duration": 1, "resources": [0]}]}`, "permanent events take no duration"},
		{"straggler without tb", `{"events": [{"kind": "straggler", "start": 0, "duration": 1, "factor": 2}]}`, `requires field "tb"`},
		{"tb on link event", `{"events": [{"kind": "link-down", "start": 0, "duration": 1, "resources": [0], "tb": 1}]}`, `"tb" only applies`},
		{"rank-out without rank", `{"events": [{"kind": "rank-out", "start": 0}]}`, `requires field "rank"`},
		{"rank out of range", `{"events": [{"kind": "rank-out", "start": 0, "rank": 99}]}`, "event 0"},
		{"nic out of range", `{"events": [{"kind": "nic-flap", "start": 0, "duration": 1, "nic": 9}]}`, "nic 9 outside"},
		{"nic on link event", `{"events": [{"kind": "link-down", "start": 0, "duration": 1, "resources": [0], "nic": 0}]}`, `"nic" only applies`},
		{"bad resource", `{"events": [{"kind": "link-down", "start": 0, "duration": 1, "resources": [99999]}]}`, "event 0"},
		{"second event bad", `{"events": [{"kind": "link-down", "start": 0, "duration": 1, "resources": [0]}, {"kind": "link-down", "start": -1, "duration": 1, "resources": [0]}]}`, "event 1"},
	}
	for _, tc := range cases {
		_, err := ParseSchedule([]byte(tc.spec), tp, 4)
		if err == nil {
			t.Errorf("%s: spec unexpectedly parsed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
