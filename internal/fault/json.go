package fault

// JSON fault specs: hand-written schedules loaded by ressclsim's
// -fault-spec flag, complementing the seeded random generator. The
// format mirrors Event field-for-field with two conveniences: NIC flaps
// may name the NIC ("nic": 1) instead of its two queue resources, and
// permanent events (link-out, rank-out) omit "duration" — their window
// is [start, ∞), which JSON cannot spell. See docs/faults.md for the
// full format and an example spec.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// ParseKind converts a JSON kind name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "link-degrade":
		return KindLinkDegrade, nil
	case "link-down":
		return KindLinkDown, nil
	case "nic-flap":
		return KindNICFlap, nil
	case "straggler":
		return KindStraggler, nil
	case "link-out":
		return KindLinkOut, nil
	case "rank-out":
		return KindRankOut, nil
	}
	return 0, fmt.Errorf("unknown kind %q (known: link-degrade, link-down, nic-flap, straggler, link-out, rank-out)", s)
}

// jsonEvent is the wire form of one event. Pointer fields distinguish
// "absent" from zero so misuse errors can be precise.
type jsonEvent struct {
	Kind      string            `json:"kind"`
	Start     float64           `json:"start"`
	Duration  float64           `json:"duration,omitempty"`
	Resources []topo.ResourceID `json:"resources,omitempty"`
	Factor    float64           `json:"factor,omitempty"`
	TB        *int              `json:"tb,omitempty"`
	NIC       *int              `json:"nic,omitempty"`
	Attempts  int               `json:"attempts,omitempty"`
	Rank      *int              `json:"rank,omitempty"`
}

type jsonSchedule struct {
	Seed   int64       `json:"seed,omitempty"`
	Events []jsonEvent `json:"events"`
}

// ParseSchedule decodes a JSON fault spec and validates every event
// against the topology (and, when nTBs > 0, the thread-block count).
// Validation errors name the offending event by index and kind so a
// bad spec is actionable.
func ParseSchedule(data []byte, t *topo.Topology, nTBs int) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var js jsonSchedule
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("fault spec: %w", err)
	}
	if len(js.Events) == 0 {
		return nil, fmt.Errorf("fault spec: no events")
	}
	s := &Schedule{Seed: js.Seed}
	for i, je := range js.Events {
		e, err := je.toEvent(t)
		if err == nil {
			err = e.Validate(t, nTBs)
		}
		if err != nil {
			return nil, fmt.Errorf("fault spec: event %d (kind %q): %w", i, je.Kind, err)
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

func (je jsonEvent) toEvent(t *topo.Topology) (Event, error) {
	kind, err := ParseKind(je.Kind)
	if err != nil {
		return Event{}, err
	}
	e := Event{
		Kind: kind, Start: je.Start, Duration: je.Duration,
		Factor: je.Factor, Attempts: je.Attempts,
		Resources: append([]topo.ResourceID(nil), je.Resources...),
	}
	if kind.Permanent() {
		if je.Duration != 0 {
			return Event{}, fmt.Errorf("permanent events take no duration (got %g); the window is [start, ∞)", je.Duration)
		}
		e.Duration = math.Inf(1)
	}
	switch {
	case je.TB != nil && kind != KindStraggler:
		return Event{}, fmt.Errorf("field \"tb\" only applies to stragglers")
	case je.TB == nil && kind == KindStraggler:
		return Event{}, fmt.Errorf("straggler requires field \"tb\"")
	case je.TB != nil:
		e.TB = *je.TB
	}
	switch {
	case je.NIC != nil && kind != KindNICFlap:
		return Event{}, fmt.Errorf("field \"nic\" only applies to nic-flap events")
	case je.NIC != nil:
		if *je.NIC < 0 || *je.NIC >= t.NNICs() {
			return Event{}, fmt.Errorf("nic %d outside [0, %d)", *je.NIC, t.NNICs())
		}
		eg, in := t.NICResources(*je.NIC)
		e.Resources = append(e.Resources, eg, in)
	}
	switch {
	case je.Rank != nil && kind != KindRankOut:
		return Event{}, fmt.Errorf("field \"rank\" only applies to rank-out events")
	case je.Rank == nil && kind == KindRankOut:
		return Event{}, fmt.Errorf("rank-out requires field \"rank\"")
	case je.Rank != nil:
		e.Rank = ir.Rank(*je.Rank)
	}
	return e, nil
}
