package fault

import (
	"reflect"
	"testing"

	"github.com/resccl/resccl/internal/topo"
)

func TestGenerateDeterministic(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	p := Params{Seed: 42, N: 32, Horizon: 0.01, NTBs: 12}
	a := Generate(tp, p)
	b := Generate(tp, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same params produced different schedules")
	}
	if len(a.Events) != p.N {
		t.Fatalf("got %d events, want %d", len(a.Events), p.N)
	}
	if err := a.Validate(tp, p.NTBs); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	c := Generate(tp, Params{Seed: 43, N: 32, Horizon: 0.01, NTBs: 12})
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestGenerateMix(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	s := Generate(tp, Params{Seed: 1, N: 200, Horizon: 0.01, NTBs: 8})
	counts := map[Kind]int{}
	for _, e := range s.Events {
		counts[e.Kind]++
		if err := e.Validate(tp, 8); err != nil {
			t.Fatalf("event invalid: %v", err)
		}
		if e.Kind == KindLinkDown || e.Kind == KindNICFlap {
			if e.Attempts < 1 {
				t.Fatalf("down event has no runtime severity: %+v", e)
			}
		}
	}
	for _, k := range []Kind{KindLinkDegrade, KindLinkDown, KindNICFlap, KindStraggler} {
		if counts[k] == 0 {
			t.Fatalf("200-event schedule produced no %v events: %v", k, counts)
		}
	}
}

func TestGenerateSingleNodeNoFlaps(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	s := Generate(tp, Params{Seed: 5, N: 100, Horizon: 0.01})
	for _, e := range s.Events {
		if e.Kind == KindNICFlap {
			t.Fatalf("single-node schedule contains a NIC flap")
		}
		if e.Kind == KindStraggler {
			t.Fatalf("NTBs=0 schedule contains a straggler")
		}
	}
	if err := s.Validate(tp, 0); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	tp := topo.New(1, 2, topo.A100())
	bad := []Event{
		{Kind: KindLinkDown, Start: -1, Duration: 1, Resources: []topo.ResourceID{0}},
		{Kind: KindLinkDown, Start: 0, Duration: 0, Resources: []topo.ResourceID{0}},
		{Kind: KindLinkDown, Start: 0, Duration: 1},
		{Kind: KindLinkDown, Start: 0, Duration: 1, Resources: []topo.ResourceID{topo.ResourceID(tp.NResources())}},
		{Kind: KindLinkDegrade, Start: 0, Duration: 1, Resources: []topo.ResourceID{0}, Factor: 1.5},
		{Kind: KindStraggler, Start: 0, Duration: 1, TB: 0, Factor: 0.5},
		{Kind: KindStraggler, Start: 0, Duration: 1, TB: 9, Factor: 2},
		{Kind: Kind(99), Start: 0, Duration: 1},
	}
	for i, e := range bad {
		if err := e.Validate(tp, 4); err == nil {
			t.Errorf("event %d (%+v) unexpectedly valid", i, e)
		}
	}
	s := &Schedule{Events: bad[:1]}
	if err := s.Validate(tp, 4); err == nil {
		t.Fatalf("schedule with bad event validated")
	}
}

func TestEmptyAndSortedNilSafe(t *testing.T) {
	var s *Schedule
	if !s.Empty() {
		t.Fatal("nil schedule not Empty")
	}
	if s.Sorted() != nil {
		t.Fatal("nil schedule Sorted not nil")
	}
	if err := s.Validate(nil, 0); err != nil {
		t.Fatal(err)
	}
	s2 := &Schedule{}
	if !s2.Empty() {
		t.Fatal("zero schedule not Empty")
	}
}

func TestSortedOrder(t *testing.T) {
	s := &Schedule{Events: []Event{
		LinkDown(0, 0.5, 0.1),
		LinkDown(0, 0.1, 0.3),
		LinkDegrade(1, 0.1, 0.1, 0.5),
	}}
	out := s.Sorted()
	for i := 1; i < len(out); i++ {
		if out[i].Start < out[i-1].Start {
			t.Fatalf("Sorted out of order: %+v", out)
		}
	}
	// Sorted must not mutate the original.
	if s.Events[0].Start != 0.5 {
		t.Fatalf("Sorted mutated the schedule")
	}
}

func TestConstructors(t *testing.T) {
	tp := topo.New(2, 2, topo.A100())
	if e := LinkDown(3, 0.1, 0.2); e.Kind != KindLinkDown || e.End() != e.Start+e.Duration {
		t.Fatalf("LinkDown: %+v", e)
	}
	e := NICFlap(tp, 1, 0, 1e-3)
	if len(e.Resources) != 2 {
		t.Fatalf("NICFlap should cover both queues: %+v", e)
	}
	eg, in := tp.NICResources(1)
	if e.Resources[0] != eg || e.Resources[1] != in {
		t.Fatalf("NICFlap resources mismatch: %+v vs (%d,%d)", e, eg, in)
	}
	st := Straggler(2, 0, 1e-3, 3)
	if err := st.Validate(tp, 4); err != nil {
		t.Fatal(err)
	}
	if d := st.Describe(tp); d == "" {
		t.Fatal("empty Describe")
	}
}
