// Package fault defines deterministic fault-injection schedules for the
// simulator and the data-plane runtime: seeded, reproducible lists of
// timed events — link bandwidth degradation, full link-down windows,
// NIC flaps and straggler thread blocks — that degrade a run while it
// executes.
//
// Determinism is the package's core contract: a Schedule is plain data,
// Generate is a pure function of (topology, Params) driven by a seeded
// PRNG, and consumers (internal/sim, internal/rt) apply events in a
// deterministic order. Two runs of the same configuration therefore
// produce identical timings and identical recovery-action logs, which
// the golden tests and the EXPERIMENTS harness rely on.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// DownFactor is the residual capacity fraction of a downed link. It is
// small but positive so the max-min solver stays well-defined: flows on
// a downed link crawl rather than divide by zero, and resume at full
// rate when the window closes.
const DownFactor = 1e-6

// Kind classifies a fault event.
type Kind int

// Fault event kinds.
const (
	// KindLinkDegrade multiplies the capacity of the event's resources
	// by Factor (0 < Factor < 1) for the window — background congestion
	// that comes and goes, the dynamic version of sim.Config.Congestion.
	KindLinkDegrade Kind = iota
	// KindLinkDown removes the event's resources for the window
	// (capacity drops to DownFactor of nominal).
	KindLinkDown
	// KindNICFlap is a link-down window covering both queues (egress
	// and ingress) of one NIC — the port-flap failure mode of RoCE/IB
	// fabrics.
	KindNICFlap
	// KindStraggler slows one thread block: every transfer the TB
	// drives runs at 1/Factor of its normal capability and pays
	// Factor× the startup latency for the window.
	KindStraggler
	// KindLinkOut is a permanent link failure: the event's resources
	// never come back (Duration = +Inf). The runtime escalates past
	// retry/degrade to plan-level replanning on the carved topology.
	KindLinkOut
	// KindRankOut is a permanent GPU failure: rank Rank leaves the
	// communicator for good (Duration = +Inf). Runtime-only — the flow
	// simulator has no rank-departure abstraction.
	KindRankOut
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLinkDegrade:
		return "link-degrade"
	case KindLinkDown:
		return "link-down"
	case KindNICFlap:
		return "nic-flap"
	case KindStraggler:
		return "straggler"
	case KindLinkOut:
		return "link-out"
	case KindRankOut:
		return "rank-out"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Permanent reports whether the kind models a failure that never heals
// (Duration = +Inf): the trigger for plan-level recovery.
func (k Kind) Permanent() bool { return k == KindLinkOut || k == KindRankOut }

// Event is one timed fault. Times are simulated seconds from run start;
// the event is active on [Start, Start+Duration).
type Event struct {
	Kind     Kind
	Start    float64
	Duration float64
	// Resources are the capacity resources a link event affects (one
	// for plain link events, the two NIC queues for a flap). Unused by
	// stragglers.
	Resources []topo.ResourceID
	// Factor is the capacity multiplier for KindLinkDegrade (0..1) or
	// the slowdown multiplier (≥ 1) for KindStraggler.
	Factor float64
	// TB is the straggler's global thread-block index in the simulated
	// run (session TB offset + TBProgram.ID; equal to the TB ID for
	// single-session runs).
	TB int
	// Attempts is the runtime-facing severity of a down window: how
	// many consecutive send attempts of each instance crossing the
	// downed link fail before it clears. The wall-clock runtime has no
	// simulated clock, so down windows translate to attempt counts
	// (zero means one failed attempt).
	Attempts int
	// Rank is the failed GPU of a KindRankOut event. Unused otherwise.
	Rank ir.Rank
}

// End returns the event's closing time (+Inf for permanent events).
func (e Event) End() float64 { return e.Start + e.Duration }

// Permanent reports whether the event never heals.
func (e Event) Permanent() bool { return e.Kind.Permanent() }

// Validate checks one event against a topology and a thread-block
// count (nTBs ≤ 0 skips the straggler bound check).
func (e Event) Validate(t *topo.Topology, nTBs int) error {
	if e.Start < 0 || e.Duration <= 0 || math.IsNaN(e.Duration) || math.IsInf(e.Start, 0) {
		return fmt.Errorf("fault: %v event has invalid window [%g, %g)", e.Kind, e.Start, e.End())
	}
	if e.Kind.Permanent() != math.IsInf(e.Duration, 1) {
		if e.Kind.Permanent() {
			return fmt.Errorf("fault: %v event is permanent but has finite duration %g (want +Inf)", e.Kind, e.Duration)
		}
		return fmt.Errorf("fault: %v event has infinite duration (only permanent kinds may)", e.Kind)
	}
	switch e.Kind {
	case KindLinkDegrade:
		if e.Factor <= 0 || e.Factor >= 1 {
			return fmt.Errorf("fault: link-degrade factor %g outside (0, 1)", e.Factor)
		}
		fallthrough
	case KindLinkDown, KindNICFlap, KindLinkOut:
		if len(e.Resources) == 0 {
			return fmt.Errorf("fault: %v event names no resources", e.Kind)
		}
		for _, r := range e.Resources {
			if int(r) < 0 || int(r) >= t.NResources() {
				return fmt.Errorf("fault: %v event names unknown resource %d", e.Kind, r)
			}
		}
	case KindStraggler:
		if e.Factor < 1 {
			return fmt.Errorf("fault: straggler slowdown %g < 1", e.Factor)
		}
		if e.TB < 0 || (nTBs > 0 && e.TB >= nTBs) {
			return fmt.Errorf("fault: straggler names TB %d outside [0, %d)", e.TB, nTBs)
		}
	case KindRankOut:
		if e.Rank < 0 || int(e.Rank) >= t.NRanks() {
			return fmt.Errorf("fault: rank-out names rank %d outside [0, %d)", e.Rank, t.NRanks())
		}
	default:
		return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// Describe renders the event for traces and logs.
func (e Event) Describe(t *topo.Topology) string {
	switch e.Kind {
	case KindStraggler:
		return fmt.Sprintf("%v TB %d ×%.1f [%.3f, %.3f)ms", e.Kind, e.TB, e.Factor, e.Start*1e3, e.End()*1e3)
	case KindLinkDegrade:
		return fmt.Sprintf("%v %s ×%.2f [%.3f, %.3f)ms", e.Kind, describeResources(t, e.Resources), e.Factor, e.Start*1e3, e.End()*1e3)
	case KindLinkOut:
		return fmt.Sprintf("%v %s [%.3f, ∞)ms", e.Kind, describeResources(t, e.Resources), e.Start*1e3)
	case KindRankOut:
		return fmt.Sprintf("%v rank %d [%.3f, ∞)ms", e.Kind, e.Rank, e.Start*1e3)
	default:
		return fmt.Sprintf("%v %s [%.3f, %.3f)ms", e.Kind, describeResources(t, e.Resources), e.Start*1e3, e.End()*1e3)
	}
}

func describeResources(t *topo.Topology, rs []topo.ResourceID) string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += "+"
		}
		if t != nil {
			s += t.DescribeResource(r)
		} else {
			s += fmt.Sprintf("res%d", r)
		}
	}
	return s
}

// Schedule is a reproducible fault plan: the seed that generated it (0
// for hand-built schedules) and its events. A nil or empty schedule
// injects nothing.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Empty reports whether the schedule (possibly nil) has no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Sorted returns the events ordered by (Start, End, Kind) — the
// deterministic application order.
func (s *Schedule) Sorted() []Event {
	if s == nil {
		return nil
	}
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End() != out[j].End() {
			return out[i].End() < out[j].End()
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Validate checks every event against the topology; nTBs > 0 also
// bounds straggler targets.
func (s *Schedule) Validate(t *topo.Topology, nTBs int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.Validate(t, nTBs); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// HasPermanent reports whether the schedule carries at least one
// permanent (link-out / rank-out) event.
func (s *Schedule) HasPermanent() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Permanent() {
			return true
		}
	}
	return false
}

// PermanentFailures returns the union of permanently dead resources and
// ranks over the whole schedule, each sorted and deduplicated — the set
// a replan carves out of the topology. A health sweep triggered by the
// first exhausted retry budget is assumed to discover every permanent
// failure at once, which keeps the replan deterministic and single-shot.
func (s *Schedule) PermanentFailures() (res []topo.ResourceID, ranks []ir.Rank) {
	if s == nil {
		return nil, nil
	}
	seenRes := make(map[topo.ResourceID]bool)
	seenRank := make(map[ir.Rank]bool)
	for _, e := range s.Events {
		switch e.Kind {
		case KindLinkOut:
			for _, r := range e.Resources {
				if !seenRes[r] {
					seenRes[r] = true
					res = append(res, r)
				}
			}
		case KindRankOut:
			if !seenRank[e.Rank] {
				seenRank[e.Rank] = true
				ranks = append(ranks, e.Rank)
			}
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	return res, ranks
}

// --- constructors ---

// LinkDown builds a full outage of one resource over [start, start+dur).
func LinkDown(res topo.ResourceID, start, dur float64) Event {
	return Event{Kind: KindLinkDown, Start: start, Duration: dur, Resources: []topo.ResourceID{res}}
}

// LinkDegrade builds a partial-capacity window: the resource keeps
// factor (0..1) of its bandwidth.
func LinkDegrade(res topo.ResourceID, start, dur, factor float64) Event {
	return Event{Kind: KindLinkDegrade, Start: start, Duration: dur,
		Resources: []topo.ResourceID{res}, Factor: factor}
}

// NICFlap builds a down window covering both queues of NIC n.
func NICFlap(t *topo.Topology, nic int, start, dur float64) Event {
	eg, in := t.NICResources(nic)
	return Event{Kind: KindNICFlap, Start: start, Duration: dur,
		Resources: []topo.ResourceID{eg, in}}
}

// Straggler builds a thread-block slowdown window (slowdown ≥ 1).
func Straggler(tb int, start, dur, slowdown float64) Event {
	return Event{Kind: KindStraggler, Start: start, Duration: dur, TB: tb, Factor: slowdown}
}

// LinkOut builds a permanent failure of one resource from start onward.
func LinkOut(res topo.ResourceID, start float64) Event {
	return Event{Kind: KindLinkOut, Start: start, Duration: math.Inf(1),
		Resources: []topo.ResourceID{res}}
}

// RankOut builds a permanent failure of one GPU from start onward.
func RankOut(rank ir.Rank, start float64) Event {
	return Event{Kind: KindRankOut, Start: start, Duration: math.Inf(1), Rank: rank}
}

// --- seeded generation ---

// Params drives random schedule generation.
type Params struct {
	// Seed makes the schedule reproducible; equal Params yield equal
	// schedules.
	Seed int64
	// N is the number of events to generate.
	N int
	// Horizon is the window (seconds) in which events start.
	Horizon float64
	// MeanDuration is the average event length (seconds); individual
	// durations vary uniformly in [0.5, 1.5]× around it.
	MeanDuration float64
	// NTBs enables straggler events when > 0: stragglers target a
	// uniform TB in [0, NTBs).
	NTBs int
	// MaxSlowdown caps straggler slowdown (default 4).
	MaxSlowdown float64
	// Permanent appends that many permanent link-out events (distinct
	// links, starts uniform in the horizon) after the N transient
	// events. Zero keeps the schedule transient-only.
	Permanent int
}

// Generate builds a reproducible random schedule against a topology.
// The event mix is fixed: 40% degradations, 30% link-down windows, 15%
// NIC flaps (inter-node topologies only) and 15% stragglers (when NTBs
// is set); unavailable kinds fall back to link-down. Link events target
// NIC queues on multi-node topologies and point-to-point channels on
// single-node ones — the links collectives actually traverse.
func Generate(t *topo.Topology, p Params) *Schedule {
	if (p.N <= 0 && p.Permanent <= 0) || p.Horizon <= 0 {
		return &Schedule{Seed: p.Seed}
	}
	if p.MeanDuration <= 0 {
		p.MeanDuration = p.Horizon / 10
	}
	if p.MaxSlowdown < 1 {
		p.MaxSlowdown = 4
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Schedule{Seed: p.Seed}
	for i := 0; i < p.N; i++ {
		start := rng.Float64() * p.Horizon
		dur := p.MeanDuration * (0.5 + rng.Float64())
		var e Event
		switch roll := rng.Float64(); {
		case roll < 0.40:
			e = LinkDegrade(randLink(t, rng), start, dur, 0.1+0.8*rng.Float64())
		case roll < 0.70:
			e = LinkDown(randLink(t, rng), start, dur)
		case roll < 0.85:
			if t.NNodes > 1 {
				e = NICFlap(t, rng.Intn(t.NNICs()), start, dur)
			} else {
				e = LinkDown(randLink(t, rng), start, dur)
			}
		default:
			if p.NTBs > 0 {
				e = Straggler(rng.Intn(p.NTBs), start, dur, 1+(p.MaxSlowdown-1)*rng.Float64())
			} else {
				e = LinkDown(randLink(t, rng), start, dur)
			}
		}
		// Down windows carry a runtime severity proportional to their
		// share of the horizon: longer outages fail more attempts.
		if e.Kind == KindLinkDown || e.Kind == KindNICFlap {
			e.Attempts = 1 + int(3*dur/p.Horizon*float64(p.N))
		}
		s.Events = append(s.Events, e)
	}
	// Permanent failures strike distinct links so k requested failures
	// carve k resources (repeating a dead link would waste the budget).
	if p.Permanent > 0 {
		seen := make(map[topo.ResourceID]bool)
		for k := 0; k < p.Permanent; k++ {
			res := randLink(t, rng)
			for tries := 0; seen[res] && tries < 16; tries++ {
				res = randLink(t, rng)
			}
			if seen[res] {
				continue
			}
			seen[res] = true
			s.Events = append(s.Events, LinkOut(res, rng.Float64()*p.Horizon))
		}
	}
	return s
}

// randLink picks a serializing link: a NIC queue on multi-node
// topologies, a point-to-point channel between adjacent ranks on
// single-node ones.
func randLink(t *topo.Topology, rng *rand.Rand) topo.ResourceID {
	if t.NNodes > 1 {
		eg, in := t.NICResources(rng.Intn(t.NNICs()))
		if rng.Intn(2) == 0 {
			return eg
		}
		return in
	}
	n := t.NRanks()
	src := rng.Intn(n)
	dst := (src + 1 + rng.Intn(n-1)) % n
	return t.PairLink(ir.Rank(src), ir.Rank(dst))
}
