// Package topo models the cluster fabric the paper evaluates on: servers
// of GPUs joined by an NVSwitch intra-node fabric, NICs shared by GPU
// pairs, and a two-tier Clos network between servers (§5.1).
//
// The topology exposes two views used by the rest of the system:
//
//   - a resource view for the flow-level simulator: every transfer path is
//     a set of capacity resources (GPU NVSwitch ports, NIC queues, the
//     point-to-point channel itself) over which bandwidth is shared;
//   - a link view for scheduling: the "communication links" of §3 whose
//     sharing between concurrently scheduled tasks constitutes a
//     communication dependency, and the "connections" of §4.4 that
//     baseline backends allocate one thread block each.
package topo

import (
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/ir"
)

// ResourceID names one capacity resource in the cluster. IDs are dense
// per topology; see Topology for the layout.
type ResourceID int

// LinkID names one communication link for dependency analysis. Link IDs
// share the ResourceID space: intra-node links are the per-pair channel
// resources, inter-node links are the NIC resources.
type LinkID = ResourceID

// ResourceKind distinguishes switch-port style resources (pure capacity
// sharing) from serializing links (capacity sharing plus the Eq. 1
// contention penalty γ·L(z) when overcommitted).
type ResourceKind int

// Resource kinds.
const (
	// KindSwitchPort shares bandwidth max-min with no extra penalty
	// (NVSwitch GPU ports: the switch is non-blocking).
	KindSwitchPort ResourceKind = iota
	// KindSerialLink pays the paper's γ·L(z) contention penalty when the
	// aggregate thread-level capability of its flows exceeds its
	// bandwidth (NICs and point-to-point channels).
	KindSerialLink
)

// Profile bundles the hardware constants of one GPU generation / fabric,
// including the cost-model parameters of Eq. 1.
type Profile struct {
	// Name labels the profile ("A100-NVSwitch-200G", "V100-100G").
	Name string

	// NVLinkBW is the intra-node port bandwidth per GPU in bytes/s.
	NVLinkBW float64
	// NICBW is one NIC's bandwidth in bytes/s.
	NICBW float64

	// LatIntra and LatInter are the per-chunk startup overheads α for
	// intra-node and inter-node transfers. The paper measures
	// λ_inter ≥ 2.5 × λ_intra (§4.3).
	LatIntra time.Duration
	LatInter time.Duration
	// LatCrossRack is the additional latency when the path crosses the
	// second Clos tier (different ToR).
	LatCrossRack time.Duration

	// TBCapIntra and TBCapInter are the sustained bandwidth a single
	// thread block can drive over an intra-node or inter-node path. The
	// default profiles follow the paper's Eq. 3–5 convention (β is the
	// inverse of the link bandwidth, so one TB drives a link at line
	// rate); the Fig. 4 microbenchmark probes the small-TB regime by
	// lowering TBCapInter to NICBW/4.
	TBCapIntra float64
	TBCapInter float64

	// Gamma scales the contention penalty L(z) of Eq. 1: when the
	// aggregate TB capability on a serializing link exceeds its
	// bandwidth by factor z, goodput is divided by 1 + Gamma·(z−1)².
	Gamma float64

	// InterpCost is the per-primitive-invocation overhead of a runtime
	// interpreter backend (loading and parsing the plan during
	// execution, §2.2). Direct kernels do not pay it.
	InterpCost time.Duration
	// KernelLoad is the one-time pipeline fill / kernel launch cost
	// t_Load of Eq. 5.
	KernelLoad time.Duration
}

// GiB is 2^30 bytes; exported for benchmark parameter tables.
const GiB = 1 << 30

// MiB is 2^20 bytes.
const MiB = 1 << 20

// A100 returns the paper's primary testbed profile: A100 GPUs, 300 GB/s
// per-GPU NVSwitch bandwidth, 200 Gbps RoCE NICs shared by two GPUs.
func A100() Profile {
	return Profile{
		Name:         "A100-NVSwitch-200G",
		NVLinkBW:     300e9,
		NICBW:        25e9, // 200 Gb/s
		LatIntra:     6 * time.Microsecond,
		LatInter:     15 * time.Microsecond,
		LatCrossRack: 3 * time.Microsecond,
		TBCapIntra:   300e9, // one TB drives a point-to-point channel at full rate (Eq. 3-5: beta = 1/linkBW)
		TBCapInter:   25e9,  // one TB drives a NIC at line rate
		Gamma:        0.6,
		InterpCost:   1200 * time.Nanosecond,
		KernelLoad:   12 * time.Microsecond,
	}
}

// H100 returns a DGX-H100 class profile: 450 GB/s per-GPU NVSwitch
// bandwidth and 400 Gb/s InfiniBand NICs (one per GPU pair) — the
// system whose 17-43% communication overheads the paper's introduction
// cites as motivation.
func H100() Profile {
	return Profile{
		Name:         "H100-NVSwitch-400G",
		NVLinkBW:     450e9,
		NICBW:        50e9, // 400 Gb/s
		LatIntra:     5 * time.Microsecond,
		LatInter:     12 * time.Microsecond,
		LatCrossRack: 3 * time.Microsecond,
		TBCapIntra:   450e9,
		TBCapInter:   50e9,
		Gamma:        0.6,
		InterpCost:   1000 * time.Nanosecond,
		KernelLoad:   10 * time.Microsecond,
	}
}

// V100 returns the heterogeneous-cluster profile of §5.2: V100 GPUs on
// 100 Gbps RoCE.
func V100() Profile {
	return Profile{
		Name:         "V100-100G",
		NVLinkBW:     130e9,
		NICBW:        12.5e9, // 100 Gb/s
		LatIntra:     8 * time.Microsecond,
		LatInter:     22 * time.Microsecond,
		LatCrossRack: 4 * time.Microsecond,
		TBCapIntra:   130e9,
		TBCapInter:   12.5e9,
		Gamma:        0.7,
		InterpCost:   1600 * time.Nanosecond,
		KernelLoad:   16 * time.Microsecond,
	}
}

// Topology is an immutable description of one cluster: NNodes servers of
// GPUsPerNode GPUs each, NICsPerNode NICs per server (GPUs share NICs
// evenly), ServersPerRack servers under each ToR switch.
//
// Flat topologies (New) model the inter-node fabric as non-blocking
// beyond the NIC queues. Multi-tier topologies (NewClos, NewRail) add an
// explicit leaf/spine tier: every rack owns one uplink/downlink resource
// pair per spine, cross-rack paths traverse the deterministically chosen
// spine, and carving a spine link reroutes paths over the surviving
// spines (Path probes in deterministic order), so replanning survives
// spine failures.
type Topology struct {
	Profile

	NNodes         int
	GPUsPerNode    int
	NICsPerNode    int
	ServersPerRack int

	// NSpines is the number of spine switches above the rack (ToR/leaf)
	// tier; 0 on flat topologies built with New.
	NSpines int
	// SpineBW is the capacity of one rack↔spine link in bytes/s (only
	// meaningful when NSpines > 0; defaults to full bisection: the
	// rack's aggregate NIC bandwidth divided across its spine uplinks).
	SpineBW float64
	// RailOptimized marks rail-striped fabrics (NewRail): every GPU owns
	// a NIC, NICs with the same local index form a rail joined by one
	// rail switch spanning all nodes, and same-rail traffic bypasses the
	// spine tier entirely — even across racks.
	RailOptimized bool

	nRanks    int
	totalNICs int
	nRacks    int
	// Resource layout offsets. Pair channels exist per ordered
	// same-node GPU pair only (NNodes·GPUsPerNode² resources, not
	// NRanks²): cross-node transfers never touch a pair channel, and a
	// quadratic pair space would make 4096-rank topologies allocate
	// tens of millions of resource slots.
	offEgress, offIngress, offNICEg, offNICIn, offPair int
	offSpineUp, offSpineDown                           int
	nResources                                         int

	// Dead sets of a carved (degraded) topology; nil on healthy
	// topologies, so the common case costs nothing. See Carve.
	deadRes   map[ResourceID]bool
	deadRanks map[ir.Rank]bool
}

// Option customises topology construction.
type Option func(*Topology)

// WithNICs overrides the number of NICs per server (default
// GPUsPerNode/2, minimum 1).
func WithNICs(n int) Option { return func(t *Topology) { t.NICsPerNode = n } }

// WithServersPerRack overrides how many servers share a ToR (default 2).
func WithServersPerRack(n int) Option { return func(t *Topology) { t.ServersPerRack = n } }

// WithSpineBW overrides the per rack↔spine link bandwidth of a
// multi-tier topology (default: full bisection).
func WithSpineBW(bw float64) Option { return func(t *Topology) { t.SpineBW = bw } }

// New builds a flat topology of nNodes servers with gpusPerNode GPUs
// each under the given hardware profile. It panics on non-positive
// dimensions; construction parameters are programmer input, not runtime
// data.
func New(nNodes, gpusPerNode int, p Profile, opts ...Option) *Topology {
	t := &Topology{
		Profile:        p,
		NNodes:         nNodes,
		GPUsPerNode:    gpusPerNode,
		NICsPerNode:    max(1, gpusPerNode/2),
		ServersPerRack: 2,
	}
	t.finish(nNodes, gpusPerNode, opts)
	return t
}

// NewClos builds a multi-tier Clos topology: racks of ServersPerRack
// servers under leaf (ToR) switches, joined by nSpines spine switches.
// Cross-rack paths traverse one rack-uplink and one rack-downlink spine
// resource chosen deterministically per (source rack, destination rack,
// source NIC) — an ECMP-style stripe — and fail over to surviving
// spines on carved topologies.
func NewClos(nNodes, gpusPerNode int, p Profile, nSpines int, opts ...Option) *Topology {
	if nSpines < 1 {
		panic(fmt.Sprintf("topo: clos needs ≥1 spine, got %d", nSpines))
	}
	t := &Topology{
		Profile:        p,
		NNodes:         nNodes,
		GPUsPerNode:    gpusPerNode,
		NICsPerNode:    max(1, gpusPerNode/2),
		ServersPerRack: 2,
		NSpines:        nSpines,
	}
	t.finish(nNodes, gpusPerNode, opts)
	return t
}

// NewRail builds a rail-optimized multi-tier topology: every GPU owns a
// NIC, the NICs with local index r across all nodes form rail r joined
// by one non-blocking rail switch, and only cross-rail traffic climbs
// to the nSpines spine tier. Same-rail inter-node paths therefore stay
// single-hop (no cross-rack latency, no spine resources) no matter how
// many racks apart the endpoints are — the NIC queues alone serialize
// them.
func NewRail(nNodes, gpusPerNode int, p Profile, nSpines int, opts ...Option) *Topology {
	if nSpines < 1 {
		panic(fmt.Sprintf("topo: rail fabric needs ≥1 spine, got %d", nSpines))
	}
	t := &Topology{
		Profile:        p,
		NNodes:         nNodes,
		GPUsPerNode:    gpusPerNode,
		NICsPerNode:    gpusPerNode, // rail striping: one NIC per GPU
		ServersPerRack: 2,
		NSpines:        nSpines,
		RailOptimized:  true,
	}
	t.finish(nNodes, gpusPerNode, opts)
	if t.NICsPerNode != gpusPerNode {
		panic(fmt.Sprintf("topo: rail fabric requires one NIC per GPU, got %d NICs for %d GPUs/node",
			t.NICsPerNode, gpusPerNode))
	}
	return t
}

// finish applies options, validates dimensions and computes the dense
// resource layout shared by all constructors.
func (t *Topology) finish(nNodes, gpusPerNode int, opts []Option) {
	if nNodes < 1 || gpusPerNode < 1 {
		panic(fmt.Sprintf("topo: invalid dimensions %d nodes × %d GPUs", nNodes, gpusPerNode))
	}
	for _, o := range opts {
		o(t)
	}
	if t.NICsPerNode < 1 || t.NICsPerNode > gpusPerNode {
		panic(fmt.Sprintf("topo: invalid NICsPerNode %d for %d GPUs/node", t.NICsPerNode, gpusPerNode))
	}
	if t.ServersPerRack < 1 {
		panic(fmt.Sprintf("topo: invalid ServersPerRack %d", t.ServersPerRack))
	}
	t.nRanks = nNodes * gpusPerNode
	t.totalNICs = nNodes * t.NICsPerNode
	t.nRacks = (nNodes + t.ServersPerRack - 1) / t.ServersPerRack
	if t.NSpines > 0 && t.SpineBW <= 0 {
		// Full bisection: a rack's aggregate NIC bandwidth spread across
		// its spine uplinks.
		t.SpineBW = float64(t.ServersPerRack*t.NICsPerNode) * t.NICBW / float64(t.NSpines)
	}
	t.offEgress = 0
	t.offIngress = t.nRanks
	t.offNICEg = 2 * t.nRanks
	t.offNICIn = t.offNICEg + t.totalNICs
	t.offPair = t.offNICIn + t.totalNICs
	t.offSpineUp = t.offPair + nNodes*gpusPerNode*gpusPerNode
	t.offSpineDown = t.offSpineUp + t.nRacks*t.NSpines
	t.nResources = t.offSpineDown + t.nRacks*t.NSpines
}

// NRanks is the total number of GPUs.
func (t *Topology) NRanks() int { return t.nRanks }

// NResources is the size of the dense ResourceID space.
func (t *Topology) NResources() int { return t.nResources }

// Node returns the server index hosting rank r.
func (t *Topology) Node(r ir.Rank) int { return int(r) / t.GPUsPerNode }

// LocalIndex returns r's index within its server.
func (t *Topology) LocalIndex(r ir.Rank) int { return int(r) % t.GPUsPerNode }

// SameNode reports whether a and b are on the same server.
func (t *Topology) SameNode(a, b ir.Rank) bool { return t.Node(a) == t.Node(b) }

// Rack returns the rack (ToR) index of a server.
func (t *Topology) Rack(node int) int { return node / t.ServersPerRack }

// NIC returns the global NIC index serving rank r. GPUs are assigned to
// NICs in contiguous groups, matching the testbed where every two GPUs
// share one NIC.
func (t *Topology) NIC(r ir.Rank) int {
	perNIC := t.GPUsPerNode / t.NICsPerNode
	if perNIC == 0 {
		perNIC = 1
	}
	local := t.LocalIndex(r) / perNIC
	if local >= t.NICsPerNode {
		local = t.NICsPerNode - 1
	}
	return t.Node(r)*t.NICsPerNode + local
}

// Resource identifiers.

// EgressPort returns rank r's NVSwitch egress port resource.
func (t *Topology) EgressPort(r ir.Rank) ResourceID { return ResourceID(t.offEgress + int(r)) }

// IngressPort returns rank r's NVSwitch ingress port resource.
func (t *Topology) IngressPort(r ir.Rank) ResourceID { return ResourceID(t.offIngress + int(r)) }

// NNICs returns the cluster-wide NIC count.
func (t *Topology) NNICs() int { return t.totalNICs }

// NICResources returns both queue resources (egress, ingress) of global
// NIC n — the pair a NIC flap takes down together.
func (t *Topology) NICResources(n int) (eg, in ResourceID) {
	return t.NICEgress(n), t.NICIngress(n)
}

// NICEgress returns the egress resource of global NIC n.
func (t *Topology) NICEgress(n int) ResourceID { return ResourceID(t.offNICEg + n) }

// NICIngress returns the ingress resource of global NIC n.
func (t *Topology) NICIngress(n int) ResourceID { return ResourceID(t.offNICIn + n) }

// PairLink returns the point-to-point channel resource for src→dst —
// the intra-node "communication link" of §3. Pair channels exist for
// same-node pairs only (cross-node transfers serialize on NIC queues,
// never on a pair channel); asking for a cross-node pair is a plan
// construction bug and panics.
func (t *Topology) PairLink(src, dst ir.Rank) ResourceID {
	if !t.SameNode(src, dst) {
		panic(fmt.Sprintf("topo: pair link %d→%d crosses nodes", src, dst))
	}
	g := t.GPUsPerNode
	return ResourceID(t.offPair + (t.Node(src)*g+t.LocalIndex(src))*g + t.LocalIndex(dst))
}

// NRacks returns the number of racks (leaf/ToR switches).
func (t *Topology) NRacks() int { return t.nRacks }

// SpineUp returns the rack→spine uplink resource (multi-tier
// topologies only; callers must keep s within [0, NSpines)).
func (t *Topology) SpineUp(rack, s int) ResourceID {
	return ResourceID(t.offSpineUp + rack*t.NSpines + s)
}

// SpineDown returns the spine→rack downlink resource.
func (t *Topology) SpineDown(rack, s int) ResourceID {
	return ResourceID(t.offSpineDown + rack*t.NSpines + s)
}

// Capacity returns a resource's bandwidth in bytes/s.
func (t *Topology) Capacity(res ResourceID) float64 {
	switch {
	case int(res) < t.offNICEg:
		return t.NVLinkBW
	case int(res) < t.offPair:
		return t.NICBW
	case int(res) < t.offSpineUp:
		return t.NVLinkBW
	default:
		return t.SpineBW
	}
}

// Kind returns whether the resource is a switch port or a serializing
// link for the purposes of the Eq. 1 contention penalty.
func (t *Topology) Kind(res ResourceID) ResourceKind {
	if int(res) < t.offNICEg {
		return KindSwitchPort
	}
	return KindSerialLink
}

// DescribeResource renders a resource ID for traces.
func (t *Topology) DescribeResource(res ResourceID) string {
	i := int(res)
	switch {
	case i < t.offIngress:
		return fmt.Sprintf("nv-egress(gpu%d)", i-t.offEgress)
	case i < t.offNICEg:
		return fmt.Sprintf("nv-ingress(gpu%d)", i-t.offIngress)
	case i < t.offNICIn:
		return fmt.Sprintf("nic-egress(%d)", i-t.offNICEg)
	case i < t.offPair:
		return fmt.Sprintf("nic-ingress(%d)", i-t.offNICIn)
	case i < t.offSpineUp:
		p := i - t.offPair
		g := t.GPUsPerNode
		node := p / (g * g)
		return fmt.Sprintf("pair(%d→%d)", node*g+(p/g)%g, node*g+p%g)
	case i < t.offSpineDown:
		p := i - t.offSpineUp
		return fmt.Sprintf("spine-up(rack%d→spine%d)", p/t.NSpines, p%t.NSpines)
	default:
		p := i - t.offSpineDown
		return fmt.Sprintf("spine-down(spine%d→rack%d)", p%t.NSpines, p/t.NSpines)
	}
}

// Path is everything the simulator and scheduler need to know about
// moving one chunk from Src to Dst.
type Path struct {
	Src, Dst ir.Rank
	// Intra reports whether the path stays inside one server.
	Intra bool
	// Alpha is the per-chunk startup overhead α.
	Alpha time.Duration
	// TBCap is the per-thread-block sustained bandwidth on this path.
	TBCap float64
	// Resources are all capacity resources the flow occupies.
	Resources []ResourceID
	// CommLinks is the subset of resources whose sharing between tasks
	// constitutes a communication dependency (§3): the point-to-point
	// channel for intra-node paths, the two NIC queues for inter-node.
	CommLinks []ResourceID
}

// Path computes the path from src to dst. It panics if src == dst (a
// transfer to self is a plan construction bug, caught earlier by
// ir.Transfer.Validate).
func (t *Topology) Path(src, dst ir.Rank) Path {
	if src == dst {
		panic(fmt.Sprintf("topo: path %d→%d to self", src, dst))
	}
	if t.SameNode(src, dst) {
		pair := t.PairLink(src, dst)
		return Path{
			Src: src, Dst: dst, Intra: true,
			Alpha:     t.LatIntra,
			TBCap:     t.TBCapIntra,
			Resources: []ResourceID{t.EgressPort(src), t.IngressPort(dst), pair},
			CommLinks: []ResourceID{pair},
		}
	}
	eg := t.NICEgress(t.NIC(src))
	in := t.NICIngress(t.NIC(dst))
	alpha := t.LatInter
	crossRack := t.Rack(t.Node(src)) != t.Rack(t.Node(dst))
	// Same-rail traffic on a rail-optimized fabric stays on the rail
	// switch: one hop regardless of rack, no spine traversal.
	sameRail := t.RailOptimized && t.LocalIndex(src) == t.LocalIndex(dst)
	if crossRack && !sameRail {
		alpha += t.LatCrossRack
	}
	resources := []ResourceID{eg, in}
	if t.NSpines > 0 && crossRack && !sameRail {
		srcRack, dstRack := t.Rack(t.Node(src)), t.Rack(t.Node(dst))
		s := t.spineFor(srcRack, dstRack, src)
		resources = []ResourceID{eg, t.SpineUp(srcRack, s), t.SpineDown(dstRack, s), in}
	}
	return Path{
		Src: src, Dst: dst, Intra: false,
		Alpha:     alpha,
		TBCap:     t.TBCapInter,
		Resources: resources,
		CommLinks: []ResourceID{eg, in},
	}
}

// spineFor picks the spine carrying srcRack→dstRack traffic from the
// given source: a deterministic ECMP-style stripe over (rack pair,
// source NIC), failing over in deterministic probe order to a spine
// whose uplink and downlink both survived carving. When every spine is
// dead for the pair the home spine is returned — the path is then dead
// and PathAlive reports it.
func (t *Topology) spineFor(srcRack, dstRack int, src ir.Rank) int {
	h := (srcRack*131 + dstRack*137 + t.NIC(src)) % t.NSpines
	if len(t.deadRes) == 0 {
		return h
	}
	for i := 0; i < t.NSpines; i++ {
		s := (h + i) % t.NSpines
		if !t.deadRes[t.SpineUp(srcRack, s)] && !t.deadRes[t.SpineDown(dstRack, s)] {
			return s
		}
	}
	return h
}

// LinkWindow returns how many transmission tasks driven by thread
// blocks of capability tbCap may occupy link l concurrently before the
// aggregate thread-level capability exceeds the link's bandwidth — the
// saturation point of Fig. 4 (four TBs per NIC). Scheduling more than
// this window onto a link constitutes a communication dependency (§3).
func (t *Topology) LinkWindow(l ResourceID, tbCap float64) int {
	if tbCap <= 0 {
		return 1
	}
	k := int(t.Capacity(l) / tbCap)
	if k < 1 {
		k = 1
	}
	return k
}

// --- degraded topologies (plan-level recovery) ---

// RankResources lists the capacity resources that belong exclusively to
// rank r: its NVSwitch ports and every point-to-point channel touching
// it (pair channels exist to same-node peers only). NIC queues are
// shared with the other ranks of the NIC and are not included — a dead
// rank does not take its neighbours' NIC down.
func (t *Topology) RankResources(r ir.Rank) []ResourceID {
	out := make([]ResourceID, 0, 2*t.GPUsPerNode)
	out = append(out, t.EgressPort(r), t.IngressPort(r))
	node := t.Node(r)
	for l := 0; l < t.GPUsPerNode; l++ {
		q := ir.Rank(node*t.GPUsPerNode + l)
		if q == r {
			continue
		}
		out = append(out, t.PairLink(r, q), t.PairLink(q, r))
	}
	return out
}

// Carve returns a copy of the topology with the given resources and
// ranks marked permanently dead (a dead rank also kills its exclusive
// resources, see RankResources). Carving composes: carving an already
// carved topology merges the dead sets. The receiver is not modified.
func (t *Topology) Carve(res []ResourceID, ranks []ir.Rank) (*Topology, error) {
	t2 := *t
	t2.deadRes = make(map[ResourceID]bool, len(t.deadRes)+len(res))
	for r := range t.deadRes {
		t2.deadRes[r] = true
	}
	t2.deadRanks = make(map[ir.Rank]bool, len(t.deadRanks)+len(ranks))
	for r := range t.deadRanks {
		t2.deadRanks[r] = true
	}
	for _, r := range res {
		if int(r) < 0 || int(r) >= t.nResources {
			return nil, fmt.Errorf("topo: carve names unknown resource %d", r)
		}
		t2.deadRes[r] = true
	}
	for _, r := range ranks {
		if r < 0 || int(r) >= t.nRanks {
			return nil, fmt.Errorf("topo: carve names unknown rank %d", r)
		}
		t2.deadRanks[r] = true
		for _, rr := range t.RankResources(r) {
			t2.deadRes[rr] = true
		}
	}
	return &t2, nil
}

// Carved reports whether the topology has any dead resources or ranks.
func (t *Topology) Carved() bool { return len(t.deadRes) > 0 || len(t.deadRanks) > 0 }

// ResourceAlive reports whether a resource survived carving.
func (t *Topology) ResourceAlive(r ResourceID) bool { return !t.deadRes[r] }

// RankAlive reports whether a rank survived carving.
func (t *Topology) RankAlive(r ir.Rank) bool { return !t.deadRanks[r] }

// AliveRanks returns the surviving ranks in ascending order.
func (t *Topology) AliveRanks() []ir.Rank {
	out := make([]ir.Rank, 0, t.nRanks-len(t.deadRanks))
	for r := 0; r < t.nRanks; r++ {
		if !t.deadRanks[ir.Rank(r)] {
			out = append(out, ir.Rank(r))
		}
	}
	return out
}

// PathAlive reports whether src→dst is usable on the carved topology:
// both endpoints alive and every resource of the path alive.
func (t *Topology) PathAlive(src, dst ir.Rank) bool {
	if t.deadRanks[src] || t.deadRanks[dst] {
		return false
	}
	if len(t.deadRes) == 0 {
		return true
	}
	for _, r := range t.Path(src, dst).Resources {
		if t.deadRes[r] {
			return false
		}
	}
	return true
}

// Connection identifies a directed GPU peer pair — the unit to which
// baseline backends statically assign one thread block each (§4.4).
type Connection struct {
	Src, Dst ir.Rank
}

// String formats the connection.
func (c Connection) String() string { return fmt.Sprintf("%d→%d", c.Src, c.Dst) }

// String summarises the topology.
func (t *Topology) String() string {
	base := fmt.Sprintf("%s: %d nodes × %d GPUs (%d ranks, %d NICs/node, %d servers/rack)",
		t.Profile.Name, t.NNodes, t.GPUsPerNode, t.nRanks, t.NICsPerNode, t.ServersPerRack)
	if t.NSpines > 0 {
		kind := "clos"
		if t.RailOptimized {
			kind = "rail"
		}
		base += fmt.Sprintf(", %s: %d racks × %d spines", kind, t.nRacks, t.NSpines)
	}
	return base
}
