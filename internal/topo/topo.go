// Package topo models the cluster fabric the paper evaluates on: servers
// of GPUs joined by an NVSwitch intra-node fabric, NICs shared by GPU
// pairs, and a two-tier Clos network between servers (§5.1).
//
// The topology exposes two views used by the rest of the system:
//
//   - a resource view for the flow-level simulator: every transfer path is
//     a set of capacity resources (GPU NVSwitch ports, NIC queues, the
//     point-to-point channel itself) over which bandwidth is shared;
//   - a link view for scheduling: the "communication links" of §3 whose
//     sharing between concurrently scheduled tasks constitutes a
//     communication dependency, and the "connections" of §4.4 that
//     baseline backends allocate one thread block each.
package topo

import (
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/ir"
)

// ResourceID names one capacity resource in the cluster. IDs are dense
// per topology; see Topology for the layout.
type ResourceID int

// LinkID names one communication link for dependency analysis. Link IDs
// share the ResourceID space: intra-node links are the per-pair channel
// resources, inter-node links are the NIC resources.
type LinkID = ResourceID

// ResourceKind distinguishes switch-port style resources (pure capacity
// sharing) from serializing links (capacity sharing plus the Eq. 1
// contention penalty γ·L(z) when overcommitted).
type ResourceKind int

// Resource kinds.
const (
	// KindSwitchPort shares bandwidth max-min with no extra penalty
	// (NVSwitch GPU ports: the switch is non-blocking).
	KindSwitchPort ResourceKind = iota
	// KindSerialLink pays the paper's γ·L(z) contention penalty when the
	// aggregate thread-level capability of its flows exceeds its
	// bandwidth (NICs and point-to-point channels).
	KindSerialLink
)

// Profile bundles the hardware constants of one GPU generation / fabric,
// including the cost-model parameters of Eq. 1.
type Profile struct {
	// Name labels the profile ("A100-NVSwitch-200G", "V100-100G").
	Name string

	// NVLinkBW is the intra-node port bandwidth per GPU in bytes/s.
	NVLinkBW float64
	// NICBW is one NIC's bandwidth in bytes/s.
	NICBW float64

	// LatIntra and LatInter are the per-chunk startup overheads α for
	// intra-node and inter-node transfers. The paper measures
	// λ_inter ≥ 2.5 × λ_intra (§4.3).
	LatIntra time.Duration
	LatInter time.Duration
	// LatCrossRack is the additional latency when the path crosses the
	// second Clos tier (different ToR).
	LatCrossRack time.Duration

	// TBCapIntra and TBCapInter are the sustained bandwidth a single
	// thread block can drive over an intra-node or inter-node path. The
	// default profiles follow the paper's Eq. 3–5 convention (β is the
	// inverse of the link bandwidth, so one TB drives a link at line
	// rate); the Fig. 4 microbenchmark probes the small-TB regime by
	// lowering TBCapInter to NICBW/4.
	TBCapIntra float64
	TBCapInter float64

	// Gamma scales the contention penalty L(z) of Eq. 1: when the
	// aggregate TB capability on a serializing link exceeds its
	// bandwidth by factor z, goodput is divided by 1 + Gamma·(z−1)².
	Gamma float64

	// InterpCost is the per-primitive-invocation overhead of a runtime
	// interpreter backend (loading and parsing the plan during
	// execution, §2.2). Direct kernels do not pay it.
	InterpCost time.Duration
	// KernelLoad is the one-time pipeline fill / kernel launch cost
	// t_Load of Eq. 5.
	KernelLoad time.Duration
}

// GiB is 2^30 bytes; exported for benchmark parameter tables.
const GiB = 1 << 30

// MiB is 2^20 bytes.
const MiB = 1 << 20

// A100 returns the paper's primary testbed profile: A100 GPUs, 300 GB/s
// per-GPU NVSwitch bandwidth, 200 Gbps RoCE NICs shared by two GPUs.
func A100() Profile {
	return Profile{
		Name:         "A100-NVSwitch-200G",
		NVLinkBW:     300e9,
		NICBW:        25e9, // 200 Gb/s
		LatIntra:     6 * time.Microsecond,
		LatInter:     15 * time.Microsecond,
		LatCrossRack: 3 * time.Microsecond,
		TBCapIntra:   300e9, // one TB drives a point-to-point channel at full rate (Eq. 3-5: beta = 1/linkBW)
		TBCapInter:   25e9,  // one TB drives a NIC at line rate
		Gamma:        0.6,
		InterpCost:   1200 * time.Nanosecond,
		KernelLoad:   12 * time.Microsecond,
	}
}

// H100 returns a DGX-H100 class profile: 450 GB/s per-GPU NVSwitch
// bandwidth and 400 Gb/s InfiniBand NICs (one per GPU pair) — the
// system whose 17-43% communication overheads the paper's introduction
// cites as motivation.
func H100() Profile {
	return Profile{
		Name:         "H100-NVSwitch-400G",
		NVLinkBW:     450e9,
		NICBW:        50e9, // 400 Gb/s
		LatIntra:     5 * time.Microsecond,
		LatInter:     12 * time.Microsecond,
		LatCrossRack: 3 * time.Microsecond,
		TBCapIntra:   450e9,
		TBCapInter:   50e9,
		Gamma:        0.6,
		InterpCost:   1000 * time.Nanosecond,
		KernelLoad:   10 * time.Microsecond,
	}
}

// V100 returns the heterogeneous-cluster profile of §5.2: V100 GPUs on
// 100 Gbps RoCE.
func V100() Profile {
	return Profile{
		Name:         "V100-100G",
		NVLinkBW:     130e9,
		NICBW:        12.5e9, // 100 Gb/s
		LatIntra:     8 * time.Microsecond,
		LatInter:     22 * time.Microsecond,
		LatCrossRack: 4 * time.Microsecond,
		TBCapIntra:   130e9,
		TBCapInter:   12.5e9,
		Gamma:        0.7,
		InterpCost:   1600 * time.Nanosecond,
		KernelLoad:   16 * time.Microsecond,
	}
}

// Topology is an immutable description of one cluster: NNodes servers of
// GPUsPerNode GPUs each, NICsPerNode NICs per server (GPUs share NICs
// evenly), ServersPerRack servers under each ToR switch.
type Topology struct {
	Profile

	NNodes         int
	GPUsPerNode    int
	NICsPerNode    int
	ServersPerRack int

	nRanks    int
	totalNICs int
	// Resource layout offsets.
	offEgress, offIngress, offNICEg, offNICIn, offPair int
	nResources                                         int

	// Dead sets of a carved (degraded) topology; nil on healthy
	// topologies, so the common case costs nothing. See Carve.
	deadRes   map[ResourceID]bool
	deadRanks map[ir.Rank]bool
}

// Option customises topology construction.
type Option func(*Topology)

// WithNICs overrides the number of NICs per server (default
// GPUsPerNode/2, minimum 1).
func WithNICs(n int) Option { return func(t *Topology) { t.NICsPerNode = n } }

// WithServersPerRack overrides how many servers share a ToR (default 2).
func WithServersPerRack(n int) Option { return func(t *Topology) { t.ServersPerRack = n } }

// New builds a topology of nNodes servers with gpusPerNode GPUs each
// under the given hardware profile. It panics on non-positive dimensions;
// construction parameters are programmer input, not runtime data.
func New(nNodes, gpusPerNode int, p Profile, opts ...Option) *Topology {
	if nNodes < 1 || gpusPerNode < 1 {
		panic(fmt.Sprintf("topo: invalid dimensions %d nodes × %d GPUs", nNodes, gpusPerNode))
	}
	t := &Topology{
		Profile:        p,
		NNodes:         nNodes,
		GPUsPerNode:    gpusPerNode,
		NICsPerNode:    max(1, gpusPerNode/2),
		ServersPerRack: 2,
	}
	for _, o := range opts {
		o(t)
	}
	if t.NICsPerNode < 1 || t.NICsPerNode > gpusPerNode {
		panic(fmt.Sprintf("topo: invalid NICsPerNode %d for %d GPUs/node", t.NICsPerNode, gpusPerNode))
	}
	if t.ServersPerRack < 1 {
		panic(fmt.Sprintf("topo: invalid ServersPerRack %d", t.ServersPerRack))
	}
	t.nRanks = nNodes * gpusPerNode
	t.totalNICs = nNodes * t.NICsPerNode
	t.offEgress = 0
	t.offIngress = t.nRanks
	t.offNICEg = 2 * t.nRanks
	t.offNICIn = t.offNICEg + t.totalNICs
	t.offPair = t.offNICIn + t.totalNICs
	t.nResources = t.offPair + t.nRanks*t.nRanks
	return t
}

// NRanks is the total number of GPUs.
func (t *Topology) NRanks() int { return t.nRanks }

// NResources is the size of the dense ResourceID space.
func (t *Topology) NResources() int { return t.nResources }

// Node returns the server index hosting rank r.
func (t *Topology) Node(r ir.Rank) int { return int(r) / t.GPUsPerNode }

// LocalIndex returns r's index within its server.
func (t *Topology) LocalIndex(r ir.Rank) int { return int(r) % t.GPUsPerNode }

// SameNode reports whether a and b are on the same server.
func (t *Topology) SameNode(a, b ir.Rank) bool { return t.Node(a) == t.Node(b) }

// Rack returns the rack (ToR) index of a server.
func (t *Topology) Rack(node int) int { return node / t.ServersPerRack }

// NIC returns the global NIC index serving rank r. GPUs are assigned to
// NICs in contiguous groups, matching the testbed where every two GPUs
// share one NIC.
func (t *Topology) NIC(r ir.Rank) int {
	perNIC := t.GPUsPerNode / t.NICsPerNode
	if perNIC == 0 {
		perNIC = 1
	}
	local := t.LocalIndex(r) / perNIC
	if local >= t.NICsPerNode {
		local = t.NICsPerNode - 1
	}
	return t.Node(r)*t.NICsPerNode + local
}

// Resource identifiers.

// EgressPort returns rank r's NVSwitch egress port resource.
func (t *Topology) EgressPort(r ir.Rank) ResourceID { return ResourceID(t.offEgress + int(r)) }

// IngressPort returns rank r's NVSwitch ingress port resource.
func (t *Topology) IngressPort(r ir.Rank) ResourceID { return ResourceID(t.offIngress + int(r)) }

// NNICs returns the cluster-wide NIC count.
func (t *Topology) NNICs() int { return t.totalNICs }

// NICResources returns both queue resources (egress, ingress) of global
// NIC n — the pair a NIC flap takes down together.
func (t *Topology) NICResources(n int) (eg, in ResourceID) {
	return t.NICEgress(n), t.NICIngress(n)
}

// NICEgress returns the egress resource of global NIC n.
func (t *Topology) NICEgress(n int) ResourceID { return ResourceID(t.offNICEg + n) }

// NICIngress returns the ingress resource of global NIC n.
func (t *Topology) NICIngress(n int) ResourceID { return ResourceID(t.offNICIn + n) }

// PairLink returns the point-to-point channel resource for src→dst. This
// is the intra-node "communication link" of §3.
func (t *Topology) PairLink(src, dst ir.Rank) ResourceID {
	return ResourceID(t.offPair + int(src)*t.nRanks + int(dst))
}

// Capacity returns a resource's bandwidth in bytes/s.
func (t *Topology) Capacity(res ResourceID) float64 {
	switch {
	case int(res) < t.offNICEg:
		return t.NVLinkBW
	case int(res) < t.offPair:
		return t.NICBW
	default:
		return t.NVLinkBW
	}
}

// Kind returns whether the resource is a switch port or a serializing
// link for the purposes of the Eq. 1 contention penalty.
func (t *Topology) Kind(res ResourceID) ResourceKind {
	if int(res) < t.offNICEg {
		return KindSwitchPort
	}
	return KindSerialLink
}

// DescribeResource renders a resource ID for traces.
func (t *Topology) DescribeResource(res ResourceID) string {
	i := int(res)
	switch {
	case i < t.offIngress:
		return fmt.Sprintf("nv-egress(gpu%d)", i-t.offEgress)
	case i < t.offNICEg:
		return fmt.Sprintf("nv-ingress(gpu%d)", i-t.offIngress)
	case i < t.offNICIn:
		return fmt.Sprintf("nic-egress(%d)", i-t.offNICEg)
	case i < t.offPair:
		return fmt.Sprintf("nic-ingress(%d)", i-t.offNICIn)
	default:
		p := i - t.offPair
		return fmt.Sprintf("pair(%d→%d)", p/t.nRanks, p%t.nRanks)
	}
}

// Path is everything the simulator and scheduler need to know about
// moving one chunk from Src to Dst.
type Path struct {
	Src, Dst ir.Rank
	// Intra reports whether the path stays inside one server.
	Intra bool
	// Alpha is the per-chunk startup overhead α.
	Alpha time.Duration
	// TBCap is the per-thread-block sustained bandwidth on this path.
	TBCap float64
	// Resources are all capacity resources the flow occupies.
	Resources []ResourceID
	// CommLinks is the subset of resources whose sharing between tasks
	// constitutes a communication dependency (§3): the point-to-point
	// channel for intra-node paths, the two NIC queues for inter-node.
	CommLinks []ResourceID
}

// Path computes the path from src to dst. It panics if src == dst (a
// transfer to self is a plan construction bug, caught earlier by
// ir.Transfer.Validate).
func (t *Topology) Path(src, dst ir.Rank) Path {
	if src == dst {
		panic(fmt.Sprintf("topo: path %d→%d to self", src, dst))
	}
	if t.SameNode(src, dst) {
		pair := t.PairLink(src, dst)
		return Path{
			Src: src, Dst: dst, Intra: true,
			Alpha:     t.LatIntra,
			TBCap:     t.TBCapIntra,
			Resources: []ResourceID{t.EgressPort(src), t.IngressPort(dst), pair},
			CommLinks: []ResourceID{pair},
		}
	}
	alpha := t.LatInter
	if t.Rack(t.Node(src)) != t.Rack(t.Node(dst)) {
		alpha += t.LatCrossRack
	}
	eg := t.NICEgress(t.NIC(src))
	in := t.NICIngress(t.NIC(dst))
	return Path{
		Src: src, Dst: dst, Intra: false,
		Alpha:     alpha,
		TBCap:     t.TBCapInter,
		Resources: []ResourceID{eg, in},
		CommLinks: []ResourceID{eg, in},
	}
}

// LinkWindow returns how many transmission tasks driven by thread
// blocks of capability tbCap may occupy link l concurrently before the
// aggregate thread-level capability exceeds the link's bandwidth — the
// saturation point of Fig. 4 (four TBs per NIC). Scheduling more than
// this window onto a link constitutes a communication dependency (§3).
func (t *Topology) LinkWindow(l ResourceID, tbCap float64) int {
	if tbCap <= 0 {
		return 1
	}
	k := int(t.Capacity(l) / tbCap)
	if k < 1 {
		k = 1
	}
	return k
}

// --- degraded topologies (plan-level recovery) ---

// RankResources lists the capacity resources that belong exclusively to
// rank r: its NVSwitch ports and every point-to-point channel touching
// it. NIC queues are shared with the other ranks of the NIC and are not
// included — a dead rank does not take its neighbours' NIC down.
func (t *Topology) RankResources(r ir.Rank) []ResourceID {
	out := make([]ResourceID, 0, 2+2*(t.nRanks-1))
	out = append(out, t.EgressPort(r), t.IngressPort(r))
	for q := 0; q < t.nRanks; q++ {
		if ir.Rank(q) == r {
			continue
		}
		out = append(out, t.PairLink(r, ir.Rank(q)), t.PairLink(ir.Rank(q), r))
	}
	return out
}

// Carve returns a copy of the topology with the given resources and
// ranks marked permanently dead (a dead rank also kills its exclusive
// resources, see RankResources). Carving composes: carving an already
// carved topology merges the dead sets. The receiver is not modified.
func (t *Topology) Carve(res []ResourceID, ranks []ir.Rank) (*Topology, error) {
	t2 := *t
	t2.deadRes = make(map[ResourceID]bool, len(t.deadRes)+len(res))
	for r := range t.deadRes {
		t2.deadRes[r] = true
	}
	t2.deadRanks = make(map[ir.Rank]bool, len(t.deadRanks)+len(ranks))
	for r := range t.deadRanks {
		t2.deadRanks[r] = true
	}
	for _, r := range res {
		if int(r) < 0 || int(r) >= t.nResources {
			return nil, fmt.Errorf("topo: carve names unknown resource %d", r)
		}
		t2.deadRes[r] = true
	}
	for _, r := range ranks {
		if r < 0 || int(r) >= t.nRanks {
			return nil, fmt.Errorf("topo: carve names unknown rank %d", r)
		}
		t2.deadRanks[r] = true
		for _, rr := range t.RankResources(r) {
			t2.deadRes[rr] = true
		}
	}
	return &t2, nil
}

// Carved reports whether the topology has any dead resources or ranks.
func (t *Topology) Carved() bool { return len(t.deadRes) > 0 || len(t.deadRanks) > 0 }

// ResourceAlive reports whether a resource survived carving.
func (t *Topology) ResourceAlive(r ResourceID) bool { return !t.deadRes[r] }

// RankAlive reports whether a rank survived carving.
func (t *Topology) RankAlive(r ir.Rank) bool { return !t.deadRanks[r] }

// AliveRanks returns the surviving ranks in ascending order.
func (t *Topology) AliveRanks() []ir.Rank {
	out := make([]ir.Rank, 0, t.nRanks-len(t.deadRanks))
	for r := 0; r < t.nRanks; r++ {
		if !t.deadRanks[ir.Rank(r)] {
			out = append(out, ir.Rank(r))
		}
	}
	return out
}

// PathAlive reports whether src→dst is usable on the carved topology:
// both endpoints alive and every resource of the path alive.
func (t *Topology) PathAlive(src, dst ir.Rank) bool {
	if t.deadRanks[src] || t.deadRanks[dst] {
		return false
	}
	if len(t.deadRes) == 0 {
		return true
	}
	for _, r := range t.Path(src, dst).Resources {
		if t.deadRes[r] {
			return false
		}
	}
	return true
}

// Connection identifies a directed GPU peer pair — the unit to which
// baseline backends statically assign one thread block each (§4.4).
type Connection struct {
	Src, Dst ir.Rank
}

// String formats the connection.
func (c Connection) String() string { return fmt.Sprintf("%d→%d", c.Src, c.Dst) }

// String summarises the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s: %d nodes × %d GPUs (%d ranks, %d NICs/node, %d servers/rack)",
		t.Profile.Name, t.NNodes, t.GPUsPerNode, t.nRanks, t.NICsPerNode, t.ServersPerRack)
}
