package topo

import (
	"testing"
	"testing/quick"

	"github.com/resccl/resccl/internal/ir"
)

func TestLayout(t *testing.T) {
	tp := New(4, 8, A100())
	if tp.NRanks() != 32 {
		t.Fatalf("NRanks = %d, want 32", tp.NRanks())
	}
	if tp.Node(0) != 0 || tp.Node(7) != 0 || tp.Node(8) != 1 || tp.Node(31) != 3 {
		t.Error("node assignment wrong")
	}
	if tp.LocalIndex(13) != 5 {
		t.Errorf("LocalIndex(13) = %d, want 5", tp.LocalIndex(13))
	}
	if !tp.SameNode(8, 15) || tp.SameNode(7, 8) {
		t.Error("SameNode wrong")
	}
	// 2 servers per rack by default → nodes 0,1 rack 0; nodes 2,3 rack 1.
	if tp.Rack(0) != 0 || tp.Rack(1) != 0 || tp.Rack(2) != 1 {
		t.Error("rack assignment wrong")
	}
}

func TestNICSharing(t *testing.T) {
	tp := New(2, 8, A100()) // 4 NICs per node, 2 GPUs per NIC
	if tp.NICsPerNode != 4 {
		t.Fatalf("NICsPerNode = %d, want 4", tp.NICsPerNode)
	}
	if tp.NIC(0) != tp.NIC(1) {
		t.Error("GPUs 0 and 1 should share NIC 0")
	}
	if tp.NIC(1) == tp.NIC(2) {
		t.Error("GPUs 1 and 2 should use different NICs")
	}
	if tp.NIC(8) != 4 {
		t.Errorf("first NIC of node 1 = %d, want 4", tp.NIC(8))
	}
}

func TestPathIntra(t *testing.T) {
	tp := New(2, 8, A100())
	p := tp.Path(1, 3)
	if !p.Intra {
		t.Fatal("1→3 should be intra-node")
	}
	if p.Alpha != tp.LatIntra {
		t.Errorf("alpha = %v, want %v", p.Alpha, tp.LatIntra)
	}
	if len(p.CommLinks) != 1 || p.CommLinks[0] != tp.PairLink(1, 3) {
		t.Errorf("intra comm link should be the pair channel, got %v", p.CommLinks)
	}
	if len(p.Resources) != 3 {
		t.Errorf("intra path should occupy 3 resources, got %d", len(p.Resources))
	}
}

func TestPathInter(t *testing.T) {
	tp := New(2, 8, A100())
	p := tp.Path(0, 9) // node 0 → node 1, same rack
	if p.Intra {
		t.Fatal("0→9 should be inter-node")
	}
	if p.Alpha != tp.LatInter {
		t.Errorf("alpha = %v, want %v", p.Alpha, tp.LatInter)
	}
	if len(p.CommLinks) != 2 {
		t.Fatalf("inter path should have 2 comm links, got %d", len(p.CommLinks))
	}
	if p.CommLinks[0] != tp.NICEgress(tp.NIC(0)) || p.CommLinks[1] != tp.NICIngress(tp.NIC(9)) {
		t.Error("inter comm links should be the NIC queues")
	}
}

func TestCrossRackLatency(t *testing.T) {
	tp := New(4, 4, A100()) // racks {0,1} and {2,3}
	same := tp.Path(0, 4)   // node 0 → node 1, same rack
	cross := tp.Path(0, 8)  // node 0 → node 2, different rack
	if cross.Alpha <= same.Alpha {
		t.Errorf("cross-rack alpha %v should exceed same-rack %v", cross.Alpha, same.Alpha)
	}
}

func TestCapacityAndKind(t *testing.T) {
	tp := New(2, 4, A100())
	if got := tp.Capacity(tp.EgressPort(0)); got != tp.NVLinkBW {
		t.Errorf("egress capacity = %g, want %g", got, tp.NVLinkBW)
	}
	if got := tp.Capacity(tp.NICEgress(0)); got != tp.NICBW {
		t.Errorf("NIC capacity = %g, want %g", got, tp.NICBW)
	}
	if got := tp.Capacity(tp.PairLink(0, 1)); got != tp.NVLinkBW {
		t.Errorf("pair capacity = %g, want %g", got, tp.NVLinkBW)
	}
	if tp.Kind(tp.EgressPort(0)) != KindSwitchPort {
		t.Error("egress port should be a switch port")
	}
	if tp.Kind(tp.NICEgress(0)) != KindSerialLink || tp.Kind(tp.PairLink(0, 1)) != KindSerialLink {
		t.Error("NICs and pair channels should be serializing links")
	}
}

func TestLinkWindow(t *testing.T) {
	tp := New(2, 8, A100())
	// One full-rate TB per link → window 1.
	if w := tp.LinkWindow(tp.NICEgress(0), tp.TBCapInter); w != 1 {
		t.Errorf("NIC window = %d, want 1", w)
	}
	// Quarter-rate TBs → window 4 (the Fig. 4 saturation point).
	if w := tp.LinkWindow(tp.NICEgress(0), tp.NICBW/4); w != 4 {
		t.Errorf("NIC window at quarter TBs = %d, want 4", w)
	}
	if w := tp.LinkWindow(tp.PairLink(0, 1), 0); w != 1 {
		t.Errorf("window with zero cap = %d, want 1", w)
	}
}

func TestResourceIDsDisjoint(t *testing.T) {
	tp := New(2, 8, A100())
	seen := map[ResourceID]string{}
	add := func(id ResourceID, what string) {
		if prev, dup := seen[id]; dup {
			t.Fatalf("resource ID %d used by both %s and %s", id, prev, what)
		}
		seen[id] = what
	}
	for r := 0; r < tp.NRanks(); r++ {
		add(tp.EgressPort(ir.Rank(r)), "egress")
		add(tp.IngressPort(ir.Rank(r)), "ingress")
	}
	for n := 0; n < tp.NNodes*tp.NICsPerNode; n++ {
		add(tp.NICEgress(n), "nic-eg")
		add(tp.NICIngress(n), "nic-in")
	}
	for a := 0; a < tp.NRanks(); a++ {
		for b := 0; b < tp.NRanks(); b++ {
			if tp.SameNode(ir.Rank(a), ir.Rank(b)) {
				add(tp.PairLink(ir.Rank(a), ir.Rank(b)), "pair")
			}
		}
	}
	for id := range seen {
		if int(id) < 0 || int(id) >= tp.NResources() {
			t.Fatalf("resource ID %d outside [0,%d)", id, tp.NResources())
		}
	}
}

func TestPathToSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Path(r,r) should panic")
		}
	}()
	New(1, 2, A100()).Path(0, 0)
}

func TestOptions(t *testing.T) {
	tp := New(2, 8, A100(), WithNICs(8), WithServersPerRack(1))
	if tp.NICsPerNode != 8 {
		t.Errorf("NICsPerNode = %d, want 8", tp.NICsPerNode)
	}
	if tp.Rack(0) == tp.Rack(1) {
		t.Error("1 server per rack: nodes 0 and 1 should be in different racks")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{A100(), V100()} {
		if p.LatInter < 2*p.LatIntra {
			t.Errorf("%s: inter latency %v should be ≥ 2.5× intra %v (paper §4.3)", p.Name, p.LatInter, p.LatIntra)
		}
		if p.NVLinkBW <= p.NICBW {
			t.Errorf("%s: NVLink should outrun the NIC", p.Name)
		}
		if p.Gamma <= 0 || p.InterpCost <= 0 || p.KernelLoad <= 0 {
			t.Errorf("%s: cost-model constants must be positive", p.Name)
		}
	}
}

// Property: paths are symmetric in kind (intra/inter) and every path's
// comm links are a subset of its resources.
func TestPropertyPathWellFormed(t *testing.T) {
	tp := New(3, 4, V100())
	f := func(a, b uint8) bool {
		src := ir.Rank(int(a) % tp.NRanks())
		dst := ir.Rank(int(b) % tp.NRanks())
		if src == dst {
			return true
		}
		p := tp.Path(src, dst)
		if p.Intra != tp.SameNode(src, dst) {
			return false
		}
		for _, l := range p.CommLinks {
			found := false
			for _, r := range p.Resources {
				if r == l {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return p.TBCap > 0 && p.Alpha > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeResource(t *testing.T) {
	tp := New(2, 4, A100())
	cases := map[ResourceID]string{
		tp.EgressPort(3):  "nv-egress(gpu3)",
		tp.IngressPort(5): "nv-ingress(gpu5)",
		tp.NICEgress(1):   "nic-egress(1)",
		tp.NICIngress(2):  "nic-ingress(2)",
		tp.PairLink(1, 3): "pair(1→3)",
		tp.PairLink(5, 6): "pair(5→6)",
	}
	for res, want := range cases {
		if got := tp.DescribeResource(res); got != want {
			t.Errorf("DescribeResource(%d) = %q, want %q", res, got, want)
		}
	}
	if s := tp.String(); s == "" {
		t.Error("empty topology String")
	}
}

func TestNewPanicsOnBadDimensions(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 8, A100()) },
		func() { New(2, 0, A100()) },
		func() { New(2, 4, A100(), WithNICs(9)) },
		func() { New(2, 4, A100(), WithServersPerRack(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid construction")
				}
			}()
			f()
		}()
	}
}

func TestConnectionString(t *testing.T) {
	c := Connection{Src: 2, Dst: 9}
	if c.String() != "2→9" {
		t.Errorf("Connection.String() = %q", c.String())
	}
}

func TestSingleGPUPerNodeNIC(t *testing.T) {
	// One GPU per node forces one NIC per node.
	tp := New(4, 1, A100(), WithNICs(1))
	for r := 0; r < 4; r++ {
		if tp.NIC(ir.Rank(r)) != r {
			t.Errorf("NIC(%d) = %d, want %d", r, tp.NIC(ir.Rank(r)), r)
		}
	}
}
