package topo

import (
	"testing"

	"github.com/resccl/resccl/internal/ir"
)

// Multi-tier constructor invariants: the dense resource layout must
// account for every tier exactly once, at any scale.
func TestMultiTierResourceCounts(t *testing.T) {
	cases := []struct {
		name string
		tp   *Topology
	}{
		{"flat-4x8", New(4, 8, A100())},
		{"clos-8x8", NewClos(8, 8, A100(), 4)},
		{"clos-odd", NewClos(5, 4, A100(), 3, WithServersPerRack(3))},
		{"rail-8x8", NewRail(8, 8, A100(), 8)},
		{"clos-512x8", NewClos(512, 8, A100(), 16)},
		{"rail-512x8", NewRail(512, 8, A100(), 16)},
	}
	for _, tc := range cases {
		tp := tc.tp
		want := 2*tp.NRanks() + // NVSwitch egress + ingress ports
			2*tp.NNICs() + // NIC egress + ingress queues
			tp.NNodes*tp.GPUsPerNode*tp.GPUsPerNode + // same-node pair channels
			2*tp.NRacks()*tp.NSpines // spine up + downlinks
		if got := tp.NResources(); got != want {
			t.Errorf("%s: NResources = %d, want %d", tc.name, got, want)
		}
	}
	// The per-node pair layout keeps the resource space linear in rank
	// count: 4096 ranks must stay in the low hundreds of thousands, not
	// the 16.7M a global rank×rank matrix would cost.
	big := NewRail(512, 8, A100(), 16)
	if big.NResources() > 200_000 {
		t.Errorf("4096-rank resource space blew up: %d resources", big.NResources())
	}
}

// Spine resource IDs must be disjoint from every other tier and stay in
// range, including on carved copies.
func TestSpineResourceIDsDisjoint(t *testing.T) {
	tp := NewClos(8, 4, A100(), 3)
	seen := map[ResourceID]string{}
	add := func(id ResourceID, what string) {
		if prev, dup := seen[id]; dup {
			t.Fatalf("resource ID %d used by both %s and %s", id, prev, what)
		}
		if int(id) < 0 || int(id) >= tp.NResources() {
			t.Fatalf("%s resource ID %d outside [0,%d)", what, id, tp.NResources())
		}
		seen[id] = what
	}
	for r := 0; r < tp.NRanks(); r++ {
		add(tp.EgressPort(ir.Rank(r)), "egress")
		add(tp.IngressPort(ir.Rank(r)), "ingress")
	}
	for n := 0; n < tp.NNICs(); n++ {
		add(tp.NICEgress(n), "nic-eg")
		add(tp.NICIngress(n), "nic-in")
	}
	for a := 0; a < tp.NRanks(); a++ {
		for b := 0; b < tp.NRanks(); b++ {
			if tp.SameNode(ir.Rank(a), ir.Rank(b)) {
				add(tp.PairLink(ir.Rank(a), ir.Rank(b)), "pair")
			}
		}
	}
	for rack := 0; rack < tp.NRacks(); rack++ {
		for s := 0; s < tp.NSpines; s++ {
			add(tp.SpineUp(rack, s), "spine-up")
			add(tp.SpineDown(rack, s), "spine-down")
		}
	}
	if len(seen) != tp.NResources() {
		t.Errorf("enumerated %d resources, layout claims %d", len(seen), tp.NResources())
	}
}

// Rail striping: one NIC per GPU, and the NIC assignment must be the
// identity stripe — rank r's NIC is NIC r, so rail c is exactly the
// same-local-index GPUs across all nodes. PairLink must be unaffected
// by the NIC re-striping.
func TestRailStripingStable(t *testing.T) {
	rail := NewRail(6, 4, A100(), 4)
	flat := New(6, 4, A100())
	if rail.NICsPerNode != rail.GPUsPerNode {
		t.Fatalf("rail NICsPerNode = %d, want %d", rail.NICsPerNode, rail.GPUsPerNode)
	}
	for r := 0; r < rail.NRanks(); r++ {
		if got := rail.NIC(ir.Rank(r)); got != r {
			t.Errorf("rail NIC(%d) = %d, want %d (identity stripe)", r, got, r)
		}
	}
	for a := 0; a < rail.NRanks(); a++ {
		for b := 0; b < rail.NRanks(); b++ {
			if a == b || !rail.SameNode(ir.Rank(a), ir.Rank(b)) {
				continue
			}
			if rail.PairLink(ir.Rank(a), ir.Rank(b))-ResourceID(rail.offPair) !=
				flat.PairLink(ir.Rank(a), ir.Rank(b))-ResourceID(flat.offPair) {
				t.Fatalf("pair channel %d→%d moved under rail striping", a, b)
			}
		}
	}
	// panics if an option tries to undo the one-NIC-per-GPU stripe
	defer func() {
		if recover() == nil {
			t.Error("NewRail accepted WithNICs overriding the rail stripe")
		}
	}()
	NewRail(2, 4, A100(), 2, WithNICs(1))
}

// Rail-optimized same-rail traffic must stay off the spine tier and pay
// no cross-rack latency, however many racks apart; cross-rail traffic
// must climb to a spine and pay it.
func TestRailPathBypassesSpine(t *testing.T) {
	tp := NewRail(8, 4, A100(), 4) // 4 racks of 2 servers
	sameRail := tp.Path(0, 28)     // node 0 local 0 → node 7 local 0, racks 0 and 3
	if len(sameRail.Resources) != 2 {
		t.Fatalf("same-rail path should use only its NIC queues, got %d resources", len(sameRail.Resources))
	}
	if sameRail.Alpha != tp.LatInter {
		t.Errorf("same-rail alpha = %v, want %v (no cross-rack penalty)", sameRail.Alpha, tp.LatInter)
	}
	crossRail := tp.Path(0, 29) // node 0 local 0 → node 7 local 1
	if len(crossRail.Resources) != 4 {
		t.Fatalf("cross-rail cross-rack path should traverse a spine, got %d resources", len(crossRail.Resources))
	}
	if crossRail.Alpha <= sameRail.Alpha {
		t.Errorf("cross-rail alpha %v should exceed same-rail %v", crossRail.Alpha, sameRail.Alpha)
	}
	// Comm links stay the NIC queues either way: the spine adds capacity
	// sharing, not new scheduling dependencies.
	for _, p := range []Path{sameRail, crossRail} {
		if len(p.CommLinks) != 2 || p.CommLinks[0] != tp.NICEgress(tp.NIC(p.Src)) ||
			p.CommLinks[1] != tp.NICIngress(tp.NIC(p.Dst)) {
			t.Errorf("%d→%d comm links should be the NIC queues, got %v", p.Src, p.Dst, p.CommLinks)
		}
	}
}

// Clos cross-rack paths traverse exactly one spine (uplink from the
// source rack, downlink into the destination rack), chosen
// deterministically; same-rack paths never touch the spine tier.
func TestClosPathSpineSelection(t *testing.T) {
	tp := NewClos(8, 4, A100(), 4)
	same := tp.Path(0, 4) // node 0 → node 1, rack 0
	if len(same.Resources) != 2 {
		t.Fatalf("same-rack path should skip the spine tier, got %v", same.Resources)
	}
	cross := tp.Path(0, 28) // rack 0 → rack 3
	if len(cross.Resources) != 4 {
		t.Fatalf("cross-rack path should hold [nic-eg, spine-up, spine-down, nic-in], got %v", cross.Resources)
	}
	up, down := cross.Resources[1], cross.Resources[2]
	foundUp, foundDown := -1, -1
	for s := 0; s < tp.NSpines; s++ {
		if tp.SpineUp(0, s) == up {
			foundUp = s
		}
		if tp.SpineDown(3, s) == down {
			foundDown = s
		}
	}
	if foundUp < 0 || foundUp != foundDown {
		t.Fatalf("path must ride ONE spine end to end: uplink spine %d, downlink spine %d", foundUp, foundDown)
	}
	// Determinism: the same path must stripe to the same spine forever.
	for i := 0; i < 5; i++ {
		p := tp.Path(0, 28)
		if p.Resources[1] != up || p.Resources[2] != down {
			t.Fatal("spine selection is not deterministic")
		}
	}
}

// Carving a spine must fail traffic over to a surviving spine, and the
// path must only die when every spine for the rack pair is gone —
// replanning after spine failures depends on this.
func TestCarveSpineFailover(t *testing.T) {
	tp := NewClos(8, 4, A100(), 3)
	src, dst := ir.Rank(0), ir.Rank(28) // rack 0 → rack 3
	home := tp.Path(src, dst).Resources[1]
	carved, err := tp.Carve([]ResourceID{home}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !carved.PathAlive(src, dst) {
		t.Fatal("path died with 2 of 3 spines alive")
	}
	p := carved.Path(src, dst)
	if p.Resources[1] == home {
		t.Fatal("path still routed through the carved spine uplink")
	}
	for _, r := range p.Resources {
		if !carved.ResourceAlive(r) {
			t.Fatalf("failover path crosses dead resource %d", r)
		}
	}
	// Kill every uplink of rack 0: no spine can carry rack-0 egress.
	var all []ResourceID
	for s := 0; s < tp.NSpines; s++ {
		all = append(all, tp.SpineUp(0, s))
	}
	dead, err := tp.Carve(all, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dead.PathAlive(src, dst) {
		t.Fatal("path reported alive with every uplink of its source rack dead")
	}
	// Same-rack traffic never touches the spine tier and must survive.
	if !dead.PathAlive(0, 4) {
		t.Fatal("same-rack path died of spine failures it does not use")
	}
}

// Spine bandwidth defaults to full bisection (a rack's aggregate NIC
// bandwidth spread over its uplinks) and is overridable.
func TestSpineBandwidth(t *testing.T) {
	tp := NewClos(8, 8, A100(), 4)
	want := float64(tp.ServersPerRack*tp.NICsPerNode) * tp.NICBW / float64(tp.NSpines)
	if got := tp.Capacity(tp.SpineUp(0, 0)); got != want {
		t.Errorf("default spine capacity = %g, want full bisection %g", got, want)
	}
	over := NewClos(8, 8, A100(), 4, WithSpineBW(1e9))
	if got := over.Capacity(over.SpineDown(1, 2)); got != 1e9 {
		t.Errorf("WithSpineBW override ignored: capacity = %g", got)
	}
	if tp.Kind(tp.SpineUp(0, 0)) != KindSerialLink {
		t.Error("spine links must serialize (Eq. 1 contention applies)")
	}
}

// Constructors must reject meaningless spine counts.
func TestMultiTierPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewClos(2, 4, A100(), 0) },
		func() { NewRail(2, 4, A100(), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid multi-tier construction")
				}
			}()
			f()
		}()
	}
}
