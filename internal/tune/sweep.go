package tune

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/resccl/resccl/internal/analyze/cert"
	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/synth/search"
	"github.com/resccl/resccl/internal/topo"
)

// Stats receives simulator throughput counters from a sweep;
// bench.Stats satisfies it.
type Stats interface{ AddSimEvents(n int) }

// Options configure a tuning sweep. The zero value sweeps AllReduce and
// AllGather over the default size grid under every concrete protocol
// tier, serially, with seed 1.
type Options struct {
	// Ops are the collectives to tune (default AllReduce, AllGather).
	Ops []ir.OpType
	// Sizes is the message-size grid (default 64 KiB → 1 GiB in ×4
	// steps; Quick shrinks it to three points).
	Sizes []int64
	// Protocols are the tiers swept per point (default LL, LL128,
	// Simple).
	Protocols []ir.Protocol
	// Seed drives the synthesizer's search (default 1). Identical
	// options and seed yield a byte-identical table.
	Seed int64
	// Beam and Rounds bound the synthesizer's search effort (defaults
	// 4 and 2; Quick uses 3 and 1 unless set explicitly).
	Beam, Rounds int
	// Quick shrinks the grid and search effort for smoke runs.
	Quick bool
	// Parallel fans independent (candidate, size, tier) cells across a
	// worker pool; results are byte-identical to a serial run.
	Parallel bool
	// Workers caps the pool; 0 means GOMAXPROCS.
	Workers int
	// Cache is the plan-compile cache to route compilations through;
	// nil creates a private one.
	Cache *backend.Cache
	// ChunkBytes is the simulated transfer chunk size (default 1 MiB).
	ChunkBytes int64
	// Stats, when non-nil, accumulates simulator event counts.
	Stats Stats
	// Budget is the resource envelope candidates must fit before they
	// are measured at all: any candidate whose compiled plan trips a
	// cert.BudgetLints violation (peak thread blocks per rank, buffer
	// high-water mark) is pruned from the sweep and recorded in
	// Result.Pruned. Nil applies cert.DefaultBudget.
	Budget *cert.Budget
}

// DefaultSizes is the full sweep grid: 64 KiB to 1 GiB in ×4 steps,
// straddling the paper's small-buffer crossover region.
func DefaultSizes() []int64 {
	return []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}
}

// QuickSizes is the smoke-run grid.
func QuickSizes() []int64 { return []int64{256 << 10, 4 << 20, 64 << 20} }

func (o Options) withDefaults() Options {
	if len(o.Ops) == 0 {
		o.Ops = []ir.OpType{ir.OpAllReduce, ir.OpAllGather}
	}
	if len(o.Sizes) == 0 {
		if o.Quick {
			o.Sizes = QuickSizes()
		} else {
			o.Sizes = DefaultSizes()
		}
	}
	if len(o.Protocols) == 0 {
		o.Protocols = []ir.Protocol{ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Beam <= 0 {
		if o.Quick {
			o.Beam = 3
		} else {
			o.Beam = 4
		}
	}
	if o.Rounds <= 0 {
		if o.Quick {
			o.Rounds = 1
		} else {
			o.Rounds = 2
		}
	}
	if o.Cache == nil {
		o.Cache = backend.NewCache()
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	return o
}

// Candidate is one algorithm the sweep measured.
type Candidate struct {
	// Name rebuilds the plan: an expert-registry key or an encoded
	// sketch genome.
	Name string
	Algo *ir.Algorithm
	// Synth marks search-synthesized candidates (as opposed to
	// registered expert/heuristic builders).
	Synth bool
}

// Cell is one measured sweep point.
type Cell struct {
	Op        ir.OpType
	Bytes     int64
	Candidate Candidate
	Protocol  ir.Protocol
	// Completion is the simulated wall time in seconds.
	Completion float64
}

// Pruned records one candidate the sweep refused to measure: its
// compiled plan violates the resource budget, so it can never be
// dispatched no matter how fast it simulates.
type Pruned struct {
	Op   ir.OpType
	Name string
	// Reason is the first budget lint that fired (code: message).
	Reason string
}

// Result carries the emitted dispatch table plus every measured cell
// for reporting (the bench experiment's comparison tables).
type Result struct {
	Table *Table
	Cells []Cell
	// Certs are the winners' resource-efficiency certificates, aligned
	// index-for-index with Table.Entries. Each entry's GapPct/CertHash
	// are drawn from the corresponding certificate.
	Certs []*cert.Certificate
	// Pruned lists candidates dropped by the budget pre-check before
	// measurement.
	Pruned []Pruned
}

// Sweep tunes tp: it gathers candidates (every compatible registered
// algorithm plus the sketch search's verified winners), prunes any
// whose compiled plan violates the resource budget, measures every
// surviving (op, size, candidate, tier) cell through the plan cache
// and the simulator, and emits the dispatch table of per-bucket
// winners, each carrying its resource-efficiency certificate.
// Everything is deterministic: same topology, options and seed produce
// a byte-identical table and identical cells. ctx cancels the sweep at
// compile boundaries; nil never cancels.
func Sweep(ctx context.Context, tp *topo.Topology, opts Options) (*Result, error) {
	if tp == nil {
		return nil, fmt.Errorf("tune: sweep needs a topology")
	}
	opts = opts.withDefaults()
	be := backend.NewResCCL()
	budget := cert.DefaultBudget()
	if opts.Budget != nil {
		budget = *opts.Budget
	}

	type opPlan struct {
		op    ir.OpType
		cands []Candidate
	}
	res := &Result{}
	plans := make([]opPlan, 0, len(opts.Ops))
	// The budget pre-check compiles each candidate under the sweep's
	// highest tier — the last listed protocol, Simple by default — which
	// the measurement pass compiles anyway, so the shared cache keeps
	// miss counts identical to an unpruned sweep.
	pruneProto := opts.Protocols[len(opts.Protocols)-1]
	for _, op := range opts.Ops {
		cands, err := candidates(tp, op, opts)
		if err != nil {
			return nil, err
		}
		kept := cands[:0]
		for _, cand := range cands {
			plan, _, err := opts.Cache.CompileNoted(ctx, be, backend.Request{
				Algo: cand.Algo, Topo: tp, Protocol: pruneProto,
			})
			if err != nil {
				return nil, fmt.Errorf("tune: budget pre-check %s/%v: %w", cand.Name, pruneProto, err)
			}
			lints := cert.BudgetLints(plan.Kernel, tp, cert.Options{
				ChunkBytes: opts.ChunkBytes, Budget: budget,
			})
			pruned := false
			for _, d := range lints {
				if cert.IsBudgetDiag(d.Code) {
					res.Pruned = append(res.Pruned, Pruned{
						Op: op, Name: cand.Name,
						Reason: d.Code + ": " + d.Message,
					})
					pruned = true
					break
				}
			}
			if !pruned {
				kept = append(kept, cand)
			}
		}
		if len(kept) == 0 {
			if len(cands) > 0 {
				return nil, fmt.Errorf("tune: every candidate algorithm for %v on %s violates the resource budget (%d pruned)", op, tp, len(cands))
			}
			return nil, fmt.Errorf("tune: no candidate algorithm for %v on %s", op, tp)
		}
		plans = append(plans, opPlan{op: op, cands: kept})
	}

	// Flatten the grid into independent cells with pre-indexed slots so
	// a parallel run assembles identical output. Each (op, size) block
	// records its cell range for winner extraction.
	type block struct {
		size     int64
		start, n int
	}
	var cells []Cell
	blocks := make([][]block, len(plans))
	for pi, p := range plans {
		for si, size := range opts.Sizes {
			b := block{size: size, start: len(cells)}
			for _, cand := range p.cands {
				for _, proto := range opts.Protocols {
					if !tierCovers(proto, size) {
						continue
					}
					cells = append(cells, Cell{Op: p.op, Bytes: size, Candidate: cand, Protocol: proto})
				}
			}
			b.n = len(cells) - b.start
			if b.n == 0 {
				return nil, fmt.Errorf("tune: no protocol tier covers %d bytes (size %d of the grid)", size, si)
			}
			blocks[pi] = append(blocks[pi], b)
		}
	}
	err := runCells(opts, len(cells), func(i int) error {
		c := &cells[i]
		plan, _, err := opts.Cache.CompileNoted(ctx, be, backend.Request{
			Algo: c.Candidate.Algo, Topo: tp, Protocol: c.Protocol,
		})
		if err != nil {
			return fmt.Errorf("tune: compile %s/%v: %w", c.Candidate.Name, c.Protocol, err)
		}
		res, err := sim.Run(sim.Config{
			Topo: tp, Kernel: plan.Kernel, BufferBytes: c.Bytes, ChunkBytes: opts.ChunkBytes,
		})
		if err != nil {
			return fmt.Errorf("tune: simulate %s/%v at %d: %w", c.Candidate.Name, c.Protocol, c.Bytes, err)
		}
		if opts.Stats != nil {
			opts.Stats.AddSimEvents(res.Events)
		}
		c.Completion = res.Completion
		return nil
	})
	if err != nil {
		return nil, err
	}

	table := &Table{Version: Version, Topology: tp.String(), Seed: opts.Seed}
	for pi := range plans {
		for si, b := range blocks[pi] {
			best := cells[b.start]
			for _, c := range cells[b.start : b.start+b.n] {
				if better(c, best) {
					best = c
				}
			}
			entry := Entry{
				Op:           best.Op.String(),
				Algorithm:    best.Candidate.Name,
				Protocol:     best.Protocol.String(),
				ProbeBytes:   b.size,
				CompletionUS: best.Completion * 1e6,
			}
			if si < len(blocks[pi])-1 {
				entry.MaxBytes = geomMid(b.size, blocks[pi][si+1].size)
			}
			// Certify the winner at its probe point: the completion was
			// just measured, so certification is a pure recomputation —
			// no extra simulation, and the winner's plan is a cache hit.
			plan, _, err := opts.Cache.CompileNoted(ctx, be, backend.Request{
				Algo: best.Candidate.Algo, Topo: tp, Protocol: best.Protocol,
			})
			if err != nil {
				return nil, fmt.Errorf("tune: certify %s/%v: %w", best.Candidate.Name, best.Protocol, err)
			}
			crt, err := cert.FromCompletion(plan.Kernel, tp, cert.Options{
				BufferBytes: b.size, ChunkBytes: opts.ChunkBytes, Budget: budget,
			}, best.Completion)
			if err != nil {
				return nil, fmt.Errorf("tune: certify %s/%v at %d: %w", best.Candidate.Name, best.Protocol, b.size, err)
			}
			if crt.GapPct < 0 {
				return nil, fmt.Errorf("tune: unsound certificate for %s/%v at %d: negative optimality gap %.2f%%",
					best.Candidate.Name, best.Protocol, b.size, crt.GapPct)
			}
			entry.GapPct = crt.GapPct
			entry.CertHash = crt.Hash
			res.Certs = append(res.Certs, crt)
			table.Entries = append(table.Entries, entry)
		}
	}
	if err := table.Validate(); err != nil {
		return nil, fmt.Errorf("tune: emitted an invalid table: %w", err)
	}
	res.Table, res.Cells = table, cells
	return res, nil
}

// tierCovers bounds each tier's swept size range. LL's 64 KiB and
// LL128's 256 KiB chunk caps make them strictly worse — and very
// expensive to simulate — far above their crossover points (4 MiB and
// 16 MiB on the reference fabric), so the sweep stops considering them
// a comfortable margin beyond: real NCCL's tuning tables bound the
// low-latency protocols to small messages the same way.
func tierCovers(p ir.Protocol, size int64) bool {
	switch p {
	case ir.ProtoLL:
		return size <= 32<<20
	case ir.ProtoLL128:
		return size <= 512<<20
	default:
		return true
	}
}

// better orders cells within one (op, size) block: lowest completion
// wins, ties resolve by candidate name then tier so the winner is
// deterministic.
func better(a, b Cell) bool {
	if a.Completion != b.Completion {
		return a.Completion < b.Completion
	}
	if a.Candidate.Name != b.Candidate.Name {
		return a.Candidate.Name < b.Candidate.Name
	}
	return a.Protocol < b.Protocol
}

// geomMid returns the geometric midpoint of two grid sizes — the bucket
// boundary between adjacent probes.
func geomMid(a, b int64) int64 {
	// Grids grow in ×4 steps, so the exact midpoint is a*2; fall back to
	// the average for irregular grids.
	if b/a == 4 && a*4 == b {
		return a * 2
	}
	return (a + b) / 2
}

// candidates gathers every algorithm the sweep will measure for op:
// compatible registered builders first (sorted by name), then the
// sketch search's verified winners at the grid's anchor sizes.
func candidates(tp *topo.Topology, op ir.OpType, opts Options) ([]Candidate, error) {
	var out []Candidate
	seen := map[string]bool{}
	for _, b := range expert.Registry() {
		if b.Op != op {
			continue
		}
		params := []int{tp.NRanks()}
		if b.NParams == 2 {
			params = []int{tp.NNodes, tp.GPUsPerNode}
		}
		algo, err := b.Build(params...)
		if err != nil {
			continue // builder rejects the shape
		}
		out = append(out, Candidate{Name: b.Name, Algo: algo})
		seen[b.Name] = true
	}
	// Anchor the search at the grid's extremes and middle: the
	// latency-bound, crossover and bandwidth-bound regimes.
	anchors := []int64{opts.Sizes[0]}
	if n := len(opts.Sizes); n > 1 {
		anchors = append(anchors, opts.Sizes[n/2], opts.Sizes[n-1])
	}
	for _, anchor := range anchors {
		cands, err := search.Search(tp, op, anchor, search.SearchOptions{
			Seed:       opts.Seed,
			Beam:       opts.Beam,
			Rounds:     opts.Rounds,
			ChunkBytes: opts.ChunkBytes,
		})
		if err != nil {
			// The sketch family does not cover every operator; sweeps
			// over uncovered ops measure registered candidates only.
			continue
		}
		for _, c := range cands {
			if seen[c.Algo.Name] {
				continue
			}
			seen[c.Algo.Name] = true
			out = append(out, Candidate{Name: c.Algo.Name, Algo: c.Algo, Synth: true})
		}
	}
	return out, nil
}

// runCells executes cells 0..n-1 through a worker pool when
// opts.Parallel is set, serially otherwise — the bench harness's
// deterministic-pool contract: results land in pre-indexed slots and
// the lowest-indexed error wins, so parallel output is byte-identical
// to serial.
func runCells(opts Options, n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if !opts.Parallel || workers < 2 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
