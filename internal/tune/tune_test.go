package tune

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/resccl/resccl/internal/analyze/cert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fullSweep runs the full default sweep on the reference 2×8 A100 fabric
// exactly once and shares the result between the golden, acceptance and
// dispatch-optimality tests.
var fullSweep = struct {
	once sync.Once
	res  *Result
	err  error
}{}

func fullSweep2x8(t *testing.T) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	fullSweep.once.Do(func() {
		tp := topo.New(2, 8, topo.A100())
		fullSweep.res, fullSweep.err = Sweep(context.Background(), tp, Options{Parallel: true})
	})
	if fullSweep.err != nil {
		t.Fatalf("full sweep: %v", fullSweep.err)
	}
	return fullSweep.res
}

func TestSweepDeterministicAcrossRuns(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	a, err := Sweep(context.Background(), tp, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), tp, Options{Quick: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.Table.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Table.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("serial and parallel sweeps diverged:\n%s\n---\n%s", aj, bj)
	}
	if a.Table.Hash() != b.Table.Hash() {
		t.Fatal("hashes diverged for identical tables")
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts diverged: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i].Completion != b.Cells[i].Completion {
			t.Fatalf("cell %d completion diverged", i)
		}
	}
}

// TestDispatchIsArgmin checks the table's central promise: every entry
// names the cell with the lowest simulated completion among all
// candidates and tiers measured at that entry's probe size.
func TestDispatchIsArgmin(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	res, err := Sweep(context.Background(), tp, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkArgmin(t, res)
}

func checkArgmin(t *testing.T, res *Result) {
	t.Helper()
	for _, e := range res.Table.Entries {
		op, err := ir.ParseOpType(e.Op)
		if err != nil {
			t.Fatalf("entry op %q: %v", e.Op, err)
		}
		best := -1.0
		for _, c := range res.Cells {
			if c.Op != op || c.Bytes != e.ProbeBytes {
				continue
			}
			if best < 0 || c.Completion < best {
				best = c.Completion
			}
		}
		if best < 0 {
			t.Fatalf("entry %s@%d has no measured cells", e.Op, e.ProbeBytes)
		}
		if got := e.CompletionUS / 1e6; got != best {
			t.Errorf("entry %s@%d dispatches %s at %g s, but the best cell ran in %g s",
				e.Op, e.ProbeBytes, e.Algorithm, got, best)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	res, err := Sweep(context.Background(), tp, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Table.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != res.Table.Hash() {
		t.Fatal("hash changed across a marshal/load round trip")
	}
	data2, err := back.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("bytes changed across a marshal/load round trip")
	}
}

func TestValidateRejectsMalformedTables(t *testing.T) {
	good := func() *Table {
		return &Table{Version: Version, Topology: "2x4", Seed: 1, Entries: []Entry{
			{Op: "Allreduce", MaxBytes: 1 << 20, Algorithm: "ring-allreduce", Protocol: "LL", ProbeBytes: 1 << 19},
			{Op: "Allreduce", Algorithm: "hm-allreduce", Protocol: "Simple", ProbeBytes: 4 << 20},
		}}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("baseline table invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Table)
	}{
		{"future version", func(t *Table) { t.Version = Version + 1 }},
		{"zero version", func(t *Table) { t.Version = 0 }},
		{"no entries", func(t *Table) { t.Entries = nil }},
		{"bad op", func(t *Table) { t.Entries[0].Op = "Gather" }},
		{"empty algorithm", func(t *Table) { t.Entries[0].Algorithm = "" }},
		{"auto protocol", func(t *Table) { t.Entries[0].Protocol = "auto" }},
		{"bad protocol", func(t *Table) { t.Entries[0].Protocol = "LL256" }},
		{"negative bound", func(t *Table) { t.Entries[0].MaxBytes = -1 }},
		{"descending buckets", func(t *Table) {
			t.Entries[1].MaxBytes = 1 << 19
			t.Entries = append(t.Entries, Entry{Op: "Allreduce", Algorithm: "x", Protocol: "LL", ProbeBytes: 1})
		}},
		{"bucket after unbounded", func(t *Table) {
			t.Entries = append(t.Entries, Entry{Op: "Allreduce", MaxBytes: 8 << 20, Algorithm: "x", Protocol: "LL", ProbeBytes: 1})
		}},
	}
	for _, tc := range cases {
		tb := good()
		tc.mut(tb)
		if err := tb.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLookupBuckets(t *testing.T) {
	tb := &Table{Version: Version, Topology: "2x4", Seed: 1, Entries: []Entry{
		{Op: "Allreduce", MaxBytes: 1 << 20, Algorithm: "small", Protocol: "LL", ProbeBytes: 1 << 19},
		{Op: "Allreduce", MaxBytes: 32 << 20, Algorithm: "mid", Protocol: "LL128", ProbeBytes: 4 << 20},
		{Op: "Allreduce", Algorithm: "large", Protocol: "Simple", ProbeBytes: 256 << 20},
		{Op: "Allgather", MaxBytes: 8 << 20, Algorithm: "ag-only", Protocol: "Simple", ProbeBytes: 1 << 20},
	}}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op    ir.OpType
		bytes int64
		want  string
		ok    bool
	}{
		{ir.OpAllReduce, 1, "small", true},
		{ir.OpAllReduce, 1 << 20, "small", true},
		{ir.OpAllReduce, 1<<20 + 1, "mid", true},
		{ir.OpAllReduce, 1 << 30, "large", true},
		{ir.OpAllGather, 4 << 20, "ag-only", true},
		// Beyond every bounded bucket with no unbounded fallback, the
		// last bucket serves.
		{ir.OpAllGather, 64 << 20, "ag-only", true},
		{ir.OpReduceScatter, 1 << 20, "", false},
	}
	for _, tc := range cases {
		e, ok := tb.Lookup(tc.op, tc.bytes)
		if ok != tc.ok || (ok && e.Algorithm != tc.want) {
			t.Errorf("Lookup(%v, %d) = %q/%v, want %q/%v", tc.op, tc.bytes, e.Algorithm, ok, tc.want, tc.ok)
		}
	}
}

func TestHashChangesWithContent(t *testing.T) {
	tb := &Table{Version: Version, Topology: "2x4", Seed: 1, Entries: []Entry{
		{Op: "Allreduce", Algorithm: "ring-allreduce", Protocol: "Simple", ProbeBytes: 1 << 20},
	}}
	h1 := tb.Hash()
	tb.Entries[0].Algorithm = "hm-allreduce"
	if tb.Hash() == h1 {
		t.Fatal("hash insensitive to entry content")
	}
}

// TestGoldenDispatch pins the full 2×8 A100 sweep: the emitted table
// must be byte-identical to testdata/dispatch.golden. Regenerate with
//
//	go test ./internal/tune -run TestGoldenDispatch -update
func TestGoldenDispatch(t *testing.T) {
	res := fullSweep2x8(t)
	got, err := res.Table.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "dispatch.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("dispatch table drifted from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
	checkArgmin(t, res)
}

// TestFullSweepCrossesAlgorithms checks the tuned table exercises the
// size-dependent crossovers the paper motivates: the 2×8 A100 table
// must not dispatch one (algorithm, protocol) pair for every size.
func TestFullSweepCrossesAlgorithms(t *testing.T) {
	res := fullSweep2x8(t)
	byOp := map[string]map[string]bool{}
	for _, e := range res.Table.Entries {
		if byOp[e.Op] == nil {
			byOp[e.Op] = map[string]bool{}
		}
		byOp[e.Op][e.Algorithm+"/"+e.Protocol] = true
	}
	for op, picks := range byOp {
		if len(picks) < 2 {
			t.Errorf("%s: table dispatches a single pick for every size — no crossover found", op)
		}
	}
}

// TestSynthesizedPlanWins is the acceptance gate: on the reference 2×8
// A100 fabric the sketch search must discover at least one plan that
// beats every registered algorithm at some swept size.
func TestSynthesizedPlanWins(t *testing.T) {
	res := fullSweep2x8(t)
	type key struct {
		op    ir.OpType
		bytes int64
	}
	bestSynth := map[key]float64{}
	bestReg := map[key]float64{}
	for _, c := range res.Cells {
		k := key{c.Op, c.Bytes}
		m := bestReg
		if c.Candidate.Synth {
			m = bestSynth
		}
		if v, ok := m[k]; !ok || c.Completion < v {
			m[k] = c.Completion
		}
	}
	for k, synth := range bestSynth {
		if reg, ok := bestReg[k]; ok && synth < reg {
			t.Logf("synthesized plan wins %v at %d bytes: %.3g s vs %.3g s registered",
				k.op, k.bytes, synth, reg)
			return
		}
	}
	t.Fatal("no synthesized plan beat the registered algorithms at any swept size")
}

// TestSweepPrunesBudgetViolators pins the budget gate: under a tight
// SM/channel budget (2 TBs per rank) the all-to-all mesh AllGather —
// which needs a thread block per peer in each direction — must be
// pruned before measurement, the ring (one send + one recv TB per
// rank) must survive, and no pruned candidate may appear in any
// measured cell or dispatch entry.
func TestSweepPrunesBudgetViolators(t *testing.T) {
	tp := topo.New(1, 8, topo.A100())
	res, err := Sweep(context.Background(), tp, Options{
		Ops:       []ir.OpType{ir.OpAllGather},
		Sizes:     []int64{1 << 20},
		Protocols: []ir.Protocol{ir.ProtoSimple},
		Quick:     true,
		Budget:    &cert.Budget{MaxTBsPerRank: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) == 0 {
		t.Fatal("tight budget pruned no candidate")
	}
	pruned := map[string]bool{}
	meshPruned := false
	for _, p := range res.Pruned {
		pruned[p.Name] = true
		if p.Name == "mesh-allgather" {
			meshPruned = true
			if !strings.Contains(p.Reason, cert.CodeBudgetTB) {
				t.Errorf("mesh-allgather pruned for %q, want a %s violation", p.Reason, cert.CodeBudgetTB)
			}
		}
	}
	if !meshPruned {
		t.Errorf("mesh-allgather survived a 2-TB budget; pruned set: %v", res.Pruned)
	}
	if pruned["ring-allgather"] {
		t.Error("ring-allgather (2 TBs per rank) was pruned")
	}
	for _, c := range res.Cells {
		if pruned[c.Candidate.Name] {
			t.Errorf("pruned candidate %s was measured anyway", c.Candidate.Name)
		}
	}
	for _, e := range res.Table.Entries {
		if pruned[e.Algorithm] {
			t.Errorf("pruned candidate %s was dispatched", e.Algorithm)
		}
	}
}

// TestSweepEntriesCarryCertificates checks every dispatch entry's
// certificate: aligned with the table, internally consistent (hash,
// non-negative gap) and matching the entry's pinned gap/hash fields.
func TestSweepEntriesCarryCertificates(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	res, err := Sweep(context.Background(), tp, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Certs) != len(res.Table.Entries) {
		t.Fatalf("%d certificates for %d entries", len(res.Certs), len(res.Table.Entries))
	}
	for i, e := range res.Table.Entries {
		c := res.Certs[i]
		if err := c.Verify(); err != nil {
			t.Errorf("entry %d (%s@%d): %v", i, e.Op, e.ProbeBytes, err)
		}
		if e.GapPct != c.GapPct || e.CertHash != c.Hash {
			t.Errorf("entry %d (%s@%d): gap/hash %.2f%%/%s drifted from certificate %.2f%%/%s",
				i, e.Op, e.ProbeBytes, e.GapPct, e.CertHash, c.GapPct, c.Hash)
		}
		if c.BufferBytes != e.ProbeBytes {
			t.Errorf("entry %d: certified at %d bytes, probe was %d", i, c.BufferBytes, e.ProbeBytes)
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	tp := topo.New(2, 2, topo.A100())
	_, err := Sweep(context.Background(), tp, Options{Ops: []ir.OpType{ir.OpBroadcast}, Quick: true, Protocols: []ir.Protocol{ir.ProtoLL}, Sizes: []int64{1 << 30}})
	if err == nil {
		t.Fatal("size with no covering tier accepted")
	}
	if !strings.Contains(err.Error(), "tier") {
		t.Fatalf("unexpected error: %v", err)
	}
}
