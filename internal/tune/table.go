// Package tune is the per-call autotuner: it sweeps (operator, message
// size, protocol tier) over every registered and synthesized algorithm
// on a topology, scores each point with the deterministic flow
// simulator, and emits a dispatch table the Communicator consults so
// each collective call automatically runs the winning algorithm and
// protocol for its size — the paper's small-buffer crossovers as
// discovered behavior rather than hardcoded selection.
package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// Version is the dispatch-table format version this package writes.
// Version 2 added the per-entry resource-efficiency certificate fields
// (gap_pct, cert_hash); version-1 tables still load, with those fields
// zero.
const Version = 2

// Entry is one dispatch decision: for Op at message sizes up to
// MaxBytes, run Algorithm under Protocol. Entries for one operator form
// ascending size buckets; the last bucket is unbounded (MaxBytes 0).
type Entry struct {
	// Op is the collective operator (ir.OpType spelling, e.g.
	// "Allreduce").
	Op string `json:"op"`
	// MaxBytes is the bucket's inclusive upper bound; 0 means unbounded.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// Algorithm names the winner: an expert-registry key
	// ("hm-allreduce") or an encoded synthesized plan
	// ("synth:sketch/..."). Either rebuilds by name alone.
	Algorithm string `json:"algorithm"`
	// Protocol is the winning transport tier ("LL", "LL128", "Simple").
	Protocol string `json:"protocol"`
	// ProbeBytes is the swept message size that decided this bucket and
	// CompletionUS the winner's simulated wall time there.
	ProbeBytes   int64   `json:"probe_bytes"`
	CompletionUS float64 `json:"completion_us"`
	// GapPct is the winner's certified optimality gap at the probe
	// point — 100·(completion/α–β lower bound − 1) — and CertHash the
	// sha256 of its full resource-efficiency certificate
	// (tune.Result.Certs carries the certificates themselves).
	GapPct   float64 `json:"gap_pct"`
	CertHash string  `json:"cert_hash,omitempty"`
}

// Table is a deterministic dispatch table for one topology. Tables
// serialize to stable JSON: same sweep inputs and seed produce
// byte-identical bytes, so regenerated tables diff cleanly.
type Table struct {
	Version int `json:"version"`
	// Topology is the shape the table was tuned for
	// (topo.Topology.String()); the Communicator refuses tables tuned
	// for a different fabric.
	Topology string  `json:"topology"`
	Seed     int64   `json:"seed"`
	Entries  []Entry `json:"entries"`
}

// MarshalJSON renders the table as indented, field-ordered JSON —
// deterministic bytes suitable for golden files and re-tune diffs.
func (t *Table) MarshalJSON() ([]byte, error) {
	type wire Table
	return json.MarshalIndent((*wire)(t), "", "  ")
}

// Load parses and validates a dispatch table produced by MarshalJSON
// (or written by hand in the same schema).
func Load(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tune: parse dispatch table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks the table's structural invariants.
func (t *Table) Validate() error {
	if t.Version <= 0 || t.Version > Version {
		return fmt.Errorf("tune: unsupported dispatch-table version %d (this build reads ≤ %d)", t.Version, Version)
	}
	if len(t.Entries) == 0 {
		return fmt.Errorf("tune: dispatch table has no entries")
	}
	prev := map[string]*Entry{}
	for i := range t.Entries {
		e := &t.Entries[i]
		if _, err := ir.ParseOpType(e.Op); err != nil {
			return fmt.Errorf("tune: entry %d: %w", i, err)
		}
		if e.Algorithm == "" {
			return fmt.Errorf("tune: entry %d (%s): empty algorithm", i, e.Op)
		}
		if p, err := ir.ParseProtocol(e.Protocol); err != nil {
			return fmt.Errorf("tune: entry %d (%s): %w", i, e.Op, err)
		} else if !p.Forced() {
			return fmt.Errorf("tune: entry %d (%s): protocol must name a concrete tier, got %q", i, e.Op, e.Protocol)
		}
		if e.MaxBytes < 0 {
			return fmt.Errorf("tune: entry %d (%s): negative max_bytes", i, e.Op)
		}
		if e.GapPct < 0 {
			return fmt.Errorf("tune: entry %d (%s): negative optimality gap %.2f%%", i, e.Op, e.GapPct)
		}
		if p := prev[e.Op]; p != nil {
			if p.MaxBytes == 0 {
				return fmt.Errorf("tune: entry %d (%s): bucket after the unbounded bucket", i, e.Op)
			}
			if e.MaxBytes != 0 && e.MaxBytes <= p.MaxBytes {
				return fmt.Errorf("tune: entry %d (%s): buckets not ascending (%d after %d)", i, e.Op, e.MaxBytes, p.MaxBytes)
			}
		}
		prev[e.Op] = e
	}
	return nil
}

// Lookup returns the dispatch decision for (op, bytes), or ok=false
// when the table has no bucket covering the operator.
func (t *Table) Lookup(op ir.OpType, bytes int64) (Entry, bool) {
	var last *Entry
	for i := range t.Entries {
		e := &t.Entries[i]
		got, err := ir.ParseOpType(e.Op)
		if err != nil || got != op {
			continue
		}
		if e.MaxBytes == 0 || bytes <= e.MaxBytes {
			return *e, true
		}
		last = e
	}
	// Sizes beyond the last bounded bucket fall through to it only when
	// no unbounded bucket exists (a hand-trimmed table); normal sweeps
	// always end unbounded.
	if last != nil {
		return *last, true
	}
	return Entry{}, false
}

// Hash returns a hex digest of the table's full content. The
// Communicator folds it into the plan-cache fingerprint so plans chosen
// by different table generations never collide in the cache.
func (t *Table) Hash() string {
	type wire Table
	canonical, err := json.Marshal((*wire)(t))
	if err != nil {
		// A Table of plain values cannot fail to marshal; keep the
		// signature ergonomic.
		panic(err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}
