// Package verify is the semantic postcondition verifier: it replays an
// executed task trace symbolically and proves the collective's
// postcondition, independently of how many replans produced the trace.
//
// Where collective.Verify compares concrete buffer values against the
// healthy operator postcondition, verify tracks *provenance*: each
// (rank, chunk) location carries the set of origin-rank contributions it
// currently holds (a bitmask), ⊥ before anything valid is delivered. A
// recv replaces the destination's set; an rrc merges two sets and fails
// if they overlap — a contribution counted twice — or if either side is
// ⊥ — data consumed before it was delivered. The postcondition then
// checks, per operator, that every surviving rank ends with exactly the
// achievable contribution set (the full set minus contributions declared
// lost to permanent failures), each counted exactly once. This is the
// machine-checked schedule-correctness discipline of SCCL applied to
// traces instead of static plans: it holds for clean runs, degraded
// runs, and any composition of replans.
package verify

import (
	"errors"
	"fmt"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
)

// MaxRanks bounds the communicator size the bitmask representation
// supports.
const MaxRanks = 64

// ErrTooManyRanks is returned when the communicator exceeds MaxRanks.
var ErrTooManyRanks = errors.New("verify: communicator exceeds 64 ranks")

// Set is a set of origin ranks whose contributions a buffer location
// holds, as a bitmask.
type Set uint64

// SetOf builds a set from ranks.
func SetOf(ranks ...ir.Rank) Set {
	var s Set
	for _, r := range ranks {
		s |= 1 << uint(r)
	}
	return s
}

// FullSet is the set of all n ranks.
func FullSet(n int) Set {
	if n >= 64 {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Has reports membership.
func (s Set) Has(r ir.Rank) bool { return s&(1<<uint(r)) != 0 }

// Count returns the cardinality.
func (s Set) Count() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Ranks lists the members in ascending order.
func (s Set) Ranks() []ir.Rank {
	out := make([]ir.Rank, 0, s.Count())
	for r := 0; r < 64; r++ {
		if s.Has(ir.Rank(r)) {
			out = append(out, ir.Rank(r))
		}
	}
	return out
}

// String renders the set for error messages.
func (s Set) String() string { return fmt.Sprintf("%v", s.Ranks()) }

// Holdings is the symbolic data plane: per (rank, chunk), either ⊥
// (invalid, nothing delivered yet) or the set of contributions held.
type Holdings struct {
	Op      ir.OpType
	NRanks  int
	NChunks int
	valid   [][]bool
	sets    [][]Set
}

// Initial builds the symbolic precondition of an operator: every
// location the operator's precondition marks valid holds exactly the
// singleton contribution of its origin rank.
func Initial(op ir.OpType, nRanks, nChunks int) (*Holdings, error) {
	return InitialFrom(op, nRanks, nChunks, nil)
}

// InitialFrom is Initial with an optional precondition override
// (ir.Algorithm.Initial): when non-nil, initial[r][c] decides validity
// instead of the operator default. The origin of a valid location is
// still the operator's: the rank whose contribution that location's
// initial data represents.
func InitialFrom(op ir.OpType, nRanks, nChunks int, initial [][]bool) (*Holdings, error) {
	if nRanks > MaxRanks {
		return nil, fmt.Errorf("%w: %d ranks", ErrTooManyRanks, nRanks)
	}
	if nRanks < 1 || nChunks < 1 {
		return nil, fmt.Errorf("verify: invalid shape %d ranks × %d chunks", nRanks, nChunks)
	}
	h := &Holdings{Op: op, NRanks: nRanks, NChunks: nChunks}
	h.valid = make([][]bool, nRanks)
	h.sets = make([][]Set, nRanks)
	for r := 0; r < nRanks; r++ {
		h.valid[r] = make([]bool, nChunks)
		h.sets[r] = make([]Set, nChunks)
		for c := 0; c < nChunks; c++ {
			holds := dag.InitiallyHolds(op, ir.Rank(r), ir.ChunkID(c), nRanks, nChunks)
			if initial != nil {
				holds = initial[r][c]
			}
			if holds {
				h.valid[r][c] = true
				h.sets[r][c] = SetOf(origin(op, ir.Rank(r), ir.ChunkID(c), nRanks))
			}
		}
	}
	return h, nil
}

// origin returns the rank whose contribution an initially valid copy of
// chunk c at rank r represents.
func origin(op ir.OpType, r ir.Rank, c ir.ChunkID, nRanks int) ir.Rank {
	switch op {
	case ir.OpAllGather:
		return ir.Rank(int(c) % nRanks)
	case ir.OpBroadcast:
		return 0
	case ir.OpAllToAll:
		return ir.Rank(int(c) / nRanks)
	default: // AllReduce / ReduceScatter: each rank starts with its own term
		return r
	}
}

// Valid reports whether (r, c) holds delivered data.
func (h *Holdings) Valid(r ir.Rank, c ir.ChunkID) bool { return h.valid[r][c] }

// Set returns the contribution set at (r, c) (zero when invalid).
func (h *Holdings) Set(r ir.Rank, c ir.ChunkID) Set { return h.sets[r][c] }

// Apply replays one transfer symbolically. It fails on the two ways a
// trace can be semantically corrupt: reading a location nothing has
// delivered, and reducing overlapping contribution sets (double count).
func (h *Holdings) Apply(t ir.Transfer) error {
	if err := t.Validate(h.NRanks, h.NChunks); err != nil {
		return err
	}
	if !h.valid[t.Src][t.Chunk] {
		return fmt.Errorf("verify: %v reads undelivered chunk %d at rank %d", t, t.Chunk, t.Src)
	}
	src := h.sets[t.Src][t.Chunk]
	switch t.Type {
	case ir.CommRecv:
		h.sets[t.Dst][t.Chunk] = src
		h.valid[t.Dst][t.Chunk] = true
	case ir.CommRecvReduceCopy:
		if !h.valid[t.Dst][t.Chunk] {
			return fmt.Errorf("verify: %v reduces into undelivered chunk %d at rank %d", t, t.Chunk, t.Dst)
		}
		dst := h.sets[t.Dst][t.Chunk]
		if overlap := src & dst; overlap != 0 {
			return fmt.Errorf("verify: %v double-counts contributions %v (src holds %v, dst holds %v)",
				t, overlap, src, dst)
		}
		h.sets[t.Dst][t.Chunk] = src | dst
	default:
		return fmt.Errorf("verify: %v has unknown comm type", t)
	}
	return nil
}

// Replay applies a trace in order onto the operator's symbolic
// precondition. The trace must be ordered consistently with the data
// flow that produced it — for compiled plans, ascending (step, chunk,
// src, dst) order (ir.Algorithm.Sorted / rt.Result.Trace).
func Replay(op ir.OpType, nRanks, nChunks int, initial [][]bool, trace []ir.Transfer) (*Holdings, error) {
	h, err := InitialFrom(op, nRanks, nChunks, initial)
	if err != nil {
		return nil, err
	}
	for i, t := range trace {
		if err := h.Apply(t); err != nil {
			return nil, fmt.Errorf("trace entry %d: %w", i, err)
		}
	}
	return h, nil
}

// Expect describes the degraded context a postcondition is judged in.
// The zero value is the healthy case: all ranks surviving, nothing lost.
type Expect struct {
	// Surviving[r] reports whether rank r is still part of the
	// communicator; nil means all ranks survive. Dead ranks' buffers are
	// unconstrained.
	Surviving []bool
	// Lost[c] is the set of contributions to chunk c that permanent
	// failures made unrecoverable (declared by the replanner); nil means
	// nothing was lost. A surviving rank must hold exactly the full set
	// minus Lost[c].
	Lost []Set
}

func (e Expect) surviving(r ir.Rank) bool {
	return e.Surviving == nil || e.Surviving[r]
}

func (e Expect) lost(c ir.ChunkID) Set {
	if e.Lost == nil {
		return 0
	}
	return e.Lost[c]
}

// Postcondition proves the operator's (possibly degraded) postcondition
// over the holdings: every surviving rank that the operator obligates
// holds exactly the achievable contribution set, each contribution
// counted exactly once. Chunks whose achievable set is empty (all
// contributions lost) impose no obligation.
func (h *Holdings) Postcondition(e Expect) error {
	if e.Surviving != nil && len(e.Surviving) != h.NRanks {
		return fmt.Errorf("verify: Surviving has %d entries, want %d", len(e.Surviving), h.NRanks)
	}
	if e.Lost != nil && len(e.Lost) != h.NChunks {
		return fmt.Errorf("verify: Lost has %d entries, want %d", len(e.Lost), h.NChunks)
	}
	full := FullSet(h.NRanks)
	for c := 0; c < h.NChunks; c++ {
		chunk := ir.ChunkID(c)
		lost := e.lost(chunk)
		target := full &^ lost
		if target == 0 {
			continue
		}
		check := func(r ir.Rank, want Set) error {
			if !h.valid[r][c] {
				return fmt.Errorf("verify: %v postcondition: rank %d chunk %d holds no valid data, want contributions %v",
					h.Op, r, c, want)
			}
			if got := h.sets[r][c]; got != want {
				return fmt.Errorf("verify: %v postcondition: rank %d chunk %d holds contributions %v, want %v",
					h.Op, r, c, got, want)
			}
			return nil
		}
		switch h.Op {
		case ir.OpAllReduce:
			for r := 0; r < h.NRanks; r++ {
				if !e.surviving(ir.Rank(r)) {
					continue
				}
				if err := check(ir.Rank(r), target); err != nil {
					return err
				}
			}
		case ir.OpReduceScatter:
			owner := ir.Rank(c % h.NRanks)
			if e.surviving(owner) {
				if err := check(owner, target); err != nil {
					return err
				}
			}
		case ir.OpAllGather, ir.OpBroadcast:
			// One origin per chunk; if it was lost the chunk imposes
			// nothing (target == 0 handled above covers only full loss of
			// reduce chunks — copy chunks have singleton origins).
			o := origin(h.Op, 0, chunk, h.NRanks)
			if lost.Has(o) {
				continue
			}
			for r := 0; r < h.NRanks; r++ {
				if !e.surviving(ir.Rank(r)) {
					continue
				}
				if err := check(ir.Rank(r), SetOf(o)); err != nil {
					return err
				}
			}
		case ir.OpAllToAll:
			src := ir.Rank(c / h.NRanks)
			dst := ir.Rank(c % h.NRanks)
			if lost.Has(src) || !e.surviving(dst) {
				continue
			}
			if err := check(dst, SetOf(src)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("verify: unknown operator %v", h.Op)
		}
	}
	return nil
}

// Check replays a trace and proves the postcondition in one call.
func Check(op ir.OpType, nRanks, nChunks int, initial [][]bool, trace []ir.Transfer, e Expect) (*Holdings, error) {
	h, err := Replay(op, nRanks, nChunks, initial, trace)
	if err != nil {
		return nil, err
	}
	if err := h.Postcondition(e); err != nil {
		return nil, err
	}
	return h, nil
}
