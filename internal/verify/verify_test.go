package verify

import (
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
)

// cleanAlgos builds one expert plan per operator; their sorted transfer
// lists are valid traces of healthy executions.
func cleanAlgos(t *testing.T) []*ir.Algorithm {
	t.Helper()
	var out []*ir.Algorithm
	for _, f := range []func() (*ir.Algorithm, error){
		func() (*ir.Algorithm, error) { return expert.RingAllReduce(4) },
		func() (*ir.Algorithm, error) { return expert.RingAllGather(4) },
		func() (*ir.Algorithm, error) { return expert.RingReduceScatter(4) },
		func() (*ir.Algorithm, error) { return expert.BinomialBroadcast(4) },
		func() (*ir.Algorithm, error) { return expert.DirectAllToAll(4) },
		func() (*ir.Algorithm, error) { return expert.HMAllReduce(2, 2) },
		func() (*ir.Algorithm, error) { return expert.TreeAllReduce(5) },
	} {
		a, err := f()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

// TestCleanTracesPass: every expert plan's trace must replay cleanly and
// satisfy the healthy postcondition.
func TestCleanTracesPass(t *testing.T) {
	for _, a := range cleanAlgos(t) {
		if _, err := Check(a.Op, a.NRanks, a.NChunks, nil, a.Sorted(), Expect{}); err != nil {
			t.Errorf("%s (%v): clean trace rejected: %v", a.Name, a.Op, err)
		}
	}
}

// TestCorruptedTraceFlagged: dropping any reduce step from an AllReduce
// trace must fail the postcondition, and duplicating one must be caught
// as a double count during replay — the verifier cannot be fooled by a
// plausible-looking but wrong trace.
func TestCorruptedTraceFlagged(t *testing.T) {
	a, err := expert.RingAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	trace := a.Sorted()
	rrc := -1
	for i, tr := range trace {
		if tr.Type == ir.CommRecvReduceCopy {
			rrc = i
			break
		}
	}
	if rrc < 0 {
		t.Fatal("ring allreduce trace has no reduce step")
	}

	dropped := append(append([]ir.Transfer(nil), trace[:rrc]...), trace[rrc+1:]...)
	if _, err := Check(a.Op, a.NRanks, a.NChunks, nil, dropped, Expect{}); err == nil {
		t.Fatal("trace missing a reduce step passed verification")
	}

	dup := append(append([]ir.Transfer(nil), trace[:rrc+1]...), trace[rrc:]...)
	if _, err := Replay(a.Op, a.NRanks, a.NChunks, nil, dup); err == nil {
		t.Fatal("trace reducing the same contribution twice passed replay")
	} else if !strings.Contains(err.Error(), "double-counts") {
		t.Fatalf("duplicated reduce flagged with wrong error: %v", err)
	}
}

// TestUndeliveredReadFlagged: a transfer sourcing a location nothing has
// delivered must fail replay immediately.
func TestUndeliveredReadFlagged(t *testing.T) {
	// AllGather: rank 1 does not initially hold chunk 0 (owner is rank 0).
	trace := []ir.Transfer{{Src: 1, Dst: 2, Step: 0, Chunk: 0, Type: ir.CommRecv}}
	if _, err := Replay(ir.OpAllGather, 4, 4, nil, trace); err == nil {
		t.Fatal("read of an undelivered chunk passed replay")
	}
}

// TestDegradedPostcondition: with rank 3's contribution declared lost,
// surviving ranks must hold exactly {0,1,2} — holding the full set or
// missing a survivor's term must both fail.
func TestDegradedPostcondition(t *testing.T) {
	const n = 4
	h, err := Initial(ir.OpAllReduce, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate 0←1, 0←2, then disseminate to 1 and 2; rank 3 is dead.
	trace := []ir.Transfer{
		{Src: 1, Dst: 0, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
		{Src: 2, Dst: 0, Step: 1, Chunk: 0, Type: ir.CommRecvReduceCopy},
		{Src: 0, Dst: 1, Step: 2, Chunk: 0, Type: ir.CommRecv},
		{Src: 0, Dst: 2, Step: 2, Chunk: 0, Type: ir.CommRecv},
	}
	for _, tr := range trace {
		if err := h.Apply(tr); err != nil {
			t.Fatal(err)
		}
	}
	exp := Expect{
		Surviving: []bool{true, true, true, false},
		Lost:      []Set{SetOf(3)},
	}
	if err := h.Postcondition(exp); err != nil {
		t.Fatalf("degraded postcondition rejected a correct degraded run: %v", err)
	}
	// The same holdings must fail the healthy postcondition: rank 3's
	// term is missing everywhere.
	if err := h.Postcondition(Expect{}); err == nil {
		t.Fatal("healthy postcondition accepted a run missing rank 3's contribution")
	}
	// And a survivor's lost term must not be excused.
	if err := h.Postcondition(Expect{Surviving: exp.Surviving, Lost: []Set{SetOf(2, 3)}}); err == nil {
		t.Fatal("postcondition accepted holdings containing a contribution declared lost")
	}
}

// TestInitialOverride: a repair-style precondition matrix replaces the
// operator default validity.
func TestInitialOverride(t *testing.T) {
	initial := [][]bool{
		{true, false},
		{false, false},
	}
	h, err := InitialFrom(ir.OpAllGather, 2, 2, initial)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Valid(0, 0) || h.Valid(0, 1) || h.Valid(1, 0) || h.Valid(1, 1) {
		t.Fatalf("override not honoured: %v %v %v %v",
			h.Valid(0, 0), h.Valid(0, 1), h.Valid(1, 0), h.Valid(1, 1))
	}
	if got := h.Set(0, 0); got != SetOf(0) {
		t.Fatalf("origin of overridden location wrong: %v", got)
	}
}

// TestTooManyRanks: the bitmask representation must refuse communicators
// beyond 64 ranks rather than silently truncate.
func TestTooManyRanks(t *testing.T) {
	if _, err := Initial(ir.OpAllReduce, 65, 1); err == nil {
		t.Fatal("65-rank communicator accepted")
	}
}
