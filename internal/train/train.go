// Package train is the end-to-end distributed training model of §5.5: a
// Megatron-LM-style analytic iteration model for GPT-3 (tensor
// parallelism) and T5 (data parallelism) whose collective communication
// runs through the simulated backends. Throughput differences between
// backends therefore stem purely from communication execution, matching
// the paper's methodology (identical model, parallelism and cluster
// settings across backends).
package train

import (
	"context"
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/trace"
)

// ModelConfig describes one transformer model.
type ModelConfig struct {
	Name string
	// Params is the parameter count.
	Params float64
	// Layers, Hidden and Seq parameterise per-layer activation traffic.
	Layers, Hidden, Seq int
}

// The paper's model zoo (§5.5): T5 220M–3B trained with data
// parallelism, GPT-3 6.7B–45B with tensor parallelism.
var (
	T5_220M = ModelConfig{Name: "T5-220M", Params: 220e6, Layers: 12, Hidden: 768, Seq: 512}
	T5_770M = ModelConfig{Name: "T5-770M", Params: 770e6, Layers: 24, Hidden: 1024, Seq: 512}
	T5_3B   = ModelConfig{Name: "T5-3B", Params: 3e9, Layers: 24, Hidden: 2048, Seq: 512}

	GPT3_6_7B = ModelConfig{Name: "GPT3-6.7B", Params: 6.7e9, Layers: 32, Hidden: 4096, Seq: 2048}
	GPT3_13B  = ModelConfig{Name: "GPT3-13B", Params: 13e9, Layers: 40, Hidden: 5120, Seq: 2048}
	GPT3_22B  = ModelConfig{Name: "GPT3-22B", Params: 22e9, Layers: 48, Hidden: 6144, Seq: 2048}
	GPT3_45B  = ModelConfig{Name: "GPT3-45B", Params: 45e9, Layers: 64, Hidden: 7680, Seq: 2048}
)

// Config describes one training deployment (Table 2's training config).
type Config struct {
	Model ModelConfig
	// GlobalBatch is the per-iteration sample count (16 on two servers,
	// 32 on four, per §5.5).
	GlobalBatch int
	// TP and DP are the tensor- and data-parallel widths; TP·DP must
	// equal NNodes·GPN.
	TP, DP int
	// NNodes and GPN shape the cluster.
	NNodes, GPN int
	// Profile is the hardware profile (default A100).
	Profile *topo.Profile
	// PeakFLOPS and MFU model per-GPU compute (defaults: 312 TFLOPS
	// bf16, 45% utilization). BytesPerElem is the gradient/activation
	// element size (default 2, fp16/bf16).
	PeakFLOPS    float64
	MFU          float64
	BytesPerElem int
	// OverlapFraction is how much of the data-parallel gradient
	// all-reduce Megatron hides behind backward compute (default 0.8 of
	// the backward pass: bucketed DDP overlaps nearly the whole
	// backward).
	OverlapFraction float64
	// SMsPerGPU models the streaming-multiprocessor budget each GPU has
	// (default 108, A100). Communication thread blocks occupy SMs, so
	// compute overlapped with communication runs proportionally slower
	// — the paper's core resource-contention effect (§1).
	SMsPerGPU int
	// FaultRate injects a seeded fault schedule into every simulated
	// collective: FaultRate events (link degradations/outages, NIC
	// flaps, stragglers) land within each collective's clean completion
	// window. 0 disables injection.
	FaultRate int
	// FaultSeed seeds the fault schedules (default 1), making faulted
	// runs reproducible.
	FaultSeed int64
	// Faults, when non-nil, injects this explicit schedule instead of a
	// generated one (ressclsim -fault-spec). Its resource IDs name the
	// full-cluster topology, so it applies to cluster-wide collectives
	// (the data-parallel gradient all-reduce); TP-group collectives run
	// on a single-server sub-topology with its own resource namespace
	// and are not faulted. Mutually exclusive with FaultRate.
	Faults *fault.Schedule
	// Protocol forces a transport protocol tier (LL, LL128, Simple) on
	// every collective the iteration issues (ressclsim -protocol). The
	// zero value keeps the historical behaviour: training buffers are
	// bandwidth-bound, so plans run at Simple-tier cost.
	Protocol ir.Protocol
	// Trace, when non-nil, collects compile-stage spans and the
	// simulated timeline of every collective the iteration issues
	// (ressclsim -trace-out). Faulted collectives record the faulted
	// rerun, the one whose time enters the iteration.
	Trace *obs.Trace
	// Metrics, when non-nil, accumulates simulator counters and
	// per-link busy-time gauges (ressclsim -metrics-json).
	Metrics *obs.Metrics
}

func (c Config) withDefaults() (Config, error) {
	if c.Profile == nil {
		p := topo.A100()
		c.Profile = &p
	}
	if c.PeakFLOPS <= 0 {
		c.PeakFLOPS = 312e12
	}
	if c.MFU <= 0 {
		c.MFU = 0.45
	}
	if c.BytesPerElem <= 0 {
		c.BytesPerElem = 2
	}
	if c.OverlapFraction <= 0 {
		c.OverlapFraction = 0.8
	}
	if c.SMsPerGPU <= 0 {
		c.SMsPerGPU = 108
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 1
	}
	if c.Faults != nil && c.FaultRate > 0 {
		return c, fmt.Errorf("train: Faults and FaultRate are mutually exclusive")
	}
	if c.TP < 1 {
		c.TP = 1
	}
	if c.DP < 1 {
		c.DP = 1
	}
	nGPU := c.NNodes * c.GPN
	if c.TP*c.DP != nGPU {
		return c, fmt.Errorf("train: TP(%d)·DP(%d) != %d GPUs", c.TP, c.DP, nGPU)
	}
	if c.TP > 1 && c.TP != c.GPN {
		return c, fmt.Errorf("train: tensor parallelism (%d) must span exactly one server (%d GPUs)", c.TP, c.GPN)
	}
	if c.GlobalBatch < 1 {
		return c, fmt.Errorf("train: global batch must be positive")
	}
	return c, nil
}

// Result reports one backend's simulated training iteration.
type Result struct {
	Backend   string
	Model     string
	IterTime  float64 // seconds
	Compute   float64
	TPComm    float64 // total exposed tensor-parallel communication
	DPComm    float64 // raw data-parallel all-reduce time
	ExposedDP float64 // DP time left after overlap with backward
	// SMPenalty is the extra compute time caused by communication TBs
	// occupying SMs during the overlapped window (§1's contention).
	SMPenalty float64
	// CommTBs is the per-GPU thread-block footprint of the gradient
	// all-reduce.
	CommTBs int
	// Throughput is samples/second — Fig. 13's metric.
	Throughput float64
}

// sink bundles the observability destinations of one collective, with a
// label prefix naming its role in the iteration ("tp", "dp"). The zero
// value records nothing (obs methods are nil-safe).
type sink struct {
	tr    *obs.Trace
	m     *obs.Metrics
	label string
}

// commTime simulates one AllReduce of bufBytes per rank on tp using the
// backend, returning its completion time and per-GPU TB footprint. A
// positive faultRate reruns the collective under a seeded schedule of
// that many events landing within the clean completion window; a
// non-nil spec reruns it under that explicit schedule instead. When o
// carries a trace, the final (possibly faulted) run records its
// timeline.
func commTime(b backend.Backend, tp *topo.Topology, algo *ir.Algorithm, proto ir.Protocol, bufBytes int64, faultRate int, faultSeed int64, spec *fault.Schedule, o sink) (float64, int, error) {
	plan, err := b.Compile(context.Background(), backend.Request{Algo: algo, Topo: tp, Protocol: proto})
	if err != nil {
		return 0, 0, err
	}
	o.tr.AddStages("compile", "compile/"+o.label+"/"+plan.Algo.Name, plan.Stages)
	// Scale the chunk up for very large gradients (as real libraries
	// do), capping the simulation at 64 micro-batches: training buffers
	// are deep in the bandwidth-bound regime where chunk granularity no
	// longer changes the outcome.
	chunk := int64(1 << 20)
	if c := bufBytes / int64(plan.Algo.NChunks*64); c > chunk {
		chunk = c
	}
	record := o.tr != nil
	res, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: bufBytes,
		ChunkBytes: chunk, RecordTimeline: record})
	if err != nil {
		return 0, 0, err
	}
	o.m.Add("sim.runs", 1)
	o.m.Add("sim.events", int64(res.Events))
	sched := spec
	if sched == nil && faultRate > 0 {
		sched = fault.Generate(tp, fault.Params{
			Seed: faultSeed, N: faultRate,
			Horizon: res.Completion, MeanDuration: res.Completion / 8,
			NTBs: len(plan.Kernel.TBs),
		})
	}
	if sched != nil {
		res, err = sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: bufBytes,
			ChunkBytes: chunk, Faults: sched, RecordTimeline: record})
		if err != nil {
			return 0, 0, err
		}
		o.m.Add("sim.runs", 1)
		o.m.Add("sim.events", int64(res.Events))
	}
	o.m.Add("sim.instances", int64(res.Instances))
	trace.LinkBusyGauges(o.m, tp, res.LinkBusy)
	if record {
		o.tr.AddTimeline(trace.BuildTimeline(o.label+"/"+plan.Backend+"/"+plan.Algo.Name, plan.Kernel, tp, res))
	}
	return res.Completion, plan.Kernel.MaxTBsPerRank(), nil
}

// arAlgo picks the custom AllReduce algorithm for a group topology: the
// hierarchical mesh across servers, the NVSwitch full mesh inside one,
// and a plain ring for cross-server groups of single GPUs. The NCCL
// backend ignores it and runs its own rings.
func arAlgo(nNodes, gpn int) (*ir.Algorithm, error) {
	switch {
	case nNodes > 1 && gpn > 1:
		return expert.HMAllReduce(nNodes, gpn)
	case nNodes == 1:
		return expert.MeshAllReduce(gpn)
	default:
		return expert.RingAllReduce(nNodes)
	}
}

// Simulate runs one training iteration under the given backend.
func Simulate(cfg Config, b backend.Backend) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := cfg.Model
	nGPU := cfg.NNodes * cfg.GPN
	tokens := float64(cfg.GlobalBatch * m.Seq)

	// Compute: 6 FLOPs per parameter per token (forward + backward),
	// spread across all GPUs at the modelled MFU.
	compute := 6 * m.Params * tokens / (float64(nGPU) * cfg.PeakFLOPS * cfg.MFU)

	r := &Result{Backend: b.Name(), Model: m.Name, Compute: compute}

	// Tensor parallelism: per layer, Megatron issues two activation
	// all-reduces in forward and two in backward over the TP group
	// (one server). Activation bytes = batch/DP × seq × hidden × elem.
	if cfg.TP > 1 {
		tpTopo := topo.New(1, cfg.TP, *cfg.Profile)
		algo, err := arAlgo(1, cfg.TP)
		if err != nil {
			return nil, err
		}
		actBytes := int64(cfg.GlobalBatch/cfg.DP) * int64(m.Seq) * int64(m.Hidden) * int64(cfg.BytesPerElem)
		if actBytes < 1<<20 {
			actBytes = 1 << 20
		}
		// Explicit fault specs name full-cluster resources, so the TP
		// sub-topology never sees them (see Config.Faults).
		one, _, err := commTime(b, tpTopo, algo, cfg.Protocol, actBytes, cfg.FaultRate, cfg.FaultSeed, nil,
			sink{tr: cfg.Trace, m: cfg.Metrics, label: "tp"})
		if err != nil {
			return nil, fmt.Errorf("train: TP comm: %w", err)
		}
		r.TPComm = one * float64(4*m.Layers)
	}

	// Data parallelism: one gradient all-reduce of 2·P/TP bytes per
	// iteration over each DP group. With TP>1 the DP groups are
	// cross-server process groups (one GPU per server per local index)
	// that run *concurrently* on the real cluster, contending for the
	// shared NICs — simulated as concurrent sessions.
	if cfg.DP > 1 {
		gradBytes := int64(m.Params * float64(cfg.BytesPerElem) / float64(cfg.TP))
		var dp float64
		var tbs int
		if cfg.TP > 1 {
			dp, tbs, err = dpGroupsTime(b, cfg, gradBytes)
		} else {
			dpTopo := topo.New(cfg.NNodes, cfg.GPN, *cfg.Profile)
			var algo *ir.Algorithm
			algo, err = arAlgo(cfg.NNodes, cfg.GPN)
			if err == nil {
				dp, tbs, err = commTime(b, dpTopo, algo, cfg.Protocol, gradBytes, cfg.FaultRate, cfg.FaultSeed, cfg.Faults,
					sink{tr: cfg.Trace, m: cfg.Metrics, label: "dp"})
			}
		}
		if err != nil {
			return nil, fmt.Errorf("train: DP comm: %w", err)
		}
		r.DPComm = dp
		r.CommTBs = tbs
		// Backward is ≈2/3 of compute; a fraction of it hides the
		// gradient all-reduce — but the hidden window runs compute on
		// fewer SMs, since every communication TB occupies one (§1).
		hidden := cfg.OverlapFraction * (2.0 / 3.0) * compute
		if dp < hidden {
			hidden = dp
		}
		r.ExposedDP = dp - hidden
		tbFrac := float64(tbs) / float64(cfg.SMsPerGPU)
		if tbFrac > 0.9 {
			tbFrac = 0.9
		}
		r.SMPenalty = hidden * tbFrac / (1 - tbFrac)
	}

	r.IterTime = compute + r.TPComm + r.ExposedDP + r.SMPenalty
	r.Throughput = float64(cfg.GlobalBatch) / r.IterTime
	return r, nil
}

// dpGroupsTime simulates the TP-sharded gradient all-reduce: one ring
// per local GPU index across the servers, all groups running
// concurrently on the full cluster so NIC sharing between groups is
// captured by the simulator rather than approximated.
func dpGroupsTime(b backend.Backend, cfg Config, gradBytes int64) (float64, int, error) {
	tp := topo.New(cfg.NNodes, cfg.GPN, *cfg.Profile)
	ring, err := expert.RingAllReduce(cfg.DP)
	if err != nil {
		return 0, 0, err
	}
	chunk := int64(1 << 20)
	if c := gradBytes / int64(ring.NChunks*64); c > chunk {
		chunk = c
	}
	record := cfg.Trace != nil
	var sessions []sim.Session
	var plans []*backend.Plan
	tbs := 0
	for l := 0; l < cfg.TP; l++ {
		ranks := make([]ir.Rank, cfg.DP)
		for node := 0; node < cfg.DP; node++ {
			ranks[node] = ir.Rank(node*cfg.GPN + l)
		}
		grp, err := ir.Embed(ring, ranks, tp.NRanks())
		if err != nil {
			return 0, 0, err
		}
		plan, err := b.Compile(context.Background(), backend.Request{Algo: grp, Topo: tp, Protocol: cfg.Protocol})
		if err != nil {
			return 0, 0, err
		}
		cfg.Trace.AddStages("compile", fmt.Sprintf("compile/dp[%d]/%s", l, plan.Algo.Name), plan.Stages)
		if t := plan.Kernel.MaxTBsPerRank(); t > tbs {
			tbs = t
		}
		plans = append(plans, plan)
		sessions = append(sessions, sim.Session{Kernel: plan.Kernel, BufferBytes: gradBytes, ChunkBytes: chunk})
	}
	mr, err := sim.RunConcurrent(sim.MultiConfig{Topo: tp, Sessions: sessions, RecordTimeline: record})
	if err != nil {
		return 0, 0, err
	}
	cfg.Metrics.Add("sim.runs", 1)
	cfg.Metrics.Add("sim.events", int64(mr.Events))
	sched := cfg.Faults
	if sched == nil && cfg.FaultRate > 0 {
		nTBs := 0
		for _, se := range sessions {
			nTBs += len(se.Kernel.TBs)
		}
		sched = fault.Generate(tp, fault.Params{
			Seed: cfg.FaultSeed, N: cfg.FaultRate,
			Horizon: mr.Completion, MeanDuration: mr.Completion / 8,
			NTBs: nTBs,
		})
	}
	if sched != nil {
		mr, err = sim.RunConcurrent(sim.MultiConfig{Topo: tp, Sessions: sessions, Faults: sched, RecordTimeline: record})
		if err != nil {
			return 0, 0, err
		}
		cfg.Metrics.Add("sim.runs", 1)
		cfg.Metrics.Add("sim.events", int64(mr.Events))
	}
	trace.LinkBusyGauges(cfg.Metrics, tp, mr.LinkBusy)
	for l, res := range mr.Sessions {
		cfg.Metrics.Add("sim.instances", int64(res.Instances))
		if record {
			cfg.Trace.AddTimeline(trace.BuildTimeline(
				fmt.Sprintf("dp[%d]/%s/%s", l, plans[l].Backend, plans[l].Algo.Name),
				plans[l].Kernel, tp, res))
		}
	}
	return mr.Completion, tbs, nil
}

// Compare runs the same configuration under several backends and
// returns results keyed by backend name.
func Compare(cfg Config, backends ...backend.Backend) (map[string]*Result, error) {
	out := make(map[string]*Result, len(backends))
	for _, b := range backends {
		res, err := Simulate(cfg, b)
		if err != nil {
			return nil, fmt.Errorf("train: %s: %w", b.Name(), err)
		}
		out[b.Name()] = res
	}
	return out, nil
}
