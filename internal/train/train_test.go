package train

import (
	"testing"

	"github.com/resccl/resccl/internal/backend"
)

func backends() []backend.Backend {
	return []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()}
}

// T5 models train with pure data parallelism on two servers (§5.5).
func TestT5DataParallel(t *testing.T) {
	for _, m := range []ModelConfig{T5_220M, T5_770M, T5_3B} {
		cfg := Config{Model: m, GlobalBatch: 16, TP: 1, DP: 16, NNodes: 2, GPN: 8}
		res, err := Compare(cfg, backends()...)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for name, r := range res {
			if r.Throughput <= 0 {
				t.Errorf("%s/%s: nonpositive throughput", m.Name, name)
			}
			t.Logf("%s %s: %.2f samples/s (iter %.1f ms, comp %.1f ms, dp %.1f ms exposed %.1f ms)",
				m.Name, name, r.Throughput, r.IterTime*1e3, r.Compute*1e3, r.DPComm*1e3, r.ExposedDP*1e3)
		}
		if res["ResCCL"].Throughput <= res["NCCL"].Throughput {
			t.Errorf("%s: ResCCL (%.2f) not faster than NCCL (%.2f)", m.Name, res["ResCCL"].Throughput, res["NCCL"].Throughput)
		}
		if res["ResCCL"].Throughput <= res["MSCCL"].Throughput {
			t.Errorf("%s: ResCCL (%.2f) not faster than MSCCL (%.2f)", m.Name, res["ResCCL"].Throughput, res["MSCCL"].Throughput)
		}
	}
}

// GPT-3 models use tensor parallelism within servers.
func TestGPT3TensorParallel(t *testing.T) {
	cases := []struct {
		m     ModelConfig
		nodes int
		batch int
	}{
		{GPT3_6_7B, 2, 16},
		{GPT3_13B, 2, 16},
		{GPT3_22B, 4, 32},
		{GPT3_45B, 4, 32},
	}
	for _, c := range cases {
		cfg := Config{Model: c.m, GlobalBatch: c.batch, TP: 8, DP: c.nodes, NNodes: c.nodes, GPN: 8}
		res, err := Compare(cfg, backends()...)
		if err != nil {
			t.Fatalf("%s: %v", c.m.Name, err)
		}
		for name, r := range res {
			t.Logf("%s %s: %.3f samples/s (iter %.0f ms, comp %.0f ms, tp %.0f ms, dpExposed %.0f ms)",
				c.m.Name, name, r.Throughput, r.IterTime*1e3, r.Compute*1e3, r.TPComm*1e3, r.ExposedDP*1e3)
		}
		if res["ResCCL"].Throughput <= res["NCCL"].Throughput {
			t.Errorf("%s: ResCCL not faster than NCCL", c.m.Name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(Config{Model: T5_220M, GlobalBatch: 16, TP: 3, DP: 5, NNodes: 2, GPN: 8}, backend.NewResCCL()); err == nil {
		t.Error("expected TP*DP mismatch error")
	}
	if _, err := Simulate(Config{Model: T5_220M, GlobalBatch: 0, TP: 1, DP: 16, NNodes: 2, GPN: 8}, backend.NewResCCL()); err == nil {
		t.Error("expected batch error")
	}
	if _, err := Simulate(Config{Model: GPT3_13B, GlobalBatch: 16, TP: 4, DP: 4, NNodes: 2, GPN: 8}, backend.NewResCCL()); err == nil {
		t.Error("expected TP-span error")
	}
}

// The SM-contention term (§1): MSCCL's larger TB footprint must cost
// more overlapped-compute time than ResCCL's.
func TestSMContention(t *testing.T) {
	cfg := Config{Model: T5_3B, GlobalBatch: 16, TP: 1, DP: 16, NNodes: 2, GPN: 8}
	res, err := Compare(cfg, backends()...)
	if err != nil {
		t.Fatal(err)
	}
	if res["ResCCL"].CommTBs >= res["MSCCL"].CommTBs {
		t.Errorf("ResCCL TBs (%d) should undercut MSCCL (%d)", res["ResCCL"].CommTBs, res["MSCCL"].CommTBs)
	}
	if res["ResCCL"].SMPenalty >= res["MSCCL"].SMPenalty {
		t.Errorf("ResCCL SM penalty (%g) should undercut MSCCL (%g)",
			res["ResCCL"].SMPenalty, res["MSCCL"].SMPenalty)
	}
	for name, r := range res {
		if r.SMPenalty < 0 {
			t.Errorf("%s: negative SM penalty", name)
		}
	}
}
