package rt

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/topo"
)

// twoNodePlan compiles a 2×2 HM AllReduce on the ResCCL backend — the
// smallest shape where NIC queues are the only inter-node path.
func twoNodePlan(t *testing.T) (*topo.Topology, *backend.Plan) {
	t.Helper()
	tp := topo.New(2, 2, topo.A100())
	algo, err := expert.HMAllReduce(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	return tp, plan
}

func nicOutage(tp *topo.Topology, attempts int) *fault.Schedule {
	eg, in := tp.NICResources(0)
	return &fault.Schedule{Events: []fault.Event{{
		Kind: fault.KindLinkDown, Start: 0, Duration: 1e-3,
		Resources: []topo.ResourceID{eg, in}, Attempts: attempts,
	}}}
}

var fastRecovery = RecoveryPolicy{MaxRetries: 3, Backoff: 10 * time.Microsecond}

// TestRetryThenDegrade: an outage outlasting the retry budget on the
// only inter-node path must surface degrade actions and a degraded
// sub-pipeline, and the collective must still complete and verify.
func TestRetryThenDegrade(t *testing.T) {
	tp, plan := twoNodePlan(t)
	res, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 2,
		Faults:       nicOutage(tp, fastRecovery.MaxRetries+2),
		Recovery:     fastRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("degraded execution produced wrong data: %v", err)
	}
	var retries, degrades, recovered int
	for _, a := range res.Recovery {
		switch a.Kind {
		case ActionRetry:
			retries++
			if a.Attempt < 1 || a.Attempt > fastRecovery.MaxRetries {
				t.Fatalf("retry attempt out of range: %+v", a)
			}
		case ActionDegrade:
			degrades++
		case ActionRecovered:
			recovered++
		}
	}
	if retries == 0 || degrades == 0 {
		t.Fatalf("outage beyond budget produced retries=%d degrades=%d: %+v", retries, degrades, res.Recovery)
	}
	if recovered != 0 {
		t.Fatalf("nothing should recover within budget, got %d recovered", recovered)
	}
	if len(res.DegradedSubs) == 0 {
		t.Fatalf("no sub-pipeline degraded despite exhausted retries")
	}
}

// TestRetrySucceedsWithinBudget: a short outage must be absorbed by the
// retry loop — recovered actions, no degradation.
func TestRetrySucceedsWithinBudget(t *testing.T) {
	tp, plan := twoNodePlan(t)
	res, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 2,
		Faults:       nicOutage(tp, fastRecovery.MaxRetries-1),
		Recovery:     fastRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	var degrades, recovered int
	for _, a := range res.Recovery {
		switch a.Kind {
		case ActionDegrade:
			degrades++
		case ActionRecovered:
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatalf("short outage recorded no recoveries: %+v", res.Recovery)
	}
	if degrades != 0 || len(res.DegradedSubs) != 0 {
		t.Fatalf("short outage degraded the pipeline: %d degrades, subs %v", degrades, res.DegradedSubs)
	}
}

// TestRecoveryLogDeterministic: the sorted action log and degraded-sub
// set must be identical across runs despite goroutine interleaving.
func TestRecoveryLogDeterministic(t *testing.T) {
	tp, plan := twoNodePlan(t)
	cfg := Config{
		Kernel:       plan.Kernel,
		MicroBatches: 3,
		Faults:       nicOutage(tp, fastRecovery.MaxRetries+3),
		Recovery:     fastRecovery,
	}
	a, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("recovery logs differ across runs:\n%+v\nvs\n%+v", a.Recovery, b.Recovery)
	}
	if !reflect.DeepEqual(a.DegradedSubs, b.DegradedSubs) {
		t.Fatalf("degraded subs differ: %v vs %v", a.DegradedSubs, b.DegradedSubs)
	}
}

// TestNoFaultsNoRecovery: without a schedule the log must stay empty
// and execution must be unaffected.
func TestNoFaultsNoRecovery(t *testing.T) {
	_, plan := twoNodePlan(t)
	res, err := Execute(Config{Kernel: plan.Kernel, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(res.Recovery) != 0 || len(res.DegradedSubs) != 0 {
		t.Fatalf("fault-free run produced recovery state: %+v %v", res.Recovery, res.DegradedSubs)
	}
}

// TestFaultOffPath: an outage on a NIC no task crosses (single-node
// plan) must leave the run untouched.
func TestFaultOffPath(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	eg, in := tp.NICResources(0)
	res, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 2,
		Faults: &fault.Schedule{Events: []fault.Event{{
			Kind: fault.KindLinkDown, Start: 0, Duration: 1e-3,
			Resources: []topo.ResourceID{eg, in}, Attempts: 9,
		}}},
		Recovery: fastRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(res.Recovery) != 0 {
		t.Fatalf("outage off every path still produced actions: %+v", res.Recovery)
	}
}
