package rt

// Plan-level recovery: the escalation step past retry and degrade. When
// the fault schedule carries permanent failures (link-out, rank-out),
// no amount of retrying completes a task routed over a dead resource.
// The executor therefore computes, *statically* from the schedule and
// the kernel, which tasks are stranded: every task whose path crosses a
// permanently dead resource or whose endpoint rank died, plus the
// transitive data-dependency closure (a task fed by a stranded task can
// never receive correct data). Epoch 0 runs the complement — a
// consistent, dependency-closed frontier — while stranded sends burn
// their retry budget and record the escalation. Afterwards Execute
// snapshots the frontier's symbolic holdings (internal/verify), carves
// the dead resources out of the topology, re-runs the
// sched → talloc → kernel pipeline on a repair plan covering only the
// remaining work (internal/replan), and resumes execution on the same
// buffers.
//
// Determinism: the stranded set, frontier trace, carved topology and
// repair plan are all pure functions of (kernel, schedule), so the
// ReplanEvent log — and the whole Result modulo wall-clock times — is
// identical across runs, including under the race detector. Goroutine
// interleaving never influences what is abandoned or replanned.
//
// Transient fault windows are deemed expired by the time the replan's
// health sweep completes, so repair epochs run fault-free; permanent
// failures discovered together are carved together, which is why a
// single replan epoch suffices.

import (
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/analyze/cert"
	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/replan"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/talloc"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/verify"
)

// repairChunkBytes sizes the thread-block window estimate of repair
// kernels. The runtime has no payload; only TB merging depends on it.
const repairChunkBytes = 1 << 20

// Typed replan failures, re-exported so rt callers classify outcomes
// without importing the planner.
var (
	ErrPartitioned   = replan.ErrPartitioned
	ErrUnrecoverable = replan.ErrUnrecoverable
)

// ReplanEvent records one plan-level recovery on rt.Result. Every field
// is a pure function of (kernel, fault schedule): repeated runs of the
// same configuration produce identical logs.
type ReplanEvent struct {
	// Epoch numbers the recovery (the initial plan is epoch 0).
	Epoch int
	// TriggerTask is the lowest task directly stranded by a permanent
	// failure.
	TriggerTask ir.TaskID
	// DeadResources and DeadRanks are what the replan carved out,
	// sorted.
	DeadResources []topo.ResourceID
	DeadRanks     []ir.Rank
	// CompletedTasks counts the epoch-0 frontier; AbandonedTasks the
	// stranded tasks the repair plan replaces.
	CompletedTasks int
	AbandonedTasks int
	// RepairTasks counts the transfers of the repair plan (0 when the
	// frontier already satisfied the degraded postcondition).
	RepairTasks int
	// LostChunks lists chunks with contributions the replanner declared
	// unrecoverable.
	LostChunks []ir.ChunkID
}

// permPlan is the static analysis of a schedule's permanent failures
// against one kernel.
type permPlan struct {
	deadRes   []topo.ResourceID
	deadRanks []ir.Rank
	// direct[t]: t's own path or endpoints are dead. blocked[t]: direct
	// or downstream of a direct task via data dependencies.
	direct   []bool
	blocked  []bool
	nBlocked int
	trigger  ir.TaskID
}

// analyzePermanent computes the stranded-task set. Returns nil when the
// schedule has no permanent failures or none of them touches the plan.
func analyzePermanent(k *kernel.Kernel, sched *fault.Schedule) *permPlan {
	deadRes, deadRanks := sched.PermanentFailures()
	if len(deadRes) == 0 && len(deadRanks) == 0 {
		return nil
	}
	g := k.Graph
	resSet := make(map[topo.ResourceID]bool, len(deadRes))
	for _, r := range deadRes {
		resSet[r] = true
	}
	rankSet := make(map[ir.Rank]bool, len(deadRanks))
	for _, r := range deadRanks {
		rankSet[r] = true
	}
	p := &permPlan{
		deadRes: deadRes, deadRanks: deadRanks,
		direct:  make([]bool, len(g.Tasks)),
		blocked: make([]bool, len(g.Tasks)),
		trigger: -1,
	}
	var queue []ir.TaskID
	for t := range g.Tasks {
		task := g.Tasks[t]
		hit := rankSet[task.Src] || rankSet[task.Dst]
		if !hit {
			for _, r := range g.Paths[t].Resources {
				if resSet[r] {
					hit = true
					break
				}
			}
		}
		if hit {
			p.direct[t] = true
			p.blocked[t] = true
			queue = append(queue, ir.TaskID(t))
			if p.trigger < 0 {
				p.trigger = ir.TaskID(t)
			}
		}
	}
	if len(queue) == 0 {
		return nil // permanent failures exist but miss the plan entirely
	}
	// Transitive closure over data dependencies: a dependent of a
	// stranded task can never receive correct input.
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, d := range g.Dependents[t] {
			if !p.blocked[d] {
				p.blocked[d] = true
				queue = append(queue, d)
			}
		}
	}
	for _, b := range p.blocked {
		if b {
			p.nBlocked++
		}
	}
	return p
}

// frontierTrace returns the transfers epoch 0 actually executed, in the
// canonical ascending-TaskID order (= (step, chunk, src, dst) order,
// consistent with the data flow).
func frontierTrace(ex *executor) []ir.Transfer {
	g := ex.k.Graph
	out := make([]ir.Transfer, 0, len(g.Tasks))
	for t := range g.Tasks {
		if ex.blocked != nil && ex.blocked[t] {
			continue
		}
		out = append(out, g.Tasks[t].Transfer)
	}
	return out
}

// compileRepair runs the repair algorithm through the full ResCCL
// pipeline on the carved topology. Repair plans are always compiled with
// the ResCCL pipeline regardless of the original backend: it is the only
// pipeline that consumes an arbitrary topology.
//
// Before the repaired plan is allowed to resume on live buffers it must
// pass the static analyzer's pre-resume gate: deadlock freedom, hazard
// freedom and intact pipeline invariants, proven without executing. A
// replan happens exactly when the system is already degraded — the one
// moment a hung or racing plan would be catastrophic, and the one plan
// the offline test matrix never saw.
// The repair kernel inherits the failed epoch's protocol tier: replans
// happen mid-collective, when the transport tier on every surviving
// rank is already committed.
func compileRepair(algo *ir.Algorithm, tp *topo.Topology, nMB int, proto ir.Protocol) (*kernel.Kernel, error) {
	g, err := dag.Build(algo, tp)
	if err != nil {
		return nil, err
	}
	pipe, err := sched.Schedule(g, sched.PolicyHPDS)
	if err != nil {
		return nil, err
	}
	w := talloc.EstimateWindows(pipe, repairChunkBytes, nMB)
	alloc := talloc.StateBased(pipe, w)
	k, err := kernel.Generate(pipe, alloc)
	if err != nil {
		return nil, err
	}
	k.Protocol = proto
	report, err := analyze.Plan(k, analyze.Options{Checks: analyze.CheckGate})
	if err != nil {
		return nil, fmt.Errorf("rt: replan gate: %w", err)
	}
	if err := report.Err(); err != nil {
		return nil, fmt.Errorf("rt: replan gate rejected the repair plan: %w", err)
	}
	// Resource-efficiency certification of repair plans: a degraded
	// fabric may cost optimality, so the gate never judges the gap —
	// but the budget is a hard line. Budget lints are warnings on the
	// healthy compile path; here they reject: a repair plan that
	// over-subscribes SMs or buffers on an already-degraded system
	// would amplify the incident it is meant to resolve.
	for _, d := range cert.BudgetLints(k, tp, cert.Options{}) {
		if cert.IsBudgetDiag(d.Code) {
			return nil, fmt.Errorf("rt: replan gate rejected the repair plan: %s: %s", d.Code, d.Message)
		}
	}
	return k, nil
}

// replanAndResume performs one plan-level recovery: snapshot, carve,
// replan, recompile, resume on the carried-over buffers. It extends res
// in place.
func replanAndResume(ex *executor, perm *permPlan, res *Result, watchdog time.Duration) error {
	g := ex.k.Graph
	algo := g.Algo
	h, err := verify.Replay(algo.Op, algo.NRanks, algo.NChunks, algo.Initial, res.Trace)
	if err != nil {
		return fmt.Errorf("rt: replan: frontier snapshot is inconsistent: %w", err)
	}
	carved, err := g.Topo.Carve(perm.deadRes, perm.deadRanks)
	if err != nil {
		return fmt.Errorf("rt: replan: %w", err)
	}
	rp, err := replan.Build(algo.Name, h, carved)
	if err != nil {
		return fmt.Errorf("rt: replan: %w", err)
	}
	res.Lost = rp.Lost
	if len(perm.deadRanks) > 0 {
		res.Surviving = make([]bool, algo.NRanks)
		for r := range res.Surviving {
			res.Surviving[r] = carved.RankAlive(ir.Rank(r))
		}
	}
	ev := ReplanEvent{
		Epoch:          1,
		TriggerTask:    perm.trigger,
		DeadResources:  perm.deadRes,
		DeadRanks:      perm.deadRanks,
		CompletedTasks: len(g.Tasks) - perm.nBlocked,
		AbandonedTasks: perm.nBlocked,
		LostChunks:     rp.LostChunks,
	}
	if rp.Algo != nil {
		k2, err := compileRepair(rp.Algo, carved, ex.n, ex.k.Protocol)
		if err != nil {
			return fmt.Errorf("rt: replan: recompile: %w", err)
		}
		ex2 := newExecutor(k2, ex.n)
		ex2.policy = ex.policy
		// Resume on the very buffers epoch 0 left behind: the repair
		// plan's Initial matrix describes exactly their valid locations.
		ex2.states = ex.states
		ex2.setupBarrier()
		if err := ex2.run(watchdog); err != nil {
			return err
		}
		res.States = ex2.states
		res.Instances += int(ex2.completed.Load())
		res.Trace = append(res.Trace, rp.Algo.Sorted()...)
		ev.RepairTasks = len(rp.Algo.Transfers)
	}
	res.ReplanEvents = append(res.ReplanEvents, ev)
	return nil
}

// verifyReplanned checks a replanned result: the full trace must replay
// cleanly, every concrete buffer must equal its symbolic provenance, and
// the degraded postcondition must hold for the surviving ranks.
func verifyReplanned(r *Result) error {
	if len(r.States) == 0 {
		return fmt.Errorf("rt: no states to verify")
	}
	st := r.States[0]
	h, err := verify.Replay(st.Op, st.NRanks, st.NChunks, r.initial, r.Trace)
	if err != nil {
		return fmt.Errorf("rt: trace replay: %w", err)
	}
	for mb, s := range r.States {
		for rk := 0; rk < st.NRanks; rk++ {
			for c := 0; c < st.NChunks; c++ {
				if !h.Valid(ir.Rank(rk), ir.ChunkID(c)) {
					continue
				}
				set := h.Set(ir.Rank(rk), ir.ChunkID(c))
				buf := s.Chunk(ir.Rank(rk), ir.ChunkID(c))
				for e := range buf {
					var want int64
					for _, q := range set.Ranks() {
						want += collective.Contribution(q, ir.ChunkID(c), e)
					}
					if buf[e] != want {
						return fmt.Errorf(
							"rt: micro-batch %d: rank %d chunk %d elem %d holds %d, want %d (contributions %v)",
							mb, rk, c, e, buf[e], want, set)
					}
				}
			}
		}
	}
	return h.Postcondition(verify.Expect{Surviving: r.Surviving, Lost: r.Lost})
}
