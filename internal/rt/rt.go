// Package rt is the concurrent data-plane runtime: it executes a
// compiled kernel with one goroutine per thread block, moving real
// values between rank buffers through rendezvous channels, with
// cross-TB semaphores enforcing data dependencies (the device-memory
// flags MSCCL-style runtimes use) and the per-micro-batch barrier of
// lazy execution.
//
// The runtime complements the timing simulator: where sim predicts
// performance from the cost model, rt proves the plan is deadlock-free
// under real concurrency and that executing it yields the collective's
// correct result. Both consume the same kernel.Kernel.
package rt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/verify"
)

// DefaultWatchdog is how long the executor waits without any instance
// completing before declaring a deadlock.
const DefaultWatchdog = 10 * time.Second

// ErrDeadlock is wrapped into the watchdog's failure so callers (the
// chaos harness in particular) can classify hangs with errors.Is.
var ErrDeadlock = errors.New("rt: deadlock")

// Config parameterises one execution.
type Config struct {
	Kernel *kernel.Kernel
	// MicroBatches is the number of micro-batch invocations per task (n
	// of §3). Every micro-batch is an independent slice of the payload
	// with its own buffer state; running n > 1 exercises the pipelining
	// and ordering machinery.
	MicroBatches int
	// Watchdog overrides the deadlock timeout (default DefaultWatchdog).
	Watchdog time.Duration
	// Faults injects a fault schedule: every down window crossing a
	// task's path makes that task's send attempts fail (recover.go),
	// exercising retry and graceful degradation. Nil injects nothing.
	Faults *fault.Schedule
	// Recovery bounds the retry protocol; zero values take defaults.
	Recovery RecoveryPolicy
}

// Result reports one execution.
type Result struct {
	// States holds the final data plane of every micro-batch, each
	// ready for collective.Verify.
	States []*collective.State
	// Instances is the number of task invocations executed.
	Instances int
	// Elapsed is wall time (host time, not simulated time).
	Elapsed time.Duration
	// Recovery is the canonical (sorted) log of retry/degrade actions
	// taken under the injected fault schedule; empty without faults.
	Recovery []RecoveryAction
	// DegradedSubs lists sub-pipelines that fell back from pipelined to
	// sequential execution, sorted.
	DegradedSubs []int
	// Trace is the ordered list of transfers actually executed across
	// all epochs, in the canonical replay order (ascending TaskID per
	// epoch). It feeds the symbolic verifier.
	Trace []ir.Transfer
	// ReplanEvents logs plan-level recoveries (replan.go); empty unless
	// the schedule carried permanent failures hitting the plan. The log
	// is deterministic across runs.
	ReplanEvents []ReplanEvent
	// Lost[c] is the set of contributions to chunk c declared
	// unrecoverable by the replanner; nil when nothing was lost.
	Lost []verify.Set
	// Surviving[r] reports whether rank r survived; nil when all ranks
	// did.
	Surviving []bool
	// initial is the precondition override the kernel was compiled with
	// (nil for operator defaults), kept for symbolic verification.
	initial [][]bool
}

// Verify checks every micro-batch's final state against the operator's
// postcondition. Clean runs compare concrete buffers directly
// (collective.Verify); replanned runs additionally replay the executed
// trace symbolically, cross-check every buffer against its provenance,
// and prove the degraded postcondition (internal/verify).
func (r *Result) Verify() error {
	if len(r.ReplanEvents) > 0 {
		return verifyReplanned(r)
	}
	for i, st := range r.States {
		if err := collective.Verify(st); err != nil {
			return fmt.Errorf("rt: micro-batch %d: %w", i, err)
		}
	}
	return nil
}

// Execute runs the kernel to completion and returns the final buffers.
// It returns an error if the watchdog fires (a deadlocked or livelocked
// plan) or the configuration is invalid.
func Execute(cfg Config) (*Result, error) {
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("rt: nil kernel")
	}
	n := cfg.MicroBatches
	if n < 1 {
		n = 1
	}
	watchdog := cfg.Watchdog
	if watchdog <= 0 {
		watchdog = DefaultWatchdog
	}
	ex := newExecutor(cfg.Kernel, n)
	ex.policy = cfg.Recovery.withDefaults()
	var perm *permPlan
	if !cfg.Faults.Empty() {
		buildFailCounts(ex, cfg.Faults)
		buildSubPrev(ex)
		// Permanent failures strand part of the plan: epoch 0 runs only
		// the unaffected frontier, then Execute replans the rest.
		if perm = analyzePermanent(cfg.Kernel, cfg.Faults); perm != nil {
			ex.direct = perm.direct
			ex.blocked = perm.blocked
		}
	}
	ex.setupBarrier()
	start := time.Now()
	if err := ex.run(watchdog); err != nil {
		return nil, err
	}
	res := &Result{
		States:       ex.states,
		Instances:    int(ex.completed.Load()),
		Recovery:     ex.sortedRecovery(),
		DegradedSubs: ex.degradedSubs(),
		Trace:        frontierTrace(ex),
		initial:      cfg.Kernel.Graph.Algo.Initial,
	}
	if perm != nil {
		if err := replanAndResume(ex, perm, res, watchdog); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

type executor struct {
	k   *kernel.Kernel
	n   int
	alg *ir.Algorithm

	// states holds one independent data plane per micro-batch.
	states []*collective.State
	// bufMu serialises buffer access per rank. A single mutex per rank
	// keeps it simple; contention is irrelevant for correctness testing.
	bufMu []sync.Mutex

	// rendezvous[t] carries the sender's chunk snapshot to the receiver
	// for each invocation of task t.
	rendezvous []chan []int64
	// done[t][i] is closed when invocation (t, i) completes — the
	// cross-TB semaphore dependents and link successors wait on.
	done [][]chan struct{}

	// barrier state for MBBarrier kernels.
	barrier *mbBarrier

	completed atomic.Int64
	errOnce   sync.Once
	err       error
	abort     chan struct{}

	// Recovery state (recover.go). failN is nil without faults; subPrev
	// is nil when the kernel carries no sub-pipeline structure.
	policy   RecoveryPolicy
	failN    []int
	subPrev  []ir.TaskID
	recMu    sync.Mutex
	recovery []RecoveryAction
	degraded map[int]bool

	// Plan-level recovery state (replan.go), nil without permanent
	// failures. blocked[t]: t is stranded and skipped this epoch;
	// direct[t]: t's own path or endpoints are dead (its send burns the
	// retry budget and escalates, for log continuity).
	blocked []bool
	direct  []bool
}

func newExecutor(k *kernel.Kernel, n int) *executor {
	alg := k.Graph.Algo
	ex := &executor{
		k:          k,
		n:          n,
		alg:        alg,
		states:     make([]*collective.State, n),
		bufMu:      make([]sync.Mutex, alg.NRanks),
		rendezvous: make([]chan []int64, len(k.Graph.Tasks)),
		done:       make([][]chan struct{}, len(k.Graph.Tasks)),
		abort:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ex.states[i] = collective.NewState(alg.Op, alg.NRanks, alg.NChunks)
	}
	for t := range ex.rendezvous {
		ex.rendezvous[t] = make(chan []int64)
		ex.done[t] = make([]chan struct{}, n)
		for i := range ex.done[t] {
			ex.done[t][i] = make(chan struct{})
		}
	}
	return ex
}

// setupBarrier creates the per-micro-batch barrier once the blocked set
// is known: stranded tasks never arrive, so the barrier must expect only
// the live frontier. Call after assigning ex.blocked, before run.
func (ex *executor) setupBarrier() {
	if !ex.k.MBBarrier {
		return
	}
	live := len(ex.k.Graph.Tasks)
	for _, b := range ex.blocked {
		if b {
			live--
		}
	}
	ex.barrier = newMBBarrier(live, ex.n)
}

// fail records the first error and aborts every thread block.
func (ex *executor) fail(err error) {
	ex.errOnce.Do(func() {
		ex.err = err
		close(ex.abort)
	})
}

func (ex *executor) run(watchdog time.Duration) error {
	var wg sync.WaitGroup
	for _, tb := range ex.k.TBs {
		wg.Add(1)
		go func(tb *kernel.TBProgram) {
			defer wg.Done()
			ex.runTB(tb)
		}(tb)
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()

	timer := time.NewTimer(watchdog)
	defer timer.Stop()
	last := int64(0)
	for {
		select {
		case <-finished:
			return ex.err
		case <-timer.C:
			cur := ex.completed.Load()
			if cur == last {
				ex.fail(fmt.Errorf("%w: no progress for %v after %d instances in kernel %q",
					ErrDeadlock, watchdog, cur, ex.k.Name))
				<-finished
				return ex.err
			}
			last = cur
			timer.Reset(watchdog)
		}
	}
}

// runTB executes one thread block's instruction stream.
func (ex *executor) runTB(tb *kernel.TBProgram) {
	total := tb.NInstr(ex.n)
	for k := 0; k < total; k++ {
		slot, mb := tb.Instr(k, ex.n)
		prim := tb.Slots[slot]
		if !ex.execInstr(prim, mb) {
			return // aborted
		}
	}
}

// execInstr runs one primitive invocation; returns false on abort.
func (ex *executor) execInstr(prim ir.Primitive, mb int) bool {
	t := prim.Task.ID
	// Stranded on a permanent failure: skip the invocation entirely —
	// both sides of the rendezvous skip, dependents are blocked too, and
	// the barrier was sized without it. The send side of directly hit
	// tasks burns its retry budget first and records the escalation to
	// plan-level recovery; downstream tasks are abandoned silently.
	if ex.blocked != nil && ex.blocked[t] {
		if prim.Kind == ir.PrimSend && ex.direct[t] {
			return ex.escalateSend(t, mb)
		}
		return true
	}
	// Gate on the per-micro-batch barrier (lazy execution).
	if ex.barrier != nil && !ex.barrier.await(mb, ex.abort) {
		return false
	}
	// Cross-TB semaphores: data dependencies for this micro-batch, and
	// (ResCCL kernels) full drain of the link-window predecessors.
	// Blocked link predecessors never complete — the runtime models no
	// bandwidth, so their window slot is simply free and the await is
	// skipped. Data dependencies need no such guard: dependents of
	// blocked tasks are blocked themselves.
	g := ex.k.Graph
	for _, d := range g.Deps[t] {
		if !ex.await(ex.done[d][mb]) {
			return false
		}
	}
	for _, p := range ex.k.LinkPreds[t] {
		if ex.blocked != nil && ex.blocked[p] {
			continue
		}
		if !ex.await(ex.done[p][ex.n-1]) {
			return false
		}
	}

	switch prim.Kind {
	case ir.PrimSend:
		// Degraded sub-pipelines run sequentially: wait for the previous
		// task of the sub to finish this micro-batch before sending.
		if ex.subPrev != nil && ex.isDegraded(ex.subOf(t)) {
			if prev := ex.subPrev[t]; prev >= 0 && !(ex.blocked != nil && ex.blocked[prev]) {
				if !ex.await(ex.done[prev][mb]) {
					return false
				}
			}
		}
		// Sends crossing a downed link fail, retry with backoff, and
		// degrade the sub-pipeline when the retry budget runs out.
		if ex.failN != nil && ex.failN[t] > 0 {
			if !ex.recoverSend(t, mb) {
				return false
			}
		}
		// Snapshot under the source rank's lock so concurrent writes to
		// other chunks of this rank cannot tear the read.
		ex.bufMu[prim.Rank].Lock()
		data := append([]int64(nil), ex.states[mb].Chunk(prim.Rank, prim.Task.Chunk)...)
		ex.bufMu[prim.Rank].Unlock()
		select {
		case ex.rendezvous[t] <- data:
			return true
		case <-ex.abort:
			return false
		}
	case ir.PrimRecv, ir.PrimRecvReduceCopy:
		var data []int64
		select {
		case data = <-ex.rendezvous[t]:
		case <-ex.abort:
			return false
		}
		ex.bufMu[prim.Rank].Lock()
		dst := ex.states[mb].Chunk(prim.Rank, prim.Task.Chunk)
		if prim.Kind == ir.PrimRecv {
			copy(dst, data)
		} else {
			for e := range dst {
				dst[e] += data[e]
			}
		}
		ex.bufMu[prim.Rank].Unlock()
		// The receive side completes the invocation: signal semaphores
		// and the barrier.
		close(ex.done[t][mb])
		ex.completed.Add(1)
		if ex.barrier != nil {
			ex.barrier.arrive(mb)
		}
		return true
	default:
		ex.fail(fmt.Errorf("rt: unknown primitive kind %v", prim.Kind))
		return false
	}
}

// await blocks on a semaphore or the abort signal.
func (ex *executor) await(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-ex.abort:
		return false
	}
}

// mbBarrier lets no invocation of micro-batch i start before every task
// has completed micro-batch i−1 — the lazy algorithm-level launch
// boundary.
type mbBarrier struct {
	nTasks int
	mu     sync.Mutex
	// remaining[i] counts unfinished tasks of micro-batch i; released[i]
	// is closed when micro-batch i may start.
	remaining []int
	released  []chan struct{}
}

func newMBBarrier(nTasks, n int) *mbBarrier {
	b := &mbBarrier{nTasks: nTasks}
	b.remaining = make([]int, n)
	b.released = make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		b.remaining[i] = nTasks
		b.released[i] = make(chan struct{})
	}
	close(b.released[0]) // the first micro-batch starts immediately
	return b
}

// await blocks until micro-batch mb is released (or abort).
func (b *mbBarrier) await(mb int, abort chan struct{}) bool {
	select {
	case <-b.released[mb]:
		return true
	case <-abort:
		return false
	}
}

// arrive records one completed task invocation of micro-batch mb and
// releases mb+1 when it was the last.
func (b *mbBarrier) arrive(mb int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.remaining[mb]--
	if b.remaining[mb] == 0 && mb+1 < len(b.released) {
		close(b.released[mb+1])
	}
}
