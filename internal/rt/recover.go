package rt

import (
	"sort"
	"time"

	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Recovery: the runtime's response to injected faults, layered on top of
// the deadlock watchdog. A fault.Schedule's link-down and NIC-flap
// events translate into per-instance failed send attempts for every
// task whose path crosses a downed resource (the runtime has no
// simulated clock, so outage windows become attempt counts —
// fault.Event.Attempts). Each affected invocation retries with
// exponential backoff; when the attempts outlast the retry budget the
// executor degrades the task's sub-pipeline from pipelined to
// sequential execution — HPDS's graceful fallback to the sequential
// policy for just the affected sub-pipeline — and proceeds.
//
// Determinism: the failed-attempt counts are a pure function of the
// schedule and the kernel, so the multiset of recovery actions is
// identical across runs; Execute sorts the log canonically so the
// slice is identical too.

// DefaultMaxRetries and DefaultBackoff parameterise RecoveryPolicy zero
// values.
const (
	DefaultMaxRetries = 3
	DefaultBackoff    = time.Millisecond
)

// RecoveryPolicy bounds the executor's retry behaviour.
type RecoveryPolicy struct {
	// MaxRetries is the failed-attempt budget per instance before the
	// executor gives up and degrades (default DefaultMaxRetries).
	MaxRetries int
	// Backoff is the first retry delay; attempt k sleeps Backoff·2^(k−1)
	// (default DefaultBackoff). Tests set tiny values.
	Backoff time.Duration
}

func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultBackoff
	}
	return p
}

// Recovery action kinds.
const (
	// ActionRetry is one failed send attempt followed by a backoff.
	ActionRetry = "retry"
	// ActionRecovered marks an instance whose retries outlasted the
	// outage: the send went through within the budget.
	ActionRecovered = "recovered"
	// ActionDegrade marks an instance that exhausted its retry budget;
	// its sub-pipeline falls back to sequential execution.
	ActionDegrade = "degrade"
	// ActionEscalate marks an instance stranded on a permanently failed
	// resource: retries cannot help, the executor escalates to
	// plan-level recovery (replan.go).
	ActionEscalate = "escalate"
)

// RecoveryAction is one entry of the executor's recovery log.
type RecoveryAction struct {
	// Kind is ActionRetry, ActionRecovered or ActionDegrade.
	Kind string
	// Task and MB identify the affected invocation.
	Task ir.TaskID
	MB   int
	// Attempt numbers retries from 1; for recovered/degrade entries it
	// is the total attempts spent.
	Attempt int
	// Sub is the task's sub-pipeline index, -1 when the kernel has no
	// sub-pipeline structure (baseline backends).
	Sub int
}

// buildFailCounts maps the schedule's down windows onto the kernel:
// failN[t] is how many consecutive send attempts fail for every
// invocation of task t. Degrade windows and stragglers slow the
// simulator but do not fail runtime sends; permanent failures are not
// outages to retry through — they are handled by plan-level recovery
// (replan.go) and excluded here.
//
// Paths are inverted into a resource → tasks index once, so the cost is
// O(Σ|path|) plus O(Σ|event resources|·tasks-per-resource) instead of
// the former O(events × tasks × |path| × |resources|) rescan.
func buildFailCounts(ex *executor, sched *fault.Schedule) {
	g := ex.k.Graph
	resTasks := make(map[topo.ResourceID][]int)
	for t := range g.Tasks {
		for _, r := range g.Paths[t].Resources {
			resTasks[r] = append(resTasks[r], t)
		}
	}
	var failN []int
	hit := make(map[int]bool)
	for _, ev := range sched.Sorted() {
		if ev.Kind != fault.KindLinkDown && ev.Kind != fault.KindNICFlap {
			continue
		}
		n := ev.Attempts
		if n < 1 {
			n = 1
		}
		// An event downing several resources of one path still counts
		// once for that path, as the former any-crossing scan did.
		clear(hit)
		for _, d := range ev.Resources {
			for _, t := range resTasks[d] {
				if hit[t] {
					continue
				}
				hit[t] = true
				if failN == nil {
					failN = make([]int, len(g.Tasks))
				}
				failN[t] += n
			}
		}
	}
	ex.failN = failN
}

// buildSubPrev precomputes, for every task in a sub-pipeline, the task
// of the same sub immediately before it in global pipeline position —
// the predecessor a degraded (sequential) sub waits on. Waiting on a
// lower-position task of the same micro-batch cannot deadlock: TB slot
// order follows global position, so the predecessor's primitives always
// sit at earlier slots.
func buildSubPrev(ex *executor) {
	k := ex.k
	if len(k.TaskSub) != len(k.Graph.Tasks) || len(k.TaskPos) != len(k.TaskSub) {
		return
	}
	prev := make([]ir.TaskID, len(k.TaskSub))
	for t := range prev {
		prev[t] = -1
		if k.TaskSub[t] < 0 {
			continue
		}
		best := -1
		for u := range k.TaskSub {
			if u == t || k.TaskSub[u] != k.TaskSub[t] {
				continue
			}
			if k.TaskPos[u] < k.TaskPos[t] && (best < 0 || k.TaskPos[u] > k.TaskPos[best]) {
				best = u
			}
		}
		if best >= 0 {
			prev[t] = ir.TaskID(best)
		}
	}
	ex.subPrev = prev
}

// subOf returns the task's sub-pipeline index, or -1.
func (ex *executor) subOf(t ir.TaskID) int {
	if int(t) >= len(ex.k.TaskSub) {
		return -1
	}
	return ex.k.TaskSub[t]
}

func (ex *executor) record(a RecoveryAction) {
	ex.recMu.Lock()
	ex.recovery = append(ex.recovery, a)
	ex.recMu.Unlock()
}

func (ex *executor) isDegraded(sub int) bool {
	if sub < 0 {
		return false
	}
	ex.recMu.Lock()
	d := ex.degraded[sub]
	ex.recMu.Unlock()
	return d
}

// recoverSend runs the retry/backoff/degrade protocol for one send
// invocation crossing a downed link. Returns false only on abort.
func (ex *executor) recoverSend(t ir.TaskID, mb int) bool {
	fails := ex.failN[t]
	sub := ex.subOf(t)
	retries := fails
	if retries > ex.policy.MaxRetries {
		retries = ex.policy.MaxRetries
	}
	for a := 1; a <= retries; a++ {
		ex.record(RecoveryAction{Kind: ActionRetry, Task: t, MB: mb, Attempt: a, Sub: sub})
		if d := ex.policy.Backoff << uint(a-1); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ex.abort:
				timer.Stop()
				return false
			}
		}
	}
	if fails > ex.policy.MaxRetries {
		ex.record(RecoveryAction{Kind: ActionDegrade, Task: t, MB: mb, Attempt: retries + 1, Sub: sub})
		if sub >= 0 {
			ex.recMu.Lock()
			if ex.degraded == nil {
				ex.degraded = make(map[int]bool)
			}
			ex.degraded[sub] = true
			ex.recMu.Unlock()
		}
	} else {
		ex.record(RecoveryAction{Kind: ActionRecovered, Task: t, MB: mb, Attempt: retries, Sub: sub})
	}
	return true
}

// escalateSend burns the retry budget for a send stranded on a
// permanently failed resource, then records the escalation to
// plan-level recovery. Unlike recoverSend it never "recovers": no
// number of retries crosses a dead link. Returns false only on abort.
func (ex *executor) escalateSend(t ir.TaskID, mb int) bool {
	sub := ex.subOf(t)
	for a := 1; a <= ex.policy.MaxRetries; a++ {
		ex.record(RecoveryAction{Kind: ActionRetry, Task: t, MB: mb, Attempt: a, Sub: sub})
		if d := ex.policy.Backoff << uint(a-1); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ex.abort:
				timer.Stop()
				return false
			}
		}
	}
	ex.record(RecoveryAction{Kind: ActionEscalate, Task: t, MB: mb, Attempt: ex.policy.MaxRetries + 1, Sub: sub})
	return true
}

// sortedRecovery returns the canonical recovery log: the action multiset
// is deterministic, so sorting by (Task, MB, Attempt, Kind) makes the
// slice reproducible across runs regardless of goroutine interleaving.
func (ex *executor) sortedRecovery() []RecoveryAction {
	ex.recMu.Lock()
	out := append([]RecoveryAction(nil), ex.recovery...)
	ex.recMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.MB != b.MB {
			return a.MB < b.MB
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Kind < b.Kind
	})
	return out
}

// degradedSubs returns the sorted indices of sub-pipelines that fell
// back to sequential execution.
func (ex *executor) degradedSubs() []int {
	ex.recMu.Lock()
	var out []int
	for s := range ex.degraded {
		out = append(out, s)
	}
	ex.recMu.Unlock()
	sort.Ints(out)
	return out
}
