package rt

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

// Every backend's kernel for every algorithm family must execute under
// real concurrency without deadlock and produce the operator's correct
// result in every micro-batch.
func TestAllKernelsExecuteCorrectly(t *testing.T) {
	type c struct {
		name        string
		nNodes, gpn int
		build       func(int, int) (*ir.Algorithm, error)
	}
	cases := []c{
		{"hm-ar", 2, 4, expert.HMAllReduce},
		{"hm-ag", 2, 4, expert.HMAllGather},
		{"hm-rs", 2, 4, expert.HMReduceScatter},
		{"taccl-ar", 2, 4, synth.TACCLAllReduce},
		{"teccl-ag", 2, 4, synth.TECCLAllGather},
		{"mesh-ar", 1, 8, func(_, g int) (*ir.Algorithm, error) { return expert.MeshAllReduce(g) }},
		{"tree-ar", 1, 8, func(_, g int) (*ir.Algorithm, error) { return expert.TreeAllReduce(g) }},
	}
	backends := []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()}
	for _, tc := range cases {
		algo, err := tc.build(tc.nNodes, tc.gpn)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		tp := topo.New(tc.nNodes, tc.gpn, topo.A100())
		for _, b := range backends {
			plan, err := b.Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, b.Name(), err)
			}
			res, err := Execute(Config{Kernel: plan.Kernel, MicroBatches: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, b.Name(), err)
			}
			if err := res.Verify(); err != nil {
				t.Errorf("%s/%s: %v", tc.name, b.Name(), err)
			}
			want := 3 * len(plan.Kernel.Graph.Tasks)
			if res.Instances != want {
				t.Errorf("%s/%s: %d instances, want %d", tc.name, b.Name(), res.Instances, want)
			}
		}
	}
}

func TestSingleMicroBatch(t *testing.T) {
	algo, err := expert.RingAllGather(6)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.New(1, 6, topo.A100())
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(Config{Kernel: plan.Kernel}) // default 1 micro-batch
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 1 {
		t.Fatalf("states = %d, want 1", len(res.States))
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// A kernel whose two thread blocks disagree on rendezvous order must be
// caught by the watchdog rather than hanging the process.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	algo := &ir.Algorithm{
		Name: "crossed", Op: ir.OpAllReduce, NRanks: 2, NChunks: 2,
		Transfers: []ir.Transfer{
			{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecv},
			{Src: 0, Dst: 1, Step: 1, Chunk: 1, Type: ir.CommRecv},
		},
	}
	tp := topo.New(1, 2, topo.A100())
	g, err := dag.Build(algo, tp)
	if err != nil {
		t.Fatal(err)
	}
	send0, recv0 := g.Tasks[0].Primitives()
	send1, recv1 := g.Tasks[1].Primitives()
	k := &kernel.Kernel{
		Name:      "crossed",
		Graph:     g,
		SendTB:    []int{0, 0},
		RecvTB:    []int{1, 1},
		LinkPreds: make([][]ir.TaskID, 2),
		TBs: []*kernel.TBProgram{
			// Sender issues task 0 then 1; receiver expects 1 then 0.
			{ID: 0, Rank: 0, Order: kernel.TaskMajor, Label: "send", Slots: []ir.Primitive{send0, send1}},
			{ID: 1, Rank: 1, Order: kernel.TaskMajor, Label: "recv", Slots: []ir.Primitive{recv1, recv0}},
		},
	}
	_, err = Execute(Config{Kernel: k, MicroBatches: 1, Watchdog: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("crossed rendezvous order should deadlock and be caught")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error should mention deadlock: %v", err)
	}
}

func TestNilKernelRejected(t *testing.T) {
	if _, err := Execute(Config{}); err == nil {
		t.Fatal("nil kernel should be rejected")
	}
}
