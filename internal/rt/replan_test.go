package rt

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// twoNodePerNIC compiles a 2×2 HM AllReduce where every rank owns its
// own NIC, so a single NIC failure strands one rank's inter-node sends
// without partitioning the cluster.
func twoNodePerNIC(t *testing.T) (*topo.Topology, *backend.Plan) {
	t.Helper()
	tp := topo.New(2, 2, topo.A100(), topo.WithNICs(2))
	algo, err := expert.HMAllReduce(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	return tp, plan
}

// TestReplanLinkOut: a permanently dead NIC queue must escalate past the
// retry ladder into exactly one replan, after which the collective
// completes and the full (frontier + repair) trace verifies — nothing
// lost, since all ranks survive and relays exist.
func TestReplanLinkOut(t *testing.T) {
	tp, plan := twoNodePerNIC(t)
	eg, _ := tp.NICResources(0)
	res, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 2,
		Faults:       &fault.Schedule{Events: []fault.Event{fault.LinkOut(eg, 0)}},
		Recovery:     fastRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReplanEvents) != 1 {
		t.Fatalf("permanent link failure produced %d replan events, want 1", len(res.ReplanEvents))
	}
	ev := res.ReplanEvents[0]
	if ev.CompletedTasks+ev.AbandonedTasks != len(plan.Kernel.Graph.Tasks) {
		t.Fatalf("completed %d + abandoned %d ≠ %d tasks", ev.CompletedTasks, ev.AbandonedTasks, len(plan.Kernel.Graph.Tasks))
	}
	if ev.AbandonedTasks == 0 || ev.RepairTasks == 0 {
		t.Fatalf("replan abandoned %d and repaired %d tasks, want both > 0", ev.AbandonedTasks, ev.RepairTasks)
	}
	if len(ev.LostChunks) != 0 || res.Lost != nil && hasLoss(res) {
		t.Fatalf("link-only failure lost chunks: %v", ev.LostChunks)
	}
	var escalates int
	for _, a := range res.Recovery {
		if a.Kind == ActionEscalate {
			escalates++
		}
	}
	if escalates == 0 {
		t.Fatalf("no escalate actions recorded: %+v", res.Recovery)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("replanned run failed verification: %v", err)
	}
}

func hasLoss(res *Result) bool {
	for _, l := range res.Lost {
		if l != 0 {
			return true
		}
	}
	return false
}

// TestReplanRankOut: a dead rank must be carved out; survivors complete
// a degraded AllReduce whose verifier accepts exactly the survivors'
// contributions.
func TestReplanRankOut(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 2,
		Faults:       &fault.Schedule{Events: []fault.Event{fault.RankOut(3, 0)}},
		Recovery:     fastRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReplanEvents) != 1 {
		t.Fatalf("got %d replan events, want 1", len(res.ReplanEvents))
	}
	if got := res.ReplanEvents[0].DeadRanks; !reflect.DeepEqual(got, []ir.Rank{3}) {
		t.Fatalf("dead ranks %v, want [3]", got)
	}
	if want := []bool{true, true, true, false}; !reflect.DeepEqual(res.Surviving, want) {
		t.Fatalf("surviving %v, want %v", res.Surviving, want)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("degraded run failed verification: %v", err)
	}
}

// TestReplanDeterministic: the replan event log and executed trace must
// be identical across runs — plan-level recovery is a pure function of
// (kernel, schedule), untouched by goroutine interleaving.
func TestReplanDeterministic(t *testing.T) {
	tp, plan := twoNodePerNIC(t)
	eg, _ := tp.NICResources(0)
	cfg := Config{
		Kernel:       plan.Kernel,
		MicroBatches: 3,
		Faults:       &fault.Schedule{Events: []fault.Event{fault.LinkOut(eg, 0)}},
		Recovery:     fastRecovery,
	}
	a, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ReplanEvents, b.ReplanEvents) {
		t.Fatalf("replan events differ:\n%+v\nvs\n%+v", a.ReplanEvents, b.ReplanEvents)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("executed traces differ across runs")
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("recovery logs differ:\n%+v\nvs\n%+v", a.Recovery, b.Recovery)
	}
}

// TestPermanentOffPlan: a permanent failure no task crosses must not
// trigger a replan at all.
func TestPermanentOffPlan(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	eg, _ := tp.NICResources(0) // single-node plan never touches NICs
	res, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 2,
		Faults:       &fault.Schedule{Events: []fault.Event{fault.LinkOut(eg, 0)}},
		Recovery:     fastRecovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReplanEvents) != 0 || len(res.Recovery) != 0 {
		t.Fatalf("off-plan permanent failure produced recovery state: %+v %+v", res.ReplanEvents, res.Recovery)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestReplanPartitionedTyped: permanently isolating a node must abort
// with the typed replan.ErrPartitioned, actionable for callers.
func TestReplanPartitionedTyped(t *testing.T) {
	tp, plan := func() (*topo.Topology, *backend.Plan) {
		tp := topo.New(2, 2, topo.A100()) // one shared NIC per node
		algo, err := expert.HMAllReduce(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		p, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			t.Fatal(err)
		}
		return tp, p
	}()
	eg, in := tp.NICResources(0)
	_, err := Execute(Config{
		Kernel:       plan.Kernel,
		MicroBatches: 1,
		Faults: &fault.Schedule{Events: []fault.Event{
			fault.LinkOut(eg, 0), fault.LinkOut(in, 0),
		}},
		Recovery: fastRecovery,
	})
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("isolated node produced %v, want ErrPartitioned", err)
	}
}
