// Package simcost is the closed-form core of the simulator's cost
// model: the protocol-tier parameters (α scaling, wire-byte inflation,
// chunk caps) and the micro-batch geometry derived from a buffer size.
// It is a leaf package — internal/sim builds its event-driven engine on
// top of it, and the static analyses (internal/analyze's budget lints,
// internal/analyze/cert's lower bounds) price plans with the very same
// constants without linking the simulator, which keeps packages like
// internal/backend free of a sim dependency.
package simcost

import "github.com/resccl/resccl/internal/ir"

// ProtocolParams are the cost-model parameters of one protocol tier,
// applied on top of a path's base α/β constants:
//
//   - AlphaFactor scales the per-chunk startup latency α. LL's
//     flag-in-data synchronization skips the handshake round trip that
//     dominates α; LL128 keeps most of that win.
//   - BWFactor is the fraction of wire bandwidth that carries payload.
//     LL spends every second 8-byte word on a flag (1/2); LL128 spends 8
//     bytes per 128-byte line (120/128). The simulator charges it by
//     inflating the wire bytes of each chunk, so link capacities and
//     thread-block capabilities stay expressed in wire bytes and
//     contention between tiers remains physical.
//   - MaxChunkBytes caps the transfer chunk size (0 = uncapped). Real
//     NCCL shrinks its slice granularity under LL/LL128 so flag polling
//     granularity stays fine; here the cap is also what lets the
//     low-latency tiers win at small sizes, since a small buffer split
//     into sub-64KiB chunks amortizes α across micro-batches.
type ProtocolParams struct {
	AlphaFactor   float64
	BWFactor      float64
	MaxChunkBytes int64
}

// Params returns the cost-model parameters of a protocol tier.
// ProtoAuto resolves to ProtoSimple: a kernel whose protocol was never
// set simulates exactly as before the tier dimension existed.
func Params(p ir.Protocol) ProtocolParams {
	switch p {
	case ir.ProtoLL:
		return ProtocolParams{AlphaFactor: 0.2, BWFactor: 0.5, MaxChunkBytes: 64 << 10}
	case ir.ProtoLL128:
		return ProtocolParams{AlphaFactor: 0.4, BWFactor: 120.0 / 128.0, MaxChunkBytes: 256 << 10}
	default: // ProtoSimple, ProtoAuto
		return ProtocolParams{AlphaFactor: 1, BWFactor: 1, MaxChunkBytes: 0}
	}
}

// EffectiveChunk applies the tier's chunk cap to a requested chunk size
// (after substituting the 1 MiB default for non-positive requests, as
// PlanFor does).
func (p ProtocolParams) EffectiveChunk(chunkBytes int64) int64 {
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	if p.MaxChunkBytes > 0 && chunkBytes > p.MaxChunkBytes {
		chunkBytes = p.MaxChunkBytes
	}
	return chunkBytes
}

// Plan describes the derived micro-batch geometry of a run.
type Plan struct {
	// NMicroBatches is n of Eq. 3–5.
	NMicroBatches int
	// ChunkBytes is the effective per-transfer chunk size in bytes.
	ChunkBytes float64
}

// PlanFor derives the micro-batch count and effective chunk size from a
// buffer size: the buffer divides into NChunks chunks per micro-batch;
// n = ⌈S / (chunk·NChunks)⌉ with the chunk shrunk exactly so that
// n·chunk·NChunks == S.
func PlanFor(bufferBytes, chunkBytes int64, nChunks int) Plan {
	if bufferBytes <= 0 {
		bufferBytes = 1
	}
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	perMB := chunkBytes * int64(nChunks)
	n := (bufferBytes + perMB - 1) / perMB
	if n < 1 {
		n = 1
	}
	return Plan{
		NMicroBatches: int(n),
		ChunkBytes:    float64(bufferBytes) / (float64(n) * float64(nChunks)),
	}
}
