package analyze

import (
	"fmt"
	"strings"

	"github.com/resccl/resccl/internal/ir"
)

// The deadlock pass models internal/rt's execution exactly, then asks a
// graph question instead of running goroutines.
//
// At runtime every TB is a sequential thread; each task owns one
// unbuffered rendezvous channel; the recv side closes a per-(task,
// micro-batch) done semaphore that data dependencies (per micro-batch)
// and link-window predecessors (full drain) block on. An unbuffered
// channel is a CSP rendezvous, so a matched send/recv invocation pair
// completes at a single meeting point: the pair is modeled as ONE node
// whose wait-for edges are the union of both sides' blockers —
//
//   - the previous instruction of the send TB and of the recv TB
//     (program order: a TB cannot reach the meeting before finishing
//     everything ahead of it);
//   - for each data dependency d of the task, the rendezvous node that
//     closes done[d][mb] (each side gated at its own micro-batch);
//   - for each link predecessor p, the node that closes p's LAST
//     micro-batch (full drain);
//   - under MBBarrier, a barrier pseudo-node per micro-batch that in
//     turn waits on every task's previous micro-batch.
//
// The plan can hang iff this graph has a cycle (reported with the full
// primitive path) or an invocation waits on a completion that no
// primitive ever signals (reported as a stranded invocation). Analysis
// unrolls AnalysisMB micro-batches: two suffice to expose every
// cross-micro-batch coupling the task-major loop can create, because
// the wait pattern of micro-batch i>1 is isomorphic to i=1.

// wfNode is one node of the wait-for graph: a rendezvous meeting, a
// lone (unmatched) primitive invocation, or a barrier pseudo-node.
type wfNode struct {
	task ir.TaskID // -1 for barrier nodes
	// sendK/recvK are the TB instruction indices of the two sides;
	// -1 when that side is missing (unmatched invocation).
	sendTB, sendK  int
	recvTB, recvK  int
	sendMB, recvMB int
	mb             int // barrier nodes: which micro-batch they release
}

type wfGraph struct {
	v     *planView
	nMB   int
	nodes []wfNode
	// out[n] lists the nodes n waits for.
	out [][]int32
	// byInstr maps (tb, k) → node index.
	byInstr [][]int32
	// doneAt[t*nMB+mb] is the node whose completion closes done[t][mb],
	// -1 when nothing ever signals it.
	doneAt []int32
	// stranded marks nodes with a missing rendezvous side.
	stranded []bool
}

// buildWaitFor constructs the graph; it never fails, whatever the
// kernel's state.
func buildWaitFor(v *planView, nMB int) *wfGraph {
	w := &wfGraph{v: v, nMB: nMB}
	k := v.k

	w.byInstr = make([][]int32, len(k.TBs))
	for tbi, tb := range k.TBs {
		w.byInstr[tbi] = make([]int32, tb.NInstr(nMB))
		for i := range w.byInstr[tbi] {
			w.byInstr[tbi][i] = -1
		}
	}

	// Pair send and recv invocations per task. The channel matches
	// operations in arrival order; with each side's occurrences visited
	// in (TB, slot, micro-batch) canonical order, the j-th send
	// invocation meets the j-th recv invocation. Valid kernels have one
	// occurrence per side, making the pairing exact (j == micro-batch);
	// for mutants with duplicated slots it is one admissible arrival
	// order, which is all a may-deadlock analysis needs.
	w.doneAt = make([]int32, len(v.g.Tasks)*nMB)
	for i := range w.doneAt {
		w.doneAt[i] = -1
	}
	type invocation struct {
		tb, k, mb int
	}
	invocationsOf := func(occs []occ) []invocation {
		var out []invocation
		for _, o := range occs {
			tb := k.TBs[o.tb]
			for ki := 0; ki < tb.NInstr(nMB); ki++ {
				slot, mb := tb.Instr(ki, nMB)
				if slot == o.slot {
					out = append(out, invocation{o.tb, ki, mb})
				}
			}
		}
		return out
	}
	for t := range v.g.Tasks {
		sends := invocationsOf(v.sendOcc[t])
		recvs := invocationsOf(v.recvOcc[t])
		n := len(sends)
		if len(recvs) > n {
			n = len(recvs)
		}
		for j := 0; j < n; j++ {
			node := wfNode{task: ir.TaskID(t), sendTB: -1, sendK: -1, recvTB: -1, recvK: -1}
			if j < len(sends) {
				node.sendTB, node.sendK, node.sendMB = sends[j].tb, sends[j].k, sends[j].mb
			}
			if j < len(recvs) {
				node.recvTB, node.recvK, node.recvMB = recvs[j].tb, recvs[j].k, recvs[j].mb
			}
			idx := int32(len(w.nodes))
			w.nodes = append(w.nodes, node)
			w.stranded = append(w.stranded, node.sendK < 0 || node.recvK < 0)
			if node.sendK >= 0 {
				w.byInstr[node.sendTB][node.sendK] = idx
			}
			if node.recvK >= 0 {
				w.byInstr[node.recvTB][node.recvK] = idx
				// The recv side closes done[t][mb] — but only if the
				// rendezvous actually completes (both sides present).
				if node.sendK >= 0 && node.recvMB < nMB {
					w.doneAt[t*nMB+node.recvMB] = idx
				}
			}
		}
	}

	// Barrier pseudo-nodes for lazy (MBBarrier) kernels: node B(mb)
	// releases micro-batch mb and waits on every task's mb-1.
	barrier := make([]int32, nMB)
	for i := range barrier {
		barrier[i] = -1
	}
	if k.MBBarrier {
		for mb := 1; mb < nMB; mb++ {
			idx := int32(len(w.nodes))
			w.nodes = append(w.nodes, wfNode{task: -1, sendK: -1, recvK: -1, mb: mb})
			w.stranded = append(w.stranded, false)
			barrier[mb] = idx
		}
	}

	w.out = make([][]int32, len(w.nodes))
	addEdge := func(from, to int32) {
		if to >= 0 && to != from {
			w.out[from] = append(w.out[from], to)
		}
	}
	// gates adds the blockers one side of node n observes before its
	// channel operation: program order, data deps, link preds, barrier.
	gates := func(n int32, tb, ki, mb int, t ir.TaskID) {
		if ki > 0 {
			addEdge(n, w.byInstr[tb][ki-1])
		}
		for _, d := range v.g.Deps[t] {
			if int(d) < 0 || int(d) >= len(v.g.Tasks) || mb >= nMB {
				continue
			}
			addEdge(n, w.doneAt[int(d)*nMB+mb])
			if w.doneAt[int(d)*nMB+mb] < 0 {
				w.stranded[n] = true
			}
		}
		if int(t) < len(k.LinkPreds) {
			for _, p := range k.LinkPreds[t] {
				if int(p) < 0 || int(p) >= len(v.g.Tasks) {
					continue
				}
				addEdge(n, w.doneAt[int(p)*nMB+(nMB-1)])
				if w.doneAt[int(p)*nMB+(nMB-1)] < 0 {
					w.stranded[n] = true
				}
			}
		}
		if mb > 0 && mb < nMB && barrier[mb] >= 0 {
			addEdge(n, barrier[mb])
		}
	}
	for i := range w.nodes {
		n := &w.nodes[i]
		if n.task < 0 { // barrier node: waits on every task's mb-1
			for t := range v.g.Tasks {
				addEdge(int32(i), w.doneAt[t*nMB+n.mb-1])
			}
			continue
		}
		if n.sendK >= 0 {
			gates(int32(i), n.sendTB, n.sendK, n.sendMB, n.task)
		}
		if n.recvK >= 0 {
			gates(int32(i), n.recvTB, n.recvK, n.recvMB, n.task)
		}
	}
	return w
}

// describeNode renders one wait-for node for a cycle path.
func (w *wfGraph) describeNode(i int32) string {
	n := w.nodes[i]
	if n.task < 0 {
		return fmt.Sprintf("barrier(mb=%d)", n.mb)
	}
	d := w.v.describeTask(n.task)
	switch {
	case n.sendK >= 0 && n.recvK >= 0:
		return fmt.Sprintf("%s send@TB%d/recv@TB%d mb=%d", d,
			w.v.k.TBs[n.sendTB].ID, w.v.k.TBs[n.recvTB].ID, n.recvMB)
	case n.sendK >= 0:
		return fmt.Sprintf("%s send@TB%d mb=%d (no matching recv)", d, w.v.k.TBs[n.sendTB].ID, n.sendMB)
	default:
		return fmt.Sprintf("%s recv@TB%d mb=%d (no matching send)", d, w.v.k.TBs[n.recvTB].ID, n.recvMB)
	}
}

// checkDeadlock runs the pass; free reports whether the wait-for graph
// is acyclic with no stranded invocations (the precondition for the
// happens-before passes).
func checkDeadlock(v *planView, opts Options) (ds []Diag, free bool) {
	w := buildWaitFor(v, opts.AnalysisMB)
	free = true

	// Stranded invocations: a rendezvous side or semaphore nobody ever
	// signals. The TB hosting it blocks forever.
	for i, n := range w.nodes {
		if !w.stranded[i] || n.task < 0 {
			continue
		}
		free = false
		// One diagnostic per (task, side) suffices; skip later micro-batches.
		if (n.sendK >= 0 && n.sendMB > 0) || (n.recvK >= 0 && n.recvMB > 0) {
			continue
		}
		ds = append(ds, Diag{Code: "deadlock", Severity: SevError,
			Message: fmt.Sprintf("stranded invocation: %s blocks its TB forever", w.describeNode(int32(i))),
			Tasks:   []ir.TaskID{n.task}})
	}

	// Cycle detection: iterative DFS with three colors; on a back edge,
	// the grey stack slice from the target onward is the cycle.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]byte, len(w.nodes))
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	onStack := make([]int32, 0, 64)
	for start := range w.nodes {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{int32(start), 0})
		color[start] = grey
		onStack = append(onStack[:0], int32(start))
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(w.out[f.node]) {
				to := w.out[f.node][f.next]
				f.next++
				switch color[to] {
				case white:
					color[to] = grey
					stack = append(stack, frame{to, 0})
					onStack = append(onStack, to)
				case grey:
					free = false
					// Extract the cycle: suffix of onStack from `to`.
					var cyc []int32
					for j := len(onStack) - 1; j >= 0; j-- {
						cyc = append(cyc, onStack[j])
						if onStack[j] == to {
							break
						}
					}
					// Reverse into wait order and render the path.
					var b strings.Builder
					var tasks []ir.TaskID
					for j := len(cyc) - 1; j >= 0; j-- {
						if b.Len() > 0 {
							b.WriteString(" → ")
						}
						b.WriteString(w.describeNode(cyc[j]))
						if t := w.nodes[cyc[j]].task; t >= 0 {
							tasks = append(tasks, t)
						}
					}
					b.WriteString(" → (back to start)")
					ds = append(ds, Diag{Code: "deadlock", Severity: SevError,
						Message: fmt.Sprintf("wait-for cycle: %s", b.String()),
						Tasks:   tasks})
					// One cycle per DFS tree keeps reports readable; the
					// plan is already condemned.
					color[to] = black
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				onStack = onStack[:len(onStack)-1]
			}
		}
	}
	return ds, free
}
