package cert

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/topo"
)

var update = flag.Bool("update", false, "rewrite testdata/certs.golden")

// buildFor constructs builder b for an nNodes×gpus shape, or reports
// ok=false when the builder rejects the shape (e.g. RHD off a power of
// two) — the same skip convention the tune sweep and CI matrix use.
func buildFor(b expert.Builder, nNodes, gpus int) (*ir.Algorithm, bool) {
	var (
		algo *ir.Algorithm
		err  error
	)
	if b.NParams == 2 {
		algo, err = b.Build(nNodes, gpus)
	} else {
		algo, err = b.Build(nNodes * gpus)
	}
	if err != nil {
		return nil, false
	}
	return algo, true
}

func compileKernel(t *testing.T, algo *ir.Algorithm, tp *topo.Topology, proto ir.Protocol) *kernel.Kernel {
	t.Helper()
	c, err := core.Compile(context.Background(), algo, tp, core.Options{Protocol: proto})
	if err != nil {
		t.Fatalf("compile %q: %v", algo.Name, err)
	}
	return c.Kernel
}

// TestGapNonNegative is the certifier's core soundness property: the
// α–β lower bound never exceeds the simulated completion, for every
// registered algorithm × shape (including a non-power-of-two) × tier.
func TestGapNonNegative(t *testing.T) {
	shapes := []struct{ nodes, gpus int }{{1, 8}, {2, 8}, {3, 5}}
	protos := []ir.Protocol{ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple}
	for _, b := range expert.Registry() {
		for _, sh := range shapes {
			algo, ok := buildFor(b, sh.nodes, sh.gpus)
			if !ok {
				continue
			}
			tp := topo.New(sh.nodes, sh.gpus, topo.A100())
			for _, proto := range protos {
				name := fmt.Sprintf("%s/%dx%d/%s", b.Name, sh.nodes, sh.gpus, proto)
				t.Run(name, func(t *testing.T) {
					k := compileKernel(t, algo, tp, proto)
					c, err := Certify(k, tp, Options{BufferBytes: 4 << 20})
					if err != nil {
						t.Fatalf("certify: %v", err)
					}
					if err := c.Verify(); err != nil {
						t.Fatalf("certificate fails self-verification: %v", err)
					}
					if c.GapPct < 0 {
						t.Fatalf("negative gap %.2f%%: completion %.3fµs below lower bound %.3fµs — bound is not a bound",
							c.GapPct, c.CompletionUS, c.LowerBoundUS)
					}
					if c.LowerBoundUS <= 0 {
						t.Fatalf("degenerate lower bound %.3fµs", c.LowerBoundUS)
					}
				})
			}
		}
	}
}

// TestCertifyScale: the 512-rank hierarchical plan must certify fast —
// the certifier rides every backend compile, so it has a latency
// budget of its own.
func TestCertifyScale(t *testing.T) {
	algo, err := expert.Build("hier-allreduce", 64, 8)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tp := topo.NewRail(64, 8, topo.A100(), 8)
	k := compileKernel(t, algo, tp, ir.ProtoSimple)
	start := time.Now()
	c, err := Certify(k, tp, Options{BufferBytes: 64 << 20})
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("certifying 512 ranks took %v, budget 1s", d)
	}
	if c.GapPct < 0 {
		t.Fatalf("negative gap %.2f%% at 512 ranks", c.GapPct)
	}
}

// TestBudgetLintFires: an over-subscribed plan (every rank talks to
// every peer: 14 TBs/rank on 1×8 mesh) must trip a tight SM budget,
// and a generous budget must stay clean.
func TestBudgetLintFires(t *testing.T) {
	algo, err := expert.Build("mesh-allgather", 8)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tp := topo.New(1, 8, topo.A100())
	k := compileKernel(t, algo, tp, ir.ProtoSimple)

	tight := BudgetLints(k, tp, Options{Budget: Budget{MaxTBsPerRank: 2}})
	found := false
	for _, d := range tight {
		if d.Code == CodeBudgetTB {
			found = true
			if !IsBudgetDiag(d.Code) {
				t.Fatalf("IsBudgetDiag(%q) = false", d.Code)
			}
		}
	}
	if !found {
		t.Fatalf("tight budget produced no %s lint; got %v", CodeBudgetTB, tight)
	}

	if ds := BudgetLints(k, tp, Options{}); len(ds) != 0 {
		t.Fatalf("default budget flagged a sane plan: %v", ds)
	}
}

// TestBudgetMemLint: a buffer budget below what the operator itself
// requires must fire the memory lint (allgather ends holding N× its
// share, so a 1.0× factor on the full buffer is always satisfiable,
// but a tiny synthetic budget is not).
func TestBudgetMemLint(t *testing.T) {
	algo, err := expert.Build("ring-allgather", 8)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tp := topo.New(1, 8, topo.A100())
	k := compileKernel(t, algo, tp, ir.ProtoSimple)
	ds := BudgetLints(k, tp, Options{Budget: Budget{MaxBufferFactor: 0.5}})
	found := false
	for _, d := range ds {
		if d.Code == CodeBudgetMem {
			found = true
		}
	}
	if !found {
		t.Fatalf("0.5× buffer budget produced no %s lint; got %v", CodeBudgetMem, ds)
	}
}

func TestGapLint(t *testing.T) {
	c := &Certificate{GapPct: 80, CompletionUS: 180, LowerBoundUS: 100}
	if ds := GapLint(c, 50); len(ds) != 1 || ds[0].Code != CodeGap {
		t.Fatalf("expected one %s lint, got %v", CodeGap, ds)
	}
	if ds := GapLint(c, 100); ds != nil {
		t.Fatalf("gap below threshold still linted: %v", ds)
	}
	if ds := GapLint(c, 0); ds != nil {
		t.Fatalf("disabled threshold still linted: %v", ds)
	}
}

func TestCertificateHash(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	algo, err := expert.Build("ring-allreduce", 16)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	k := compileKernel(t, algo, tp, ir.ProtoSimple)
	c1, err := Certify(k, tp, Options{})
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	c2, err := Certify(k, tp, Options{})
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	if c1.Hash != c2.Hash {
		t.Fatalf("certification is not reproducible: %s vs %s", c1.Hash, c2.Hash)
	}
	// Tampering with any certified field must break the hash.
	c1.GapPct += 1
	if err := c1.Verify(); err == nil {
		t.Fatal("tampered certificate still verifies")
	}
}

// goldenEntry is one row of testdata/certs.golden.
type goldenEntry struct {
	Algorithm    string  `json:"algorithm"`
	CompletionUS float64 `json:"completion_us"`
	LowerBoundUS float64 `json:"lower_bound_us"`
	GapPct       float64 `json:"gap_pct"`
	Hash         string  `json:"hash"`
}

// TestCertsGolden certifies every registered algorithm on the paper's
// 2×8 A100 testbed at 64 MB / Simple and pins the gaps. Two gates:
//
//   - absolute: completion < 2.5× the α–β lower bound (gap < 150%) for
//     every algorithm — the resource-efficiency acceptance bar;
//   - ratchet: the gap may not regress more than 5% (relative, +0.01pp
//     float slack) against the committed golden. Regenerate
//     deliberately with -update when plans or the cost model change.
func TestCertsGolden(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	var got []goldenEntry
	for _, b := range expert.Registry() {
		algo, ok := buildFor(b, 2, 8)
		if !ok {
			continue
		}
		k := compileKernel(t, algo, tp, ir.ProtoSimple)
		c, err := Certify(k, tp, Options{BufferBytes: 64 << 20})
		if err != nil {
			t.Fatalf("certify %q: %v", b.Name, err)
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("certificate %q: %v", b.Name, err)
		}
		if c.GapPct >= 150 {
			t.Errorf("%s: completion %.3fµs is %.2f× the lower bound %.3fµs (gap %.2f%%, acceptance bar 2.5×)",
				b.Name, c.CompletionUS, c.CompletionUS/c.LowerBoundUS, c.LowerBoundUS, c.GapPct)
		}
		got = append(got, goldenEntry{
			Algorithm:    b.Name,
			CompletionUS: c.CompletionUS,
			LowerBoundUS: c.LowerBoundUS,
			GapPct:       c.GapPct,
			Hash:         c.Hash,
		})
	}

	path := filepath.Join("testdata", "certs.golden")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("rewrote %s with %d certificates", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	wantBy := make(map[string]goldenEntry, len(want))
	for _, e := range want {
		wantBy[e.Algorithm] = e
	}
	for _, g := range got {
		w, ok := wantBy[g.Algorithm]
		if !ok {
			t.Errorf("%s: not in golden (new algorithm? regenerate with -update)", g.Algorithm)
			continue
		}
		if g.GapPct > w.GapPct*1.05+0.01 {
			t.Errorf("%s: certified gap regressed %.2f%% → %.2f%% (>5%% ratchet; regenerate deliberately with -update)",
				g.Algorithm, w.GapPct, g.GapPct)
		}
	}
	if len(got) != len(want) {
		t.Errorf("golden has %d algorithms, run produced %d (regenerate with -update)", len(want), len(got))
	}
}
