// Package cert is the static resource-efficiency certifier: where
// internal/analyze proves a compiled plan *safe* (no deadlock, no
// hazard), cert proves — or quantifies how far the plan is from — the
// paper's actual claim: near-optimal completion time without
// over-subscribing SMs, channels or buffers.
//
// For each compiled plan the certifier computes an α–β lower bound on
// any execution of that plan under the simulator's cost model (and,
// for pristine collectives, on any plan implementing the operator at
// all — an information-theoretic min-cut term), certifies the plan's
// simulated completion against it, and emits a canonical sha256-hashed
// Certificate carrying:
//
//   - the optimality gap (simulated completion vs. the lower bound);
//   - the per-rank peak concurrent thread-block occupancy over the
//     schedule's activity windows, vs. a configurable SM/channel budget;
//   - the per-rank buffer high-water mark (chunk residency), vs. a
//     configurable memory budget;
//   - the dead/idle-resource ratio (thread-block busy time over the
//     activity spans the schedule reserves).
//
// Budget violations become analyze.Diag lints (SevWarn) that ride every
// backend compile, `ressclc -vet -budget/-max-gap`, the tune sweep's
// candidate pruning, the serve analyze endpoint and the replan gate —
// SCCL's cheap per-collective lower bounds and GC3's compiler-resident
// checking, turned into machine-checkable certificates.
package cert

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// Budget is the resource envelope a plan is certified against; see
// analyze.Budget (it lives there so the budget lints can ride every
// backend compile without linking the simulator).
type Budget = analyze.Budget

// DefaultBudget returns the generous default envelope.
func DefaultBudget() Budget { return analyze.DefaultBudget() }

// Options parameterise a certification.
type Options struct {
	// BufferBytes is the per-rank payload S the certificate is issued
	// for (default 64 MiB — the bandwidth-saturated regime the paper's
	// Table 3 reports).
	BufferBytes int64
	// ChunkBytes is the target transfer chunk size (default 1 MiB,
	// matching core.Options; the protocol tier's cap applies on top).
	ChunkBytes int64
	// Budget is the resource envelope; zero-value fields take the
	// DefaultBudget values.
	Budget Budget
}

func (o Options) withDefaults() Options {
	if o.BufferBytes <= 0 {
		o.BufferBytes = 64 << 20
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	o.Budget = o.Budget.Normalize()
	return o
}

// Certificate is the canonical, hashable record of one certification.
// All time fields are microseconds rounded to 3 decimals and ratios are
// rounded, so the canonical JSON (and therefore the hash) is stable
// across runs and platforms given the deterministic simulator.
type Certificate struct {
	// Kernel, Topology and Protocol identify the certified plan.
	Kernel   string `json:"kernel"`
	Topology string `json:"topology"`
	Protocol string `json:"protocol"`
	NRanks   int    `json:"n_ranks"`
	// BufferBytes and ChunkBytes echo the certification point.
	BufferBytes int64 `json:"buffer_bytes"`
	ChunkBytes  int64 `json:"chunk_bytes"`
	// CompletionUS is the plan's simulated completion.
	CompletionUS float64 `json:"completion_us"`
	// LowerBoundUS = max(LatencyLBUS, BandwidthLBUS): no execution of
	// this plan under the cost model can finish sooner.
	LowerBoundUS  float64 `json:"lower_bound_us"`
	LatencyLBUS   float64 `json:"latency_lb_us"`
	BandwidthLBUS float64 `json:"bandwidth_lb_us"`
	// GapPct is 100·(CompletionUS/LowerBoundUS − 1) — the optimality
	// gap. Non-negative by construction of the bound.
	GapPct float64 `json:"gap_pct"`
	// PeakTBsPerRank is the busiest rank's peak count of concurrently
	// active thread blocks over the schedule's activity windows;
	// BudgetTBsPerRank is the budget it was judged against.
	PeakTBsPerRank   int `json:"peak_tbs_per_rank"`
	BudgetTBsPerRank int `json:"budget_tbs_per_rank"`
	// PeakBufferBytes is the busiest rank's buffer high-water mark
	// (distinct resident chunks × chunk size); BudgetBufferBytes the
	// budget (MaxBufferFactor × S).
	PeakBufferBytes   int64 `json:"peak_buffer_bytes"`
	BudgetBufferBytes int64 `json:"budget_buffer_bytes"`
	// IdleRatio is the dead-resource ratio: the fraction of the
	// schedule's reserved thread-block activity spans spent idle
	// (blocked on peers, dependencies or link turns).
	IdleRatio float64 `json:"idle_ratio"`
	// Hash is the sha256 of the certificate's canonical JSON with this
	// field empty.
	Hash string `json:"hash"`
}

// canonical returns the field-ordered JSON the hash covers.
func (c *Certificate) canonical() []byte {
	cc := *c
	cc.Hash = ""
	data, err := json.Marshal(&cc)
	if err != nil {
		// A struct of plain values cannot fail to marshal.
		panic(err)
	}
	return data
}

// ComputeHash returns the sha256 hex digest of the canonical JSON.
func (c *Certificate) ComputeHash() string {
	sum := sha256.Sum256(c.canonical())
	return hex.EncodeToString(sum[:])
}

// Verify checks the certificate's internal consistency: the hash
// matches the canonical content and the bound relations hold.
func (c *Certificate) Verify() error {
	if got := c.ComputeHash(); got != c.Hash {
		return fmt.Errorf("cert: hash mismatch: recorded %s, canonical content hashes to %s", c.Hash, got)
	}
	if c.LowerBoundUS <= 0 {
		return fmt.Errorf("cert: non-positive lower bound %.3fµs", c.LowerBoundUS)
	}
	if c.GapPct < 0 {
		return fmt.Errorf("cert: negative optimality gap %.2f%%", c.GapPct)
	}
	return nil
}

// BudgetOK reports whether the certified plan fits its budget.
func (c *Certificate) BudgetOK() bool {
	return c.PeakTBsPerRank <= c.BudgetTBsPerRank &&
		(c.BudgetBufferBytes <= 0 || c.PeakBufferBytes <= c.BudgetBufferBytes)
}

// MarshalIndent renders the certificate as stable, indented JSON.
func (c *Certificate) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Certify simulates the plan at the certification point and certifies
// the resulting completion. The simulator is deterministic, so the
// certificate (and its hash) is reproducible.
func Certify(k *kernel.Kernel, tp *topo.Topology, opts Options) (*Certificate, error) {
	if k == nil || k.Graph == nil || tp == nil {
		return nil, fmt.Errorf("cert: nil kernel, graph or topology")
	}
	opts = opts.withDefaults()
	res, err := sim.Run(sim.Config{
		Topo: tp, Kernel: k, BufferBytes: opts.BufferBytes, ChunkBytes: opts.ChunkBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("cert: simulate %q: %w", k.Name, err)
	}
	return FromCompletion(k, tp, opts, res.Completion)
}

// FromCompletion certifies an already-measured completion (seconds) —
// the tune sweep's path, which has just simulated every cell and need
// not pay for a second run.
func FromCompletion(k *kernel.Kernel, tp *topo.Topology, opts Options, completion float64) (*Certificate, error) {
	if k == nil || k.Graph == nil || tp == nil {
		return nil, fmt.Errorf("cert: nil kernel, graph or topology")
	}
	opts = opts.withDefaults()
	lb, latLB, bwLB := LowerBound(k, tp, opts.BufferBytes, opts.ChunkBytes)
	if lb <= 0 {
		return nil, fmt.Errorf("cert: degenerate lower bound for %q (empty plan?)", k.Name)
	}
	peakTBs, idle := analyze.PlanOccupancy(k, opts.BufferBytes, opts.ChunkBytes)
	peakBuf := analyze.BufferHighWater(k, opts.BufferBytes)
	gap := 100 * (completion/lb - 1)
	if gap < 0 && gap > -1e-6 {
		gap = 0 // float noise at the bound itself
	}
	c := &Certificate{
		Kernel:            k.Name,
		Topology:          tp.String(),
		Protocol:          k.Protocol.String(),
		NRanks:            k.Graph.Algo.NRanks,
		BufferBytes:       opts.BufferBytes,
		ChunkBytes:        opts.ChunkBytes,
		CompletionUS:      roundTo(completion*1e6, 3),
		LowerBoundUS:      roundTo(lb*1e6, 3),
		LatencyLBUS:       roundTo(latLB*1e6, 3),
		BandwidthLBUS:     roundTo(bwLB*1e6, 3),
		GapPct:            roundTo(gap, 2),
		PeakTBsPerRank:    peakTBs,
		BudgetTBsPerRank:  opts.Budget.MaxTBsPerRank,
		PeakBufferBytes:   peakBuf,
		BudgetBufferBytes: int64(opts.Budget.MaxBufferFactor * float64(opts.BufferBytes)),
		IdleRatio:         roundTo(idle, 4),
	}
	c.Hash = c.ComputeHash()
	return c, nil
}

// roundTo rounds x to d decimal places, canonicalising -0.
func roundTo(x float64, d int) float64 {
	p := math.Pow(10, float64(d))
	r := math.Round(x*p) / p
	if r == 0 {
		return 0
	}
	return r
}
