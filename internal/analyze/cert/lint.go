package cert

import (
	"fmt"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/topo"
)

// The budget lints themselves live in internal/analyze (they are fully
// static and ride every backend compile, which must not link the
// simulator); cert re-exports them so certification call sites deal
// with one package.
const (
	// CodeBudgetTB fires when a rank's peak concurrent thread-block
	// occupancy exceeds the SM/channel budget.
	CodeBudgetTB = analyze.CodeBudgetTB
	// CodeBudgetMem fires when a rank's buffer high-water mark exceeds
	// the memory budget.
	CodeBudgetMem = analyze.CodeBudgetMem
	// CodeGap fires when the certified optimality gap exceeds the
	// configured threshold.
	CodeGap = "cert-gap"
)

// IsBudgetDiag reports whether a diagnostic code is a resource-budget
// violation — the class the replan gate refuses to relax.
func IsBudgetDiag(code string) bool { return analyze.IsBudgetDiag(code) }

// BudgetLints statically checks the plan against the budget — no
// simulation — and returns SevWarn diagnostics for violations. It is
// cheap enough to ride every backend compile.
func BudgetLints(k *kernel.Kernel, tp *topo.Topology, opts Options) []analyze.Diag {
	opts = opts.withDefaults()
	return analyze.BudgetLints(k, tp, opts.BufferBytes, opts.ChunkBytes, opts.Budget)
}

// GapLint checks a certificate against a gap threshold (percent) and
// returns a SevWarn diagnostic when exceeded, or nil. A non-positive
// threshold disables the check.
func GapLint(c *Certificate, maxGapPct float64) []analyze.Diag {
	if c == nil || maxGapPct <= 0 || c.GapPct <= maxGapPct {
		return nil
	}
	return []analyze.Diag{{Code: CodeGap, Severity: analyze.SevWarn,
		Message: fmt.Sprintf(
			"optimality gap %.2f%% exceeds the %.2f%% threshold (completion %.3fµs vs α–β lower bound %.3fµs)",
			c.GapPct, maxGapPct, c.CompletionUS, c.LowerBoundUS)}}
}
