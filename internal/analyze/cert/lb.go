package cert

import (
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/simcost"
	"github.com/resccl/resccl/internal/topo"
)

// LowerBound computes an α–β lower bound (seconds) on the plan's
// completion for a per-rank payload of bufferBytes at a target chunk
// size of chunkBytes (≤0 = the 1 MiB default) under the kernel's
// protocol tier. It returns the combined bound and its latency and
// bandwidth components; the combined bound is their max.
//
// Every term is a true lower bound of the simulator's cost model:
//
//   - Latency / critical-path term: every instance pays α·AlphaFactor
//     startup and moves its chunk at no more than the path's per-TB
//     capability, instance m of a task depends on instance m of each
//     dependency, and one task's instances serialize on its own thread
//     block. So for any dependency chain the completion is at least the
//     chain's sum of per-instance costs plus the remaining n−1
//     instances of the chain's last task — a pipeline-aware
//     critical-path depth. A second serialization floor comes from the
//     thread blocks themselves: a task instance occupies both its send
//     and recv TB from startup to delivery and a TB executes its slots
//     serially, so completion ≥ the busiest TB's summed instance costs
//     (the channel-occupancy floor).
//
//   - Plan link-cut term: for each capacity resource, the total wire
//     bytes of all tasks routed over it divided by its capacity. The
//     max-min allocator never exceeds a resource's capacity, so moving
//     B bytes across a resource of capacity C takes ≥ B/C regardless of
//     schedule. Wire bytes inflate by 1/BWFactor (LL pays 2×, LL128
//     128/120) exactly as the simulator does. This term is plan-aware:
//     it reflects the routing this plan actually chose.
//
//   - Operator min-cut terms: for a pristine collective (no repair
//     precondition, no group restriction) the operator's semantics
//     force a minimum number of chunks across every (entity, rest)
//     cut — per-rank, per-node NIC aggregate, and per-rack spine cut —
//     no matter which plan implements it. These are the SCCL-style
//     information-theoretic floors; they hold for any algorithm, so
//     they also bound this one.
func LowerBound(k *kernel.Kernel, tp *topo.Topology, bufferBytes, chunkBytes int64) (lb, latLB, bwLB float64) {
	if k == nil || k.Graph == nil || tp == nil || bufferBytes <= 0 {
		return 0, 0, 0
	}
	g := k.Graph
	if len(g.Tasks) == 0 {
		return 0, 0, 0
	}
	params := simcost.Params(k.Protocol)

	// Per-task wire payload: PlanFor guarantees n·chunk·NChunks == S,
	// so each task moves exactly S/NChunks payload bytes across its
	// path over the whole run, inflated to wire bytes by the tier.
	nChunks := g.Algo.NChunks
	if nChunks <= 0 {
		nChunks = 1
	}
	perTaskWire := float64(bufferBytes) / float64(nChunks) / params.BWFactor

	plan := simcost.PlanFor(bufferBytes, params.EffectiveChunk(chunkBytes), nChunks)
	latLB = latencyLB(g, params, plan)
	if tb := tbSerialLB(k, params, plan); tb > latLB {
		latLB = tb
	}

	bwLB = planCutLB(g, tp, perTaskWire)
	if op := opCutLB(g.Algo, tp, perTaskWire); op > bwLB {
		bwLB = op
	}

	lb = latLB
	if bwLB > lb {
		lb = bwLB
	}
	return lb, latLB, bwLB
}

// latencyLB is the pipeline-aware critical-path floor: per-instance
// cost per_t = α_t·AlphaFactor + chunkWire/TBCap_t, chained along data
// dependencies (instance m waits for dependencies' instance m, so
// dependent tasks skew by one instance), plus the chain tail's
// remaining n−1 instances serialized on its own thread block.
func latencyLB(g *dag.Graph, params simcost.ProtocolParams, plan simcost.Plan) float64 {
	per := func(t int) float64 {
		p := g.Paths[t]
		v := p.Alpha.Seconds() * params.AlphaFactor
		if p.TBCap > 0 {
			v += plan.ChunkBytes / params.BWFactor / p.TBCap
		}
		return v
	}
	tail := float64(plan.NMicroBatches - 1)
	order, err := g.TopoOrder()
	best := 0.0
	if err != nil {
		// A cyclic graph is rejected elsewhere; fall back to the
		// heaviest single task, still a valid bound.
		for t := range g.Tasks {
			if v := float64(plan.NMicroBatches) * per(t); v > best {
				best = v
			}
		}
		return best
	}
	chain := make([]float64, len(g.Tasks))
	for _, t := range order {
		depth := 0.0
		for _, d := range g.Deps[t] {
			if chain[d] > depth {
				depth = chain[d]
			}
		}
		p := per(int(t))
		chain[t] = depth + p
		if v := chain[t] + tail*p; v > best {
			best = v
		}
	}
	return best
}

// tbSerialLB is the channel-occupancy floor: every instance of a task
// occupies both its send and recv thread block for at least the
// instance cost, and a TB runs its slots serially, so no execution
// finishes before the busiest TB has worked through its load.
func tbSerialLB(k *kernel.Kernel, params simcost.ProtocolParams, plan simcost.Plan) float64 {
	g := k.Graph
	if len(k.SendTB) != len(g.Tasks) || len(k.RecvTB) != len(g.Tasks) || len(k.TBs) == 0 {
		return 0
	}
	n := float64(plan.NMicroBatches)
	busy := make([]float64, len(k.TBs))
	for t := range g.Tasks {
		p := g.Paths[t]
		per := p.Alpha.Seconds() * params.AlphaFactor
		if p.TBCap > 0 {
			per += plan.ChunkBytes / params.BWFactor / p.TBCap
		}
		if tb := k.SendTB[t]; tb >= 0 && tb < len(busy) {
			busy[tb] += n * per
		}
		if tb := k.RecvTB[t]; tb >= 0 && tb < len(busy) {
			busy[tb] += n * per
		}
	}
	best := 0.0
	for _, b := range busy {
		if b > best {
			best = b
		}
	}
	return best
}

// planCutLB is the max over capacity resources of assigned wire bytes
// over capacity.
func planCutLB(g *dag.Graph, tp *topo.Topology, perTaskWire float64) float64 {
	load := make(map[topo.ResourceID]float64)
	for t := range g.Tasks {
		for _, res := range g.Paths[t].Resources {
			load[res] += perTaskWire
		}
	}
	best := 0.0
	for res, b := range load {
		if !tp.ResourceAlive(res) {
			continue
		}
		c := tp.Capacity(res)
		if c <= 0 {
			continue
		}
		if v := b / c; v > best {
			best = v
		}
	}
	return best
}

// opCutLB is the max over (entity, rest) cuts of the operator's forced
// chunk traffic over the cut's aggregate capacity. Zero when the floors
// don't apply: repair plans (explicit Initial precondition), group
// collectives, carved topologies (participation changed), or N < 2.
func opCutLB(a *ir.Algorithm, tp *topo.Topology, perChunkWire float64) float64 {
	if a.Initial != nil || a.Group != nil || tp.Carved() {
		return 0
	}
	n := a.NRanks
	if n < 2 || a.NChunks <= 0 {
		return 0
	}
	best := 0.0
	consider := func(inChunks, outChunks, capIn, capOut float64) {
		if capIn > 0 {
			if v := inChunks * perChunkWire / capIn; v > best {
				best = v
			}
		}
		if capOut > 0 {
			if v := outChunks * perChunkWire / capOut; v > best {
				best = v
			}
		}
	}

	// Per-rank cut: a rank's traffic enters via its NVSwitch ingress
	// port and (inter-node) its NIC ingress queue; the sum of the two
	// capacities over-estimates any achievable ingress rate, which
	// keeps the bound sound.
	rankCap := 0.0
	if tp.GPUsPerNode > 1 {
		rankCap += tp.NVLinkBW
	}
	if tp.NNodes > 1 {
		rankCap += tp.NICBW
	}
	if rankCap > 0 {
		for _, root := range []bool{true, false} {
			in, out := opFloors(a.Op, a.NChunks, n, 1, root)
			consider(in, out, rankCap, rankCap)
		}
	}

	// Per-node cut: all of a node's external traffic crosses its NIC
	// queues (NVSwitch ports are intra-node only).
	if tp.NNodes > 1 {
		nodeCap := float64(tp.NICsPerNode) * tp.NICBW
		m := tp.GPUsPerNode
		for _, root := range []bool{true, false} {
			in, out := opFloors(a.Op, a.NChunks, n, m, root)
			consider(in, out, nodeCap, nodeCap)
		}
	}

	// Per-rack cut: cross-rack traffic crosses the rack's spine up/down
	// links — except on rail-optimized fabrics, where same-rail traffic
	// rides the rail switch past the spines, so the cut doesn't bound
	// there.
	if tp.NSpines > 0 && tp.NRacks() > 1 && !tp.RailOptimized {
		rackCap := float64(tp.NSpines) * tp.SpineBW
		m := tp.ServersPerRack * tp.GPUsPerNode
		if m < n {
			for _, root := range []bool{true, false} {
				in, out := opFloors(a.Op, a.NChunks, n, m, root)
				consider(in, out, rackCap, rackCap)
			}
		}
	}
	return best
}

// opFloors returns the minimum chunk traffic into and out of an entity
// of m ranks (out of n) that any plan implementing op must move. root
// selects the entity containing rank 0 (Broadcast's root).
func opFloors(op ir.OpType, nChunks, n, m int, root bool) (in, out float64) {
	if m <= 0 || m >= n {
		return 0, 0
	}
	fn, fm, fc := float64(n), float64(m), float64(nChunks)
	switch op {
	case ir.OpAllGather:
		// The entity must receive every chunk it doesn't own and emit
		// each of its own chunks at least once.
		return fc * (fn - fm) / fn, fc * fm / fn
	case ir.OpAllReduce:
		// Every chunk location needs outside contributions (reducible
		// to one combined message per location) and the entity's own
		// contributions must exit — the classic 2·S/N-per-rank floor.
		return fc, fc
	case ir.OpReduceScatter:
		// The entity ends owning its m/n share of reduced chunks and
		// must ship its contributions to the rest.
		return fc * fm / fn, fc * (fn - fm) / fn
	case ir.OpBroadcast:
		if root {
			return 0, fc
		}
		return fc, 0
	case ir.OpAllToAll:
		// Chunk s·n+d travels s→d: the entity exchanges its pairwise
		// blocks with every outside rank in both directions.
		x := fc * fm * (fn - fm) / (fn * fn)
		return x, x
	default:
		return 0, 0
	}
}
