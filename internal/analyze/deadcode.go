package analyze

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/verify"
)

// The liveness pass finds primitives the collective does not need. A
// task is LIVE when its delivery can still matter to the operator's
// postcondition:
//
//   - seed: every task whose destination location the operator
//     obligates (AllReduce/AllGather/Broadcast obligate every (rank,
//     chunk); ReduceScatter only the chunk's owner; AllToAll only the
//     addressed destination);
//   - closure: everything a live task depends on (the dependency DAG
//     already encodes which earlier deliveries feed a transfer).
//
// The closure over-approximates liveness — a task is only reported
// when NO chain of dependencies connects it to an obligated location —
// so every "dead-primitive" diagnostic is a true positive. A second
// rule catches the shadowed-copy case reachability cannot: a plain
// recv whose destination is overwritten later with no intervening
// reader delivered a value nobody observed.
//
// Process-group algorithms (Group) and repair plans (Initial) judge
// correctness against an embedded or degraded postcondition; the pass
// steps aside rather than guess it.
func checkDeadCode(v *planView, opts Options) []Diag {
	g := v.g
	algo := g.Algo
	if algo.Group != nil || algo.Initial != nil {
		return []Diag{{Code: "dead-primitive", Severity: SevInfo,
			Message: "liveness skipped: plan has a group or degraded precondition"}}
	}

	obligated := func(r ir.Rank, c ir.ChunkID) bool {
		switch algo.Op {
		case ir.OpReduceScatter:
			return r == ir.Rank(int(c)%algo.NRanks)
		case ir.OpAllToAll:
			return r == ir.Rank(int(c)%algo.NRanks)
		default: // AllReduce, AllGather, Broadcast: everyone holds everything
			return true
		}
	}

	live := make([]bool, len(g.Tasks))
	var stack []ir.TaskID
	for t, task := range g.Tasks {
		if obligated(task.Dst, task.Chunk) {
			live[t] = true
			stack = append(stack, ir.TaskID(t))
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.Deps[t] {
			if int(d) >= 0 && int(d) < len(live) && !live[d] {
				live[d] = true
				stack = append(stack, d)
			}
		}
	}
	var ds []Diag
	for t := range g.Tasks {
		if !live[t] {
			ds = append(ds, Diag{Code: "dead-primitive", Severity: SevWarn,
				Message: fmt.Sprintf("%s: no dependency chain reaches a postcondition-obligated location",
					v.describeTask(ir.TaskID(t))),
				Tasks: []ir.TaskID{ir.TaskID(t)}})
		}
	}

	// Shadowed copies, judged in pipeline order when the kernel echoes
	// one (fall back to step order otherwise).
	pos := func(t ir.TaskID) int {
		if len(v.k.TaskPos) == len(g.Tasks) && v.k.TaskPos[t] >= 0 {
			return v.k.TaskPos[t]
		}
		return int(g.Tasks[t].Step)*len(g.Tasks) + int(t)
	}
	type loc struct {
		r ir.Rank
		c ir.ChunkID
	}
	byLoc := make(map[loc][]ir.TaskID)
	for t, task := range g.Tasks {
		byLoc[loc{task.Dst, task.Chunk}] = append(byLoc[loc{task.Dst, task.Chunk}], ir.TaskID(t))
	}
	var locs []loc
	for l := range byLoc {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].r != locs[j].r {
			return locs[i].r < locs[j].r
		}
		return locs[i].c < locs[j].c
	})
	for _, l := range locs {
		writers := byLoc[l]
		sort.Slice(writers, func(i, j int) bool { return pos(writers[i]) < pos(writers[j]) })
		for i, u := range writers {
			if g.Tasks[u].Type != ir.CommRecv || i == len(writers)-1 {
				continue // reductions merge; the final writer survives
			}
			w := writers[i+1]
			if g.Tasks[w].Type == ir.CommRecvReduceCopy {
				continue // the overwriter merges u's value into its own
			}
			readBetween := false
			for t, task := range g.Tasks {
				if task.Src == l.r && task.Chunk == l.c &&
					pos(ir.TaskID(t)) > pos(u) && pos(ir.TaskID(t)) < pos(w) {
					readBetween = true
					break
				}
			}
			if !readBetween {
				ds = append(ds, Diag{Code: "dead-primitive", Severity: SevWarn,
					Message: fmt.Sprintf("%s: delivered value is overwritten by %s with no reader in between",
						v.describeTask(u), v.describeTask(w)),
					Tasks: []ir.TaskID{u, w}})
			}
		}
	}
	return ds
}

// checkCoverage cross-checks the plan against the symbolic verifier:
// it replays, in dependency order, exactly the transfers the KERNEL
// will execute (tasks whose send and recv primitives are both present
// and unaliased — what a mutant dropped, the replay drops too) and
// proves the operator's healthy postcondition over the resulting
// contribution sets. Any gap the runtime would produce shows up here
// without running anything.
func checkCoverage(v *planView) []Diag {
	g := v.g
	algo := g.Algo
	if algo.Group != nil {
		return []Diag{{Code: "coverage", Severity: SevInfo,
			Message: "postcondition coverage skipped: plan targets a process group"}}
	}
	if algo.NRanks > verify.MaxRanks {
		return []Diag{{Code: "coverage", Severity: SevInfo,
			Message: fmt.Sprintf("postcondition coverage skipped: %d ranks exceed the verifier's %d-rank bound",
				algo.NRanks, verify.MaxRanks)}}
	}
	executes := func(t ir.TaskID) bool {
		if len(v.sendOcc[t]) == 0 || len(v.recvOcc[t]) == 0 {
			return false
		}
		// An aliased slot transfers different data than the task table
		// claims; replay its payload, not the table's.
		return true
	}
	order, err := g.TopoOrder()
	if err != nil {
		return []Diag{{Code: "coverage", Severity: SevError,
			Message: fmt.Sprintf("dependency graph has no topological order: %v", err)}}
	}
	var trace []ir.Transfer
	for _, t := range order {
		if int(t) < 0 || int(t) >= len(g.Tasks) || !executes(t) {
			continue
		}
		o := v.recvOcc[t][0]
		trace = append(trace, v.k.TBs[o.tb].Slots[o.slot].Task.Transfer)
	}
	h, err := verify.Replay(algo.Op, algo.NRanks, algo.NChunks, algo.Initial, trace)
	if err != nil {
		return []Diag{{Code: "coverage", Severity: SevError,
			Message: fmt.Sprintf("symbolic replay rejects the plan: %v", err)}}
	}
	if err := h.Postcondition(verify.Expect{}); err != nil {
		return []Diag{{Code: "coverage", Severity: SevError,
			Message: fmt.Sprintf("postcondition not covered: %v", err)}}
	}
	return nil
}
