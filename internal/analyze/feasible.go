package analyze

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// The feasibility pass bounds the plan against the α+c·β cost model
// (Eq. 3-5) without simulating it:
//
//   - per-link lower bound: all traffic assigned to link l must cross
//     it serially at full capacity, so no schedule can beat
//     LB(l) = α_min(l) + Σ_t n·chunk/Capacity(l). The pass re-derives
//     the plan's own critical-path estimate (the §4.4 list schedule
//     over the kernel's echoed pipeline order — the same recurrence as
//     talloc.EstimateWindows, reconstructed from the kernel alone) and
//     flags links whose floor exceeds it: the plan's epoch structure
//     promises a completion its own wiring cannot deliver.
//
//   - TB over-subscription: a rank needs at most one sending and one
//     receiving TB per distinct peer (that is the paper's occupancy
//     point — state-based allocation shares by endpoint, connection-
//     based splits by connection, both bounded by 2·peers). More TBs
//     than that burn SMs without adding a single concurrent channel.
//
// Both lints are warnings: an infeasible plan still runs correctly,
// just slower than its schedule claims, so gates built on Report.Err
// never reject over them.
func checkFeasibility(v *planView, opts Options) []Diag {
	var ds []Diag
	g := v.g

	makespan, ok := estimateMakespan(v, opts)
	if !ok {
		ds = append(ds, Diag{Code: "link-oversub", Severity: SevInfo,
			Message: "feasibility bounds skipped: kernel carries no pipeline order"})
	} else {
		// Deterministic link order for stable reports.
		links := make([]topo.LinkID, 0, len(g.LinkTasks))
		for l := range g.LinkTasks {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		n := float64(opts.WindowMB)
		for _, l := range links {
			tasks := g.LinkTasks[l]
			if len(tasks) == 0 {
				continue
			}
			capac := g.Topo.Capacity(l)
			if capac <= 0 {
				continue
			}
			alpha := g.Paths[tasks[0]].Alpha.Seconds()
			for _, t := range tasks[1:] {
				if a := g.Paths[t].Alpha.Seconds(); a < alpha {
					alpha = a
				}
			}
			lb := alpha + float64(len(tasks))*n*float64(opts.ChunkBytes)/capac
			// 0.1% slack absorbs float accumulation-order noise.
			if lb > makespan*1.001 {
				ds = append(ds, Diag{Code: "link-oversub", Severity: SevWarn,
					Message: fmt.Sprintf(
						"link %s: serial α+c·β floor %.3fms for %d tasks exceeds the plan's critical path %.3fms",
						g.Topo.DescribeResource(l), lb*1e3, len(tasks), makespan*1e3)})
			}
		}
	}

	// TB occupancy per rank vs. the 2-TBs-per-peer bound.
	peers := make(map[ir.Rank]map[ir.Rank]bool)
	for _, task := range g.Tasks {
		if peers[task.Src] == nil {
			peers[task.Src] = make(map[ir.Rank]bool)
		}
		if peers[task.Dst] == nil {
			peers[task.Dst] = make(map[ir.Rank]bool)
		}
		peers[task.Src][task.Dst] = true
		peers[task.Dst][task.Src] = true
	}
	tbs := make(map[ir.Rank]int)
	for _, tb := range v.k.TBs {
		tbs[tb.Rank]++
	}
	ranks := make([]ir.Rank, 0, len(tbs))
	for r := range tbs {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	for _, r := range ranks {
		limit := 2 * len(peers[r])
		if limit == 0 {
			limit = 1
		}
		if tbs[r] > limit {
			ds = append(ds, Diag{Code: "tb-oversub", Severity: SevWarn,
				Message: fmt.Sprintf(
					"rank %d runs %d thread blocks for %d peer(s); %d suffice (one send + one recv per peer)",
					r, tbs[r], len(peers[r]), limit)})
		}
	}
	return ds
}

// estimateMakespan replays the §4.4 window recurrence from the kernel's
// echoed pipeline order. ok is false when the kernel carries no order
// (baseline kernels) or the tables are corrupt.
func estimateMakespan(v *planView, opts Options) (float64, bool) {
	g, k := v.g, v.k
	if len(k.TaskPos) != len(g.Tasks) || len(g.Tasks) == 0 {
		return 0, false
	}
	order := make([]ir.TaskID, len(g.Tasks))
	for t := range order {
		order[t] = ir.TaskID(t)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return k.TaskPos[order[i]] < k.TaskPos[order[j]]
	})
	n := float64(opts.WindowMB)
	start := make([]float64, len(g.Tasks))
	finish := make([]float64, len(g.Tasks))
	perInst := make([]float64, len(g.Tasks))
	linkHist := make(map[topo.LinkID][]ir.TaskID)
	makespan := 0.0
	for _, t := range order {
		path := g.Paths[t]
		per := path.Alpha.Seconds() + float64(opts.ChunkBytes)/path.TBCap
		perInst[t] = per
		s, f := 0.0, 0.0
		for _, d := range g.Deps[t] {
			if int(d) < 0 || int(d) >= len(g.Tasks) {
				continue
			}
			if x := start[d] + perInst[d]; x > s {
				s = x
			}
			if x := finish[d] + per; x > f {
				f = x
			}
		}
		for _, l := range g.Links[t] {
			hist := linkHist[l]
			win := g.LinkWindows[l]
			if win < 1 {
				win = 1
			}
			if len(hist) >= win {
				if e := finish[hist[len(hist)-win]]; e > s {
					s = e
				}
			}
		}
		if x := s + n*per; x > f {
			f = x
		}
		start[t], finish[t] = s, f
		if f > makespan {
			makespan = f
		}
		for _, l := range g.Links[t] {
			linkHist[l] = append(linkHist[l], t)
		}
	}
	return makespan, true
}
