package analyze_test

import (
	"testing"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/verify"
)

// FuzzMutatedPlans feeds the analyzer kernels mutated the way a buggy
// scheduler or allocator would corrupt them — dropped, duplicated and
// reordered primitives, and slot payloads swapped across thread blocks
// — and asserts the two properties the replan gate depends on:
//
//  1. totality: the analyzer terminates without panicking on every
//     mutant, however malformed;
//  2. no false negatives: if the analyzer reports zero errors, the
//     mutant's executed transfers must satisfy the collective's
//     postcondition under internal/verify's symbolic replay. A plan
//     the analyzer waves through must actually be correct.
//
// The converse (no false positives on valid plans) is covered by
// TestRegisteredPlansClean.
func FuzzMutatedPlans(f *testing.F) {
	bases := []*kernel.Kernel{
		compile(f, "ring-allreduce", 1, 4),
		compile(f, "ring-allgather", 1, 8),
		compile(f, "hm-allreduce", 2, 4),
	}
	f.Add(uint8(0), []byte{})
	f.Add(uint8(0), []byte{0x00, 0x01}) // drop a primitive
	f.Add(uint8(1), []byte{0x41, 0x07}) // duplicate a primitive
	f.Add(uint8(2), []byte{0x82, 0x03}) // swap adjacent slots
	f.Add(uint8(0), []byte{0xC3, 0x05}) // swap slots across TBs
	f.Add(uint8(1), []byte{0x02, 0x04, 0x86, 0x01, 0x45, 0x09})
	f.Fuzz(func(t *testing.T, base uint8, muts []byte) {
		k := cloneKernel(bases[int(base)%len(bases)])
		applyMutations(k, muts)
		r, err := analyze.Plan(k, analyze.Options{})
		if err != nil {
			t.Fatalf("analyzer returned an operational error on a mutant: %v", err)
		}
		errs, _, _ := r.Counts()
		if errs > 0 {
			return // flagged; nothing further to prove
		}
		if err := replayMutant(k); err != nil {
			t.Fatalf("false negative: analyzer reported no errors but verify rejects the plan: %v\nreport:\n%s",
				err, r.String())
		}
	})
}

// applyMutations decodes (op, arg) byte pairs into structural kernel
// mutations. At most 8 mutations apply so the mutant stays within
// shouting distance of a real scheduler bug rather than pure noise.
func applyMutations(k *kernel.Kernel, muts []byte) {
	n := len(muts) / 2
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		op, arg := muts[2*i], int(muts[2*i+1])
		tb := k.TBs[int(op&0x3F)%len(k.TBs)]
		switch op >> 6 {
		case 0: // drop a primitive
			if len(tb.Slots) > 0 {
				j := arg % len(tb.Slots)
				tb.Slots = append(tb.Slots[:j:j], tb.Slots[j+1:]...)
			}
		case 1: // duplicate a primitive
			if len(tb.Slots) > 0 {
				j := arg % len(tb.Slots)
				tb.Slots = append(tb.Slots, tb.Slots[j])
			}
		case 2: // swap adjacent slots (reorder)
			if len(tb.Slots) > 1 {
				j := arg % (len(tb.Slots) - 1)
				tb.Slots[j], tb.Slots[j+1] = tb.Slots[j+1], tb.Slots[j]
			}
		case 3: // swap one slot with the same index in the next TB
			other := k.TBs[(int(op&0x3F)+1)%len(k.TBs)]
			if len(tb.Slots) > 0 && len(other.Slots) > 0 {
				a, b := arg%len(tb.Slots), arg%len(other.Slots)
				tb.Slots[a], other.Slots[b] = other.Slots[b], tb.Slots[a]
			}
		}
	}
}

// replayMutant replays the transfers the mutated kernel would execute —
// tasks with at least one send and one recv primitive, in dependency
// order — through the symbolic verifier and checks the collective's
// postcondition. It is an independent reimplementation of the
// analyzer's coverage check, so agreement between the two is evidence,
// not tautology.
func replayMutant(k *kernel.Kernel) error {
	g := k.Graph
	algo := g.Algo
	sends := make([]int, len(g.Tasks))
	recvs := make([]int, len(g.Tasks))
	for _, tb := range k.TBs {
		for _, p := range tb.Slots {
			t := int(p.Task.ID)
			if t < 0 || t >= len(g.Tasks) {
				continue
			}
			if p.Kind == ir.PrimSend {
				sends[t]++
			} else {
				recvs[t]++
			}
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	trace := make([]ir.Transfer, 0, len(order))
	for _, t := range order {
		if sends[t] > 0 && recvs[t] > 0 {
			trace = append(trace, g.Tasks[t].Transfer)
		}
	}
	h, err := verify.Replay(algo.Op, algo.NRanks, algo.NChunks, algo.Initial, trace)
	if err != nil {
		return err
	}
	return h.Postcondition(verify.Expect{})
}
