package analyze

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/simcost"
	"github.com/resccl/resccl/internal/topo"
)

// Budget lints are the resource-efficiency half of the analyzer: purely
// static occupancy and memory checks against a configurable envelope.
// They live here (not in analyze/cert) so every backend compile can
// attach them without linking the simulator; cert builds its full
// certificates — lower bounds, gaps, hashes — on top of the same
// computations.

// Budget lint codes. Budget lints are warnings everywhere (an
// over-budget plan still runs correctly, just wastefully), but the
// replan gate and `-strict` tooling treat them as hard failures — a
// repair plan may relax the optimality gap, never the resource budget.
const (
	// CodeBudgetTB fires when a rank's peak concurrent thread-block
	// occupancy exceeds the SM/channel budget.
	CodeBudgetTB = "budget-tb"
	// CodeBudgetMem fires when a rank's buffer high-water mark exceeds
	// the memory budget.
	CodeBudgetMem = "budget-mem"
)

// IsBudgetDiag reports whether a diagnostic code is a resource-budget
// violation — the class the replan gate refuses to relax.
func IsBudgetDiag(code string) bool {
	return code == CodeBudgetTB || code == CodeBudgetMem
}

// Budget is the resource envelope a plan is certified against.
type Budget struct {
	// MaxTBsPerRank caps the peak number of concurrently active thread
	// blocks on any one rank — the SM/channel budget. The default (32)
	// is deliberately generous: an A100 has 108 SMs and NCCL itself
	// runs up to 32 channels, so only a genuinely wasteful plan trips
	// it.
	MaxTBsPerRank int
	// MaxBufferFactor caps the per-rank buffer high-water mark as a
	// multiple of the per-rank payload S (default 2.0: a plan may stage
	// at most one full extra copy).
	MaxBufferFactor float64
}

// DefaultBudget returns the generous default envelope.
func DefaultBudget() Budget {
	return Budget{MaxTBsPerRank: 32, MaxBufferFactor: 2}
}

// Normalize substitutes the DefaultBudget values for zero-value fields.
func (b Budget) Normalize() Budget {
	d := DefaultBudget()
	if b.MaxTBsPerRank <= 0 {
		b.MaxTBsPerRank = d.MaxTBsPerRank
	}
	if b.MaxBufferFactor <= 0 {
		b.MaxBufferFactor = d.MaxBufferFactor
	}
	return b
}

// BudgetLints statically checks the plan against the budget — no
// simulation — and returns SevWarn diagnostics for violations. It is
// cheap enough to ride every backend compile. Non-positive bufferBytes
// and chunkBytes take the certification defaults (64 MiB, 1 MiB); a
// zero-value budget takes DefaultBudget.
func BudgetLints(k *kernel.Kernel, tp *topo.Topology, bufferBytes, chunkBytes int64, b Budget) []Diag {
	if k == nil || k.Graph == nil || tp == nil {
		return nil
	}
	if bufferBytes <= 0 {
		bufferBytes = 64 << 20
	}
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	b = b.Normalize()
	var ds []Diag
	peakTBs, _ := PlanOccupancy(k, bufferBytes, chunkBytes)
	if peakTBs > b.MaxTBsPerRank {
		ds = append(ds, Diag{Code: CodeBudgetTB, Severity: SevWarn,
			Message: fmt.Sprintf(
				"peak concurrent thread blocks per rank %d exceeds the SM/channel budget %d",
				peakTBs, b.MaxTBsPerRank)})
	}
	budgetBytes := int64(b.MaxBufferFactor * float64(bufferBytes))
	if peak := BufferHighWater(k, bufferBytes); budgetBytes > 0 && peak > budgetBytes {
		ds = append(ds, Diag{Code: CodeBudgetMem, Severity: SevWarn,
			Message: fmt.Sprintf(
				"per-rank buffer high-water mark %d bytes exceeds the budget %d bytes (%.2g× payload)",
				peak, budgetBytes, b.MaxBufferFactor)})
	}
	return ds
}

// PlanOccupancy statically replays the §4.4 window recurrence (the same
// one the feasibility pass and talloc.EstimateWindows use) with the
// protocol tier's α scaling and wire-byte inflation applied, derives
// each thread block's activity window [first task start, last task
// finish], and sweeps per-rank concurrency. It returns the busiest
// rank's peak count of concurrently active thread blocks and the
// dead-resource ratio: 1 − Σ busy / Σ activity span over all thread
// blocks (0 when the plan keeps every reserved TB streaming, → 1 when
// TBs mostly sit blocked). Baseline kernels carry no pipeline order
// (TaskPos is nil); for those every TB is live for the whole run, so
// the static per-rank TB count is the honest answer and the idle ratio
// is reported as zero (unknowable without a schedule).
func PlanOccupancy(k *kernel.Kernel, bufferBytes, chunkBytes int64) (peakTBs int, idleRatio float64) {
	g := k.Graph
	if len(k.TaskPos) != len(g.Tasks) || len(g.Tasks) == 0 ||
		len(k.SendTB) != len(g.Tasks) || len(k.RecvTB) != len(g.Tasks) {
		return k.MaxTBsPerRank(), 0
	}

	params := simcost.Params(k.Protocol)
	plan := simcost.PlanFor(bufferBytes, params.EffectiveChunk(chunkBytes), g.Algo.NChunks)
	n := float64(plan.NMicroBatches)
	wireChunk := plan.ChunkBytes / params.BWFactor

	// The recurrence: per-instance cost, dependency starts, link-window
	// turns — estimateMakespan's recurrence with tier scaling.
	order := make([]ir.TaskID, len(g.Tasks))
	for t := range order {
		order[t] = ir.TaskID(t)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return k.TaskPos[order[i]] < k.TaskPos[order[j]]
	})
	start := make([]float64, len(g.Tasks))
	finish := make([]float64, len(g.Tasks))
	perInst := make([]float64, len(g.Tasks))
	linkHist := make(map[topo.LinkID][]ir.TaskID)
	for _, t := range order {
		path := g.Paths[t]
		per := path.Alpha.Seconds()*params.AlphaFactor + wireChunk/path.TBCap
		perInst[t] = per
		s, f := 0.0, 0.0
		for _, d := range g.Deps[t] {
			if int(d) < 0 || int(d) >= len(g.Tasks) {
				continue
			}
			if x := start[d] + perInst[d]; x > s {
				s = x
			}
			if x := finish[d] + per; x > f {
				f = x
			}
		}
		for _, l := range g.Links[t] {
			hist := linkHist[l]
			win := g.LinkWindows[l]
			if win < 1 {
				win = 1
			}
			if len(hist) >= win {
				if e := finish[hist[len(hist)-win]]; e > s {
					s = e
				}
			}
		}
		if x := s + n*per; x > f {
			f = x
		}
		start[t], finish[t] = s, f
		for _, l := range g.Links[t] {
			linkHist[l] = append(linkHist[l], t)
		}
	}

	// TB activity windows: a TB is reserved from its first task's start
	// to its last task's finish; its busy time is the transfer work of
	// its tasks.
	type window struct {
		lo, hi float64
		busy   float64
		live   bool
	}
	wins := make([]window, len(k.TBs))
	account := func(tb int, t ir.TaskID) {
		if tb < 0 || tb >= len(wins) {
			return
		}
		w := &wins[tb]
		if !w.live || start[t] < w.lo {
			w.lo = start[t]
		}
		if !w.live || finish[t] > w.hi {
			w.hi = finish[t]
		}
		w.busy += n * perInst[t]
		w.live = true
	}
	for t := range g.Tasks {
		account(k.SendTB[t], ir.TaskID(t))
		account(k.RecvTB[t], ir.TaskID(t))
	}

	// Per-rank concurrency sweep: +1 at window open, −1 at close, with
	// closes processed before opens at equal times so back-to-back
	// windows don't count as overlapping.
	type event struct {
		at    float64
		delta int
	}
	events := make(map[ir.Rank][]event)
	totalBusy, totalSpan := 0.0, 0.0
	for i, w := range wins {
		if !w.live {
			continue
		}
		r := k.TBs[i].Rank
		events[r] = append(events[r], event{w.lo, +1}, event{w.hi, -1})
		span := w.hi - w.lo
		busy := w.busy
		if busy > span {
			busy = span // replay slack; a TB can't be busier than live
		}
		totalBusy += busy
		totalSpan += span
	}
	peak := 0
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].at != evs[j].at {
				return evs[i].at < evs[j].at
			}
			return evs[i].delta < evs[j].delta
		})
		cur := 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
	}
	if peak == 0 {
		peak = k.MaxTBsPerRank()
	}
	idle := 0.0
	if totalSpan > 0 {
		idle = 1 - totalBusy/totalSpan
		if idle < 0 {
			idle = 0
		}
		if idle > 1 {
			idle = 1
		}
	}
	return peak, idle
}

// BufferHighWater returns the busiest rank's buffer high-water mark:
// the number of distinct chunks ever resident on the rank (initially
// held under the operator's precondition, or delivered by a task)
// times the chunk's buffer share. This is exactly what talloc must
// reserve — chunks live at isolated addresses for the whole run.
func BufferHighWater(k *kernel.Kernel, bufferBytes int64) int64 {
	g := k.Graph
	a := g.Algo
	if a.NChunks <= 0 || a.NRanks <= 0 {
		return 0
	}
	perChunk := (bufferBytes + int64(a.NChunks) - 1) / int64(a.NChunks)
	resident := make(map[ir.Rank]map[ir.ChunkID]bool)
	mark := func(r ir.Rank, c ir.ChunkID) {
		if resident[r] == nil {
			resident[r] = make(map[ir.ChunkID]bool)
		}
		resident[r][c] = true
	}
	ranks := a.NRanks
	if a.Group != nil {
		// Group collectives only touch member ranks' buffers.
		for _, r := range a.Group {
			for c := 0; c < a.NChunks; c++ {
				if dag.AlgoHolds(a, r, ir.ChunkID(c)) {
					mark(r, ir.ChunkID(c))
				}
			}
		}
	} else {
		for r := 0; r < ranks; r++ {
			for c := 0; c < a.NChunks; c++ {
				if dag.AlgoHolds(a, ir.Rank(r), ir.ChunkID(c)) {
					mark(ir.Rank(r), ir.ChunkID(c))
				}
			}
		}
	}
	for _, t := range g.Tasks {
		mark(t.Dst, t.Chunk)
	}
	var peak int64
	for _, chunks := range resident {
		if b := int64(len(chunks)) * perChunk; b > peak {
			peak = b
		}
	}
	return peak
}
