package analyze

import (
	"fmt"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
)

// occ locates one primitive occurrence inside the kernel: TB index (into
// Kernel.TBs, not TB ID, which a corrupt plan may duplicate) and slot.
type occ struct {
	tb, slot int
}

// planView indexes a kernel for the analysis passes. It is built once
// per Plan call and never mutates the kernel. All indexing tolerates
// corrupt plans: out-of-range task IDs simply do not appear in the
// occurrence tables.
type planView struct {
	k *kernel.Kernel
	g *dag.Graph

	// sendOcc[t] / recvOcc[t] list the occurrences of task t's send and
	// recv primitives across all TBs, in (TB index, slot) order. A valid
	// kernel has exactly one of each; mutants may have zero or several.
	sendOcc, recvOcc [][]occ
}

func newPlanView(k *kernel.Kernel) *planView {
	v := &planView{
		k:       k,
		g:       k.Graph,
		sendOcc: make([][]occ, len(k.Graph.Tasks)),
		recvOcc: make([][]occ, len(k.Graph.Tasks)),
	}
	for tbi, tb := range k.TBs {
		for s, prim := range tb.Slots {
			t := int(prim.Task.ID)
			if t < 0 || t >= len(v.sendOcc) {
				continue
			}
			if prim.Kind == ir.PrimSend {
				v.sendOcc[t] = append(v.sendOcc[t], occ{tbi, s})
			} else {
				v.recvOcc[t] = append(v.recvOcc[t], occ{tbi, s})
			}
		}
	}
	return v
}

// subTasks reconstructs the scheduler's sub-pipeline partition from the
// kernel's echoed TaskSub/TaskPos tables. Baseline kernels carry no
// schedule echo, and mutants may corrupt it; nil means the pipeline
// lints cannot run.
func (v *planView) subTasks() [][]ir.TaskID {
	k := v.k
	if len(k.TaskSub) != len(v.g.Tasks) || len(k.TaskPos) != len(v.g.Tasks) {
		return nil
	}
	nSubs := 0
	for _, s := range k.TaskSub {
		if s+1 > nSubs {
			nSubs = s + 1
		}
	}
	if nSubs == 0 {
		return nil
	}
	subs := make([][]ir.TaskID, nSubs)
	// Tasks enter their sub in global position order, matching how the
	// scheduler emitted them. Order within a sub follows TaskPos; an
	// insertion sort keeps the common already-sorted case linear.
	for t, s := range k.TaskSub {
		if s < 0 {
			continue // unscheduled: the invariant coverage check reports it
		}
		subs[s] = append(subs[s], ir.TaskID(t))
	}
	for _, sub := range subs {
		for i := 1; i < len(sub); i++ {
			for j := i; j > 0 && k.TaskPos[sub[j]] < k.TaskPos[sub[j-1]]; j-- {
				sub[j], sub[j-1] = sub[j-1], sub[j]
			}
		}
	}
	return subs
}

// describeTask renders a task for diagnostics: its transfer tuple when
// the ID resolves, the bare ID otherwise.
func (v *planView) describeTask(t ir.TaskID) string {
	if int(t) >= 0 && int(t) < len(v.g.Tasks) {
		tr := v.g.Tasks[t].Transfer
		return fmt.Sprintf("task %d (%d→%d chunk %d step %d)", t, tr.Src, tr.Dst, tr.Chunk, tr.Step)
	}
	return fmt.Sprintf("task %d (unknown)", t)
}

// checkStructure is the analyzer's tolerant mirror of kernel.Validate:
// the same invariants, but every violation becomes a diagnostic instead
// of aborting at the first, and slot aliasing — a slot whose embedded
// transfer disagrees with the task table for its claimed ID — is caught
// explicitly rather than surfacing later as a data corruption.
func checkStructure(v *planView) []Diag {
	var ds []Diag
	k, g := v.k, v.g
	if !k.Protocol.Valid() {
		ds = append(ds, Diag{Code: "protocol", Severity: SevError,
			Message: fmt.Sprintf("undefined protocol tier %d (want auto, LL, LL128 or Simple)", int(k.Protocol))})
	}
	if len(k.SendTB) != len(g.Tasks) || len(k.RecvTB) != len(g.Tasks) {
		ds = append(ds, Diag{Code: "structure", Severity: SevError,
			Message: fmt.Sprintf("task/TB table size mismatch: %d send, %d recv entries for %d tasks",
				len(k.SendTB), len(k.RecvTB), len(g.Tasks))})
		return ds
	}
	for _, tb := range k.TBs {
		if len(tb.Slots) == 0 {
			ds = append(ds, Diag{Code: "structure", Severity: SevWarn,
				Message: fmt.Sprintf("TB %d (%s) has no slots", tb.ID, tb.Label)})
		}
		for s, prim := range tb.Slots {
			t := prim.Task.ID
			if int(t) < 0 || int(t) >= len(g.Tasks) {
				ds = append(ds, Diag{Code: "structure", Severity: SevError,
					Message: fmt.Sprintf("TB %d slot %d references unknown task %d", tb.ID, s, t)})
				continue
			}
			if prim.Task.Transfer != g.Tasks[t].Transfer {
				ds = append(ds, Diag{Code: "slot-alias", Severity: SevError,
					Message: fmt.Sprintf("TB %d slot %d claims task %d but carries %v, task table says %v",
						tb.ID, s, t, prim.Task.Transfer, g.Tasks[t].Transfer),
					Tasks: []ir.TaskID{t}})
			}
			if prim.Rank != tb.Rank {
				ds = append(ds, Diag{Code: "structure", Severity: SevError,
					Message: fmt.Sprintf("TB %d on rank %d holds primitive for rank %d (%s)",
						tb.ID, tb.Rank, prim.Rank, v.describeTask(t)),
					Tasks: []ir.TaskID{t}})
			}
			switch prim.Kind {
			case ir.PrimSend:
				if k.SendTB[t] != tb.ID {
					ds = append(ds, Diag{Code: "structure", Severity: SevError,
						Message: fmt.Sprintf("%s: send primitive in TB %d, table says %d",
							v.describeTask(t), tb.ID, k.SendTB[t]),
						Tasks: []ir.TaskID{t}})
				}
			case ir.PrimRecv, ir.PrimRecvReduceCopy:
				if k.RecvTB[t] != tb.ID {
					ds = append(ds, Diag{Code: "structure", Severity: SevError,
						Message: fmt.Sprintf("%s: recv primitive in TB %d, table says %d",
							v.describeTask(t), tb.ID, k.RecvTB[t]),
						Tasks: []ir.TaskID{t}})
				}
			default:
				ds = append(ds, Diag{Code: "structure", Severity: SevError,
					Message: fmt.Sprintf("TB %d slot %d has unknown primitive kind %d", tb.ID, s, int(prim.Kind)),
					Tasks:   []ir.TaskID{t}})
			}
		}
	}
	for t := range g.Tasks {
		ns, nr := len(v.sendOcc[t]), len(v.recvOcc[t])
		if ns != 1 || nr != 1 {
			ds = append(ds, Diag{Code: "structure", Severity: SevError,
				Message: fmt.Sprintf("%s has %d send / %d recv primitives (want 1/1)",
					v.describeTask(ir.TaskID(t)), ns, nr),
				Tasks: []ir.TaskID{ir.TaskID(t)}})
		}
	}
	for t, preds := range k.LinkPreds {
		for _, p := range preds {
			if int(p) < 0 || int(p) >= len(g.Tasks) || int(p) == t {
				ds = append(ds, Diag{Code: "structure", Severity: SevError,
					Message: fmt.Sprintf("task %d has invalid link predecessor %d", t, p),
					Tasks:   []ir.TaskID{ir.TaskID(t), p}})
			}
		}
	}
	return ds
}
