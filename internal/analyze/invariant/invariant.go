// Package invariant holds the pipeline invariant checks shared by the
// scheduler's self-validation (sched.Validate) and the static plan
// analyzer (internal/analyze). Keeping them in one place guarantees the
// two consumers cannot drift apart: a schedule the scheduler accepts is
// exactly a schedule the analyzer's pipeline lints accept.
//
// The package sits below both consumers in the import graph — it knows
// about the dependency DAG but not about pipelines, kernels or
// diagnostics — so sched can wrap its findings into errors and analyze
// into typed diagnostics.
package invariant

import (
	"fmt"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Finding is one violated pipeline invariant.
type Finding struct {
	// Code classifies the invariant: "double-schedule", "coverage",
	// "link-window" or "dep-order".
	Code string
	// Message is the human-readable description (stable across runs).
	Message string
	// Tasks lists the tasks involved, primary first.
	Tasks []ir.TaskID
}

func (f Finding) String() string { return f.Message }

// Err converts the first finding into an error, nil when the list is
// empty. The error text is the finding's message, so callers that wrap
// it keep the historical sched.Validate formatting.
func Err(fs []Finding) error {
	if len(fs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", fs[0].Message)
}

// CheckPipeline verifies the task-pipeline invariants of §4.3 against
// the dependency graph:
//
//  1. every task is scheduled exactly once (no duplicates, full
//     coverage);
//  2. no sub-pipeline loads a communication link beyond its saturation
//     window (Fig. 4) — the communication-dependency rule;
//  3. every data dependency occupies an earlier global position than
//     its dependent.
//
// subs is the per-sub-pipeline task partition in schedule order; taskPos
// is the dense global position of every task (indexed by TaskID). It
// returns every violation rather than stopping at the first, in
// deterministic order.
func CheckPipeline(g *dag.Graph, subs [][]ir.TaskID, taskPos []int) []Finding {
	var out []Finding
	seen := make([]bool, len(g.Tasks))
	count := 0
	// One link-count map serves every sub-pipeline; clearing it between
	// iterations avoids an allocation per sub.
	links := make(map[topo.LinkID]int)
	for i, sub := range subs {
		clear(links)
		for _, t := range sub {
			if int(t) < 0 || int(t) >= len(g.Tasks) {
				out = append(out, Finding{
					Code:    "coverage",
					Message: fmt.Sprintf("sub-pipeline %d references unknown task %d", i, t),
					Tasks:   []ir.TaskID{t},
				})
				continue
			}
			if seen[t] {
				out = append(out, Finding{
					Code:    "double-schedule",
					Message: fmt.Sprintf("task %d scheduled twice", t),
					Tasks:   []ir.TaskID{t},
				})
				continue
			}
			seen[t] = true
			count++
			for _, l := range g.Links[t] {
				links[l]++
				if links[l] > g.LinkWindows[l] {
					out = append(out, Finding{
						Code: "link-window",
						Message: fmt.Sprintf(
							"sub-pipeline %d: link %s holds %d tasks, window is %d (communication dependency violated)",
							i, g.Topo.DescribeResource(l), links[l], g.LinkWindows[l]),
						Tasks: []ir.TaskID{t},
					})
				}
			}
		}
	}
	if count != len(g.Tasks) {
		out = append(out, Finding{
			Code:    "coverage",
			Message: fmt.Sprintf("pipeline covers %d of %d tasks", count, len(g.Tasks)),
		})
	}
	for t := range g.Tasks {
		for _, dep := range g.Deps[t] {
			if !validPos(taskPos, dep) || !validPos(taskPos, ir.TaskID(t)) {
				continue // coverage finding above already reports the hole
			}
			if taskPos[dep] >= taskPos[t] {
				out = append(out, Finding{
					Code: "dep-order",
					Message: fmt.Sprintf(
						"task %d (pos %d) scheduled before its dependency %d (pos %d)",
						t, taskPos[t], dep, taskPos[dep]),
					Tasks: []ir.TaskID{ir.TaskID(t), dep},
				})
			}
		}
	}
	return out
}

func validPos(taskPos []int, t ir.TaskID) bool {
	return int(t) >= 0 && int(t) < len(taskPos) && taskPos[t] >= 0
}
