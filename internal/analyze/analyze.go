// Package analyze is the static plan analyzer ("resccl vet"): it
// consumes a compiled plan — the per-TB primitive programs of a
// kernel.Kernel together with its dependency graph — and, without
// executing or simulating anything, proves the absence of (or reports,
// as typed diagnostics) four classes of plan defects:
//
//   - deadlock: a cycle in the cross-TB wait-for graph induced by
//     send/recv rendezvous, intra-TB program order, data-dependency
//     semaphores and link-window serialization (waitfor.go);
//   - chunk hazards: write-write or read-write races on buffer slots
//     that are unordered under the plan's happens-before relation
//     (hazard.go);
//   - infeasibility: communication links whose assigned traffic makes
//     the plan's epoch structure unachievable under the α+c·β cost
//     model, and thread-block over-subscription beyond the occupancy
//     the topology supports (feasible.go);
//   - dead or unreachable primitives: transfers whose delivered data
//     can never reach a location the collective's postcondition
//     obligates, cross-checked against the symbolic contribution sets
//     of internal/verify (deadcode.go).
//
// The same discipline SCCL and GC3 apply to collective programs before
// they touch hardware, applied to ResCCL's compiled plans: analysis
// runs in milliseconds, so it gates every compile (internal/backend)
// and every replan (internal/rt) rather than waiting for a simulation
// or a concurrent execution to fail.
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"github.com/resccl/resccl/internal/analyze/invariant"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
)

// Severity grades a diagnostic.
type Severity int

// Severities, ordered from most to least severe.
const (
	// SevError marks a defect that makes the plan unsafe to execute
	// (deadlock, hazard, broken invariant). Report.Err surfaces it.
	SevError Severity = iota
	// SevWarn marks a defect that wastes resources or indicates a
	// degenerate plan but cannot corrupt a run.
	SevWarn
	// SevInfo marks analysis notes (skipped checks, coverage caveats).
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	case SevInfo:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Checks selects which analysis passes run, as a bitmask.
type Checks uint

// Individual analysis passes.
const (
	// CheckStructure verifies the kernel's slot tables: every task has
	// exactly one send and one recv primitive, on the right ranks and
	// TBs, and no slot aliases a task it does not belong to.
	CheckStructure Checks = 1 << iota
	// CheckDeadlock builds the cross-TB wait-for graph and reports any
	// cycle with the full primitive path.
	CheckDeadlock
	// CheckHazards reports buffer-slot races unordered under
	// happens-before.
	CheckHazards
	// CheckFeasibility reports links whose α+c·β lower bound exceeds the
	// plan's critical-path estimate and TB over-subscription.
	CheckFeasibility
	// CheckDeadCode reports primitives whose data cannot reach any
	// postcondition-obligated location.
	CheckDeadCode
	// CheckCoverage replays the plan through the symbolic verifier
	// (internal/verify) and reports postcondition gaps.
	CheckCoverage
	// CheckPipelineInvariants re-runs the scheduler's pipeline
	// invariants (internal/analyze/invariant) on the kernel's echoed
	// schedule.
	CheckPipelineInvariants
)

// CheckQuick is the always-on compile-time subset: linear-time passes
// that catch every defect class able to corrupt or hang a run.
const CheckQuick = CheckStructure | CheckDeadlock | CheckPipelineInvariants

// CheckAll runs every pass.
const CheckAll = CheckStructure | CheckDeadlock | CheckHazards |
	CheckFeasibility | CheckDeadCode | CheckCoverage | CheckPipelineInvariants

// CheckGate is the pre-resume replan gate: everything except the
// postcondition passes, which judge healthy plans only — repair plans
// carry degraded postconditions that internal/rt proves separately.
const CheckGate = CheckStructure | CheckDeadlock | CheckHazards |
	CheckFeasibility | CheckPipelineInvariants

// Options tune an analysis.
type Options struct {
	// Checks selects passes; zero means CheckAll.
	Checks Checks
	// ChunkBytes is the chunk size assumed by the feasibility cost
	// model (default 1 MiB, matching core.Options).
	ChunkBytes int64
	// WindowMB is the micro-batch count assumed by the feasibility cost
	// model (default 8, matching core.Options).
	WindowMB int
	// AnalysisMB is the number of micro-batches the wait-for graph is
	// unrolled for (default 2: enough to expose cross-micro-batch
	// coupling of task-major loops without scaling the graph by the
	// real micro-batch count).
	AnalysisMB int
	// MaxDiagsPerClass bounds how many diagnostics one pass reports
	// (default 16); the report notes elided counts.
	MaxDiagsPerClass int
}

func (o Options) withDefaults() Options {
	if o.Checks == 0 {
		o.Checks = CheckAll
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	if o.WindowMB <= 0 {
		o.WindowMB = 8
	}
	if o.AnalysisMB <= 0 {
		o.AnalysisMB = 2
	}
	if o.MaxDiagsPerClass <= 0 {
		o.MaxDiagsPerClass = 16
	}
	return o
}

// Diag is one typed diagnostic.
type Diag struct {
	// Code names the lint ("deadlock", "hazard-ww", "hazard-rw",
	// "link-infeasible", "tb-oversub", "dead-primitive", "coverage",
	// "structure", "protocol", plus the invariant codes of
	// internal/analyze/invariant).
	Code     string
	Severity Severity
	// Message is the stable human-readable description.
	Message string
	// Tasks lists the tasks involved, primary first (empty for
	// plan-wide diagnostics).
	Tasks []ir.TaskID
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Severity, d.Code, d.Message)
}

// Report is the outcome of one analysis: the plan identity and every
// diagnostic, sorted deterministically (severity, pass code, the
// primary task's step and rank, task ID, message).
type Report struct {
	Kernel string
	Checks Checks
	Diags  []Diag
}

// Counts returns the number of diagnostics per severity.
func (r *Report) Counts() (errs, warns, infos int) {
	for _, d := range r.Diags {
		switch d.Severity {
		case SevError:
			errs++
		case SevWarn:
			warns++
		default:
			infos++
		}
	}
	return
}

// Clean reports whether the analysis produced no error diagnostics.
func (r *Report) Clean() bool {
	errs, _, _ := r.Counts()
	return errs == 0
}

// Err returns an error describing the first error-severity diagnostic,
// nil when the plan is clean.
func (r *Report) Err() error {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			errs, _, _ := r.Counts()
			if errs > 1 {
				return fmt.Errorf("analyze: plan %q: %s: %s (and %d more errors)",
					r.Kernel, d.Code, d.Message, errs-1)
			}
			return fmt.Errorf("analyze: plan %q: %s: %s", r.Kernel, d.Code, d.Message)
		}
	}
	return nil
}

// String renders the report in the stable format golden tests pin: one
// header line, then one line per diagnostic.
func (r *Report) String() string {
	var b strings.Builder
	errs, warns, infos := r.Counts()
	fmt.Fprintf(&b, "plan %s: %d error(s), %d warning(s), %d note(s)\n",
		r.Kernel, errs, warns, infos)
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

func (r *Report) add(d Diag) { r.Diags = append(r.Diags, d) }

// addLimited appends up to max diagnostics from ds under one code and
// notes how many were elided.
func (r *Report) addLimited(ds []Diag, max int) {
	if len(ds) <= max {
		r.Diags = append(r.Diags, ds...)
		return
	}
	r.Diags = append(r.Diags, ds[:max]...)
	r.add(Diag{
		Code:     ds[0].Code,
		Severity: SevInfo,
		Message:  fmt.Sprintf("%d further %s diagnostic(s) elided", len(ds)-max, ds[0].Code),
	})
}

// diagKey resolves the (step, rank) of a diagnostic's primary task:
// the schedule position its pass fired at. Diagnostics without tasks
// (plan-wide notes) sort first within their code via (-1, -1).
func diagKey(d Diag, g *dag.Graph) (step, rank int) {
	if len(d.Tasks) == 0 || g == nil {
		return -1, -1
	}
	t := int(d.Tasks[0])
	if t < 0 || t >= len(g.Tasks) {
		return -1, -1
	}
	task := g.Tasks[t]
	return int(task.Step), int(task.Src)
}

// sortDiags restores the canonical diagnostic order: severity, then
// pass (code), then the primary task's (step, rank) schedule position,
// then task ID and message. Keying on (pass, step, rank) before the
// raw task ID keeps the order stable when several passes fire at the
// same step: task IDs are dense in (step, chunk, src, dst) order, so
// two passes reporting the same step through different tasks would
// otherwise interleave unpredictably as plans grow.
func (r *Report) sortDiags(g *dag.Graph) {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		as, ar := diagKey(a, g)
		bs, br := diagKey(b, g)
		if as != bs {
			return as < bs
		}
		if ar != br {
			return ar < br
		}
		at, bt := ir.TaskID(-1), ir.TaskID(-1)
		if len(a.Tasks) > 0 {
			at = a.Tasks[0]
		}
		if len(b.Tasks) > 0 {
			bt = b.Tasks[0]
		}
		if at != bt {
			return at < bt
		}
		return a.Message < b.Message
	})
}

// Attach merges externally produced diagnostics (the cert budget and
// gap lints ride along here) into the report and restores the
// canonical (severity, pass, step, rank) order. g may be nil when the
// extra diagnostics carry no task references.
func (r *Report) Attach(g *dag.Graph, ds ...Diag) {
	if len(ds) == 0 {
		return
	}
	r.Diags = append(r.Diags, ds...)
	r.sortDiags(g)
}

// Plan statically analyzes a compiled plan. It never executes the
// kernel and is safe to call on arbitrarily corrupt plans (fuzzed
// mutants included): defects become diagnostics, not panics. Only a nil
// kernel or graph is an error.
func Plan(k *kernel.Kernel, opts Options) (*Report, error) {
	if k == nil || k.Graph == nil {
		return nil, fmt.Errorf("analyze: nil kernel or graph")
	}
	opts = opts.withDefaults()
	r := &Report{Kernel: k.Name, Checks: opts.Checks}
	v := newPlanView(k)

	structureOK := true
	if opts.Checks&CheckStructure != 0 {
		ds := checkStructure(v)
		for _, d := range ds {
			if d.Severity == SevError {
				structureOK = false
				break
			}
		}
		r.addLimited(ds, opts.MaxDiagsPerClass)
	}
	if opts.Checks&CheckPipelineInvariants != 0 {
		if subs := v.subTasks(); subs != nil {
			var ds []Diag
			for _, f := range invariant.CheckPipeline(v.g, subs, v.k.TaskPos) {
				ds = append(ds, Diag{Code: f.Code, Severity: SevError, Message: f.Message, Tasks: f.Tasks})
			}
			r.addLimited(ds, opts.MaxDiagsPerClass)
		}
	}

	deadlockFree := true
	if opts.Checks&CheckDeadlock != 0 {
		ds, free := checkDeadlock(v, opts)
		deadlockFree = free
		r.addLimited(ds, opts.MaxDiagsPerClass)
	}
	if opts.Checks&CheckHazards != 0 {
		if deadlockFree && structureOK {
			r.addLimited(checkHazards(v, opts), opts.MaxDiagsPerClass)
		} else {
			r.add(Diag{Code: "hazard", Severity: SevInfo,
				Message: "hazard analysis skipped: plan has structural or deadlock errors"})
		}
	}
	if opts.Checks&CheckFeasibility != 0 {
		r.addLimited(checkFeasibility(v, opts), opts.MaxDiagsPerClass)
	}
	if opts.Checks&CheckDeadCode != 0 {
		r.addLimited(checkDeadCode(v, opts), opts.MaxDiagsPerClass)
	}
	if opts.Checks&CheckCoverage != 0 {
		r.addLimited(checkCoverage(v), opts.MaxDiagsPerClass)
	}
	r.sortDiags(v.g)
	return r, nil
}
