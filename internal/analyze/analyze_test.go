package analyze_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// compile builds a registered expert algorithm into a kernel on the
// given shape.
func compile(t testing.TB, name string, nodes, gpus int) *kernel.Kernel {
	t.Helper()
	b, ok := expert.Lookup(name)
	if !ok {
		t.Fatalf("unknown algorithm %q", name)
	}
	params := []int{nodes * gpus}
	if b.NParams == 2 {
		params = []int{nodes, gpus}
	}
	algo, err := expert.Build(name, params...)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	c, err := core.Compile(context.Background(), algo, topo.New(nodes, gpus, topo.A100()), core.Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return c.Kernel
}

// TestRegisteredPlansClean proves the analyzer accepts every plan the
// compiler produces: the full check suite reports zero errors across
// the whole registry on a 2×4 shape.
func TestRegisteredPlansClean(t *testing.T) {
	for _, b := range expert.Registry() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			k := compile(t, b.Name, 2, 4)
			r, err := analyze.Plan(k, analyze.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Clean() {
				t.Fatalf("analyzer rejects a valid plan:\n%s", r)
			}
			if err := r.Err(); err != nil {
				t.Fatalf("Err() on clean report: %v", err)
			}
		})
	}
}

// mutate applies a named corruption to a fresh copy of the kernel's TB
// programs and returns the mutant. Mutations mirror the fuzz corpus.
func cloneKernel(k *kernel.Kernel) *kernel.Kernel {
	out := *k
	out.TBs = make([]*kernel.TBProgram, len(k.TBs))
	for i, tb := range k.TBs {
		cp := *tb
		cp.Slots = append([]ir.Primitive(nil), tb.Slots...)
		out.TBs[i] = &cp
	}
	out.SendTB = append([]int(nil), k.SendTB...)
	out.RecvTB = append([]int(nil), k.RecvTB...)
	out.LinkPreds = append([][]ir.TaskID(nil), k.LinkPreds...)
	out.TaskSub = append([]int(nil), k.TaskSub...)
	out.TaskPos = append([]int(nil), k.TaskPos...)
	return &out
}

// seedDeadlock swaps the first two slots of one TB, breaking the
// global-order subsequence property the rendezvous graph relies on.
func seedDeadlock(k *kernel.Kernel) *kernel.Kernel {
	m := cloneKernel(k)
	for _, tb := range m.TBs {
		if len(tb.Slots) >= 2 {
			tb.Slots[0], tb.Slots[1] = tb.Slots[1], tb.Slots[0]
			return m
		}
	}
	return m
}

func TestSeededDeadlockFlagged(t *testing.T) {
	k := compile(t, "ring-allreduce", 1, 8)
	m := seedDeadlock(k)
	r, err := analyze.Plan(m, analyze.Options{Checks: analyze.CheckDeadlock})
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatalf("seeded deadlock not flagged:\n%s", r)
	}
	found := false
	for _, d := range r.Diags {
		if d.Code == "deadlock" && d.Severity == analyze.SevError {
			found = true
			if !strings.Contains(d.Message, "→") && !strings.Contains(d.Message, "stranded") {
				t.Errorf("deadlock diagnostic lacks a primitive path: %s", d.Message)
			}
		}
	}
	if !found {
		t.Fatalf("no deadlock diagnostic in:\n%s", r)
	}
}

// seedHazard drops one read-after-write data dependency from the graph:
// the kernel's rendezvous/program-order edges no longer cover the pair,
// so the producer's write and the consumer's read race. This models the
// exact failure class the pass exists for — a scheduler that lost a
// dependency the DSL semantics require.
func seedHazard(t testing.TB, k *kernel.Kernel) *kernel.Kernel {
	t.Helper()
	m := cloneKernel(k)
	g := *k.Graph
	g.Deps = append([][]ir.TaskID(nil), k.Graph.Deps...)
	g.Dependents = append([][]ir.TaskID(nil), k.Graph.Dependents...)
	m.Graph = &g
	for ti := range g.Tasks {
		task := g.Tasks[ti]
		for di, d := range g.Deps[ti] {
			dep := g.Tasks[d]
			// A true RAW edge: dep delivers the very location task reads,
			// and the two primitives live on different TBs so nothing else
			// orders them.
			if dep.Dst != task.Src || dep.Chunk != task.Chunk {
				continue
			}
			if k.SendTB[ti] == k.RecvTB[d] {
				continue
			}
			deps := append([]ir.TaskID(nil), g.Deps[ti]...)
			g.Deps[ti] = append(deps[:di], deps[di+1:]...)
			var dependents []ir.TaskID
			for _, x := range g.Dependents[d] {
				if x != ir.TaskID(ti) {
					dependents = append(dependents, x)
				}
			}
			g.Dependents[d] = dependents
			return m
		}
	}
	t.Fatal("no droppable RAW dependency found")
	return m
}

func TestSeededHazardFlagged(t *testing.T) {
	k := compile(t, "ring-allgather", 1, 8)
	m := seedHazard(t, k)
	r, err := analyze.Plan(m, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean() {
		t.Fatalf("seeded hazard not flagged:\n%s", r)
	}
	found := false
	for _, d := range r.Diags {
		if strings.HasPrefix(d.Code, "hazard-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no hazard diagnostic in:\n%s", r)
	}
}

func TestNilKernelRejected(t *testing.T) {
	if _, err := analyze.Plan(nil, analyze.Options{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

// golden compares the report against testdata/<name>.golden,
// rewriting under -update (the trace golden convention).
func golden(t *testing.T, name string, r *analyze.Report) {
	t.Helper()
	got := r.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenDiagnostics(t *testing.T) {
	base := compile(t, "ring-allreduce", 1, 4)
	cases := []struct {
		name   string
		kernel *kernel.Kernel
		checks analyze.Checks
	}{
		{"clean", base, 0},
		{"deadlocked", seedDeadlock(base), analyze.CheckDeadlock},
		{"aliased-slot", seedAlias(base), analyze.CheckStructure},
		{"oversub-link", seedOversub(base), analyze.CheckPipelineInvariants | analyze.CheckFeasibility},
		{"dead-primitive", deadPrimitivePlan(t), analyze.CheckDeadCode | analyze.CheckCoverage},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r, err := analyze.Plan(tc.kernel, analyze.Options{Checks: tc.checks})
			if err != nil {
				t.Fatal(err)
			}
			golden(t, tc.name, r)
		})
	}
}

// seedAlias rewrites one slot's embedded transfer so it disagrees with
// the task table — the classic aliased-slot corruption.
func seedAlias(k *kernel.Kernel) *kernel.Kernel {
	m := cloneKernel(k)
	for _, tb := range m.TBs {
		for s, prim := range tb.Slots {
			p := prim
			p.Task.Chunk = (p.Task.Chunk + 1) % ir.ChunkID(m.Graph.Algo.NChunks)
			tb.Slots[s] = p
			_ = s
			return m
		}
	}
	return m
}

// seedOversub collapses the schedule echo into one sub-pipeline so
// every link's saturation window is violated at once.
func seedOversub(k *kernel.Kernel) *kernel.Kernel {
	m := cloneKernel(k)
	for t := range m.TaskSub {
		m.TaskSub[t] = 0
	}
	return m
}

// deadPrimitivePlan compiles a hand-written ReduceScatter whose extra
// transfer delivers a chunk to a rank that does not own it and feeds
// nothing downstream.
func deadPrimitivePlan(t testing.TB) *kernel.Kernel {
	t.Helper()
	algo := &ir.Algorithm{
		Name: "dead-rs", Op: ir.OpReduceScatter, NRanks: 4, NChunks: 4,
		Transfers: []ir.Transfer{
			// Chunk 0 reduced onto its owner, rank 0.
			{Src: 1, Dst: 0, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
			{Src: 2, Dst: 0, Step: 1, Chunk: 0, Type: ir.CommRecvReduceCopy},
			{Src: 3, Dst: 0, Step: 2, Chunk: 0, Type: ir.CommRecvReduceCopy},
			// Chunk 1 onto rank 1, and so on.
			{Src: 0, Dst: 1, Step: 0, Chunk: 1, Type: ir.CommRecvReduceCopy},
			{Src: 2, Dst: 1, Step: 1, Chunk: 1, Type: ir.CommRecvReduceCopy},
			{Src: 3, Dst: 1, Step: 2, Chunk: 1, Type: ir.CommRecvReduceCopy},
			{Src: 0, Dst: 2, Step: 0, Chunk: 2, Type: ir.CommRecvReduceCopy},
			{Src: 1, Dst: 2, Step: 1, Chunk: 2, Type: ir.CommRecvReduceCopy},
			{Src: 3, Dst: 2, Step: 2, Chunk: 2, Type: ir.CommRecvReduceCopy},
			{Src: 0, Dst: 3, Step: 0, Chunk: 3, Type: ir.CommRecvReduceCopy},
			{Src: 1, Dst: 3, Step: 1, Chunk: 3, Type: ir.CommRecvReduceCopy},
			{Src: 2, Dst: 3, Step: 2, Chunk: 3, Type: ir.CommRecvReduceCopy},
			// Dead: chunk 0 also shipped to rank 2, which never needs it.
			{Src: 0, Dst: 2, Step: 3, Chunk: 0, Type: ir.CommRecv},
		},
	}
	c, err := core.Compile(context.Background(), algo, topo.New(1, 4, topo.A100()), core.Options{})
	if err != nil {
		t.Fatalf("compile dead-rs: %v", err)
	}
	return c.Kernel
}

// BenchmarkPlanLargest analyzes the heaviest registered plan; the
// acceptance budget is 50ms per full analysis.
func BenchmarkPlanLargest(b *testing.B) {
	largest, most := "", 0
	for _, bl := range expert.Registry() {
		k := compile(b, bl.Name, 2, 8)
		if n := k.TotalSlots(); n > most {
			largest, most = bl.Name, n
		}
	}
	k := compile(b, largest, 2, 8)
	b.Logf("largest plan: %s, %d slots", largest, most)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := analyze.Plan(k, analyze.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Clean() {
			b.Fatalf("unexpected diagnostics:\n%s", r)
		}
	}
	b.StopTimer()
	if per := b.Elapsed() / time.Duration(b.N); per > 50*time.Millisecond {
		b.Fatalf("analysis took %v per plan, budget is 50ms", per)
	}
}

// ExampleReport_String shows the stable report format.
func ExampleReport_String() {
	r := &analyze.Report{Kernel: "demo"}
	fmt.Print(r.String())
	// Output: plan demo: 0 error(s), 0 warning(s), 0 note(s)
}

// TestDiagOrderGolden pins the canonical diagnostic order when several
// passes fire at the same schedule step: (severity, pass code, the
// primary task's step and rank, task ID, message). The diagnostics are
// attached deliberately scrambled — with same-step findings from two
// different passes interleaved — and the golden holds the one
// canonical rendering.
func TestDiagOrderGolden(t *testing.T) {
	k := compile(t, "ring-allreduce", 1, 4)
	g := k.Graph

	// Pick one task per (step, rank) pair used below.
	at := func(step, rank int) ir.TaskID {
		for id, task := range g.Tasks {
			if int(task.Step) == step && int(task.Src) == rank {
				return ir.TaskID(id)
			}
		}
		t.Fatalf("no task at step %d rank %d", step, rank)
		return 0
	}
	mk := func(code string, sev analyze.Severity, step, rank int) analyze.Diag {
		return analyze.Diag{Code: code, Severity: sev,
			Message: fmt.Sprintf("synthetic %s finding at step %d rank %d", code, step, rank),
			Tasks:   []ir.TaskID{at(step, rank)}}
	}
	r := &analyze.Report{Kernel: "order-demo"}
	// Scrambled: two passes ("alpha-pass", "beta-pass") firing at the
	// same steps, ranks out of order, a plan-wide note in between.
	r.Attach(g,
		mk("beta-pass", analyze.SevWarn, 2, 1),
		mk("alpha-pass", analyze.SevWarn, 2, 3),
		analyze.Diag{Code: "alpha-pass", Severity: analyze.SevWarn, Message: "plan-wide note"},
		mk("alpha-pass", analyze.SevWarn, 2, 1),
		mk("beta-pass", analyze.SevWarn, 0, 2),
		mk("alpha-pass", analyze.SevWarn, 0, 0),
		mk("beta-pass", analyze.SevError, 2, 2),
		mk("alpha-pass", analyze.SevWarn, 1, 2),
	)
	golden(t, "diag-order", r)

	// The order must be invariant under attachment order: re-attaching
	// the same findings one by one in reverse yields the same report.
	r2 := &analyze.Report{Kernel: "order-demo"}
	for i := len(r.Diags) - 1; i >= 0; i-- {
		r2.Attach(g, r.Diags[i])
	}
	if r2.String() != r.String() {
		t.Errorf("order depends on attachment sequence:\n--- bulk ---\n%s--- reversed ---\n%s", r.String(), r2.String())
	}
}
