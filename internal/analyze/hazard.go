package analyze

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
)

// The hazard pass asks: can two primitive invocations touch the same
// buffer location unordered? The happens-before relation of the runtime
// is exactly the inverse of the wait-for graph — if A waits on B, then
// B happens before A, and those semaphore/rendezvous/program-order
// edges are the ONLY ordering the runtime enforces (buffer mutexes
// prevent torn reads, not races). So the pass reuses the deadlock
// pass's graph: it topologically sorts the nodes, accumulates ancestor
// bitsets, and flags any same-location access pair (at least one a
// write, within one micro-batch — each micro-batch owns a disjoint
// buffer) where neither node is an ancestor of the other.
//
// The precondition is an acyclic graph with no stranded invocations;
// Plan() skips this pass otherwise, because a deadlocked plan has no
// meaningful happens-before order to judge.

// access is one buffer-location touch by a wait-for node.
type access struct {
	node  int32
	write bool
}

// locKey identifies a buffer location at one micro-batch.
type locKey struct {
	rank  ir.Rank
	chunk ir.ChunkID
	mb    int
}

func checkHazards(v *planView, opts Options) []Diag {
	w := buildWaitFor(v, opts.AnalysisMB)
	n := len(w.nodes)

	// Kahn topological order over the waits-for edges, dependencies
	// first: node A waiting on B means B must come earlier.
	indeg := make([]int32, n)
	for i := 0; i < n; i++ {
		for range w.out[i] {
			indeg[i]++
		}
	}
	rev := make([][]int32, n) // rev[b] = nodes that wait on b
	for i := 0; i < n; i++ {
		for _, b := range w.out[i] {
			rev[b] = append(rev[b], int32(i))
		}
	}
	order := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			order = append(order, int32(i))
		}
	}
	for qi := 0; qi < len(order); qi++ {
		b := order[qi]
		for _, a := range rev[b] {
			if indeg[a]--; indeg[a] == 0 {
				order = append(order, a)
			}
		}
	}
	if len(order) < n {
		// Cycle slipped through (caller skipped the deadlock pass):
		// happens-before is undefined, so report nothing rather than lie.
		return []Diag{{Code: "hazard", Severity: SevInfo,
			Message: "hazard analysis skipped: wait-for graph is cyclic"}}
	}

	// Ancestor bitsets in topological order: anc(a) = ⋃ anc(b) ∪ {b}
	// over all b that a waits on.
	words := (n + 63) / 64
	anc := make([]uint64, n*words)
	for _, a := range order {
		row := anc[int(a)*words : int(a+1)*words]
		for _, b := range w.out[a] {
			brow := anc[int(b)*words : int(b+1)*words]
			for wi := range row {
				row[wi] |= brow[wi]
			}
			row[b/64] |= 1 << uint(b%64)
		}
	}
	ordered := func(a, b int32) bool {
		return anc[int(a)*words+int(b/64)]&(1<<uint(b%64)) != 0 ||
			anc[int(b)*words+int(a/64)]&(1<<uint(a%64)) != 0
	}

	// Collect accesses: at the rendezvous meeting the send side reads
	// (Src, Chunk) and the recv side writes (Dst, Chunk) — an rrc also
	// reads what it merges into, but read+write at one node adds nothing
	// to the pair analysis.
	accs := make(map[locKey][]access)
	for i, node := range w.nodes {
		if node.task < 0 || node.sendK < 0 || node.recvK < 0 {
			continue
		}
		tr := v.g.Tasks[node.task].Transfer
		accs[locKey{tr.Src, tr.Chunk, node.sendMB}] = append(
			accs[locKey{tr.Src, tr.Chunk, node.sendMB}], access{int32(i), false})
		accs[locKey{tr.Dst, tr.Chunk, node.recvMB}] = append(
			accs[locKey{tr.Dst, tr.Chunk, node.recvMB}], access{int32(i), true})
	}
	keys := make([]locKey, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.chunk != b.chunk {
			return a.chunk < b.chunk
		}
		return a.mb < b.mb
	})

	var ds []Diag
	seen := make(map[[2]ir.TaskID]bool)
	for _, key := range keys {
		if key.mb != 0 {
			continue // micro-batches are isomorphic; one report per pair
		}
		list := accs[key]
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.node == b.node || (!a.write && !b.write) || ordered(a.node, b.node) {
					continue
				}
				ta, tb := w.nodes[a.node].task, w.nodes[b.node].task
				pair := [2]ir.TaskID{ta, tb}
				if tb < ta {
					pair = [2]ir.TaskID{tb, ta}
				}
				if seen[pair] {
					continue
				}
				seen[pair] = true
				kind := "hazard-rw"
				if a.write && b.write {
					kind = "hazard-ww"
				}
				ds = append(ds, Diag{Code: kind, Severity: SevError,
					Message: fmt.Sprintf("rank %d chunk %d: %s and %s are unordered under happens-before",
						key.rank, key.chunk, v.describeTask(pair[0]), v.describeTask(pair[1])),
					Tasks: []ir.TaskID{pair[0], pair[1]}})
			}
		}
	}
	return ds
}
