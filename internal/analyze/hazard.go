package analyze

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
)

// The hazard pass asks: can two primitive invocations touch the same
// buffer location unordered? The happens-before relation of the runtime
// is exactly the inverse of the wait-for graph — if A waits on B, then
// B happens before A, and those semaphore/rendezvous/program-order
// edges are the ONLY ordering the runtime enforces (buffer mutexes
// prevent torn reads, not races). So the pass reuses the deadlock
// pass's graph, topologically sorts it, and checks every same-location
// access pair (at least one a write, within one micro-batch — each
// micro-batch owns a disjoint buffer) for a happens-before path.
//
// Pairs are checked per location along the access list in topological
// order: each access must be ordered after the most recent write, and
// each write after every read since the previous write. Ordering is
// transitive, so these O(accesses) queries cover all O(accesses²)
// write-involving pairs — if every chain query holds, any earlier
// access reaches a later one through the intervening writes, and if
// some pair is unordered, one of the chain queries fails. Each query
// runs a backward search pruned by topological position; on a
// well-formed plan the dependency that orders the pair is a direct
// wait-for edge, so queries touch a handful of nodes and the pass
// stays near-linear in plan size (the previous all-pairs ancestor
// bitsets cost O(n²/64) time and space — gigabytes at 4096 ranks).
//
// The precondition is an acyclic graph with no stranded invocations;
// Plan() skips this pass otherwise, because a deadlocked plan has no
// meaningful happens-before order to judge.

// access is one buffer-location touch by a wait-for node.
type access struct {
	node  int32
	write bool
}

// locKey identifies a buffer location at one micro-batch.
type locKey struct {
	rank  ir.Rank
	chunk ir.ChunkID
	mb    int
}

// reachBudget bounds the total nodes expanded across all ordering
// queries of one pass — a backstop against adversarial plans whose
// ordering paths are all indirect; real plans order same-location
// accesses through direct dependency edges and use a tiny fraction.
const reachBudget = 1 << 22

func checkHazards(v *planView, opts Options) []Diag {
	w := buildWaitFor(v, opts.AnalysisMB)
	n := len(w.nodes)

	// Kahn topological order over the waits-for edges, dependencies
	// first: node A waiting on B means B must come earlier.
	indeg := make([]int32, n)
	for i := 0; i < n; i++ {
		for range w.out[i] {
			indeg[i]++
		}
	}
	rev := make([][]int32, n) // rev[b] = nodes that wait on b
	for i := 0; i < n; i++ {
		for _, b := range w.out[i] {
			rev[b] = append(rev[b], int32(i))
		}
	}
	order := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			order = append(order, int32(i))
		}
	}
	for qi := 0; qi < len(order); qi++ {
		b := order[qi]
		for _, a := range rev[b] {
			if indeg[a]--; indeg[a] == 0 {
				order = append(order, a)
			}
		}
	}
	if len(order) < n {
		// Cycle slipped through (caller skipped the deadlock pass):
		// happens-before is undefined, so report nothing rather than lie.
		return []Diag{{Code: "hazard", Severity: SevInfo,
			Message: "hazard analysis skipped: wait-for graph is cyclic"}}
	}
	pos := make([]int32, n)
	for i, nd := range order {
		pos[nd] = int32(i)
	}

	// ordered(a, b) reports a happens-before path a → b, given
	// pos[a] < pos[b]: search backward from b along the waits-for edges,
	// pruning nodes positioned before a (every edge strictly decreases
	// position, so nothing there can lead back to a). Visited stamps are
	// generation-counted to keep queries allocation-free.
	visited := make([]int32, n)
	gen := int32(0)
	queue := make([]int32, 0, 64)
	budget := reachBudget
	ordered := func(a, b int32) bool {
		gen++
		queue = append(queue[:0], b)
		visited[b] = gen
		for qi := 0; qi < len(queue); qi++ {
			for _, x := range w.out[queue[qi]] {
				if x == a {
					return true
				}
				if pos[x] <= pos[a] || visited[x] == gen {
					continue
				}
				visited[x] = gen
				queue = append(queue, x)
				budget--
			}
		}
		return false
	}

	// Collect accesses: at the rendezvous meeting the send side reads
	// (Src, Chunk) and the recv side writes (Dst, Chunk) — an rrc also
	// reads what it merges into, but read+write at one node adds nothing
	// to the pair analysis. Micro-batches are isomorphic, so only
	// micro-batch 0 locations are checked (one report per pair).
	accs := make(map[locKey][]access)
	for i, node := range w.nodes {
		if node.task < 0 || node.sendK < 0 || node.recvK < 0 {
			continue
		}
		tr := v.g.Tasks[node.task].Transfer
		if node.sendMB == 0 {
			k := locKey{tr.Src, tr.Chunk, 0}
			accs[k] = append(accs[k], access{int32(i), false})
		}
		if node.recvMB == 0 {
			k := locKey{tr.Dst, tr.Chunk, 0}
			accs[k] = append(accs[k], access{int32(i), true})
		}
	}
	keys := make([]locKey, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.chunk < b.chunk
	})

	var ds []Diag
	seen := make(map[[2]ir.TaskID]bool)
	report := func(key locKey, a, b int32, ww bool) {
		ta, tb := w.nodes[a].task, w.nodes[b].task
		pair := [2]ir.TaskID{ta, tb}
		if tb < ta {
			pair = [2]ir.TaskID{tb, ta}
		}
		if seen[pair] {
			return
		}
		seen[pair] = true
		kind := "hazard-rw"
		if ww {
			kind = "hazard-ww"
		}
		ds = append(ds, Diag{Code: kind, Severity: SevError,
			Message: fmt.Sprintf("rank %d chunk %d: %s and %s are unordered under happens-before",
				key.rank, key.chunk, v.describeTask(pair[0]), v.describeTask(pair[1])),
			Tasks: []ir.TaskID{pair[0], pair[1]}})
	}
	reads := make([]int32, 0, 16)
	for _, key := range keys {
		list := accs[key]
		sort.Slice(list, func(i, j int) bool { return pos[list[i].node] < pos[list[j].node] })
		lastWrite := int32(-1)
		reads = reads[:0]
		for _, ac := range list {
			if budget <= 0 {
				return append(ds, Diag{Code: "hazard", Severity: SevInfo,
					Message: "hazard analysis truncated: ordering-query budget exhausted; remaining access pairs unchecked"})
			}
			if ac.write {
				if lastWrite >= 0 && ac.node != lastWrite && !ordered(lastWrite, ac.node) {
					report(key, lastWrite, ac.node, true)
				}
				for _, r := range reads {
					if r != ac.node && !ordered(r, ac.node) {
						report(key, r, ac.node, false)
					}
				}
				lastWrite = ac.node
				reads = reads[:0]
			} else {
				if lastWrite >= 0 && ac.node != lastWrite && !ordered(lastWrite, ac.node) {
					report(key, lastWrite, ac.node, false)
				}
				reads = append(reads, ac.node)
			}
		}
	}
	return ds
}
