// Package trace derives the paper's resource-utilization metrics from
// simulation results: thread-block counts, communication-time and idle
// ratios (Table 3, §5.4), per-TB time breakdowns (Figs. 2 and 12), and
// link utilization (Table 1).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/sim"
)

// TBReport is one thread block's utilization summary.
type TBReport struct {
	ID    int
	Rank  int
	Label string
	// Occupancy is how long the TB holds SM resources: until its own
	// release for direct kernels (ResCCL releases TBs early), until
	// global completion for interpreted baselines (the kernel exits only
	// when every TB is done).
	Occupancy float64
	// Exec is time spent driving transfers; Sync is rendezvous /
	// dependency blocking while occupying the SM; Idle = Occupancy −
	// Exec (Sync ⊂ Idle: a syncing TB still wastes its SM).
	Exec, Sync, Idle float64
	// Saving is global completion − release: SM time returned to
	// computation by early release (the "Release/Saving" of Fig. 12).
	Saving float64
}

// IdleRatio is Idle/Occupancy.
func (r TBReport) IdleRatio() float64 {
	if r.Occupancy <= 0 {
		return 0
	}
	return r.Idle / r.Occupancy
}

// Utilization summarises one run's TB economics — a row of Table 3.
type Utilization struct {
	Backend   string
	Algorithm string
	// TBs is the per-GPU thread-block count (the paper's "# TB").
	TBs int
	// TotalTBs is the cluster-wide count.
	TotalTBs int
	// CommTime is mean Exec/Occupancy over TBs ("Comm Time").
	CommTime float64
	// AvgIdle and MaxIdle are the mean and max idle ratios.
	AvgIdle, MaxIdle float64
	// Reports holds the per-TB detail (sorted by ID).
	Reports []TBReport
}

// Analyze computes utilization metrics for a completed run.
func Analyze(k *kernel.Kernel, res *sim.Result, backendName string) *Utilization {
	early := k.Mode == kernel.ModeDirect
	u := &Utilization{
		Backend:   backendName,
		Algorithm: k.Name,
		TBs:       k.MaxTBsPerRank(),
		TotalTBs:  k.NTBs(),
	}
	var sumComm, sumIdle float64
	for _, tb := range res.TBs {
		occ := res.Completion
		if early {
			occ = tb.Release
		}
		rep := TBReport{
			ID:        tb.ID,
			Rank:      int(tb.Rank),
			Label:     tb.Label,
			Occupancy: occ,
			Exec:      tb.Exec,
			Sync:      tb.Sync,
			Idle:      occ - tb.Exec,
			Saving:    res.Completion - tb.Release,
		}
		if rep.Idle < 0 {
			rep.Idle = 0
		}
		u.Reports = append(u.Reports, rep)
		if occ > 0 {
			comm := tb.Exec / occ
			idle := rep.IdleRatio()
			sumComm += comm
			sumIdle += idle
			if idle > u.MaxIdle {
				u.MaxIdle = idle
			}
		}
	}
	if n := float64(len(u.Reports)); n > 0 {
		u.CommTime = sumComm / n
		u.AvgIdle = sumIdle / n
	}
	sort.Slice(u.Reports, func(i, j int) bool { return u.Reports[i].ID < u.Reports[j].ID })
	return u
}

// ExtraChannelIdle returns the mean idle ratio of thread blocks on
// "additional" channels (labels containing ".ch1/" — the manually added
// MSCCL channels of §2.2, Fig. 2(a)), and ok=false if the kernel has
// none.
func (u *Utilization) ExtraChannelIdle() (float64, bool) {
	var sum float64
	n := 0
	for _, r := range u.Reports {
		if strings.Contains(r.Label, ".ch1/") {
			sum += r.IdleRatio()
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// MaxSyncRatio returns the largest Sync/Occupancy over TBs — the
// synchronization-blocking metric of Fig. 2(b).
func (u *Utilization) MaxSyncRatio() float64 {
	m := 0.0
	for _, r := range u.Reports {
		if r.Occupancy > 0 {
			if s := r.Sync / r.Occupancy; s > m {
				m = s
			}
		}
	}
	return m
}

// String renders the utilization like a Table 3 row.
func (u *Utilization) String() string {
	return fmt.Sprintf("%s/%s: #TB=%d comm=%.1f%% avgIdle=%.1f%% maxIdle=%.1f%%",
		u.Backend, u.Algorithm, u.TBs, 100*u.CommTime, 100*u.AvgIdle, 100*u.MaxIdle)
}

// Breakdown is the Fig. 12 per-TB view: sync vs execution time plus the
// early-release saving, for the TBs of one rank (the figures plot rank
// 0's workers).
type Breakdown struct {
	Backend string
	TBs     []TBReport
}

// RankBreakdown extracts the Fig. 12 data for one rank.
func RankBreakdown(u *Utilization, rank int) Breakdown {
	b := Breakdown{Backend: u.Backend}
	for _, r := range u.Reports {
		if r.Rank == rank {
			b.TBs = append(b.TBs, r)
		}
	}
	return b
}
