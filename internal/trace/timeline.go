package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/resccl/resccl/internal/sim"
)

// RenderTimeline draws an ASCII Gantt chart of per-TB activity for a
// simulation run executed with RecordTimeline: one row per thread block
// ('█' transferring, '·' occupying an SM idle, ' ' released), with a
// time axis in milliseconds. Rows are grouped by rank. maxRanks > 0
// limits output to the first maxRanks ranks.
func RenderTimeline(res *sim.Result, width, maxRanks int) string {
	if width < 20 {
		width = 80
	}
	total := res.Completion
	if total <= 0 {
		return "(empty timeline)\n"
	}
	tbs := append([]sim.TBStats(nil), res.TBs...)
	sort.Slice(tbs, func(i, j int) bool {
		if tbs[i].Rank != tbs[j].Rank {
			return tbs[i].Rank < tbs[j].Rank
		}
		return tbs[i].ID < tbs[j].ID
	})

	labelW := 0
	for _, tb := range tbs {
		if l := len(tbLabel(tb)); l > labelW {
			labelW = l
		}
	}
	if labelW > 34 {
		labelW = 34
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.3f ms total, %d TBs ('█' transferring, '·' idle on SM, ' ' released)\n",
		total*1e3, len(tbs))
	// Fault lane: mark columns where any injected fault window is active,
	// then list the windows. Fault-free runs render exactly as before.
	if len(res.Faults) > 0 {
		var row strings.Builder
		for i := 0; i < width; i++ {
			at := total * (float64(i) + 0.5) / float64(width)
			mark := byte(' ')
			for _, f := range res.Faults {
				if f.Time <= at && at < f.End {
					mark = 'x'
					break
				}
			}
			row.WriteByte(mark)
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, "faults", row.String())
		for _, f := range res.Faults {
			fmt.Fprintf(&b, "%*s  %s\n", labelW, "", f.Detail)
		}
	}
	lastRank := -1
	shownRanks := 0
	for _, tb := range tbs {
		if int(tb.Rank) != lastRank {
			lastRank = int(tb.Rank)
			shownRanks++
			if maxRanks > 0 && shownRanks > maxRanks {
				fmt.Fprintf(&b, "%*s … (%d more ranks)\n", labelW, "", countRanks(tbs)-maxRanks)
				break
			}
			fmt.Fprintf(&b, "-- rank %d --\n", lastRank)
		}
		row := make([]byte, width)
		for i := range row {
			at := total * (float64(i) + 0.5) / float64(width)
			switch {
			case at > tb.Release:
				row[i] = ' ' // early-released: SM returned to compute
			case busyAt(tb.Segments, at):
				row[i] = 0 // placeholder for multi-byte rune below
			default:
				row[i] = '.'
			}
		}
		label := tbLabel(tb)
		if len(label) > labelW {
			label = label[:labelW]
		}
		fmt.Fprintf(&b, "%-*s |", labelW, label)
		for _, c := range row {
			if c == 0 {
				b.WriteRune('█')
			} else if c == '.' {
				b.WriteRune('·')
			} else {
				b.WriteByte(c)
			}
		}
		b.WriteString("|\n")
	}
	// Time axis.
	fmt.Fprintf(&b, "%-*s |%-*s%8.3fms|\n", labelW, "", width-10, "0", total*1e3)
	return b.String()
}

func tbLabel(tb sim.TBStats) string {
	return fmt.Sprintf("TB%-3d %s", tb.ID, tb.Label)
}

func countRanks(tbs []sim.TBStats) int {
	seen := map[int]bool{}
	for _, tb := range tbs {
		seen[int(tb.Rank)] = true
	}
	return len(seen)
}

// busyAt reports whether time t falls in a busy segment (segments are
// sorted by construction).
func busyAt(segs [][2]float64, t float64) bool {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid][1] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(segs) && segs[lo][0] <= t && t <= segs[lo][1]
}
