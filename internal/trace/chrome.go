package trace

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// BuildTimeline converts a simulation result into an observability
// timeline: one track per kernel thread block (including TBs that never
// fired), one track per communication link that carried traffic, and a
// fault lane when faults were injected. The result must come from a run
// configured with RecordTimeline; BuildTimeline returns nil when no
// instance records are present, so callers can gate export on it.
//
// Track contents inherit the simulator's determinism: instance records
// arrive in completion order and links are sorted by resource ID, so the
// same inputs always build byte-identical timelines.
func BuildTimeline(name string, k *kernel.Kernel, tp *topo.Topology, res *sim.Result) *obs.Timeline {
	if res == nil || len(res.Timeline) == 0 {
		return nil
	}
	tl := &obs.Timeline{Name: name, Completion: res.Completion}

	// Thread-block tracks, ascending kernel-local ID. Index by ID so
	// instance records append in O(1).
	tl.TBs = make([]obs.TBTrack, len(k.TBs))
	for i, tb := range k.TBs {
		tl.TBs[i] = obs.TBTrack{ID: tb.ID, Rank: int(tb.Rank), Label: tb.Label}
	}

	linkSlices := make(map[topo.LinkID][]obs.Slice)
	for _, span := range res.Timeline {
		slice := obs.Slice{
			Name:  fmt.Sprintf("t%d mb%d %d→%d", span.Task, span.MB, span.Src, span.Dst),
			Start: span.Start,
			End:   span.End,
		}
		if span.SendTB >= 0 && span.SendTB < len(tl.TBs) {
			tl.TBs[span.SendTB].Slices = append(tl.TBs[span.SendTB].Slices, slice)
		}
		if span.RecvTB >= 0 && span.RecvTB < len(tl.TBs) && span.RecvTB != span.SendTB {
			tl.TBs[span.RecvTB].Slices = append(tl.TBs[span.RecvTB].Slices, slice)
		}
		for _, l := range span.Links {
			linkSlices[l] = append(linkSlices[l], slice)
		}
	}

	links := make([]topo.LinkID, 0, len(linkSlices))
	for l := range linkSlices {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		tl.Links = append(tl.Links, obs.LinkTrack{Name: tp.DescribeResource(l), Slices: linkSlices[l]})
	}

	for _, f := range res.Faults {
		end := f.End
		if end <= f.Time {
			end = res.Completion
		}
		tl.Faults = append(tl.Faults, obs.FaultWindow{Kind: f.Kind, Detail: f.Detail, Start: f.Time, End: end})
	}
	return tl
}

// LinkBusyGauges publishes the result's per-link busy time into the
// metrics registry as "link.busy_seconds.<desc>" gauges, accumulating
// across runs. Nil-safe on both arguments.
func LinkBusyGauges(m *obs.Metrics, tp *topo.Topology, busy map[topo.LinkID]float64) {
	if m == nil || tp == nil {
		return
	}
	for l, sec := range busy {
		m.AddGauge("link.busy_seconds."+tp.DescribeResource(l), sec)
	}
}
