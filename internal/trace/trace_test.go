package trace

import (
	"context"
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

func analyzed(t *testing.T, b backend.Backend) (*Utilization, *sim.Result) {
	t.Helper()
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := b.Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 128 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(plan.Kernel, res, plan.Backend), res
}

func TestAnalyzeInvariants(t *testing.T) {
	for _, b := range []backend.Backend{backend.NewMSCCL(), backend.NewResCCL()} {
		u, res := analyzed(t, b)
		if u.TBs <= 0 || u.TotalTBs < u.TBs {
			t.Errorf("%s: implausible TB counts %d/%d", b.Name(), u.TBs, u.TotalTBs)
		}
		if u.CommTime <= 0 || u.CommTime > 1.0000001 {
			t.Errorf("%s: comm time %f out of range", b.Name(), u.CommTime)
		}
		if u.AvgIdle < 0 || u.AvgIdle > 1 || u.MaxIdle < u.AvgIdle {
			t.Errorf("%s: idle ratios avg=%f max=%f inconsistent", b.Name(), u.AvgIdle, u.MaxIdle)
		}
		for _, r := range u.Reports {
			if r.Occupancy <= 0 || r.Occupancy > res.Completion+1e-12 {
				t.Errorf("%s TB %d: occupancy %f out of range", b.Name(), r.ID, r.Occupancy)
			}
			if r.Exec+r.Idle > r.Occupancy*1.0000001+1e-12 {
				t.Errorf("%s TB %d: exec+idle exceeds occupancy", b.Name(), r.ID)
			}
			if r.Saving < -1e-12 {
				t.Errorf("%s TB %d: negative saving", b.Name(), r.ID)
			}
		}
		if !strings.Contains(u.String(), b.Name()) {
			t.Errorf("String() should mention the backend: %q", u.String())
		}
	}
}

// Early release: ResCCL TBs' occupancy ends at their own release, so
// some saving must be positive; MSCCL TBs occupy until completion, so
// saving-as-occupancy-difference shows up as idle instead.
func TestEarlyRelease(t *testing.T) {
	ru, _ := analyzed(t, backend.NewResCCL())
	anySaving := false
	for _, r := range ru.Reports {
		if r.Saving > 0 {
			anySaving = true
		}
	}
	if !anySaving {
		t.Error("ResCCL should release at least one TB before global completion")
	}
	mu, mres := analyzed(t, backend.NewMSCCL())
	for _, r := range mu.Reports {
		if r.Occupancy != mres.Completion {
			t.Errorf("MSCCL TB %d should occupy until completion", r.ID)
		}
	}
}

// MSCCL's manually added channels must be identifiable and mostly idle
// (the Fig. 2(a) phenomenon).
func TestExtraChannelIdle(t *testing.T) {
	mu, _ := analyzed(t, backend.NewMSCCL())
	idle, ok := mu.ExtraChannelIdle()
	if !ok {
		t.Fatal("MSCCL expert plan should have extra channels")
	}
	if idle <= mu.CommTime {
		t.Logf("extra-channel idle %.1f%% (comm %.1f%%)", 100*idle, 100*mu.CommTime)
	}
	if idle <= 0 || idle > 1 {
		t.Errorf("extra-channel idle %f out of range", idle)
	}
	ru, _ := analyzed(t, backend.NewResCCL())
	if _, ok := ru.ExtraChannelIdle(); ok {
		t.Error("ResCCL plans have no extra channels")
	}
}

func TestRankBreakdown(t *testing.T) {
	u, _ := analyzed(t, backend.NewResCCL())
	b := RankBreakdown(u, 0)
	if len(b.TBs) == 0 {
		t.Fatal("rank 0 must host TBs")
	}
	for _, r := range b.TBs {
		if r.Rank != 0 {
			t.Errorf("TB %d: rank %d in rank-0 breakdown", r.ID, r.Rank)
		}
	}
	total := 0
	for r := 0; r < 8; r++ {
		total += len(RankBreakdown(u, r).TBs)
	}
	if total != len(u.Reports) {
		t.Errorf("per-rank breakdowns cover %d of %d TBs", total, len(u.Reports))
	}
}

func TestMaxSyncRatio(t *testing.T) {
	u, _ := analyzed(t, backend.NewMSCCL())
	s := u.MaxSyncRatio()
	if s <= 0 || s > 1 {
		t.Errorf("max sync ratio %f out of range", s)
	}
}

func TestIdleRatioZeroOccupancy(t *testing.T) {
	r := TBReport{}
	if r.IdleRatio() != 0 {
		t.Error("zero occupancy must yield zero idle ratio")
	}
	_ = ir.Rank(0)
}

func TestRenderTimeline(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 16 << 20, ChunkBytes: 1 << 20, RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(res, 60, 2)
	if !strings.Contains(out, "rank 0") || !strings.Contains(out, "█") {
		t.Errorf("timeline missing expected content:\n%s", out)
	}
	if !strings.Contains(out, "more ranks") {
		t.Errorf("timeline should elide ranks beyond the limit:\n%s", out)
	}
	// Degenerate inputs stay safe.
	if RenderTimeline(&sim.Result{}, 0, 0) == "" {
		t.Error("empty result should render a placeholder")
	}
}
