package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// meshRun compiles a 4-GPU mesh AllReduce and simulates it with the
// timeline recorder on. Everything is deterministic: fixed algorithm,
// fixed topology, fixed buffer.
func meshRun(t *testing.T) (*obs.Timeline, *core.Compiled, *topo.Topology, *sim.Result) {
	t.Helper()
	algo, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.New(1, 4, topo.A100())
	c, err := core.Compile(context.Background(), algo, tp, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Topo: tp, Kernel: c.Kernel, BufferBytes: 8 << 20, ChunkBytes: 1 << 20,
		RecordTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := BuildTimeline("resccl/mesh-allreduce", c.Kernel, tp, res)
	if tl == nil {
		t.Fatal("BuildTimeline returned nil for a recorded run")
	}
	return tl, c, tp, res
}

func TestBuildTimelineTracks(t *testing.T) {
	tl, c, _, res := meshRun(t)
	if len(tl.TBs) != len(c.Kernel.TBs) {
		t.Errorf("TB tracks = %d, want one per thread block (%d)", len(tl.TBs), len(c.Kernel.TBs))
	}
	if len(tl.Links) == 0 {
		t.Error("no link tracks")
	}
	if tl.Completion != res.Completion {
		t.Errorf("completion = %v, want %v", tl.Completion, res.Completion)
	}
	var slices int
	for _, tb := range tl.TBs {
		slices += len(tb.Slices)
	}
	if slices == 0 {
		t.Error("no TB slices recorded")
	}
}

func TestBuildTimelineNilResult(t *testing.T) {
	if tl := BuildTimeline("x", nil, nil, nil); tl != nil {
		t.Error("nil result should yield nil timeline")
	}
	if tl := BuildTimeline("x", nil, nil, &sim.Result{}); tl != nil {
		t.Error("empty timeline should yield nil")
	}
}

// TestChromeGolden renders the deterministic mesh run against a checked
// in golden file. Run with -update to regenerate after intentional
// format changes.
func TestChromeGolden(t *testing.T) {
	tl, _, _, _ := meshRun(t)
	tr := obs.NewTrace()
	tr.AddTimeline(tl)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace output is not valid JSON")
	}

	golden := filepath.Join("testdata", "mesh_allreduce_4.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/trace -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from golden file %s (len %d vs %d); regenerate with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}

// TestChromeDeterministic renders the same run twice and demands
// byte-identical output — the contract -trace-out relies on.
func TestChromeDeterministic(t *testing.T) {
	render := func() []byte {
		tl, _, _, _ := meshRun(t)
		tr := obs.NewTrace()
		tr.AddTimeline(tl)
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("two identical runs produced different trace bytes")
	}
}

func TestLinkBusyGauges(t *testing.T) {
	_, _, tp, res := meshRun(t)
	m := obs.NewMetrics()
	LinkBusyGauges(m, tp, res.LinkBusy)
	snap := m.Snapshot()
	if len(snap.Gauges) != len(res.LinkBusy) {
		t.Errorf("gauges = %d, want one per busy link (%d)", len(snap.Gauges), len(res.LinkBusy))
	}
	for name := range snap.Gauges {
		if len(name) < len("link.busy_seconds.") || name[:len("link.busy_seconds.")] != "link.busy_seconds." {
			t.Errorf("gauge %q lacks link.busy_seconds. prefix", name)
		}
	}
	// Nil-safety.
	LinkBusyGauges(nil, tp, res.LinkBusy)
	LinkBusyGauges(m, nil, res.LinkBusy)
}
