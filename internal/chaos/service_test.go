package chaos

import (
	"runtime"
	"testing"
	"time"
)

// TestChaosService is the service-mode CI gate: seeded storms of
// concurrent mixed requests — mid-flight cancellations, tiny deadlines,
// tenant floods and drain-under-load — against randomly configured
// services. Every request must succeed or fail with a typed admission
// error; no hangs, no cache corruption, no goroutine leaks.
func TestChaosService(t *testing.T) {
	before := runtime.NumGoroutine()
	cases := 120
	if testing.Short() {
		cases = 40
	}
	rep := RunService(ServiceConfig{Seed: 42, Cases: cases, Watchdog: 30 * time.Second})
	for _, f := range rep.Failures {
		t.Errorf("case %d (%s): %v", f.Case, f.Desc, f.Err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("%d of %d cases violated the service contract", len(rep.Failures), rep.Cases)
	}
	// The sweep must exercise the whole admission surface, not pass
	// vacuously: completions, sheds, cancellations, deadline expiries
	// and mid-storm drains must all occur.
	if rep.Completed == 0 || rep.Shed == 0 || rep.Drained == 0 {
		t.Fatalf("sweep exercised too little: %+v", rep)
	}
	if rep.Cancelled+rep.DeadlineExpired == 0 {
		t.Logf("note: no cancellations or deadline expiries this sweep: %+v", rep)
	}
	t.Logf("chaos service: %d cases, %d requests — %d completed, %d shed, %d cancelled, %d deadline-expired, %d drained mid-storm",
		rep.Cases, rep.Requests, rep.Completed, rep.Shed, rep.Cancelled, rep.DeadlineExpired, rep.Drained)

	// Goroutine-leak check over the whole sweep: every service must
	// unwind completely once drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after sweep: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosServiceRequestMixDeterministic: the request mix derived from
// a seed must be identical across runs, so a failing case replays. The
// outcome classification is inherently timing-dependent (that is the
// point of the storm); the generator must not be.
func TestChaosServiceRequestMixDeterministic(t *testing.T) {
	cfg := ServiceConfig{Seed: 7, Cases: 10, Watchdog: 30 * time.Second}
	a, b := RunService(cfg), RunService(cfg)
	if a.Cases != b.Cases || a.Requests != b.Requests {
		t.Fatalf("request mix differs across identical sweeps: %+v vs %+v", a, b)
	}
	if len(a.Failures) != 0 || len(b.Failures) != 0 {
		t.Fatalf("contract violations in deterministic sweep: %+v / %+v", a.Failures, b.Failures)
	}
}
