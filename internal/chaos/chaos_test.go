package chaos

import (
	"testing"
	"time"
)

// TestChaosSmoke is the CI chaos gate: a fixed-seed sweep asserting the
// recovery contract — every case either completes with the verifier
// passing or aborts with a typed error; no hangs, no silent corruption.
func TestChaosSmoke(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 80
	}
	rep := Run(Config{Seed: 42, Cases: cases, Watchdog: 5 * time.Second})
	for _, f := range rep.Failures {
		t.Errorf("case %d (%s): %v", f.Case, f.Desc, f.Err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("%d of %d cases violated the recovery contract", len(rep.Failures), rep.Cases)
	}
	// The sweep must actually exercise the machinery, not just pass
	// vacuously: demand completions, replans and typed aborts all occur.
	if rep.Verified == 0 || rep.Replanned == 0 {
		t.Fatalf("sweep exercised too little: %+v", rep)
	}
	if rep.Partitioned+rep.Unrecoverable == 0 {
		t.Logf("note: no typed aborts in this sweep: %+v", rep)
	}
	t.Logf("chaos: %d cases — %d verified (%d replanned, %d degraded), %d partitioned, %d unrecoverable",
		rep.Cases, rep.Verified, rep.Replanned, rep.Degraded, rep.Partitioned, rep.Unrecoverable)
}

// TestChaosDeterministic: equal seeds must classify every case
// identically — the harness itself honours the repo's determinism bar.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Cases: 30, Watchdog: 5 * time.Second}
	a, b := Run(cfg), Run(cfg)
	if a.Verified != b.Verified || a.Replanned != b.Replanned ||
		a.Partitioned != b.Partitioned || a.Unrecoverable != b.Unrecoverable ||
		len(a.Failures) != len(b.Failures) {
		t.Fatalf("reports differ across identical sweeps:\n%+v\nvs\n%+v", a, b)
	}
}
