// Package chaos is the property-based fault harness: a seeded sweep
// over random topologies × collectives × fault schedules (transient and
// permanent), asserting the system-level recovery contract on every
// case —
//
//   - the run completes and the semantic verifier (internal/verify)
//     proves its trace and buffers, or
//   - it fails with a typed, actionable error (rt.ErrPartitioned,
//     rt.ErrUnrecoverable), and
//   - it never hangs (the runtime watchdog bounds every case) and never
//     silently corrupts (an unverified completion is a harness failure).
//
// Everything derives from Config.Seed, so a failing case replays
// exactly by number.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/rt"
	"github.com/resccl/resccl/internal/topo"
)

// Config parameterises a sweep.
type Config struct {
	// Seed drives every random choice; equal configs replay equal cases.
	Seed int64
	// Cases is the number of cases to run.
	Cases int
	// Watchdog bounds each case's no-progress window (default 2s).
	Watchdog time.Duration
}

// Failure records one violated contract.
type Failure struct {
	Case int
	Desc string
	Err  error
}

// Report summarises a sweep.
type Report struct {
	Cases int
	// Verified counts runs that completed with the verifier passing;
	// Replanned is the subset that recovered through at least one
	// replan. Degraded counts runs that fell back to sequential
	// sub-pipelines.
	Verified, Replanned, Degraded int
	// Partitioned and Unrecoverable count typed, acceptable aborts.
	Partitioned, Unrecoverable int
	// Failures lists contract violations: hangs, untyped errors,
	// unverified completions. Empty on a healthy system.
	Failures []Failure
}

// Run executes the sweep. It never returns an error itself: violations
// are data (Report.Failures), so a test can print every one.
func Run(cfg Config) Report {
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = 2 * time.Second
	}
	rep := Report{Cases: cfg.Cases}
	for i := 0; i < cfg.Cases; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9e3779b9))
		desc, res, err := runCase(rng, cfg.Watchdog)
		switch {
		case err == nil:
			if verr := res.Verify(); verr != nil {
				rep.Failures = append(rep.Failures, Failure{Case: i, Desc: desc,
					Err: fmt.Errorf("completed but failed verification: %w", verr)})
				continue
			}
			rep.Verified++
			if len(res.ReplanEvents) > 0 {
				rep.Replanned++
			}
			if len(res.DegradedSubs) > 0 {
				rep.Degraded++
			}
		case errors.Is(err, rt.ErrPartitioned):
			rep.Partitioned++
		case errors.Is(err, rt.ErrUnrecoverable):
			rep.Unrecoverable++
		case errors.Is(err, rt.ErrDeadlock):
			rep.Failures = append(rep.Failures, Failure{Case: i, Desc: desc,
				Err: fmt.Errorf("hang (watchdog): %w", err)})
		default:
			rep.Failures = append(rep.Failures, Failure{Case: i, Desc: desc,
				Err: fmt.Errorf("untyped failure: %w", err)})
		}
	}
	return rep
}

// shape is one topology template.
type shape struct {
	nodes, gpus, nics int
	name              string
}

var shapes = []shape{
	{1, 4, 0, "1x4"},
	{1, 8, 0, "1x8"},
	{2, 2, 2, "2x2/nic-per-gpu"},
	{2, 2, 0, "2x2/shared-nic"},
	{2, 4, 4, "2x4/nic-per-gpu"},
}

// runCase builds and executes one random case. The returned desc names
// the scenario for failure reports.
func runCase(rng *rand.Rand, watchdog time.Duration) (string, *rt.Result, error) {
	sh := shapes[rng.Intn(len(shapes))]
	var opts []topo.Option
	if sh.nics > 0 {
		opts = append(opts, topo.WithNICs(sh.nics))
	}
	tp := topo.New(sh.nodes, sh.gpus, topo.A100(), opts...)
	n := tp.NRanks()

	algo, err := randomAlgo(rng, sh, n)
	if err != nil {
		return sh.name, nil, fmt.Errorf("chaos: plan generation: %w", err)
	}
	sched := randomFaults(rng, tp)
	nMB := 1 + rng.Intn(2)
	// Random protocol tier, auto included: replanned cases must carry
	// every tier through the topo.Carve recompile, and auto must stay
	// the identity. Drawn last so earlier seeds' draws keep their
	// historical values within a case.
	proto := ir.Protocol(rng.Intn(4))
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp, Protocol: proto})
	if err != nil {
		return sh.name, nil, fmt.Errorf("chaos: compile %s on %s: %w", algo.Name, sh.name, err)
	}

	desc := fmt.Sprintf("%s %s proto=%s faults=%d", sh.name, algo.Name, plan.Kernel.Protocol, len(sched.Events))
	res, err := rt.Execute(rt.Config{
		Kernel:       plan.Kernel,
		MicroBatches: nMB,
		Watchdog:     watchdog,
		Faults:       sched,
		Recovery:     rt.RecoveryPolicy{MaxRetries: 3, Backoff: 10 * time.Microsecond},
	})
	return desc, res, err
}

func randomAlgo(rng *rand.Rand, sh shape, n int) (*ir.Algorithm, error) {
	kind := rng.Intn(7)
	switch kind {
	case 0:
		return expert.MeshAllReduce(n)
	case 1:
		return expert.RingAllGather(n)
	case 2:
		return expert.RingReduceScatter(n)
	case 3:
		return expert.BinomialBroadcast(n)
	case 4:
		return expert.DirectAllToAll(n)
	case 5:
		if sh.nodes > 1 {
			return expert.HMAllReduce(sh.nodes, sh.gpus)
		}
		return expert.RingAllReduce(n)
	default:
		if sh.nodes > 1 {
			return expert.HMAllGather(sh.nodes, sh.gpus)
		}
		return expert.TreeAllReduce(n)
	}
}

// randomFaults mixes transient windows with permanent failures. Roughly
// a third of cases are transient-only, half add dead links, the rest
// kill a rank.
func randomFaults(rng *rand.Rand, tp *topo.Topology) *fault.Schedule {
	s := fault.Generate(tp, fault.Params{
		Seed:    rng.Int63(),
		N:       rng.Intn(4),
		Horizon: 1e-3,
	})
	switch roll := rng.Float64(); {
	case roll < 0.35:
		// transient-only
	case roll < 0.85:
		for k := 1 + rng.Intn(2); k > 0; k-- {
			s.Events = append(s.Events, fault.LinkOut(randPathResource(rng, tp), 0))
		}
	default:
		s.Events = append(s.Events, fault.RankOut(ir.Rank(rng.Intn(tp.NRanks())), 0))
	}
	return s
}

// randPathResource picks a resource from a random rank pair's path, so
// permanent failures always land on links collectives can traverse.
func randPathResource(rng *rand.Rand, tp *topo.Topology) topo.ResourceID {
	n := tp.NRanks()
	src := ir.Rank(rng.Intn(n))
	dst := ir.Rank(rng.Intn(n - 1))
	if dst >= src {
		dst++
	}
	res := tp.Path(src, dst).Resources
	return res[rng.Intn(len(res))]
}
