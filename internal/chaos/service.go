package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/serve"
)

// ServiceConfig parameterises a service-mode sweep: seeded storms of
// concurrent mixed requests against a randomly configured serve.Service
// — mid-flight cancellations, tiny deadlines, tenant floods and
// drain-under-load — asserting the admission contract on every request.
type ServiceConfig struct {
	// Seed drives every random choice; equal configs replay equal cases.
	Seed int64
	// Cases is the number of independent service storms to run.
	Cases int
	// Watchdog bounds one case's wall time (default 10s). A case that
	// exceeds it is reported as a hang.
	Watchdog time.Duration
}

// ServiceReport summarises a service-mode sweep.
type ServiceReport struct {
	Cases int
	// Requests is the total number of requests issued across all cases.
	Requests int
	// Completed / Shed / Cancelled / DeadlineExpired partition the
	// non-failing request outcomes. Shed counts typed admission
	// rejections (overload, quota, draining).
	Completed, Shed, Cancelled, DeadlineExpired int
	// Drained counts cases that drained the service mid-storm.
	Drained int
	// Failures lists contract violations: untyped errors, hangs,
	// post-case corruption. Empty on a healthy system.
	Failures []Failure
}

// jitter wraps a backend with a small seeded compile delay so requests
// genuinely overlap inside the service; cancellation is honoured while
// sleeping. It is cacheable (Configurer), so storms also exercise the
// singleflight path under concurrency.
type jitter struct {
	inner  backend.Backend
	delays []time.Duration
	next   *atomic.Int64
}

func (j *jitter) Name() string { return "jitter-" + j.inner.Name() }

func (j *jitter) CompileConfig() (string, bool) { return "jitter:" + j.inner.Name(), true }

func (j *jitter) Compile(ctx context.Context, req backend.Request) (*backend.Plan, error) {
	d := j.delays[int(j.next.Add(1))%len(j.delays)]
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return j.inner.Compile(ctx, req)
}

// serviceShapes are the request templates a storm samples from — small
// enough to compile in well under a millisecond, varied enough to
// populate several cache entries.
var serviceShapes = []serve.CompileRequest{
	{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4},
	{Algorithm: "ring-allgather", Nodes: 1, GPUsPerNode: 8},
	{Algorithm: "tree-allreduce", Nodes: 1, GPUsPerNode: 4, Backend: "nccl"},
	{Algorithm: "hm-allreduce", Nodes: 2, GPUsPerNode: 2, Fabric: "clos"},
	{Algorithm: "hm-allgather", Nodes: 2, GPUsPerNode: 2, Fabric: "rail", Backend: "msccl"},
	{Algorithm: "ring-reducescatter", Nodes: 1, GPUsPerNode: 2, Protocol: "ll"},
}

// RunService executes the service-mode sweep. Like Run, it never
// returns an error itself: violations are data in the report.
func RunService(cfg ServiceConfig) ServiceReport {
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = 10 * time.Second
	}
	rep := ServiceReport{Cases: cfg.Cases}
	for i := 0; i < cfg.Cases; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9e3779b9))
		done := make(chan caseResult, 1)
		go func() { done <- runServiceCase(rng) }()
		select {
		case res := <-done:
			rep.Requests += res.requests
			rep.Completed += res.completed
			rep.Shed += res.shed
			rep.Cancelled += res.cancelled
			rep.DeadlineExpired += res.deadline
			if res.drained {
				rep.Drained++
			}
			for _, err := range res.violations {
				rep.Failures = append(rep.Failures, Failure{Case: i, Desc: res.desc, Err: err})
			}
		case <-time.After(cfg.Watchdog):
			rep.Failures = append(rep.Failures, Failure{Case: i, Desc: "service storm",
				Err: fmt.Errorf("hang: case exceeded %v watchdog", cfg.Watchdog)})
		}
	}
	return rep
}

type caseResult struct {
	desc       string
	requests   int
	completed  int
	shed       int
	cancelled  int
	deadline   int
	drained    bool
	violations []error
}

// runServiceCase builds one randomly configured service, storms it with
// concurrent mixed requests (some cancelled mid-flight, some under tiny
// deadlines), optionally drains it mid-storm, and checks the
// success-or-typed-error contract plus post-case invariants.
func runServiceCase(rng *rand.Rand) caseResult {
	workers := 1 + rng.Intn(4)
	maxQueue := 1 + rng.Intn(8)
	quota := []int{-1, 2, 4}[rng.Intn(3)]
	queueBudget := []time.Duration{-1, 5 * time.Millisecond, 50 * time.Millisecond}[rng.Intn(3)]
	maxEntries := []int{0, 4, 8}[rng.Intn(3)]

	delays := make([]time.Duration, 16)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	var seq atomic.Int64
	svc := serve.New(serve.Config{
		Workers:         workers,
		MaxQueue:        maxQueue,
		TenantQuota:     quota,
		QueueBudget:     queueBudget,
		DefaultDeadline: 2 * time.Second,
		CacheConfig:     backend.CacheConfig{MaxEntries: maxEntries, Shards: 1 + rng.Intn(2)},
		WrapBackend: func(b backend.Backend) backend.Backend {
			return &jitter{inner: b, delays: delays, next: &seq}
		},
	})

	nReq := 8 + rng.Intn(17) // 8..24
	nTenants := 1 + rng.Intn(4)
	drainMid := rng.Intn(2) == 1
	res := caseResult{
		desc: fmt.Sprintf("storm workers=%d queue=%d quota=%d budget=%v reqs=%d tenants=%d drain=%v",
			workers, maxQueue, quota, queueBudget, nReq, nTenants, drainMid),
		requests: nReq,
	}

	type launch struct {
		kind     int // 0 compile, 1 simulate, 2 analyze
		req      serve.CompileRequest
		cancelAt time.Duration // >0: cancel the caller ctx after this delay
	}
	launches := make([]launch, nReq)
	for i := range launches {
		l := launch{
			kind: rng.Intn(3),
			req:  serviceShapes[rng.Intn(len(serviceShapes))],
		}
		l.req.Tenant = fmt.Sprintf("tenant-%d", rng.Intn(nTenants))
		switch rng.Intn(6) {
		case 0: // mid-flight caller cancellation
			l.cancelAt = time.Duration(rng.Intn(3)) * time.Millisecond
		case 1: // deadline so tight it usually expires in queue or jitter
			l.req.DeadlineMS = 1
		}
		launches[i] = l
	}

	errs := make([]error, nReq)
	var wg sync.WaitGroup
	for i, l := range launches {
		wg.Add(1)
		go func(i int, l launch) {
			defer wg.Done()
			ctx := context.Background()
			if l.cancelAt > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				time.AfterFunc(l.cancelAt, cancel)
				defer cancel()
			}
			var err error
			switch l.kind {
			case 0:
				_, err = svc.Compile(ctx, &l.req)
			case 1:
				_, err = svc.Simulate(ctx, &serve.SimulateRequest{CompileRequest: l.req, BufferBytes: 1 << 20})
			default:
				_, err = svc.Analyze(ctx, &serve.AnalyzeRequest{CompileRequest: l.req})
			}
			errs[i] = err
		}(i, l)
	}

	if drainMid {
		time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
		drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(20))*time.Millisecond)
		if err := svc.Drain(drainCtx); err != nil {
			res.violations = append(res.violations, fmt.Errorf("drain under load: %w", err))
		}
		cancel()
		res.drained = true
	}
	wg.Wait()

	for i, err := range errs {
		switch {
		case err == nil:
			res.completed++
		case errors.Is(err, serve.ErrOverloaded),
			errors.Is(err, serve.ErrQuotaExceeded),
			errors.Is(err, serve.ErrDraining):
			res.shed++
		case errors.Is(err, context.DeadlineExceeded):
			res.deadline++
		case errors.Is(err, context.Canceled):
			res.cancelled++
		default:
			res.violations = append(res.violations, fmt.Errorf("request %d: untyped error: %w", i, err))
		}
	}

	// Every storm ends with a full drain; afterwards nothing may remain
	// in flight and new work must shed with the draining error.
	finalCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(finalCtx); err != nil {
		res.violations = append(res.violations, fmt.Errorf("final drain: %w", err))
	}
	if n := svc.InFlight(); n != 0 {
		res.violations = append(res.violations, fmt.Errorf("%d request(s) still in flight after drain", n))
	}
	late := serviceShapes[0]
	if _, err := svc.Compile(context.Background(), &late); !errors.Is(err, serve.ErrDraining) {
		res.violations = append(res.violations, fmt.Errorf("post-drain admission returned %v, want ErrDraining", err))
	}

	// Cache-corruption checks: counters must be coherent and residency
	// must respect the configured bound.
	st := svc.CacheStats()
	if st.Entries < 0 || st.Bytes < 0 || st.Hits < 0 || st.Misses < 0 {
		res.violations = append(res.violations, fmt.Errorf("cache stats went negative: %+v", st))
	}
	if maxEntries > 0 && st.Entries > maxEntries {
		res.violations = append(res.violations,
			fmt.Errorf("cache holds %d entries, bound is %d", st.Entries, maxEntries))
	}

	// Metrics must agree with observed outcomes.
	m := svc.Metrics()
	if got := m.Counter("serve.completed"); got != int64(res.completed) {
		res.violations = append(res.violations,
			fmt.Errorf("serve.completed=%d but %d requests succeeded", got, res.completed))
	}
	return res
}
