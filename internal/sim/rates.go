package sim

import (
	"github.com/resccl/resccl/internal/topo"
)

// Rate computation: flows share resources max-min (progressive filling)
// subject to two constraints from the paper's cost model:
//
//   - each flow's rate is capped by the driving thread block's
//     capability (TBCap);
//   - a serializing link whose aggregate demanded capability exceeds its
//     bandwidth by factor z suffers the Eq. 1 contention penalty: its
//     effective capacity is divided by 1 + γ·L(z), L(z) = min(z−1, 1)².
//
// Rates are recomputed only for the connected component of flows reached
// through shared resources, so the cost of a flow arrival/departure is
// proportional to the local contention, not the cluster size. All
// scratch state lives in the sim and is generation-stamped instead of
// cleared, keeping the hot path allocation-free.

type rateScratch struct {
	gen int32
	// Per-task component membership and index.
	flowGen []int32
	flowIdx []int32
	// Per-resource component membership.
	resGen []int32
	// Component working sets (reused).
	flows     []gid
	resources []topo.ResourceID
	queue     []topo.ResourceID
	rates     []float64
	frozen    []bool
	effCap    []float64
	// caps[i] is flowCap(flows[i]), computed once per maxMin round
	// instead of once per progressive-filling iteration.
	caps []float64
	// resFlat/resOff give, for component resource i, the component flow
	// indices on it: resFlat[resOff[i]:resOff[i+1]]. Precomputed so the
	// filling loops stop re-walking s.resFlows[r] and re-translating
	// global ids through flowIdx.
	resFlat []int32
	resOff  []int32
}

func (rs *rateScratch) init(nTasks, nResources int) {
	rs.flowGen = make([]int32, nTasks)
	rs.flowIdx = make([]int32, nTasks)
	rs.resGen = make([]int32, nResources)
}

// recomputeComponent recomputes rates for the component containing task
// t's flow.
func (s *sim) recomputeComponent(t gid) {
	s.recomputeAround(s.tasks[t].resources)
}

// recomputeAround recomputes rates for all flows transitively sharing
// resources with the given seed set.
func (s *sim) recomputeAround(seed []topo.ResourceID) {
	rs := &s.scratch
	rs.gen++
	rs.flows = rs.flows[:0]
	rs.resources = rs.resources[:0]
	rs.queue = rs.queue[:0]

	for _, r := range seed {
		if rs.resGen[r] != rs.gen {
			rs.resGen[r] = rs.gen
			rs.queue = append(rs.queue, r)
		}
	}
	for len(rs.queue) > 0 {
		r := rs.queue[len(rs.queue)-1]
		rs.queue = rs.queue[:len(rs.queue)-1]
		rs.resources = append(rs.resources, r)
		for _, f := range s.resFlows[r] {
			if rs.flowGen[f] == rs.gen {
				continue
			}
			rs.flowGen[f] = rs.gen
			rs.flowIdx[f] = int32(len(rs.flows))
			rs.flows = append(rs.flows, f)
			for _, fr := range s.tasks[f].resources {
				if rs.resGen[fr] != rs.gen {
					rs.resGen[fr] = rs.gen
					rs.queue = append(rs.queue, fr)
				}
			}
		}
	}
	if len(rs.flows) == 0 {
		return
	}
	// Charge elapsed bytes at the old rates before changing anything.
	for _, f := range rs.flows {
		s.advanceFlow(f)
	}
	s.maxMin()
	for i, f := range rs.flows {
		ts := &s.tasks[f]
		if !nearlyEqual(ts.rate, rs.rates[i]) || ts.rate == 0 {
			ts.rate = rs.rates[i]
			s.scheduleDataDone(f)
		}
	}
}

func nearlyEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale
}

// maxMin runs progressive filling over the scratch component, leaving
// the per-flow rates in s.scratch.rates (parallel to s.scratch.flows).
func (s *sim) maxMin() {
	rs := &s.scratch
	nf := len(rs.flows)
	nr := len(rs.resources)
	rs.rates = resize(rs.rates, nf)
	rs.frozen = resizeBool(rs.frozen, nf)
	rs.effCap = grow(rs.effCap, nr)

	// Per-flow caps, computed once: flowCap consults the fault engine
	// under active faults, and the filling loops below would otherwise
	// re-derive it every iteration.
	rs.caps = grow(rs.caps, nf)
	for i, f := range rs.flows {
		rs.caps[i] = s.flowCap(f)
	}

	// Flat per-resource flow-index lists. Every flow on a component
	// resource is itself in the component (the BFS in recomputeAround
	// guarantees it), so flowIdx translations are valid here and need not
	// be repeated inside the filling loops.
	total := 0
	for _, r := range rs.resources {
		total += len(s.resFlows[r])
	}
	rs.resOff = growInt32(rs.resOff, nr+1)
	rs.resFlat = growInt32(rs.resFlat, total)
	pos := 0
	for i, r := range rs.resources {
		rs.resOff[i] = int32(pos)
		for _, f := range s.resFlows[r] {
			rs.resFlat[pos] = rs.flowIdx[f]
			pos++
		}
	}
	rs.resOff[nr] = int32(pos)
	resFlows := func(i int) []int32 { return rs.resFlat[rs.resOff[i]:rs.resOff[i+1]] }

	// Effective capacities with the Eq. 1 contention penalty. A single
	// over-capable TB simply runs at link rate; contention needs ≥2
	// flows.
	for i, r := range rs.resources {
		c := s.topo.Capacity(r)
		if s.congestion != nil && s.congestion[r] > 0 {
			c *= 1 - s.congestion[r]
		}
		if s.fault != nil {
			c *= s.fault.capFactor[r]
		}
		if flows := resFlows(i); s.topo.Kind(r) == topo.KindSerialLink && len(flows) > 1 {
			demand := 0.0
			for _, fi := range flows {
				demand += rs.caps[fi]
			}
			if z := demand / c; z > 1 {
				over := z - 1
				if over > 1 {
					over = 1
				}
				c /= 1 + s.topo.Gamma*over*over
			}
		}
		rs.effCap[i] = c
	}

	unfrozen := nf
	rho := 0.0
	const inf = 1e300

	for unfrozen > 0 {
		// Next saturation level across resources and flow caps.
		next := inf
		for i := 0; i < nr; i++ {
			frozenLoad := 0.0
			n := 0
			for _, fi := range resFlows(i) {
				if rs.frozen[fi] {
					frozenLoad += rs.rates[fi]
				} else {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if sat := (rs.effCap[i] - frozenLoad) / float64(n); sat < next {
				next = sat
			}
		}
		for i := 0; i < nf; i++ {
			if !rs.frozen[i] && rs.caps[i] < next {
				next = rs.caps[i]
			}
		}
		if next >= inf {
			for i := 0; i < nf; i++ {
				if !rs.frozen[i] {
					rs.rates[i] = rs.caps[i]
					rs.frozen[i] = true
					unfrozen--
				}
			}
			break
		}
		if next < rho {
			next = rho
		}
		rho = next
		progress := false
		// Freeze flows capped at rho.
		for i := 0; i < nf; i++ {
			if !rs.frozen[i] && rs.caps[i] <= rho*(1+1e-12) {
				rs.rates[i] = rs.caps[i]
				rs.frozen[i] = true
				unfrozen--
				progress = true
			}
		}
		// Freeze flows on saturated resources.
		for i := 0; i < nr; i++ {
			frozenLoad := 0.0
			n := 0
			for _, fi := range resFlows(i) {
				if rs.frozen[fi] {
					frozenLoad += rs.rates[fi]
				} else {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if frozenLoad+float64(n)*rho >= rs.effCap[i]*(1-1e-12) {
				for _, fi := range resFlows(i) {
					if !rs.frozen[fi] {
						rs.rates[fi] = rho
						rs.frozen[fi] = true
						unfrozen--
						progress = true
					}
				}
			}
		}
		if !progress {
			// Numerical corner: freeze everything at rho to terminate.
			for i := range rs.flows {
				if !rs.frozen[i] {
					rs.rates[i] = rho
					rs.frozen[i] = true
					unfrozen--
				}
			}
		}
	}
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// grow returns s with length n without zeroing — for buffers whose every
// element is overwritten before use.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
