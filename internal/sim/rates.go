package sim

import (
	"github.com/resccl/resccl/internal/topo"
)

// Rate computation: flows share resources max-min (progressive filling)
// subject to two constraints from the paper's cost model:
//
//   - each flow's rate is capped by the driving thread block's
//     capability (TBCap);
//   - a serializing link whose aggregate demanded capability exceeds its
//     bandwidth by factor z suffers the Eq. 1 contention penalty: its
//     effective capacity is divided by 1 + γ·L(z), L(z) = min(z−1, 1)².
//
// Rates are recomputed only for the connected component of flows reached
// through shared resources, so the cost of a flow arrival/departure is
// proportional to the local contention, not the cluster size. All
// scratch state lives in the sim and is generation-stamped instead of
// cleared, keeping the hot path allocation-free.

type rateScratch struct {
	gen int32
	// Per-task component membership and index.
	flowGen []int32
	flowIdx []int32
	// Per-resource component membership.
	resGen []int32
	// Component working sets (reused).
	flows     []gid
	resources []topo.ResourceID
	queue     []topo.ResourceID
	rates     []float64
	frozen    []bool
	effCap    []float64
}

func (rs *rateScratch) init(nTasks, nResources int) {
	rs.flowGen = make([]int32, nTasks)
	rs.flowIdx = make([]int32, nTasks)
	rs.resGen = make([]int32, nResources)
}

// recomputeComponent recomputes rates for the component containing task
// t's flow.
func (s *sim) recomputeComponent(t gid) {
	s.recomputeAround(s.tasks[t].resources)
}

// recomputeAround recomputes rates for all flows transitively sharing
// resources with the given seed set.
func (s *sim) recomputeAround(seed []topo.ResourceID) {
	rs := &s.scratch
	rs.gen++
	rs.flows = rs.flows[:0]
	rs.resources = rs.resources[:0]
	rs.queue = rs.queue[:0]

	for _, r := range seed {
		if rs.resGen[r] != rs.gen {
			rs.resGen[r] = rs.gen
			rs.queue = append(rs.queue, r)
		}
	}
	for len(rs.queue) > 0 {
		r := rs.queue[len(rs.queue)-1]
		rs.queue = rs.queue[:len(rs.queue)-1]
		rs.resources = append(rs.resources, r)
		for _, f := range s.resFlows[r] {
			if rs.flowGen[f] == rs.gen {
				continue
			}
			rs.flowGen[f] = rs.gen
			rs.flowIdx[f] = int32(len(rs.flows))
			rs.flows = append(rs.flows, f)
			for _, fr := range s.tasks[f].resources {
				if rs.resGen[fr] != rs.gen {
					rs.resGen[fr] = rs.gen
					rs.queue = append(rs.queue, fr)
				}
			}
		}
	}
	if len(rs.flows) == 0 {
		return
	}
	// Charge elapsed bytes at the old rates before changing anything.
	for _, f := range rs.flows {
		s.advanceFlow(f)
	}
	s.maxMin()
	for i, f := range rs.flows {
		ts := &s.tasks[f]
		if !nearlyEqual(ts.rate, rs.rates[i]) || ts.rate == 0 {
			ts.rate = rs.rates[i]
			s.scheduleDataDone(f)
		}
	}
}

func nearlyEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale
}

// maxMin runs progressive filling over the scratch component, leaving
// the per-flow rates in s.scratch.rates (parallel to s.scratch.flows).
func (s *sim) maxMin() {
	rs := &s.scratch
	nf := len(rs.flows)
	rs.rates = resize(rs.rates, nf)
	rs.frozen = resizeBool(rs.frozen, nf)
	rs.effCap = resize(rs.effCap, len(rs.resources))

	// Effective capacities with the Eq. 1 contention penalty. A single
	// over-capable TB simply runs at link rate; contention needs ≥2
	// flows.
	for i, r := range rs.resources {
		c := s.topo.Capacity(r)
		if s.congestion != nil && s.congestion[r] > 0 {
			c *= 1 - s.congestion[r]
		}
		if s.fault != nil {
			c *= s.fault.capFactor[r]
		}
		if s.topo.Kind(r) == topo.KindSerialLink && len(s.resFlows[r]) > 1 {
			demand := 0.0
			for _, f := range s.resFlows[r] {
				demand += s.flowCap(f)
			}
			if z := demand / c; z > 1 {
				over := z - 1
				if over > 1 {
					over = 1
				}
				c /= 1 + s.topo.Gamma*over*over
			}
		}
		rs.effCap[i] = c
	}

	unfrozen := nf
	rho := 0.0
	const inf = 1e300

	for unfrozen > 0 {
		// Next saturation level across resources and flow caps.
		next := inf
		for i, r := range rs.resources {
			frozenLoad := 0.0
			n := 0
			for _, f := range s.resFlows[r] {
				fi := rs.flowIdx[f]
				if rs.frozen[fi] {
					frozenLoad += rs.rates[fi]
				} else {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if sat := (rs.effCap[i] - frozenLoad) / float64(n); sat < next {
				next = sat
			}
		}
		for i, f := range rs.flows {
			if !rs.frozen[i] && s.flowCap(f) < next {
				next = s.flowCap(f)
			}
		}
		if next >= inf {
			for i, f := range rs.flows {
				if !rs.frozen[i] {
					rs.rates[i] = s.flowCap(f)
					rs.frozen[i] = true
					unfrozen--
				}
			}
			break
		}
		if next < rho {
			next = rho
		}
		rho = next
		progress := false
		// Freeze flows capped at rho.
		for i, f := range rs.flows {
			if !rs.frozen[i] && s.flowCap(f) <= rho*(1+1e-12) {
				rs.rates[i] = s.flowCap(f)
				rs.frozen[i] = true
				unfrozen--
				progress = true
			}
		}
		// Freeze flows on saturated resources.
		for i, r := range rs.resources {
			frozenLoad := 0.0
			n := 0
			for _, f := range s.resFlows[r] {
				fi := rs.flowIdx[f]
				if rs.frozen[fi] {
					frozenLoad += rs.rates[fi]
				} else {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if frozenLoad+float64(n)*rho >= rs.effCap[i]*(1-1e-12) {
				for _, f := range s.resFlows[r] {
					fi := rs.flowIdx[f]
					if !rs.frozen[fi] {
						rs.rates[fi] = rho
						rs.frozen[fi] = true
						unfrozen--
						progress = true
					}
				}
			}
		}
		if !progress {
			// Numerical corner: freeze everything at rho to terminate.
			for i := range rs.flows {
				if !rs.frozen[i] {
					rs.rates[i] = rho
					rs.frozen[i] = true
					unfrozen--
				}
			}
		}
	}
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
