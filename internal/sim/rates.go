package sim

import (
	"github.com/resccl/resccl/internal/topo"
)

// Rate computation: flows share resources max-min (progressive filling)
// subject to two constraints from the paper's cost model:
//
//   - each flow's rate is capped by the driving thread block's
//     capability (TBCap);
//   - a serializing link whose aggregate demanded capability exceeds its
//     bandwidth by factor z suffers the Eq. 1 contention penalty: its
//     effective capacity is divided by 1 + γ·L(z), L(z) = min(z−1, 1)².
//
// Rates are recomputed only for the connected component of flows reached
// through shared resources, so the cost of a flow arrival/departure is
// proportional to the local contention, not the cluster size.
//
// The solver is incremental along two axes:
//
//   - Event coalescing: discrete events cluster heavily on identical
//     timestamps (symmetric plans finish whole waves of transfers at the
//     same instant). Instead of re-solving after every event, handlers
//     mark the perturbed resources dirty (markDirty) and the event loop
//     flushes one progressive-filling solve per dirty connected
//     component per unique timestamp (flushRates). This is exact, not
//     approximate: zero simulated time elapses between same-timestamp
//     events, rates are a pure function of the post-batch flow/resource
//     state, and stale completion events are version-guarded — so the
//     deferred solve produces bit-identical timings to the per-event
//     reference (Config.FullResolve retains that reference path, and
//     TestIncrementalMatchesFullResolve holds the two equal across the
//     chaos corpus).
//   - Filling compaction: within one solve, per-resource frozen load and
//     unfrozen-member counts are cached and refreshed only for resources
//     whose membership changed since the last round (always summing in
//     membership order, so float results are independent of when the
//     refresh happens), and fully frozen flows/resources drop out of the
//     round scans entirely.
//
// All scratch state lives in the sim and is generation-stamped instead
// of cleared, keeping the hot path allocation-free.

type rateScratch struct {
	gen int32
	// Per-task component membership and index.
	flowGen []int32
	flowIdx []int32
	// Per-resource component membership and index.
	resGen []int32
	resIdx []int32
	// Component working sets (reused).
	flows     []gid
	resources []topo.ResourceID
	queue     []topo.ResourceID
	rates     []float64
	frozen    []bool
	effCap    []float64
	// caps[i] is flowCap(flows[i]), computed once per maxMin round
	// instead of once per progressive-filling iteration.
	caps []float64
	// resFlat/resOff give, for component resource i, the component flow
	// indices on it: resFlat[resOff[i]:resOff[i+1]]. Precomputed so the
	// filling loops stop re-walking the resource membership lists and
	// re-translating global ids through flowIdx.
	resFlat []int32
	resOff  []int32
	// Cached per-round filling state: resN[i] unfrozen members,
	// resLoad[i] frozen load (summed in resFlat order), resDirty[i] set
	// when a member froze since the last refresh. actRes/actFlows are
	// the compacted not-yet-settled resource/flow index lists.
	resN     []int32
	resLoad  []float64
	resDirty []bool
	actRes   []int32
	actFlows []int32
}

func (rs *rateScratch) init(nTasks, nResources int) {
	rs.flowGen = make([]int32, nTasks)
	rs.flowIdx = make([]int32, nTasks)
	rs.resGen = make([]int32, nResources)
	rs.resIdx = make([]int32, nResources)
}

// markDirty records that the given resources were perturbed (a flow
// joined, left, or changed capability) and that their connected
// components need a rate re-solve before simulated time advances. Under
// Config.FullResolve the re-solve happens immediately instead — the
// retained reference path the equivalence property test compares
// against.
func (s *sim) markDirty(seed []topo.ResourceID) {
	if s.fullResolve {
		s.recomputeAround(seed)
		return
	}
	for _, r := range seed {
		if s.dirtyMark[r] != s.dirtyGen {
			s.dirtyMark[r] = s.dirtyGen
			s.dirtySeeds = append(s.dirtySeeds, r)
		}
	}
}

// flushRates re-solves every connected component holding a dirty
// resource, one progressive-filling pass per component (components are
// independent: the max-min allocation of one cannot influence another).
// Called by the event loop once per unique timestamp (and before the
// run retires), never between same-timestamp events.
func (s *sim) flushRates() {
	if len(s.dirtySeeds) == 0 {
		return
	}
	rs := &s.scratch
	s.coveredGen++
	for _, r := range s.dirtySeeds {
		if s.coveredMark[r] == s.coveredGen {
			continue // an earlier component in this flush swallowed it
		}
		s.seedOne[0] = r
		s.recomputeAround(s.seedOne[:])
		for _, cr := range rs.resources {
			s.coveredMark[cr] = s.coveredGen
		}
	}
	s.dirtySeeds = s.dirtySeeds[:0]
	s.dirtyGen++
}

// recomputeComponent recomputes rates for the component containing task
// t's flow.
func (s *sim) recomputeComponent(t gid) {
	s.recomputeAround(s.tasks[t].resources)
}

// recomputeAround recomputes rates for all flows transitively sharing
// resources with the given seed set.
func (s *sim) recomputeAround(seed []topo.ResourceID) {
	rs := &s.scratch
	rs.gen++
	rs.flows = rs.flows[:0]
	rs.resources = rs.resources[:0]
	rs.queue = rs.queue[:0]

	for _, r := range seed {
		if rs.resGen[r] != rs.gen {
			rs.resGen[r] = rs.gen
			rs.queue = append(rs.queue, r)
		}
	}
	for len(rs.queue) > 0 {
		r := rs.queue[len(rs.queue)-1]
		rs.queue = rs.queue[:len(rs.queue)-1]
		rs.resIdx[r] = int32(len(rs.resources))
		rs.resources = append(rs.resources, r)
		for _, f := range s.resFlowsOf(r) {
			if rs.flowGen[f] == rs.gen {
				continue
			}
			rs.flowGen[f] = rs.gen
			rs.flowIdx[f] = int32(len(rs.flows))
			rs.flows = append(rs.flows, f)
			for _, fr := range s.tasks[f].resources {
				if rs.resGen[fr] != rs.gen {
					rs.resGen[fr] = rs.gen
					rs.queue = append(rs.queue, fr)
				}
			}
		}
	}
	if len(rs.flows) == 0 {
		return
	}
	// Charge elapsed bytes at the old rates before changing anything.
	for _, f := range rs.flows {
		s.advanceFlow(f)
	}
	s.maxMin()
	for i, f := range rs.flows {
		ts := &s.tasks[f]
		if !nearlyEqual(ts.rate, rs.rates[i]) || ts.rate == 0 {
			ts.rate = rs.rates[i]
			s.scheduleDataDone(f)
		}
	}
}

// nearlyEqual reports whether a and b agree to within a relative epsilon
// of 1e-9 of the larger magnitude. Contract: both arguments are
// non-negative rates; two exact zeros compare equal (diff and scale are
// both zero, handled explicitly rather than relying on 0 <= 0 falling
// through); a zero against any positive rate compares unequal, however
// small the rate, because scale then equals the positive value and
// diff == scale > 1e-9·scale.
func nearlyEqual(a, b float64) bool {
	if a == b {
		return true // covers the both-zero case explicitly
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale
}

// maxMin runs progressive filling over the scratch component, leaving
// the per-flow rates in s.scratch.rates (parallel to s.scratch.flows).
func (s *sim) maxMin() {
	rs := &s.scratch
	nf := len(rs.flows)
	nr := len(rs.resources)
	rs.rates = resize(rs.rates, nf)
	rs.frozen = resizeBool(rs.frozen, nf)
	rs.effCap = grow(rs.effCap, nr)

	// Per-flow caps, computed once: flowCap consults the fault engine
	// under active faults, and the filling loops below would otherwise
	// re-derive it every iteration.
	rs.caps = grow(rs.caps, nf)
	for i, f := range rs.flows {
		rs.caps[i] = s.flowCap(f)
	}

	// Flat per-resource flow-index lists. Every flow on a component
	// resource is itself in the component (the BFS in recomputeAround
	// guarantees it), so flowIdx translations are valid here and need not
	// be repeated inside the filling loops.
	total := 0
	for _, r := range rs.resources {
		total += len(s.resFlowsOf(r))
	}
	rs.resOff = growInt32(rs.resOff, nr+1)
	rs.resFlat = growInt32(rs.resFlat, total)
	pos := 0
	for i, r := range rs.resources {
		rs.resOff[i] = int32(pos)
		for _, f := range s.resFlowsOf(r) {
			rs.resFlat[pos] = rs.flowIdx[f]
			pos++
		}
	}
	rs.resOff[nr] = int32(pos)
	resFlows := func(i int32) []int32 { return rs.resFlat[rs.resOff[i]:rs.resOff[i+1]] }

	// Effective capacities with the Eq. 1 contention penalty. A single
	// over-capable TB simply runs at link rate; contention needs ≥2
	// flows.
	for i, r := range rs.resources {
		c := s.topo.Capacity(r)
		if s.congestion != nil && s.congestion[r] > 0 {
			c *= 1 - s.congestion[r]
		}
		if s.fault != nil {
			c *= s.fault.capFactor[r]
		}
		if flows := resFlows(int32(i)); s.topo.Kind(r) == topo.KindSerialLink && len(flows) > 1 {
			demand := 0.0
			for _, fi := range flows {
				demand += rs.caps[fi]
			}
			if z := demand / c; z > 1 {
				over := z - 1
				if over > 1 {
					over = 1
				}
				c /= 1 + s.topo.Gamma*over*over
			}
		}
		rs.effCap[i] = c
	}

	// Cached filling state. The frozen load of a resource only changes
	// when one of its members freezes; refresh() recomputes it lazily —
	// always summing in resFlat (membership) order, so the float value
	// is identical no matter which round triggers the refresh — and the
	// active lists let settled flows and resources drop out of the
	// round scans.
	rs.resN = growInt32(rs.resN, nr)
	rs.resLoad = grow(rs.resLoad, nr)
	rs.resDirty = resizeBool(rs.resDirty, nr)
	rs.actRes = growInt32(rs.actRes, nr)
	rs.actFlows = growInt32(rs.actFlows, nf)
	for i := 0; i < nr; i++ {
		rs.resN[i] = rs.resOff[i+1] - rs.resOff[i]
		rs.resLoad[i] = 0
		rs.actRes[i] = int32(i)
	}
	for i := 0; i < nf; i++ {
		rs.actFlows[i] = int32(i)
	}
	actRes := rs.actRes[:nr]
	actFlows := rs.actFlows[:nf]
	refresh := func(i int32) {
		if !rs.resDirty[i] {
			return
		}
		load, n := 0.0, int32(0)
		for _, fi := range resFlows(i) {
			if rs.frozen[fi] {
				load += rs.rates[fi]
			} else {
				n++
			}
		}
		rs.resLoad[i] = load
		rs.resN[i] = n
		rs.resDirty[i] = false
	}
	// freeze settles flow fi at rate v and invalidates the cached state
	// of every resource it sits on.
	freeze := func(fi int32, v float64) {
		rs.rates[fi] = v
		rs.frozen[fi] = true
		for _, r := range s.tasks[rs.flows[fi]].resources {
			rs.resDirty[rs.resIdx[r]] = true
		}
	}

	unfrozen := nf
	rho := 0.0
	const inf = 1e300

	for unfrozen > 0 {
		// Next saturation level across resources and flow caps. Fully
		// frozen resources are compacted out of the active list as the
		// scan encounters them (swap-remove keeps the scan linear; min
		// is order-independent, so compaction cannot change the level).
		next := inf
		for i := 0; i < len(actRes); {
			ri := actRes[i]
			refresh(ri)
			if rs.resN[ri] == 0 {
				actRes[i] = actRes[len(actRes)-1]
				actRes = actRes[:len(actRes)-1]
				continue
			}
			if sat := (rs.effCap[ri] - rs.resLoad[ri]) / float64(rs.resN[ri]); sat < next {
				next = sat
			}
			i++
		}
		for i := 0; i < len(actFlows); {
			fi := actFlows[i]
			if rs.frozen[fi] {
				actFlows[i] = actFlows[len(actFlows)-1]
				actFlows = actFlows[:len(actFlows)-1]
				continue
			}
			if rs.caps[fi] < next {
				next = rs.caps[fi]
			}
			i++
		}
		if next >= inf {
			for _, fi := range actFlows {
				if !rs.frozen[fi] {
					rs.rates[fi] = rs.caps[fi]
					rs.frozen[fi] = true
					unfrozen--
				}
			}
			break
		}
		if next < rho {
			next = rho
		}
		rho = next
		progress := false
		// Freeze flows capped at rho.
		for i := 0; i < len(actFlows); {
			fi := actFlows[i]
			if rs.frozen[fi] || rs.caps[fi] <= rho*(1+1e-12) {
				if !rs.frozen[fi] {
					freeze(fi, rs.caps[fi])
					unfrozen--
					progress = true
				}
				actFlows[i] = actFlows[len(actFlows)-1]
				actFlows = actFlows[:len(actFlows)-1]
				continue
			}
			i++
		}
		// Freeze flows on saturated resources.
		for i := 0; i < len(actRes); {
			ri := actRes[i]
			refresh(ri)
			if rs.resN[ri] == 0 {
				actRes[i] = actRes[len(actRes)-1]
				actRes = actRes[:len(actRes)-1]
				continue
			}
			if rs.resLoad[ri]+float64(rs.resN[ri])*rho >= rs.effCap[ri]*(1-1e-12) {
				for _, fi := range resFlows(ri) {
					if !rs.frozen[fi] {
						freeze(fi, rho)
						unfrozen--
						progress = true
					}
				}
			}
			i++
		}
		if !progress {
			// Numerical corner: freeze everything at rho to terminate.
			for i := range rs.flows {
				if !rs.frozen[i] {
					rs.rates[i] = rho
					rs.frozen[i] = true
					unfrozen--
				}
			}
		}
	}
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// grow returns s with length n without zeroing — for buffers whose every
// element is overwritten before use.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
