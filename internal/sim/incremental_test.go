package sim

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// The incremental solver (dirty-link coalescing + per-component
// re-solve) must be a pure optimization: every observable quantity —
// completion, per-TB stats, link busy time, instance counts, timelines,
// applied faults — must be bit-identical to the retained full-re-solve
// reference (Config.FullResolve). Only Events may differ: coalescing
// batches same-timestamp boundaries, so the incremental run schedules
// fewer rate-boundary events. These tests are the contract.

// normalize prepares a Result for cross-strategy comparison: the event
// counter is zeroed (coalescing legitimately schedules fewer boundary
// events), and the timeline is put in a canonical order — spans record
// completion order, and the order WITHIN one batch of simultaneous
// completions follows heap insertion sequence, which differs between
// strategies. Every span's fields, including its float timings, must
// still match bit for bit.
func normalize(r *Result) *Result {
	c := *r
	c.Events = 0
	c.Timeline = append([]InstanceSpan(nil), r.Timeline...)
	sort.SliceStable(c.Timeline, func(i, j int) bool {
		a, b := c.Timeline[i], c.Timeline[j]
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.MB < b.MB
	})
	return &c
}

func requireIdentical(t *testing.T, label string, inc, full *Result) {
	t.Helper()
	if !reflect.DeepEqual(normalize(inc), normalize(full)) {
		t.Fatalf("%s: incremental result diverges from full re-solve reference\nincremental: completion=%.17g instances=%d\nfull:        completion=%.17g instances=%d",
			label, inc.Completion, inc.Instances, full.Completion, full.Instances)
	}
	if inc.Events > full.Events {
		t.Errorf("%s: incremental solver processed MORE events (%d) than the eager reference (%d)",
			label, inc.Events, full.Events)
	}
}

// TestIncrementalMatchesFullResolve sweeps shapes, backends and
// topologies fault-free: per-flow rate evolution must agree exactly,
// so all derived timings must too.
func TestIncrementalMatchesFullResolve(t *testing.T) {
	cases := []struct {
		name string
		tp   *topo.Topology
		algo func() (*ir.Algorithm, error)
	}{
		{"mesh-1x4", topo.New(1, 4, topo.A100()),
			func() (*ir.Algorithm, error) { return expert.MeshAllReduce(4) }},
		{"hm-2x4", topo.New(2, 4, topo.A100()),
			func() (*ir.Algorithm, error) { return expert.HMAllReduce(2, 4) }},
		{"hm-2x8-v100", topo.New(2, 8, topo.V100()),
			func() (*ir.Algorithm, error) { return expert.HMAllReduce(2, 8) }},
		{"hier-4x4-clos", topo.NewClos(4, 4, topo.A100(), 2),
			func() (*ir.Algorithm, error) { return expert.Build("hier-allreduce", 4, 4) }},
		{"hier-4x4-rail", topo.NewRail(4, 4, topo.A100(), 4),
			func() (*ir.Algorithm, error) { return expert.Build("hier-allreduce", 4, 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			algo, err := tc.algo()
			if err != nil {
				t.Fatal(err)
			}
			plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tc.tp})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Topo: tc.tp, Kernel: plan.Kernel, BufferBytes: 32 << 20,
				ChunkBytes: 1 << 20, RecordTimeline: true}
			inc, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FullResolve = true
			full, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, tc.name, inc, full)
		})
	}
}

// TestIncrementalMatchesFullResolveProtocols pins the equivalence under
// every protocol tier — the tiers change per-chunk alpha/beta costs and
// the effective chunking, exercising different event interleavings.
func TestIncrementalMatchesFullResolveProtocols(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	for _, proto := range []ir.Protocol{ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple} {
		algo := &ir.Algorithm{Name: "eq-proto", Op: ir.OpAllReduce, NRanks: 16, NChunks: 16}
		plan, err := backend.NewNCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 8 << 20,
			ChunkBytes: 1 << 20, RecordTimeline: true}
		inc, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FullResolve = true
		full, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, proto.String(), inc, full)
	}
}

// TestIncrementalMatchesFullResolveUnderFaults drives both solvers
// through seeded chaos-style fault schedules — link flaps, degrades and
// stragglers force mid-flight capacity changes, the hardest case for
// dirty-set bookkeeping.
func TestIncrementalMatchesFullResolveUnderFaults(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 32 << 20, ChunkBytes: 1 << 20}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		sched := fault.Generate(tp, fault.Params{
			Seed: seed, N: 10, Horizon: clean.Completion,
			MeanDuration: clean.Completion / 5, NTBs: len(plan.Kernel.TBs),
		})
		cfg := base
		cfg.Faults = sched
		inc, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FullResolve = true
		full, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("seed %d", seed), inc, full)
	}
}

// TestIncrementalMatchesFullResolveConcurrent covers multi-session
// contention: sessions share fabric resources, so one session's
// arrivals dirty components that span another's flows.
func TestIncrementalMatchesFullResolveConcurrent(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	ses := Session{Kernel: plan.Kernel, BufferBytes: 16 << 20, ChunkBytes: 1 << 20}
	inc, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{ses, ses, ses}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{ses, ses, ses}, FullResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Sessions) != len(full.Sessions) {
		t.Fatalf("session count mismatch: %d vs %d", len(inc.Sessions), len(full.Sessions))
	}
	for i := range inc.Sessions {
		requireIdentical(t, fmt.Sprintf("session %d", i), inc.Sessions[i], full.Sessions[i])
	}
	if inc.Completion != full.Completion {
		t.Fatalf("overall completion differs: %.17g vs %.17g", inc.Completion, full.Completion)
	}
}
