package sim

import (
	"context"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

func compile(t *testing.T, algo *ir.Algorithm, tp *topo.Topology) *kernelPlan {
	t.Helper()
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	return &kernelPlan{plan}
}

type kernelPlan struct{ plan *backend.Plan }

// Two identical collectives sharing the fabric must each take longer
// than one running alone, and the multi-result must be consistent.
func TestConcurrentSessionsContend(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, algo, tp)
	alone, err := Run(Config{Topo: tp, Kernel: p.plan.Kernel, BufferBytes: 128 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ses := Session{Kernel: p.plan.Kernel, BufferBytes: 128 << 20, ChunkBytes: 1 << 20}
	mr, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{ses, ses}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(mr.Sessions))
	}
	for i, r := range mr.Sessions {
		if r.Completion <= alone.Completion {
			t.Errorf("session %d (%g) not slower than solo run (%g) despite sharing the fabric",
				i, r.Completion, alone.Completion)
		}
		if r.Completion > mr.Completion+1e-12 {
			t.Errorf("session %d finishes after the global completion", i)
		}
		if r.Instances != alone.Instances {
			t.Errorf("session %d executed %d instances, want %d", i, r.Instances, alone.Instances)
		}
	}
	// Shared fabric: slowdown is bounded by halved bandwidth (2×) times
	// the saturated Eq. 1 penalty (1.6×).
	for i, r := range mr.Sessions {
		sd := r.Completion / alone.Completion
		if sd < 1.5 || sd > 3.3 {
			t.Errorf("session %d slowdown %.2fx outside the plausible [1.5, 3.3] band", i, sd)
		}
	}
}

// Sessions on disjoint resources (two different intra-node meshes on
// different nodes, embedded into the full cluster) must not slow each
// other down.
func TestConcurrentDisjointSessions(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	mesh, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	g0, err := ir.Embed(mesh, []ir.Rank{0, 1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := ir.Embed(mesh, []ir.Rank{4, 5, 6, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	p0 := compile(t, g0, tp)
	p1 := compile(t, g1, tp)
	solo, err := Run(Config{Topo: tp, Kernel: p0.plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{
		{Kernel: p0.plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20},
		{Kernel: p1.plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range mr.Sessions {
		if diff := r.Completion - solo.Completion; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("disjoint session %d completion %g differs from solo %g", i, r.Completion, solo.Completion)
		}
	}
}

// Embedded process groups: four cross-node DP rings (one per local
// index) sharing the NICs must each run slower than a single ring
// alone, and the run must stay deterministic.
func TestConcurrentEmbeddedGroups(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	ring, err := expert.RingAllReduce(2)
	if err != nil {
		t.Fatal(err)
	}
	var sessions []Session
	for l := 0; l < 4; l++ {
		grp, err := ir.Embed(ring, []ir.Rank{ir.Rank(l), ir.Rank(4 + l)}, 8)
		if err != nil {
			t.Fatal(err)
		}
		p := compile(t, grp, tp)
		sessions = append(sessions, Session{Kernel: p.plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20})
	}
	solo, err := Run(Config{Topo: tp, Kernel: sessions[0].Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: sessions})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: sessions})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Completion != m2.Completion {
		t.Error("concurrent run nondeterministic")
	}
	// Groups at locals 0,1 share NIC 0; 2,3 share NIC 1 — contention
	// must slow them relative to solo.
	slower := 0
	for _, r := range m1.Sessions {
		if r.Completion > solo.Completion*1.05 {
			slower++
		}
	}
	if slower < 2 {
		t.Errorf("expected NIC contention to slow ≥2 of 4 DP groups, got %d (solo %g, multi %v)",
			slower, solo.Completion, []float64{m1.Sessions[0].Completion, m1.Sessions[1].Completion, m1.Sessions[2].Completion, m1.Sessions[3].Completion})
	}
}

func TestRunConcurrentValidation(t *testing.T) {
	tp := topo.New(1, 2, topo.A100())
	if _, err := RunConcurrent(MultiConfig{Topo: tp}); err == nil {
		t.Error("no sessions should fail")
	}
	if _, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{{}}}); err == nil {
		t.Error("nil kernel should fail")
	}
}
