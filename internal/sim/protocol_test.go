package sim

import (
	"context"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// protoTiers are every tier a kernel can carry, auto included.
var protoTiers = []ir.Protocol{ir.ProtoAuto, ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple}

func compileNCCL(t *testing.T, op ir.OpType, tp *topo.Topology, proto ir.Protocol) *backend.Plan {
	t.Helper()
	algo := &ir.Algorithm{Name: "p-" + op.String(), Op: op, NRanks: tp.NRanks(), NChunks: tp.NRanks()}
	plan, err := backend.NewNCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp, Protocol: proto})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// Params must keep the tier ordering the cost model relies on: LL pays
// the least startup and carries the least payload per wire byte, Simple
// the reverse, and auto is exactly Simple.
func TestProtocolParamsOrdering(t *testing.T) {
	ll, ll128, simple := Params(ir.ProtoLL), Params(ir.ProtoLL128), Params(ir.ProtoSimple)
	if !(ll.AlphaFactor < ll128.AlphaFactor && ll128.AlphaFactor < simple.AlphaFactor) {
		t.Errorf("alpha factors not increasing: %v %v %v", ll.AlphaFactor, ll128.AlphaFactor, simple.AlphaFactor)
	}
	if !(ll.BWFactor < ll128.BWFactor && ll128.BWFactor < simple.BWFactor) {
		t.Errorf("bandwidth factors not increasing: %v %v %v", ll.BWFactor, ll128.BWFactor, simple.BWFactor)
	}
	if simple.BWFactor != 1 || simple.AlphaFactor != 1 || simple.MaxChunkBytes != 0 {
		t.Errorf("Simple must be the identity, got %+v", simple)
	}
	if Params(ir.ProtoAuto) != simple {
		t.Errorf("auto params %+v differ from Simple %+v", Params(ir.ProtoAuto), simple)
	}
	if got := ll.EffectiveChunk(1 << 20); got != ll.MaxChunkBytes {
		t.Errorf("LL effective chunk for 1MiB = %d, want cap %d", got, ll.MaxChunkBytes)
	}
	if got := simple.EffectiveChunk(0); got != 1<<20 {
		t.Errorf("Simple effective chunk for 0 = %d, want 1MiB default", got)
	}
}

// Completion must be non-decreasing in buffer size under every fixed
// protocol tier: more bytes can never finish earlier.
func TestProtocolCompletionMonotoneInBytes(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	for _, proto := range protoTiers {
		plan := compileNCCL(t, ir.OpAllReduce, tp, proto)
		prev := -1.0
		for buf := int64(64 << 10); buf <= 256<<20; buf *= 4 {
			res := run(t, plan, tp, buf)
			if res.Completion < prev {
				t.Errorf("%s: completion %.6gs at %d bytes is below %.6gs at the previous size",
					proto, res.Completion, buf, prev)
			}
			prev = res.Completion
		}
	}
}

// The auto-selected tier must never simulate meaningfully worse than the
// best forced tier: selection comes from an analytic estimate, so allow
// a small modelling tolerance, but a selection that loses badly to a
// forced tier means the tuning table and the simulator disagree.
func TestAutoSelectionNearBestForced(t *testing.T) {
	const tolerance = 1.15
	tp := topo.New(2, 8, topo.A100())
	maxBuf := int64(1 << 30)
	if testing.Short() {
		maxBuf = 64 << 20
	}
	for _, op := range []ir.OpType{ir.OpAllReduce, ir.OpAllGather} {
		for buf := int64(64 << 10); buf <= maxBuf; buf *= 8 {
			auto := sel(t, tp, op, buf)
			best := -1.0
			var bestTier ir.Protocol
			for _, proto := range []ir.Protocol{ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple} {
				c := run(t, compileNCCL(t, op, tp, proto), tp, buf).Completion
				if best < 0 || c < best {
					best, bestTier = c, proto
				}
			}
			if auto > best*tolerance {
				t.Errorf("%s %d bytes: auto tier %s runs %.6gs, forced %s runs %.6gs (>%gx worse)",
					op, buf, SelectProtocol(tp, op, buf), auto, bestTier, best, tolerance)
			}
		}
	}
}

// sel simulates the collective under the tier auto-selection picks.
func sel(t *testing.T, tp *topo.Topology, op ir.OpType, buf int64) float64 {
	t.Helper()
	plan := compileNCCL(t, op, tp, SelectProtocol(tp, op, buf))
	return run(t, plan, tp, buf).Completion
}

// Zero-byte transfers must terminate under every tier: the wire-byte
// inflation multiplies a zero remaining volume, and the evLatencyDone
// path must still drain every task.
func TestZeroByteTransfersTerminate(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	a, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range protoTiers {
		plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: a, Topo: tp, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 0, ChunkBytes: 1 << 20})
		if err != nil {
			t.Fatalf("%s: zero-byte run failed: %v", proto, err)
		}
		if res.Completion <= 0 {
			t.Errorf("%s: zero-byte run completed in %.6gs, want positive latency-only time", proto, res.Completion)
		}
	}
}

// A forced tier must actually change the simulated cost on the same
// kernel structure: LL buys latency on small buffers, Simple buys
// bandwidth on large ones, and LL128 sits strictly between Simple and
// LL on large buffers.
func TestProtocolTiersSeparate(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	small := func(proto ir.Protocol) float64 {
		return run(t, compileNCCL(t, ir.OpAllGather, tp, proto), tp, 128<<10).Completion
	}
	large := func(proto ir.Protocol) float64 {
		return run(t, compileNCCL(t, ir.OpAllGather, tp, proto), tp, 256<<20).Completion
	}
	if !(small(ir.ProtoLL) < small(ir.ProtoLL128) && small(ir.ProtoLL128) < small(ir.ProtoSimple)) {
		t.Error("small buffer: want LL < LL128 < Simple")
	}
	if !(large(ir.ProtoSimple) < large(ir.ProtoLL128) && large(ir.ProtoLL128) < large(ir.ProtoLL)) {
		t.Error("large buffer: want Simple < LL128 < LL")
	}
}
