package sim

import (
	"context"
	"reflect"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/topo"
)

// compileAR compiles the hierarchical-mesh (or mesh) AllReduce for the
// shape on the ResCCL backend.
func compileAR(t *testing.T, tp *topo.Topology, nNodes, gpn int) *backend.Plan {
	t.Helper()
	algo, err := expert.HMAllReduce(nNodes, gpn)
	if nNodes == 1 {
		algo, err = expert.MeshAllReduce(gpn)
	}
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestZeroEventScheduleBitIdentical is the regression guard for the
// fault subsystem: attaching an empty (or nil) schedule must leave the
// whole Result bit-identical to the fault-free simulator.
func TestZeroEventScheduleBitIdentical(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	plan := compileAR(t, tp, 2, 4)
	base := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20, RecordTimeline: true}

	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []*fault.Schedule{nil, {}, {Seed: 9}} {
		cfg := base
		cfg.Faults = sched
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(clean, got) {
			t.Fatalf("empty schedule %+v changed the Result: completion %v vs %v",
				sched, clean.Completion, got.Completion)
		}
	}
}

// TestFaultedRunDeterministic: a seeded non-empty schedule must give
// identical timings and identical applied-fault logs across runs.
func TestFaultedRunDeterministic(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	plan := compileAR(t, tp, 2, 4)
	clean, err := Run(Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sched := fault.Generate(tp, fault.Params{
		Seed: 123, N: 12, Horizon: clean.Completion,
		MeanDuration: clean.Completion / 6, NTBs: len(plan.Kernel.TBs),
	})
	cfg := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20, Faults: sched}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two faulted runs differ: %v vs %v", a.Completion, b.Completion)
	}
	if len(a.Faults) == 0 {
		t.Fatalf("faulted run recorded no applied windows")
	}
}

// TestLinkDegradeLengthensRun: halving a NIC queue's capacity for the
// whole run must slow the collective; an outage must slow it further.
func TestLinkDegradeLengthensRun(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	plan := compileAR(t, tp, 2, 4)
	base := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	eg, in := tp.NICResources(0)
	window := 10 * clean.Completion

	deg := base
	deg.Faults = &fault.Schedule{Events: []fault.Event{
		fault.LinkDegrade(eg, 0, window, 0.5),
		fault.LinkDegrade(in, 0, window, 0.5),
	}}
	slow, err := Run(deg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Completion <= clean.Completion*1.01 {
		t.Fatalf("50%% NIC degrade did not slow the run: %v vs clean %v", slow.Completion, clean.Completion)
	}

	down := base
	down.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.KindNICFlap, Start: 0, Duration: clean.Completion / 2,
			Resources: []topo.ResourceID{eg, in}},
	}}
	worst, err := Run(down)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Completion <= clean.Completion*1.01 {
		t.Fatalf("NIC outage did not slow the run: %v vs clean %v", worst.Completion, clean.Completion)
	}
}

// TestLinkDownWindowRecovers: a brief outage early in the run must cost
// time, but far less than an outage spanning the whole run — flows
// crawl during the window and resume at full rate when it closes.
func TestLinkDownWindowRecovers(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	plan := compileAR(t, tp, 2, 4)
	base := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	eg, in := tp.NICResources(0)
	short := base
	short.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.KindNICFlap, Start: 0, Duration: clean.Completion / 10,
			Resources: []topo.ResourceID{eg, in}},
	}}
	brief, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	if brief.Completion <= clean.Completion {
		t.Fatalf("outage was free: %v vs clean %v", brief.Completion, clean.Completion)
	}
	// Recovery bound: losing one NIC for a tenth of the run must not
	// cost more than the whole window plus modest queueing spill.
	if brief.Completion > clean.Completion*2 {
		t.Fatalf("brief outage cost too much: %v vs clean %v — flows did not resume", brief.Completion, clean.Completion)
	}
}

// TestStragglerSlowsOnlyItsSession: in a two-session concurrent run on
// disjoint pair links (single node), a straggler TB of session 0 must
// lengthen session 0 and leave session 1's completion untouched.
func TestStragglerSlowsOnlyItsSession(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	plan := compileAR(t, tp, 1, 4)
	ses := Session{Kernel: plan.Kernel, BufferBytes: 16 << 20, ChunkBytes: 1 << 20}
	clean, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{ses, ses}})
	if err != nil {
		t.Fatal(err)
	}
	sched := &fault.Schedule{Events: []fault.Event{
		fault.Straggler(0, 0, 10*clean.Completion, 4),
	}}
	faulted, err := RunConcurrent(MultiConfig{Topo: tp, Sessions: []Session{ses, ses}, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Sessions[0].Completion <= clean.Sessions[0].Completion*1.01 {
		t.Fatalf("straggler did not slow its session: %v vs %v",
			faulted.Sessions[0].Completion, clean.Sessions[0].Completion)
	}
	// Session 1 shares the fabric, so a slowed session 0 can only free
	// capacity — session 1 must not get slower.
	if faulted.Sessions[1].Completion > clean.Sessions[1].Completion*1.01 {
		t.Fatalf("straggler in session 0 slowed session 1: %v vs %v",
			faulted.Sessions[1].Completion, clean.Sessions[1].Completion)
	}
}

// TestStragglerLengthensOwnedPipelines: the straggling TB's own release
// moves out proportionally more than the fastest TB's.
func TestStragglerLengthensOwnedPipelines(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	plan := compileAR(t, tp, 1, 4)
	base := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 16 << 20, ChunkBytes: 1 << 20}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.Faults = &fault.Schedule{Events: []fault.Event{
		fault.Straggler(0, 0, 10*clean.Completion, 8),
	}}
	slow, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	var cleanRel, slowRel float64
	for i := range clean.TBs {
		if clean.TBs[i].ID == 0 {
			cleanRel = clean.TBs[i].Release
			slowRel = slow.TBs[i].Release
		}
	}
	if slowRel <= cleanRel*1.05 {
		t.Fatalf("straggling TB 0 release barely moved: %v vs %v", slowRel, cleanRel)
	}
}

// TestFaultScheduleRejected: an invalid schedule must fail the run with
// a descriptive error instead of corrupting state.
func TestFaultScheduleRejected(t *testing.T) {
	tp := topo.New(1, 2, topo.A100())
	plan := compileAR(t, tp, 1, 2)
	cfg := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 1 << 20, ChunkBytes: 1 << 20,
		Faults: &fault.Schedule{Events: []fault.Event{
			{Kind: fault.KindStraggler, Start: 0, Duration: 1, TB: 999, Factor: 2},
		}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
