package sim

import (
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/simcost"
)

// The protocol-tier cost model lives in internal/simcost so static
// analyses can price plans with the simulator's exact constants without
// linking the event engine; the aliases below keep sim's historical API.

// ProtocolParams are the cost-model parameters of one protocol tier;
// see simcost.ProtocolParams.
type ProtocolParams = simcost.ProtocolParams

// Params returns the cost-model parameters of a protocol tier; see
// simcost.Params.
func Params(p ir.Protocol) ProtocolParams { return simcost.Params(p) }
