package sim

import (
	"context"
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/topo"
)

// Congestion on a NIC must slow the collective down, and more congestion
// must slow it more.
func TestCongestionMonotone(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	run := func(frac float64) float64 {
		cfg := Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 128 << 20, ChunkBytes: 1 << 20}
		if frac > 0 {
			cfg.Congestion = map[topo.ResourceID]float64{
				tp.NICEgress(0):  frac,
				tp.NICIngress(0): frac,
			}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Completion
	}
	clean := run(0)
	half := run(0.5)
	heavy := run(0.9)
	if !(clean < half && half < heavy) {
		t.Errorf("congestion not monotone: clean %g, 50%% %g, 90%% %g", clean, half, heavy)
	}
	// Fractions outside [0, 0.95] are clamped, not fatal.
	extreme := run(5)
	if extreme <= clean {
		t.Error("clamped extreme congestion should still slow the run")
	}
}

// The lazy micro-batch barrier must not change the result's correctness
// properties, only slow execution down relative to pipelined execution
// of the same plan.
func TestMBBarrierSlower(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllGather(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewMSCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	// Stage-level HM-AG has no barrier; flip it on for comparison.
	pipelined := *plan.Kernel
	pipelined.MBBarrier = false
	lazy := *plan.Kernel
	lazy.MBBarrier = true
	rp, err := Run(Config{Topo: tp, Kernel: &pipelined, BufferBytes: 256 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(Config{Topo: tp, Kernel: &lazy, BufferBytes: 256 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Completion <= rp.Completion {
		t.Errorf("lazy execution (%g) should be slower than pipelined (%g)", rl.Completion, rp.Completion)
	}
	if rl.Instances != rp.Instances {
		t.Errorf("instance counts differ: %d vs %d", rl.Instances, rp.Instances)
	}
}

// Timeline recording must produce sorted, non-overlapping busy segments
// whose total length matches each TB's Exec time.
func TestTimelineSegments(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 32 << 20, ChunkBytes: 1 << 20, RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range res.TBs {
		if len(tb.Segments) == 0 {
			t.Fatalf("TB %d has no segments", tb.ID)
		}
		total := 0.0
		for i, seg := range tb.Segments {
			if seg[1] <= seg[0] {
				t.Fatalf("TB %d: empty segment %v", tb.ID, seg)
			}
			if i > 0 && seg[0] < tb.Segments[i-1][1] {
				t.Fatalf("TB %d: overlapping segments %v, %v", tb.ID, tb.Segments[i-1], seg)
			}
			total += seg[1] - seg[0]
		}
		if diff := total - tb.Exec; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("TB %d: segment total %g != exec %g", tb.ID, total, tb.Exec)
		}
	}
	// Without recording, no segments are kept.
	res2, err := Run(Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 32 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range res2.TBs {
		if len(tb.Segments) != 0 {
			t.Error("segments recorded without RecordTimeline")
		}
	}
}

func TestRunRejectsNilInputs(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil topology/kernel should fail")
	}
}

// A kernel whose TBs disagree on rendezvous order must be detected as a
// deadlock by the simulator rather than looping or hanging.
func TestSimDeadlockDetection(t *testing.T) {
	tp := topo.New(1, 2, topo.A100())
	algo := &ir.Algorithm{
		Name: "crossed", Op: ir.OpAllReduce, NRanks: 2, NChunks: 2,
		Transfers: []ir.Transfer{
			{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecv},
			{Src: 0, Dst: 1, Step: 1, Chunk: 1, Type: ir.CommRecv},
		},
	}
	g, err := dag.Build(algo, tp)
	if err != nil {
		t.Fatal(err)
	}
	send0, recv0 := g.Tasks[0].Primitives()
	send1, recv1 := g.Tasks[1].Primitives()
	k := &kernel.Kernel{
		Name: "crossed", Graph: g,
		SendTB: []int{0, 0}, RecvTB: []int{1, 1},
		LinkPreds: make([][]ir.TaskID, 2),
		TBs: []*kernel.TBProgram{
			{ID: 0, Rank: 0, Order: kernel.TaskMajor, Label: "send", Slots: []ir.Primitive{send0, send1}},
			{ID: 1, Rank: 1, Order: kernel.TaskMajor, Label: "recv", Slots: []ir.Primitive{recv1, recv0}},
		},
	}
	_, err = Run(Config{Topo: tp, Kernel: k, BufferBytes: 16 << 20, ChunkBytes: 1 << 20})
	if err == nil {
		t.Fatal("crossed rendezvous order should be reported as deadlock")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error should mention deadlock: %v", err)
	}
}
