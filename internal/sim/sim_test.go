package sim

import (
	"context"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

func compileResCCL(t *testing.T, algo *ir.Algorithm, tp *topo.Topology) *backend.Plan {
	t.Helper()
	plan, err := backend.NewResCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func run(t *testing.T, plan *backend.Plan, tp *topo.Topology, buf int64) *Result {
	t.Helper()
	res, err := Run(Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: buf, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatalf("%s/%s: %v", plan.Backend, plan.Algo.Name, err)
	}
	return res
}

func TestPlanFor(t *testing.T) {
	p := PlanFor(4<<30, 1<<20, 32)
	if p.NMicroBatches != 128 {
		t.Errorf("4GiB/32 chunks: n = %d, want 128", p.NMicroBatches)
	}
	if p.ChunkBytes != 1<<20 {
		t.Errorf("chunk = %f, want 1MiB", p.ChunkBytes)
	}
	// Small buffers shrink the chunk, not drop below one micro-batch.
	p = PlanFor(8<<20, 1<<20, 32)
	if p.NMicroBatches != 1 {
		t.Errorf("8MiB/32 chunks: n = %d, want 1", p.NMicroBatches)
	}
	if p.ChunkBytes != (8<<20)/32 {
		t.Errorf("chunk = %f, want 256KiB", p.ChunkBytes)
	}
	// Degenerate inputs stay safe.
	p = PlanFor(0, 0, 4)
	if p.NMicroBatches < 1 || p.ChunkBytes <= 0 {
		t.Errorf("degenerate plan: %+v", p)
	}
}

// A single-node ring AllGather through the full ResCCL pipeline must
// complete, touch every intra-node link, and finish in a physically
// sensible time (not faster than the data could move over one port).
func TestRingAllGatherCompletes(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	a, err := expert.RingAllGather(4)
	if err != nil {
		t.Fatal(err)
	}
	plan := compileResCCL(t, a, tp)
	res := run(t, plan, tp, 64<<20)
	if res.Completion <= 0 {
		t.Fatal("zero completion time")
	}
	if res.Instances != 12*res.Plan.NMicroBatches {
		t.Errorf("instances = %d, want %d", res.Instances, 12*res.Plan.NMicroBatches)
	}
	// Lower bound: each rank must push (n-1)/n of the buffer over its
	// egress at most at TBCapIntra.
	minTime := float64(64<<20) * 3 / 4 / tp.TBCapIntra
	if res.Completion < minTime {
		t.Errorf("completion %.2gs is faster than physics allows (%.2gs)", res.Completion, minTime)
	}
	if len(res.LinkBusy) != 4 {
		t.Errorf("ring-4 should use 4 links, used %d", len(res.LinkBusy))
	}
	util := res.MeanLinkUtilization()
	if util <= 0 || util > 1.0000001 {
		t.Errorf("mean link utilization %f out of range", util)
	}
}

// All three backends must complete the same collective; the result is
// deterministic.
func TestAllBackendsComplete(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	backends := []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()}
	for _, b := range backends {
		plan, err := b.Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		r1 := run(t, plan, tp, 256<<20)
		r2 := run(t, plan, tp, 256<<20)
		if r1.Completion != r2.Completion {
			t.Errorf("%s: nondeterministic completion %v vs %v", b.Name(), r1.Completion, r2.Completion)
		}
		if r1.AlgoBW <= 0 {
			t.Errorf("%s: nonpositive bandwidth", b.Name())
		}
	}
}

// ResCCL must beat the baselines on large buffers for the expert
// algorithm — the headline result (Fig. 6).
func TestResCCLFasterOnLargeBuffers(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	algo, err := expert.HMAllReduce(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	bw := map[string]float64{}
	for _, b := range []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()} {
		plan, err := b.Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		res := run(t, plan, tp, 1<<30)
		bw[b.Name()] = res.AlgoBW
	}
	if bw["ResCCL"] <= bw["MSCCL"] {
		t.Errorf("ResCCL (%.2f GB/s) not faster than MSCCL (%.2f GB/s)", bw["ResCCL"]/1e9, bw["MSCCL"]/1e9)
	}
	if bw["ResCCL"] <= bw["NCCL"] {
		t.Errorf("ResCCL (%.2f GB/s) not faster than NCCL (%.2f GB/s)", bw["ResCCL"]/1e9, bw["NCCL"]/1e9)
	}
}

// TB accounting invariants: exec+sync within lifetime, release at or
// before completion, every TB retired.
func TestTBAccounting(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := synth.TECCLAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.NewMSCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, plan, tp, 128<<20)
	for _, tb := range res.TBs {
		if tb.Release <= 0 || tb.Release > res.Completion+1e-12 {
			t.Errorf("TB %d (%s): release %f outside [0, %f]", tb.ID, tb.Label, tb.Release, res.Completion)
		}
		life := tb.Release - tb.FirstArrival
		if tb.Exec+tb.Sync > life+1e-9 {
			t.Errorf("TB %d: exec %f + sync %f exceeds lifetime %f", tb.ID, tb.Exec, tb.Sync, life)
		}
		if tb.Exec <= 0 {
			t.Errorf("TB %d: no execution time", tb.ID)
		}
	}
}

// The interpreter mode must be slower than direct execution of the same
// kernel (Fig. 3).
func TestInterpreterOverhead(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllGather(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := compileResCCL(t, algo, tp)
	direct := run(t, plan, tp, 256<<20)

	interp := *plan.Kernel
	interp.Mode = 1 // kernel.ModeInterpreted
	res2, err := Run(Config{Topo: tp, Kernel: &interp, BufferBytes: 256 << 20, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completion <= direct.Completion {
		t.Errorf("interpreted (%f) not slower than direct (%f)", res2.Completion, direct.Completion)
	}
}

// Buffer scaling: doubling the buffer should roughly double completion
// time at large sizes (bandwidth-bound regime).
func TestBandwidthBoundScaling(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := compileResCCL(t, algo, tp)
	r1 := run(t, plan, tp, 1<<30)
	r2 := run(t, plan, tp, 2<<30)
	ratio := r2.Completion / r1.Completion
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2x buffer changed completion by %fx, want ≈2x", ratio)
	}
}
