package sim

import (
	"fmt"
	"math"
	"sort"

	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/topo"
)

// Fault injection: a fault.Schedule turns the static Congestion map into
// a time-varying capacity model. Every event window contributes two
// boundaries (open, close); the simulator schedules the next boundary as
// an ordinary heap event, and firing one recomputes the affected
// resources' capacity scale (or thread-block slowdown) and re-solves
// max-min rates for the touched component — the same path a flow
// arrival or departure takes, so determinism is preserved.

// FaultEvent records one fault window the simulator applied, for traces
// and goodput-under-fault reporting.
type FaultEvent struct {
	// Time and End bound the window in simulated seconds.
	Time, End float64
	// Kind is the fault.Kind name ("link-down", "straggler", …).
	Kind string
	// Detail describes the target (resource names, TB, factor).
	Detail string
}

// faultBound is one half of an event window.
type faultBound struct {
	time float64
	on   bool
	ev   fault.Event
}

type faultState struct {
	sched  *fault.Schedule
	bounds []faultBound
	next   int
	// capFactor[r] is the fraction of resource r's capacity surviving
	// the currently active link events (1 = nominal).
	capFactor []float64
	// tbSlow[tb] is the active slowdown of global TB tb (1 = nominal).
	tbSlow []float64
	// applied collects opened windows in firing order.
	applied []FaultEvent
	// scratch for straggler recomputation.
	resScratch []topo.ResourceID
}

func newFaultState(sched *fault.Schedule, s *sim) (*faultState, error) {
	if err := sched.Validate(s.topo, len(s.tbs)); err != nil {
		return nil, fmt.Errorf("sim: invalid fault schedule: %w", err)
	}
	// Permanent link-out events degenerate to capacity ≈ 0 forever and
	// work unchanged; a dead rank, however, has no timing semantics —
	// the plan must be rebuilt around it, which only the runtime (rt)
	// does.
	for _, ev := range sched.Events {
		if ev.Kind == fault.KindRankOut {
			return nil, fmt.Errorf("sim: rank-out faults are runtime-only (rt handles them via replanning); the simulator cannot time a plan with a dead rank")
		}
	}
	fs := &faultState{
		sched:     sched,
		capFactor: make([]float64, s.topo.NResources()),
		tbSlow:    make([]float64, len(s.tbs)),
	}
	for i := range fs.capFactor {
		fs.capFactor[i] = 1
	}
	for i := range fs.tbSlow {
		fs.tbSlow[i] = 1
	}
	for _, ev := range sched.Sorted() {
		fs.bounds = append(fs.bounds,
			faultBound{time: ev.Start, on: true, ev: ev},
			faultBound{time: ev.End(), on: false, ev: ev})
	}
	sort.SliceStable(fs.bounds, func(i, j int) bool {
		if fs.bounds[i].time != fs.bounds[j].time {
			return fs.bounds[i].time < fs.bounds[j].time
		}
		// Close windows before opening new ones at the same instant.
		return !fs.bounds[i].on && fs.bounds[j].on
	})
	return fs, nil
}

// pushNextBound schedules the next unfired boundary as a heap event.
// Close boundaries of permanent events sit at +Inf (sorted last) and are
// never scheduled: the window simply never ends.
func (s *sim) pushNextBound() {
	fs := s.fault
	if fs == nil || fs.next >= len(fs.bounds) {
		return
	}
	if t := fs.bounds[fs.next].time; !math.IsInf(t, 1) {
		s.push(event{time: t, kind: evFault, task: gid(fs.next)})
	}
}

// applyFaultBound fires boundary i: refresh the affected capacity
// scales / TB slowdowns from the set of windows active at s.now, record
// newly opened windows, and re-solve rates around everything touched.
func (s *sim) applyFaultBound(i int) {
	fs := s.fault
	b := fs.bounds[i]
	fs.next = i + 1
	s.pushNextBound()

	if b.on {
		fs.applied = append(fs.applied, FaultEvent{
			Time: b.ev.Start, End: b.ev.End(),
			Kind: b.ev.Kind.String(), Detail: b.ev.Describe(s.topo),
		})
	}
	if b.ev.Kind == fault.KindStraggler {
		fs.refreshTBSlow(b.ev.TB, s.now)
		s.recomputeStraggler(b.ev.TB)
		return
	}
	for _, r := range b.ev.Resources {
		fs.refreshCapFactor(r, s.now)
	}
	s.markDirty(b.ev.Resources)
}

// refreshCapFactor recomputes resource r's surviving-capacity fraction
// from all link windows active at time now.
func (fs *faultState) refreshCapFactor(r topo.ResourceID, now float64) {
	f := 1.0
	for _, ev := range fs.sched.Events {
		if ev.Kind == fault.KindStraggler || ev.Start > now || now >= ev.End() {
			continue
		}
		for _, res := range ev.Resources {
			if res == r {
				if ev.Kind == fault.KindLinkDegrade {
					f *= ev.Factor
				} else {
					f *= fault.DownFactor
				}
				break
			}
		}
	}
	fs.capFactor[r] = f
}

// refreshTBSlow recomputes TB tb's slowdown from all straggler windows
// active at time now.
func (fs *faultState) refreshTBSlow(tb int, now float64) {
	f := 1.0
	for _, ev := range fs.sched.Events {
		if ev.Kind != fault.KindStraggler || ev.TB != tb || ev.Start > now || now >= ev.End() {
			continue
		}
		f *= ev.Factor
	}
	fs.tbSlow[tb] = f
}

// recomputeStraggler re-solves rates for every active flow the TB
// drives — its capability cap changed, so its component's max-min
// shares change too.
func (s *sim) recomputeStraggler(tb int) {
	fs := s.fault
	fs.resScratch = fs.resScratch[:0]
	for t := range s.tasks {
		ts := &s.tasks[t]
		if !ts.active {
			continue
		}
		se := s.sessions[ts.sess]
		if se.tbOff+se.k.SendTB[ts.local] == tb || se.tbOff+se.k.RecvTB[ts.local] == tb {
			fs.resScratch = append(fs.resScratch, ts.resources...)
		}
	}
	if len(fs.resScratch) == 0 {
		return
	}
	s.markDirty(fs.resScratch)
}

// taskSlow returns the slowdown of task t's driving thread blocks (the
// max of its send and receive TB — a transfer runs at its slowest
// driver).
func (s *sim) taskSlow(t gid) float64 {
	fs := s.fault
	ts := &s.tasks[t]
	se := s.sessions[ts.sess]
	a := fs.tbSlow[se.tbOff+se.k.SendTB[ts.local]]
	if b := fs.tbSlow[se.tbOff+se.k.RecvTB[ts.local]]; b > a {
		a = b
	}
	return a
}

// flowCap is the task's effective TB capability under active faults.
func (s *sim) flowCap(t gid) float64 {
	if s.fault == nil {
		return s.tasks[t].cap
	}
	return s.tasks[t].cap / s.taskSlow(t)
}
