// Package sim is the flow-level discrete-event simulator that stands in
// for the GPU cluster: thread blocks are serial actors executing kernel
// programs, chunk transfers are flows that share link bandwidth max-min
// with the paper's Eq. 1 contention penalty, and all the ordering
// semantics of the three execution strategies (§3) emerge from the
// kernel's slot order, data dependencies and link predecessors.
//
// Several kernels can run concurrently as independent sessions sharing
// the fabric (RunConcurrent) — the substrate for simulating
// data-parallel process groups and multi-tenant contention.
//
// The simulator is deterministic: identical inputs produce identical
// timings, which the experiment harness and golden tests rely on.
package sim

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/simcost"
	"github.com/resccl/resccl/internal/topo"
)

// Config parameterises a single-kernel simulation run.
type Config struct {
	Topo   *topo.Topology
	Kernel *kernel.Kernel
	// BufferBytes is the per-rank payload S the collective synchronises.
	BufferBytes int64
	// ChunkBytes is the target transfer chunk size (the paper fixes
	// 1 MiB). The effective chunk shrinks for small buffers so at least
	// one micro-batch exists.
	ChunkBytes int64
	// Congestion maps links to the fraction of their capacity consumed
	// by background traffic from other jobs (§4.4's network-contention
	// scenario). A congested link both loses capacity and reaches its
	// Eq. 1 contention regime sooner.
	Congestion map[topo.ResourceID]float64
	// Faults is an optional deterministic fault schedule (link
	// degradation/outage windows, NIC flaps, straggler TBs) applied
	// while the run executes — the time-varying generalisation of
	// Congestion. Nil or empty injects nothing and leaves timings
	// bit-identical to a fault-free run.
	Faults *fault.Schedule
	// RecordTimeline captures per-TB busy segments for Gantt rendering
	// (trace.RenderTimeline). Off by default: large runs produce many
	// segments.
	RecordTimeline bool
	// FullResolve disables the coalesced incremental rate solver and
	// re-solves max-min rates eagerly after every event — the retained
	// reference implementation. Timings are bit-identical either way
	// (the equivalence property test enforces it); the reference path
	// exists for debugging and as the oracle in that test, not for
	// production use.
	FullResolve bool
}

// Session is one kernel participating in a concurrent run.
type Session struct {
	Kernel      *kernel.Kernel
	BufferBytes int64
	ChunkBytes  int64
}

// MultiConfig parameterises a concurrent multi-session run. Every
// session's kernel must target the same topology.
type MultiConfig struct {
	Topo           *topo.Topology
	Sessions       []Session
	Congestion     map[topo.ResourceID]float64
	Faults         *fault.Schedule
	RecordTimeline bool
	// FullResolve selects the eager per-event reference rate solver; see
	// Config.FullResolve.
	FullResolve bool
}

// Plan describes the derived micro-batch geometry of a run; see
// simcost.Plan.
type Plan = simcost.Plan

// PlanFor derives the micro-batch count and effective chunk size from a
// buffer size; see simcost.PlanFor.
func PlanFor(bufferBytes, chunkBytes int64, nChunks int) Plan {
	return simcost.PlanFor(bufferBytes, chunkBytes, nChunks)
}

// InstanceSpan records one executed task invocation when the run is
// configured with RecordTimeline: which task, which micro-batch, when it
// ran (startup + data phase), which TBs drove it and which links it
// crossed. Spans are appended in completion order, which is
// deterministic.
type InstanceSpan struct {
	// Task is the task's index within its session's graph.
	Task ir.TaskID
	// MB is the micro-batch invocation index.
	MB int
	// Src and Dst are the transfer endpoints.
	Src, Dst ir.Rank
	// SendTB and RecvTB are the kernel-local thread-block IDs that
	// executed the primitive pair.
	SendTB, RecvTB int
	// Start and End bound the instance (startup latency + data phase) in
	// simulated seconds.
	Start, End float64
	// Links are the communication links the transfer occupied (shared
	// with the kernel graph; treat as read-only).
	Links []topo.LinkID
}

// TBStats reports one thread block's lifecycle.
type TBStats struct {
	ID    int
	Rank  ir.Rank
	Label string
	// Segments holds merged busy intervals [start,end) when the run was
	// configured with RecordTimeline.
	Segments [][2]float64
	// FirstArrival is when the TB issued its first primitive; Release is
	// when it retired its last.
	FirstArrival, Release float64
	// Exec is time spent driving transfers (latency + data phases);
	// Sync is time spent blocked waiting for peers, dependencies or
	// link turns.
	Exec, Sync float64
	// Slots is the TB's primitive count.
	Slots int
}

// Result is the outcome of a single-kernel simulation.
type Result struct {
	// Completion is the collective's total time in seconds.
	Completion float64
	// AlgoBW is BufferBytes / Completion — the "algorithm bandwidth"
	// metric of §5.2, in bytes/s.
	AlgoBW float64
	// Plan echoes the derived micro-batch geometry.
	Plan Plan
	// TBs has one entry per thread block.
	TBs []TBStats
	// LinkBusy maps every communication link that carried traffic to
	// its busy time (≥1 transfer committed).
	LinkBusy map[topo.LinkID]float64
	// Instances is the number of task invocations executed.
	Instances int
	// Events is the total number of discrete events the simulator
	// processed over the whole run (shared across sessions in a
	// concurrent run) — the harness's throughput denominator.
	Events int
	// Faults lists the fault windows the simulator applied (opened)
	// during the run, in firing order. Empty for fault-free runs.
	Faults []FaultEvent
	// Timeline holds one record per executed task instance when the run
	// was configured with RecordTimeline, in completion order.
	Timeline []InstanceSpan
}

// MultiResult is the outcome of a concurrent run.
type MultiResult struct {
	// Completion is when the last session finished.
	Completion float64
	// Sessions holds one Result per session, in input order; each
	// session's Completion is its own finish time.
	Sessions []*Result
	// LinkBusy aggregates busy time over all sessions.
	LinkBusy map[topo.LinkID]float64
	// Events is the total number of discrete events processed.
	Events int
	// Faults lists the applied fault windows, shared across sessions.
	Faults []FaultEvent
}

// MeanLinkUtilization returns the average busy fraction over links that
// carried traffic — Table 1's "global link utilization".
func (r *Result) MeanLinkUtilization() float64 {
	if len(r.LinkBusy) == 0 || r.Completion <= 0 {
		return 0
	}
	// Sum in sorted link order: float addition is order-sensitive, and
	// map iteration order would leak into the reported utilization.
	links := make([]topo.LinkID, 0, len(r.LinkBusy))
	for l := range r.LinkBusy { //resccl:allow mapiter
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	sum := 0.0
	for _, l := range links {
		sum += r.LinkBusy[l]
	}
	return sum / (float64(len(r.LinkBusy)) * r.Completion)
}

// Run simulates a single kernel to completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Topo == nil || cfg.Kernel == nil {
		return nil, fmt.Errorf("sim: nil topology or kernel")
	}
	mr, err := RunConcurrent(MultiConfig{
		Topo:           cfg.Topo,
		Sessions:       []Session{{Kernel: cfg.Kernel, BufferBytes: cfg.BufferBytes, ChunkBytes: cfg.ChunkBytes}},
		Congestion:     cfg.Congestion,
		Faults:         cfg.Faults,
		RecordTimeline: cfg.RecordTimeline,
		FullResolve:    cfg.FullResolve,
	})
	if err != nil {
		return nil, err
	}
	return mr.Sessions[0], nil
}

// RunConcurrent simulates several kernels sharing the fabric.
func RunConcurrent(cfg MultiConfig) (*MultiResult, error) {
	if cfg.Topo == nil || len(cfg.Sessions) == 0 {
		return nil, fmt.Errorf("sim: concurrent run needs a topology and at least one session")
	}
	for i, se := range cfg.Sessions {
		if se.Kernel == nil {
			return nil, fmt.Errorf("sim: session %d has no kernel", i)
		}
		if se.Kernel.Graph.Algo.NRanks != cfg.Topo.NRanks() {
			return nil, fmt.Errorf("sim: session %d kernel targets %d ranks, topology has %d",
				i, se.Kernel.Graph.Algo.NRanks, cfg.Topo.NRanks())
		}
	}
	s := newSim(cfg)
	if !cfg.Faults.Empty() {
		fs, err := newFaultState(cfg.Faults, s)
		if err != nil {
			return nil, err
		}
		s.fault = fs
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// event kinds.
const (
	evLatencyDone = iota
	evDataDone
	// evFault fires a fault-schedule boundary (fault.go); the event's
	// task field carries the boundary index.
	evFault
)

// gid is a global task index across sessions.
type gid = int32

type event struct {
	time    float64
	seq     int
	kind    int
	task    gid
	version int // guards stale data-done events after rate changes
}

// eventHeap is a hand-rolled binary min-heap over event values. The
// standard container/heap would box every event into an interface on
// Push and Pop — one allocation each — which dominates the simulator's
// steady-state allocation profile; the typed heap keeps events inline.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	// Sift up.
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	n := len(hh) - 1
	top := hh[0]
	hh[0] = hh[n]
	*h = hh[:n]
	hh = hh[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && hh.less(l, smallest) {
			smallest = l
		}
		if r < n && hh.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		hh[i], hh[smallest] = hh[smallest], hh[i]
		i = smallest
	}
	return top
}

type tbState struct {
	prog *kernel.TBProgram
	sess int
	// next is the index of the next instruction to issue.
	next int
	// arrival is when the TB reached its current instruction.
	arrival float64
	// started is when the current instance began transferring.
	started  float64
	inFlight bool
	done     bool

	firstArrival float64
	release      float64
	exec, sync   float64

	// segments holds merged [start,end) busy intervals when timeline
	// recording is enabled.
	segments [][2]float64
}

type taskState struct {
	sess int32
	// local is the task's index within its session's graph.
	local ir.TaskID
	// doneMB is the number of completed micro-batch invocations; the
	// pending invocation is always index doneMB (strict serial order).
	doneMB int
	// sendArr/recvArr mark that the task's TBs have arrived at the
	// pending invocation.
	sendArr, recvArr bool
	inFlight         bool
	// flow state while in the data phase.
	remaining  float64
	rate       float64
	lastUpdate float64
	active     bool
	version    int
	cap        float64
	resources  []topo.ResourceID
	alpha      float64
	// linkSucc lists tasks (global ids) whose LinkPreds include this
	// task.
	linkSucc []gid
}

// session holds one kernel's execution state within a concurrent run.
type session struct {
	k      *kernel.Kernel
	plan   Plan
	buffer int64
	interp float64
	// wire inflates each chunk's payload bytes to wire bytes under the
	// kernel's protocol tier (1/BWFactor): LL moves two wire bytes per
	// payload byte, so capacities and TB capabilities stay expressed in
	// wire bytes and cross-tier contention remains physical.
	wire float64
	// taskOff/tbOff map local ids into the global arrays.
	taskOff gid
	tbOff   int
	nTasks  int
	nTBs    int

	doneTBs    int
	instances  int
	completion float64

	// mbRemaining[i] counts unfinished task invocations of micro-batch
	// i when the kernel runs with a per-micro-batch barrier.
	mbRemaining []int
	mbReleased  int

	// timeline accumulates per-instance spans under RecordTimeline.
	timeline []InstanceSpan
}

type sim struct {
	cfg  MultiConfig
	topo *topo.Topology

	sessions []*session

	now    float64
	events eventHeap
	seq    int

	tbs   []*tbState
	tasks []taskState

	// Active-flow membership per resource, stored as a CSR arena sized
	// from the plans at construction: resource r's active flows live in
	// resArena[resSlot[r] : resSlot[r]+resCnt[r]], with capacity equal to
	// the number of tasks whose path crosses r (a task has at most one
	// in-flight instance, so that bound is exact). Joining and leaving a
	// resource is a write/swap-remove into the arena — no slice growth,
	// no per-resource headers.
	resArena []gid
	resSlot  []int32
	resCnt   []int32
	// resBusy accounting.
	resBusy      []float64
	resActiveCnt []int
	resBusyStart []float64
	usedLinks    map[topo.LinkID]struct{}

	// Deferred-solve state (rates.go): resources perturbed at the
	// current timestamp, deduplicated by a generation mark, plus the
	// per-flush component-coverage marks. fullResolve switches to the
	// eager reference solver.
	dirtySeeds  []topo.ResourceID
	dirtyMark   []int32
	dirtyGen    int32
	coveredMark []int32
	coveredGen  int32
	seedOne     [1]topo.ResourceID
	fullResolve bool

	doneTBs int
	// processed counts events handled by run().
	processed int

	// scratch holds the allocation-free working state of the rate
	// computation (rates.go).
	scratch rateScratch

	// congestion[r] is the capacity fraction lost to background traffic
	// (nil when the run is uncongested).
	congestion []float64

	// fault holds the time-varying fault engine, nil for fault-free runs
	// — every fault code path is gated on it so fault-free timings stay
	// bit-identical.
	fault *faultState
}

func newSim(cfg MultiConfig) *sim {
	t := cfg.Topo
	s := &sim{
		cfg:          cfg,
		topo:         t,
		resBusy:      make([]float64, t.NResources()),
		resActiveCnt: make([]int, t.NResources()),
		resBusyStart: make([]float64, t.NResources()),
		usedLinks:    make(map[topo.LinkID]struct{}),
		dirtyMark:    make([]int32, t.NResources()),
		coveredMark:  make([]int32, t.NResources()),
		dirtyGen:     1,
		coveredGen:   0,
		fullResolve:  cfg.FullResolve,
	}
	if len(cfg.Congestion) > 0 {
		s.congestion = make([]float64, t.NResources())
		// Map→slice copy keyed by resource index: order-independent.
		for r, f := range cfg.Congestion { //resccl:allow mapiter
			if f < 0 {
				f = 0
			}
			if f > 0.95 {
				f = 0.95
			}
			s.congestion[r] = f
		}
	}
	totalTasks, totalTBs := 0, 0
	for _, sc := range cfg.Sessions {
		totalTasks += len(sc.Kernel.Graph.Tasks)
		totalTBs += len(sc.Kernel.TBs)
	}
	s.tasks = make([]taskState, totalTasks)
	s.tbs = make([]*tbState, totalTBs)

	taskOff, tbOff := gid(0), 0
	for si, sc := range cfg.Sessions {
		k := sc.Kernel
		// The kernel's protocol tier shapes the session's micro-batch
		// geometry (chunk cap), startup latency (α factor) and wire-byte
		// inflation (bandwidth factor). ProtoAuto/ProtoSimple are the
		// identity on all three.
		params := Params(k.Protocol)
		se := &session{
			k:       k,
			plan:    PlanFor(sc.BufferBytes, params.EffectiveChunk(sc.ChunkBytes), k.Graph.Algo.NChunks),
			buffer:  sc.BufferBytes,
			wire:    1 / params.BWFactor,
			taskOff: taskOff,
			tbOff:   tbOff,
			nTasks:  len(k.Graph.Tasks),
			nTBs:    len(k.TBs),
		}
		if k.Mode == kernel.ModeInterpreted {
			se.interp = t.InterpCost.Seconds()
		}
		g := k.Graph
		for i := 0; i < se.nTasks; i++ {
			ts := &s.tasks[int(taskOff)+i]
			p := g.Paths[i]
			ts.sess = int32(si)
			ts.local = ir.TaskID(i)
			ts.cap = p.TBCap
			ts.resources = p.Resources
			ts.alpha = p.Alpha.Seconds() * params.AlphaFactor
		}
		for lt, preds := range k.LinkPreds {
			for _, p := range preds {
				s.tasks[int(taskOff)+int(p)].linkSucc =
					append(s.tasks[int(taskOff)+int(p)].linkSucc, taskOff+gid(lt))
			}
		}
		if k.MBBarrier {
			se.mbRemaining = make([]int, se.plan.NMicroBatches)
			for i := range se.mbRemaining {
				se.mbRemaining[i] = se.nTasks
			}
		}
		start := 0.0
		if k.Mode == kernel.ModeDirect {
			start = t.KernelLoad.Seconds()
		}
		for i, prog := range k.TBs {
			s.tbs[tbOff+i] = &tbState{prog: prog, sess: si, arrival: start, firstArrival: start}
		}
		s.sessions = append(s.sessions, se)
		taskOff += gid(se.nTasks)
		tbOff += se.nTBs
	}
	// Size the flow-membership arena from the plans: each resource gets
	// exactly as many slots as tasks crossing it.
	s.resSlot = make([]int32, t.NResources()+1)
	s.resCnt = make([]int32, t.NResources())
	for i := range s.tasks {
		for _, r := range s.tasks[i].resources {
			s.resSlot[r+1]++
		}
	}
	for r := 1; r < len(s.resSlot); r++ {
		s.resSlot[r] += s.resSlot[r-1]
	}
	s.resArena = make([]gid, s.resSlot[len(s.resSlot)-1])
	s.scratch.init(totalTasks, t.NResources())
	return s
}

// resFlowsOf returns the tasks (global ids) with an active flow on the
// resource, in join order (departures swap-remove).
func (s *sim) resFlowsOf(r topo.ResourceID) []gid {
	off := s.resSlot[r]
	return s.resArena[off : off+s.resCnt[r]]
}

// joinResource adds task t's flow to resource r's membership.
func (s *sim) joinResource(r topo.ResourceID, t gid) {
	s.resArena[s.resSlot[r]+s.resCnt[r]] = t
	s.resCnt[r]++
}

// leaveResource removes task t's flow from resource r's membership.
func (s *sim) leaveResource(r topo.ResourceID, t gid) {
	off, n := s.resSlot[r], s.resCnt[r]
	list := s.resArena[off : off+n]
	for i, x := range list {
		if x == t {
			list[i] = list[n-1]
			s.resCnt[r] = n - 1
			return
		}
	}
}

// sess returns the session owning a global task id.
func (s *sim) sess(t gid) *session { return s.sessions[s.tasks[t].sess] }

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}

func (s *sim) run() error {
	// Arm the first fault boundary (no-op for fault-free runs).
	s.pushNextBound()
	// Initial arrivals.
	for _, tb := range s.tbs {
		s.arrive(tb)
	}
	for i := range s.tbs {
		s.tryStart(s.currentTask(s.tbs[i]))
	}
	// Budget: every instance costs two lifecycle events plus rate-change
	// reschedules proportional to its contention component size.
	totalInstances := 0
	for _, se := range s.sessions {
		totalInstances += se.nTasks * se.plan.NMicroBatches
	}
	maxEvents := 512*(totalInstances+16) + 1<<20
	if s.fault != nil {
		maxEvents += 2 * len(s.fault.bounds)
	}
	processed := 0
	for s.events.Len() > 0 {
		// Fault boundaries may extend past the collective's completion;
		// stop once every TB retired rather than drain them.
		if s.fault != nil && s.doneTBs == len(s.tbs) {
			break
		}
		e := s.events.pop()
		processed++
		if processed > maxEvents {
			return fmt.Errorf("sim: event budget exceeded (%d events) — livelock", processed)
		}
		s.now = e.time
		switch e.kind {
		case evLatencyDone:
			s.enterDataPhase(e.task)
		case evDataDone:
			ts := &s.tasks[e.task]
			if ts.active && ts.version == e.version {
				s.finishInstance(e.task)
			}
			// else stale: rates changed since this event was scheduled
		case evFault:
			s.applyFaultBound(int(e.task))
		}
		// Rate solves are deferred while events share a timestamp: zero
		// simulated time elapses between them, so one solve over the
		// final state of the batch is exact (rates.go). Flushing may
		// schedule further events at the current instant (a drained flow
		// completes "now"), which simply extends the batch.
		if s.events.Len() == 0 || s.events[0].time != s.now {
			s.flushRates()
		}
	}
	s.processed = processed
	if s.doneTBs != len(s.tbs) {
		return s.deadlockError()
	}
	return nil
}

// currentTask returns the global task id of the TB's pending
// instruction, or -1 if the TB is done.
func (s *sim) currentTask(tb *tbState) gid {
	if tb.done {
		return -1
	}
	se := s.sessions[tb.sess]
	slot, _ := tb.prog.Instr(tb.next, se.plan.NMicroBatches)
	return se.taskOff + gid(tb.prog.Slots[slot].Task.ID)
}

// arrive marks the TB as having reached its pending instruction and
// registers the arrival with the task.
func (s *sim) arrive(tb *tbState) {
	if tb.done {
		return
	}
	se := s.sessions[tb.sess]
	t := s.currentTask(tb)
	ts := &s.tasks[t]
	slot, _ := tb.prog.Instr(tb.next, se.plan.NMicroBatches)
	if tb.prog.Slots[slot].Kind == ir.PrimSend {
		ts.sendArr = true
	} else {
		ts.recvArr = true
	}
	tb.arrival = s.now
	if tb.arrival < tb.firstArrival {
		tb.firstArrival = tb.arrival
	}
}

// tryStart launches the pending invocation of task t if every readiness
// condition holds: both TBs arrived, data dependencies done for this
// micro-batch, and (ResCCL kernels) all link predecessors fully drained.
func (s *sim) tryStart(t gid) {
	if t < 0 {
		return
	}
	ts := &s.tasks[t]
	se := s.sess(t)
	if ts.inFlight || ts.doneMB >= se.plan.NMicroBatches {
		return
	}
	if !ts.sendArr || !ts.recvArr {
		return
	}
	i := ts.doneMB
	if se.k.MBBarrier && i > se.mbReleased {
		return // lazy execution: previous micro-batch still in flight
	}
	g := se.k.Graph
	for _, d := range g.Deps[ts.local] {
		if s.tasks[se.taskOff+gid(d)].doneMB <= i {
			return
		}
	}
	for _, p := range se.k.LinkPreds[ts.local] {
		if s.tasks[se.taskOff+gid(p)].doneMB < se.plan.NMicroBatches {
			return
		}
	}
	// Start: both TBs transition from waiting to executing, and the
	// path's resources are committed to the transfer (busy accounting
	// covers the startup phase as well as data movement).
	ts.inFlight = true
	for _, tbID := range []int{se.k.SendTB[ts.local], se.k.RecvTB[ts.local]} {
		tb := s.tbs[se.tbOff+tbID]
		tb.sync += s.now - tb.arrival
		tb.started = s.now
		tb.inFlight = true
	}
	for _, r := range ts.resources {
		s.resActiveCnt[r]++
		if s.resActiveCnt[r] == 1 {
			s.resBusyStart[r] = s.now
		}
	}
	for _, l := range g.Links[ts.local] {
		s.usedLinks[l] = struct{}{}
	}
	lat := ts.alpha + 2*se.interp
	if s.fault != nil {
		// A straggling TB pays its slowdown on the startup phase too.
		lat *= s.taskSlow(t)
	}
	s.push(event{time: s.now + lat, kind: evLatencyDone, task: t})
}

// enterDataPhase joins the flow to its resources and marks the affected
// component for a rate re-solve.
func (s *sim) enterDataPhase(t gid) {
	ts := &s.tasks[t]
	se := s.sess(t)
	ts.active = true
	ts.remaining = se.plan.ChunkBytes * se.wire
	ts.lastUpdate = s.now
	ts.rate = 0
	for _, r := range ts.resources {
		s.joinResource(r, t)
	}
	s.markDirty(ts.resources)
}

// finishInstance completes the pending invocation of task t: leave the
// resources, advance both TBs, release dependents and link successors.
func (s *sim) finishInstance(t gid) {
	ts := &s.tasks[t]
	se := s.sess(t)
	for _, r := range ts.resources {
		s.leaveResource(r, t)
		s.resActiveCnt[r]--
		if s.resActiveCnt[r] == 0 {
			s.resBusy[r] += s.now - s.resBusyStart[r]
		}
	}
	ts.active = false
	ts.inFlight = false
	ts.sendArr = false
	ts.recvArr = false
	ts.doneMB++
	se.instances++

	// Rates of former sharers may rise.
	s.markDirty(ts.resources)

	sendTB := s.tbs[se.tbOff+se.k.SendTB[ts.local]]
	recvTB := s.tbs[se.tbOff+se.k.RecvTB[ts.local]]
	if s.cfg.RecordTimeline {
		task := se.k.Graph.Tasks[ts.local]
		se.timeline = append(se.timeline, InstanceSpan{
			Task: ts.local, MB: ts.doneMB - 1,
			Src: task.Src, Dst: task.Dst,
			SendTB: se.k.SendTB[ts.local], RecvTB: se.k.RecvTB[ts.local],
			Start: sendTB.started, End: s.now,
			Links: se.k.Graph.Links[ts.local],
		})
	}
	for _, tb := range []*tbState{sendTB, recvTB} {
		tb.exec += s.now - tb.started
		if s.cfg.RecordTimeline {
			if n := len(tb.segments); n > 0 && tb.segments[n-1][1] >= tb.started-1e-12 {
				tb.segments[n-1][1] = s.now
			} else {
				tb.segments = append(tb.segments, [2]float64{tb.started, s.now})
			}
		}
		tb.inFlight = false
		tb.next++
		if tb.next >= tb.prog.NInstr(se.plan.NMicroBatches) {
			tb.done = true
			tb.release = s.now
			s.doneTBs++
			se.doneTBs++
			if se.doneTBs == se.nTBs {
				se.completion = s.now
			}
			continue
		}
		s.arrive(tb)
	}
	// Wake the TBs' new tasks, the dependents, and link successors.
	s.tryStart(s.currentTask(sendTB))
	s.tryStart(s.currentTask(recvTB))
	// The same task may still have micro-batches left (its TBs loop on
	// it); tryStart above covers that case because currentTask returns t
	// again.
	for _, dep := range se.k.Graph.Dependents[ts.local] {
		s.tryStart(se.taskOff + gid(dep))
	}
	if ts.doneMB == se.plan.NMicroBatches {
		for _, succ := range ts.linkSucc {
			s.tryStart(succ)
		}
	}
	if se.mbRemaining != nil {
		mb := ts.doneMB - 1
		se.mbRemaining[mb]--
		if se.mbRemaining[mb] == 0 && mb+1 > se.mbReleased {
			se.mbReleased = mb + 1
			// The barrier lifted: every waiting TB of this session may
			// now proceed.
			for i := 0; i < se.nTBs; i++ {
				s.tryStart(s.currentTask(s.tbs[se.tbOff+i]))
			}
		}
	}
}

func (s *sim) deadlockError() error {
	var blocked []string
	for _, tb := range s.tbs {
		if tb.done {
			continue
		}
		t := s.currentTask(tb)
		ts := &s.tasks[t]
		blocked = append(blocked, fmt.Sprintf(
			"session %d TB %d (%s) at task %d mb %d/%d (sendArr=%v recvArr=%v)",
			tb.sess, tb.prog.ID, tb.prog.Label, ts.local, ts.doneMB,
			s.sessions[tb.sess].plan.NMicroBatches, ts.sendArr, ts.recvArr))
		if len(blocked) >= 8 {
			break
		}
	}
	return fmt.Errorf("sim: deadlock at t=%.6fs: %d/%d TBs done; blocked: %v",
		s.now, s.doneTBs, len(s.tbs), blocked)
}

func (s *sim) result() *MultiResult {
	mr := &MultiResult{
		Completion: s.now,
		LinkBusy:   make(map[topo.LinkID]float64, len(s.usedLinks)),
		Events:     s.processed,
	}
	if s.fault != nil {
		mr.Faults = s.fault.applied
	}
	// Map→map copy: order-independent.
	for l := range s.usedLinks { //resccl:allow mapiter
		mr.LinkBusy[l] = s.resBusy[l]
	}
	for _, se := range s.sessions {
		r := &Result{
			Completion: se.completion,
			Plan:       se.plan,
			Instances:  se.instances,
			Events:     s.processed,
			LinkBusy:   mr.LinkBusy,
			Faults:     mr.Faults,
			Timeline:   se.timeline,
		}
		if se.buffer > 0 && se.completion > 0 {
			r.AlgoBW = float64(se.buffer) / se.completion
		}
		for i := 0; i < se.nTBs; i++ {
			tb := s.tbs[se.tbOff+i]
			r.TBs = append(r.TBs, TBStats{
				ID:           tb.prog.ID,
				Rank:         tb.prog.Rank,
				Label:        tb.prog.Label,
				Segments:     tb.segments,
				FirstArrival: tb.firstArrival,
				Release:      tb.release,
				Exec:         tb.exec,
				Sync:         tb.sync,
				Slots:        len(tb.prog.Slots),
			})
		}
		sort.Slice(r.TBs, func(i, j int) bool { return r.TBs[i].ID < r.TBs[j].ID })
		mr.Sessions = append(mr.Sessions, r)
	}
	return mr
}

// scheduleDataDone (re)schedules the completion event for an active flow
// after a rate change.
func (s *sim) scheduleDataDone(t gid) {
	ts := &s.tasks[t]
	ts.version++
	if ts.rate <= 0 {
		// A flow can only be rate-zero if a resource is fully consumed
		// by frozen flows, which max-min never produces with positive
		// capacities; guard against division by zero regardless.
		ts.rate = 1
	}
	fin := s.now + ts.remaining/ts.rate
	if ts.remaining <= 1e-9 {
		fin = s.now
	}
	s.push(event{time: fin, kind: evDataDone, task: t, version: ts.version})
}

// advanceFlow charges elapsed transmission to the flow's remaining bytes.
func (s *sim) advanceFlow(t gid) {
	ts := &s.tasks[t]
	if !ts.active {
		return
	}
	elapsed := s.now - ts.lastUpdate
	if elapsed > 0 && ts.rate > 0 {
		ts.remaining -= elapsed * ts.rate
		if ts.remaining < 0 {
			ts.remaining = 0
		}
	}
	ts.lastUpdate = s.now
}
