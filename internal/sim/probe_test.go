package sim

import (
	"context"
	"fmt"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// TestProbeBandwidthTable prints the backend comparison table; run with
// -v to inspect model calibration.
func TestProbeBandwidthTable(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	tp := topo.New(2, 8, topo.A100())
	algoAG, _ := expert.HMAllGather(2, 8)
	algoAR, _ := expert.HMAllReduce(2, 8)
	bufs := []int64{8 << 20, 128 << 20, 1 << 30}
	bks := []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()}
	for _, pair := range []struct {
		name string
		algo *ir.Algorithm
	}{{"HM-AG", algoAG}, {"HM-AR", algoAR}} {
		t.Logf("== %s 2x8 A100, algbw GB/s", pair.name)
		plans := map[string]*backend.Plan{}
		for _, b := range bks {
			p, err := b.Compile(context.Background(), backend.Request{Algo: pair.algo, Topo: tp})
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			plans[b.Name()] = p
		}
		t.Logf("%-8s %10s %10s %10s", "bufMB", "NCCL", "MSCCL", "ResCCL")
		for _, buf := range bufs {
			row := fmt.Sprintf("%-8d", buf>>20)
			for _, n := range []string{"NCCL", "MSCCL", "ResCCL"} {
				res, err := Run(Config{Topo: tp, Kernel: plans[n].Kernel, BufferBytes: buf, ChunkBytes: 1 << 20})
				if err != nil {
					t.Fatalf("%s buf %d: %v", n, buf, err)
				}
				row += fmt.Sprintf(" %10.1f", res.AlgoBW/1e9)
			}
			t.Log(row)
		}
	}
}
