package sim

import (
	"context"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/topo"
)

// BenchmarkLargeAllReduce exercises the simulator's hot path: a 32-rank
// HM AllReduce of 1 GiB on the MSCCL backend (heaviest contention).
func BenchmarkLargeAllReduce(b *testing.B) {
	tp := topo.New(4, 8, topo.A100())
	algo, err := expert.HMAllReduce(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := backend.NewMSCCL().Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 1 << 30, ChunkBytes: 1 << 20}); err != nil {
			b.Fatal(err)
		}
	}
}
