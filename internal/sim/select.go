package sim

import (
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Protocol auto-selection for the NCCL baseline. Real NCCL keeps a
// tuning table mapping (collective, message size, topology) to a
// protocol tier: LL below a few megabytes, LL128 through the tens of
// megabytes, Simple beyond. This file reproduces that table
// analytically from the simulator's own cost model, so the baseline's
// small-buffer behaviour tracks the library it emulates.
//
// Compilation is size-independent, so the tier is resolved at request
// time — where the buffer size is known — and travels on the backend
// Request into the plan-cache fingerprint.

// selectionChannels is the channel count the analytic model assumes,
// matching the NCCL backend's default. The switch points move only
// marginally with the channel count (it scales the per-micro-batch
// payload, not the per-hop cost ratio between tiers).
const selectionChannels = 4

// SelectProtocol picks the protocol tier NCCL would use for a
// collective of bufferBytes per rank on the topology: the
// highest-bandwidth tier whose analytic completion estimate wins at
// that size. Thresholds come from ProtocolSwitchPoints, so the choice
// is monotone in size by construction: LL, then LL128, then Simple.
func SelectProtocol(tp *topo.Topology, op ir.OpType, bufferBytes int64) ir.Protocol {
	llMax, ll128Max := ProtocolSwitchPoints(tp, op)
	switch {
	case bufferBytes <= llMax:
		return ir.ProtoLL
	case bufferBytes <= ll128Max:
		return ir.ProtoLL128
	default:
		return ir.ProtoSimple
	}
}

// ProtocolSwitchPoints returns the largest per-rank buffer sizes (in
// bytes) at which LL and LL128 are still selected: sizes ≤ llMax run
// LL, sizes in (llMax, ll128Max] run LL128, larger sizes run Simple.
// llMax ≤ ll128Max always holds. The points are found by scanning a
// geometric size grid and comparing per-tier analytic completion
// estimates; each tier's estimate grows with size at a rate ordered
// inversely to its effective bandwidth, so the winning tier transitions
// LL → LL128 → Simple exactly once each.
func ProtocolSwitchPoints(tp *topo.Topology, op ir.OpType) (llMax, ll128Max int64) {
	const (
		minSize int64 = 1 << 10 // 1 KiB
		maxSize int64 = 1 << 32 // 4 GiB: deep in Simple territory everywhere
	)
	for s := minSize; s <= maxSize; s *= 2 {
		tLL := estimateCompletion(tp, op, s, ir.ProtoLL)
		tLL128 := estimateCompletion(tp, op, s, ir.ProtoLL128)
		tSimple := estimateCompletion(tp, op, s, ir.ProtoSimple)
		// Ties favour the higher-bandwidth tier, matching NCCL's
		// preference for Simple when protocols measure equal.
		if tLL < tLL128 && tLL < tSimple {
			llMax = s
		}
		if tLL128 < tSimple {
			ll128Max = s
		}
	}
	if ll128Max < llMax {
		ll128Max = llMax
	}
	return llMax, ll128Max
}

// estimateCompletion is the closed-form completion estimate of the NCCL
// channelized-ring plan for one tier: nMB micro-batches, each paying
// `steps` serialized hops of (scaled startup α + interpreter cost +
// chunk wire time) on the bottleneck link. It mirrors the simulator's
// micro-batch geometry via PlanFor and Params; contention between
// channels is tier-independent and drops out of the comparison.
func estimateCompletion(tp *topo.Topology, op ir.OpType, bufferBytes int64, proto ir.Protocol) float64 {
	params := Params(proto)
	nRanks := tp.NRanks()
	nChunks := nRanks * selectionChannels
	steps := nRanks - 1
	switch op {
	case ir.OpAllReduce:
		steps = 2 * (nRanks - 1) // reduce-scatter pass + all-gather pass
	case ir.OpAllToAll:
		nChunks = nRanks * nRanks // grouped p2p: no channel striping
		steps = 1
	}
	// Bottleneck path: the NIC for multi-node rings, a point-to-point
	// NVLink channel inside one server.
	alpha := tp.LatIntra.Seconds()
	bw := tp.NVLinkBW
	if tp.TBCapIntra < bw {
		bw = tp.TBCapIntra
	}
	if tp.NNodes > 1 {
		alpha = tp.LatInter.Seconds()
		bw = tp.NICBW
		if tp.TBCapInter < bw {
			bw = tp.TBCapInter
		}
	}
	plan := PlanFor(bufferBytes, params.EffectiveChunk(1<<20), nChunks)
	perHop := alpha*params.AlphaFactor + 2*tp.InterpCost.Seconds() +
		plan.ChunkBytes/(params.BWFactor*bw)
	return float64(plan.NMicroBatches) * float64(steps) * perHop
}
