package bench

import (
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// Ablations regenerates the design-choice studies DESIGN.md calls out:
// execution granularity (§3's three strategies on one algorithm), TB
// allocation policy, scheduling policy, and chunk size.
func Ablations(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 8, topo.A100())
	buf := int64(512 << 20)
	if opts.Quick {
		buf = 128 << 20
	}
	algo, err := expertAR(2, 8)
	if err != nil {
		return nil, err
	}

	granularity, err := granularityAblation(opts, tp, algo, buf)
	if err != nil {
		return nil, err
	}
	alloc, err := allocAblation(opts, tp, algo, buf)
	if err != nil {
		return nil, err
	}
	policy, err := policyAblation(opts, tp, algo, buf)
	if err != nil {
		return nil, err
	}
	chunk, err := chunkAblation(opts, tp, algo, buf)
	if err != nil {
		return nil, err
	}
	contention, err := contentionAblation(opts, tp, algo, buf)
	if err != nil {
		return nil, err
	}
	tenants, err := tenantAblation(opts, tp, algo, buf)
	if err != nil {
		return nil, err
	}
	return []*Table{granularity, alloc, policy, chunk, contention, tenants}, nil
}

// tenantAblation co-schedules two identical AllReduce jobs on the same
// cluster as concurrent sessions — contention from a *real* competing
// collective rather than static background load — and reports each
// backend's slowdown relative to running alone.
func tenantAblation(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "Two co-located tenants (identical HM AllReduce jobs, 2×8)",
		Header: []string{"Backend", "alone (GB/s)", "shared (GB/s)", "slowdown"},
		Notes: []string{
			"under co-location every backend converges toward the fabric's contended floor; ResCCL arrives from a higher clean baseline while occupying roughly half the SMs (Table 3)",
		},
	}
	bks := backends()
	rows := make([][]string, len(bks))
	err := runCells(opts, len(bks), func(c int) error {
		b := bks[c]
		plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return err
		}
		alone, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return err
		}
		ses := sim.Session{Kernel: plan.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk}
		mr, err := runConcurrent(opts, sim.MultiConfig{Topo: tp, Sessions: []sim.Session{ses, ses}})
		if err != nil {
			return err
		}
		shared := mr.Sessions[0]
		rows[c] = []string{b.Name(), gb(alone.AlgoBW), gb(shared.AlgoBW),
			fmt.Sprintf("%.2fx", alone.AlgoBW/shared.AlgoBW)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// contentionAblation reproduces the §4.4 network-contention claim:
// background traffic consuming half of one NIC's capacity degrades
// backends that over-drive links (Eq. 1 penalty against the reduced
// capacity) more than ResCCL's conflict-free schedule.
func contentionAblation(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "Network contention (background job consuming 50% of NIC 0, HM AllReduce, 2×8)",
		Header: []string{"Backend", "clean (GB/s)", "congested (GB/s)", "degradation"},
		Notes:  []string{"§4.4: ResCCL's state-based allocation limits simultaneous connections per link, so it degrades less under contention"},
	}
	congestion := map[topo.ResourceID]float64{
		tp.NICEgress(0):  0.5,
		tp.NICIngress(0): 0.5,
	}
	bks := backends()
	rows := make([][]string, len(bks))
	err := runCells(opts, len(bks), func(c int) error {
		b := bks[c]
		plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return err
		}
		clean, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return err
		}
		congested, err := runSim(opts, sim.Config{
			Topo: tp, Kernel: plan.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk,
			Congestion: congestion,
		})
		if err != nil {
			return err
		}
		rows[c] = []string{b.Name(), gb(clean.AlgoBW), gb(congested.AlgoBW),
			pct(1 - congested.AlgoBW/clean.AlgoBW)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// granularityAblation executes the same algorithm under the three
// execution granularities of §3 (Eq. 3–5).
func granularityAblation(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "Execution granularity (HM AllReduce, 2×8)",
		Header: []string{"Granularity", "Backend policy", "GB/s"},
		Notes:  []string{"Eq. 6: task-level ≥ stage-level ≥ algorithm-level as micro-batches grow"},
	}
	// Algorithm-level: strip the stage annotations so MSCCL runs lazily.
	lazy := *algo
	lazy.StageBounds = nil
	msccl := backend.NewMSCCL()
	cases := []struct {
		label, policy string
		a             *ir.Algorithm
		b             backend.Backend
	}{
		{"algorithm-level", "MSCCL, no stages (lazy)", &lazy, msccl},
		{"stage-level", "MSCCL, expert stage channels", algo, msccl},
		{"task-level", "ResCCL (HPDS)", algo, backend.NewResCCL()},
	}
	rows := make([][]string, len(cases))
	err := runCells(opts, len(cases), func(ci int) error {
		c := cases[ci]
		plan, err := compile(opts, c.b, backend.Request{Algo: c.a, Topo: tp})
		if err != nil {
			return err
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return err
		}
		rows[ci] = []string{c.label, c.policy, gb(res.AlgoBW)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// allocAblation compares connection-based and state-based TB allocation
// on the ResCCL pipeline. It needs the compiled pipeline's internals
// (TB counts), so it calls core.Compile directly instead of the cache.
func allocAblation(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "TB allocation policy (ResCCL pipeline, HM AllReduce, 2×8)",
		Header: []string{"Allocation", "#TB/GPU", "total TBs", "GB/s"},
	}
	allocs := []core.AllocPolicy{core.AllocConnectionBased, core.AllocStateBased}
	rows := make([][]string, len(allocs))
	err := runCells(opts, len(allocs), func(c int) error {
		comp, err := core.Compile(opts.ctx(), algo, tp, core.Options{Alloc: allocs[c]})
		if err != nil {
			return err
		}
		res, err := runSim(opts, sim.Config{Topo: tp, Kernel: comp.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk})
		if err != nil {
			return err
		}
		rows[c] = []string{allocs[c].String(), fmt.Sprintf("%d", comp.Kernel.MaxTBsPerRank()),
			fmt.Sprintf("%d", comp.Kernel.NTBs()), gb(res.AlgoBW)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// policyAblation compares the three scheduling policies. Like
// allocAblation it reads Compiled internals (sub-pipeline counts), so
// the compilations stay outside the plan cache.
func policyAblation(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "Scheduling policy (HM AllReduce, 2×8)",
		Header: []string{"Policy", "sub-pipelines", "GB/s"},
	}
	policies := []sched.Policy{sched.PolicySequential, sched.PolicyRR, sched.PolicyHPDS}
	rows := make([][]string, len(policies))
	err := runCells(opts, len(policies), func(c int) error {
		comp, err := core.Compile(opts.ctx(), algo, tp, core.Options{Policy: policies[c]})
		if err != nil {
			return err
		}
		res, err := runSim(opts, sim.Config{Topo: tp, Kernel: comp.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk})
		if err != nil {
			return err
		}
		rows[c] = []string{policies[c].String(), fmt.Sprintf("%d", comp.Pipeline.NSubs()), gb(res.AlgoBW)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// chunkAblation sweeps the transfer chunk size.
func chunkAblation(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "Chunk size (ResCCL, HM AllReduce, 2×8)",
		Header: []string{"Chunk", "micro-batches", "GB/s"},
		Notes:  []string{"the paper fixes 1 MiB (Table 2); smaller chunks pay more α, larger ones lose pipelining"},
	}
	chunks := []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	if opts.Quick {
		chunks = []int64{512 << 10, 1 << 20, 4 << 20}
	}
	plan, err := compile(opts, backend.NewResCCL(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, len(chunks))
	err = runCells(opts, len(chunks), func(c int) error {
		res, err := runPlan(opts, tp, plan, buf, chunks[c])
		if err != nil {
			return err
		}
		rows[c] = []string{mbLabel(chunks[c]), fmt.Sprintf("%d", res.Plan.NMicroBatches), gb(res.AlgoBW)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
