package bench

import (
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/trace"
)

// Figure2 reproduces the motivation breakdown: executing custom
// (expert) and synthesized single-node AllReduce on the MSCCL runtime,
// how much of each thread block's lifetime is execution, sync blocking
// and idling — including the near-total idleness of manually added
// extra channels (Fig. 2(a)) and the sync-blocking share (Fig. 2(b)).
func Figure2(opts Options) ([]*Table, error) {
	opts = opts.init()
	buf := int64(512 << 20)
	if opts.Quick {
		buf = 128 << 20
	}
	tp := topo.New(1, 8, topo.A100())
	msccl := backend.NewMSCCL()

	cases := []struct {
		label string
		build func() (*ir.Algorithm, error)
	}{
		{"custom (expert mesh AllReduce)", func() (*ir.Algorithm, error) { return expertAR(1, 8) }},
		{"synthesized (TACCL AllReduce)", func() (*ir.Algorithm, error) { return synth.TACCLAllReduce(1, 8) }},
	}
	tables := make([]*Table, len(cases))
	err := runCells(opts, len(cases), func(c int) error {
		algo, err := cases[c].build()
		if err != nil {
			return err
		}
		plan, err := compile(opts, msccl, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return err
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return err
		}
		u := trace.Analyze(plan.Kernel, res, plan.Backend)
		t := &Table{
			ID:     "fig2",
			Title:  fmt.Sprintf("MSCCL primitive time breakdown — %s, single node (8 GPUs), rank 0", cases[c].label),
			Header: []string{"TB", "role", "exec", "sync", "idle"},
		}
		for _, r := range trace.RankBreakdown(u, 0).TBs {
			t.AddRow(fmt.Sprintf("TB%d", r.ID), r.Label,
				pct(r.Exec/r.Occupancy), pct(r.Sync/r.Occupancy), pct(r.IdleRatio()))
		}
		if extra, ok := u.ExtraChannelIdle(); ok {
			t.Notes = append(t.Notes, fmt.Sprintf("extra-channel TBs idle %s of the time (paper: 98.2%%)", pct(extra)))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("max sync-blocking share %s (paper: up to 67.1%%)", pct(u.MaxSyncRatio())))
		tables[c] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}

// table3Topos are the four cluster shapes of Table 3.
var table3Topos = []struct {
	label       string
	nNodes, gpn int
}{
	{"Topo1 (2×4)", 2, 4},
	{"Topo2 (2×8)", 2, 8},
	{"Topo3 (4×4)", 4, 4},
	{"Topo4 (4×8)", 4, 8},
}

// Table3 compares thread-block counts and utilization between MSCCL and
// ResCCL across the four topologies for expert and synthesized AllReduce
// and AllGather.
func Table3(opts Options) ([]*Table, error) {
	opts = opts.init()
	buf := int64(512 << 20)
	if opts.Quick {
		buf = 128 << 20
	}
	algos := []struct {
		label string
		build func(nNodes, gpn int) (*ir.Algorithm, error)
	}{
		{"Expert AllReduce", expertAR},
		{"Expert AllGather", expertAG},
		{"Synthesized AllReduce", synth.TACCLAllReduce},
		{"Synthesized AllGather", synth.TACCLAllGather},
	}
	bks := []backend.Backend{backend.NewMSCCL(), backend.NewResCCL()}
	// One cell per (algorithm, topology, backend) row of the tables.
	perAlgo := len(table3Topos) * len(bks)
	rows := make([][]string, len(algos)*perAlgo)
	err := runCells(opts, len(rows), func(c int) error {
		a := algos[c/perAlgo]
		shape := table3Topos[(c%perAlgo)/len(bks)]
		b := bks[c%len(bks)]
		tp := topo.New(shape.nNodes, shape.gpn, topo.A100())
		algo, err := a.build(shape.nNodes, shape.gpn)
		if err != nil {
			return err
		}
		plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return fmt.Errorf("table3 %s/%s: %w", shape.label, b.Name(), err)
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return fmt.Errorf("table3 %s/%s: %w", shape.label, b.Name(), err)
		}
		u := trace.Analyze(plan.Kernel, res, plan.Backend)
		rows[c] = []string{shape.label, b.Name(), fmt.Sprintf("%d", u.TBs),
			pct(u.CommTime), pct(u.AvgIdle), pct(u.MaxIdle)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Table
	for ai, a := range algos {
		t := &Table{
			ID:     "table3",
			Title:  fmt.Sprintf("TB utilization — %s", a.label),
			Header: []string{"Topology", "Backend", "#TB/GPU", "Comm Time", "Avg Idle", "Max Idle"},
			Rows:   rows[ai*perAlgo : (ai+1)*perAlgo],
		}
		out = append(out, t)
	}
	return out, nil
}

// Figure12 reproduces the per-TB time-cost breakdown on the V100
// cluster: for each worker thread block of rank 0, sync vs execution
// time under MSCCL and ResCCL, plus the SM time ResCCL returns through
// early release.
func Figure12(opts Options) ([]*Table, error) {
	opts = opts.init()
	buf := int64(512 << 20)
	if opts.Quick {
		buf = 128 << 20
	}
	tp := topo.New(2, 8, topo.V100())
	cases := []struct {
		label string
		build func() (*ir.Algorithm, error)
	}{
		{"expert-designed (HM AllReduce)", func() (*ir.Algorithm, error) { return expertAR(2, 8) }},
		{"synthesized (TACCL AllReduce)", func() (*ir.Algorithm, error) { return synth.TACCLAllReduce(2, 8) }},
	}
	bks := []backend.Backend{backend.NewMSCCL(), backend.NewResCCL()}
	tables := make([]*Table, len(cases)*len(bks))
	err := runCells(opts, len(tables), func(c int) error {
		cs := cases[c/len(bks)]
		b := bks[c%len(bks)]
		algo, err := cs.build()
		if err != nil {
			return err
		}
		plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return err
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return err
		}
		u := trace.Analyze(plan.Kernel, res, plan.Backend)
		t := &Table{
			ID:     "fig12",
			Title:  fmt.Sprintf("Per-TB time breakdown — %s, %s, rank 0 (V100)", cs.label, b.Name()),
			Header: []string{"TB", "role", "exec (ms)", "sync (ms)", "saving (ms)"},
		}
		for _, r := range trace.RankBreakdown(u, 0).TBs {
			t.AddRow(fmt.Sprintf("TB%d", r.ID), r.Label,
				fmt.Sprintf("%.1f", r.Exec*1e3),
				fmt.Sprintf("%.1f", r.Sync*1e3),
				fmt.Sprintf("%.1f", r.Saving*1e3))
		}
		tables[c] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}
