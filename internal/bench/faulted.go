package bench

import (
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/rt"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// Faulted is the dynamic-interference companion to the §4.4 static
// contention ablation: instead of a fixed congestion map, a seeded
// fault.Schedule injects link degradations, outages, NIC flaps and
// straggler TBs while the collective runs, and the harness reports each
// backend's goodput as the event count (the fault rate) grows. A second
// table exercises the runtime's recovery protocol: sends crossing
// downed links retry with backoff and degrade their sub-pipeline when
// the budget runs out, and the result must still verify.
func Faulted(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 8, topo.A100())
	buf := int64(256 << 20)
	rates := []int{0, 4, 8, 16}
	if opts.Quick {
		buf = 64 << 20
		rates = []int{0, 4, 8}
	}
	algo, err := expertAR(2, 8)
	if err != nil {
		return nil, err
	}

	goodput, err := faultSweep(opts, tp, algo, buf, rates)
	if err != nil {
		return nil, err
	}
	recovery, err := recoveryTable(opts)
	if err != nil {
		return nil, err
	}
	replan, err := replanTable(opts)
	if err != nil {
		return nil, err
	}
	return []*Table{goodput, recovery, replan}, nil
}

// faultSweep runs every backend's plan under seeded schedules of
// growing event count. The horizon is each plan's own clean completion
// time, so a rate of N means N events land while the collective runs.
func faultSweep(opts Options, tp *topo.Topology, algo *ir.Algorithm, buf int64, rates []int) (*Table, error) {
	t := &Table{
		ID:    "faulted",
		Title: "Goodput under injected faults (HM AllReduce, 2×8, GB/s)",
		Notes: []string{
			"seeded schedules: 40% link degradations, 30% link-down windows, 15% NIC flaps, 15% straggler TBs, landing within each plan's clean completion window",
		},
	}
	t.Header = append(t.Header, "Backend")
	for _, r := range rates {
		t.Header = append(t.Header, fmt.Sprintf("%d events", r))
	}
	// Each backend is one cell: the faulted runs depend on the clean
	// run's completion time (the schedule horizon), so they stay chained
	// within the cell.
	bks := backends()
	rows := make([][]string, len(bks))
	err := runCells(opts, len(bks), func(c int) error {
		b := bks[c]
		plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return err
		}
		clean, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return err
		}
		row := []string{b.Name()}
		for _, n := range rates {
			sched := FaultSchedule(tp, 7, n, clean.Completion, len(plan.Kernel.TBs))
			res, err := runSim(opts, sim.Config{
				Topo: tp, Kernel: plan.Kernel,
				BufferBytes: buf, ChunkBytes: defaultChunk,
				Faults: sched,
			})
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", b.Name(), n, err)
			}
			row = append(row, gb(res.AlgoBW))
		}
		rows[c] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// recoveryTable drives the data-plane runtime under an outage on one
// NIC and reports the recovery protocol's actions.
func recoveryTable(opts Options) (*Table, error) {
	t := &Table{
		ID:     "faulted",
		Title:  "Runtime recovery under a NIC outage (ResCCL kernel, 2×2, 4 micro-batches)",
		Header: []string{"Scenario", "retries", "recovered", "degraded", "subs degraded", "verified"},
		Notes: []string{
			"an outage longer than the retry budget forces the affected sub-pipeline from pipelined to sequential execution; the collective still completes and verifies",
		},
	}
	tp := topo.New(2, 2, topo.A100())
	algo, err := expertAR(2, 2)
	if err != nil {
		return nil, err
	}
	plan, err := compile(opts, backend.NewResCCL(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		return nil, err
	}
	eg, in := tp.NICResources(0)
	scenarios := []struct {
		label string
		ev    fault.Event
	}{
		{"short outage (retry wins)", fault.Event{Kind: fault.KindLinkDown, Start: 0, Duration: 1e-3,
			Resources: []topo.ResourceID{eg, in}, Attempts: 2}},
		{"long outage (degrade)", fault.Event{Kind: fault.KindLinkDown, Start: 0, Duration: 1e-2,
			Resources: []topo.ResourceID{eg, in}, Attempts: 6}},
	}
	rows := make([][]string, len(scenarios))
	err = runCells(opts, len(scenarios), func(c int) error {
		sc := scenarios[c]
		res, err := rt.Execute(rt.Config{
			Kernel:       plan.Kernel,
			MicroBatches: 4,
			Faults:       &fault.Schedule{Events: []fault.Event{sc.ev}},
			Recovery:     rt.RecoveryPolicy{MaxRetries: 3, Backoff: 50 * time.Microsecond},
		})
		if err != nil {
			return err
		}
		verified := "yes"
		if err := res.Verify(); err != nil {
			verified = "NO: " + err.Error()
		}
		retries, recovered, degraded := 0, 0, 0
		for _, a := range res.Recovery {
			switch a.Kind {
			case rt.ActionRetry:
				retries++
			case rt.ActionRecovered:
				recovered++
			case rt.ActionDegrade:
				degraded++
			}
		}
		rows[c] = []string{sc.label, fmt.Sprint(retries), fmt.Sprint(recovered),
			fmt.Sprint(degraded), fmt.Sprint(res.DegradedSubs), verified}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// replanTable escalates past degrade: permanent link failures strand
// part of the plan, forcing the runtime to abandon the blocked tasks,
// carve the dead links out of the topology and replan the remaining
// work (see internal/rt replan.go). The table reports the recovery
// protocol's cost as the number of dead links grows.
func replanTable(opts Options) (*Table, error) {
	t := &Table{
		ID:    "faulted",
		Title: "Plan-level recovery vs permanent link failures (ResCCL HM AllReduce, 2×4, per-GPU NICs, 2 micro-batches)",
		Header: []string{"dead links", "replans", "completed", "abandoned", "repair tasks", "retries", "lost chunks",
			"recover (wall ms)", "goodput (wall inst/s)", "verified"},
		Notes: []string{
			"task counts, retries and the replan log are pure functions of (kernel, schedule) and identical across runs; recover/goodput are wall-clock measurements of the data-plane runtime and vary run to run",
			"each dead link is one NIC egress queue on node 0; with per-GPU NICs the node stays reachable, so every scenario completes and verifies through the repair plan",
		},
	}
	tp := topo.New(2, 4, topo.A100(), topo.WithNICs(4))
	algo, err := expertAR(2, 4)
	if err != nil {
		return nil, err
	}
	plan, err := compile(opts, backend.NewResCCL(), backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		return nil, err
	}
	counts := []int{0, 1, 2, 3}
	if opts.Quick {
		counts = []int{0, 1, 2}
	}
	rows := make([][]string, len(counts))
	err = runCells(opts, len(counts), func(c int) error {
		n := counts[c]
		var sched *fault.Schedule
		if n > 0 {
			sched = &fault.Schedule{}
			for k := 0; k < n; k++ {
				eg := tp.NICEgress(k)
				sched.Events = append(sched.Events, fault.LinkOut(eg, 0))
			}
		}
		res, err := rt.Execute(rt.Config{
			Kernel:       plan.Kernel,
			MicroBatches: 2,
			Faults:       sched,
			Recovery:     rt.RecoveryPolicy{MaxRetries: 3, Backoff: 20 * time.Microsecond},
		})
		if err != nil {
			return fmt.Errorf("dead=%d: %w", n, err)
		}
		opts.Stats.AddRTRun(res.Instances, len(res.ReplanEvents))
		verified := "yes"
		if err := res.Verify(); err != nil {
			verified = "NO: " + err.Error()
		}
		completed, abandoned, repair := len(plan.Kernel.Graph.Tasks), 0, 0
		lost := 0
		for _, ev := range res.ReplanEvents {
			completed = ev.CompletedTasks
			abandoned += ev.AbandonedTasks
			repair += ev.RepairTasks
			lost += len(ev.LostChunks)
		}
		retries := 0
		for _, a := range res.Recovery {
			if a.Kind == rt.ActionRetry {
				retries++
			}
		}
		goodput := 0.0
		if s := res.Elapsed.Seconds(); s > 0 {
			goodput = float64(res.Instances) / s
		}
		rows[c] = []string{
			fmt.Sprint(n), fmt.Sprint(len(res.ReplanEvents)), fmt.Sprint(completed),
			fmt.Sprint(abandoned), fmt.Sprint(repair), fmt.Sprint(retries), fmt.Sprint(lost),
			fmt.Sprintf("%.1f", float64(res.Elapsed.Microseconds())/1e3),
			fmt.Sprintf("%.0f", goodput), verified,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// FaultSchedule builds the seeded schedule the sweep and the ressclsim
// CLI share: n events landing within the given horizon, straggler
// targets drawn from nTBs thread blocks.
func FaultSchedule(tp *topo.Topology, seed int64, n int, horizon float64, nTBs int) *fault.Schedule {
	return fault.Generate(tp, fault.Params{
		Seed:         seed,
		N:            n,
		Horizon:      horizon,
		MeanDuration: horizon / 8,
		NTBs:         nTBs,
	})
}
