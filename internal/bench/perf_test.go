package bench

import (
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/topo"
)

// TestPublishMetricsMatchesBenchJSON exercises the contract that the
// -metrics-json registry and the -bench-json perf record report the same
// numbers: every counter PublishMetrics emits must equal the harness
// field the perf record is filled from.
func TestPublishMetricsMatchesBenchJSON(t *testing.T) {
	cache := backend.NewCache()
	stats := NewStats()
	b := backend.NewResCCL()
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Cache: cache, Stats: stats}.init()

	req := backend.Request{Algo: algo, Topo: tp}
	plan, err := compile(opts, b, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile(opts, b, req); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := runPlan(opts, tp, plan, 8<<20, defaultChunk); err != nil {
		t.Fatal(err)
	}
	stats.AddRTRun(7, 2)

	m := obs.NewMetrics()
	PublishMetrics(m, cache, stats)

	cs := cache.Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", cs)
	}
	want := map[string]int64{
		"plan_cache.hits":   cs.Hits,
		"plan_cache.misses": cs.Misses,
		"sim.events":        stats.SimEvents(),
		"sim.runs":          stats.SimRuns(),
		"rt.instances":      stats.RTInstances(),
		"rt.replans":        stats.Replans(),
	}
	for name, v := range want {
		if got := m.Counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if stats.SimEvents() == 0 || stats.SimRuns() != 1 {
		t.Errorf("harness stats not populated: events=%d runs=%d", stats.SimEvents(), stats.SimRuns())
	}
	if stats.RTInstances() != 7 || stats.Replans() != 2 {
		t.Errorf("rt stats = %d/%d, want 7/2", stats.RTInstances(), stats.Replans())
	}
	// Nil-safety: none of these may panic.
	PublishMetrics(nil, cache, stats)
	PublishMetrics(m, nil, nil)
}

// TestBenchTraceCollectsTimelines checks that Options.Trace threads
// through the runner: a traced run records one timeline per simulation.
func TestBenchTraceCollectsTimelines(t *testing.T) {
	tr := obs.NewTrace()
	opts := Options{Cache: backend.NewCache(), Stats: NewStats(), Trace: tr}.init()
	b := backend.NewResCCL()
	tp := topo.New(1, 4, topo.A100())
	algo, err := expert.MeshAllReduce(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runPlan(opts, tp, plan, 8<<20, defaultChunk); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Timelines()); n != 1 {
		t.Errorf("trace has %d timelines, want 1", n)
	}
	var stages int
	for _, sp := range tr.Spans() {
		if sp.Cat == "compile" {
			stages++
		}
	}
	if stages == 0 {
		t.Error("no compile-stage spans recorded")
	}
}
