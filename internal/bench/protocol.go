package bench

import (
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// protoBufs is the crossover sweep: 64 KiB to 1 GiB in powers of two,
// straddling both switch points on the paper's 2×8 cluster.
var protoBufs = func() []int64 {
	var out []int64
	for b := int64(64 << 10); b <= 1<<30; b *= 2 {
		out = append(out, b)
	}
	return out
}()

// protoCollectives are the collectives the crossover experiment sweeps.
var protoCollectives = []struct {
	label string
	op    ir.OpType
}{
	{"AllReduce", ir.OpAllReduce},
	{"AllGather", ir.OpAllGather},
}

// ProtocolCrossover sweeps message sizes per collective on the NCCL
// baseline, simulating every forced protocol tier, and reports where
// the auto-selected tier switches LL → LL128 → Simple. The first table
// is the per-size completion comparison (the crossover "plot"); the
// second is the switch-point summary per collective, checked against
// the simulated best tier at each size.
func ProtocolCrossover(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 8, topo.A100())
	bufs := protoBufs
	if opts.Quick {
		// Keep one representative size per tier regime plus the
		// boundaries around each switch point.
		bufs = []int64{256 << 10, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 256 << 20}
	}

	sweep := &Table{
		ID:     "protocol-crossover",
		Title:  "NCCL protocol tiers on 2×8 A100: simulated completion per forced tier",
		Header: []string{"Collective", "Buffer", "LL (µs)", "LL128 (µs)", "Simple (µs)", "Auto", "Sim best"},
		Notes: []string{
			"auto is the tuning-table tier (sim.SelectProtocol); sim best is argmin of the three forced runs",
		},
	}

	type cellOut struct {
		t    [3]float64 // seconds, indexed by tier order below
		auto ir.Protocol
	}
	tiers := []ir.Protocol{ir.ProtoLL, ir.ProtoLL128, ir.ProtoSimple}
	cells := make([]cellOut, len(protoCollectives)*len(bufs))
	// The auto tier is analytic and shared by a size's three forced
	// cells, so it is resolved up front rather than raced in the pool.
	for ci := range cells {
		coll := protoCollectives[ci/len(bufs)]
		cells[ci].auto = sim.SelectProtocol(tp, coll.op, bufs[ci%len(bufs)])
	}
	nccl := backend.NewNCCL()
	err := runCells(opts, len(cells)*len(tiers), func(c int) error {
		ci, ti := c/len(tiers), c%len(tiers)
		coll := protoCollectives[ci/len(bufs)]
		buf := bufs[ci%len(bufs)]
		algo := ncclRequestAlgo(coll.op, tp.NRanks())
		plan, err := compile(opts, nccl, backend.Request{Algo: algo, Topo: tp, Protocol: tiers[ti]})
		if err != nil {
			return fmt.Errorf("%s %s %s: %w", coll.label, mbLabel(buf), tiers[ti], err)
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return fmt.Errorf("%s %s %s: %w", coll.label, mbLabel(buf), tiers[ti], err)
		}
		cells[ci].t[ti] = res.Completion
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cell := range cells {
		coll := protoCollectives[ci/len(bufs)]
		buf := bufs[ci%len(bufs)]
		best := 0
		for ti := range tiers {
			if cell.t[ti] < cell.t[best] {
				best = ti
			}
		}
		sweep.AddRow(coll.label, mbLabel(buf),
			us(cell.t[0]), us(cell.t[1]), us(cell.t[2]),
			cell.auto.String(), tiers[best].String())
	}

	points := &Table{
		ID:     "protocol-crossover",
		Title:  "Protocol switch points on 2×8 A100 (largest size per tier)",
		Header: []string{"Collective", "LL ≤", "LL128 ≤", "Simple >"},
		Notes: []string{
			"thresholds from sim.ProtocolSwitchPoints; monotone LL → LL128 → Simple by construction",
		},
	}
	for _, coll := range protoCollectives {
		llMax, ll128Max := sim.ProtocolSwitchPoints(tp, coll.op)
		points.AddRow(coll.label, mbLabel(llMax), mbLabel(ll128Max), mbLabel(ll128Max))
	}
	return []*Table{sweep, points}, nil
}

// ProtocolSwitchPointRecords returns the crossover experiment's
// thresholds in machine-readable form for -bench-json perf records,
// computed on the same 2×8 A100 cluster the experiment sweeps.
func ProtocolSwitchPointRecords() []SwitchPoint {
	tp := topo.New(2, 8, topo.A100())
	out := make([]SwitchPoint, 0, len(protoCollectives))
	for _, coll := range protoCollectives {
		llMax, ll128Max := sim.ProtocolSwitchPoints(tp, coll.op)
		out = append(out, SwitchPoint{Collective: coll.label, LLMaxBytes: llMax, LL128MaxBytes: ll128Max})
	}
	return out
}

// ncclRequestAlgo builds the minimal request algorithm for the NCCL
// backend, which honours only Op and NRanks and substitutes its own
// channelized rings.
func ncclRequestAlgo(op ir.OpType, nRanks int) *ir.Algorithm {
	return &ir.Algorithm{
		Name:    "nccl-" + op.String(),
		Op:      op,
		NRanks:  nRanks,
		NChunks: nRanks,
	}
}

// us formats seconds as microseconds.
func us(s float64) string { return fmt.Sprintf("%.1f", s*1e6) }
