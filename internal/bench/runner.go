package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/trace"
)

// The harness decomposes every experiment into independent *cells* —
// one (backend, algorithm, topology, buffer) simulation or compilation
// unit. Cells write their results into pre-indexed slots and tables are
// assembled serially afterwards in canonical order, so a parallel run
// produces byte-identical tables to a serial one: ordering never depends
// on goroutine scheduling, and the plan cache's singleflight keeps
// hit/miss counts deterministic too. The only quantities that may differ
// between two runs of any kind are measured wall-clock timings — the
// Figure 10a phase timings and the faulted replan table's recovery
// columns — which are non-deterministic even serially.

// runCells executes cells 0..n-1 through the worker pool when
// opts.Parallel is set, serially otherwise. The returned error is the
// lowest-indexed cell's error in both modes, so failure output is
// deterministic as well.
func runCells(opts Options, n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if !opts.Parallel || workers < 2 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats accumulates runtime performance counters across an experiment
// run. All methods are safe for concurrent use and tolerate a nil
// receiver (counting disabled).
type Stats struct {
	simEvents   atomic.Int64
	simRuns     atomic.Int64
	rtInstances atomic.Int64
	replans     atomic.Int64
}

// NewStats returns a fresh counter set.
func NewStats() *Stats { return &Stats{} }

// AddSimEvents records a completed simulation's processed event count.
func (s *Stats) AddSimEvents(n int) {
	if s == nil {
		return
	}
	s.simEvents.Add(int64(n))
	s.simRuns.Add(1)
}

// SimEvents returns the total discrete events processed so far.
func (s *Stats) SimEvents() int64 {
	if s == nil {
		return 0
	}
	return s.simEvents.Load()
}

// SimRuns returns the number of simulator invocations recorded.
func (s *Stats) SimRuns() int64 {
	if s == nil {
		return 0
	}
	return s.simRuns.Load()
}

// AddRTRun records one data-plane runtime execution: its completed
// primitive-instance count and how many plan-level replans it took.
func (s *Stats) AddRTRun(instances, replans int) {
	if s == nil {
		return
	}
	s.rtInstances.Add(int64(instances))
	s.replans.Add(int64(replans))
}

// RTInstances returns the total primitive instances the runtime
// executed across recorded runs.
func (s *Stats) RTInstances() int64 {
	if s == nil {
		return 0
	}
	return s.rtInstances.Load()
}

// Replans returns the total plan-level recoveries recorded.
func (s *Stats) Replans() int64 {
	if s == nil {
		return 0
	}
	return s.replans.Load()
}

// runSim is the harness's counted sim.Run wrapper. With a trace sink
// configured it additionally records the run's timeline.
func runSim(opts Options, cfg sim.Config) (*sim.Result, error) {
	if opts.Trace != nil {
		cfg.RecordTimeline = true
	}
	res, err := sim.Run(cfg)
	if err == nil {
		opts.Stats.AddSimEvents(res.Events)
		if opts.Trace != nil {
			opts.Trace.AddTimeline(trace.BuildTimeline(cfg.Kernel.Name, cfg.Kernel, cfg.Topo, res))
		}
	}
	return res, err
}

// runConcurrent is the counted sim.RunConcurrent wrapper.
func runConcurrent(opts Options, cfg sim.MultiConfig) (*sim.MultiResult, error) {
	if opts.Trace != nil {
		cfg.RecordTimeline = true
	}
	mr, err := sim.RunConcurrent(cfg)
	if err == nil {
		opts.Stats.AddSimEvents(mr.Events)
		if opts.Trace != nil {
			for i, res := range mr.Sessions {
				name := fmt.Sprintf("session%d/%s", i, cfg.Sessions[i].Kernel.Name)
				opts.Trace.AddTimeline(trace.BuildTimeline(name, cfg.Sessions[i].Kernel, cfg.Topo, res))
			}
		}
	}
	return mr, err
}
