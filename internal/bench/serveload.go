package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/resccl/resccl/internal/serve"
)

// ServeLoadOptions parameterises a load run against the plan service.
type ServeLoadOptions struct {
	// URL targets a running ressclserve instance. Empty self-hosts an
	// in-process service behind an httptest server.
	URL string
	// Clients is the number of concurrent load generators (default 8).
	Clients int
	// Tenants is the number of distinct tenant IDs the generators
	// rotate through (default 4).
	Tenants int
	// Requests is the total request count (default 200).
	Requests int
	// Workers configures the self-hosted service's compile slots
	// (default 4); ignored when URL targets an external server.
	Workers int
}

func (o ServeLoadOptions) withDefaults() ServeLoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// ServeLoadRecord is the machine-readable result of one load run —
// the serve-mode analogue of the perf record's counters.
type ServeLoadRecord struct {
	URL           string  `json:"url"`
	Clients       int     `json:"clients"`
	Tenants       int     `json:"tenants"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	WallMS        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
}

// serveLoadShapes is the request mix the generators rotate through.
var serveLoadShapes = []serve.CompileRequest{
	{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4},
	{Algorithm: "ring-allgather", Nodes: 1, GPUsPerNode: 8},
	{Algorithm: "hm-allreduce", Nodes: 2, GPUsPerNode: 4, Fabric: "clos"},
	{Algorithm: "hm-allgather", Nodes: 2, GPUsPerNode: 2, Fabric: "rail"},
	{Algorithm: "tree-allreduce", Nodes: 1, GPUsPerNode: 8, Backend: "nccl"},
	{Algorithm: "hm-reducescatter", Nodes: 2, GPUsPerNode: 2, Backend: "msccl"},
}

// ServeLoad storms the plan service with concurrent mixed requests and
// reports throughput plus completed-request latency percentiles.
// Requests that shed (429/503) count separately — under admission
// control, shedding is expected behaviour, not an error.
func ServeLoad(opts ServeLoadOptions) (*ServeLoadRecord, error) {
	opts = opts.withDefaults()
	base := opts.URL
	if base == "" {
		svc := serve.New(serve.Config{Workers: opts.Workers})
		ts := httptest.NewServer(serve.Handler(svc))
		defer ts.Close()
		base = ts.URL
	}

	// Pre-marshal every request body so generator goroutines only do
	// I/O and timing on the hot path.
	type job struct {
		path string
		body []byte
	}
	jobs := make([]job, opts.Requests)
	for i := range jobs {
		req := serveLoadShapes[i%len(serveLoadShapes)]
		req.Tenant = fmt.Sprintf("tenant-%d", i%opts.Tenants)
		var j job
		switch i % 4 {
		case 1:
			j.path = "/v1/simulate"
			b, err := json.Marshal(serve.SimulateRequest{CompileRequest: req, BufferBytes: 1 << 20})
			if err != nil {
				return nil, err
			}
			j.body = b
		case 3:
			j.path = "/v1/analyze"
			b, err := json.Marshal(serve.AnalyzeRequest{CompileRequest: req})
			if err != nil {
				return nil, err
			}
			j.body = b
		default:
			j.path = "/v1/compile"
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			j.body = b
		}
		jobs[i] = j
	}

	client := &http.Client{Timeout: 60 * time.Second}
	var (
		next      atomic.Int64
		completed atomic.Int64
		shed      atomic.Int64
		failed    atomic.Int64
		latMu     sync.Mutex
		latencies []float64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+jobs[i].path, "application/json", bytes.NewReader(jobs[i].body))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ms := float64(time.Since(t0)) / float64(time.Millisecond)
					completed.Add(1)
					latMu.Lock()
					latencies = append(latencies, ms)
					latMu.Unlock()
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rec := &ServeLoadRecord{
		URL:       opts.URL,
		Clients:   opts.Clients,
		Tenants:   opts.Tenants,
		Requests:  opts.Requests,
		Completed: int(completed.Load()),
		Shed:      int(shed.Load()),
		Errors:    int(failed.Load()),
		WallMS:    float64(wall) / float64(time.Millisecond),
	}
	if rec.URL == "" {
		rec.URL = "self-hosted"
	}
	if wall > 0 {
		rec.ThroughputRPS = float64(rec.Requests) / wall.Seconds()
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p*float64(len(latencies))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	rec.P50MS, rec.P95MS, rec.P99MS = pct(0.50), pct(0.95), pct(0.99)
	return rec, nil
}
