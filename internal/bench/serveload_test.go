package bench

import "testing"

// TestServeLoadSelfHosted runs a small storm against a self-hosted
// service and checks the record's accounting invariants: every request
// is classified exactly once, percentiles are ordered, and throughput
// is positive.
func TestServeLoadSelfHosted(t *testing.T) {
	rec, err := ServeLoad(ServeLoadOptions{Clients: 4, Tenants: 2, Requests: 24, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Completed + rec.Shed + rec.Errors; got != rec.Requests {
		t.Fatalf("classification leak: %d+%d+%d != %d requests",
			rec.Completed, rec.Shed, rec.Errors, rec.Requests)
	}
	if rec.Errors != 0 {
		t.Fatalf("%d untyped errors under plain load: %+v", rec.Errors, rec)
	}
	if rec.Completed == 0 {
		t.Fatalf("no request completed: %+v", rec)
	}
	if rec.ThroughputRPS <= 0 || rec.WallMS <= 0 {
		t.Fatalf("degenerate throughput: %+v", rec)
	}
	if rec.P50MS > rec.P95MS || rec.P95MS > rec.P99MS {
		t.Fatalf("percentiles out of order: %+v", rec)
	}
	if rec.URL != "self-hosted" {
		t.Fatalf("url = %q, want self-hosted", rec.URL)
	}
}
