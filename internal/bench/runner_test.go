package bench

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/backend"
)

// renderCSV renders an experiment's tables the way the CLI does, with
// measured wall-clock cells masked: any cell that parses as a
// time.Duration (Figure 10a's phase timings) or sits in a column whose
// header carries the "(wall" marker (the faulted replan table's recovery
// columns) is non-deterministic between runs even serially, so it cannot
// participate in the byte-equality check. Everything else — every
// simulated quantity — must match exactly.
func renderCSV(tables []*Table) string {
	var sb strings.Builder
	for _, t := range tables {
		masked := &Table{ID: t.ID, Title: t.Title, Header: t.Header, Notes: t.Notes}
		wall := make([]bool, len(t.Header))
		for i, h := range t.Header {
			wall[i] = strings.Contains(h, "(wall")
		}
		for _, row := range t.Rows {
			out := make([]string, len(row))
			for i, c := range row {
				_, err := time.ParseDuration(c)
				if err == nil || (i < len(wall) && wall[i]) {
					out[i] = "<wall-clock>"
				} else {
					out[i] = c
				}
			}
			masked.Rows = append(masked.Rows, out)
		}
		masked.FprintCSV(&sb)
	}
	return sb.String()
}

// TestSerialParallelDeterminism is the tentpole's core guarantee: for
// every registry experiment, a parallel run renders byte-identical
// output to a serial run. Workers is forced above one so the pool path
// is exercised even on a single-core host.
func TestSerialParallelDeterminism(t *testing.T) {
	heavy := map[string]bool{
		"table1": true, "fig3": true, "fig6": true, "fig7": true,
		"fig8": true, "fig9": true, "fig11": true, "fig13": true,
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && heavy[e.ID] {
				t.Skip("heavy experiment skipped in -short mode")
			}
			serialTabs, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			parTabs, err := e.Run(Options{Quick: true, Parallel: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			serial, par := renderCSV(serialTabs), renderCSV(parTabs)
			if serial != par {
				t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
			}
		})
	}
}

// runCells must execute every index exactly once in both modes and
// return the lowest-indexed error regardless of completion order.
func TestRunCells(t *testing.T) {
	for _, par := range []bool{false, true} {
		opts := Options{Parallel: par, Workers: 4}
		var ran atomic.Int64
		hit := make([]atomic.Bool, 100)
		if err := runCells(opts, len(hit), func(i int) error {
			if hit[i].Swap(true) {
				t.Errorf("cell %d ran twice", i)
			}
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 100 {
			t.Errorf("parallel=%v: ran %d cells, want 100", par, ran.Load())
		}

		errLow, errHigh := errors.New("low"), errors.New("high")
		err := runCells(opts, 50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		// Serial mode stops at the first failure; parallel mode finishes
		// the batch. Both must surface the lowest-indexed error.
		if err != errLow {
			t.Errorf("parallel=%v: got error %v, want lowest-indexed %v", par, err, errLow)
		}
	}

	if err := runCells(Options{}, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero cells must be a no-op, got %v", err)
	}
}

// A shared cache must be reused across experiments: running the same
// experiment twice against one cache compiles nothing the second time.
func TestSharedCacheAcrossRuns(t *testing.T) {
	cache := backend.NewCache()
	opts := Options{Quick: true, Cache: cache}
	if _, err := Figure10b(opts); err != nil {
		t.Fatal(err)
	}
	first := cache.Stats()
	if first.Misses == 0 {
		t.Fatal("first run should populate the cache")
	}
	if _, err := Figure10b(opts); err != nil {
		t.Fatal(err)
	}
	second := cache.Stats()
	if second.Misses != first.Misses {
		t.Errorf("second run recompiled: misses %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Error("second run should be served from the cache")
	}
}

// Stats methods must tolerate a nil receiver so counting is optional.
func TestStatsNilReceiver(t *testing.T) {
	var s *Stats
	s.AddSimEvents(5)
	if s.SimEvents() != 0 || s.SimRuns() != 0 {
		t.Error("nil stats must read as zero")
	}
	st := NewStats()
	st.AddSimEvents(3)
	st.AddSimEvents(4)
	if st.SimEvents() != 7 || st.SimRuns() != 2 {
		t.Errorf("stats = %d events / %d runs, want 7 / 2", st.SimEvents(), st.SimRuns())
	}
}
