package bench

import (
	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/obs"
)

// PerfExperiment is one experiment's slice of a perf record.
type PerfExperiment struct {
	ID          string  `json:"id"`
	WallMS      float64 `json:"wall_ms"`
	Tables      int     `json:"tables"`
	Rows        int     `json:"rows"`
	SimEvents   int64   `json:"sim_events"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

// SwitchPoint records one collective's simulated protocol crossover
// thresholds: buffers ≤ LLMaxBytes run LL, buffers ≤ LL128MaxBytes run
// LL128, larger buffers run Simple.
type SwitchPoint struct {
	Collective    string `json:"collective"`
	LLMaxBytes    int64  `json:"ll_max_bytes"`
	LL128MaxBytes int64  `json:"ll128_max_bytes"`
}

// PerfRecord is the machine-readable output of ressclbench -bench-json.
// Records are committed as BENCH_*.json files so perf regressions show
// up in review (see docs/performance.md).
type PerfRecord struct {
	GeneratedBy  string  `json:"generated_by"`
	Quick        bool    `json:"quick"`
	Parallel     bool    `json:"parallel"`
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	TotalWallMS  float64 `json:"total_wall_ms"`
	SimEvents    int64   `json:"sim_events"`
	SimRuns      int64   `json:"sim_runs"`
	RTInstances  int64   `json:"rt_instances"`
	Replans      int64   `json:"replans"`
	EventsPerSec float64 `json:"events_per_sec"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// SwitchPoints is filled when the protocol-crossover experiment ran:
	// the simulated LL/LL128/Simple thresholds per collective.
	SwitchPoints []SwitchPoint    `json:"protocol_switch_points,omitempty"`
	Experiments  []PerfExperiment `json:"experiments"`
	// ServeLoad is filled by ressclbench -serve-load: throughput and
	// latency percentiles of a storm against the plan service. It lives
	// in its own BENCH_serve.json record — service timings are load- and
	// host-dependent, so they never enter the deterministic baseline.
	ServeLoad *ServeLoadRecord `json:"serve_load,omitempty"`
}

// PublishMetrics mirrors the harness counters into an obs metrics
// registry under the library's standard names, so -metrics-json output
// and -bench-json perf records agree field for field. Nil-safe on every
// argument.
func PublishMetrics(m *obs.Metrics, cache *backend.Cache, stats *Stats) {
	if m == nil {
		return
	}
	if cache != nil {
		cs := cache.Stats()
		m.Add("plan_cache.hits", cs.Hits)
		m.Add("plan_cache.misses", cs.Misses)
	}
	if stats != nil {
		m.Add("sim.events", stats.SimEvents())
		m.Add("sim.runs", stats.SimRuns())
		m.Add("rt.instances", stats.RTInstances())
		m.Add("rt.replans", stats.Replans())
	}
}
