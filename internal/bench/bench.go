// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (§2 motivation and §5) it regenerates the
// corresponding rows/series from the simulated system. The harness is
// shared by the ressclbench CLI and the repository's Go benchmarks.
package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// Table is a rendered experiment artifact: one table or one figure's
// data series.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// FprintCSV renders the table as CSV (header row first, notes as
// trailing comment lines).
func (t *Table) FprintCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	_ = cw.Write(append([]string{"experiment", "title"}, t.Header...))
	for _, row := range t.Rows {
		_ = cw.Write(append([]string{t.ID, t.Title}, row...))
	}
	cw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// FprintMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i]
			}
			fmt.Fprintf(w, "%-*s", pad+2, c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options tune experiment execution.
type Options struct {
	// Quick shrinks buffer sweeps and scale points so the whole suite
	// runs in seconds (used by CI and Go benchmarks); the full settings
	// reproduce the paper's parameter ranges.
	Quick bool
	// Parallel fans the experiment's independent simulation cells across
	// a worker pool (see runner.go). Tables are assembled in canonical
	// order either way, so output is byte-identical to a serial run.
	Parallel bool
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Cache is the shared plan-compile cache. When nil each experiment
	// creates a private one, which still collapses a buffer sweep's
	// repeated compilations; the ressclbench CLI shares one cache across
	// all experiments.
	Cache *backend.Cache
	// Stats, when non-nil, accumulates simulator throughput counters for
	// machine-readable perf records (-bench-json).
	Stats *Stats
	// Trace, when non-nil, records the simulated timeline of every cell
	// (-trace-out). Combine with a serial run: timelines append in cell
	// completion order, which only a serial run makes deterministic.
	Trace *obs.Trace
	// Protocol forces a transport protocol tier on every compilation that
	// does not already request one explicitly (-protocol). The zero value
	// leaves requests alone: plans simulate at Simple-tier cost, as
	// before protocol tiers existed.
	Protocol ir.Protocol
	// Ctx, when non-nil, cancels in-flight compilations at their phase
	// boundaries when the harness is interrupted (the ressclbench CLI
	// passes its signal-scoped root context). Nil never cancels.
	Ctx context.Context
}

// ctx returns the harness context, never nil (a nil Options.Ctx means
// "never cancel" by contract).
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background() //resccl:allow ctxflow
}

// init fills derived defaults; every experiment calls it on entry.
func (o Options) init() Options {
	if o.Cache == nil {
		o.Cache = backend.NewCache()
	}
	return o
}

// compile routes a backend compilation through the plan cache, recording
// compile-stage spans into the trace sink on misses.
func compile(opts Options, b backend.Backend, req backend.Request) (*backend.Plan, error) {
	if opts.Protocol.Forced() && req.Protocol == ir.ProtoAuto {
		req.Protocol = opts.Protocol
	}
	plan, hit, err := opts.Cache.CompileNoted(opts.ctx(), b, req)
	if err == nil && !hit && opts.Trace != nil && req.Algo != nil {
		opts.Trace.AddStages("compile", b.Name()+"/"+req.Algo.Name, plan.Stages)
	}
	return plan, err
}

// Experiment generates the artifacts for one paper table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(opts Options) ([]*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Global link utilization of expert/synthesized plans on the MSCCL backend", Table1},
		{"fig2", "Time cost breakdown of primitives on the MSCCL runtime", Figure2},
		{"fig3", "Runtime interpreter vs direct kernel execution", Figure3},
		{"fig4", "Impact of TB parallelism on single-NIC bandwidth", Figure4},
		{"fig6", "Expert-designed AllGather/AllReduce bandwidth across buffer sizes", Figure6},
		{"fig7", "Synthesized AllGather/AllReduce speedup over MSCCL", Figure7},
		{"fig8", "Expert algorithms on additional topologies (2×4, 4×4)", Figure8},
		{"fig9", "Synthesized algorithms on additional topologies (2×4, 4×4)", Figure9},
		{"fig10a", "Offline workflow phase scalability", Figure10a},
		{"fig10b", "HPDS vs round-robin scheduling", Figure10b},
		{"fig11", "V100 cluster: HM collectives vs NCCL and MSCCL", Figure11},
		{"table3", "TB resource utilization: ResCCL vs MSCCL across topologies", Table3},
		{"fig12", "Per-TB time breakdown: sync vs execution, release saving", Figure12},
		{"fig13", "End-to-end Megatron training throughput (GPT-3, T5)", Figure13},
		{"ablation", "Design-choice ablations (granularity, allocation, scheduling policy, chunk size)", Ablations},
		{"faulted", "Goodput under injected faults and runtime recovery (dynamic interference)", Faulted},
		{"protocol-crossover", "NCCL protocol tiers: per-size completion and LL/LL128/Simple switch points", ProtocolCrossover},
		{"scale", "Simulator scale sweep: events/sec and wall time vs rank count (hierarchical AllReduce)", Scale},
		{"tune", "Autotuned dispatch: synthesized vs heuristic vs NCCL baseline per size bucket", TuneDispatch},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for _, e := range reg {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(ids, ", "))
}

// --- shared helpers ---

const defaultChunk = 1 << 20

// gb formats bytes/s as GB/s.
func gb(bw float64) string { return fmt.Sprintf("%.1f", bw/1e9) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// mbLabel renders a buffer size like the paper's x axes.
func mbLabel(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// backends returns the three compared backends in paper order.
func backends() []backend.Backend {
	return []backend.Backend{backend.NewNCCL(), backend.NewMSCCL(), backend.NewResCCL()}
}

// runPlan simulates a compiled plan.
func runPlan(opts Options, tp *topo.Topology, plan *backend.Plan, buf, chunk int64) (*sim.Result, error) {
	return runSim(opts, sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: buf, ChunkBytes: chunk})
}

// bandwidth compiles the algorithm on every backend and returns algo
// bandwidth per backend per buffer size: out[backend][i] for bufs[i].
// Every (backend, buffer) pair is an independent cell; the plan cache
// collapses the per-backend compilations to one each.
func bandwidth(opts Options, tp *topo.Topology, algo *ir.Algorithm, bufs []int64) (map[string][]float64, error) {
	bks := backends()
	series := make([][]float64, len(bks))
	for i := range series {
		series[i] = make([]float64, len(bufs))
	}
	err := runCells(opts, len(bks)*len(bufs), func(c int) error {
		bi, fi := c/len(bufs), c%len(bufs)
		b := bks[bi]
		plan, err := compile(opts, b, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return fmt.Errorf("%s/%s: %w", b.Name(), algo.Name, err)
		}
		res, err := runPlan(opts, tp, plan, bufs[fi], defaultChunk)
		if err != nil {
			return fmt.Errorf("%s/%s buf=%d: %w", b.Name(), algo.Name, bufs[fi], err)
		}
		series[bi][fi] = res.AlgoBW
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(bks))
	for i, b := range bks {
		out[b.Name()] = series[i]
	}
	return out, nil
}

// bufSweep returns the paper's buffer-size range, shrunk under Quick:
// the smallest point, a middle point, and the largest point at or below
// 512 MiB (the bandwidth-saturated regime is reached well before then,
// so the shape is preserved at a fraction of the cost).
func bufSweep(opts Options, full []int64) []int64 {
	if !opts.Quick || len(full) <= 3 {
		return full
	}
	capped := full
	for i := len(full) - 1; i > 0; i-- {
		if full[i] <= 512<<20 {
			capped = full[:i+1]
			break
		}
	}
	return []int64{capped[0], capped[len(capped)/2], capped[len(capped)-1]}
}

var paperBufs = []int64{8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20, 1 << 30, 2 << 30, 4 << 30}
