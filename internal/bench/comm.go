package bench

import (
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

// expertAG/expertAR pick the MSCCLang-style expert algorithm for a
// cluster shape (the hierarchical mesh across servers, the NVSwitch full
// mesh inside one).
func expertAG(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes == 1 {
		return expert.MeshAllGather(gpn)
	}
	return expert.HMAllGather(nNodes, gpn)
}

func expertAR(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes == 1 {
		return expert.MeshAllReduce(gpn)
	}
	return expert.HMAllReduce(nNodes, gpn)
}

// Table1 measures global link utilization while the MSCCL backend
// executes expert (MSCCLang) and synthesized (TACCL/TECCL) plans at
// three cluster scales — the paper's motivation table.
func Table1(opts Options) ([]*Table, error) {
	opts = opts.init()
	t := &Table{
		ID:     "table1",
		Title:  "Global link utilization on the MSCCL backend",
		Header: []string{"Topo Scale", "MS-AG", "MS-AR", "TA-AG", "TA-AR", "TE-AG"},
		Notes: []string{
			"paper: 1 server 76.7/71.0/51.6/45.7/52.7%; 2 servers 67.5/61.8/34.3/31.8/33.2%; 4 servers 66.8/46.1/44.6/41.9/38.1%",
		},
	}
	buf := int64(1 << 30)
	if opts.Quick {
		buf = 256 << 20
	}
	msccl := backend.NewMSCCL()
	scales := []struct {
		label  string
		nNodes int
	}{
		{"1 Server (8 GPUs)", 1},
		{"2 Servers (16 GPUs)", 2},
		{"4 Servers (32 GPUs)", 4},
	}
	// The single-server MSCCLang expert AllReduce is the classic ring
	// (msccl-tools' canonical example); across servers it is the
	// hierarchical mesh.
	msAR := func(nNodes, gpn int) (*ir.Algorithm, error) {
		if nNodes == 1 {
			return expert.RingAllReduce(gpn)
		}
		return expert.HMAllReduce(nNodes, gpn)
	}
	builders := []func(int, int) (*ir.Algorithm, error){
		expertAG, msAR,
		synth.TACCLAllGather, synth.TACCLAllReduce,
		synth.TECCLAllGather,
	}
	cells := make([]string, len(scales)*len(builders))
	err := runCells(opts, len(cells), func(c int) error {
		sc := scales[c/len(builders)]
		build := builders[c%len(builders)]
		tp := topo.New(sc.nNodes, 8, topo.A100())
		algo, err := build(sc.nNodes, 8)
		if err != nil {
			return err
		}
		plan, err := compile(opts, msccl, backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return fmt.Errorf("table1 %s/%s: %w", sc.label, algo.Name, err)
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return fmt.Errorf("table1 %s/%s: %w", sc.label, algo.Name, err)
		}
		cells[c] = pct(res.MeanLinkUtilization())
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range scales {
		t.AddRow(append([]string{sc.label}, cells[si*len(builders):(si+1)*len(builders)]...)...)
	}
	return []*Table{t}, nil
}

// bwFigure renders one expert/synth bandwidth comparison figure: one
// table per (operator, topology) with a GB/s column per backend. The
// caller must have initialized opts.
func bwFigure(id, title string, opts Options, shapes [][2]int,
	build func(op ir.OpType, nNodes, gpn int) (*ir.Algorithm, error), relative bool) ([]*Table, error) {

	bufs := bufSweep(opts, paperBufs)
	var out []*Table
	for _, shape := range shapes {
		nNodes, gpn := shape[0], shape[1]
		tp := topo.New(nNodes, gpn, topo.A100())
		for _, op := range []ir.OpType{ir.OpAllGather, ir.OpAllReduce} {
			algo, err := build(op, nNodes, gpn)
			if err != nil {
				return nil, err
			}
			series, err := bandwidth(opts, tp, algo, bufs)
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID:    id,
				Title: fmt.Sprintf("%s — %s, %d×%d GPUs (%d ranks)", title, algo.Name, nNodes, gpn, tp.NRanks()),
			}
			if relative {
				t.Header = []string{"Buffer", "MSCCL (GB/s)", "ResCCL (GB/s)", "speedup"}
				for i, buf := range bufs {
					sp := series["ResCCL"][i] / series["MSCCL"][i]
					t.AddRow(mbLabel(buf), gb(series["MSCCL"][i]), gb(series["ResCCL"][i]), fmt.Sprintf("%.2fx", sp))
				}
			} else {
				t.Header = []string{"Buffer", "NCCL (GB/s)", "MSCCL (GB/s)", "ResCCL (GB/s)", "vs NCCL", "vs MSCCL"}
				for i, buf := range bufs {
					t.AddRow(mbLabel(buf),
						gb(series["NCCL"][i]), gb(series["MSCCL"][i]), gb(series["ResCCL"][i]),
						fmt.Sprintf("%.2fx", series["ResCCL"][i]/series["NCCL"][i]),
						fmt.Sprintf("%.2fx", series["ResCCL"][i]/series["MSCCL"][i]))
				}
			}
			out = append(out, t)
		}
	}
	return out, nil
}

func expertBuilder(op ir.OpType, nNodes, gpn int) (*ir.Algorithm, error) {
	if op == ir.OpAllGather {
		return expertAG(nNodes, gpn)
	}
	return expertAR(nNodes, gpn)
}

func tacclBuilder(op ir.OpType, nNodes, gpn int) (*ir.Algorithm, error) {
	if op == ir.OpAllGather {
		return synth.TACCLAllGather(nNodes, gpn)
	}
	return synth.TACCLAllReduce(nNodes, gpn)
}

func tecclBuilder(op ir.OpType, nNodes, gpn int) (*ir.Algorithm, error) {
	if op == ir.OpAllGather {
		return synth.TECCLAllGather(nNodes, gpn)
	}
	return synth.TECCLAllReduce(nNodes, gpn)
}

// Figure6 reproduces the expert-designed AllGather/AllReduce bandwidth
// sweep on the main topologies (16 and 32 GPUs).
func Figure6(opts Options) ([]*Table, error) {
	return bwFigure("fig6", "Expert-designed bandwidth", opts.init(), [][2]int{{2, 8}, {4, 8}}, expertBuilder, false)
}

// Figure7 reproduces the synthesized-algorithm speedups of ResCCL over
// MSCCL (TACCL and TECCL plans) on the main topologies.
func Figure7(opts Options) ([]*Table, error) {
	opts = opts.init()
	ta, err := bwFigure("fig7", "TACCL-synthesized speedup", opts, [][2]int{{2, 8}, {4, 8}}, tacclBuilder, true)
	if err != nil {
		return nil, err
	}
	te, err := bwFigure("fig7", "TECCL-synthesized speedup", opts, [][2]int{{2, 8}, {4, 8}}, tecclBuilder, true)
	if err != nil {
		return nil, err
	}
	return append(ta, te...), nil
}

// Figure8 runs the expert algorithms on the additional topologies (two
// and four servers of four GPUs each).
func Figure8(opts Options) ([]*Table, error) {
	return bwFigure("fig8", "Expert-designed bandwidth (additional topologies)", opts.init(),
		[][2]int{{2, 4}, {4, 4}}, expertBuilder, false)
}

// Figure9 runs the synthesized algorithms on the additional topologies.
func Figure9(opts Options) ([]*Table, error) {
	opts = opts.init()
	ta, err := bwFigure("fig9", "TACCL-synthesized speedup (additional topologies)", opts,
		[][2]int{{2, 4}, {4, 4}}, tacclBuilder, true)
	if err != nil {
		return nil, err
	}
	te, err := bwFigure("fig9", "TECCL-synthesized speedup (additional topologies)", opts,
		[][2]int{{2, 4}, {4, 4}}, tecclBuilder, true)
	if err != nil {
		return nil, err
	}
	return append(ta, te...), nil
}

// Figure11 reproduces the V100/100G heterogeneous-cluster comparison:
// HM-AllGather, HM-ReduceScatter and HM-AllReduce under all three
// backends across buffer sizes.
func Figure11(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 8, topo.V100())
	bufs := bufSweep(opts, []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20, 1 << 30, 2 << 30, 4 << 30})
	ops := []struct {
		label string
		name  string
	}{
		{"HM-AllGather", "hm-allgather"},
		{"HM-ReduceScatter", "hm-reducescatter"},
		{"HM-AllReduce", "hm-allreduce"},
	}
	var out []*Table
	for _, o := range ops {
		algo, err := expert.Build(o.name, 2, 8)
		if err != nil {
			return nil, err
		}
		series, err := bandwidth(opts, tp, algo, bufs)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     "fig11",
			Title:  fmt.Sprintf("V100 cluster — %s", o.label),
			Header: []string{"Buffer", "NCCL (GB/s)", "MSCCL (GB/s)", "ResCCL (GB/s)", "vs NCCL", "vs MSCCL"},
		}
		for i, buf := range bufs {
			t.AddRow(mbLabel(buf),
				gb(series["NCCL"][i]), gb(series["MSCCL"][i]), gb(series["ResCCL"][i]),
				fmt.Sprintf("%.2fx", series["ResCCL"][i]/series["NCCL"][i]),
				fmt.Sprintf("%.2fx", series["ResCCL"][i]/series["MSCCL"][i]))
		}
		out = append(out, t)
	}
	return out, nil
}
