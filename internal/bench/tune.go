package bench

import (
	"fmt"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
	"github.com/resccl/resccl/internal/tune"
)

// TuneDispatch runs the autotuning sweep on the reference 2×8 A100
// fabric and renders two artifacts: the emitted dispatch table, and a
// per-size comparison of the best synthesized plan against the best
// registered (expert/heuristic) algorithm and the NCCL-backend
// baseline. It also asserts the dispatch invariant — every table entry
// is the argmin of its probe point's measured cells.
func TuneDispatch(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 8, topo.A100())
	topts := tune.Options{
		Quick:    opts.Quick,
		Parallel: opts.Parallel,
		Workers:  opts.Workers,
		Cache:    opts.Cache,
	}
	if opts.Stats != nil {
		topts.Stats = opts.Stats
	}
	// Experiment entry points share the registry's Run(Options) shape;
	// the caller's context rides in Options rather than a parameter.
	res, err := tune.Sweep(opts.ctx(), tp, topts) //resccl:allow ctxflow
	if err != nil {
		return nil, err
	}

	dispatch := &Table{
		ID:     "tune",
		Title:  "Autotuned dispatch table (2×8 A100, seed 1)",
		Header: []string{"op", "bucket ≤", "algorithm", "protocol", "probe", "completion (µs)", "gap %"},
	}
	for _, e := range res.Table.Entries {
		bucket := "∞"
		if e.MaxBytes > 0 {
			bucket = mbLabel(e.MaxBytes)
		}
		dispatch.AddRow(e.Op, bucket, e.Algorithm, e.Protocol,
			mbLabel(e.ProbeBytes), fmt.Sprintf("%.1f", e.CompletionUS),
			fmt.Sprintf("%.2f", e.GapPct))
	}
	dispatch.Notes = append(dispatch.Notes,
		fmt.Sprintf("table hash %s…; same topology and seed regenerate identical bytes", res.Table.Hash()[:12]),
		fmt.Sprintf("gap %% is each winner's certified distance from its α–β lower bound; %d candidates pruned by the resource budget", len(res.Pruned)))

	cmp, err := tuneComparison(opts, tp, res)
	if err != nil {
		return nil, err
	}
	return []*Table{dispatch, cmp}, nil
}

// tuneComparison builds the synthesized-vs-heuristic-vs-NCCL table and
// checks the dispatch argmin invariant.
func tuneComparison(opts Options, tp *topo.Topology, res *tune.Result) (*Table, error) {
	type key struct {
		op    ir.OpType
		bytes int64
	}
	type best struct {
		name       string
		completion float64
	}
	bestSynth := map[key]best{}
	bestReg := map[key]best{}
	bestAll := map[key]best{}
	regAlgo := map[ir.OpType]*ir.Algorithm{}
	var points []key
	for _, c := range res.Cells {
		k := key{c.Op, c.Bytes}
		if _, seen := bestAll[k]; !seen {
			points = append(points, k)
		}
		m := bestReg
		if c.Candidate.Synth {
			m = bestSynth
		}
		if b, ok := m[k]; !ok || c.Completion < b.completion {
			m[k] = best{c.Candidate.Name, c.Completion}
		}
		if b, ok := bestAll[k]; !ok || c.Completion < b.completion {
			bestAll[k] = best{c.Candidate.Name, c.Completion}
		}
		if !c.Candidate.Synth && regAlgo[c.Op] == nil {
			regAlgo[c.Op] = c.Candidate.Algo
		}
	}

	// NCCL baseline: the vendor-library emulation runs its own standard
	// algorithm for the operator at the tier its size-based tuning table
	// would pick; the request's Algo only conveys Op and NRanks.
	nccl := backend.NewNCCL()
	baseline := make([]float64, len(points))
	err := runCells(opts, len(points), func(i int) error {
		k := points[i]
		algo := regAlgo[k.op]
		if algo == nil {
			return fmt.Errorf("bench: no registered candidate for %v", k.op)
		}
		plan, err := compile(opts, nccl, backend.Request{
			Algo: algo, Topo: tp, Protocol: sim.SelectProtocol(tp, k.op, k.bytes),
		})
		if err != nil {
			return fmt.Errorf("bench: NCCL baseline %v: %w", k.op, err)
		}
		r, err := runPlan(opts, tp, plan, k.bytes, defaultChunk)
		if err != nil {
			return fmt.Errorf("bench: NCCL baseline %v at %d: %w", k.op, k.bytes, err)
		}
		baseline[i] = r.Completion
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "tune",
		Title:  "Synthesized vs heuristic vs NCCL baseline per size bucket (completion µs)",
		Header: []string{"op", "size", "best synthesized", "best heuristic", "NCCL", "dispatch pick", "vs NCCL"},
	}
	synthWins := 0
	for i, k := range points {
		e, ok := res.Table.Lookup(k.op, k.bytes)
		if !ok {
			return nil, fmt.Errorf("bench: dispatch table has no bucket for %v", k.op)
		}
		all := bestAll[k]
		// The dispatch invariant: the probe point's entry is its argmin.
		if e.ProbeBytes == k.bytes && all.completion*1e6 != e.CompletionUS {
			return nil, fmt.Errorf("bench: dispatch for %v at %d is not the argmin: entry %.3fµs, best cell %.3fµs",
				k.op, k.bytes, e.CompletionUS, all.completion*1e6)
		}
		sv, hv := "—", "—"
		if b, ok := bestSynth[k]; ok {
			sv = fmt.Sprintf("%.1f (%s)", b.completion*1e6, b.name)
			if reg, ok := bestReg[k]; ok && b.completion < reg.completion {
				synthWins++
			}
		}
		if b, ok := bestReg[k]; ok {
			hv = fmt.Sprintf("%.1f (%s)", b.completion*1e6, b.name)
		}
		t.AddRow(k.op.String(), mbLabel(k.bytes), sv, hv,
			fmt.Sprintf("%.1f", baseline[i]*1e6),
			fmt.Sprintf("%s/%s", all.name, protoOf(res, k)),
			fmt.Sprintf("%.2f×", baseline[i]/all.completion))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("synthesized plans win %d of %d swept points outright; dispatch always picks the measured argmin", synthWins, len(points)))
	return t, nil
}

// protoOf returns the protocol of the winning cell at a grid point.
func protoOf(res *tune.Result, k struct {
	op    ir.OpType
	bytes int64
}) string {
	var name, proto string
	bestC := -1.0
	for _, c := range res.Cells {
		if c.Op != k.op || c.Bytes != k.bytes {
			continue
		}
		if bestC < 0 || c.Completion < bestC || (c.Completion == bestC && c.Candidate.Name < name) {
			bestC, name, proto = c.Completion, c.Candidate.Name, c.Protocol.String()
		}
	}
	return proto
}
