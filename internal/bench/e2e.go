package bench

import (
	"fmt"

	"github.com/resccl/resccl/internal/train"
)

// Figure13 reproduces the end-to-end Megatron training comparison:
// throughput for T5 models under data parallelism and GPT-3 models under
// tensor parallelism, with each backend serving the collectives.
func Figure13(opts Options) ([]*Table, error) {
	opts = opts.init()
	t5 := &Table{
		ID:     "fig13",
		Title:  "T5 training throughput (data parallelism, 16 GPUs, batch 16)",
		Header: []string{"Model", "NCCL (samples/s)", "MSCCL (samples/s)", "ResCCL (samples/s)", "vs NCCL", "vs MSCCL"},
		Notes:  []string{"paper: ResCCL accelerates T5 by 18%–39% over native Megatron, 7.1%–1.8x over MSCCL"},
	}
	gpt := &Table{
		ID:     "fig13",
		Title:  "GPT-3 training throughput (tensor parallelism TP=8)",
		Header: []string{"Model", "GPUs", "NCCL (samples/s)", "MSCCL (samples/s)", "ResCCL (samples/s)", "vs NCCL", "vs MSCCL"},
		Notes:  []string{"paper: ResCCL delivers 11%–20% over native Megatron, 7.5%–29.3% over MSCCL"},
	}

	t5Models := []train.ModelConfig{train.T5_220M, train.T5_770M, train.T5_3B}
	gptCases := []struct {
		m     train.ModelConfig
		nodes int
		batch int
	}{
		{train.GPT3_6_7B, 2, 16},
		{train.GPT3_13B, 2, 16},
		{train.GPT3_22B, 4, 32},
		{train.GPT3_45B, 4, 32},
	}
	if opts.Quick {
		t5Models = t5Models[:2]
		gptCases = gptCases[:2]
	}

	// One cell per model deployment; each training comparison is
	// independent (train.Compare builds its own plans internally).
	t5Rows := make([][]string, len(t5Models))
	gptRows := make([][]string, len(gptCases))
	err := runCells(opts, len(t5Models)+len(gptCases), func(c int) error {
		if c < len(t5Models) {
			m := t5Models[c]
			cfg := train.Config{Model: m, GlobalBatch: 16, TP: 1, DP: 16, NNodes: 2, GPN: 8}
			res, err := train.Compare(cfg, backends()...)
			if err != nil {
				return fmt.Errorf("fig13 %s: %w", m.Name, err)
			}
			t5Rows[c] = []string{m.Name,
				fmt.Sprintf("%.1f", res["NCCL"].Throughput),
				fmt.Sprintf("%.1f", res["MSCCL"].Throughput),
				fmt.Sprintf("%.1f", res["ResCCL"].Throughput),
				fmt.Sprintf("%.2fx", res["ResCCL"].Throughput/res["NCCL"].Throughput),
				fmt.Sprintf("%.2fx", res["ResCCL"].Throughput/res["MSCCL"].Throughput)}
			return nil
		}
		gc := gptCases[c-len(t5Models)]
		cfg := train.Config{Model: gc.m, GlobalBatch: gc.batch, TP: 8, DP: gc.nodes, NNodes: gc.nodes, GPN: 8}
		res, err := train.Compare(cfg, backends()...)
		if err != nil {
			return fmt.Errorf("fig13 %s: %w", gc.m.Name, err)
		}
		gptRows[c-len(t5Models)] = []string{gc.m.Name, fmt.Sprintf("%d", gc.nodes*8),
			fmt.Sprintf("%.2f", res["NCCL"].Throughput),
			fmt.Sprintf("%.2f", res["MSCCL"].Throughput),
			fmt.Sprintf("%.2f", res["ResCCL"].Throughput),
			fmt.Sprintf("%.2fx", res["ResCCL"].Throughput/res["NCCL"].Throughput),
			fmt.Sprintf("%.2fx", res["ResCCL"].Throughput/res["MSCCL"].Throughput)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t5.Rows = t5Rows
	gpt.Rows = gptRows
	return []*Table{t5, gpt}, nil
}
