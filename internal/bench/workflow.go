package bench

import (
	"fmt"
	"strings"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

// Figure3 compares runtime-interpreter execution with direct kernel
// execution of the *same* ResCCL-scheduled plan, across buffer sizes —
// isolating the overhead the paper attributes to online plan parsing
// (average loss 17.1%).
func Figure3(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 8, topo.A100())
	bufs := bufSweep(opts, []int64{32 << 20, 128 << 20, 512 << 20, 2 << 30})
	cases := []struct {
		label string
		build func() (*ir.Algorithm, error)
	}{
		{"expert HM-AllReduce", func() (*ir.Algorithm, error) { return expertAR(2, 8) }},
		{"synthesized TECCL-AllGather", func() (*ir.Algorithm, error) { return synth.TECCLAllGather(2, 8) }},
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Runtime interpreter vs direct kernel execution (same schedule)",
		Header: []string{"Algorithm", "Buffer", "direct (GB/s)", "interpreted (GB/s)", "loss"},
		Notes:  []string{"paper: average performance loss 17.1%"},
	}
	// One cell per (algorithm, buffer): both execution modes of one
	// point. The two compilations per case are deduplicated by the plan
	// cache across cells.
	type point struct{ direct, interp float64 }
	points := make([]point, len(cases)*len(bufs))
	algos := make([]*ir.Algorithm, len(cases))
	for i, c := range cases {
		algo, err := c.build()
		if err != nil {
			return nil, err
		}
		algos[i] = algo
	}
	err := runCells(opts, len(points), func(c int) error {
		ci, fi := c/len(bufs), c%len(bufs)
		req := backend.Request{Algo: algos[ci], Topo: tp}
		direct, err := compile(opts, &backend.ResCCL{Options: core.Options{Mode: kernel.ModeDirect}}, req)
		if err != nil {
			return err
		}
		interp, err := compile(opts, &backend.ResCCL{Options: core.Options{Mode: kernel.ModeInterpreted}}, req)
		if err != nil {
			return err
		}
		rd, err := runPlan(opts, tp, direct, bufs[fi], defaultChunk)
		if err != nil {
			return err
		}
		ri, err := runPlan(opts, tp, interp, bufs[fi], defaultChunk)
		if err != nil {
			return err
		}
		points[c] = point{direct: rd.AlgoBW, interp: ri.AlgoBW}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var lossSum float64
	var lossN int
	for ci, c := range cases {
		for fi, buf := range bufs {
			p := points[ci*len(bufs)+fi]
			loss := 1 - p.interp/p.direct
			lossSum += loss
			lossN++
			t.AddRow(c.label, mbLabel(buf), gb(p.direct), gb(p.interp), pct(loss))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average loss %s", pct(lossSum/float64(lossN))))
	return []*Table{t}, nil
}

// Figure4 reproduces the TB-parallelism microbenchmark: P2P transfers
// over a single NIC emulating a two-GPU AllGather while varying the
// number of thread blocks driving the link. The profile uses the
// measured small-TB regime (a single TB sustains a quarter of NIC line
// rate), so bandwidth rises until four TBs saturate the link and
// degrades beyond it under the Eq. 1 contention penalty.
func Figure4(opts Options) ([]*Table, error) {
	opts = opts.init()
	prof := topo.A100()
	prof.TBCapInter = prof.NICBW / 4
	tp := topo.New(2, 2, prof, topo.WithNICs(1))

	t := &Table{
		ID:     "fig4",
		Title:  "Single-NIC bandwidth vs number of TBs (P2P AllGather of two GPUs)",
		Header: []string{"TBs", "bandwidth (GB/s)", "of line rate"},
		Notes:  []string{"paper: bandwidth rises up to 4 TBs, then degrades"},
	}
	counts := []int{1, 2, 3, 4, 6, 8, 12, 16}
	if opts.Quick {
		counts = []int{1, 2, 4, 8}
	}
	bws := make([]float64, len(counts))
	err := runCells(opts, len(counts), func(i int) error {
		bw, err := singleNICBandwidth(opts, tp, counts[i])
		if err != nil {
			return err
		}
		bws[i] = bw
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range counts {
		t.AddRow(fmt.Sprintf("%d", k), gb(bws[i]), pct(bws[i]/prof.NICBW))
	}
	return []*Table{t}, nil
}

// singleNICBandwidth builds a hand-rolled kernel with k TB pairs each
// streaming chunks from rank 0 to rank 2 (across the NIC) and returns
// the achieved aggregate NIC goodput.
func singleNICBandwidth(opts Options, tp *topo.Topology, k int) (float64, error) {
	algo := &ir.Algorithm{
		Name:    fmt.Sprintf("p2p-%dtb", k),
		Op:      ir.OpAllGather,
		NRanks:  tp.NRanks(),
		NChunks: 4 * k,
	}
	for j := 0; j < k; j++ {
		algo.Transfers = append(algo.Transfers, ir.Transfer{
			Src: 0, Dst: 2, Step: 0, Chunk: ir.ChunkID(4 * j), Type: ir.CommRecv,
		})
	}
	g, err := dag.Build(algo, tp)
	if err != nil {
		return 0, err
	}
	kern := &kernel.Kernel{
		Name:      algo.Name,
		Graph:     g,
		Mode:      kernel.ModeDirect,
		SendTB:    make([]int, k),
		RecvTB:    make([]int, k),
		LinkPreds: make([][]ir.TaskID, k),
	}
	for t := 0; t < k; t++ {
		send, recv := g.Tasks[t].Primitives()
		st := &kernel.TBProgram{ID: 2 * t, Rank: 0, Order: kernel.TaskMajor, Label: fmt.Sprintf("tb%d/send", t), Slots: []ir.Primitive{send}}
		rt := &kernel.TBProgram{ID: 2*t + 1, Rank: 2, Order: kernel.TaskMajor, Label: fmt.Sprintf("tb%d/recv", t), Slots: []ir.Primitive{recv}}
		kern.TBs = append(kern.TBs, st, rt)
		kern.SendTB[t] = st.ID
		kern.RecvTB[t] = rt.ID
	}
	if err := kernel.Validate(kern); err != nil {
		return 0, err
	}
	// 1 GiB buffer over 4k chunks of 1 MiB → each TB streams 256/k
	// micro-batches; total NIC payload is constant at 256 MiB.
	res, err := runSim(opts, sim.Config{Topo: tp, Kernel: kern, BufferBytes: 1 << 30, ChunkBytes: defaultChunk})
	if err != nil {
		return 0, err
	}
	moved := float64(res.Instances) * res.Plan.ChunkBytes
	return moved / res.Completion, nil
}

// hmARSource renders the Fig. 16 ResCCLang program parameterized for an
// nNodes×gpn cluster — the input of the workflow-scalability study.
func hmARSource(nNodes, gpn int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "def ResCCLAlgo(nRanks=%d, nChannels=4, nWarps=16, AlgoName=\"HM\", OpType=\"Allreduce\", GPUPerNode=%d, NICPerNode=%d):\n",
		nNodes*gpn, gpn, max(1, gpn/2))
	fmt.Fprintf(&b, "    nNodes = %d\n", nNodes)
	fmt.Fprintf(&b, "    nGpusperNode = %d\n", gpn)
	b.WriteString(`    nChunks = nNodes * nGpusperNode
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = baseStep * (nGpusperNode - 1) + offset
                    transfer(srcRank, dstRank, step, (dstRank + baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + baseStep
                transfer(srcRank, dstRank, step, (srcRank + nChunks - baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + nNodes - 1 + baseStep
                chunkId = (srcRank + nChunks - (baseStep + nNodes - 1) * nGpusperNode) % nChunks
                transfer(srcRank, dstRank, step, chunkId, recv)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = nNodes * (nGpusperNode - 1) + 2 * nNodes - 2 + baseStep
                    transfer(srcRank, dstRank, step, (srcRank + baseStep * nGpusperNode) % nChunks, recv)
`)
	return b.String()
}

// Figure10a measures the offline workflow phases (parse, analyze,
// schedule, alloc, lower) compiling the HM AllReduce DSL program for
// clusters of 8 to 1024 emulated GPUs.
func Figure10a(opts Options) ([]*Table, error) {
	opts = opts.init()
	t := &Table{
		ID:     "fig10a",
		Title:  "Offline workflow phase scalability (HM AllReduce via ResCCLang)",
		Header: []string{"GPUs", "tasks", "parse", "analyze", "schedule", "alloc", "lower", "total"},
		Notes:  []string{"paper: ~11 minutes at 1024 GPUs on their host; offline, once per job"},
	}
	scales := [][2]int{{2, 4}, {2, 8}, {4, 8}, {8, 8}, {16, 8}, {32, 8}, {64, 8}, {128, 8}}
	if opts.Quick {
		scales = [][2]int{{2, 4}, {2, 8}, {4, 8}, {8, 8}}
	}
	// The rows report *measured* wall-clock phase timings, so this is
	// the one experiment whose cell outputs are not bit-reproducible
	// between runs (serial or parallel); the task counts are.
	rows := make([][]string, len(scales))
	err := runCells(opts, len(scales), func(i int) error {
		nNodes, gpn := scales[i][0], scales[i][1]
		tp := topo.New(nNodes, gpn, topo.A100())
		src := hmARSource(nNodes, gpn)
		// Correctness of the generated program is covered by tests; the
		// scalability run times only the paper's four phases.
		c, err := core.CompileDSL(opts.ctx(), src, tp, core.Options{SkipVerify: true})
		if err != nil {
			return fmt.Errorf("fig10a %d GPUs: %w", nNodes*gpn, err)
		}
		ph := c.Phases
		rows[i] = []string{fmt.Sprintf("%d", nNodes*gpn),
			fmt.Sprintf("%d", len(c.Graph.Tasks)),
			ph.Parse.String(), ph.Analyze.String(), ph.Schedule.String(), ph.Alloc.String(),
			ph.Lower.String(), ph.Total().String()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Figure10b compares the HPDS scheduler against the round-robin baseline
// on the paper's 8-GPU two-server topology, for expert and synthesized
// algorithms.
func Figure10b(opts Options) ([]*Table, error) {
	opts = opts.init()
	tp := topo.New(2, 4, topo.A100())
	buf := int64(512 << 20)
	if opts.Quick {
		buf = 128 << 20
	}
	t := &Table{
		ID:     "fig10b",
		Title:  "HPDS vs round-robin scheduling (2 servers × 4 GPUs)",
		Header: []string{"Algorithm", "Sequential (GB/s)", "RR (GB/s)", "HPDS (GB/s)", "vs RR", "vs Seq"},
		Notes: []string{
			"paper: HPDS delivers speedups of up to 187%",
			"the simulated runtime is self-timed (instances start when dependencies allow), which masks much of the static-order gap the paper's runtime exhibits; the Sequential column bounds the cost of giving up cross-chunk interleaving entirely",
		},
	}
	cases := []struct {
		label string
		build func() (*ir.Algorithm, error)
	}{
		{"HM-AllGather", func() (*ir.Algorithm, error) { return expertAG(2, 4) }},
		{"HM-AllReduce", func() (*ir.Algorithm, error) { return expertAR(2, 4) }},
		{"TACCL-AllGather", func() (*ir.Algorithm, error) { return synth.TACCLAllGather(2, 4) }},
		{"TACCL-AllReduce", func() (*ir.Algorithm, error) { return synth.TACCLAllReduce(2, 4) }},
		{"TECCL-AllGather", func() (*ir.Algorithm, error) { return synth.TECCLAllGather(2, 4) }},
		{"TECCL-AllReduce", func() (*ir.Algorithm, error) { return synth.TECCLAllReduce(2, 4) }},
	}
	policies := []sched.Policy{sched.PolicySequential, sched.PolicyRR, sched.PolicyHPDS}
	algos := make([]*ir.Algorithm, len(cases))
	for i, c := range cases {
		algo, err := c.build()
		if err != nil {
			return nil, err
		}
		algos[i] = algo
	}
	bws := make([]float64, len(cases)*len(policies))
	err := runCells(opts, len(bws), func(cell int) error {
		ci, pi := cell/len(policies), cell%len(policies)
		pol := policies[pi]
		plan, err := compile(opts, &backend.ResCCL{Options: core.Options{Policy: pol}},
			backend.Request{Algo: algos[ci], Topo: tp})
		if err != nil {
			return fmt.Errorf("fig10b %s/%v: %w", cases[ci].label, pol, err)
		}
		res, err := runPlan(opts, tp, plan, buf, defaultChunk)
		if err != nil {
			return fmt.Errorf("fig10b %s/%v: %w", cases[ci].label, pol, err)
		}
		bws[cell] = res.AlgoBW
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cases {
		seq, rr, hpds := bws[ci*len(policies)], bws[ci*len(policies)+1], bws[ci*len(policies)+2]
		t.AddRow(c.label, gb(seq), gb(rr), gb(hpds),
			fmt.Sprintf("%.2fx", hpds/rr),
			fmt.Sprintf("%.2fx", hpds/seq))
	}
	return []*Table{t}, nil
}
