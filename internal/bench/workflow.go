package bench

import (
	"fmt"
	"strings"

	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

// Figure3 compares runtime-interpreter execution with direct kernel
// execution of the *same* ResCCL-scheduled plan, across buffer sizes —
// isolating the overhead the paper attributes to online plan parsing
// (average loss 17.1%).
func Figure3(opts Options) ([]*Table, error) {
	tp := topo.New(2, 8, topo.A100())
	bufs := bufSweep(opts, []int64{32 << 20, 128 << 20, 512 << 20, 2 << 30})
	cases := []struct {
		label string
		build func() (*ir.Algorithm, error)
	}{
		{"expert HM-AllReduce", func() (*ir.Algorithm, error) { return expertAR(2, 8) }},
		{"synthesized TECCL-AllGather", func() (*ir.Algorithm, error) { return synth.TECCLAllGather(2, 8) }},
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Runtime interpreter vs direct kernel execution (same schedule)",
		Header: []string{"Algorithm", "Buffer", "direct (GB/s)", "interpreted (GB/s)", "loss"},
		Notes:  []string{"paper: average performance loss 17.1%"},
	}
	var lossSum float64
	var lossN int
	for _, c := range cases {
		algo, err := c.build()
		if err != nil {
			return nil, err
		}
		direct, err := core.Compile(algo, tp, core.Options{Mode: kernel.ModeDirect})
		if err != nil {
			return nil, err
		}
		interp, err := core.Compile(algo, tp, core.Options{Mode: kernel.ModeInterpreted})
		if err != nil {
			return nil, err
		}
		for _, buf := range bufs {
			rd, err := sim.Run(sim.Config{Topo: tp, Kernel: direct.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk})
			if err != nil {
				return nil, err
			}
			ri, err := sim.Run(sim.Config{Topo: tp, Kernel: interp.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk})
			if err != nil {
				return nil, err
			}
			loss := 1 - ri.AlgoBW/rd.AlgoBW
			lossSum += loss
			lossN++
			t.AddRow(c.label, mbLabel(buf), gb(rd.AlgoBW), gb(ri.AlgoBW), pct(loss))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average loss %s", pct(lossSum/float64(lossN))))
	return []*Table{t}, nil
}

// Figure4 reproduces the TB-parallelism microbenchmark: P2P transfers
// over a single NIC emulating a two-GPU AllGather while varying the
// number of thread blocks driving the link. The profile uses the
// measured small-TB regime (a single TB sustains a quarter of NIC line
// rate), so bandwidth rises until four TBs saturate the link and
// degrades beyond it under the Eq. 1 contention penalty.
func Figure4(opts Options) ([]*Table, error) {
	prof := topo.A100()
	prof.TBCapInter = prof.NICBW / 4
	tp := topo.New(2, 2, prof, topo.WithNICs(1))

	t := &Table{
		ID:     "fig4",
		Title:  "Single-NIC bandwidth vs number of TBs (P2P AllGather of two GPUs)",
		Header: []string{"TBs", "bandwidth (GB/s)", "of line rate"},
		Notes:  []string{"paper: bandwidth rises up to 4 TBs, then degrades"},
	}
	counts := []int{1, 2, 3, 4, 6, 8, 12, 16}
	if opts.Quick {
		counts = []int{1, 2, 4, 8}
	}
	for _, k := range counts {
		bw, err := singleNICBandwidth(tp, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), gb(bw), pct(bw/prof.NICBW))
	}
	return []*Table{t}, nil
}

// singleNICBandwidth builds a hand-rolled kernel with k TB pairs each
// streaming chunks from rank 0 to rank 2 (across the NIC) and returns
// the achieved aggregate NIC goodput.
func singleNICBandwidth(tp *topo.Topology, k int) (float64, error) {
	algo := &ir.Algorithm{
		Name:    fmt.Sprintf("p2p-%dtb", k),
		Op:      ir.OpAllGather,
		NRanks:  tp.NRanks(),
		NChunks: 4 * k,
	}
	for j := 0; j < k; j++ {
		algo.Transfers = append(algo.Transfers, ir.Transfer{
			Src: 0, Dst: 2, Step: 0, Chunk: ir.ChunkID(4 * j), Type: ir.CommRecv,
		})
	}
	g, err := dag.Build(algo, tp)
	if err != nil {
		return 0, err
	}
	kern := &kernel.Kernel{
		Name:      algo.Name,
		Graph:     g,
		Mode:      kernel.ModeDirect,
		SendTB:    make([]int, k),
		RecvTB:    make([]int, k),
		LinkPreds: make([][]ir.TaskID, k),
	}
	for t := 0; t < k; t++ {
		send, recv := g.Tasks[t].Primitives()
		st := &kernel.TBProgram{ID: 2 * t, Rank: 0, Order: kernel.TaskMajor, Label: fmt.Sprintf("tb%d/send", t), Slots: []ir.Primitive{send}}
		rt := &kernel.TBProgram{ID: 2*t + 1, Rank: 2, Order: kernel.TaskMajor, Label: fmt.Sprintf("tb%d/recv", t), Slots: []ir.Primitive{recv}}
		kern.TBs = append(kern.TBs, st, rt)
		kern.SendTB[t] = st.ID
		kern.RecvTB[t] = rt.ID
	}
	if err := kernel.Validate(kern); err != nil {
		return 0, err
	}
	// 1 GiB buffer over 4k chunks of 1 MiB → each TB streams 256/k
	// micro-batches; total NIC payload is constant at 256 MiB.
	res, err := sim.Run(sim.Config{Topo: tp, Kernel: kern, BufferBytes: 1 << 30, ChunkBytes: defaultChunk})
	if err != nil {
		return 0, err
	}
	moved := float64(res.Instances) * res.Plan.ChunkBytes
	return moved / res.Completion, nil
}

// hmARSource renders the Fig. 16 ResCCLang program parameterized for an
// nNodes×gpn cluster — the input of the workflow-scalability study.
func hmARSource(nNodes, gpn int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "def ResCCLAlgo(nRanks=%d, nChannels=4, nWarps=16, AlgoName=\"HM\", OpType=\"Allreduce\", GPUPerNode=%d, NICPerNode=%d):\n",
		nNodes*gpn, gpn, max(1, gpn/2))
	fmt.Fprintf(&b, "    nNodes = %d\n", nNodes)
	fmt.Fprintf(&b, "    nGpusperNode = %d\n", gpn)
	b.WriteString(`    nChunks = nNodes * nGpusperNode
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = baseStep * (nGpusperNode - 1) + offset
                    transfer(srcRank, dstRank, step, (dstRank + baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + baseStep
                transfer(srcRank, dstRank, step, (srcRank + nChunks - baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + nNodes - 1 + baseStep
                chunkId = (srcRank + nChunks - (baseStep + nNodes - 1) * nGpusperNode) % nChunks
                transfer(srcRank, dstRank, step, chunkId, recv)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = nNodes * (nGpusperNode - 1) + 2 * nNodes - 2 + baseStep
                    transfer(srcRank, dstRank, step, (srcRank + baseStep * nGpusperNode) % nChunks, recv)
`)
	return b.String()
}

// Figure10a measures the offline workflow phases (parse, analyze,
// schedule, lower) compiling the HM AllReduce DSL program for clusters
// of 8 to 1024 emulated GPUs.
func Figure10a(opts Options) ([]*Table, error) {
	t := &Table{
		ID:     "fig10a",
		Title:  "Offline workflow phase scalability (HM AllReduce via ResCCLang)",
		Header: []string{"GPUs", "tasks", "parse", "analyze", "schedule", "lower", "total"},
		Notes:  []string{"paper: ~11 minutes at 1024 GPUs on their host; offline, once per job"},
	}
	scales := [][2]int{{2, 4}, {2, 8}, {4, 8}, {8, 8}, {16, 8}, {32, 8}, {64, 8}, {128, 8}}
	if opts.Quick {
		scales = [][2]int{{2, 4}, {2, 8}, {4, 8}, {8, 8}}
	}
	for _, sc := range scales {
		nNodes, gpn := sc[0], sc[1]
		tp := topo.New(nNodes, gpn, topo.A100())
		src := hmARSource(nNodes, gpn)
		// Correctness of the generated program is covered by tests; the
		// scalability run times only the paper's four phases.
		c, err := core.CompileDSL(src, tp, core.Options{SkipVerify: true})
		if err != nil {
			return nil, fmt.Errorf("fig10a %d GPUs: %w", nNodes*gpn, err)
		}
		ph := c.Phases
		t.AddRow(fmt.Sprintf("%d", nNodes*gpn),
			fmt.Sprintf("%d", len(c.Graph.Tasks)),
			ph.Parse.String(), ph.Analyze.String(), ph.Schedule.String(), ph.Lower.String(),
			ph.Total().String())
	}
	return []*Table{t}, nil
}

// Figure10b compares the HPDS scheduler against the round-robin baseline
// on the paper's 8-GPU two-server topology, for expert and synthesized
// algorithms.
func Figure10b(opts Options) ([]*Table, error) {
	tp := topo.New(2, 4, topo.A100())
	buf := int64(512 << 20)
	if opts.Quick {
		buf = 128 << 20
	}
	t := &Table{
		ID:     "fig10b",
		Title:  "HPDS vs round-robin scheduling (2 servers × 4 GPUs)",
		Header: []string{"Algorithm", "Sequential (GB/s)", "RR (GB/s)", "HPDS (GB/s)", "vs RR", "vs Seq"},
		Notes: []string{
			"paper: HPDS delivers speedups of up to 187%",
			"the simulated runtime is self-timed (instances start when dependencies allow), which masks much of the static-order gap the paper's runtime exhibits; the Sequential column bounds the cost of giving up cross-chunk interleaving entirely",
		},
	}
	cases := []struct {
		label string
		build func() (*ir.Algorithm, error)
	}{
		{"HM-AllGather", func() (*ir.Algorithm, error) { return expertAG(2, 4) }},
		{"HM-AllReduce", func() (*ir.Algorithm, error) { return expertAR(2, 4) }},
		{"TACCL-AllGather", func() (*ir.Algorithm, error) { return synth.TACCLAllGather(2, 4) }},
		{"TACCL-AllReduce", func() (*ir.Algorithm, error) { return synth.TACCLAllReduce(2, 4) }},
		{"TECCL-AllGather", func() (*ir.Algorithm, error) { return synth.TECCLAllGather(2, 4) }},
		{"TECCL-AllReduce", func() (*ir.Algorithm, error) { return synth.TECCLAllReduce(2, 4) }},
	}
	for _, c := range cases {
		algo, err := c.build()
		if err != nil {
			return nil, err
		}
		bw := map[sched.Policy]float64{}
		for _, pol := range []sched.Policy{sched.PolicySequential, sched.PolicyRR, sched.PolicyHPDS} {
			comp, err := core.Compile(algo, tp, core.Options{Policy: pol})
			if err != nil {
				return nil, fmt.Errorf("fig10b %s/%v: %w", c.label, pol, err)
			}
			res, err := sim.Run(sim.Config{Topo: tp, Kernel: comp.Kernel, BufferBytes: buf, ChunkBytes: defaultChunk})
			if err != nil {
				return nil, fmt.Errorf("fig10b %s/%v: %w", c.label, pol, err)
			}
			bw[pol] = res.AlgoBW
		}
		t.AddRow(c.label, gb(bw[sched.PolicySequential]), gb(bw[sched.PolicyRR]), gb(bw[sched.PolicyHPDS]),
			fmt.Sprintf("%.2fx", bw[sched.PolicyHPDS]/bw[sched.PolicyRR]),
			fmt.Sprintf("%.2fx", bw[sched.PolicyHPDS]/bw[sched.PolicySequential]))
	}
	return []*Table{t}, nil
}
