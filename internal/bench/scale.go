package bench

import (
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/topo"
)

// scalePoints is the full rank sweep: 128 to 4096 ranks of hierarchical
// AllReduce on a rail-optimized fabric, plus a leaf/spine Clos point at
// the largest scale for comparison.
var scalePoints = []struct {
	nodes, gpn, spines int
	rail               bool
}{
	{16, 8, 8, true},
	{64, 8, 8, true},
	{128, 8, 8, true},
	{256, 8, 16, true},
	{512, 8, 16, true},
	{512, 8, 16, false},
}

// Scale measures simulator throughput against cluster size: for each
// rank count it compiles the hierarchical AllReduce, simulates it, and
// reports processed events, wall time, and events/second — the scaling
// behavior the incremental max-min solver and flat arenas exist for.
// Cells run serially even under -parallel: this experiment times the
// simulator itself, and concurrent cells would contend for cores and
// corrupt the throughput columns. Wall-time and events/sec columns are
// measured and vary run to run (like the Figure 10a phase timings);
// every other column is deterministic.
func Scale(opts Options) ([]*Table, error) {
	opts = opts.init()
	points := scalePoints
	if opts.Quick {
		points = points[:2]
	}
	const buf, chunk = 64 << 20, defaultChunk

	t := &Table{
		ID:     "scale",
		Title:  "Simulator scale sweep: hierarchical AllReduce, 128–4096 ranks",
		Header: []string{"Ranks", "Shape", "Fabric", "Transfers", "Sim events", "sim time (wall ms)", "throughput (wall ev/s)", "Completion (ms)"},
		Notes: []string{
			"hier-allreduce (intra-node mesh × inter-node binomial rail trees), 64MiB per rank",
			"wall and events/s are measured on this machine and vary run to run",
		},
	}
	for _, pt := range points {
		algo, err := expert.Build("hier-allreduce", pt.nodes, pt.gpn)
		if err != nil {
			return nil, fmt.Errorf("scale %d×%d: %w", pt.nodes, pt.gpn, err)
		}
		var tp *topo.Topology
		fabric := "clos"
		if pt.rail {
			fabric = "rail"
			tp = topo.NewRail(pt.nodes, pt.gpn, topo.A100(), pt.spines)
		} else {
			tp = topo.NewClos(pt.nodes, pt.gpn, topo.A100(), pt.spines)
		}
		plan, err := compile(opts, backend.NewResCCL(), backend.Request{Algo: algo, Topo: tp})
		if err != nil {
			return nil, fmt.Errorf("scale %d×%d: %w", pt.nodes, pt.gpn, err)
		}
		start := time.Now()
		res, err := runPlan(opts, tp, plan, buf, chunk)
		if err != nil {
			return nil, fmt.Errorf("scale %d×%d: %w", pt.nodes, pt.gpn, err)
		}
		wall := time.Since(start)
		t.AddRow(
			fmt.Sprintf("%d", tp.NRanks()),
			fmt.Sprintf("%d×%d", pt.nodes, pt.gpn),
			fmt.Sprintf("%s/%d", fabric, pt.spines),
			fmt.Sprintf("%d", len(algo.Transfers)),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%.1f", float64(wall.Microseconds())/1e3),
			fmt.Sprintf("%.0f", float64(res.Events)/wall.Seconds()),
			fmt.Sprintf("%.3f", res.Completion*1e3),
		)
	}
	return []*Table{t}, nil
}
