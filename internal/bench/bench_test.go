package bench

import (
	"strconv"
	"strings"
	"testing"
)

// Every experiment must run to completion in Quick mode and produce
// non-empty tables. The heavy ones are skipped under -short.
func TestAllExperimentsQuick(t *testing.T) {
	heavy := map[string]bool{
		"table1": true, "fig3": true, "fig6": true, "fig7": true,
		"fig8": true, "fig9": true, "fig11": true, "fig13": true,
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && heavy[e.ID] {
				t.Skip("heavy experiment skipped in -short mode")
			}
			tables, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Errorf("table %q: row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
				}
				var sb strings.Builder
				tab.Fprint(&sb)
				if !strings.Contains(sb.String(), tab.Title) {
					t.Error("Fprint must include the title")
				}
			}
		})
	}
}

func TestFindUnknown(t *testing.T) {
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment must fail")
	}
	e, err := Find("fig4")
	if err != nil || e.ID != "fig4" {
		t.Errorf("Find(fig4) = %v, %v", e.ID, err)
	}
}

// Fig. 4's qualitative shape: bandwidth rises to the 4-TB peak and is
// strictly lower at high TB counts than at the peak.
func TestFigure4Shape(t *testing.T) {
	tables, err := Figure4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	bw := map[int]float64{}
	for _, r := range rows {
		k, _ := strconv.Atoi(r[0])
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		bw[k] = v
	}
	if !(bw[1] < bw[2] && bw[2] < bw[4]) {
		t.Errorf("bandwidth should rise up to 4 TBs: %v", bw)
	}
	if !(bw[16] < bw[4]) {
		t.Errorf("bandwidth at 16 TBs (%f) should fall below the 4-TB peak (%f)", bw[16], bw[4])
	}
}

// Fig. 10(b): HPDS must beat round-robin on at least one algorithm and
// never lose by more than a rounding margin.
func TestFigure10bHPDSWins(t *testing.T) {
	tables, err := Figure10b(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	won := false
	for _, row := range tables[0].Rows {
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if sp > 1.02 {
			won = true
		}
		if sp < 0.95 {
			t.Errorf("%s: HPDS slower than RR (%.2fx)", row[0], sp)
		}
	}
	if !won {
		t.Error("HPDS should beat RR on at least one algorithm")
	}
}

func TestBufSweepQuick(t *testing.T) {
	full := []int64{8 << 20, 64 << 20, 512 << 20, 2 << 30, 4 << 30}
	q := bufSweep(Options{Quick: true}, full)
	if len(q) != 3 {
		t.Fatalf("quick sweep has %d points, want 3", len(q))
	}
	if q[len(q)-1] > 512<<20 {
		t.Errorf("quick sweep should cap at 512MB, got %d", q[len(q)-1])
	}
	if got := bufSweep(Options{}, full); len(got) != len(full) {
		t.Error("full sweep must be unchanged")
	}
}

func TestLabels(t *testing.T) {
	if mbLabel(4<<30) != "4GB" || mbLabel(64<<20) != "64MB" || mbLabel(256<<10) != "256KB" {
		t.Error("mbLabel formatting wrong")
	}
	if pct(0.318) != "31.8%" {
		t.Errorf("pct(0.318) = %s", pct(0.318))
	}
	if gb(25e9) != "25.0" {
		t.Errorf("gb(25e9) = %s", gb(25e9))
	}
}

func TestTableFormats(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"n"},
	}
	var csvOut, mdOut strings.Builder
	tab.FprintCSV(&csvOut)
	if !strings.Contains(csvOut.String(), "x,T,1,2") {
		t.Errorf("csv output wrong:\n%s", csvOut.String())
	}
	tab.FprintMarkdown(&mdOut)
	if !strings.Contains(mdOut.String(), "| 1 | 2 |") || !strings.Contains(mdOut.String(), "### x") {
		t.Errorf("markdown output wrong:\n%s", mdOut.String())
	}
}
