// Package sched implements the primitive-level execution scheduling of
// §4.3: the Hierarchical Priority-based Dynamic Scheduling (HPDS)
// strategy of Algorithm 1 and the baseline policies it is evaluated
// against (round-robin, Fig. 10(b), and a sequential chunk-major policy
// used for ablations).
//
// A schedule is a task pipeline: an ordered list of sub-pipelines, each a
// set of tasks that are mutually free of communication dependencies — no
// link holds more tasks than its saturation window (Fig. 4), so the
// aggregate thread-block capability never exceeds any link's bandwidth —
// and whose data dependencies are satisfied by earlier positions. Under
// task-level execution every scheduled task then iterates across all
// micro-batches (§3).
package sched

import (
	"container/heap"
	"fmt"

	"github.com/resccl/resccl/internal/analyze/invariant"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Policy selects a scheduling strategy.
type Policy int

// Scheduling policies.
const (
	// PolicyHPDS is the paper's hierarchical priority-based dynamic
	// scheduling (Algorithm 1).
	PolicyHPDS Policy = iota
	// PolicyRR is the round-robin baseline of §5.3: chunks are visited
	// in an immutable circular ascending-ID order.
	PolicyRR
	// PolicySequential schedules chunks one at a time to exhaustion
	// (chunk-major). It is the weakest policy and exists for ablations.
	PolicySequential
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyHPDS:
		return "HPDS"
	case PolicyRR:
		return "RR"
	case PolicySequential:
		return "Sequential"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// SubPipeline is one modular unit of execution (the P_c of Algorithm 1):
// tasks that can be in flight concurrently because no link is loaded
// beyond its saturation window. Order within Tasks is the insertion
// order, which respects data dependencies.
type SubPipeline struct {
	Index int
	Tasks []ir.TaskID
}

// Pipeline is the global task pipeline P_r: the concatenation of
// sub-pipelines covering every task exactly once.
type Pipeline struct {
	Graph  *dag.Graph
	Policy Policy
	Subs   []SubPipeline
	// TaskSub[t] is the index of the sub-pipeline containing task t;
	// TaskPos[t] is t's global scheduling position (dense, increasing in
	// schedule order). Both are indexed by TaskID.
	TaskSub []int
	TaskPos []int
}

// Schedule builds the task pipeline for g under the given policy.
func Schedule(g *dag.Graph, policy Policy) (*Pipeline, error) {
	switch policy {
	case PolicyHPDS, PolicyRR, PolicySequential:
	default:
		return nil, fmt.Errorf("sched: unknown policy %v", policy)
	}
	s := newScheduler(g, policy)
	p, err := s.run()
	if err != nil {
		return nil, err
	}
	if err := Validate(g, p); err != nil {
		return nil, fmt.Errorf("sched: %v produced an invalid pipeline: %w", policy, err)
	}
	return p, nil
}

// chunkState tracks one chunk's sub-DAG during scheduling.
type chunkState struct {
	chunk ir.ChunkID
	// ready holds tasks whose data dependencies are all scheduled.
	ready []ir.TaskID
	// remaining counts unscheduled tasks of this chunk.
	remaining int
	// priority orders the heap: larger is scheduled first. Seeded by
	// link-load (underutilized chunks first) and decremented every time
	// the chunk contributes to a sub-pipeline (Algorithm 1 line 20).
	priority int
	// flag is the F of Algorithm 1: false once the chunk cannot
	// contribute to the current sub-pipeline.
	flag bool
	// heapIdx is the chunk's position in the priority heap, -1 when out.
	heapIdx int
}

type scheduler struct {
	g      *dag.Graph
	policy Policy

	chunks []*chunkState
	// indeg is the remaining data-dependency count per task.
	indeg []int

	// usedLinks counts tasks of the current sub-pipeline per link; a
	// link may hold up to its window (Fig. 4 saturation point) before
	// further tasks become communication-dependent.
	usedLinks map[topo.LinkID]int

	pq chunkHeap
	// rrNext is the circular cursor for PolicyRR.
	rrNext int
}

func newScheduler(g *dag.Graph, policy Policy) *scheduler {
	s := &scheduler{
		g:         g,
		policy:    policy,
		indeg:     g.InDegrees(),
		usedLinks: make(map[topo.LinkID]int),
	}
	nChunks := g.Algo.NChunks
	s.chunks = make([]*chunkState, nChunks)
	for c := 0; c < nChunks; c++ {
		cs := &chunkState{chunk: ir.ChunkID(c), heapIdx: -1, flag: true}
		cs.remaining = len(g.ChunkTasks[c])
		// Seed priority: chunks whose tasks touch lightly loaded links
		// (lower execution frequency) get higher priority so they are
		// interleaved early, spreading load across links (§4.3).
		load := 0
		for _, t := range g.ChunkTasks[c] {
			for _, l := range g.Links[t] {
				load += len(g.LinkTasks[l])
			}
		}
		cs.priority = -load
		s.chunks[c] = cs
	}
	for t := range s.indeg {
		if s.indeg[t] == 0 {
			c := g.Tasks[t].Chunk
			s.chunks[c].ready = append(s.chunks[c].ready, ir.TaskID(t))
		}
	}
	return s
}

func (s *scheduler) run() (*Pipeline, error) {
	g := s.g
	p := &Pipeline{
		Graph:   g,
		Policy:  s.policy,
		TaskSub: make([]int, len(g.Tasks)),
		TaskPos: make([]int, len(g.Tasks)),
	}
	for i := range p.TaskSub {
		p.TaskSub[i] = -1
		p.TaskPos[i] = -1
	}
	scheduled := 0
	pos := 0
	total := len(g.Tasks)

	for scheduled < total {
		sub := SubPipeline{Index: len(p.Subs)}
		clear(s.usedLinks)
		s.beginRound()

		progressed := false
		for {
			cs := s.nextChunk()
			if cs == nil {
				break // all flags false: sub-pipeline complete
			}
			nodeList := s.extractEligible(cs)
			if len(nodeList) == 0 {
				cs.flag = false // cannot contribute to this sub-pipeline
				continue
			}
			progressed = true
			for _, t := range nodeList {
				sub.Tasks = append(sub.Tasks, t)
				p.TaskSub[t] = sub.Index
				p.TaskPos[t] = pos
				pos++
				s.complete(t)
			}
			cs.remaining -= len(nodeList)
			scheduled += len(nodeList)
			cs.priority-- // Algorithm 1 line 20
			if cs.remaining > 0 {
				s.requeue(cs)
			}
		}
		if !progressed {
			return nil, fmt.Errorf(
				"sched: %v deadlocked with %d of %d tasks scheduled (dependency cycle or unsatisfiable link constraint)",
				s.policy, scheduled, total)
		}
		p.Subs = append(p.Subs, sub)
	}
	return p, nil
}

// beginRound resets chunk flags and (re)fills the selection structure for
// a new sub-pipeline.
func (s *scheduler) beginRound() {
	s.pq = s.pq[:0]
	for _, cs := range s.chunks {
		cs.flag = cs.remaining > 0
		cs.heapIdx = -1
		if cs.flag && s.policy == PolicyHPDS {
			heap.Push(&s.pq, cs)
		}
	}
}

// nextChunk returns the next flagged chunk to try under the active
// policy, or nil when no flagged chunk remains.
func (s *scheduler) nextChunk() *chunkState {
	switch s.policy {
	case PolicyHPDS:
		if s.pq.Len() == 0 {
			return nil
		}
		return heap.Pop(&s.pq).(*chunkState)
	case PolicyRR:
		n := len(s.chunks)
		for i := 0; i < n; i++ {
			cs := s.chunks[(s.rrNext+i)%n]
			if cs.flag {
				s.rrNext = (int(cs.chunk) + 1) % n
				return cs
			}
		}
		return nil
	case PolicySequential:
		for _, cs := range s.chunks {
			if cs.flag {
				return cs
			}
		}
		return nil
	}
	return nil
}

// requeue puts a chunk back into the selection structure after it
// contributed tasks (its flag stays true so it may contribute again to
// the same sub-pipeline once dependencies inside it are released).
func (s *scheduler) requeue(cs *chunkState) {
	if s.policy == PolicyHPDS && cs.flag {
		heap.Push(&s.pq, cs)
	}
}

// extractEligible collects the chunk's ready tasks that also satisfy all
// communication dependencies against the current sub-pipeline (lines
// 11–15 of Algorithm 1). Ineligible tasks remain in the ready list.
func (s *scheduler) extractEligible(cs *chunkState) []ir.TaskID {
	var eligible []ir.TaskID
	kept := cs.ready[:0]
	for _, t := range cs.ready {
		if s.linksHaveRoom(t) {
			eligible = append(eligible, t)
			// The task occupies its link slots immediately so that a
			// second ready task of the same chunk on the same link is
			// held back once the window fills.
			for _, l := range s.g.Links[t] {
				s.usedLinks[l]++
			}
		} else {
			kept = append(kept, t)
		}
	}
	cs.ready = kept
	return eligible
}

// linksHaveRoom reports whether every link of t still has a free slot in
// its saturation window for the current sub-pipeline.
func (s *scheduler) linksHaveRoom(t ir.TaskID) bool {
	for _, l := range s.g.Links[t] {
		if s.usedLinks[l] >= s.g.LinkWindows[l] {
			return false
		}
	}
	return true
}

// complete marks a task scheduled and releases its dependents.
func (s *scheduler) complete(t ir.TaskID) {
	for _, dep := range s.g.Dependents[t] {
		s.indeg[dep]--
		if s.indeg[dep] == 0 {
			c := s.g.Tasks[dep].Chunk
			s.chunks[c].ready = append(s.chunks[c].ready, dep)
		}
	}
}

// chunkHeap is a max-heap over (priority, then ascending chunk ID for
// determinism).
type chunkHeap []*chunkState

func (h chunkHeap) Len() int { return len(h) }
func (h chunkHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].chunk < h[j].chunk
}
func (h chunkHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *chunkHeap) Push(x any) {
	cs := x.(*chunkState)
	cs.heapIdx = len(*h)
	*h = append(*h, cs)
}
func (h *chunkHeap) Pop() any {
	old := *h
	n := len(old)
	cs := old[n-1]
	old[n-1] = nil
	cs.heapIdx = -1
	*h = old[:n-1]
	return cs
}

// Validate checks pipeline invariants: every task appears exactly once;
// no two tasks in one sub-pipeline share a communication link; every
// data dependency is scheduled at an earlier global position.
//
// It is a thin wrapper over invariant.CheckPipeline, the single source
// of truth shared with the static plan analyzer (internal/analyze), so
// scheduler self-validation and plan linting cannot drift apart.
func Validate(g *dag.Graph, p *Pipeline) error {
	return invariant.Err(invariant.CheckPipeline(g, p.SubTasks(), p.TaskPos))
}

// SubTasks returns the per-sub-pipeline task partition in schedule
// order — the raw form the invariant checker consumes.
func (p *Pipeline) SubTasks() [][]ir.TaskID {
	out := make([][]ir.TaskID, len(p.Subs))
	for i, sub := range p.Subs {
		out[i] = sub.Tasks
	}
	return out
}

// NSubs returns the number of sub-pipelines.
func (p *Pipeline) NSubs() int { return len(p.Subs) }

// OrderedTasks returns all tasks in global scheduling order. TaskPos is
// a permutation of 0..n-1, so the order is materialized with a single
// O(n) inverse fill instead of a sort.
func (p *Pipeline) OrderedTasks() []ir.TaskID {
	out := make([]ir.TaskID, len(p.TaskPos))
	for t, pos := range p.TaskPos {
		out[pos] = ir.TaskID(t)
	}
	return out
}
