package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

func buildGraph(t *testing.T, algo *ir.Algorithm, nNodes, gpn int) *dag.Graph {
	t.Helper()
	g, err := dag.Build(algo, topo.New(nNodes, gpn, topo.A100()))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allAlgos(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	add := func(name string, a *ir.Algorithm, err error, nNodes, gpn int) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = buildGraph(t, a, nNodes, gpn)
	}
	a1, e1 := expert.RingAllGather(8)
	add("ring-ag", a1, e1, 1, 8)
	a2, e2 := expert.HMAllReduce(2, 4)
	add("hm-ar", a2, e2, 2, 4)
	a3, e3 := expert.HMAllGather(2, 8)
	add("hm-ag", a3, e3, 2, 8)
	a4, e4 := synth.TACCLAllGather(2, 4)
	add("taccl-ag", a4, e4, 2, 4)
	a5, e5 := synth.TECCLAllReduce(4, 4)
	add("teccl-ar", a5, e5, 4, 4)
	a6, e6 := expert.TreeAllReduce(8)
	add("tree-ar", a6, e6, 1, 8)
	return out
}

// Every policy must produce a valid pipeline (each task once, link
// disjointness within sub-pipelines, deps before dependents) on every
// algorithm family.
func TestAllPoliciesValid(t *testing.T) {
	graphs := allAlgos(t)
	for name, g := range graphs {
		for _, pol := range []Policy{PolicyHPDS, PolicyRR, PolicySequential} {
			p, err := Schedule(g, pol)
			if err != nil {
				t.Errorf("%s/%v: %v", name, pol, err)
				continue
			}
			if err := Validate(g, p); err != nil {
				t.Errorf("%s/%v: %v", name, pol, err)
			}
		}
	}
}

// HPDS must produce at most as many sub-pipelines as the sequential
// chunk-major policy (it interleaves chunks, never worse than draining
// one chunk at a time).
func TestHPDSNotWorseThanSequential(t *testing.T) {
	for name, g := range allAlgos(t) {
		hp, err := Schedule(g, PolicyHPDS)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seq, err := Schedule(g, PolicySequential)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hp.NSubs() > seq.NSubs() {
			t.Errorf("%s: HPDS %d sub-pipelines > sequential %d", name, hp.NSubs(), seq.NSubs())
		}
	}
}

// For ring AllGather on one node, every pair link carries n−1 tasks and
// may hold `window` of them concurrently, so HPDS needs exactly
// ⌈(n−1)/window⌉ sub-pipelines.
func TestHPDSRingSubPipelineCount(t *testing.T) {
	a, err := expert.RingAllGather(8)
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, a, 1, 8)
	window := 0
	for _, w := range g.LinkWindows {
		window = w
		break
	}
	if window < 1 {
		t.Fatalf("bad link window %d", window)
	}
	p, err := Schedule(g, PolicyHPDS)
	if err != nil {
		t.Fatal(err)
	}
	want := (7 + window - 1) / window
	if p.NSubs() != want {
		t.Errorf("ring-8 HPDS sub-pipelines = %d, want %d (window %d)", p.NSubs(), want, window)
	}
}

func TestOrderedTasksIsPermutation(t *testing.T) {
	g := allAlgos(t)["hm-ar"]
	p, err := Schedule(g, PolicyHPDS)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NTasks())
	for _, id := range p.OrderedTasks() {
		if seen[id] {
			t.Fatalf("task %d appears twice", id)
		}
		seen[id] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("task %d missing", i)
		}
	}
}

// Property: random ring sizes and topology splits always schedule
// validly under HPDS, and the schedule is deterministic.
func TestPropertyHPDSValidDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 1 + rng.Intn(3)
		gpn := 2 + rng.Intn(4)
		if nNodes == 1 && gpn < 2 {
			return true
		}
		var a *ir.Algorithm
		var err error
		if nNodes > 1 {
			a, err = expert.HMAllGather(nNodes, gpn)
		} else {
			a, err = expert.RingAllReduce(gpn)
		}
		if err != nil {
			return false
		}
		g, err := dag.Build(a, topo.New(nNodes, gpn, topo.A100()))
		if err != nil {
			return false
		}
		p1, err := Schedule(g, PolicyHPDS)
		if err != nil {
			return false
		}
		p2, err := Schedule(g, PolicyHPDS)
		if err != nil {
			return false
		}
		if p1.NSubs() != p2.NSubs() {
			return false
		}
		for i := range p1.TaskPos {
			if p1.TaskPos[i] != p2.TaskPos[i] {
				return false
			}
		}
		return Validate(g, p1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	g := allAlgos(t)["ring-ag"]
	if _, err := Schedule(g, Policy(99)); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

// HPDS's priority mechanism (Algorithm 1): chunks whose tasks sit on
// lightly loaded links get scheduled ahead of chunks on a hot link. We
// build a plan where chunk 0 rides a congested link (many tasks) and
// chunk 1 rides an idle one; chunk 1's task must land in the first
// sub-pipeline even though chunk 0 has lower ID.
func TestHPDSPrefersUnderutilizedChunks(t *testing.T) {
	a := &ir.Algorithm{
		Name: "hotcold", Op: ir.OpAllReduce, NRanks: 4, NChunks: 4,
	}
	// Hot link 0→1: three sequential tasks of chunk 0 plus chunks 2,3.
	a.Transfers = append(a.Transfers,
		ir.Transfer{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
		ir.Transfer{Src: 0, Dst: 1, Step: 1, Chunk: 2, Type: ir.CommRecvReduceCopy},
		ir.Transfer{Src: 0, Dst: 1, Step: 2, Chunk: 3, Type: ir.CommRecvReduceCopy},
		// Cold link 2→3: single task of chunk 1.
		ir.Transfer{Src: 2, Dst: 3, Step: 0, Chunk: 1, Type: ir.CommRecvReduceCopy},
	)
	g, err := dag.Build(a, topo.New(1, 4, topo.A100()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(g, PolicyHPDS)
	if err != nil {
		t.Fatal(err)
	}
	// Find chunk 1's task and assert it is in sub-pipeline 0.
	for i, task := range g.Tasks {
		if task.Chunk == 1 {
			if p.TaskSub[i] != 0 {
				t.Errorf("cold-link chunk 1 scheduled in sub %d, want 0", p.TaskSub[i])
			}
			// And it should be scheduled before the hot chunks at equal
			// readiness (highest priority = lowest link load).
			if p.TaskPos[i] != 0 {
				t.Errorf("cold-link chunk scheduled at position %d, want 0", p.TaskPos[i])
			}
		}
	}
}
