package ir

import "fmt"

// Protocol names an NCCL-style transport protocol tier. Real NCCL picks
// between three wire protocols per message size: LL (low latency) sends
// 8-byte data+flag words so the receiver can poll without a separate
// synchronization round trip, at the cost of half the wire bandwidth;
// LL128 amortizes the flag over 128-byte lines (120/128 of the wire
// bandwidth) while keeping most of the latency win; Simple uses full
// bandwidth but pays the full handshake latency per chunk. The tier is
// plan metadata: compilation is protocol-independent, and the simulator
// applies the tier's cost-model parameters (sim.Params) at run time.
type Protocol int

// Protocol tiers. ProtoAuto is the zero value so existing plans and
// requests that never mention protocols keep their behaviour: auto
// resolves to the backend's size-based choice where a buffer size is
// known, and simulates exactly like ProtoSimple otherwise.
const (
	ProtoAuto Protocol = iota
	ProtoLL
	ProtoLL128
	ProtoSimple
)

// String returns the NCCL spelling of the protocol tier.
func (p Protocol) String() string {
	switch p {
	case ProtoAuto:
		return "auto"
	case ProtoLL:
		return "LL"
	case ProtoLL128:
		return "LL128"
	case ProtoSimple:
		return "Simple"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Valid reports whether p is one of the defined tiers (including auto).
func (p Protocol) Valid() bool { return p >= ProtoAuto && p <= ProtoSimple }

// Forced reports whether p names a concrete tier rather than auto.
func (p Protocol) Forced() bool { return p != ProtoAuto && p.Valid() }

// ParseProtocol converts a protocol name ("auto", "ll", "ll128",
// "simple", case-insensitive on the NCCL spellings) to its Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "auto", "Auto":
		return ProtoAuto, nil
	case "ll", "LL":
		return ProtoLL, nil
	case "ll128", "LL128":
		return ProtoLL128, nil
	case "simple", "Simple":
		return ProtoSimple, nil
	}
	return 0, fmt.Errorf("ir: unknown protocol %q (want auto, ll, ll128 or simple)", s)
}
