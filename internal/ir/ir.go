// Package ir defines the intermediate representation shared by every stage
// of the ResCCL compiler pipeline: transfers (the unit emitted by
// ResCCLang and by algorithm builders), tasks (transfers annotated with
// identity and link placement), and primitives (the unit executed by a
// thread block at runtime).
//
// The model follows §3 and §4.2 of the paper. A collective communication
// algorithm is a set of transmission tasks under a topology; each task
// moves one chunk between two ranks at a logical step. Data dependencies
// order tasks that touch the same chunk; communication dependencies
// relate tasks that share a link.
package ir

import (
	"fmt"
	"sort"
)

// Rank identifies a GPU in the communicator, 0-based and dense.
type Rank int

// ChunkID indexes a transmission unit within each rank's DataBuffer.
// ResCCLang partitions every buffer into nChunks chunks so that each
// ⟨Rank, ChunkID⟩ pair names one chunk in the global memory space.
type ChunkID int

// Step is the discrete logical time index of ResCCLang: all actions at a
// smaller step happen before actions at a larger step for the same chunk.
type Step int

// OpType names the collective operator an algorithm implements.
type OpType int

// Collective operator types supported by ResCCLang's OpType parameter.
const (
	OpAllGather OpType = iota
	OpAllReduce
	OpReduceScatter
	OpBroadcast
	// OpAllToAll is the personalized exchange (MoE dispatch): with
	// nChunks = nRanks², chunk s·nRanks+d moves from rank s to rank d.
	OpAllToAll
)

// String returns the ResCCLang spelling of the operator.
func (o OpType) String() string {
	switch o {
	case OpAllGather:
		return "Allgather"
	case OpAllReduce:
		return "Allreduce"
	case OpReduceScatter:
		return "Reducescatter"
	case OpBroadcast:
		return "Broadcast"
	case OpAllToAll:
		return "Alltoall"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// ParseOpType converts a ResCCLang operator name to its OpType.
func ParseOpType(s string) (OpType, error) {
	switch s {
	case "Allgather", "AllGather":
		return OpAllGather, nil
	case "Allreduce", "AllReduce":
		return OpAllReduce, nil
	case "Reducescatter", "ReduceScatter":
		return OpReduceScatter, nil
	case "Broadcast":
		return OpBroadcast, nil
	case "Alltoall", "AllToAll":
		return OpAllToAll, nil
	}
	return 0, fmt.Errorf("ir: unknown operator type %q", s)
}

// CommType is the receive-side behaviour of a transfer: plain copy (recv)
// or reduce-accumulate (rrc, recvReduceCopy).
type CommType int

// Communication types of ResCCLang's transfer(..., commType) argument.
const (
	// CommRecv copies the incoming chunk into the destination buffer.
	CommRecv CommType = iota
	// CommRecvReduceCopy reduces the incoming chunk into the destination
	// buffer (element-wise sum), the "rrc" of ResCCLang.
	CommRecvReduceCopy
)

// String returns the ResCCLang spelling of the communication type.
func (c CommType) String() string {
	switch c {
	case CommRecv:
		return "recv"
	case CommRecvReduceCopy:
		return "rrc"
	default:
		return fmt.Sprintf("CommType(%d)", int(c))
	}
}

// ParseCommType converts a ResCCLang comm-type name to its CommType.
func ParseCommType(s string) (CommType, error) {
	switch s {
	case "recv":
		return CommRecv, nil
	case "rrc", "recvReduceCopy":
		return CommRecvReduceCopy, nil
	}
	return 0, fmt.Errorf("ir: unknown comm type %q", s)
}

// Transfer is the unit of algorithm logic: move chunk Chunk from Src to
// Dst at logical step Step; the receiver applies Type. It is exactly the
// Transfer(srcRank, dstRank, step, chunkId, opType) tuple of ResCCLang.
type Transfer struct {
	Src   Rank
	Dst   Rank
	Step  Step
	Chunk ChunkID
	Type  CommType
}

// String formats the transfer as ResCCLang would write it.
func (t Transfer) String() string {
	return fmt.Sprintf("transfer(%d, %d, %d, %d, %s)", t.Src, t.Dst, t.Step, t.Chunk, t.Type)
}

// Validate reports whether the transfer is well formed for a communicator
// of nRanks ranks with nChunks chunks per rank.
func (t Transfer) Validate(nRanks, nChunks int) error {
	if t.Src < 0 || int(t.Src) >= nRanks {
		return fmt.Errorf("ir: transfer %v: src rank out of range [0,%d)", t, nRanks)
	}
	if t.Dst < 0 || int(t.Dst) >= nRanks {
		return fmt.Errorf("ir: transfer %v: dst rank out of range [0,%d)", t, nRanks)
	}
	if t.Src == t.Dst {
		return fmt.Errorf("ir: transfer %v: src == dst", t)
	}
	if t.Step < 0 {
		return fmt.Errorf("ir: transfer %v: negative step", t)
	}
	if t.Chunk < 0 || int(t.Chunk) >= nChunks {
		return fmt.Errorf("ir: transfer %v: chunk out of range [0,%d)", t, nChunks)
	}
	return nil
}

// Algorithm is a complete collective communication algorithm: the data
// transfer plan between GPUs for one micro-batch, independent of any
// execution policy. It is what ResCCLang programs and the expert/synth
// builders produce and what the backend compiles.
type Algorithm struct {
	// Name labels the algorithm (e.g. "HM", "Ring", "TACCL-AG").
	Name string
	// Op is the collective operator the plan implements.
	Op OpType
	// NRanks is the number of participating GPUs.
	NRanks int
	// NChunks is the number of chunks each rank's buffer is divided into.
	// ResCCLang fixes NChunks == NRanks, but synthesized plans may use a
	// multiple of it.
	NChunks int
	// NChannels and NWarps mirror the ResCCLang header parameters. They
	// are tuning hints for baseline backends (ResCCL itself derives TB
	// counts from the schedule).
	NChannels int
	NWarps    int
	// Transfers is the unordered set of transmission tasks. Order within
	// the slice is not semantically meaningful; Step carries ordering.
	Transfers []Transfer
	// StageBounds optionally marks expert-annotated stage boundaries for
	// stage-level backends (§2.1): StageBounds[k] is the first step of
	// stage k (StageBounds[0] must be 0). Nil means a single stage.
	StageBounds []Step
	// Group, when non-nil, marks the algorithm as a process-group
	// collective embedded into a larger communicator (see Embed): only
	// the listed global ranks participate, and correctness is judged
	// against the group's view.
	Group []Rank
	// Initial, when non-nil, overrides the operator's default
	// precondition: Initial[rank][chunk] reports whether that buffer
	// location holds valid data before the algorithm starts. Repair
	// plans produced by replanning use it — they begin from whatever a
	// partially executed collective already delivered, not from the
	// operator's pristine precondition.
	Initial [][]bool
}

// StageOf returns the stage index containing the given step (0 when the
// algorithm has no stage annotations).
func (a *Algorithm) StageOf(s Step) int {
	stage := 0
	for k := 1; k < len(a.StageBounds); k++ {
		if s >= a.StageBounds[k] {
			stage = k
		}
	}
	return stage
}

// NStages returns the number of annotated stages (minimum 1).
func (a *Algorithm) NStages() int {
	if len(a.StageBounds) == 0 {
		return 1
	}
	return len(a.StageBounds)
}

// Validate checks structural well-formedness of the algorithm: parameter
// ranges, transfer ranges, and that no two transfers are identical in
// (src, dst, step, chunk) — such duplicates would alias one task.
func (a *Algorithm) Validate() error {
	if a.NRanks < 2 {
		return fmt.Errorf("ir: algorithm %q: need at least 2 ranks, have %d", a.Name, a.NRanks)
	}
	if a.NChunks < 1 {
		return fmt.Errorf("ir: algorithm %q: need at least 1 chunk, have %d", a.Name, a.NChunks)
	}
	if len(a.Transfers) == 0 {
		return fmt.Errorf("ir: algorithm %q: no transfers", a.Name)
	}
	if a.Initial != nil {
		if len(a.Initial) != a.NRanks {
			return fmt.Errorf("ir: algorithm %q: Initial has %d rank rows, want %d", a.Name, len(a.Initial), a.NRanks)
		}
		for r, row := range a.Initial {
			if len(row) != a.NChunks {
				return fmt.Errorf("ir: algorithm %q: Initial[%d] has %d chunks, want %d", a.Name, r, len(row), a.NChunks)
			}
		}
	}
	seen := make(map[Transfer]struct{}, len(a.Transfers))
	for _, t := range a.Transfers {
		if err := t.Validate(a.NRanks, a.NChunks); err != nil {
			return fmt.Errorf("ir: algorithm %q: %w", a.Name, err)
		}
		key := t
		key.Type = CommRecv // identity excludes comm type
		if _, dup := seen[key]; dup {
			return fmt.Errorf("ir: algorithm %q: duplicate transfer %v", a.Name, t)
		}
		seen[key] = struct{}{}
	}
	return nil
}

// MaxStep returns the largest step index used by the algorithm, or -1 if
// it has no transfers.
func (a *Algorithm) MaxStep() Step {
	maxStep := Step(-1)
	for _, t := range a.Transfers {
		if t.Step > maxStep {
			maxStep = t.Step
		}
	}
	return maxStep
}

// Sorted returns the transfers ordered by (step, chunk, src, dst). The
// receiver is not modified. Deterministic ordering is load-bearing for
// reproducible schedules and golden tests.
func (a *Algorithm) Sorted() []Transfer {
	out := make([]Transfer, len(a.Transfers))
	copy(out, a.Transfers)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		if out[i].Chunk != out[j].Chunk {
			return out[i].Chunk < out[j].Chunk
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// TaskID identifies one transmission task inside a compiled plan. Task IDs
// are dense indices assigned by the dependency analysis in deterministic
// (step, chunk, src, dst) order.
type TaskID int

// Task is a transfer annotated with its identity. The scheduler operates
// on tasks; the runtime expands each task into a send/recv (or send/rrc)
// primitive pair executed across all micro-batches (§4.3,
// task-to-primitive translation).
type Task struct {
	ID TaskID
	Transfer
}

// PrimKind is the kind of a runtime communication primitive.
type PrimKind int

// Primitive kinds, mirroring the NCCL-style primitive vocabulary the
// paper uses (send, recv, recvReduceCopy).
const (
	PrimSend PrimKind = iota
	PrimRecv
	PrimRecvReduceCopy
)

// String returns the runtime name of the primitive kind.
func (k PrimKind) String() string {
	switch k {
	case PrimSend:
		return "send"
	case PrimRecv:
		return "recv"
	case PrimRecvReduceCopy:
		return "recvReduceCopy"
	default:
		return fmt.Sprintf("PrimKind(%d)", int(k))
	}
}

// Primitive is the unit actually executed by a thread block at runtime:
// one side of a task's chunk movement. Task-to-primitive translation maps
// every task to exactly one send primitive (on the source rank) and one
// recv or recvReduceCopy primitive (on the destination rank).
type Primitive struct {
	Task Task
	Kind PrimKind
	// Rank is the GPU that executes this primitive: Task.Src for sends,
	// Task.Dst for receives.
	Rank Rank
	// Peer is the remote GPU of the transfer.
	Peer Rank
}

// Primitives expands a task into its send and receive primitives.
func (t Task) Primitives() (send, recv Primitive) {
	send = Primitive{Task: t, Kind: PrimSend, Rank: t.Src, Peer: t.Dst}
	rk := PrimRecv
	if t.Type == CommRecvReduceCopy {
		rk = PrimRecvReduceCopy
	}
	recv = Primitive{Task: t, Kind: rk, Rank: t.Dst, Peer: t.Src}
	return send, recv
}

// String formats the primitive for traces and debugging.
func (p Primitive) String() string {
	return fmt.Sprintf("%s[task=%d rank=%d peer=%d chunk=%d step=%d]",
		p.Kind, p.Task.ID, p.Rank, p.Peer, p.Task.Chunk, p.Task.Step)
}

// Embed remaps an algorithm written for a sub-communicator onto a larger
// cluster: ranks[i] is the global rank playing the algorithm's rank i.
// The result has NRanks = fullRanks and is suitable for process-group
// collectives (tensor/data-parallel groups) simulated on the full
// topology. Chunk ownership conventions are defined relative to the
// group, so data-plane verification applies to the group view only; the
// embedding is primarily for AllReduce-style operators whose
// preconditions are rank-independent.
func Embed(a *Algorithm, ranks []Rank, fullRanks int) (*Algorithm, error) {
	if len(ranks) != a.NRanks {
		return nil, fmt.Errorf("ir: embed: %d ranks provided for a %d-rank algorithm", len(ranks), a.NRanks)
	}
	seen := make(map[Rank]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || int(r) >= fullRanks {
			return nil, fmt.Errorf("ir: embed: rank %d outside [0,%d)", r, fullRanks)
		}
		if seen[r] {
			return nil, fmt.Errorf("ir: embed: duplicate rank %d", r)
		}
		seen[r] = true
	}
	out := &Algorithm{
		Name:        a.Name + "@group",
		Op:          a.Op,
		NRanks:      fullRanks,
		NChunks:     a.NChunks,
		NChannels:   a.NChannels,
		NWarps:      a.NWarps,
		StageBounds: append([]Step(nil), a.StageBounds...),
		Group:       append([]Rank(nil), ranks...),
	}
	for _, t := range a.Transfers {
		out.Transfers = append(out.Transfers, Transfer{
			Src: ranks[t.Src], Dst: ranks[t.Dst], Step: t.Step, Chunk: t.Chunk, Type: t.Type,
		})
	}
	return out, out.Validate()
}
