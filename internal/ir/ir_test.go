package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpTypeRoundTrip(t *testing.T) {
	for _, op := range []OpType{OpAllGather, OpAllReduce, OpReduceScatter, OpBroadcast, OpAllToAll} {
		got, err := ParseOpType(op.String())
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got != op {
			t.Errorf("round trip %v → %v", op, got)
		}
	}
	if _, err := ParseOpType("Gossip"); err == nil {
		t.Error("expected error for unknown op")
	}
}

func TestCommTypeRoundTrip(t *testing.T) {
	for _, ct := range []CommType{CommRecv, CommRecvReduceCopy} {
		got, err := ParseCommType(ct.String())
		if err != nil {
			t.Fatalf("%v: %v", ct, err)
		}
		if got != ct {
			t.Errorf("round trip %v → %v", ct, got)
		}
	}
	if _, err := ParseCommType("sendrecv"); err == nil {
		t.Error("expected error for unknown comm type")
	}
}

func TestTransferValidate(t *testing.T) {
	ok := Transfer{Src: 0, Dst: 1, Step: 0, Chunk: 0}
	if err := ok.Validate(2, 2); err != nil {
		t.Errorf("valid transfer rejected: %v", err)
	}
	cases := []Transfer{
		{Src: -1, Dst: 1, Step: 0, Chunk: 0},
		{Src: 0, Dst: 2, Step: 0, Chunk: 0},
		{Src: 0, Dst: 0, Step: 0, Chunk: 0},
		{Src: 0, Dst: 1, Step: -1, Chunk: 0},
		{Src: 0, Dst: 1, Step: 0, Chunk: 5},
	}
	for i, tr := range cases {
		if err := tr.Validate(2, 2); err == nil {
			t.Errorf("case %d: invalid transfer %v accepted", i, tr)
		}
	}
}

func TestAlgorithmValidateDuplicates(t *testing.T) {
	a := &Algorithm{
		Name: "dup", Op: OpAllGather, NRanks: 2, NChunks: 2,
		Transfers: []Transfer{
			{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: CommRecv},
			{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: CommRecvReduceCopy},
		},
	}
	if err := a.Validate(); err == nil {
		t.Error("duplicate (src,dst,step,chunk) should be rejected")
	}
}

func TestAlgorithmValidateEmpty(t *testing.T) {
	a := &Algorithm{Name: "empty", Op: OpAllGather, NRanks: 2, NChunks: 2}
	if err := a.Validate(); err == nil {
		t.Error("empty algorithm should be rejected")
	}
	a = &Algorithm{Name: "tiny", Op: OpAllGather, NRanks: 1, NChunks: 1,
		Transfers: []Transfer{{Src: 0, Dst: 1}}}
	if err := a.Validate(); err == nil {
		t.Error("single-rank algorithm should be rejected")
	}
}

func TestSortedDeterministic(t *testing.T) {
	a := &Algorithm{
		Name: "s", Op: OpAllGather, NRanks: 4, NChunks: 4,
		Transfers: []Transfer{
			{Src: 2, Dst: 3, Step: 1, Chunk: 1},
			{Src: 0, Dst: 1, Step: 0, Chunk: 0},
			{Src: 1, Dst: 2, Step: 0, Chunk: 1},
			{Src: 0, Dst: 2, Step: 0, Chunk: 1},
		},
	}
	s := a.Sorted()
	for i := 1; i < len(s); i++ {
		a, b := s[i-1], s[i]
		if a.Step > b.Step || (a.Step == b.Step && a.Chunk > b.Chunk) {
			t.Fatalf("not sorted at %d: %v then %v", i, a, b)
		}
	}
	if len(a.Transfers) != 4 {
		t.Fatal("Sorted must not mutate the receiver")
	}
}

func TestStageOf(t *testing.T) {
	a := &Algorithm{StageBounds: []Step{0, 5, 9}}
	cases := map[Step]int{0: 0, 4: 0, 5: 1, 8: 1, 9: 2, 100: 2}
	for step, want := range cases {
		if got := a.StageOf(step); got != want {
			t.Errorf("StageOf(%d) = %d, want %d", step, got, want)
		}
	}
	if a.NStages() != 3 {
		t.Errorf("NStages = %d, want 3", a.NStages())
	}
	b := &Algorithm{}
	if b.NStages() != 1 || b.StageOf(7) != 0 {
		t.Error("unstaged algorithm must report a single stage")
	}
}

func TestPrimitives(t *testing.T) {
	task := Task{ID: 7, Transfer: Transfer{Src: 1, Dst: 2, Step: 3, Chunk: 4, Type: CommRecvReduceCopy}}
	send, recv := task.Primitives()
	if send.Kind != PrimSend || send.Rank != 1 || send.Peer != 2 {
		t.Errorf("bad send primitive %+v", send)
	}
	if recv.Kind != PrimRecvReduceCopy || recv.Rank != 2 || recv.Peer != 1 {
		t.Errorf("bad recv primitive %+v", recv)
	}
	plain := Task{ID: 8, Transfer: Transfer{Src: 0, Dst: 1, Type: CommRecv}}
	_, r2 := plain.Primitives()
	if r2.Kind != PrimRecv {
		t.Errorf("recv kind %v, want PrimRecv", r2.Kind)
	}
	if !strings.Contains(send.String(), "send") {
		t.Errorf("primitive string %q lacks kind", send.String())
	}
}

// Property: MaxStep is the max of all steps.
func TestPropertyMaxStep(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) == 0 {
			return true
		}
		a := &Algorithm{Name: "p", Op: OpAllReduce, NRanks: 2, NChunks: 2}
		want := Step(-1)
		for i, s := range steps {
			if i >= 64 {
				break
			}
			st := Step(s)
			a.Transfers = append(a.Transfers, Transfer{Src: 0, Dst: 1, Step: st, Chunk: ChunkID(i % 2)})
			if st > want {
				want = st
			}
		}
		return a.MaxStep() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
