// Package obs is the structured observability layer: spans for compile
// and execution stages, a counters/gauges registry, and simulated
// execution timelines exportable as Chrome trace-event JSON (loadable in
// chrome://tracing or https://ui.perfetto.dev).
//
// The package depends only on the standard library and carries no
// references into the rest of the system: producers (the public Run API,
// the experiment harness, the training simulator) convert their native
// results into obs values. All collector methods are safe for concurrent
// use and tolerate a nil receiver, so instrumentation call sites need no
// nil guards — a nil *Trace or *Metrics simply disables recording.
package obs

import (
	"sync"
	"time"
)

// Attr is one span attribute. Attributes are ordered key/value pairs so
// exports are deterministic.
type Attr struct {
	Key, Value string
}

// Span is one completed operation: a compile stage, a simulation, a
// runtime execution. Spans are measured in host wall time, so two runs
// of the same workload produce equal span *structure* but different
// durations.
type Span struct {
	// Name identifies the operation ("compile/HM-AllReduce", "sim/run").
	Name string
	// Cat groups spans for trace viewers ("compile", "sim", "rt").
	Cat string
	// Start is when the operation began.
	Start time.Time
	// Duration is how long it took.
	Duration time.Duration
	// Attrs holds optional key/value detail.
	Attrs []Attr
}

// Stage is a pre-measured pipeline stage: a name and how long it took.
// Compile pipelines report their phase breakdown as stages, which
// Trace.AddStages converts into contiguous child spans.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Trace collects spans and simulated timelines from instrumented runs.
// Attach one to a Communicator (resccl.WithTraceSink) or to a single
// call, then export with WriteChrome.
type Trace struct {
	mu        sync.Mutex
	now       func() time.Time
	spans     []Span
	timelines []*Timeline
}

// NewTrace returns an empty trace collector. The wall clock is the one
// legitimate host-time source in this package — it is the injectable
// default that SetClock overrides.
func NewTrace() *Trace { return &Trace{now: time.Now} } //resccl:allow hosttime

// SetClock replaces the wall-clock source used to timestamp spans. Tests
// inject a deterministic clock so span output is reproducible.
func (t *Trace) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Trace) clock() func() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.now == nil {
		t.now = time.Now //resccl:allow hosttime
	}
	return t.now
}

// ActiveSpan is an in-progress span returned by StartSpan; End completes
// and records it.
type ActiveSpan struct {
	tr   *Trace
	span Span
}

// StartSpan opens a span. The returned ActiveSpan's End records it; a
// nil Trace returns a nil ActiveSpan whose End is a no-op.
func (t *Trace) StartSpan(cat, name string, attrs ...Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{tr: t, span: Span{Name: name, Cat: cat, Start: t.clock()(), Attrs: attrs}}
}

// End completes the span and records it on its trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.Duration = s.tr.clock()().Sub(s.span.Start)
	s.tr.AddSpan(s.span)
}

// AddSpan records a completed span.
func (t *Trace) AddSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// AddStages records a pre-measured stage breakdown as contiguous spans:
// the stages are anchored at the collector's current clock reading and
// laid end to end, preserving their relative durations. prefix is
// prepended to every stage name ("compile/HM-AllReduce: schedule").
func (t *Trace) AddStages(cat, prefix string, stages []Stage) {
	if t == nil || len(stages) == 0 {
		return
	}
	at := t.clock()()
	for _, st := range stages {
		t.AddSpan(Span{Name: prefix + ": " + st.Name, Cat: cat, Start: at, Duration: st.Duration})
		at = at.Add(st.Duration)
	}
}

// AddTimeline records a simulated execution timeline.
func (t *Trace) AddTimeline(tl *Timeline) {
	if t == nil || tl == nil {
		return
	}
	t.mu.Lock()
	t.timelines = append(t.timelines, tl)
	t.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Timelines returns a snapshot of the recorded timelines in recording
// order.
func (t *Trace) Timelines() []*Timeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Timeline(nil), t.timelines...)
}
