package obs

// Timeline is the simulated execution record of one collective: one
// track per thread block (slices are task instances), one track per
// communication link (rendered as an active-transfer counter, since
// flows on a shared link legitimately overlap), plus fault and replan
// lanes. All times are simulated seconds, so a timeline is deterministic
// for deterministic simulator inputs — the property the golden trace
// tests and the byte-identical -trace-out contract rely on.
type Timeline struct {
	// Name identifies the run ("ResCCL/HM-AllReduce" or "dp[3]/ring-16").
	Name string
	// Completion is the simulated makespan in seconds.
	Completion float64
	// TBs holds one track per thread block, ascending ID.
	TBs []TBTrack
	// Links holds one track per communication link that carried traffic,
	// ascending resource ID.
	Links []LinkTrack
	// Faults lists injected fault windows (empty for clean runs).
	Faults []FaultWindow
	// Replans lists plan-level recovery markers. Runtime replans carry no
	// simulated clock, so Mark.Time is the recovery epoch index.
	Replans []Mark
}

// TBTrack is one thread block's activity.
type TBTrack struct {
	// ID and Rank locate the TB; Label describes its role ("0→1/send").
	ID    int
	Rank  int
	Label string
	// Slices are the TB's executed task instances in completion order.
	Slices []Slice
}

// Slice is one busy interval [Start, End) in simulated seconds.
type Slice struct {
	Name       string
	Start, End float64
}

// LinkTrack is one communication link's activity. Slices may overlap
// (max-min shared flows); the Chrome exporter renders the track as a
// counter of concurrently active transfers.
type LinkTrack struct {
	Name   string
	Slices []Slice
}

// FaultWindow is one injected fault's active window.
type FaultWindow struct {
	Kind       string
	Detail     string
	Start, End float64
}

// Mark is an instantaneous event on a lane.
type Mark struct {
	Name   string
	Detail string
	Time   float64
}
