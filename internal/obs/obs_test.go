package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, making span output
// deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestNilCollectorsAreSafe(t *testing.T) {
	var tr *Trace
	var m *Metrics
	sp := tr.StartSpan("cat", "name")
	sp.End()
	tr.AddSpan(Span{})
	tr.AddStages("c", "p", []Stage{{Name: "x", Duration: time.Second}})
	tr.AddTimeline(&Timeline{})
	if tr.Spans() != nil || tr.Timelines() != nil {
		t.Error("nil Trace returned non-nil snapshots")
	}
	m.Add("c", 1)
	m.SetGauge("g", 1)
	m.AddGauge("g", 1)
	if m.Counter("c") != 0 {
		t.Error("nil Metrics counted")
	}
	if _, ok := m.Gauge("g"); ok {
		t.Error("nil Metrics has a gauge")
	}
	if err := m.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil Metrics WriteJSON: %v", err)
	}
}

func TestSpansWithFakeClock(t *testing.T) {
	tr := NewTrace()
	tr.SetClock(fakeClock(time.Millisecond))
	sp := tr.StartSpan("sim", "run", Attr{Key: "backend", Value: "ResCCL"})
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Duration != time.Millisecond {
		t.Errorf("duration = %v, want 1ms", spans[0].Duration)
	}
	if spans[0].Cat != "sim" || spans[0].Name != "run" {
		t.Errorf("span identity = %q/%q", spans[0].Cat, spans[0].Name)
	}
}

func TestAddStagesLaysSpansEndToEnd(t *testing.T) {
	tr := NewTrace()
	tr.SetClock(fakeClock(0))
	tr.AddStages("compile", "compile/x", []Stage{
		{Name: "analyze", Duration: 2 * time.Millisecond},
		{Name: "schedule", Duration: 3 * time.Millisecond},
	})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if got := spans[1].Start.Sub(spans[0].Start); got != 2*time.Millisecond {
		t.Errorf("second stage starts %v after first, want 2ms", got)
	}
	if spans[0].Name != "compile/x: analyze" {
		t.Errorf("span name = %q", spans[0].Name)
	}
}

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("hits"); got != 800 {
		t.Errorf("hits = %d, want 800", got)
	}
	m.SetGauge("g", 2.5)
	m.AddGauge("g", 1.5)
	if v, ok := m.Gauge("g"); !ok || v != 4.0 {
		t.Errorf("gauge = %v,%v want 4,true", v, ok)
	}
	snap := m.Snapshot()
	if snap.Counters["hits"] != 800 || snap.Gauges["g"] != 4.0 {
		t.Errorf("snapshot = %+v", snap)
	}
	if names := snap.Names(); len(names) != 1 || names[0] != "hits" {
		t.Errorf("names = %v", names)
	}
}

func TestMetricsWriteJSONDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Add("b.count", 2)
	m.Add("a.count", 1)
	m.SetGauge("z.gauge", 0.5)
	var first, second bytes.Buffer
	if err := m.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("two WriteJSON renders differ")
	}
	if !json.Valid(first.Bytes()) {
		t.Error("output is not valid JSON")
	}
	if !strings.HasSuffix(first.String(), "\n") {
		t.Error("output lacks trailing newline")
	}
}

func TestWriteChromeTimeline(t *testing.T) {
	tl := &Timeline{
		Name:       "test/run",
		Completion: 2.0,
		TBs: []TBTrack{
			{ID: 0, Rank: 0, Label: "0→1/send", Slices: []Slice{{Name: "t0 mb0 0→1", Start: 0, End: 1}}},
			{ID: 1, Rank: 1, Label: "0→1/recv"},
		},
		Links: []LinkTrack{
			{Name: "pair(0→1)", Slices: []Slice{{Name: "t0", Start: 0, End: 1}, {Name: "t1", Start: 0.5, End: 2}}},
		},
		Faults:  []FaultWindow{{Kind: "link-down", Detail: "nic0", Start: 0.5, End: 1.5}},
		Replans: []Mark{{Name: "replan", Detail: "epoch 1", Time: 1}},
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var threads, counters, slices, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			if e["name"] == "thread_name" {
				threads++
			}
		case "C":
			counters++
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	// 2 TB tracks + fault lane + replan lane.
	if threads != 4 {
		t.Errorf("thread_name metas = %d, want 4", threads)
	}
	// 4 distinct boundaries on the one link.
	if counters < 4 {
		t.Errorf("counter samples = %d, want >= 4", counters)
	}
	// 1 TB slice + 1 fault window.
	if slices != 2 {
		t.Errorf("X slices = %d, want 2", slices)
	}
	if instants != 1 {
		t.Errorf("instants = %d, want 1", instants)
	}
}

func TestWriteChromeHostSpansOptIn(t *testing.T) {
	tr := NewTrace()
	tr.SetClock(fakeClock(time.Millisecond))
	tr.StartSpan("compile", "compile/x").End()
	var without, with bytes.Buffer
	if err := tr.WriteChrome(&without); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&with, WithHostSpans()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "compile/x") {
		t.Error("host span exported without WithHostSpans")
	}
	if !strings.Contains(with.String(), "compile/x") {
		t.Error("host span missing with WithHostSpans")
	}
}
