package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Chrome trace-event export (the JSON Array / JSON Object format read by
// chrome://tracing and Perfetto). Each recorded Timeline becomes one
// "process": thread-block tracks are threads with one complete ("X")
// slice per task instance, links are counter ("C") tracks of concurrently
// active transfers, faults render as slices on a dedicated lane and
// replans as instant ("i") markers. Timestamps are simulated seconds
// converted to trace microseconds and rounded to nanosecond precision,
// so the output is byte-identical across runs for identical simulator
// inputs.
//
// Host-side spans (compile stages, wall-clock execution spans) are
// excluded by default because their durations are nondeterministic;
// WithHostSpans adds them as a separate "host" process.

// ExportOption configures WriteChrome.
type ExportOption func(*exportConfig)

type exportConfig struct {
	hostSpans bool
}

// WithHostSpans includes wall-clock spans (compile stages, sim/rt
// execution) as a "host" process. Span durations are host wall time, so
// traces exported with this option are not byte-reproducible.
func WithHostSpans() ExportOption {
	return func(c *exportConfig) { c.hostSpans = true }
}

// usec converts simulated seconds to trace microseconds, rounded to
// nanosecond precision for stable, compact formatting.
func usec(sec float64) float64 { return math.Round(sec*1e9) / 1e3 }

// chromeEvent is one trace event. Field order is fixed by the struct, so
// encoding/json output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) event(e chromeEvent) {
	if cw.err != nil {
		return
	}
	out, err := json.Marshal(e)
	if err != nil {
		cw.err = err
		return
	}
	if !cw.first {
		cw.w.WriteString(",\n")
	}
	cw.first = false
	_, cw.err = cw.w.Write(out)
}

func (cw *chromeWriter) meta(name string, pid, tid int, args map[string]any) {
	cw.event(chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
}

func (cw *chromeWriter) slice(name string, pid, tid int, start, end float64, args map[string]any) {
	d := usec(end) - usec(start)
	if d < 0 {
		d = 0
	}
	cw.event(chromeEvent{Name: name, Ph: "X", Ts: usec(start), Dur: &d, Pid: pid, Tid: tid, Args: args})
}

// WriteChrome renders the trace as Chrome trace-event JSON, one event
// per line for reviewable diffs.
func (t *Trace) WriteChrome(w io.Writer, opts ...ExportOption) error {
	var cfg exportConfig
	for _, o := range opts {
		o(&cfg)
	}
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw, first: true}
	bw.WriteString("{\"traceEvents\":[\n")

	if cfg.hostSpans {
		writeHostSpans(cw, t.Spans())
	}
	for i, tl := range t.Timelines() {
		writeTimeline(cw, tl, i+1)
	}

	if cw.err != nil {
		return cw.err
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// WriteChrome renders a single timeline as Chrome trace-event JSON.
func (tl *Timeline) WriteChrome(w io.Writer) error {
	t := NewTrace()
	t.AddTimeline(tl)
	return t.WriteChrome(w)
}

// writeHostSpans renders wall-clock spans as pid 0, timestamped relative
// to the earliest span start.
func writeHostSpans(cw *chromeWriter, spans []Span) {
	if len(spans) == 0 {
		return
	}
	cw.meta("process_name", 0, 0, map[string]any{"name": "host"})
	cw.meta("process_sort_index", 0, 0, map[string]any{"sort_index": 0})
	epoch := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	for _, s := range spans {
		args := map[string]any{"cat": s.Cat}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		start := s.Start.Sub(epoch).Seconds()
		cw.slice(s.Name, 0, 1, start, start+s.Duration.Seconds(), args)
	}
}

func writeTimeline(cw *chromeWriter, tl *Timeline, pid int) {
	cw.meta("process_name", pid, 0, map[string]any{"name": tl.Name})
	cw.meta("process_sort_index", pid, 0, map[string]any{"sort_index": pid})

	// Thread-block tracks: tid 1..len(TBs), in ascending track order.
	for i, tb := range tl.TBs {
		tid := i + 1
		cw.meta("thread_name", pid, tid, map[string]any{"name": fmt.Sprintf("TB%d r%d %s", tb.ID, tb.Rank, tb.Label)})
		cw.meta("thread_sort_index", pid, tid, map[string]any{"sort_index": tid})
		for _, sl := range tb.Slices {
			cw.slice(sl.Name, pid, tid, sl.Start, sl.End, nil)
		}
	}
	faultTid := len(tl.TBs) + 1
	replanTid := len(tl.TBs) + 2
	if len(tl.Faults) > 0 {
		cw.meta("thread_name", pid, faultTid, map[string]any{"name": "faults"})
		cw.meta("thread_sort_index", pid, faultTid, map[string]any{"sort_index": faultTid})
		for _, f := range tl.Faults {
			cw.slice(f.Kind, pid, faultTid, f.Start, f.End, map[string]any{"detail": f.Detail})
		}
	}
	if len(tl.Replans) > 0 {
		cw.meta("thread_name", pid, replanTid, map[string]any{"name": "replans"})
		cw.meta("thread_sort_index", pid, replanTid, map[string]any{"sort_index": replanTid})
		for _, m := range tl.Replans {
			cw.event(chromeEvent{Name: m.Name, Ph: "i", Ts: usec(m.Time), Pid: pid, Tid: replanTid,
				S: "p", Args: map[string]any{"detail": m.Detail}})
		}
	}
	// Link tracks: one counter per link, sampled at every transfer
	// boundary with the number of concurrently active transfers.
	for _, link := range tl.Links {
		writeLinkCounter(cw, pid, link, tl.Completion)
	}
}

// writeLinkCounter emits a counter track for one link: the active-flow
// count at every slice boundary.
func writeLinkCounter(cw *chromeWriter, pid int, link LinkTrack, completion float64) {
	if len(link.Slices) == 0 {
		return
	}
	deltas := make(map[float64]int, 2*len(link.Slices))
	for _, sl := range link.Slices {
		deltas[usec(sl.Start)]++
		deltas[usec(sl.End)]--
	}
	times := make([]float64, 0, len(deltas))
	for t := range deltas { //resccl:allow mapiter
		times = append(times, t)
	}
	sort.Float64s(times)
	name := "link " + link.Name
	if times[0] > 0 {
		cw.event(chromeEvent{Name: name, Ph: "C", Ts: 0, Pid: pid, Args: map[string]any{"active": 0}})
	}
	active := 0
	for _, t := range times {
		active += deltas[t]
		cw.event(chromeEvent{Name: name, Ph: "C", Ts: t, Pid: pid, Args: map[string]any{"active": active}})
	}
	if end := usec(completion); len(times) > 0 && times[len(times)-1] < end {
		cw.event(chromeEvent{Name: name, Ph: "C", Ts: end, Pid: pid, Args: map[string]any{"active": 0}})
	}
}
