package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Metrics is a flat counters/gauges registry. Counters are monotonic
// int64 accumulators (cache hits, sim events, replans); gauges are
// float64 values that may also be accumulated (per-link busy seconds).
// Names are dot-separated ("plan_cache.hits", "sim.events"); the full
// vocabulary the library emits is documented in docs/observability.md.
//
// All methods are safe for concurrent use and on a nil receiver.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]int64), gauges: make(map[string]float64)}
}

// Add increments a counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns a counter's current value (0 if never written).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge sets a gauge to v, replacing any previous value.
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// AddGauge accumulates delta into a gauge (per-link busy time sums
// across runs this way).
func (m *Metrics) AddGauge(name string, delta float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] += delta
	m.mu.Unlock()
}

// Gauge returns a gauge's current value and whether it was ever set.
func (m *Metrics) Gauge(name string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.gauges[name]
	return v, ok
}

// Snapshot is a point-in-time copy of the registry with names sorted,
// ready for deterministic rendering.
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Names returns the snapshot's counter names in sorted order.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters { //resccl:allow mapiter
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies the registry.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Map→map copies: order-independent.
	for k, v := range m.counters { //resccl:allow mapiter
		s.Counters[k] = v
	}
	for k, v := range m.gauges { //resccl:allow mapiter
		s.Gauges[k] = v
	}
	return s
}

// WriteJSON renders the registry as indented JSON with sorted keys
// (encoding/json sorts map keys), trailing newline included.
func (m *Metrics) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
