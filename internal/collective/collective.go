// Package collective defines the semantics of the collective operators
// (AllGather, AllReduce, ReduceScatter, Broadcast, AllToAll) over the
// chunked buffer model of ResCCLang, provides a data-plane executor that
// applies an algorithm's transfers to concrete buffers, and verifies
// operator postconditions — the ground truth every compiled plan is
// checked against.
package collective

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
)

// poison fills chunk slots that hold no valid data yet; reading one
// indicates an incorrect algorithm (a transfer consuming data that was
// never delivered).
const poison int64 = -0x3fffffffffffffff

// ElemsPerChunk is the number of verification elements carried per
// chunk. Small, because correctness is element-position independent.
const ElemsPerChunk = 4

// Contribution returns rank r's deterministic initial value for chunk c,
// element e. Values are pairwise distinct across (r, c, e) so mixups are
// detected.
func Contribution(r ir.Rank, c ir.ChunkID, e int) int64 {
	return 1 + int64(r)*1_000_003 + int64(c)*10_007 + int64(e)*101
}

// Owner returns the home rank of chunk c: the rank whose buffer segment
// the chunk represents (AllGather source, ReduceScatter destination).
func Owner(c ir.ChunkID, nRanks int) ir.Rank { return ir.Rank(int(c) % nRanks) }

// State is the data plane: every rank's buffer as chunk-indexed element
// vectors.
type State struct {
	Op      ir.OpType
	NRanks  int
	NChunks int
	// data[rank][chunk][elem]
	data [][][]int64
}

// NewState initialises buffers per the operator's precondition (see
// dag.InitiallyHolds).
func NewState(op ir.OpType, nRanks, nChunks int) *State {
	s := &State{Op: op, NRanks: nRanks, NChunks: nChunks}
	s.data = make([][][]int64, nRanks)
	for r := 0; r < nRanks; r++ {
		s.data[r] = make([][]int64, nChunks)
		for c := 0; c < nChunks; c++ {
			s.data[r][c] = make([]int64, ElemsPerChunk)
			for e := 0; e < ElemsPerChunk; e++ {
				if dag.InitiallyHolds(op, ir.Rank(r), ir.ChunkID(c), nRanks, nChunks) {
					s.data[r][c][e] = Contribution(ir.Rank(r), ir.ChunkID(c), e)
				} else {
					s.data[r][c][e] = poison
				}
			}
		}
	}
	return s
}

// Chunk returns rank r's current copy of chunk c (aliased, not copied).
func (s *State) Chunk(r ir.Rank, c ir.ChunkID) []int64 { return s.data[r][c] }

// Apply executes one transfer: the source's chunk is copied (recv) or
// element-wise reduced (rrc) into the destination's chunk. Reading a
// poisoned source chunk is an execution error.
func (s *State) Apply(t ir.Transfer) error {
	src := s.data[t.Src][t.Chunk]
	dst := s.data[t.Dst][t.Chunk]
	for e := range src {
		if src[e] == poison {
			return fmt.Errorf("collective: %v reads undelivered chunk %d at rank %d", t, t.Chunk, t.Src)
		}
	}
	switch t.Type {
	case ir.CommRecv:
		copy(dst, src)
	case ir.CommRecvReduceCopy:
		for e := range dst {
			if dst[e] == poison {
				return fmt.Errorf("collective: %v reduces into undelivered chunk %d at rank %d", t, t.Chunk, t.Dst)
			}
			dst[e] += src[e]
		}
	default:
		return fmt.Errorf("collective: %v has unknown comm type", t)
	}
	return nil
}

// Execute runs the whole algorithm on fresh buffers in step order and
// returns the final state. Step order is sufficient because data
// dependencies only point from lower to higher steps (enforced by
// dag.Build, which callers should have run; Execute re-sorts but does
// not re-check hazards).
func Execute(algo *ir.Algorithm) (*State, error) {
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	s := NewState(algo.Op, algo.NRanks, algo.NChunks)
	transfers := algo.Sorted()
	sort.SliceStable(transfers, func(i, j int) bool { return transfers[i].Step < transfers[j].Step })
	for _, t := range transfers {
		if err := s.Apply(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Verify checks the operator postcondition on a final state:
//
//   - AllGather: every rank holds every chunk's original contribution
//     (from the chunk's owner).
//   - AllReduce: every rank holds, for every chunk, the element-wise sum
//     of all ranks' contributions.
//   - ReduceScatter: each rank holds the full sum for the chunks it
//     owns; other chunks are unspecified.
//   - Broadcast: every rank holds rank 0's contribution for every chunk.
//   - AllToAll: rank d holds, for every source s, the chunk s·nRanks+d
//     with s's contribution; other chunks are unspecified.
func Verify(s *State) error {
	nR, nC := s.NRanks, s.NChunks
	// The all-ranks contribution sum is shared by every rank's check of
	// the same (chunk, elem); memoising it keeps Verify linear in the
	// buffer size instead of O(ranks²) — the difference between
	// milliseconds and minutes on 4096-rank plans.
	sumCache := make([]int64, nC*ElemsPerChunk)
	sumKnown := make([]bool, nC*ElemsPerChunk)
	sum := func(c ir.ChunkID, e int) int64 {
		i := int(c)*ElemsPerChunk + e
		if !sumKnown[i] {
			var total int64
			for r := 0; r < nR; r++ {
				total += Contribution(ir.Rank(r), c, e)
			}
			sumCache[i] = total
			sumKnown[i] = true
		}
		return sumCache[i]
	}
	for r := 0; r < nR; r++ {
		for c := 0; c < nC; c++ {
			for e := 0; e < ElemsPerChunk; e++ {
				got := s.data[r][c][e]
				var want int64
				switch s.Op {
				case ir.OpAllGather:
					want = Contribution(Owner(ir.ChunkID(c), nR), ir.ChunkID(c), e)
				case ir.OpAllReduce:
					want = sum(ir.ChunkID(c), e)
				case ir.OpReduceScatter:
					if Owner(ir.ChunkID(c), nR) != ir.Rank(r) {
						continue
					}
					want = sum(ir.ChunkID(c), e)
				case ir.OpBroadcast:
					want = Contribution(0, ir.ChunkID(c), e)
				case ir.OpAllToAll:
					if c%nR != r {
						continue // only destination segments are specified
					}
					want = Contribution(ir.Rank(c/nR), ir.ChunkID(c), e)
				default:
					return fmt.Errorf("collective: unknown operator %v", s.Op)
				}
				if got != want {
					return fmt.Errorf(
						"collective: %v postcondition violated at rank %d chunk %d elem %d: got %d, want %d",
						s.Op, r, c, e, got, want)
				}
			}
		}
	}
	return nil
}

// VerifyGroup checks a process-group AllReduce embedded in a larger
// communicator: every group member must hold, for every chunk, the sum
// of the group members' contributions. Non-members are unconstrained.
// Only AllReduce has rank-independent group semantics under the chunk
// ownership conventions; other grouped operators are rejected.
func VerifyGroup(s *State, group []ir.Rank) error {
	if s.Op != ir.OpAllReduce {
		return fmt.Errorf("collective: grouped verification supports AllReduce only, got %v", s.Op)
	}
	for c := 0; c < s.NChunks; c++ {
		for e := 0; e < ElemsPerChunk; e++ {
			var want int64
			for _, q := range group {
				want += Contribution(q, ir.ChunkID(c), e)
			}
			for _, r := range group {
				if got := s.data[r][c][e]; got != want {
					return fmt.Errorf(
						"collective: grouped %v postcondition violated at rank %d chunk %d elem %d: got %d, want %d",
						s.Op, r, c, e, got, want)
				}
			}
		}
	}
	return nil
}

// Check executes and verifies an algorithm in one call — the standard
// correctness gate used by tests and the compiler. Group-embedded
// algorithms are verified against the group's view.
func Check(algo *ir.Algorithm) error {
	s, err := Execute(algo)
	if err != nil {
		return err
	}
	if algo.Group != nil {
		return VerifyGroup(s, algo.Group)
	}
	return Verify(s)
}
