package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/resccl/resccl/internal/ir"
)

func ringAG(n int) *ir.Algorithm {
	a := &ir.Algorithm{Name: "ring", Op: ir.OpAllGather, NRanks: n, NChunks: n}
	for r := 0; r < n; r++ {
		for s := 0; s < n-1; s++ {
			c := ((r-s)%n + n) % n
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank((r + 1) % n), Step: ir.Step(s),
				Chunk: ir.ChunkID(c), Type: ir.CommRecv,
			})
		}
	}
	return a
}

func TestExecuteAndVerifyRing(t *testing.T) {
	if err := Check(ringAG(5)); err != nil {
		t.Fatal(err)
	}
}

func TestApplySemantics(t *testing.T) {
	s := NewState(ir.OpAllReduce, 2, 2)
	// rrc adds; recv copies.
	before := append([]int64(nil), s.Chunk(1, 0)...)
	if err := s.Apply(ir.Transfer{Src: 0, Dst: 1, Chunk: 0, Type: ir.CommRecvReduceCopy}); err != nil {
		t.Fatal(err)
	}
	for e := range before {
		want := before[e] + Contribution(0, 0, e)
		if got := s.Chunk(1, 0)[e]; got != want {
			t.Errorf("rrc elem %d: got %d want %d", e, got, want)
		}
	}
	if err := s.Apply(ir.Transfer{Src: 1, Dst: 0, Chunk: 0, Type: ir.CommRecv}); err != nil {
		t.Fatal(err)
	}
	for e := range before {
		if s.Chunk(0, 0)[e] != s.Chunk(1, 0)[e] {
			t.Error("recv must copy the sender's chunk")
		}
	}
}

func TestPoisonDetection(t *testing.T) {
	// AllGather: rank 0 does not hold chunk 1 initially; sending it must
	// fail.
	s := NewState(ir.OpAllGather, 2, 2)
	if err := s.Apply(ir.Transfer{Src: 0, Dst: 1, Chunk: 1, Type: ir.CommRecv}); err == nil {
		t.Error("sending an undelivered chunk should fail")
	}
	// Reducing into a poisoned destination must fail too.
	if err := s.Apply(ir.Transfer{Src: 1, Dst: 0, Chunk: 1, Type: ir.CommRecvReduceCopy}); err == nil {
		t.Error("reducing into an undelivered chunk should fail")
	}
}

func TestVerifyCatchesWrongResult(t *testing.T) {
	// An AllGather that stops one step early leaves poison (and stale
	// values) behind; Verify must fail.
	a := ringAG(4)
	a.Transfers = a.Transfers[:len(a.Transfers)-4]
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	st := NewState(a.Op, a.NRanks, a.NChunks)
	for _, tr := range a.Sorted() {
		// Ignore apply errors: we want Verify to catch the bad state.
		_ = st.Apply(tr)
	}
	if err := Verify(st); err == nil {
		t.Error("truncated AllGather should fail verification")
	}
}

func TestContributionsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			for e := 0; e < ElemsPerChunk; e++ {
				v := Contribution(ir.Rank(r), ir.ChunkID(c), e)
				if seen[v] {
					t.Fatalf("collision at (%d,%d,%d)", r, c, e)
				}
				seen[v] = true
			}
		}
	}
}

func TestOwner(t *testing.T) {
	if Owner(5, 8) != 5 || Owner(13, 8) != 5 {
		t.Error("owner must be chunk mod nRanks")
	}
}

// Property: for random ring sizes, executing the ring AllGather always
// verifies, and corrupting one transfer's chunk makes execution or
// verification fail.
func TestPropertyRingVerifies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		a := ringAG(n)
		if Check(a) != nil {
			return false
		}
		// Corrupt: retarget one transfer's chunk.
		i := rng.Intn(len(a.Transfers))
		a.Transfers[i].Chunk = ir.ChunkID((int(a.Transfers[i].Chunk) + 1) % n)
		st := NewState(a.Op, a.NRanks, a.NChunks)
		bad := false
		for _, tr := range a.Sorted() {
			if st.Apply(tr) != nil {
				bad = true
				break
			}
		}
		if !bad && Verify(st) == nil {
			// The corruption happened to produce a still-correct plan —
			// possible only if it created a duplicate delivering the
			// same data; treat as failure to keep the property strict.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastVerify(t *testing.T) {
	// Rank 0 broadcasts every chunk directly.
	n := 4
	a := &ir.Algorithm{Name: "bcast", Op: ir.OpBroadcast, NRanks: n, NChunks: n}
	for c := 0; c < n; c++ {
		for d := 1; d < n; d++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: 0, Dst: ir.Rank(d), Step: ir.Step(c), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
			})
		}
	}
	if err := Check(a); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRejectsInvalidAlgorithm(t *testing.T) {
	bad := &ir.Algorithm{Name: "bad", Op: ir.OpAllGather, NRanks: 1, NChunks: 1}
	if _, err := Execute(bad); err == nil {
		t.Error("invalid algorithm should fail Execute")
	}
}

func TestVerifyUnknownOp(t *testing.T) {
	s := NewState(ir.OpType(99), 2, 2)
	if err := Verify(s); err == nil {
		t.Error("unknown operator should fail Verify")
	}
}

func TestApplyUnknownCommType(t *testing.T) {
	s := NewState(ir.OpAllReduce, 2, 2)
	if err := s.Apply(ir.Transfer{Src: 0, Dst: 1, Chunk: 0, Type: ir.CommType(9)}); err == nil {
		t.Error("unknown comm type should fail Apply")
	}
}

func TestVerifyGroup(t *testing.T) {
	// A 2-rank ring AllReduce embedded at ranks {1,3} of a 4-rank world.
	ring := &ir.Algorithm{
		Name: "r2", Op: ir.OpAllReduce, NRanks: 2, NChunks: 2,
		Transfers: []ir.Transfer{
			{Src: 0, Dst: 1, Step: 0, Chunk: 1, Type: ir.CommRecvReduceCopy},
			{Src: 1, Dst: 0, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
			{Src: 0, Dst: 1, Step: 1, Chunk: 0, Type: ir.CommRecv},
			{Src: 1, Dst: 0, Step: 1, Chunk: 1, Type: ir.CommRecv},
		},
	}
	emb, err := ir.Embed(ring, []ir.Rank{1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(emb); err != nil {
		t.Fatal(err)
	}
	// Grouped verification only supports AllReduce.
	ag := NewState(ir.OpAllGather, 4, 4)
	if err := VerifyGroup(ag, []ir.Rank{0, 1}); err == nil {
		t.Error("grouped AllGather verification should be rejected")
	}
}

func TestVerifyGroupCatchesWrongSum(t *testing.T) {
	s := NewState(ir.OpAllReduce, 4, 2)
	// Group {0,2} never exchanged anything: members hold only their own
	// contribution, so grouped verification must fail.
	if err := VerifyGroup(s, []ir.Rank{0, 2}); err == nil {
		t.Error("unreduced group state should fail verification")
	}
}
