package backend

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// protoSweepSizes is the golden sweep: 64 KiB to 1 GiB in powers of
// two, straddling both switch points on every topology below.
func protoSweepSizes() []int64 {
	var out []int64
	for b := int64(64 << 10); b <= 1<<30; b *= 2 {
		out = append(out, b)
	}
	return out
}

var protoGoldenTopos = []struct {
	name string
	tp   *topo.Topology
}{
	{"1x8-a100", topo.New(1, 8, topo.A100())},
	{"2x8-a100", topo.New(2, 8, topo.A100())},
}

var protoGoldenOps = []ir.OpType{
	ir.OpAllReduce, ir.OpAllGather, ir.OpReduceScatter, ir.OpBroadcast,
}

// tierRank orders protocols by effective bandwidth: auto-selection must
// move through it monotonically as the buffer grows.
func tierRank(p ir.Protocol) int {
	switch p {
	case ir.ProtoLL:
		return 0
	case ir.ProtoLL128:
		return 1
	default:
		return 2
	}
}

// TestProtocolCrossoverGolden sweeps buffer sizes per collective per
// topology and checks the auto-selected tier against a golden file, so
// any cost-model change that moves a switch point shows up in review.
// Run with -update to regenerate after intentional changes. The
// rendering is pure integer/state formatting, so the bytes are
// identical across -shuffle and -race runs.
func TestProtocolCrossoverGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, tc := range protoGoldenTopos {
		for _, op := range protoGoldenOps {
			llMax, ll128Max := sim.ProtocolSwitchPoints(tc.tp, op)
			fmt.Fprintf(&buf, "%s %s llMax=%d ll128Max=%d\n", tc.name, op, llMax, ll128Max)
			for _, size := range protoSweepSizes() {
				fmt.Fprintf(&buf, "%s %s %d %s\n", tc.name, op, size, sim.SelectProtocol(tc.tp, op, size))
			}
		}
	}

	golden := filepath.Join("testdata", "protocol_crossover.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/backend -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("crossover table differs from golden file %s (len %d vs %d); regenerate with -update if the cost-model change is intentional",
			golden, buf.Len(), len(want))
	}
}

// Auto-selection must be monotone in size — once a higher-bandwidth
// tier wins, no larger buffer returns to a lower one — and the switch
// points must be ordered and respected exactly at the boundaries.
func TestProtocolSelectionMonotone(t *testing.T) {
	for _, tc := range protoGoldenTopos {
		for _, op := range protoGoldenOps {
			llMax, ll128Max := sim.ProtocolSwitchPoints(tc.tp, op)
			if llMax > ll128Max {
				t.Errorf("%s %s: llMax %d > ll128Max %d", tc.name, op, llMax, ll128Max)
			}
			prev := -1
			for size := int64(1 << 10); size <= 1<<32; size *= 2 {
				tier := sim.SelectProtocol(tc.tp, op, size)
				if r := tierRank(tier); r < prev {
					t.Errorf("%s %s: tier %s at %d bytes after a higher tier", tc.name, op, tier, size)
				} else {
					prev = r
				}
			}
			if llMax > 0 {
				if got := sim.SelectProtocol(tc.tp, op, llMax); got != ir.ProtoLL {
					t.Errorf("%s %s: at llMax=%d got %s, want LL", tc.name, op, llMax, got)
				}
			}
			if ll128Max > llMax {
				if got := sim.SelectProtocol(tc.tp, op, ll128Max); got != ir.ProtoLL128 {
					t.Errorf("%s %s: at ll128Max=%d got %s, want LL128", tc.name, op, ll128Max, got)
				}
			}
			if got := sim.SelectProtocol(tc.tp, op, ll128Max*2); got != ir.ProtoSimple {
				t.Errorf("%s %s: at %d got %s, want Simple", tc.name, op, ll128Max*2, got)
			}
		}
	}
}

// The simulator must reproduce the crossover the analytic model
// predicts: a forced LL run beats forced Simple on a small buffer and
// loses on a large one, end to end through NCCL backend compilation.
func TestProtocolCrossoverSimFidelity(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	algo := &ir.Algorithm{Name: "ar", Op: ir.OpAllReduce, NRanks: 16, NChunks: 16}
	completion := func(proto ir.Protocol, bufBytes int64) float64 {
		t.Helper()
		plan, err := NewNCCL().Compile(context.Background(), Request{Algo: algo, Topo: tp, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Kernel.Protocol != proto {
			t.Fatalf("compiled kernel carries protocol %s, want %s", plan.Kernel.Protocol, proto)
		}
		res, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: bufBytes, ChunkBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.Completion
	}
	const small, large = 256 << 10, 1 << 30
	if ll, simple := completion(ir.ProtoLL, small), completion(ir.ProtoSimple, small); ll >= simple {
		t.Errorf("small buffer: LL %.3gs should beat Simple %.3gs", ll, simple)
	}
	if ll, simple := completion(ir.ProtoLL, large), completion(ir.ProtoSimple, large); simple >= ll {
		t.Errorf("large buffer: Simple %.3gs should beat LL %.3gs", simple, ll)
	}
}

// A kernel whose protocol was never set must simulate identically to a
// forced-Simple kernel aside from chunk capping — ProtoAuto is the
// backward-compatible zero value.
func TestProtoAutoIsSimpleIdentity(t *testing.T) {
	tp := topo.New(1, 8, topo.A100())
	algo := &ir.Algorithm{Name: "ag", Op: ir.OpAllGather, NRanks: 8, NChunks: 8}
	run := func(proto ir.Protocol) float64 {
		t.Helper()
		plan, err := NewNCCL().Compile(context.Background(), Request{Algo: algo, Topo: tp, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 64 << 20, ChunkBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.Completion
	}
	if auto, simple := run(ir.ProtoAuto), run(ir.ProtoSimple); auto != simple {
		t.Errorf("ProtoAuto completion %.9g differs from ProtoSimple %.9g", auto, simple)
	}
}

// Compiling with an out-of-range protocol must fail on every backend.
func TestUndefinedProtocolRejected(t *testing.T) {
	req := cacheTestRequest(t)
	req.Protocol = ir.Protocol(99)
	for _, b := range []Backend{NewNCCL(), NewMSCCL(), NewResCCL()} {
		if _, err := b.Compile(context.Background(), req); err == nil {
			t.Errorf("%s: compile accepted undefined protocol tier", b.Name())
		}
	}
}
