package backend

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Cache is a content-addressed compile cache: plans are keyed by a
// structural fingerprint of (backend configuration, algorithm, topology),
// so a buffer-size sweep compiles each plan once instead of once per
// point. Compilation is a pure function of that triple — the buffer and
// chunk sizes enter only at simulation time — which is what makes the
// key sound.
//
// The cache is bounded: entries live in sharded LRU lists capped by
// entry count and by an approximate byte footprint, so a long-running
// process (the ressclserve daemon) cannot grow it without limit. The
// shards divide both the budget and the lock, keeping concurrent tenants
// off each other's mutexes.
//
// Concurrent requests for the same key are collapsed into a single
// compilation (singleflight). The flight is cancellation-safe: the
// compile runs under its own context that is cancelled only when every
// interested caller — leader and followers alike — has gone away, so a
// cancelled leader neither aborts followers that still have budget nor
// caches a partial plan. Cancelled flights are dropped from the cache;
// the next request recompiles. For workloads that never cancel, hit and
// miss counts remain deterministic: misses == distinct keys requested
// (as long as the bounds are not hit).
//
// Compiled plans are shared by reference; Plan, its Kernel and its Graph
// are treated as immutable after compilation everywhere downstream (the
// simulator, the runtime and the trace analyzer only read them).
type Cache struct {
	cfg    CacheConfig
	shards []cacheShard
}

// CacheConfig bounds a plan cache. The zero value applies the defaults;
// the budgets are divided evenly across shards.
type CacheConfig struct {
	// MaxEntries caps the number of resident plans (default
	// DefaultMaxEntries).
	MaxEntries int
	// MaxBytes caps the approximate resident plan footprint (default
	// DefaultMaxBytes).
	MaxBytes int64
	// Shards is the lock-striping width, rounded up to a power of two
	// (default DefaultShards).
	Shards int
}

// Cache bound defaults: generous enough that the bench suite never
// evicts (keeping its counters deterministic), small enough that a
// long-running service stays bounded.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 1 << 30
	DefaultShards     = 8
)

func (c CacheConfig) withDefaults() CacheConfig {
	if c.MaxEntries <= 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	pow := 1
	for pow < c.Shards {
		pow <<= 1
	}
	c.Shards = pow
	return c
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry
	// lru holds completed entries, most recently used at the front.
	// In-flight entries live only in the map.
	lru        list.List
	bytes      int64
	maxEntries int
	maxBytes   int64

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  [sha256.Size]byte
	done chan struct{}
	plan *Plan
	err  error

	// Singleflight state, guarded by the shard mutex.
	refs      int                // callers currently waiting on the flight
	cancel    context.CancelFunc // stops the compile when the flight is abandoned
	completed bool
	abandoned bool

	// Residency state, guarded by the shard mutex.
	bytes int64
	elem  *list.Element // non-nil once resident in the LRU
}

// NewCache returns a plan cache with the default bounds.
func NewCache() *Cache { return NewCacheWith(CacheConfig{}) }

// NewCacheWith returns a plan cache with explicit bounds.
func NewCacheWith(cfg CacheConfig) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, shards: make([]cacheShard, cfg.Shards)}
	perEntries := (cfg.MaxEntries + cfg.Shards - 1) / cfg.Shards
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := cfg.MaxBytes / int64(cfg.Shards)
	if perBytes < 1 {
		perBytes = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[[sha256.Size]byte]*cacheEntry)
		c.shards[i].maxEntries = perEntries
		c.shards[i].maxBytes = perBytes
	}
	return c
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits   int64
	Misses int64
	// Evictions counts resident plans dropped to satisfy the entry or
	// byte bound.
	Evictions int64
	Entries   int
	// Bytes is the approximate resident plan footprint.
	Bytes int64
}

// HitRate returns the fraction of lookups served from the cache, 0 when
// the cache was never used.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the counters across all shards.
func (c *Cache) Stats() CacheStats {
	var s CacheStats
	if c == nil {
		return s
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Evictions += sh.evictions
		s.Entries += sh.lru.Len()
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// Compile returns the cached plan for the request, compiling it on first
// use. Backends with configurations the fingerprint does not understand
// fall through to a direct, uncached compile.
func (c *Cache) Compile(ctx context.Context, b Backend, req Request) (*Plan, error) {
	plan, _, err := c.CompileNoted(ctx, b, req)
	return plan, err
}

// CompileNoted is Compile plus a hit report: it returns whether the plan
// was served from the cache (or an already-running flight), so callers
// can account cache effectiveness per lookup. Uncacheable requests
// report hit=false.
//
// ctx governs only this caller's wait: when it is cancelled the caller
// detaches from the flight and gets ctx's error, while the compile keeps
// running for any other waiters. Only when the last waiter detaches is
// the compile itself cancelled, and its partial result is discarded
// rather than cached.
func (c *Cache) CompileNoted(ctx context.Context, b Backend, req Request) (*Plan, bool, error) {
	if c == nil {
		plan, err := b.Compile(ctx, req)
		return plan, false, err
	}
	key, ok := fingerprint(b, req)
	if !ok {
		plan, err := b.Compile(ctx, req)
		return plan, false, err
	}
	sh := &c.shards[int(key[0])&(len(c.shards)-1)]

	sh.mu.Lock()
	if e, found := sh.entries[key]; found && !e.abandoned {
		sh.hits++
		if e.completed {
			if e.elem != nil {
				sh.lru.MoveToFront(e.elem)
			}
			sh.mu.Unlock()
			return e.plan, true, e.err
		}
		// Join the in-flight compilation.
		e.refs++
		sh.mu.Unlock()
		return sh.wait(ctx, e, true)
	}
	// Miss: start a new flight. The compile context is deliberately
	// detached from the caller's: it is cancelled by the last departing
	// waiter, not by any single caller.
	sh.misses++
	cctx, cancel := context.WithCancel(context.Background()) //resccl:allow ctxflow
	e := &cacheEntry{key: key, done: make(chan struct{}), refs: 1, cancel: cancel}
	sh.entries[key] = e
	sh.mu.Unlock()

	go func() {
		plan, err := b.Compile(cctx, req)
		sh.complete(e, plan, err)
	}()
	return sh.wait(ctx, e, false)
}

// wait blocks until the flight completes or ctx is cancelled, detaching
// from the flight in the latter case.
func (sh *cacheShard) wait(ctx context.Context, e *cacheEntry, hit bool) (*Plan, bool, error) {
	if ctx == nil {
		// A nil ctx means "never cancel" by the Compile contract.
		ctx = context.Background() //resccl:allow ctxflow
	}
	select {
	case <-e.done:
		sh.mu.Lock()
		e.refs--
		sh.mu.Unlock()
		return e.plan, hit, e.err
	case <-ctx.Done():
		sh.detach(e)
		return nil, false, ctx.Err()
	}
}

// detach removes one waiter from an in-flight entry. The last departing
// waiter abandons the flight: the compile context is cancelled and the
// entry is unlinked so the next request recompiles.
func (sh *cacheShard) detach(e *cacheEntry) {
	sh.mu.Lock()
	e.refs--
	if e.refs == 0 && !e.completed {
		e.abandoned = true
		if sh.entries[e.key] == e {
			delete(sh.entries, e.key)
		}
		sh.mu.Unlock()
		e.cancel()
		return
	}
	sh.mu.Unlock()
}

// complete records the flight's outcome. Successful (and deterministic-
// error) results become resident LRU entries; cancelled or abandoned
// flights are dropped so a partial result can never be served later.
func (sh *cacheShard) complete(e *cacheEntry, plan *Plan, err error) {
	cancelled := err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	sh.mu.Lock()
	e.plan, e.err = plan, err
	e.completed = true
	if e.abandoned || cancelled {
		if sh.entries[e.key] == e {
			delete(sh.entries, e.key)
		}
	} else {
		e.bytes = planBytes(plan)
		e.elem = sh.lru.PushFront(e)
		sh.bytes += e.bytes
		sh.evict()
	}
	close(e.done)
	sh.mu.Unlock()
	e.cancel() // release the flight context's resources
}

// evict drops least-recently-used resident entries until the shard is
// within its bounds. The entry just inserted (front) is never evicted,
// so a single oversized plan still serves its own waiters.
func (sh *cacheShard) evict() {
	for (sh.lru.Len() > sh.maxEntries || sh.bytes > sh.maxBytes) && sh.lru.Len() > 1 {
		back := sh.lru.Back()
		ev := back.Value.(*cacheEntry)
		sh.lru.Remove(back)
		ev.elem = nil
		if sh.entries[ev.key] == ev {
			delete(sh.entries, ev.key)
		}
		sh.bytes -= ev.bytes
		sh.evictions++
	}
}

// planBytes approximates a resident plan's memory footprint from its
// kernel structure. The estimate only needs to be proportional — the
// byte bound is a budget, not an accounting ledger.
func planBytes(p *Plan) int64 {
	const entryOverhead = 512
	if p == nil || p.Kernel == nil {
		return entryOverhead
	}
	k := p.Kernel
	n := int64(len(k.SendTB)+len(k.RecvTB))*8 + int64(len(k.LinkPreds))*24
	for _, tb := range k.TBs {
		n += 96 + int64(len(tb.Slots))*56
	}
	if k.Graph != nil {
		n += int64(len(k.Graph.Tasks)) * 96
	}
	if p.Algo != nil {
		n += int64(len(p.Algo.Transfers)) * 40
	}
	return n + entryOverhead
}

// Configurer lets backend implementations outside the three built-ins
// opt into caching: the returned string must capture every compile-
// relevant configuration knob (equal strings ⇒ identical compilation
// behaviour), and ok=false opts out per call. The serve and chaos
// harnesses use it to keep instrumented wrapper backends cacheable.
type Configurer interface {
	CompileConfig() (cfg string, ok bool)
}

// fingerprint hashes everything compilation depends on. It returns
// ok=false for backend types it cannot describe, which callers treat as
// uncacheable rather than risking a stale plan.
func fingerprint(b Backend, req Request) ([sha256.Size]byte, bool) {
	if req.Algo == nil || req.Topo == nil {
		return [sha256.Size]byte{}, false
	}
	cfg, ok := backendConfig(b)
	if !ok {
		return [sha256.Size]byte{}, false
	}
	h := sha256.New()
	// Length-prefix the variable-length strings so (cfg, tuneHash)
	// pairs can never alias each other.
	writeInts(h, int64(len(cfg)))
	io.WriteString(h, cfg)
	// The dispatch-table generation that chose the plan is part of its
	// identity: a re-tuned table must never serve a stale cached plan.
	writeInts(h, int64(len(req.TuneHash)))
	io.WriteString(h, req.TuneHash)
	// The protocol tier is resolved before compilation (auto-selection
	// happens at request time), so it is part of the compile identity:
	// forced and auto-selected plans must never collide.
	writeInts(h, int64(req.Protocol))
	hashAlgorithm(h, req.Algo)
	hashTopology(h, req.Topo)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key, true
}

// backendConfig renders a backend's compile-relevant configuration. The
// three known backend types and Configurer implementations are
// cacheable; anything else (a test stub, a future stateful backend)
// compiles directly.
func backendConfig(b Backend) (string, bool) {
	switch bb := b.(type) {
	case *NCCL:
		return fmt.Sprintf("NCCL|ch=%d", bb.Channels), true
	case *MSCCL:
		return fmt.Sprintf("MSCCL|inst=%d", bb.Instances), true
	case *ResCCL:
		o := bb.Options
		return fmt.Sprintf("ResCCL|pol=%d|alloc=%d|mode=%d|chunk=%d|win=%d|skipv=%t|proto=%d",
			o.Policy, o.Alloc, o.Mode, o.ChunkBytes, o.WindowMB, o.SkipVerify, o.Protocol), true
	case Configurer:
		return bb.CompileConfig()
	default:
		return "", false
	}
}

func hashAlgorithm(h io.Writer, a *ir.Algorithm) {
	io.WriteString(h, a.Name)
	writeInts(h, int64(a.Op), int64(a.NRanks), int64(a.NChunks), int64(a.NChannels), int64(a.NWarps))
	writeInts(h, int64(len(a.Transfers)))
	for _, t := range a.Transfers {
		writeInts(h, int64(t.Src), int64(t.Dst), int64(t.Step), int64(t.Chunk), int64(t.Type))
	}
	writeInts(h, int64(len(a.StageBounds)))
	for _, s := range a.StageBounds {
		writeInts(h, int64(s))
	}
	writeInts(h, int64(len(a.Group)))
	for _, r := range a.Group {
		writeInts(h, int64(r))
	}
}

func hashTopology(h io.Writer, t *topo.Topology) {
	p := t.Profile
	io.WriteString(h, p.Name)
	writeFloats(h, p.NVLinkBW, p.NICBW, p.TBCapIntra, p.TBCapInter, p.Gamma)
	writeInts(h,
		int64(p.LatIntra), int64(p.LatInter), int64(p.LatCrossRack),
		int64(p.InterpCost), int64(p.KernelLoad),
		int64(t.NNodes), int64(t.GPUsPerNode), int64(t.NICsPerNode), int64(t.ServersPerRack))
	// Fabric tier: a flat, a clos and a rail topology of the same shape
	// compile to different plans (spine resources, rail striping), so
	// they must never share a fingerprint.
	rail := int64(0)
	if t.RailOptimized {
		rail = 1
	}
	writeInts(h, int64(t.NSpines), rail)
	writeFloats(h, t.SpineBW)
}

func writeInts(h io.Writer, vals ...int64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
}

func writeFloats(h io.Writer, vals ...float64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}
