package backend

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// Cache is a content-addressed compile cache: plans are keyed by a
// structural fingerprint of (backend configuration, algorithm, topology),
// so a buffer-size sweep compiles each plan once instead of once per
// point. Compilation is a pure function of that triple — the buffer and
// chunk sizes enter only at simulation time — which is what makes the
// key sound.
//
// The cache is safe for concurrent use. Concurrent requests for the same
// key are collapsed into a single compilation (the losers block until
// the winner finishes), so hit/miss counts are deterministic regardless
// of scheduling: misses == distinct keys requested.
//
// Compiled plans are shared by reference; Plan, its Kernel and its Graph
// are treated as immutable after compilation everywhere downstream (the
// simulator, the runtime and the trace analyzer only read them).
type Cache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	done chan struct{}
	plan *Plan
	err  error
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[[sha256.Size]byte]*cacheEntry)}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// HitRate returns the fraction of lookups served from the cache, 0 when
// the cache was never used.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Compile returns the cached plan for the request, compiling it on first
// use. Backends with configurations the fingerprint does not understand
// fall through to a direct, uncached compile.
func (c *Cache) Compile(b Backend, req Request) (*Plan, error) {
	plan, _, err := c.CompileNoted(b, req)
	return plan, err
}

// CompileNoted is Compile plus a hit report: it returns whether the plan
// was served from the cache, so callers can account cache effectiveness
// (and skip re-recording compile-stage spans) per lookup. Uncacheable
// requests report hit=false.
func (c *Cache) CompileNoted(b Backend, req Request) (*Plan, bool, error) {
	if c == nil {
		plan, err := b.Compile(req)
		return plan, false, err
	}
	key, ok := fingerprint(b, req)
	if !ok {
		plan, err := b.Compile(req)
		return plan, false, err
	}
	c.mu.Lock()
	e, hit := c.entries[key]
	if hit {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.plan, true, e.err
	}
	e = &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()
	e.plan, e.err = b.Compile(req)
	close(e.done)
	return e.plan, false, e.err
}

// fingerprint hashes everything compilation depends on. It returns
// ok=false for backend types it cannot describe, which callers treat as
// uncacheable rather than risking a stale plan.
func fingerprint(b Backend, req Request) ([sha256.Size]byte, bool) {
	if req.Algo == nil || req.Topo == nil {
		return [sha256.Size]byte{}, false
	}
	cfg, ok := backendConfig(b)
	if !ok {
		return [sha256.Size]byte{}, false
	}
	h := sha256.New()
	io.WriteString(h, cfg)
	// The protocol tier is resolved before compilation (auto-selection
	// happens at request time), so it is part of the compile identity:
	// forced and auto-selected plans must never collide.
	writeInts(h, int64(req.Protocol))
	hashAlgorithm(h, req.Algo)
	hashTopology(h, req.Topo)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key, true
}

// backendConfig renders a backend's compile-relevant configuration. Only
// the three known backend types are cacheable; anything else (a test
// stub, a future stateful backend) compiles directly.
func backendConfig(b Backend) (string, bool) {
	switch bb := b.(type) {
	case *NCCL:
		return fmt.Sprintf("NCCL|ch=%d", bb.Channels), true
	case *MSCCL:
		return fmt.Sprintf("MSCCL|inst=%d", bb.Instances), true
	case *ResCCL:
		o := bb.Options
		return fmt.Sprintf("ResCCL|pol=%d|alloc=%d|mode=%d|chunk=%d|win=%d|skipv=%t|proto=%d",
			o.Policy, o.Alloc, o.Mode, o.ChunkBytes, o.WindowMB, o.SkipVerify, o.Protocol), true
	default:
		return "", false
	}
}

func hashAlgorithm(h io.Writer, a *ir.Algorithm) {
	io.WriteString(h, a.Name)
	writeInts(h, int64(a.Op), int64(a.NRanks), int64(a.NChunks), int64(a.NChannels), int64(a.NWarps))
	writeInts(h, int64(len(a.Transfers)))
	for _, t := range a.Transfers {
		writeInts(h, int64(t.Src), int64(t.Dst), int64(t.Step), int64(t.Chunk), int64(t.Type))
	}
	writeInts(h, int64(len(a.StageBounds)))
	for _, s := range a.StageBounds {
		writeInts(h, int64(s))
	}
	writeInts(h, int64(len(a.Group)))
	for _, r := range a.Group {
		writeInts(h, int64(r))
	}
}

func hashTopology(h io.Writer, t *topo.Topology) {
	p := t.Profile
	io.WriteString(h, p.Name)
	writeFloats(h, p.NVLinkBW, p.NICBW, p.TBCapIntra, p.TBCapInter, p.Gamma)
	writeInts(h,
		int64(p.LatIntra), int64(p.LatInter), int64(p.LatCrossRack),
		int64(p.InterpCost), int64(p.KernelLoad),
		int64(t.NNodes), int64(t.GPUsPerNode), int64(t.NICsPerNode), int64(t.ServersPerRack))
}

func writeInts(h io.Writer, vals ...int64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
}

func writeFloats(h io.Writer, vals ...float64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}
