package backend

import (
	"context"
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/topo"
)

// NCCL emulates the vendor-standard library: it runs its own channelized
// ring algorithm for the requested operator (custom algorithms are not
// supported, matching real NCCL), allocates one send and one recv TB per
// connection per channel, executes lazily at algorithm level (micro-batch
// major) and interprets the plan at runtime.
//
// Per-channel rings are topology-aware, as in real NCCL: within a node,
// channel ch visits GPUs with a stride coprime to the node size (so
// different channels use disjoint NVLink pair edges where possible), and
// channel starting offsets stagger the node-boundary crossings across
// NICs.
type NCCL struct {
	// Channels is the number of parallel channels (Table 2 uses 4).
	Channels int
}

// NewNCCL returns an NCCL-like backend with the paper's default channel
// count.
func NewNCCL() *NCCL { return &NCCL{Channels: 4} }

// Name implements Backend.
func (n *NCCL) Name() string { return "NCCL" }

// ringOrders builds one ring permutation per channel for the topology.
// Within each node, channel ch follows a Walecki-style zigzag
// Hamiltonian path anchored at local index 2ch: zigzag paths with
// distinct anchors have (near-)disjoint directed NVLink edge sets, and
// their entry (anchor) and exit (anchor + gpn/2) locals land on
// different NICs across channels, so node-boundary crossings spread over
// all NICs — the balance real NCCL's topology search achieves.
func ringOrders(t *topo.Topology, nChannels int) expert.Rings {
	gpn := t.GPUsPerNode
	rings := make(expert.Rings, nChannels)
	for ch := 0; ch < nChannels; ch++ {
		anchor := (2 * ch) % gpn
		locals := zigzagPath(anchor, gpn)
		order := make([]int, 0, t.NRanks())
		for node := 0; node < t.NNodes; node++ {
			for _, l := range locals {
				order = append(order, node*gpn+l)
			}
		}
		rings[ch] = order
	}
	return rings
}

// zigzagPath returns the Hamiltonian path k, k+1, k−1, k+2, k−2, …
// (mod n) over the node's local indices.
func zigzagPath(k, n int) []int {
	out := make([]int, 0, n)
	for j := 0; j < n; j++ {
		var off int
		if j%2 == 1 {
			off = (j + 1) / 2
		} else {
			off = -j / 2
		}
		out = append(out, ((k+off)%n+n)%n)
	}
	return out
}

// Compile implements Backend. Only Algo.Op and Algo.NRanks of the
// request are honoured; the plan executes NCCL's own ring algorithm.
func (n *NCCL) Compile(ctx context.Context, req Request) (*Plan, error) {
	if req.Algo == nil || req.Topo == nil {
		return nil, fmt.Errorf("nccl: request needs algorithm metadata and topology")
	}
	if err := ctxCheck(ctx, "nccl", "algorithm construction"); err != nil {
		return nil, err
	}
	if !req.Protocol.Valid() {
		return nil, fmt.Errorf("nccl: undefined protocol tier %d", int(req.Protocol))
	}
	compileStart := time.Now()
	ch := n.Channels
	if ch < 1 {
		ch = 1
	}
	nRanks := req.Algo.NRanks
	if nRanks != req.Topo.NRanks() {
		return nil, fmt.Errorf("nccl: algorithm has %d ranks, topology %d", nRanks, req.Topo.NRanks())
	}
	group := req.Algo.Group
	var rings expert.Rings
	if group != nil {
		// Process-group communicator: ring over the group members in
		// order (topology search does not apply to sparse groups).
		nRanks = len(group)
	} else {
		rings = ringOrders(req.Topo, ch)
	}
	var (
		algo *ir.Algorithm
		err  error
	)
	switch req.Algo.Op {
	case ir.OpAllGather:
		algo, err = expert.ChannelizedRingAllGather(nRanks, ch, rings)
	case ir.OpAllReduce:
		algo, err = expert.ChannelizedRingAllReduce(nRanks, ch, rings)
	case ir.OpReduceScatter:
		algo, err = expert.ChannelizedRingReduceScatter(nRanks, ch, rings)
	case ir.OpBroadcast:
		algo, err = expert.ChannelizedRingBroadcast(nRanks, ch, rings)
	case ir.OpAllToAll:
		// Vendor libraries implement AllToAll as grouped point-to-point
		// sends; channel striping does not apply.
		algo, err = expert.DirectAllToAll(nRanks)
	default:
		return nil, fmt.Errorf("nccl: unsupported operator %v", req.Algo.Op)
	}
	if err != nil {
		return nil, err
	}
	if group != nil {
		algo, err = ir.Embed(algo, group, req.Topo.NRanks())
		if err != nil {
			return nil, err
		}
	}
	if err := ctxCheck(ctx, "nccl", "dependency analysis"); err != nil {
		return nil, err
	}
	g, err := dag.Build(algo, req.Topo)
	if err != nil {
		return nil, err
	}
	if err := ctxCheck(ctx, "nccl", "TB layout"); err != nil {
		return nil, err
	}
	// One (sendTB, recvTB) pair per connection per channel: partition
	// tasks by owning channel, then lay out connection TBs per channel.
	nCh := ch
	if algo.Op == ir.OpAllToAll {
		nCh = 1 // grouped p2p path: one channel
	}
	chunkBase := nRanks // chunk stripe size for ChannelOf
	perChannel := make([][]ir.TaskID, nCh)
	for t := range g.Tasks {
		c := 0
		if nCh > 1 {
			c = expert.ChannelOf(g.Tasks[t].Chunk, chunkBase)
		}
		perChannel[c] = append(perChannel[c], ir.TaskID(t))
	}
	var specs []tbSpec
	for c, tasks := range perChannel {
		specs = append(specs, connectionTBs(g, tasks, fmt.Sprintf("ch%d/", c))...)
	}
	k, err := buildKernel(algo.Name, g, specs, kernel.MBMajor, kernel.ModeInterpreted)
	if err != nil {
		return nil, err
	}
	k.MBBarrier = true // algorithm-level (lazy) execution
	k.Protocol = req.Protocol
	stages := []obs.Stage{{Name: "compile", Duration: time.Since(compileStart)}}
	return vet(&Plan{Backend: n.Name(), Algo: algo, Kernel: k, Stages: stages}, req.Topo)
}
