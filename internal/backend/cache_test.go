package backend

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

func cacheTestRequest(t *testing.T) Request {
	t.Helper()
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Algo: algo, Topo: topo.New(2, 4, topo.A100())}
}

// A cached Compile must return a plan deep-equal to a fresh compile, for
// all three backends, and the second lookup must be a pointer-identical
// hit.
func TestCacheMatchesFreshCompile(t *testing.T) {
	req := cacheTestRequest(t)
	for _, b := range []Backend{NewNCCL(), NewMSCCL(), NewResCCL()} {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			fresh, err := b.Compile(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			c := NewCache()
			first, err := c.Compile(context.Background(), b, req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.Kernel, first.Kernel) {
				t.Error("cached compile kernel differs from fresh compile")
			}
			if fresh.Backend != first.Backend {
				t.Errorf("backend label %q != %q", first.Backend, fresh.Backend)
			}
			second, err := c.Compile(context.Background(), b, req)
			if err != nil {
				t.Fatal(err)
			}
			if second != first {
				t.Error("second lookup should return the cached plan pointer")
			}
			st := c.Stats()
			if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
				t.Errorf("stats = %+v, want 1 miss / 1 hit / 1 entry", st)
			}
		})
	}
}

// Distinct algorithms, topologies and backend configurations must map to
// distinct cache entries.
func TestCacheKeyDiscriminates(t *testing.T) {
	req := cacheTestRequest(t)
	c := NewCache()
	base, err := c.Compile(context.Background(), NewMSCCL(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Different topology profile.
	other := req
	other.Topo = topo.New(2, 4, topo.V100())
	if p, err := c.Compile(context.Background(), NewMSCCL(), other); err != nil {
		t.Fatal(err)
	} else if p == base {
		t.Error("different profile must not share the cache entry")
	}

	// Structurally different algorithm (stage annotations stripped, as
	// the granularity ablation does).
	lazy := *req.Algo
	lazy.StageBounds = nil
	lazyReq := Request{Algo: &lazy, Topo: req.Topo}
	if p, err := c.Compile(context.Background(), NewMSCCL(), lazyReq); err != nil {
		t.Fatal(err)
	} else if p == base {
		t.Error("different stage bounds must not share the cache entry")
	}

	// Different backend configuration.
	if p, err := c.Compile(context.Background(), &MSCCL{Instances: 2}, req); err != nil {
		t.Fatal(err)
	} else if p == base {
		t.Error("different instance count must not share the cache entry")
	}

	if st := c.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 4 misses / 0 hits", st)
	}
}

// Two requests differing only in protocol tier must compile to distinct
// cache entries on every backend — a forced-LL plan and an auto plan
// never collide, even though the transfer set is identical.
func TestCacheKeyDiscriminatesProtocol(t *testing.T) {
	for _, b := range []Backend{NewNCCL(), NewMSCCL(), NewResCCL()} {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			c := NewCache()
			req := cacheTestRequest(t)
			auto, _, err := c.CompileNoted(context.Background(), b, req)
			if err != nil {
				t.Fatal(err)
			}
			forced := req
			forced.Protocol = ir.ProtoLL
			ll, hit, err := c.CompileNoted(context.Background(), b, forced)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Error("forced-LL request hit the auto entry")
			}
			if ll == auto {
				t.Error("forced-LL plan shares the auto plan's cache entry")
			}
			if ll.Kernel.Protocol != ir.ProtoLL || auto.Kernel.Protocol != ir.ProtoAuto {
				t.Errorf("kernel protocols = %s / %s, want LL / auto",
					ll.Kernel.Protocol, auto.Kernel.Protocol)
			}
			if st := c.Stats(); st.Misses != 2 {
				t.Errorf("stats = %+v, want 2 misses", st)
			}
			// Re-requesting each tier must hit its own entry.
			if p, hit, _ := c.CompileNoted(context.Background(), b, forced); !hit || p != ll {
				t.Error("second forced-LL request should hit the forced entry")
			}
			if p, hit, _ := c.CompileNoted(context.Background(), b, req); !hit || p != auto {
				t.Error("second auto request should hit the auto entry")
			}
		})
	}
}

// Concurrent requests for one key collapse into a single compilation, so
// miss counts stay deterministic under the parallel harness.
func TestCacheConcurrentSingleflight(t *testing.T) {
	req := cacheTestRequest(t)
	c := NewCache()
	b := NewResCCL()
	const n = 8
	plans := make([]*Plan, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Compile(context.Background(), b, req)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent lookups returned different plans")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("stats = %+v, want exactly 1 miss and %d hits", st, n-1)
	}
}

// A backend type the fingerprint does not understand must fall through
// to a direct compile instead of caching a potentially stale plan.
type opaqueBackend struct{ calls int }

func (o *opaqueBackend) Name() string { return "opaque" }
func (o *opaqueBackend) Compile(_ context.Context, req Request) (*Plan, error) {
	o.calls++
	return &Plan{Backend: "opaque", Algo: req.Algo}, nil
}

func TestCacheUnknownBackendUncached(t *testing.T) {
	req := cacheTestRequest(t)
	c := NewCache()
	ob := &opaqueBackend{}
	for i := 0; i < 3; i++ {
		if _, err := c.Compile(context.Background(), ob, req); err != nil {
			t.Fatal(err)
		}
	}
	if ob.calls != 3 {
		t.Errorf("opaque backend compiled %d times, want 3 (uncached)", ob.calls)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("uncacheable requests must not touch counters: %+v", st)
	}
}

// A nil cache degrades to direct compilation.
func TestNilCacheCompiles(t *testing.T) {
	req := cacheTestRequest(t)
	var c *Cache
	p, err := c.Compile(context.Background(), NewNCCL(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Kernel == nil {
		t.Fatal("nil cache must still compile")
	}
}

// Ensure ir.Transfer hashing covers every field: two algorithms whose
// transfers differ only in one field must get distinct keys.
func TestFingerprintTransferFields(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	mk := func(tr ir.Transfer) *ir.Algorithm {
		return &ir.Algorithm{Name: "x", Op: ir.OpAllGather, NRanks: 4, NChunks: 4,
			Transfers: []ir.Transfer{tr}}
	}
	base := ir.Transfer{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecv}
	variants := []ir.Transfer{
		{Src: 1, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecv},
		{Src: 0, Dst: 2, Step: 0, Chunk: 0, Type: ir.CommRecv},
		{Src: 0, Dst: 1, Step: 1, Chunk: 0, Type: ir.CommRecv},
		{Src: 0, Dst: 1, Step: 0, Chunk: 1, Type: ir.CommRecv},
		{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecvReduceCopy},
	}
	b := NewMSCCL()
	baseKey, ok := fingerprint(b, Request{Algo: mk(base), Topo: tp})
	if !ok {
		t.Fatal("fingerprint failed")
	}
	for i, v := range variants {
		k, ok := fingerprint(b, Request{Algo: mk(v), Topo: tp})
		if !ok {
			t.Fatal("fingerprint failed")
		}
		if k == baseKey {
			t.Errorf("variant %d collides with base key", i)
		}
	}
}
