package backend

import (
	"context"
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/synth"
	"github.com/resccl/resccl/internal/topo"
)

func hmAR(t *testing.T, nNodes, gpn int) *ir.Algorithm {
	t.Helper()
	a, err := expert.HMAllReduce(nNodes, gpn)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNCCLIgnoresCustomAlgorithm(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	plan, err := NewNCCL().Compile(context.Background(), Request{Algo: hmAR(t, 2, 8), Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algo.Name != "Ring-AllReduce" {
		t.Errorf("NCCL executed %q, want its own ring", plan.Algo.Name)
	}
	if plan.Kernel.Mode != kernel.ModeInterpreted {
		t.Error("NCCL must run interpreted")
	}
	if !plan.Kernel.MBBarrier {
		t.Error("NCCL must execute lazily (per-micro-batch barrier)")
	}
	// 4 channels × (1 send + 1 recv) per rank.
	if got := plan.Kernel.MaxTBsPerRank(); got != 8 {
		t.Errorf("NCCL TBs per GPU = %d, want 8", got)
	}
}

func TestNCCLRingsBalanceNICs(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	rings := ringOrders(tp, 4)
	// Every channel's node-boundary egress and ingress NICs must be
	// distinct across channels.
	egress := map[int]bool{}
	ingress := map[int]bool{}
	for _, ring := range rings {
		exit := ir.Rank(ring[7])  // last GPU of node 0 in ring order
		entry := ir.Rank(ring[8]) // first GPU of node 1
		if tp.Node(exit) != 0 || tp.Node(entry) != 1 {
			t.Fatalf("ring order does not cross nodes where expected: %v", ring)
		}
		if egress[tp.NIC(exit)] {
			t.Errorf("egress NIC %d reused across channels", tp.NIC(exit))
		}
		if ingress[tp.NIC(entry)] {
			t.Errorf("ingress NIC %d reused across channels", tp.NIC(entry))
		}
		egress[tp.NIC(exit)] = true
		ingress[tp.NIC(entry)] = true
	}
}

func TestNCCLZigzagDisjointEdges(t *testing.T) {
	tp := topo.New(1, 8, topo.A100())
	rings := ringOrders(tp, 4)
	seen := map[[2]int]int{}
	for ch, ring := range rings {
		for i := 0; i < 7; i++ { // within-node edges only
			e := [2]int{ring[i], ring[i+1]}
			if prev, dup := seen[e]; dup {
				t.Errorf("edge %v used by channels %d and %d", e, prev, ch)
			}
			seen[e] = ch
		}
	}
}

func TestMSCCLStageChannels(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	plan, err := NewMSCCL().Compile(context.Background(), Request{Algo: hmAR(t, 2, 8), Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	// Table 3 Topo2: 30 TBs per GPU for the expert AllReduce — the
	// intra stages duplicated onto two channels (2×14) plus the merged
	// inter channel (2).
	if got := plan.Kernel.MaxTBsPerRank(); got != 30 {
		t.Errorf("MSCCL TBs per GPU = %d, want 30 (Table 3 Topo2)", got)
	}
	if plan.Kernel.MBBarrier {
		t.Error("stage-level execution must pipeline micro-batches (no barrier)")
	}
	// The duplicated intra channels must appear in labels.
	hasCh1 := false
	for _, tb := range plan.Kernel.TBs {
		if strings.Contains(tb.Label, ".ch1/") {
			hasCh1 = true
			break
		}
	}
	if !hasCh1 {
		t.Error("expected manually added intra channels (.ch1 labels)")
	}
}

func TestMSCCLLazyForSynthesized(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	algo, err := synth.TACCLAllGather(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewMSCCL().Compile(context.Background(), Request{Algo: algo, Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Kernel.MBBarrier {
		t.Error("synthesized plans (no stages) must run lazily")
	}
	if plan.Algo != algo {
		t.Error("MSCCL must execute the provided algorithm")
	}
}

func TestResCCLKernelShape(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	r := NewResCCL()
	plan, err := r.Compile(context.Background(), Request{Algo: hmAR(t, 2, 8), Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel.Mode != kernel.ModeDirect {
		t.Error("ResCCL must generate direct kernels")
	}
	if plan.Kernel.MBBarrier {
		t.Error("task-level execution has no micro-batch barrier")
	}
	if got := plan.Kernel.MaxTBsPerRank(); got != 16 {
		t.Errorf("ResCCL TBs per GPU = %d, want 16 (Table 3 Topo2)", got)
	}
	full, err := r.CompileFull(context.Background(), Request{Algo: hmAR(t, 2, 8), Topo: tp})
	if err != nil {
		t.Fatal(err)
	}
	if full.Pipeline == nil || full.Assignment == nil {
		t.Error("CompileFull must expose pipeline and assignment")
	}
}

func TestTable3TBCounts(t *testing.T) {
	// The paper's Table 3 "# TB" column for the expert algorithms.
	want := map[[2]int][2]int{ // {nodes,gpn} -> {MSCCL, ResCCL}
		{2, 4}: {14, 8},
		{2, 8}: {30, 16},
		{4, 4}: {14, 8},
		{4, 8}: {30, 16},
	}
	for shape, counts := range want {
		tp := topo.New(shape[0], shape[1], topo.A100())
		algo := hmAR(t, shape[0], shape[1])
		ms, err := NewMSCCL().Compile(context.Background(), Request{Algo: algo, Topo: tp})
		if err != nil {
			t.Fatal(err)
		}
		if got := ms.Kernel.MaxTBsPerRank(); got != counts[0] {
			t.Errorf("%v MSCCL TBs = %d, want %d", shape, got, counts[0])
		}
		rs, err := NewResCCL().Compile(context.Background(), Request{Algo: algo, Topo: tp})
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Kernel.MaxTBsPerRank(); got != counts[1] {
			t.Errorf("%v ResCCL TBs = %d, want %d", shape, got, counts[1])
		}
	}
}

func TestRequestValidation(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	for _, b := range []Backend{NewNCCL(), NewMSCCL(), NewResCCL()} {
		if _, err := b.Compile(context.Background(), Request{}); err == nil {
			t.Errorf("%s: empty request should fail", b.Name())
		}
		if _, err := b.Compile(context.Background(), Request{Topo: tp}); err == nil {
			t.Errorf("%s: missing algorithm should fail", b.Name())
		}
	}
	// Rank mismatch.
	if _, err := NewNCCL().Compile(context.Background(), Request{Algo: hmAR(t, 2, 8), Topo: tp}); err == nil {
		t.Error("NCCL: rank/topology mismatch should fail")
	}
}
