// Package backend implements the three collective communication
// backends the paper compares:
//
//   - an NCCL-like backend: vendor-standard channelized ring algorithms,
//     connection-based TB allocation, algorithm-level (lazy) execution,
//     runtime interpreter;
//   - an MSCCL-like backend: executes custom algorithms; stage-level
//     execution with per-stage channels for expert algorithms carrying
//     stage annotations, algorithm-level execution for synthesizer
//     output; runtime interpreter;
//   - the ResCCL backend: HPDS primitive-level scheduling, state-based
//     TB allocation, directly generated lightweight kernels.
//
// All three produce the same kernel.Kernel representation, executed by
// the sim package under identical cost models, so differences in results
// are attributable to scheduling/allocation/runtime policy alone — the
// paper's experimental methodology.
package backend

import (
	"context"
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/topo"
)

// Request describes one collective to compile.
type Request struct {
	// Algo is the custom algorithm to execute. The NCCL backend ignores
	// it (vendor libraries run their own standard algorithms) and only
	// honours Algo.Op and Algo.NRanks.
	Algo *ir.Algorithm
	Topo *topo.Topology
	// Protocol is the transport protocol tier the plan should run under.
	// Compilation is size-independent, so callers that auto-select by
	// message size (SelectProtocol) resolve the tier before requesting a
	// plan; the tier is stamped on the kernel and enters the plan-cache
	// fingerprint, so forced and auto plans never collide. The zero
	// value (auto) behaves as Simple.
	Protocol ir.Protocol
	// TuneHash identifies the dispatch-table generation that selected
	// this plan (tune.Table.Hash), or "" for undispatched requests. It
	// enters the cache fingerprint so a re-tuned table never serves a
	// plan cached under an earlier generation.
	TuneHash string
}

// Plan is a compiled, executable collective.
type Plan struct {
	Backend string
	// Algo is the algorithm actually executed (the NCCL backend
	// substitutes its own).
	Algo   *ir.Algorithm
	Kernel *kernel.Kernel
	// Stages records the wall time of each compile phase for
	// observability (ResCCL reports its full pipeline; the baseline
	// backends report a single "compile" stage).
	Stages []obs.Stage
	// Vet is the always-on static-analysis verdict (the analyzer's
	// quick subset: structure, deadlock, pipeline invariants). Plans are
	// cached by reference, so the verdict rides along with the cached
	// plan and is never recomputed on a hit.
	Vet *analyze.Report
}

// vet runs the compile-time analysis gate on a freshly built plan. A
// plan that fails the quick subset would hang or corrupt a run, so
// compilation itself fails; the report is attached either way for
// callers that inspect warnings. The resource-efficiency budget lints
// (analyze.BudgetLints) ride along as warnings: an over-budget plan
// still runs correctly, so the compile gate admits it, but `-strict`
// tooling, the tune sweep and the replan gate act on the attached
// findings.
func vet(p *Plan, tp *topo.Topology) (*Plan, error) {
	report, err := analyze.Plan(p.Kernel, analyze.Options{Checks: analyze.CheckQuick})
	if err != nil {
		return nil, fmt.Errorf("backend %s: vet: %w", p.Backend, err)
	}
	if tp != nil {
		report.Attach(p.Kernel.Graph, analyze.BudgetLints(p.Kernel, tp, 0, 0, analyze.Budget{})...)
	}
	p.Vet = report
	if err := report.Err(); err != nil {
		return nil, fmt.Errorf("backend %s: compiled plan failed static analysis: %w", p.Backend, err)
	}
	return p, nil
}

// Backend compiles collectives into executable kernels.
//
// Compile is context-aware: backends poll ctx at phase boundaries
// (dependency analysis, scheduling, allocation, lowering), so a caller
// that cancels or whose deadline expires stops burning CPU at the next
// checkpoint instead of completing a plan nobody will read. A cancelled
// compile returns an error satisfying errors.Is(err, context.Canceled)
// or errors.Is(err, context.DeadlineExceeded).
type Backend interface {
	Name() string
	Compile(ctx context.Context, req Request) (*Plan, error)
}

// ctxCheck is the standard compile-phase checkpoint: it returns a typed
// cancellation error when ctx is done, nil otherwise. A nil ctx never
// cancels, so internal callers without a lifecycle can pass nil safely.
func ctxCheck(ctx context.Context, backendName, phase string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: compile cancelled before %s: %w", backendName, phase, err)
	}
	return nil
}

// tbSpec describes one thread block while building a baseline kernel.
type tbSpec struct {
	rank  ir.Rank
	label string
	prims []ir.Primitive
}

// buildKernel assembles a Kernel from TB specs. Slot order inside each
// spec must already be consistent with the single global task order
// (ascending TaskID), which guarantees deadlock freedom for MBMajor
// kernels.
func buildKernel(name string, g *dag.Graph, specs []tbSpec, order kernel.MBOrder, mode kernel.ExecMode) (*kernel.Kernel, error) {
	k := &kernel.Kernel{
		Name:      name,
		Graph:     g,
		Mode:      mode,
		SendTB:    make([]int, len(g.Tasks)),
		RecvTB:    make([]int, len(g.Tasks)),
		LinkPreds: make([][]ir.TaskID, len(g.Tasks)),
	}
	for i := range k.SendTB {
		k.SendTB[i] = -1
		k.RecvTB[i] = -1
	}
	for i, spec := range specs {
		tb := &kernel.TBProgram{ID: i, Rank: spec.rank, Order: order, Label: spec.label}
		tb.Slots = append(tb.Slots, spec.prims...)
		k.TBs = append(k.TBs, tb)
		for _, p := range spec.prims {
			if p.Kind == ir.PrimSend {
				k.SendTB[p.Task.ID] = i
			} else {
				k.RecvTB[p.Task.ID] = i
			}
		}
	}
	if err := kernel.Validate(k); err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	return k, nil
}

// connKey orders connections deterministically.
func connLess(a, b topo.Connection) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// connectionTBs builds the classic connection-based TB layout: one send
// TB and one recv TB per directed connection, covering the given tasks
// (which must be in ascending TaskID order). The labelPrefix
// distinguishes channels/stages.
func connectionTBs(g *dag.Graph, tasks []ir.TaskID, labelPrefix string) []tbSpec {
	type connSide struct {
		conn topo.Connection
		side ir.PrimKind
	}
	prims := make(map[topo.Connection][2][]ir.Primitive)
	conns := make([]topo.Connection, 0)
	for _, t := range tasks {
		task := g.Tasks[t]
		conn := topo.Connection{Src: task.Src, Dst: task.Dst}
		entry, ok := prims[conn]
		if !ok {
			conns = append(conns, conn)
		}
		send, recv := task.Primitives()
		entry[0] = append(entry[0], send)
		entry[1] = append(entry[1], recv)
		prims[conn] = entry
	}
	sort.Slice(conns, func(i, j int) bool { return connLess(conns[i], conns[j]) })
	specs := make([]tbSpec, 0, 2*len(conns))
	for _, conn := range conns {
		entry := prims[conn]
		specs = append(specs,
			tbSpec{rank: conn.Src, label: labelPrefix + conn.String() + "/send", prims: entry[0]},
			tbSpec{rank: conn.Dst, label: labelPrefix + conn.String() + "/recv", prims: entry[1]},
		)
	}
	return specs
}
