package backend

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/topo"
)

// MSCCL emulates Microsoft's MSCCL runtime (which reuses the NCCL
// backend underneath): it executes custom algorithms with
// connection-based TB allocation and a runtime interpreter.
//
// Expert algorithms carrying stage annotations run at stage level
// (§2.1): every stage gets its own communication channel — its own set
// of per-connection TBs — so stages pipeline across micro-batches at
// the cost of extra, mostly idle thread blocks. Consecutive stages that
// use exactly the same connection set share one channel, as an expert
// would write in MSCCLang. Synthesizer output (no stage annotations)
// runs lazily at algorithm level.
type MSCCL struct {
	// Instances replicates algorithm-level (synthesized) plans across
	// parallel channel instances, splitting chunks between them — the
	// `instances` mechanism of MSCCL XML plans. Table 2's CCL
	// configuration uses 4. Expert plans define their own channels via
	// stages and are not replicated.
	Instances int
}

// NewMSCCL returns an MSCCL-like backend with the paper's default
// instance count.
func NewMSCCL() *MSCCL { return &MSCCL{Instances: 4} }

// Name implements Backend.
func (m *MSCCL) Name() string { return "MSCCL" }

// Compile implements Backend.
func (m *MSCCL) Compile(ctx context.Context, req Request) (*Plan, error) {
	if req.Algo == nil || req.Topo == nil {
		return nil, fmt.Errorf("msccl: request needs an algorithm and topology")
	}
	if !req.Protocol.Valid() {
		return nil, fmt.Errorf("msccl: undefined protocol tier %d", int(req.Protocol))
	}
	if err := ctxCheck(ctx, "msccl", "dependency analysis"); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := dag.Build(req.Algo, req.Topo)
	if err != nil {
		return nil, err
	}
	if err := ctxCheck(ctx, "msccl", "TB layout"); err != nil {
		return nil, err
	}
	var specs []tbSpec
	stageLevel := req.Algo.NStages() > 1
	if stageLevel {
		specs = m.stageLevelTBs(g)
	} else {
		// Algorithm-level execution: replicate the plan across channel
		// instances, each owning a chunk stripe with its own
		// per-connection TBs.
		inst := m.Instances
		if inst < 1 {
			inst = 1
		}
		if inst > req.Algo.NChunks {
			inst = req.Algo.NChunks
		}
		perInst := make([][]ir.TaskID, inst)
		for t := range g.Tasks {
			i := int(g.Tasks[t].Chunk) % inst
			perInst[i] = append(perInst[i], ir.TaskID(t))
		}
		for i, tasks := range perInst {
			if len(tasks) == 0 {
				continue
			}
			specs = append(specs, connectionTBs(g, tasks, fmt.Sprintf("inst%d/", i))...)
		}
	}
	k, err := buildKernel(req.Algo.Name, g, specs, kernel.MBMajor, kernel.ModeInterpreted)
	if err != nil {
		return nil, err
	}
	// Synthesizer output has no stage annotations and runs lazily at
	// algorithm level (§2.1): one pass per micro-batch.
	k.MBBarrier = !stageLevel
	k.Protocol = req.Protocol
	stages := []obs.Stage{{Name: "compile", Duration: time.Since(start)}}
	return vet(&Plan{Backend: m.Name(), Algo: req.Algo, Kernel: k, Stages: stages}, req.Topo)
}

// stageLevelTBs partitions tasks into stage groups (consecutive stages
// with identical connection sets merged into one channel) and allocates
// connection TBs per group.
func (m *MSCCL) stageLevelTBs(g *dag.Graph) []tbSpec {
	algo := g.Algo
	nStages := algo.NStages()
	stageTasks := make([][]ir.TaskID, nStages)
	stageConns := make([]map[topo.Connection]struct{}, nStages)
	for i := range stageConns {
		stageConns[i] = make(map[topo.Connection]struct{})
	}
	for t := range g.Tasks {
		task := g.Tasks[t]
		s := algo.StageOf(task.Step)
		stageTasks[s] = append(stageTasks[s], ir.TaskID(t))
		stageConns[s][topo.Connection{Src: task.Src, Dst: task.Dst}] = struct{}{}
	}
	sameConns := func(a, b map[topo.Connection]struct{}) bool {
		if len(a) != len(b) {
			return false
		}
		for c := range a {
			if _, ok := b[c]; !ok {
				return false
			}
		}
		return true
	}
	var specs []tbSpec
	group := 0
	for s := 0; s < nStages; {
		// Extend the group over consecutive stages with identical
		// connection sets.
		tasks := append([]ir.TaskID(nil), stageTasks[s]...)
		e := s + 1
		for e < nStages && sameConns(stageConns[s], stageConns[e]) {
			tasks = append(tasks, stageTasks[e]...)
			e++
		}
		sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
		// MSCCLang experts boost purely intra-node stages with an extra
		// manually specified channel (§2.2): the stage's chunks are
		// split across two channels, doubling its TB footprint. The
		// extra TBs idle whenever their half of the chunks stalls and
		// contend with the first channel's TBs for the same NVLink
		// pairs — the Fig. 2 behaviour.
		if intraOnly(g, stageConns[s]) {
			var even, odd []ir.TaskID
			for _, t := range tasks {
				if g.Tasks[t].Chunk%2 == 0 {
					even = append(even, t)
				} else {
					odd = append(odd, t)
				}
			}
			if len(even) > 0 && len(odd) > 0 {
				specs = append(specs, connectionTBs(g, even, fmt.Sprintf("stage%d.ch0/", group))...)
				specs = append(specs, connectionTBs(g, odd, fmt.Sprintf("stage%d.ch1/", group))...)
				group++
				s = e
				continue
			}
		}
		specs = append(specs, connectionTBs(g, tasks, fmt.Sprintf("stage%d/", group))...)
		group++
		s = e
	}
	return specs
}

// intraOnly reports whether every connection in the set stays inside one
// node.
func intraOnly(g *dag.Graph, conns map[topo.Connection]struct{}) bool {
	for c := range conns {
		if !g.Topo.SameNode(c.Src, c.Dst) {
			return false
		}
	}
	return len(conns) > 0
}
