package backend

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/topo"
)

// reqN builds a distinct cacheable request: a ring AllReduce over n
// ranks on a single-node topology of n GPUs.
func reqN(t *testing.T, n int) Request {
	t.Helper()
	algo, err := expert.RingAllReduce(n)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Algo: algo, Topo: topo.New(1, n, topo.A100())}
}

// TestCompileCancelledAllBackends proves every backend observes a
// cancelled context and returns a typed cancellation error instead of a
// plan.
func TestCompileCancelledAllBackends(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := reqN(t, 4)
	for _, b := range []Backend{NewNCCL(), NewMSCCL(), NewResCCL()} {
		plan, err := b.Compile(ctx, req)
		if plan != nil || err == nil {
			t.Fatalf("%s: cancelled compile returned plan=%v err=%v", b.Name(), plan, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not unwrap to context.Canceled", b.Name(), err)
		}
	}
}

// TestCompileDeadlineExceeded proves an expired deadline surfaces as
// context.DeadlineExceeded through the compile pipeline.
func TestCompileDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, b := range []Backend{NewNCCL(), NewMSCCL(), NewResCCL()} {
		_, err := b.Compile(ctx, reqN(t, 4))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: error %v does not unwrap to context.DeadlineExceeded", b.Name(), err)
		}
	}
}

// TestCacheCancelledCallerUncachedPath proves the uncached fall-through
// also honours cancellation.
func TestCacheCancelledCallerUncachedPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCache()
	if _, err := c.Compile(ctx, NewResCCL(), reqN(t, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cached compile with cancelled ctx: %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled compile left %d resident entries, want 0", st.Entries)
	}
}

// gatedBackend is a cacheable backend whose compile blocks until
// released, so tests can hold a singleflight open deterministically.
type gatedBackend struct {
	inner   Backend
	started chan struct{} // receives one token per compile entry
	release chan struct{} // closed/fed to let compiles finish
}

func newGatedBackend() *gatedBackend {
	return &gatedBackend{
		inner:   NewResCCL(),
		started: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
}

func (g *gatedBackend) Name() string { return "gated" }

// CompileConfig opts the gate into cache admission (backend.Configurer).
func (g *gatedBackend) CompileConfig() (string, bool) { return "gated", true }

func (g *gatedBackend) Compile(ctx context.Context, req Request) (*Plan, error) {
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Compile(ctx, req)
}

func waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightCancelledLeader is the satellite contract: a cancelled
// singleflight leader must neither cache a partial plan nor fail waiters
// that still have budget. The follower must receive the finished plan,
// and the plan must land in the cache.
func TestSingleflightCancelledLeader(t *testing.T) {
	gb := newGatedBackend()
	c := NewCache()
	req := reqN(t, 4)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.CompileNoted(leaderCtx, gb, req)
		leaderErr <- err
	}()
	<-gb.started // compile is running

	type res struct {
		plan *Plan
		hit  bool
		err  error
	}
	followerRes := make(chan res, 1)
	go func() {
		p, hit, err := c.CompileNoted(context.Background(), gb, req)
		followerRes <- res{p, hit, err}
	}()
	// The follower joins the flight as a hit; wait until it is counted.
	waitFor(t, "follower to join the flight", func() bool { return c.Stats().Hits == 1 })

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}

	// The leader's cancellation must not have cancelled the follower's
	// compile: releasing the gate must produce a real plan.
	close(gb.release)
	r := <-followerRes
	if r.err != nil {
		t.Fatalf("follower failed after leader cancel: %v", r.err)
	}
	if !r.hit || r.plan == nil || r.plan.Kernel == nil {
		t.Fatalf("follower got hit=%v plan=%v, want joined-flight plan", r.hit, r.plan)
	}

	// The completed plan must be cached, not poisoned by the dead leader.
	st := c.Stats()
	if st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("stats after cancelled-leader flight: %+v, want 1 entry / 1 miss", st)
	}
	again, hit, err := c.CompileNoted(context.Background(), gb, req)
	if err != nil || !hit || again != r.plan {
		t.Fatalf("re-lookup got (plan=%p hit=%v err=%v), want cached %p", again, hit, err, r.plan)
	}
}

// TestSingleflightAbandonedFlight proves that when every party cancels,
// the compile itself is cancelled, nothing is cached, and the next
// request recompiles successfully.
func TestSingleflightAbandonedFlight(t *testing.T) {
	gb := newGatedBackend()
	c := NewCache()
	req := reqN(t, 4)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.CompileNoted(ctx, gb, req)
		errc <- err
	}()
	<-gb.started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned leader returned %v, want context.Canceled", err)
	}
	// The abandoned flight's compile context is cancelled; the gated
	// backend observes it and exits without a plan. Nothing may be
	// cached.
	waitFor(t, "abandoned flight to settle", func() bool { return c.Stats().Entries == 0 })

	// A fresh request recompiles from scratch and succeeds.
	close(gb.release)
	plan, hit, err := c.CompileNoted(context.Background(), gb, req)
	<-gb.started // the retry re-entered the backend
	if err != nil || hit || plan == nil {
		t.Fatalf("recompile after abandonment: plan=%v hit=%v err=%v", plan, hit, err)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats after abandonment+recompile: %+v, want 2 misses / 1 entry", st)
	}
}

// TestCacheEntryBoundEviction proves the LRU entry bound holds and
// evicted keys recompile as misses.
func TestCacheEntryBoundEviction(t *testing.T) {
	c := NewCacheWith(CacheConfig{MaxEntries: 2, Shards: 1})
	b := NewResCCL()
	reqs := []Request{reqN(t, 2), reqN(t, 4), reqN(t, 8)}
	for _, r := range reqs {
		if _, err := c.Compile(context.Background(), b, r); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts with bound 2: %+v, want 2 entries / 1 eviction", st)
	}
	// The oldest request was evicted: requesting it again is a miss.
	if _, hit, err := c.CompileNoted(context.Background(), b, reqs[0]); err != nil || hit {
		t.Fatalf("evicted key served hit=%v err=%v, want recompile", hit, err)
	}
	// The most recent request is still resident.
	if _, hit, err := c.CompileNoted(context.Background(), b, reqs[2]); err != nil || !hit {
		t.Fatalf("resident key served hit=%v err=%v, want hit", hit, err)
	}
}

// TestCacheByteBoundEviction proves the byte bound evicts older plans
// while always keeping the newest resident.
func TestCacheByteBoundEviction(t *testing.T) {
	c := NewCacheWith(CacheConfig{MaxBytes: 1, Shards: 1})
	b := NewResCCL()
	for _, r := range []Request{reqN(t, 2), reqN(t, 4)} {
		if _, err := c.Compile(context.Background(), b, r); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("byte-bound cache: %+v, want 1 entry / 1 eviction", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("resident bytes %d, want > 0", st.Bytes)
	}
}

// TestFingerprintFabricTiers pins the collision fix: flat, clos and rail
// fabrics of the same shape must have distinct plan-cache fingerprints.
func TestFingerprintFabricTiers(t *testing.T) {
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := topo.A100()
	tps := []*topo.Topology{
		topo.New(2, 4, prof),
		topo.NewClos(2, 4, prof, 2),
		topo.NewRail(2, 4, prof, 2),
	}
	seen := make(map[[32]byte]int)
	for i, tp := range tps {
		key, ok := fingerprint(NewResCCL(), Request{Algo: algo, Topo: tp})
		if !ok {
			t.Fatalf("topology %d not fingerprintable", i)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("fabric %d and %d share a fingerprint (cache collision)", prev, i)
		}
		seen[key] = i
	}
}
