package backend

import (
	"context"
	"fmt"

	"github.com/resccl/resccl/internal/core"
	"github.com/resccl/resccl/internal/ir"
)

// ResCCL is the paper's backend: HPDS primitive-level scheduling,
// state-based flexible TB allocation, and directly generated lightweight
// kernels (no runtime interpreter).
type ResCCL struct {
	// Options tune the compiler pipeline; the zero value is the paper's
	// default configuration.
	Options core.Options
}

// NewResCCL returns a ResCCL backend with default options.
func NewResCCL() *ResCCL { return &ResCCL{} }

// Name implements Backend.
func (r *ResCCL) Name() string { return "ResCCL" }

// Compile implements Backend. The full sched→talloc→kernel pipeline
// checks ctx at each phase boundary (core.Compile), so cancellation
// stops the pipeline at the next checkpoint.
func (r *ResCCL) Compile(ctx context.Context, req Request) (*Plan, error) {
	if req.Algo == nil || req.Topo == nil {
		return nil, fmt.Errorf("resccl: request needs an algorithm and topology")
	}
	c, err := core.Compile(ctx, req.Algo, req.Topo, r.options(req))
	if err != nil {
		return nil, err
	}
	return vet(&Plan{Backend: r.Name(), Algo: req.Algo, Kernel: c.Kernel, Stages: c.Phases.Stages()}, req.Topo)
}

// options overlays the request's protocol tier (when forced) onto the
// backend's configured options.
func (r *ResCCL) options(req Request) core.Options {
	opts := r.Options
	if req.Protocol != ir.ProtoAuto {
		opts.Protocol = req.Protocol
	}
	return opts
}

// CompileFull exposes the full compilation artifacts (pipeline,
// assignment, phase timings) for experiments that inspect more than the
// kernel.
func (r *ResCCL) CompileFull(ctx context.Context, req Request) (*core.Compiled, error) {
	if req.Algo == nil || req.Topo == nil {
		return nil, fmt.Errorf("resccl: request needs an algorithm and topology")
	}
	return core.Compile(ctx, req.Algo, req.Topo, r.options(req))
}
