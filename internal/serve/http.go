package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// StatusClientClosedRequest is the nginx-convention status for requests
// whose client went away before a response was produced. Nothing
// receives the body, but access logs distinguish it from server faults.
const StatusClientClosedRequest = 499

// maxBodyBytes bounds request bodies so a tenant cannot exhaust memory
// with one oversized POST.
const maxBodyBytes = 1 << 20

// retryAfterSeconds is the backoff hint attached to shed responses.
const retryAfterSeconds = 1

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Handler builds the service's HTTP mux:
//
//	POST /v1/compile   CompileRequest  → CompileResponse
//	POST /v1/simulate  SimulateRequest → SimulateResponse
//	POST /v1/analyze   AnalyzeRequest  → AnalyzeResponse
//	GET  /healthz      liveness (200 while the process serves)
//	GET  /readyz       readiness (503 once draining)
//	GET  /metricsz     deterministic JSON metrics snapshot
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		var req CompileRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Compile(r.Context(), &req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req SimulateRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Simulate(r.Context(), &req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req AnalyzeRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Analyze(r.Context(), &req)
		respond(w, resp, err)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func respond(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		status, kind := classifyHTTP(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		}
		writeError(w, status, kind, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if encErr := json.NewEncoder(w).Encode(resp); encErr != nil {
		// Headers are out; nothing more to do than drop the connection.
		return
	}
}

// classifyHTTP maps service errors to HTTP status codes: shed → 429
// with Retry-After, draining → 503 with Retry-After, deadline → 504,
// client-gone → 499, malformed → 400, the rest → 500.
func classifyHTTP(err error) (status int, kind string) {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "cancelled"
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest, "invalid"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Kind: kind})
}
