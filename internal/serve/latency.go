package serve

import (
	"sort"
	"sync"
)

// latWindow is a bounded sliding window of request latencies (in
// milliseconds). It keeps the most recent cap samples; percentile
// queries sort a copy, so recording stays O(1) on the hot path.
type latWindow struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	count int64
}

// defaultLatWindow is the per-tenant sample budget. Large enough for a
// stable p99, small enough that a flood of tenants stays bounded.
const defaultLatWindow = 512

func newLatWindow(capacity int) *latWindow {
	if capacity <= 0 {
		capacity = defaultLatWindow
	}
	return &latWindow{buf: make([]float64, 0, capacity)}
}

func (w *latWindow) record(ms float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.count++
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, ms)
		return
	}
	w.full = true
	w.buf[w.next] = ms
	w.next = (w.next + 1) % len(w.buf)
}

// percentiles returns p50/p95/p99 over the current window using the
// nearest-rank method, plus the number of samples observed in total.
// All zeros when no sample has been recorded.
func (w *latWindow) percentiles() (p50, p95, p99 float64, n int64) {
	w.mu.Lock()
	samples := append([]float64(nil), w.buf...)
	n = w.count
	w.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0, 0, n
	}
	sort.Float64s(samples)
	rank := func(p float64) float64 {
		i := int(p*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return rank(0.50), rank(0.95), rank(0.99), n
}
