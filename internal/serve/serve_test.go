package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/resccl/resccl/internal/backend"
)

// gate wraps a backend so its compiles block until released, while
// still honouring cancellation — the deterministic stand-in for a slow
// compile under load.
type gate struct {
	inner   backend.Backend
	entered chan struct{} // one token per compile entry
	release chan struct{} // closed to let every compile finish
}

func newGate() *gate {
	return &gate{
		entered: make(chan struct{}, 128),
		release: make(chan struct{}),
	}
}

// wrap is the Config.WrapBackend hook.
func (g *gate) wrap(b backend.Backend) backend.Backend {
	gg := *g
	gg.inner = b
	return &gg
}

func (g *gate) Name() string { return "gated-" + g.inner.Name() }

// CompileConfig keeps gated plans cacheable, keyed by the inner
// backend (backend.Configurer).
func (g *gate) CompileConfig() (string, bool) { return "gated:" + g.inner.Name(), true }

func (g *gate) Compile(ctx context.Context, req backend.Request) (*backend.Plan, error) {
	g.entered <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Compile(ctx, req)
}

func compileReq(tenant string) *CompileRequest {
	return &CompileRequest{
		Tenant:      tenant,
		Algorithm:   "ring-allreduce",
		Nodes:       1,
		GPUsPerNode: 4,
	}
}

func waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkGoroutines fails the test if the goroutine count does not settle
// back near its baseline — the leak detector for the request path.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCompileBasic(t *testing.T) {
	s := New(Config{})
	resp, err := s.Compile(context.Background(), compileReq("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Backend != "ResCCL" || resp.NTBs <= 0 || !resp.VetClean || resp.CacheHit {
		t.Fatalf("unexpected compile response: %+v", resp)
	}
	again, err := s.Compile(context.Background(), compileReq("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("second identical compile missed the cache: %+v", again)
	}
	m := s.Metrics()
	if got := m.Counter("serve.completed"); got != 2 {
		t.Fatalf("serve.completed = %d, want 2", got)
	}
	if got := m.Counter("serve.tenant.acme.requests"); got != 2 {
		t.Fatalf("tenant requests = %d, want 2", got)
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss", st)
	}
}

func TestSimulateAndAnalyze(t *testing.T) {
	s := New(Config{})
	sres, err := s.Simulate(context.Background(), &SimulateRequest{CompileRequest: *compileReq("")})
	if err != nil {
		t.Fatal(err)
	}
	if sres.CompletionUS <= 0 || sres.AlgoBWGBs <= 0 || sres.Events <= 0 || sres.MicroBatches <= 0 {
		t.Fatalf("degenerate simulate response: %+v", sres)
	}
	ares, err := s.Analyze(context.Background(), &AnalyzeRequest{CompileRequest: *compileReq("")})
	if err != nil {
		t.Fatal(err)
	}
	if !ares.Clean || ares.Errors != 0 {
		t.Fatalf("expert plan analyzed dirty: %+v", ares)
	}
}

func TestInvalidRequests(t *testing.T) {
	s := New(Config{})
	bad := []*CompileRequest{
		{Algorithm: "", Nodes: 1, GPUsPerNode: 4},
		{Algorithm: "no-such-algo", Nodes: 1, GPUsPerNode: 4},
		{Algorithm: "ring-allreduce", Nodes: 0, GPUsPerNode: 4},
		{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4, Backend: "gloo"},
		{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4, Fabric: "torus"},
		{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4, Profile: "tpu"},
		{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4, Protocol: "warp"},
		{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4, DeadlineMS: -1},
	}
	for i, req := range bad {
		if _, err := s.Compile(context.Background(), req); !errors.Is(err, ErrInvalid) {
			t.Errorf("bad request %d returned %v, want ErrInvalid", i, err)
		}
	}
	if got := s.Metrics().Counter("serve.invalid"); got != int64(len(bad)) {
		t.Fatalf("serve.invalid = %d, want %d", got, len(bad))
	}
}

func TestTenantQuota(t *testing.T) {
	g := newGate()
	s := New(Config{Workers: 1, TenantQuota: 1, QueueBudget: -1, WrapBackend: g.wrap})

	first := make(chan error, 1)
	go func() {
		_, err := s.Compile(context.Background(), compileReq("acme"))
		first <- err
	}()
	<-g.entered // acme's request is compiling

	// The same tenant's second request exceeds its quota of 1.
	if _, err := s.Compile(context.Background(), compileReq("acme")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota request returned %v, want ErrQuotaExceeded", err)
	}
	// A different tenant is admitted and queues for the busy worker.
	other := make(chan error, 1)
	go func() {
		_, err := s.Compile(context.Background(), compileReq("globex"))
		other <- err
	}()
	waitFor(t, "globex to queue", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.waiting == 1
	})

	close(g.release)
	if err := <-first; err != nil {
		t.Fatalf("acme request failed: %v", err)
	}
	if err := <-other; err != nil {
		t.Fatalf("globex request failed: %v", err)
	}
	if got := s.Metrics().Counter("serve.shed.quota"); got != 1 {
		t.Fatalf("serve.shed.quota = %d, want 1", got)
	}
}

func TestQueueFullOverload(t *testing.T) {
	g := newGate()
	s := New(Config{Workers: 1, MaxQueue: 1, QueueBudget: -1, WrapBackend: g.wrap})

	running := make(chan error, 1)
	go func() {
		_, err := s.Compile(context.Background(), compileReq("a"))
		running <- err
	}()
	<-g.entered

	queued := make(chan error, 1)
	go func() {
		_, err := s.Compile(context.Background(), compileReq("b"))
		queued <- err
	}()
	waitFor(t, "b to queue", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.waiting == 1
	})

	// The queue is full: the third arrival sheds immediately.
	if _, err := s.Compile(context.Background(), compileReq("c")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third request returned %v, want ErrOverloaded", err)
	}

	close(g.release)
	for _, ch := range []chan error{running, queued} {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().Counter("serve.shed.overloaded"); got != 1 {
		t.Fatalf("serve.shed.overloaded = %d, want 1", got)
	}
}

func TestQueueBudgetShed(t *testing.T) {
	g := newGate()
	s := New(Config{Workers: 1, QueueBudget: 20 * time.Millisecond, WrapBackend: g.wrap})

	done := make(chan error, 1)
	go func() {
		_, err := s.Compile(context.Background(), compileReq("a"))
		done <- err
	}()
	<-g.entered

	// The second request cannot reach a worker within the budget.
	if _, err := s.Compile(context.Background(), compileReq("b")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("budget-expired request returned %v, want ErrOverloaded", err)
	}

	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRequestDeadline(t *testing.T) {
	g := newGate() // never released: the compile hangs until its deadline
	s := New(Config{WrapBackend: g.wrap})
	req := compileReq("t")
	req.DeadlineMS = 20
	_, err := s.Compile(context.Background(), req)
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-capped request returned %v, want deadline exceeded", err)
	}
	if got := s.Metrics().Counter("serve.deadline_exceeded"); got != 1 {
		t.Fatalf("serve.deadline_exceeded = %d, want 1", got)
	}
}

func TestCallerCancelMidCompile(t *testing.T) {
	g := newGate()
	defer close(g.release)
	s := New(Config{WrapBackend: g.wrap})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Compile(ctx, compileReq("t"))
		done <- err
	}()
	<-g.entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}
	if got := s.Metrics().Counter("serve.cancelled"); got != 1 {
		t.Fatalf("serve.cancelled = %d, want 1", got)
	}
	waitFor(t, "in-flight to settle", func() bool { return s.InFlight() == 0 })
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Config{})
	if !s.Ready() {
		t.Fatal("fresh service not ready")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("drained service still ready")
	}
	if _, err := s.Compile(context.Background(), compileReq("t")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request returned %v, want ErrDraining", err)
	}
	if got := s.Metrics().Counter("serve.shed.draining"); got != 1 {
		t.Fatalf("serve.shed.draining = %d, want 1", got)
	}
}

// TestDrainUnderLoad is the satellite contract: drain with both running
// and queued requests in flight must hard-cancel everything after the
// drain deadline, unwind cleanly, and leak nothing.
func TestDrainUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	g := newGate() // never released: requests only finish via hard cancel
	s := New(Config{Workers: 2, MaxQueue: 8, QueueBudget: -1, WrapBackend: g.wrap})

	const n = 6 // 2 running + 4 queued
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		// Distinct rank counts so the shared cache cannot coalesce the
		// requests into one singleflight — each occupies its own worker.
		req := compileReq(fmt.Sprintf("t%d", i))
		req.GPUsPerNode = 2 + i
		go func() {
			_, err := s.Compile(context.Background(), req)
			errs <- err
		}()
	}
	<-g.entered
	<-g.entered // both workers busy
	waitFor(t, "the rest to queue", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.waiting == n-2
	})

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}

	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Errorf("in-flight request %d returned %v, want context.Canceled", i, err)
		}
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", got)
	}
	if _, err := s.Compile(context.Background(), compileReq("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request returned %v, want ErrDraining", err)
	}
	checkGoroutines(t, before)
}

// TestConcurrentMixedTenants storms the service with every endpoint and
// verifies the success-or-typed-error contract under -race.
func TestConcurrentMixedTenants(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 4, MaxQueue: 4, QueueBudget: 50 * time.Millisecond, TenantQuota: 4})

	shapes := []CompileRequest{
		{Algorithm: "ring-allreduce", Nodes: 1, GPUsPerNode: 4},
		{Algorithm: "ring-allgather", Nodes: 1, GPUsPerNode: 8},
		{Algorithm: "hm-allreduce", Nodes: 2, GPUsPerNode: 2, Fabric: "clos"},
		{Algorithm: "hm-allgather", Nodes: 2, GPUsPerNode: 4, Fabric: "rail", Backend: "msccl"},
		{Algorithm: "tree-allreduce", Nodes: 1, GPUsPerNode: 8, Backend: "nccl"},
	}
	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := shapes[i%len(shapes)]
			req.Tenant = fmt.Sprintf("t%d", i%3)
			var err error
			switch i % 3 {
			case 0:
				_, err = s.Compile(context.Background(), &req)
			case 1:
				_, err = s.Simulate(context.Background(), &SimulateRequest{CompileRequest: req, BufferBytes: 1 << 20})
			default:
				_, err = s.Analyze(context.Background(), &AnalyzeRequest{CompileRequest: req})
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()

	completed := 0
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrQuotaExceeded),
			errors.Is(err, context.DeadlineExceeded):
		default:
			t.Errorf("request %d returned untyped error: %v", i, err)
		}
	}
	if completed == 0 {
		t.Fatal("no request completed")
	}
	m := s.Metrics()
	if got := m.Counter("serve.completed"); got != int64(completed) {
		t.Fatalf("serve.completed = %d, observed %d successes", got, completed)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkGoroutines(t, before)
}

func TestLatencyWindow(t *testing.T) {
	w := newLatWindow(100)
	for i := 1; i <= 100; i++ {
		w.record(float64(i))
	}
	p50, p95, p99, n := w.percentiles()
	if n != 100 || p50 != 50 || p95 != 95 || p99 != 99 {
		t.Fatalf("percentiles = %v/%v/%v over %d, want 50/95/99 over 100", p50, p95, p99, n)
	}
	// Wrap-around keeps only the newest samples.
	small := newLatWindow(4)
	for i := 1; i <= 8; i++ {
		small.record(float64(i))
	}
	if _, _, p99, n := small.percentiles(); n != 8 || p99 != 8 {
		t.Fatalf("wrapped window p99 = %v over %d, want 8 over 8", p99, n)
	}
}

func TestSyncGaugesPublishesPercentiles(t *testing.T) {
	s := New(Config{})
	if _, err := s.Compile(context.Background(), compileReq("acme")); err != nil {
		t.Fatal(err)
	}
	s.SyncGauges()
	snap := s.Metrics().Snapshot()
	for _, name := range []string{
		"serve.latency_ms.p50", "serve.latency_ms.p99",
		"serve.tenant.acme.latency_ms.p50", "serve.cache.entries",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing from snapshot (have %v)", name, snap.Names())
		}
	}
}

// TestTenantWindowFloodBounded proves a tenant-ID flood cannot grow the
// latency-window map without bound.
func TestTenantWindowFloodBounded(t *testing.T) {
	s := New(Config{})
	for i := 0; i < maxTenantWindows+50; i++ {
		s.window(fmt.Sprintf("flood-%d", i))
	}
	s.latMu.Lock()
	n := len(s.lat)
	s.latMu.Unlock()
	if n > maxTenantWindows {
		t.Fatalf("window map grew to %d entries, cap is %d", n, maxTenantWindows)
	}
	// Overflow tenants still record globally.
	s.classifyResult("flood-overflow-x", time.Now().Add(-time.Millisecond), nil)
	if _, _, _, n := s.window("").percentiles(); n != 1 {
		t.Fatalf("global window has %d samples, want 1", n)
	}
}
