// Package serve is the multi-tenant plan service behind ressclserve:
// admission control over the shared compile pipeline, per-tenant
// quotas, bounded queueing with load shedding, deadline propagation
// into the cancellable backend compilers, and graceful drain. It is the
// robustness layer between untrusted concurrent tenants and the
// deterministic compile/simulate/analyze core.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/resccl/resccl/internal/analyze"
	"github.com/resccl/resccl/internal/analyze/cert"
	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/sim"
)

// Typed admission errors. Handlers map them to transport-level status
// codes (HTTP: 429 / 503 / 504); embedders test them with errors.Is.
var (
	// ErrOverloaded means the bounded work queue is full or the request
	// exhausted its queue-wait budget before reaching a worker.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrQuotaExceeded means the tenant is already at its concurrency
	// quota.
	ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")
	// ErrDraining means the service has stopped admitting work for
	// shutdown.
	ErrDraining = errors.New("serve: draining")
	// ErrInvalid marks malformed requests, rejected before admission.
	ErrInvalid = errors.New("serve: invalid request")
	// ErrDeadlineExceeded is the deadline error requests observe; it is
	// context.DeadlineExceeded, so both spellings work with errors.Is.
	ErrDeadlineExceeded = context.DeadlineExceeded
)

// Config tunes the service. The zero value picks the defaults below.
type Config struct {
	// Workers is the number of concurrent compile slots (default 4).
	Workers int
	// MaxQueue bounds how many admitted requests may wait for a slot;
	// further arrivals shed with ErrOverloaded (default 64).
	MaxQueue int
	// QueueBudget is the longest a request may wait for a worker slot
	// before shedding with ErrOverloaded (default 2s). Negative
	// disables the budget.
	QueueBudget time.Duration
	// TenantQuota bounds one tenant's in-flight requests, queued and
	// running combined (default 16). Negative disables quotas.
	TenantQuota int
	// DefaultDeadline caps request processing when the request carries
	// no deadline of its own (default 30s). Negative disables it.
	DefaultDeadline time.Duration
	// Cache is the shared bounded plan cache. Nil builds one from
	// CacheConfig.
	Cache *backend.Cache
	// CacheConfig configures the cache built when Cache is nil.
	CacheConfig backend.CacheConfig
	// Metrics receives service counters and gauges. Nil builds a fresh
	// set.
	Metrics *obs.Metrics
	// WrapBackend, when set, wraps every request's compiler before use —
	// the hook chaos sweeps and tests use to inject delays, faults or
	// gates. Wrappers should implement backend.Configurer to stay
	// cacheable. Nil leaves backends untouched.
	WrapBackend func(backend.Backend) backend.Backend
}

// Defaults for the zero Config.
const (
	DefaultWorkers     = 4
	DefaultMaxQueue    = 64
	DefaultQueueBudget = 2 * time.Second
	DefaultTenantQuota = 16
	DefaultDeadline    = 30 * time.Second
)

// drainGrace bounds how long Drain waits for hard-cancelled requests to
// unwind after the drain deadline fires. The compile pipeline observes
// cancellation at phase boundaries, so this only triggers on a stuck
// backend — which Drain then reports instead of hanging shutdown.
const drainGrace = 10 * time.Second

// maxTenantWindows bounds per-tenant latency windows so a tenant-ID
// flood cannot grow memory without bound; overflow tenants still feed
// the global window.
const maxTenantWindows = 256

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.QueueBudget == 0 {
		c.QueueBudget = DefaultQueueBudget
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = DefaultTenantQuota
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = DefaultDeadline
	}
	return c
}

// Service is the admission-controlled multi-tenant front of the compile
// pipeline. All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	cache   *backend.Cache
	metrics *obs.Metrics

	slots chan struct{} // worker tokens; len == running compiles

	mu       sync.Mutex
	draining bool
	waiting  int            // admitted, not yet holding a slot
	tenants  map[string]int // in-flight per tenant
	cancels  map[uint64]context.CancelFunc
	nextID   uint64
	wg       sync.WaitGroup

	latMu sync.Mutex
	lat   map[string]*latWindow // "" is the global window
}

// New builds a Service from cfg.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = backend.NewCacheWith(cfg.CacheConfig)
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obs.NewMetrics()
	}
	return &Service{
		cfg:     cfg,
		cache:   cache,
		metrics: metrics,
		slots:   make(chan struct{}, cfg.Workers),
		tenants: make(map[string]int),
		cancels: make(map[uint64]context.CancelFunc),
		lat:     map[string]*latWindow{"": newLatWindow(0)},
	}
}

// Compile compiles a plan for the tenant, going through admission.
func (s *Service) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	var out *CompileResponse
	err := s.run(ctx, req, func(ctx context.Context, b backend.Backend, breq backend.Request) error {
		start := time.Now()
		plan, hit, err := s.cache.CompileNoted(ctx, b, breq)
		if err != nil {
			return err
		}
		out = compileResponse(plan, hit, time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Simulate compiles a plan and runs the what-if simulator on it.
func (s *Service) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	bufBytes := req.BufferBytes
	if bufBytes <= 0 {
		bufBytes = 64 << 20
	}
	chunkBytes := req.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	var out *SimulateResponse
	err := s.run(ctx, &req.CompileRequest, func(ctx context.Context, b backend.Backend, breq backend.Request) error {
		start := time.Now()
		plan, hit, err := s.cache.CompileNoted(ctx, b, breq)
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{
			Topo:        breq.Topo,
			Kernel:      plan.Kernel,
			BufferBytes: bufBytes,
			ChunkBytes:  chunkBytes,
		})
		if err != nil {
			return fmt.Errorf("serve: simulate: %w", err)
		}
		out = &SimulateResponse{
			CompileResponse: *compileResponse(plan, hit, time.Since(start)),
			CompletionUS:    res.Completion * 1e6,
			AlgoBWGBs:       res.AlgoBW / 1e9,
			LinkUtil:        res.MeanLinkUtilization(),
			Events:          res.Events,
			Instances:       res.Instances,
			MicroBatches:    res.Plan.NMicroBatches,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Analyze compiles a plan, runs every static-analysis pass on it, and
// certifies its resource efficiency (optimality gap against the α–β
// lower bound, occupancy and buffer peaks against the default budget).
func (s *Service) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	certOpts := cert.Options{BufferBytes: req.BufferBytes}
	var out *AnalyzeResponse
	err := s.run(ctx, &req.CompileRequest, func(ctx context.Context, b backend.Backend, breq backend.Request) error {
		start := time.Now()
		plan, hit, err := s.cache.CompileNoted(ctx, b, breq)
		if err != nil {
			return err
		}
		rep, err := analyze.Plan(plan.Kernel, analyze.Options{})
		if err != nil {
			return fmt.Errorf("serve: analyze: %w", err)
		}
		// Budget lints join the report; certification failure (e.g. a
		// degenerate plan with no lower bound) is not an analysis error.
		rep.Attach(plan.Kernel.Graph, cert.BudgetLints(plan.Kernel, breq.Topo, certOpts)...)
		certificate, _ := cert.Certify(plan.Kernel, breq.Topo, certOpts)
		errs, warns, infos := rep.Counts()
		resp := &AnalyzeResponse{
			CompileResponse: *compileResponse(plan, hit, time.Since(start)),
			Clean:           rep.Clean(),
			Errors:          errs,
			Warnings:        warns,
			Notes:           infos,
			Certificate:     certificate,
		}
		for i, d := range rep.Diags {
			if i == maxDiagsInResponse {
				break
			}
			resp.Diags = append(resp.Diags, d.String())
		}
		out = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func compileResponse(p *backend.Plan, hit bool, elapsed time.Duration) *CompileResponse {
	r := &CompileResponse{
		Backend:    p.Backend,
		Kernel:     p.Kernel.Name,
		CacheHit:   hit,
		NTBs:       p.Kernel.NTBs(),
		MaxTBsRank: p.Kernel.MaxTBsPerRank(),
		TotalSlots: p.Kernel.TotalSlots(),
		VetClean:   p.Vet == nil || p.Vet.Clean(),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	return r
}

// run is the shared request path: validate → admit → deadline → build →
// execute → classify. fn runs while holding a worker slot with a
// cancellable, deadline-capped ctx.
func (s *Service) run(ctx context.Context, req *CompileRequest, fn func(context.Context, backend.Backend, backend.Request) error) error {
	tenant := req.tenant()
	s.metrics.Add("serve.requests", 1)
	s.metrics.Add("serve.tenant."+tenant+".requests", 1)

	if err := req.validate(); err != nil {
		s.metrics.Add("serve.invalid", 1)
		s.metrics.Add("serve.tenant."+tenant+".failed", 1)
		return err
	}

	// The request context gains (a) a cancel registered for drain's
	// hard-cancel pass and (b) the effective deadline — before
	// admission, so queued requests are cancellable too and queue time
	// counts against the deadline.
	runCtx, unregister := s.registerCancel(ctx)
	defer unregister()
	if d := s.deadline(req); d > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, d)
		defer cancel()
	}

	release, err := s.admit(runCtx, tenant)
	if err != nil {
		s.classifyShed(tenant, err)
		return err
	}
	defer release()

	b, breq, err := req.build()
	if err != nil {
		s.metrics.Add("serve.invalid", 1)
		s.metrics.Add("serve.tenant."+tenant+".failed", 1)
		return err
	}
	if s.cfg.WrapBackend != nil {
		b = s.cfg.WrapBackend(b)
	}

	start := time.Now()
	err = fn(runCtx, b, breq)
	s.classifyResult(tenant, start, err)
	return err
}

// deadline computes the effective processing budget: the tighter of the
// request's own deadline and the service default.
func (s *Service) deadline(req *CompileRequest) time.Duration {
	d := s.cfg.DefaultDeadline
	if d < 0 {
		d = 0
	}
	if req.DeadlineMS > 0 {
		rd := time.Duration(req.DeadlineMS) * time.Millisecond
		if d == 0 || rd < d {
			d = rd
		}
	}
	return d
}

// admit applies the admission policy and, on success, waits for a
// worker slot. The returned release func must be called exactly once
// when the request finishes.
func (s *Service) admit(ctx context.Context, tenant string) (func(), error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if q := s.cfg.TenantQuota; q > 0 && s.tenants[tenant] >= q {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q already has %d request(s) in flight", ErrQuotaExceeded, tenant, q)
	}
	if s.waiting >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: queue full (%d waiting)", ErrOverloaded, s.cfg.MaxQueue)
	}
	s.waiting++
	s.tenants[tenant]++
	s.wg.Add(1)
	s.mu.Unlock()

	leaveQueue := func() {
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
	}
	finish := func() {
		s.mu.Lock()
		s.tenants[tenant]--
		if s.tenants[tenant] <= 0 {
			delete(s.tenants, tenant)
		}
		s.mu.Unlock()
		s.wg.Done()
	}

	var budget <-chan time.Time
	if s.cfg.QueueBudget > 0 {
		t := time.NewTimer(s.cfg.QueueBudget)
		defer t.Stop()
		budget = t.C
	}
	select {
	case s.slots <- struct{}{}:
		leaveQueue()
	case <-ctx.Done():
		leaveQueue()
		finish()
		return nil, ctx.Err()
	case <-budget:
		leaveQueue()
		finish()
		return nil, fmt.Errorf("%w: no worker within queue budget %v", ErrOverloaded, s.cfg.QueueBudget)
	}
	return func() {
		<-s.slots
		finish()
	}, nil
}

// registerCancel derives a cancellable context and registers its cancel
// for Drain's hard-cancel pass. The returned unregister must be
// deferred.
func (s *Service) registerCancel(ctx context.Context) (context.Context, func()) {
	runCtx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.cancels[id] = cancel
	s.mu.Unlock()
	return runCtx, func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
		cancel()
	}
}

func (s *Service) classifyShed(tenant string, err error) {
	switch {
	case errors.Is(err, ErrDraining):
		s.metrics.Add("serve.shed.draining", 1)
	case errors.Is(err, ErrQuotaExceeded):
		s.metrics.Add("serve.shed.quota", 1)
	case errors.Is(err, ErrOverloaded):
		s.metrics.Add("serve.shed.overloaded", 1)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Add("serve.deadline_exceeded", 1)
	default:
		s.metrics.Add("serve.cancelled", 1)
	}
	s.metrics.Add("serve.tenant."+tenant+".shed", 1)
}

func (s *Service) classifyResult(tenant string, start time.Time, err error) {
	switch {
	case err == nil:
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		s.metrics.Add("serve.completed", 1)
		s.metrics.Add("serve.tenant."+tenant+".completed", 1)
		s.window("").record(ms)
		if w := s.window(tenant); w != nil {
			w.record(ms)
		}
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Add("serve.deadline_exceeded", 1)
		s.metrics.Add("serve.tenant."+tenant+".failed", 1)
	case errors.Is(err, context.Canceled):
		s.metrics.Add("serve.cancelled", 1)
		s.metrics.Add("serve.tenant."+tenant+".failed", 1)
	default:
		s.metrics.Add("serve.failed", 1)
		s.metrics.Add("serve.tenant."+tenant+".failed", 1)
	}
}

// window returns the latency window for the tenant ("" is global),
// creating it on first use. Returns nil for tenants beyond the window
// budget — their samples still land in the global window.
func (s *Service) window(tenant string) *latWindow {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	if w, ok := s.lat[tenant]; ok {
		return w
	}
	if len(s.lat) >= maxTenantWindows {
		return nil
	}
	w := newLatWindow(0)
	s.lat[tenant] = w
	return w
}

// Draining reports whether the service has stopped admitting work.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether the service admits new work.
func (s *Service) Ready() bool { return !s.Draining() }

// InFlight returns the number of admitted, unfinished requests.
func (s *Service) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.tenants { //resccl:allow mapiter
		n += c
	}
	return n
}

// CacheStats exposes the shared plan cache's counters.
func (s *Service) CacheStats() backend.CacheStats { return s.cache.Stats() }

// Metrics exposes the service's metric set.
func (s *Service) Metrics() *obs.Metrics { return s.metrics }

// Drain performs graceful shutdown: stop admitting (new requests shed
// with ErrDraining), wait for in-flight requests until ctx expires,
// then hard-cancel stragglers and wait a bounded grace for them to
// unwind. Latency and cache gauges are flushed before returning. Drain
// is idempotent; concurrent calls all wait.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: hard-cancel every registered request. The
		// compile pipeline observes cancellation at phase boundaries,
		// so stragglers unwind promptly; a stuck backend is reported,
		// not waited on forever.
		s.mu.Lock()
		for _, cancel := range s.cancels { //resccl:allow mapiter
			cancel()
		}
		s.mu.Unlock()
		select {
		case <-done:
		case <-time.After(drainGrace):
			err = fmt.Errorf("serve: drain incomplete: %d request(s) ignored hard cancel", s.InFlight())
		}
	}
	s.SyncGauges()
	return err
}

// SyncGauges publishes latency percentiles and cache statistics as
// gauges, so a metrics snapshot is self-contained. Called automatically
// by Drain and the metrics endpoint.
func (s *Service) SyncGauges() {
	s.latMu.Lock()
	windows := make(map[string]*latWindow, len(s.lat))
	for k, w := range s.lat { //resccl:allow mapiter
		windows[k] = w
	}
	s.latMu.Unlock()
	for tenant, w := range windows { //resccl:allow mapiter
		p50, p95, p99, n := w.percentiles()
		if n == 0 {
			continue
		}
		prefix := "serve.latency_ms."
		if tenant != "" {
			prefix = "serve.tenant." + tenant + ".latency_ms."
		}
		s.metrics.SetGauge(prefix+"p50", p50)
		s.metrics.SetGauge(prefix+"p95", p95)
		s.metrics.SetGauge(prefix+"p99", p99)
	}
	st := s.cache.Stats()
	s.metrics.SetGauge("serve.cache.hits", float64(st.Hits))
	s.metrics.SetGauge("serve.cache.misses", float64(st.Misses))
	s.metrics.SetGauge("serve.cache.evictions", float64(st.Evictions))
	s.metrics.SetGauge("serve.cache.entries", float64(st.Entries))
	s.metrics.SetGauge("serve.cache.bytes", float64(st.Bytes))
}

// WriteMetricsJSON syncs gauges and writes the deterministic
// (sorted-key) JSON snapshot of every counter and gauge.
func (s *Service) WriteMetricsJSON(w io.Writer) error {
	s.SyncGauges()
	return s.metrics.WriteJSON(w)
}
