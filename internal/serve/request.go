package serve

import (
	"fmt"
	"strings"

	"github.com/resccl/resccl/internal/analyze/cert"
	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/topo"
)

// CompileRequest describes one tenant compile job. The same shape
// parameterises the simulate and analyze endpoints, which compile first
// and then run their extra stage on the resulting plan.
type CompileRequest struct {
	// Tenant identifies the requesting tenant for quota accounting and
	// per-tenant metrics. Empty maps to "anon".
	Tenant string `json:"tenant,omitempty"`
	// Backend selects the compiler: "resccl" (default), "nccl" or
	// "msccl".
	Backend string `json:"backend,omitempty"`
	// Algorithm names an expert-registry builder ("ring-allreduce",
	// "hm-allgather", …).
	Algorithm string `json:"algorithm"`
	// Nodes × GPUsPerNode defines the fabric shape. Flat algorithms
	// receive Nodes*GPUsPerNode ranks; hierarchical ones receive the
	// pair.
	Nodes       int `json:"nodes"`
	GPUsPerNode int `json:"gpus_per_node"`
	// Fabric selects the network tier: "flat" (default), "clos" or
	// "rail". Spines is the spine count for clos/rail (default 2).
	Fabric string `json:"fabric,omitempty"`
	Spines int    `json:"spines,omitempty"`
	// Profile selects the GPU profile: "a100" (default), "v100", "h100".
	Profile string `json:"profile,omitempty"`
	// Protocol forces a transport tier ("ll", "ll128", "simple");
	// empty/"auto" leaves the tier unforced.
	Protocol string `json:"protocol,omitempty"`
	// DeadlineMS caps this request's processing time in milliseconds.
	// Zero inherits the service default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SimulateRequest compiles and then simulates the plan.
type SimulateRequest struct {
	CompileRequest
	// BufferBytes is the per-rank payload (default 64 MiB).
	BufferBytes int64 `json:"buffer_bytes,omitempty"`
	// ChunkBytes is the transfer chunk size (default 1 MiB).
	ChunkBytes int64 `json:"chunk_bytes,omitempty"`
}

// AnalyzeRequest compiles and then runs the full static analyzer plus
// the resource-efficiency certifier.
type AnalyzeRequest struct {
	CompileRequest
	// BufferBytes is the per-rank payload the certificate is issued for
	// (default 64 MiB).
	BufferBytes int64 `json:"buffer_bytes,omitempty"`
}

// CompileResponse summarises a compiled plan.
type CompileResponse struct {
	Backend    string  `json:"backend"`
	Kernel     string  `json:"kernel"`
	CacheHit   bool    `json:"cache_hit"`
	NTBs       int     `json:"n_tbs"`
	MaxTBsRank int     `json:"max_tbs_per_rank"`
	TotalSlots int     `json:"total_slots"`
	VetClean   bool    `json:"vet_clean"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// SimulateResponse reports the simulated run.
type SimulateResponse struct {
	CompileResponse
	CompletionUS float64 `json:"completion_us"`
	AlgoBWGBs    float64 `json:"algo_bw_gbs"`
	LinkUtil     float64 `json:"link_util"`
	Events       int     `json:"events"`
	Instances    int     `json:"instances"`
	MicroBatches int     `json:"micro_batches"`
}

// AnalyzeResponse reports the analyzer verdict and the plan's
// resource-efficiency certificate.
type AnalyzeResponse struct {
	CompileResponse
	Clean    bool     `json:"clean"`
	Errors   int      `json:"errors"`
	Warnings int      `json:"warnings"`
	Notes    int      `json:"notes"`
	Diags    []string `json:"diags,omitempty"`
	// Certificate is the sha256-hashed resource-efficiency certificate
	// (optimality gap, occupancy and buffer peaks vs. budget, idle
	// ratio). Omitted when certification fails — the analyzer verdict
	// above still stands on its own.
	Certificate *cert.Certificate `json:"certificate,omitempty"`
}

// maxDiagsInResponse bounds the diagnostic strings echoed to clients;
// the counts always cover the full report.
const maxDiagsInResponse = 32

func (r *CompileRequest) tenant() string {
	if r.Tenant == "" {
		return "anon"
	}
	return r.Tenant
}

// validate normalises the request and reports ErrInvalid-wrapped errors
// for malformed fields, before any admission or compute is spent.
func (r *CompileRequest) validate() error {
	if r.Algorithm == "" {
		return fmt.Errorf("%w: missing algorithm", ErrInvalid)
	}
	if _, ok := expert.Lookup(r.Algorithm); !ok {
		return fmt.Errorf("%w: unknown algorithm %q (known: %v)", ErrInvalid, r.Algorithm, expert.Names())
	}
	if r.Nodes <= 0 || r.GPUsPerNode <= 0 {
		return fmt.Errorf("%w: nodes and gpus_per_node must be positive (got %d×%d)", ErrInvalid, r.Nodes, r.GPUsPerNode)
	}
	switch strings.ToLower(r.Backend) {
	case "", "resccl", "nccl", "msccl":
	default:
		return fmt.Errorf("%w: unknown backend %q (known: resccl, nccl, msccl)", ErrInvalid, r.Backend)
	}
	switch strings.ToLower(r.Fabric) {
	case "", "flat", "clos", "rail":
	default:
		return fmt.Errorf("%w: unknown fabric %q (known: flat, clos, rail)", ErrInvalid, r.Fabric)
	}
	switch strings.ToLower(r.Profile) {
	case "", "a100", "v100", "h100":
	default:
		return fmt.Errorf("%w: unknown profile %q (known: a100, v100, h100)", ErrInvalid, r.Profile)
	}
	if r.Protocol != "" {
		if _, err := ir.ParseProtocol(strings.ToLower(r.Protocol)); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("%w: negative deadline_ms %d", ErrInvalid, r.DeadlineMS)
	}
	return nil
}

// build materialises the backend and compile request. validate must
// have passed.
func (r *CompileRequest) build() (backend.Backend, backend.Request, error) {
	var b backend.Backend
	switch strings.ToLower(r.Backend) {
	case "", "resccl":
		b = backend.NewResCCL()
	case "nccl":
		b = backend.NewNCCL()
	case "msccl":
		b = backend.NewMSCCL()
	}

	bld, _ := expert.Lookup(r.Algorithm)
	var (
		algo *ir.Algorithm
		err  error
	)
	if bld.NParams == 2 {
		algo, err = expert.Build(r.Algorithm, r.Nodes, r.GPUsPerNode)
	} else {
		algo, err = expert.Build(r.Algorithm, r.Nodes*r.GPUsPerNode)
	}
	if err != nil {
		return nil, backend.Request{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}

	var prof topo.Profile
	switch strings.ToLower(r.Profile) {
	case "", "a100":
		prof = topo.A100()
	case "v100":
		prof = topo.V100()
	case "h100":
		prof = topo.H100()
	}
	spines := r.Spines
	if spines <= 0 {
		spines = 2
	}
	var t *topo.Topology
	switch strings.ToLower(r.Fabric) {
	case "", "flat":
		t = topo.New(r.Nodes, r.GPUsPerNode, prof)
	case "clos":
		t = topo.NewClos(r.Nodes, r.GPUsPerNode, prof, spines)
	case "rail":
		t = topo.NewRail(r.Nodes, r.GPUsPerNode, prof, spines)
	}

	proto := ir.ProtoAuto
	if r.Protocol != "" {
		proto, _ = ir.ParseProtocol(strings.ToLower(r.Protocol))
	}
	return b, backend.Request{Algo: algo, Topo: t, Protocol: proto}, nil
}
