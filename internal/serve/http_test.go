package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

const okBody = `{"algorithm":"ring-allreduce","nodes":1,"gpus_per_node":4,"tenant":"acme"}`

func TestHTTPCompile(t *testing.T) {
	h := Handler(New(Config{}))
	w := post(t, h, "/v1/compile", okBody)
	if w.Code != http.StatusOK {
		t.Fatalf("compile returned %d: %s", w.Code, w.Body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Backend != "ResCCL" || resp.NTBs <= 0 || resp.CacheHit {
		t.Fatalf("unexpected body: %+v", resp)
	}
	var again CompileResponse
	if err := json.Unmarshal(post(t, h, "/v1/compile", okBody).Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("second compile missed the cache: %+v", again)
	}
}

func TestHTTPSimulateAndAnalyze(t *testing.T) {
	h := Handler(New(Config{}))
	w := post(t, h, "/v1/simulate", `{"algorithm":"ring-allreduce","nodes":1,"gpus_per_node":4,"buffer_bytes":1048576}`)
	if w.Code != http.StatusOK {
		t.Fatalf("simulate returned %d: %s", w.Code, w.Body)
	}
	var sres SimulateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sres); err != nil {
		t.Fatal(err)
	}
	if sres.CompletionUS <= 0 || sres.Events <= 0 {
		t.Fatalf("degenerate simulate body: %+v", sres)
	}

	w = post(t, h, "/v1/analyze", okBody)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze returned %d: %s", w.Code, w.Body)
	}
	var ares AnalyzeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ares); err != nil {
		t.Fatal(err)
	}
	if !ares.Clean {
		t.Fatalf("expert plan dirty over HTTP: %+v", ares)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	h := Handler(New(Config{}))
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"algorithm":`},
		{"unknown field", `{"algorithmz":"ring-allreduce"}`},
		{"unknown algorithm", `{"algorithm":"nope","nodes":1,"gpus_per_node":4}`},
		{"bad shape", `{"algorithm":"ring-allreduce","nodes":0,"gpus_per_node":0}`},
	}
	for _, tc := range cases {
		if w := post(t, h, "/v1/compile", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body)
		}
	}
}

func TestHTTPShedStatusMapping(t *testing.T) {
	g := newGate()
	s := New(Config{Workers: 1, MaxQueue: 1, TenantQuota: 1, QueueBudget: -1, WrapBackend: g.wrap})
	h := Handler(s)

	// Occupy the only worker.
	bg := make(chan *httptest.ResponseRecorder, 1)
	go func() { bg <- post(t, h, "/v1/compile", okBody) }()
	<-g.entered

	// Same tenant again → quota → 429 with Retry-After.
	w := post(t, h, "/v1/compile", okBody)
	if w.Code != http.StatusTooManyRequests || w.Header().Get("Retry-After") == "" {
		t.Fatalf("quota response: %d %v", w.Code, w.Header())
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Kind != "quota" {
		t.Fatalf("quota body %s (err %v)", w.Body, err)
	}

	// Different tenant queues (slot busy); a third fills the queue → 429.
	b2 := strings.Replace(okBody, "acme", "globex", 1)
	bg2 := make(chan *httptest.ResponseRecorder, 1)
	go func() { bg2 <- post(t, h, "/v1/compile", b2) }()
	waitFor(t, "globex to queue", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.waiting == 1
	})
	b3 := strings.Replace(okBody, "acme", "initech", 1)
	if w := post(t, h, "/v1/compile", b3); w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload response: %d %s", w.Code, w.Body)
	}

	close(g.release)
	for _, ch := range []chan *httptest.ResponseRecorder{bg, bg2} {
		if w := <-ch; w.Code != http.StatusOK {
			t.Fatalf("background request: %d %s", w.Code, w.Body)
		}
	}
}

func TestHTTPDeadlineMapsTo504(t *testing.T) {
	g := newGate() // never released
	h := Handler(New(Config{WrapBackend: g.wrap}))
	body := `{"algorithm":"ring-allreduce","nodes":1,"gpus_per_node":4,"deadline_ms":20}`
	w := post(t, h, "/v1/compile", body)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline response: %d %s", w.Code, w.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Kind != "deadline" {
		t.Fatalf("deadline body %s (err %v)", w.Body, err)
	}
}

func TestHTTPDrainingMapsTo503(t *testing.T) {
	s := New(Config{})
	h := Handler(s)
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", w.Code)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w := get(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", w.Code)
	}
	// Liveness stays up through drain so the supervisor doesn't kill a
	// draining process.
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after drain: %d", w.Code)
	}
	w := post(t, h, "/v1/compile", okBody)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("draining response: %d %v", w.Code, w.Header())
	}
}

func TestHTTPMetricsSnapshot(t *testing.T) {
	s := New(Config{})
	h := Handler(s)
	if w := post(t, h, "/v1/compile", okBody); w.Code != http.StatusOK {
		t.Fatalf("compile: %d %s", w.Code, w.Body)
	}
	w := get(t, h, "/metricsz")
	if w.Code != http.StatusOK {
		t.Fatalf("metricsz: %d", w.Code)
	}
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metricsz body not JSON: %v\n%s", err, w.Body)
	}
	if snap.Counters["serve.completed"] != 1 || snap.Counters["serve.tenant.acme.requests"] != 1 {
		t.Fatalf("unexpected counters: %v", snap.Counters)
	}
	if _, ok := snap.Gauges["serve.latency_ms.p50"]; !ok {
		t.Fatalf("latency gauges missing: %v", snap.Gauges)
	}
	// The snapshot is deterministic: two reads with no traffic in
	// between render byte-identical bodies.
	again := get(t, h, "/metricsz")
	if !bytes.Equal(w.Body.Bytes(), again.Body.Bytes()) {
		t.Fatal("metricsz snapshot not deterministic across reads")
	}
}

func TestHTTPMethodAndPathErrors(t *testing.T) {
	h := Handler(New(Config{}))
	if w := get(t, h, "/v1/compile"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET compile: %d, want 405", w.Code)
	}
	if w := get(t, h, "/v1/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path: %d, want 404", w.Code)
	}
}

// TestHTTPClientGone maps a caller-cancelled request to the 499
// convention (the body is never delivered, but logs distinguish it).
func TestHTTPClientGone(t *testing.T) {
	g := newGate()
	defer close(g.release)
	h := Handler(New(Config{WrapBackend: g.wrap}))
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/compile", strings.NewReader(okBody)).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(w, req)
		close(done)
	}()
	<-g.entered
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client cancel")
	}
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("client-gone response: %d, want %d", w.Code, StatusClientClosedRequest)
	}
}
