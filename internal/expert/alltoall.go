package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// AllToAll algorithms (an extension beyond the paper's evaluation, using
// the same IR): with nChunks = nRanks², chunk s·n+d carries rank s's
// segment destined for rank d.

// DirectAllToAll exchanges every segment pairwise: rank s sends chunk
// s·n+d straight to d, staggering destinations by offset so each rank
// drives one peer per step — the grouped point-to-point pattern vendor
// libraries use.
func DirectAllToAll(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: alltoall needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Direct-AllToAll",
		Op:      ir.OpAllToAll,
		NRanks:  nRanks,
		NChunks: nRanks * nRanks,
		NWarps:  16,
	}
	for s := 0; s < nRanks; s++ {
		for off := 1; off < nRanks; off++ {
			d := (s + off) % nRanks
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(s), Dst: ir.Rank(d),
				Step: ir.Step(off - 1), Chunk: ir.ChunkID(s*nRanks + d), Type: ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}

// HierarchicalAllToAll aggregates inter-node traffic through per-node
// relays: segments bound for node X first gather at the local relay for
// X, cross the network in one aggregated stream to X's mirror relay,
// and scatter locally — the hierarchical exchange MoE systems use to
// turn n² small messages into node²-scale aggregated ones. Node-local
// segments move directly.
func HierarchicalAllToAll(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes < 2 || gpn < 2 {
		return nil, fmt.Errorf("expert: hierarchical alltoall needs ≥2 nodes and ≥2 GPUs/node, got %d×%d", nNodes, gpn)
	}
	n := nNodes * gpn
	a := &ir.Algorithm{
		Name:    "Hier-AllToAll",
		Op:      ir.OpAllToAll,
		NRanks:  n,
		NChunks: n * n,
		NWarps:  16,
	}
	chunk := func(s, d int) ir.ChunkID { return ir.ChunkID(s*n + d) }
	// relayFor(Y, X) is the GPU on node Y that aggregates traffic bound
	// for node X; spreading X over local indices balances the NICs.
	relayFor := func(y, x int) int { return y*gpn + x%gpn }

	for s := 0; s < n; s++ {
		sNode := s / gpn
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			dNode := d / gpn
			if dNode == sNode {
				// Node-local segment: direct copy.
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(s), Dst: ir.Rank(d), Step: 0, Chunk: chunk(s, d), Type: ir.CommRecv,
				})
				continue
			}
			out := relayFor(sNode, dNode)
			in := relayFor(dNode, sNode)
			step := ir.Step(0)
			cur := s
			// Phase 1: gather at the outbound relay (skip if s is it).
			if cur != out {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(cur), Dst: ir.Rank(out), Step: step, Chunk: chunk(s, d), Type: ir.CommRecv,
				})
				cur = out
				step++
			}
			// Phase 2: one aggregated inter-node hop.
			if cur != in {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(cur), Dst: ir.Rank(in), Step: step, Chunk: chunk(s, d), Type: ir.CommRecv,
				})
				cur = in
				step++
			}
			// Phase 3: local scatter to the destination.
			if cur != d {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(cur), Dst: ir.Rank(d), Step: step, Chunk: chunk(s, d), Type: ir.CommRecv,
				})
			}
		}
	}
	return a, a.Validate()
}
