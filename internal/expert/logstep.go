package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// Logarithmic-step algorithms: latency-optimal collectives that finish
// in ⌈log₂ n⌉ rounds, the classic alternatives to rings for small
// payloads.

// BruckAllGather builds the Bruck algorithm: in round k, rank r sends
// every chunk it currently holds to rank (r − 2^k) mod n and receives
// from (r + 2^k) mod n, doubling the held set each round. n need not be
// a power of two; the final partial round sends only the chunks still
// missing at the destination.
func BruckAllGather(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: bruck allgather needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Bruck-AllGather",
		Op:      ir.OpAllGather,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	// held[r] is the set of chunk offsets (relative to r) present at r:
	// after round k, offsets [0, min(2^(k+1), n)).
	held := 1
	step := 0
	for held < nRanks {
		send := held
		if held+send > nRanks {
			send = nRanks - held // partial final round
		}
		for r := 0; r < nRanks; r++ {
			dst := ((r-held)%nRanks + nRanks) % nRanks
			// r holds chunks (r+off) mod n for off in [0, held); it
			// forwards offsets [0, send) — which become offsets
			// [held, held+send) at dst.
			for off := 0; off < send; off++ {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(r), Dst: ir.Rank(dst),
					Step: ir.Step(step), Chunk: ir.ChunkID((r + off) % nRanks),
					Type: ir.CommRecv,
				})
			}
		}
		held += send
		step++
	}
	return a, a.Validate()
}

// RHDAllReduce builds the recursive halving–doubling AllReduce for
// power-of-two rank counts: log₂ n rounds of pairwise reduce-scatter
// with exponentially shrinking distance, then log₂ n rounds of pairwise
// all-gather back out — the bandwidth-optimal log-step algorithm.
func RHDAllReduce(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 || nRanks&(nRanks-1) != 0 {
		return nil, fmt.Errorf("expert: recursive halving-doubling needs a power-of-two rank count, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "RHD-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	// Reduce-scatter halving: in round k (distance d = n/2^(k+1)),
	// partner pairs exchange the half of their current chunk range that
	// the partner is responsible for. Responsibility ranges: rank r ends
	// owning exactly chunk r.
	step := 0
	for d := nRanks / 2; d >= 1; d /= 2 {
		for r := 0; r < nRanks; r++ {
			partner := r ^ d
			// r sends the chunks in the partner's current responsibility
			// block: the d chunks starting at (partner / d) * d... the
			// block of size d containing `partner`.
			base := (partner / d) * d
			for c := base; c < base+d; c++ {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(r), Dst: ir.Rank(partner),
					Step: ir.Step(step), Chunk: ir.ChunkID(c),
					Type: ir.CommRecvReduceCopy,
				})
			}
		}
		step++
	}
	// All-gather doubling: mirror the rounds to spread the reduced
	// chunks back.
	for d := 1; d < nRanks; d *= 2 {
		for r := 0; r < nRanks; r++ {
			partner := r ^ d
			base := (r / d) * d
			for c := base; c < base+d; c++ {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(r), Dst: ir.Rank(partner),
					Step: ir.Step(step), Chunk: ir.ChunkID(c),
					Type: ir.CommRecv,
				})
			}
		}
		step++
	}
	// The all-gather phase starts after the log₂ n reduce-scatter rounds.
	rsRounds := 0
	for d := nRanks / 2; d >= 1; d /= 2 {
		rsRounds++
	}
	a.StageBounds = []ir.Step{0, ir.Step(rsRounds)}
	return a, a.Validate()
}
