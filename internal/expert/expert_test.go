package expert

import (
	"testing"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/ir"
)

// Every expert algorithm must satisfy its operator's postcondition on
// the data plane — the ground-truth correctness gate.

func TestRingAllGatherCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16, 31} {
		a, err := RingAllGather(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRingReduceScatterCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		a, err := RingReduceScatter(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRingAllReduceCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		a, err := RingAllReduce(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestTreeAllReduceCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16, 32} {
		a, err := TreeAllReduce(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestHMAllGatherCorrect(t *testing.T) {
	for _, c := range [][2]int{{2, 4}, {2, 8}, {4, 4}, {4, 8}, {3, 2}} {
		a, err := HMAllGather(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestHMAllReduceCorrect(t *testing.T) {
	for _, c := range [][2]int{{2, 4}, {2, 8}, {4, 4}, {4, 8}, {3, 2}} {
		a, err := HMAllReduce(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestHMReduceScatterCorrect(t *testing.T) {
	for _, c := range [][2]int{{2, 4}, {2, 8}, {4, 4}, {4, 8}} {
		a, err := HMReduceScatter(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestChannelizedRingsCorrect(t *testing.T) {
	for _, ch := range []int{1, 2, 4} {
		for _, n := range []int{2, 4, 8} {
			ag, err := ChannelizedRingAllGather(n, ch, nil)
			if err != nil {
				t.Fatalf("ag n=%d ch=%d: %v", n, ch, err)
			}
			if err := collective.Check(ag); err != nil {
				t.Errorf("ag n=%d ch=%d: %v", n, ch, err)
			}
			ar, err := ChannelizedRingAllReduce(n, ch, nil)
			if err != nil {
				t.Fatalf("ar n=%d ch=%d: %v", n, ch, err)
			}
			if err := collective.Check(ar); err != nil {
				t.Errorf("ar n=%d ch=%d: %v", n, ch, err)
			}
			rs, err := ChannelizedRingReduceScatter(n, ch, nil)
			if err != nil {
				t.Fatalf("rs n=%d ch=%d: %v", n, ch, err)
			}
			if err := collective.Check(rs); err != nil {
				t.Errorf("rs n=%d ch=%d: %v", n, ch, err)
			}
		}
	}
}

func TestHMStageBoundsAscending(t *testing.T) {
	a, err := HMAllReduce(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NStages(); got != 4 {
		t.Fatalf("HM-AllReduce stages = %d, want 4", got)
	}
	for i := 1; i < len(a.StageBounds); i++ {
		if a.StageBounds[i] <= a.StageBounds[i-1] {
			t.Fatalf("stage bounds not ascending: %v", a.StageBounds)
		}
	}
	// Every stage must contain at least one transfer.
	counts := make([]int, a.NStages())
	for _, tr := range a.Transfers {
		counts[a.StageOf(tr.Step)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("stage %d has no transfers", s)
		}
	}
}

func TestPermutedRingsCorrect(t *testing.T) {
	rings := Rings{
		{0, 2, 4, 6, 1, 3, 5, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
	}
	for name, build := range map[string]func(int, int, Rings) (*ir.Algorithm, error){
		"ag": ChannelizedRingAllGather,
		"ar": ChannelizedRingAllReduce,
		"rs": ChannelizedRingReduceScatter,
	} {
		a, err := build(8, 2, rings)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("%s with permuted rings: %v", name, err)
		}
	}
}

func TestRingsRejectNonPermutation(t *testing.T) {
	bad := Rings{{0, 0, 1, 2}}
	if _, err := ChannelizedRingAllGather(4, 1, bad); err == nil {
		t.Error("expected non-permutation ring to be rejected")
	}
	short := Rings{{0, 1}}
	if _, err := ChannelizedRingAllGather(4, 1, short); err == nil {
		t.Error("expected short ring to be rejected")
	}
}

func TestBuilderRejectsBadSizes(t *testing.T) {
	if _, err := RingAllGather(1); err == nil {
		t.Error("RingAllGather(1) should fail")
	}
	if _, err := HMAllGather(1, 8); err == nil {
		t.Error("HMAllGather(1,8) should fail")
	}
	if _, err := HMAllReduce(4, 1); err == nil {
		t.Error("HMAllReduce(4,1) should fail")
	}
	if _, err := ChannelizedRingAllGather(4, 0, nil); err == nil {
		t.Error("ChannelizedRingAllGather(4,0) should fail")
	}
}

func TestOwnershipConvention(t *testing.T) {
	// Ring ReduceScatter must place chunk c's full sum on rank c.
	a, err := RingReduceScatter(6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := collective.Execute(a)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 6; c++ {
		var want int64
		for r := 0; r < 6; r++ {
			want += collective.Contribution(ir.Rank(r), ir.ChunkID(c), 0)
		}
		got := st.Chunk(ir.Rank(c), ir.ChunkID(c))[0]
		if got != want {
			t.Errorf("chunk %d at owner: got %d want %d", c, got, want)
		}
	}
}

func TestBinomialBroadcastCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		a, err := BinomialBroadcast(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestHierarchicalBroadcastCorrect(t *testing.T) {
	for _, c := range [][2]int{{2, 4}, {2, 8}, {4, 4}, {3, 2}} {
		a, err := HierarchicalBroadcast(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("nodes=%d gpn=%d: %v", c[0], c[1], err)
		}
	}
}

func TestChannelizedRingBroadcastCorrect(t *testing.T) {
	for _, ch := range []int{1, 2, 4} {
		a, err := ChannelizedRingBroadcast(8, ch, nil)
		if err != nil {
			t.Fatalf("ch=%d: %v", ch, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("ch=%d: %v", ch, err)
		}
	}
	// Permuted rings must rotate so the root still originates the data.
	rings := Rings{{3, 1, 0, 2}}
	a, err := ChannelizedRingBroadcast(4, 1, rings)
	if err != nil {
		t.Fatal(err)
	}
	if err := collective.Check(a); err != nil {
		t.Error(err)
	}
}

func TestAllToAllCorrect(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		a, err := DirectAllToAll(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("direct n=%d: %v", n, err)
		}
	}
	for _, c := range [][2]int{{2, 4}, {2, 8}, {4, 4}, {3, 3}} {
		a, err := HierarchicalAllToAll(c[0], c[1])
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("hier %v: %v", c, err)
		}
	}
}

// Hierarchical AllToAll must aggregate inter-node traffic through
// relays: far fewer distinct inter-node connections than the direct
// exchange.
func TestHierarchicalAllToAllAggregates(t *testing.T) {
	direct, err := DirectAllToAll(16)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := HierarchicalAllToAll(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	countInter := func(a *ir.Algorithm) int {
		conns := map[[2]ir.Rank]bool{}
		for _, tr := range a.Transfers {
			if int(tr.Src)/8 != int(tr.Dst)/8 {
				conns[[2]ir.Rank{tr.Src, tr.Dst}] = true
			}
		}
		return len(conns)
	}
	if countInter(hier) >= countInter(direct) {
		t.Errorf("hierarchical (%d inter conns) should aggregate below direct (%d)",
			countInter(hier), countInter(direct))
	}
}

func TestBruckAllGatherCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8, 16} {
		a, err := BruckAllGather(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	// Bruck finishes in ⌈log₂ n⌉ rounds.
	a, _ := BruckAllGather(8)
	if got := a.MaxStep(); got != 2 {
		t.Errorf("bruck-8 max step = %d, want 2", got)
	}
}

func TestRHDAllReduceCorrect(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		a, err := RHDAllReduce(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := collective.Check(a); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	if _, err := RHDAllReduce(6); err == nil {
		t.Error("non-power-of-two should be rejected")
	}
}
