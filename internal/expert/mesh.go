package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// MeshAllReduce builds the single-node full-mesh AllReduce used for
// tensor-parallel groups inside one server: a full-mesh ReduceScatter
// (every GPU sends chunk d directly to GPU d) followed by a full-mesh
// AllGather (every GPU broadcasts its reduced chunk), exploiting the
// NVSwitch's all-to-all connectivity in 2(n−1) steps.
func MeshAllReduce(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: mesh allreduce needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Mesh-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	// ReduceScatter: at step off, rank r sends chunk d to its (off+1)-th
	// neighbour d = (r+off+1) mod n, which reduces it in place.
	for r := 0; r < nRanks; r++ {
		for off := 0; off < nRanks-1; off++ {
			d := (r + off + 1) % nRanks
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(d),
				Step: ir.Step(off), Chunk: ir.ChunkID(d), Type: ir.CommRecvReduceCopy,
			})
		}
	}
	// AllGather: rank r broadcasts its fully reduced chunk r.
	base := nRanks - 1
	for r := 0; r < nRanks; r++ {
		for off := 0; off < nRanks-1; off++ {
			d := (r + off + 1) % nRanks
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(d),
				Step: ir.Step(base + off), Chunk: ir.ChunkID(r), Type: ir.CommRecv,
			})
		}
	}
	a.StageBounds = []ir.Step{0, ir.Step(base)}
	return a, a.Validate()
}

// MeshAllGather builds the single-node full-mesh AllGather: every GPU
// broadcasts its own chunk to all peers in n−1 steps.
func MeshAllGather(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: mesh allgather needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Mesh-AllGather",
		Op:      ir.OpAllGather,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	for r := 0; r < nRanks; r++ {
		for off := 0; off < nRanks-1; off++ {
			d := (r + off + 1) % nRanks
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(d),
				Step: ir.Step(off), Chunk: ir.ChunkID(r), Type: ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}
