package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// Double binary tree AllReduce, NCCL's latency-optimised standard
// algorithm: two complementary trees each reduce-then-broadcast half of
// the chunks, so every rank's links are used in both directions.
//
// Tree shape is the binary heap over positions 0..n−1; the second tree
// maps positions through a rotation so its interior nodes differ from
// the first tree's.

// treeEdge is one parent/child relation in heap positions.
func heapChildren(pos, n int) (l, r int) {
	l, r = 2*pos+1, 2*pos+2
	if l >= n {
		l = -1
	}
	if r >= n {
		r = -1
	}
	return l, r
}

// reduceSteps computes, for each position, the step at which it sends
// its reduced value to its parent, such that (a) a node sends only after
// receiving from both children and (b) the two children of a node send
// at distinct steps (same-chunk writes at the parent must be ordered).
func reduceSteps(n int) []int {
	steps := make([]int, n)
	var visit func(pos int) int // returns the step the node sends at
	visit = func(pos int) int {
		l, r := heapChildren(pos, n)
		ready := 0
		var ls, rs = -1, -1
		if l >= 0 {
			ls = visit(l)
			if ls+1 > ready {
				ready = ls + 1
			}
		}
		if r >= 0 {
			rs = visit(r)
			if rs+1 > ready {
				ready = rs + 1
			}
		}
		// Stagger siblings: the right child must not collide with the
		// left child's send into the shared parent.
		if r >= 0 && steps[r] == steps[l] {
			steps[r]++
			if steps[r]+1 > ready {
				ready = steps[r] + 1
			}
		}
		steps[pos] = ready
		return ready
	}
	visit(0)
	return steps
}

// TreeAllReduce builds a double-binary-tree AllReduce over nRanks ranks:
// chunks with even index travel tree A (identity position mapping),
// chunks with odd index travel tree B (positions rotated by ⌈n/2⌉).
// Each tree runs a reduce phase (recvReduceCopy towards the root)
// followed by a broadcast phase (recv towards the leaves).
func TreeAllReduce(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: tree allreduce needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "DBTree-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	red := reduceSteps(nRanks)
	maxRed := 0
	for _, s := range red {
		if s > maxRed {
			maxRed = s
		}
	}
	// Broadcast step per position: root's children receive first.
	bc := make([]int, nRanks)
	var walk func(pos, step int)
	walk = func(pos, step int) {
		bc[pos] = step
		l, r := heapChildren(pos, nRanks)
		if l >= 0 {
			walk(l, step+1)
		}
		if r >= 0 {
			walk(r, step+1)
		}
	}
	walk(0, maxRed)

	perm := func(tree, pos int) int {
		if tree == 0 {
			return pos
		}
		return (pos + (nRanks+1)/2) % nRanks
	}
	for tree := 0; tree < 2; tree++ {
		for c := 0; c < a.NChunks; c++ {
			if c%2 != tree%2 {
				continue
			}
			for pos := 1; pos < nRanks; pos++ {
				parent := (pos - 1) / 2
				src, dst := perm(tree, pos), perm(tree, parent)
				// Reduce up.
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(src), Dst: ir.Rank(dst),
					Step: ir.Step(red[pos]), Chunk: ir.ChunkID(c),
					Type: ir.CommRecvReduceCopy,
				})
				// Broadcast down.
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(dst), Dst: ir.Rank(src),
					Step: ir.Step(bc[pos] + 1), Chunk: ir.ChunkID(c),
					Type: ir.CommRecv,
				})
			}
		}
	}
	a.StageBounds = []ir.Step{0, ir.Step(maxRed + 1)}
	return a, a.Validate()
}
