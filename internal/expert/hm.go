package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// The hierarchical mesh (HM) algorithms of Appendix A, designed for
// multi-node clusters of GPUsPerNode GPUs each: intra-node communication
// uses a full mesh (direct sends over NVSwitch), inter-node
// communication uses rings over "ring-aligned" peers — GPUs with the
// same local index on consecutive nodes.

func hmHeader(name string, op ir.OpType, nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes < 2 {
		return nil, fmt.Errorf("expert: %s needs ≥2 nodes, got %d", name, nNodes)
	}
	if gpn < 2 {
		return nil, fmt.Errorf("expert: %s needs ≥2 GPUs per node, got %d", name, gpn)
	}
	n := nNodes * gpn
	return &ir.Algorithm{
		Name:    name,
		Op:      op,
		NRanks:  n,
		NChunks: n,
		NWarps:  16,
	}, nil
}

// HMAllGather builds the HM AllGather of Appendix A:
//
//	Broadcast 1 — each GPU broadcasts its own chunk full-mesh to local
//	peers and starts a ring broadcast to its ring-aligned peers across
//	nodes;
//	Broadcast 2 — each GPU rebroadcasts the chunks it received from
//	remote ring peers to all local GPUs (full mesh).
//
// Stage annotation: the two broadcasts are the two stages.
func HMAllGather(nNodes, gpn int) (*ir.Algorithm, error) {
	a, err := hmHeader("HM-AllGather", ir.OpAllGather, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	n := a.NRanks
	// Broadcast 1a: intra-node full mesh of the GPU's own chunk.
	for r := 0; r < n; r++ {
		node := r / gpn
		local := r % gpn
		for off := 0; off < gpn-1; off++ {
			peer := node*gpn + (local+off+1)%gpn
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(peer),
				Step: ir.Step(off), Chunk: ir.ChunkID(r), Type: ir.CommRecv,
			})
		}
	}
	// Broadcast 1b: inter-node ring over ring-aligned peers. At base
	// step b, rank r forwards chunk (r − b·gpn) mod n to rank
	// (r + gpn) mod n.
	for r := 0; r < n; r++ {
		peer := (r + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(r), Dst: ir.Rank(peer),
				Step: ir.Step(b), Chunk: ir.ChunkID(mod(r-b*gpn, n)), Type: ir.CommRecv,
			})
		}
	}
	// Broadcast 2: rank r rebroadcasts the remote chunk it received at
	// ring step b — chunk (r − (b+1)·gpn) mod n — to all local peers.
	// Steps are numbered after all of Broadcast 1 so the two stages
	// occupy disjoint step ranges; the per-chunk dependency (rebroadcast
	// of the chunk received at ring step b happens after step b) is
	// preserved since stage2Base ≥ b for every b.
	stage2Base := max(gpn-2, nNodes-2) + 1
	for r := 0; r < n; r++ {
		node := r / gpn
		local := r % gpn
		for b := 0; b < nNodes-1; b++ {
			for off := 0; off < gpn-1; off++ {
				peer := node*gpn + (local+off+1)%gpn
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(r), Dst: ir.Rank(peer),
					Step: ir.Step(stage2Base + b), Chunk: ir.ChunkID(mod(r-(b+1)*gpn, n)), Type: ir.CommRecv,
				})
			}
		}
	}
	a.StageBounds = []ir.Step{0, ir.Step(stage2Base)}
	return a, a.Validate()
}

// HMAllReduce builds the four-stage HM AllReduce exactly as written in
// the paper's ResCCLang example (Fig. 16):
//
//	(1) intra-node full-mesh ReduceScatter,
//	(2) inter-node ring ReduceScatter over ring-aligned peers,
//	(3) inter-node ring AllGather on the same chunk subset,
//	(4) intra-node full-mesh AllGather.
func HMAllReduce(nNodes, gpn int) (*ir.Algorithm, error) {
	a, err := hmHeader("HM-AllReduce", ir.OpAllReduce, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	n := a.NRanks
	nChunks := n
	// Stage 1: intra-node ReduceScatter (Fig. 16 lines 5–12).
	for node := 0; node < nNodes; node++ {
		for r := 0; r < gpn; r++ {
			for b := 0; b < nNodes; b++ {
				for off := 0; off < gpn-1; off++ {
					src := gpn*node + r
					dst := (r+off+1)%gpn + gpn*node
					step := b*(gpn-1) + off
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(src), Dst: ir.Rank(dst),
						Step: ir.Step(step), Chunk: ir.ChunkID(mod(dst+b*gpn, nChunks)),
						Type: ir.CommRecvReduceCopy,
					})
				}
			}
		}
	}
	// Stage 2: inter-node ring ReduceScatter (lines 13–19).
	interRSBase := nNodes * (gpn - 1)
	for src := 0; src < n; src++ {
		dst := (src + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(dst),
				Step: ir.Step(interRSBase + b), Chunk: ir.ChunkID(mod(src-b*gpn, nChunks)),
				Type: ir.CommRecvReduceCopy,
			})
		}
	}
	// Stage 3: inter-node ring AllGather (lines 20–27).
	interAGBase := interRSBase + nNodes - 1
	for src := 0; src < n; src++ {
		dst := (src + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(dst),
				Step: ir.Step(interAGBase + b), Chunk: ir.ChunkID(mod(src-(b+nNodes-1)*gpn, nChunks)),
				Type: ir.CommRecv,
			})
		}
	}
	// Stage 4: intra-node full-mesh AllGather (lines 28–35).
	intraAGBase := interAGBase + nNodes - 1
	for node := 0; node < nNodes; node++ {
		for r := 0; r < gpn; r++ {
			for b := 0; b < nNodes; b++ {
				for off := 0; off < gpn-1; off++ {
					src := gpn*node + r
					dst := (r+off+1)%gpn + gpn*node
					step := intraAGBase + b
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(src), Dst: ir.Rank(dst),
						Step: ir.Step(step), Chunk: ir.ChunkID(mod(src+b*gpn, nChunks)),
						Type: ir.CommRecv,
					})
				}
			}
		}
	}
	a.StageBounds = []ir.Step{0, ir.Step(interRSBase), ir.Step(interAGBase), ir.Step(intraAGBase)}
	return a, a.Validate()
}

// HMReduceScatter builds the two-stage hierarchical ReduceScatter used
// in the V100 evaluation (Fig. 11): intra-node full-mesh ReduceScatter
// followed by an inter-node ring ReduceScatter whose chunk indexing ends
// every chunk's full sum at its owner rank.
func HMReduceScatter(nNodes, gpn int) (*ir.Algorithm, error) {
	a, err := hmHeader("HM-ReduceScatter", ir.OpReduceScatter, nNodes, gpn)
	if err != nil {
		return nil, err
	}
	n := a.NRanks
	// Stage 1: intra-node ReduceScatter, as in HMAllReduce.
	for node := 0; node < nNodes; node++ {
		for r := 0; r < gpn; r++ {
			for b := 0; b < nNodes; b++ {
				for off := 0; off < gpn-1; off++ {
					src := gpn*node + r
					dst := (r+off+1)%gpn + gpn*node
					step := b*(gpn-1) + off
					a.Transfers = append(a.Transfers, ir.Transfer{
						Src: ir.Rank(src), Dst: ir.Rank(dst),
						Step: ir.Step(step), Chunk: ir.ChunkID(mod(dst+b*gpn, n)),
						Type: ir.CommRecvReduceCopy,
					})
				}
			}
		}
	}
	// Stage 2: inter-node ring ReduceScatter. At base step b, rank r
	// forwards the partial sum of chunk (r − (b+1)·gpn) mod n so the
	// final hop (b = nNodes−2, src = c − gpn) delivers chunk c into
	// rank c.
	base := nNodes * (gpn - 1)
	for src := 0; src < n; src++ {
		dst := (src + gpn) % n
		for b := 0; b < nNodes-1; b++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(dst),
				Step: ir.Step(base + b), Chunk: ir.ChunkID(mod(src-(b+1)*gpn, n)),
				Type: ir.CommRecvReduceCopy,
			})
		}
	}
	a.StageBounds = []ir.Step{0, ir.Step(base)}
	return a, a.Validate()
}
