package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// Channelized ring algorithms: NCCL splits every collective across
// nChannels independent channels, each served by its own thread blocks
// and each following its own ring permutation (real NCCL searches the
// topology for per-channel rings so different channels use different
// NVLink edges and NICs).
//
// We model a channel as a disjoint chunk stripe: channel ch owns chunks
// [ch·nRanks, (ch+1)·nRanks), so chunk c belongs to rank c mod nRanks —
// preserving the operator ownership convention — and channels never
// share data dependencies.

func channelHeader(name string, op ir.OpType, nRanks, nChannels int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: %s needs ≥2 ranks, got %d", name, nRanks)
	}
	if nChannels < 1 {
		return nil, fmt.Errorf("expert: %s needs ≥1 channel, got %d", name, nChannels)
	}
	return &ir.Algorithm{
		Name:      name,
		Op:        op,
		NRanks:    nRanks,
		NChunks:   nRanks * nChannels,
		NChannels: nChannels,
		NWarps:    16,
	}, nil
}

// ChannelOf returns the channel that owns chunk c under the striping
// convention above.
func ChannelOf(c ir.ChunkID, nRanks int) int { return int(c) / nRanks }

// Rings supplies one ring permutation per channel: rings[ch][i] is the
// rank at ring position i. A nil Rings (or nil entry) means the identity
// ring 0→1→…→n−1→0.
type Rings [][]int

func (rs Rings) ring(ch, nRanks int) ([]int, error) {
	if rs == nil || ch >= len(rs) || rs[ch] == nil {
		ring := make([]int, nRanks)
		for i := range ring {
			ring[i] = i
		}
		return ring, nil
	}
	ring := rs[ch]
	if len(ring) != nRanks {
		return nil, fmt.Errorf("expert: channel %d ring has %d ranks, want %d", ch, len(ring), nRanks)
	}
	seen := make([]bool, nRanks)
	for _, r := range ring {
		if r < 0 || r >= nRanks || seen[r] {
			return nil, fmt.Errorf("expert: channel %d ring %v is not a permutation", ch, ring)
		}
		seen[r] = true
	}
	return ring, nil
}

// appendPermutedRing emits one channel's ring transfers. At relative
// step s, the rank at ring position i sends chunk
// base + ring[(i+chunkOff−s) mod n] to position i+1, with the given comm
// type. chunkOff selects the phase convention: 0 for AllGather (rank
// sends its own chunk first), −1 for ReduceScatter (so chunk c's full
// sum lands on rank c).
func appendPermutedRing(a *ir.Algorithm, ring []int, base, stepBase, chunkOff int, ct ir.CommType) {
	n := len(ring)
	for i := 0; i < n; i++ {
		src, dst := ring[i], ring[(i+1)%n]
		for s := 0; s < n-1; s++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src: ir.Rank(src), Dst: ir.Rank(dst),
				Step:  ir.Step(stepBase + s),
				Chunk: ir.ChunkID(base + ring[mod(i+chunkOff-s, n)]),
				Type:  ct,
			})
		}
	}
}

// ChannelizedRingAllGather builds nChannels independent ring AllGathers
// over the given per-channel ring permutations.
func ChannelizedRingAllGather(nRanks, nChannels int, rings Rings) (*ir.Algorithm, error) {
	a, err := channelHeader("Ring-AllGather", ir.OpAllGather, nRanks, nChannels)
	if err != nil {
		return nil, err
	}
	for ch := 0; ch < nChannels; ch++ {
		ring, err := rings.ring(ch, nRanks)
		if err != nil {
			return nil, err
		}
		appendPermutedRing(a, ring, ch*nRanks, 0, 0, ir.CommRecv)
	}
	return a, a.Validate()
}

// ChannelizedRingReduceScatter builds nChannels independent ring
// ReduceScatters.
func ChannelizedRingReduceScatter(nRanks, nChannels int, rings Rings) (*ir.Algorithm, error) {
	a, err := channelHeader("Ring-ReduceScatter", ir.OpReduceScatter, nRanks, nChannels)
	if err != nil {
		return nil, err
	}
	for ch := 0; ch < nChannels; ch++ {
		ring, err := rings.ring(ch, nRanks)
		if err != nil {
			return nil, err
		}
		appendPermutedRing(a, ring, ch*nRanks, 0, -1, ir.CommRecvReduceCopy)
	}
	return a, a.Validate()
}

// ChannelizedRingAllReduce builds nChannels independent two-phase ring
// AllReduces (ReduceScatter then AllGather).
func ChannelizedRingAllReduce(nRanks, nChannels int, rings Rings) (*ir.Algorithm, error) {
	a, err := channelHeader("Ring-AllReduce", ir.OpAllReduce, nRanks, nChannels)
	if err != nil {
		return nil, err
	}
	for ch := 0; ch < nChannels; ch++ {
		ring, err := rings.ring(ch, nRanks)
		if err != nil {
			return nil, err
		}
		appendPermutedRing(a, ring, ch*nRanks, 0, -1, ir.CommRecvReduceCopy)
		appendPermutedRing(a, ring, ch*nRanks, nRanks-1, 0, ir.CommRecv)
	}
	a.StageBounds = []ir.Step{0, ir.Step(nRanks - 1)}
	return a, a.Validate()
}

// ChannelizedRingBroadcast builds nChannels ring broadcasts from rank 0:
// each chunk travels down the ring, one hop per step, so hops for
// different chunks pipeline.
func ChannelizedRingBroadcast(nRanks, nChannels int, rings Rings) (*ir.Algorithm, error) {
	a, err := channelHeader("Ring-Broadcast", ir.OpBroadcast, nRanks, nChannels)
	if err != nil {
		return nil, err
	}
	for ch := 0; ch < nChannels; ch++ {
		ring, err := rings.ring(ch, nRanks)
		if err != nil {
			return nil, err
		}
		// Rotate the ring so the root (rank 0) is at position 0.
		rootAt := 0
		for i, r := range ring {
			if r == 0 {
				rootAt = i
				break
			}
		}
		base := ch * nRanks
		for c := 0; c < nRanks; c++ {
			for i := 0; i < nRanks-1; i++ {
				src := ring[(rootAt+i)%nRanks]
				dst := ring[(rootAt+i+1)%nRanks]
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(src), Dst: ir.Rank(dst),
					Step: ir.Step(i), Chunk: ir.ChunkID(base + c), Type: ir.CommRecv,
				})
			}
		}
	}
	return a, a.Validate()
}
