// Package expert builds the expert-designed collective algorithms the
// paper uses: the vendor-standard ring family (NCCL's workhorse), the
// double binary tree, and the hierarchical mesh (HM) algorithms of
// Appendix A developed for the testbed topology.
//
// Builders return plain ir.Algorithm values; correctness of every
// builder is enforced by the collective package's data-plane checker in
// tests.
package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// mod is the non-negative modulo used throughout ring index arithmetic.
func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// RingAllGather builds the standard ring AllGather: at step s, rank r
// sends chunk (r−s) mod n to rank (r+1) mod n; after n−1 steps every
// rank holds every chunk. This is the running example of Fig. 5(a).
func RingAllGather(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: ring allgather needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Ring-AllGather",
		Op:      ir.OpAllGather,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	for r := 0; r < nRanks; r++ {
		peer := (r + 1) % nRanks
		for step := 0; step < nRanks-1; step++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src:   ir.Rank(r),
				Dst:   ir.Rank(peer),
				Step:  ir.Step(step),
				Chunk: ir.ChunkID(mod(r-step, nRanks)),
				Type:  ir.CommRecv,
			})
		}
	}
	return a, a.Validate()
}

// RingReduceScatter builds the standard ring ReduceScatter: at step s,
// rank r sends its partial sum of chunk (r−1−s) mod n to rank (r+1)
// mod n with recvReduceCopy. The last transfer of chunk c's chain
// (step n−2) is sent by rank c−1 into rank c, so rank r ends holding
// the full sum of chunk r — the operator's ownership convention.
func RingReduceScatter(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: ring reducescatter needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Ring-ReduceScatter",
		Op:      ir.OpReduceScatter,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	appendRingRS(a, 0, ir.Step(0))
	return a, a.Validate()
}

// appendRingRS emits the n−1 reduce-scatter ring steps starting at step
// base. The chunk sent by rank r at relative step s is (r−1−s) mod n, so
// after the final step rank r has fully reduced chunk r.
func appendRingRS(a *ir.Algorithm, _ int, base ir.Step) {
	n := a.NRanks
	for r := 0; r < n; r++ {
		peer := (r + 1) % n
		for s := 0; s < n-1; s++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src:   ir.Rank(r),
				Dst:   ir.Rank(peer),
				Step:  base + ir.Step(s),
				Chunk: ir.ChunkID(mod(r-1-s, n)),
				Type:  ir.CommRecvReduceCopy,
			})
		}
	}
}

// appendRingAG emits the n−1 all-gather ring steps starting at step
// base, under the convention that rank r initially holds (the reduced)
// chunk r.
func appendRingAG(a *ir.Algorithm, base ir.Step) {
	n := a.NRanks
	for r := 0; r < n; r++ {
		peer := (r + 1) % n
		for s := 0; s < n-1; s++ {
			a.Transfers = append(a.Transfers, ir.Transfer{
				Src:   ir.Rank(r),
				Dst:   ir.Rank(peer),
				Step:  base + ir.Step(s),
				Chunk: ir.ChunkID(mod(r-s, n)),
				Type:  ir.CommRecv,
			})
		}
	}
}

// RingAllReduce builds the standard two-phase ring AllReduce:
// ReduceScatter followed by AllGather, 2(n−1) steps in total. The two
// phases are annotated as stages for stage-level backends.
func RingAllReduce(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: ring allreduce needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Ring-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	appendRingRS(a, 0, 0)
	appendRingAG(a, ir.Step(nRanks-1))
	a.StageBounds = []ir.Step{0, ir.Step(nRanks - 1)}
	return a, a.Validate()
}
