package expert

import (
	"fmt"

	"github.com/resccl/resccl/internal/ir"
)

// BinomialBroadcast builds the classic binomial-tree broadcast from rank
// 0: in round k, every rank that already holds the data sends it to the
// rank 2^k positions away, so all n ranks are covered in ⌈log₂ n⌉
// rounds. Every chunk follows the same tree; distinct chunks let the
// backend pipeline rounds across micro-batches.
func BinomialBroadcast(nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("expert: binomial broadcast needs ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Binomial-Broadcast",
		Op:      ir.OpBroadcast,
		NRanks:  nRanks,
		NChunks: nRanks,
		NWarps:  16,
	}
	for c := 0; c < nRanks; c++ {
		step := 0
		for dist := 1; dist < nRanks; dist *= 2 {
			for src := 0; src < dist && src < nRanks; src++ {
				dst := src + dist
				if dst >= nRanks {
					continue
				}
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(src), Dst: ir.Rank(dst),
					Step: ir.Step(step), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
				})
			}
			step++
		}
	}
	return a, a.Validate()
}

// HierarchicalBroadcast broadcasts from rank 0 across a multi-node
// cluster: a binomial tree over the nodes' first GPUs followed by an
// intra-node full-mesh fan-out — the hierarchical structure every
// production library uses to keep inter-node hops to ⌈log₂ nodes⌉.
func HierarchicalBroadcast(nNodes, gpn int) (*ir.Algorithm, error) {
	if nNodes < 2 || gpn < 2 {
		return nil, fmt.Errorf("expert: hierarchical broadcast needs ≥2 nodes and ≥2 GPUs/node, got %d×%d", nNodes, gpn)
	}
	n := nNodes * gpn
	a := &ir.Algorithm{
		Name:    "Hier-Broadcast",
		Op:      ir.OpBroadcast,
		NRanks:  n,
		NChunks: n,
		NWarps:  16,
	}
	for c := 0; c < n; c++ {
		// Inter-node binomial tree over node leaders (local index 0).
		step := 0
		for dist := 1; dist < nNodes; dist *= 2 {
			for srcNode := 0; srcNode < dist && srcNode < nNodes; srcNode++ {
				dstNode := srcNode + dist
				if dstNode >= nNodes {
					continue
				}
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: ir.Rank(srcNode * gpn), Dst: ir.Rank(dstNode * gpn),
					Step: ir.Step(step), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
				})
			}
			step++
		}
		// Intra-node fan-out from each leader.
		for node := 0; node < nNodes; node++ {
			leader := ir.Rank(node * gpn)
			for l := 1; l < gpn; l++ {
				a.Transfers = append(a.Transfers, ir.Transfer{
					Src: leader, Dst: ir.Rank(node*gpn + l),
					Step: ir.Step(step), Chunk: ir.ChunkID(c), Type: ir.CommRecv,
				})
			}
		}
	}
	return a, a.Validate()
}
