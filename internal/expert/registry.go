package expert

import (
	"fmt"
	"sort"

	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/synth"
)

// Builder describes one expert algorithm constructor in the registry.
type Builder struct {
	// Name is the registry key ("ring-allreduce", "hm-allgather", …).
	Name string
	// Op is the collective operator the builder implements.
	Op ir.OpType
	// NParams is the number of integer parameters Build expects: 1 for
	// flat algorithms (nRanks), 2 for hierarchical ones (nNodes,
	// gpusPerNode).
	NParams int
	// Build constructs the algorithm.
	Build func(params ...int) (*ir.Algorithm, error)
}

func one(f func(int) (*ir.Algorithm, error)) func(...int) (*ir.Algorithm, error) {
	return func(p ...int) (*ir.Algorithm, error) { return f(p[0]) }
}

func two(f func(int, int) (*ir.Algorithm, error)) func(...int) (*ir.Algorithm, error) {
	return func(p ...int) (*ir.Algorithm, error) { return f(p[0], p[1]) }
}

var registry = map[string]Builder{}

func register(name string, op ir.OpType, nParams int, build func(...int) (*ir.Algorithm, error)) {
	registry[name] = Builder{Name: name, Op: op, NParams: nParams, Build: build}
}

func init() {
	register("ring-allgather", ir.OpAllGather, 1, one(RingAllGather))
	register("ring-allreduce", ir.OpAllReduce, 1, one(RingAllReduce))
	register("ring-reducescatter", ir.OpReduceScatter, 1, one(RingReduceScatter))
	register("tree-allreduce", ir.OpAllReduce, 1, one(TreeAllReduce))
	register("bruck-allgather", ir.OpAllGather, 1, one(BruckAllGather))
	register("rhd-allreduce", ir.OpAllReduce, 1, one(RHDAllReduce))
	register("mesh-allgather", ir.OpAllGather, 1, one(MeshAllGather))
	register("mesh-allreduce", ir.OpAllReduce, 1, one(MeshAllReduce))
	register("binomial-broadcast", ir.OpBroadcast, 1, one(BinomialBroadcast))
	register("direct-alltoall", ir.OpAllToAll, 1, one(DirectAllToAll))
	register("hm-allgather", ir.OpAllGather, 2, two(HMAllGather))
	register("hm-allreduce", ir.OpAllReduce, 2, two(HMAllReduce))
	register("hm-reducescatter", ir.OpReduceScatter, 2, two(HMReduceScatter))
	register("hierarchical-broadcast", ir.OpBroadcast, 2, two(HierarchicalBroadcast))
	register("hierarchical-alltoall", ir.OpAllToAll, 2, two(HierarchicalAllToAll))
	// Scale-out composition (synth): gpn chunks, one per rail, so plan
	// size grows linearly with rank count instead of quadratically.
	register("hier-allreduce", ir.OpAllReduce, 2, two(synth.HierAllReduce))
	// Synthesized-plan emulations promoted from the synth package; the
	// "synth:" prefix marks non-expert origin. Sketch-search output
	// ("synth:sketch/...") is named, not registered: those plans rebuild
	// from their encoded genome via synth.BuildNamed.
	register("synth:taccl-allgather", ir.OpAllGather, 2, two(synth.TACCLAllGather))
	register("synth:taccl-allreduce", ir.OpAllReduce, 2, two(synth.TACCLAllReduce))
	register("synth:teccl-allgather", ir.OpAllGather, 2, two(synth.TECCLAllGather))
	register("synth:teccl-allreduce", ir.OpAllReduce, 2, two(synth.TECCLAllReduce))
}

// Names returns every registered builder name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	b, ok := registry[name]
	return b, ok
}

// Build constructs the named algorithm. Flat algorithms take one
// parameter (nRanks); hierarchical ones take two (nNodes, gpusPerNode).
func Build(name string, params ...int) (*ir.Algorithm, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("expert: unknown algorithm %q (known: %v)", name, Names())
	}
	if len(params) != b.NParams {
		return nil, fmt.Errorf("expert: algorithm %q takes %d parameter(s), got %d", name, b.NParams, len(params))
	}
	return b.Build(params...)
}

// Registry returns every registered builder, sorted by name.
func Registry() []Builder {
	out := make([]Builder, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
