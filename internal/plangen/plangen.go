// Package plangen generates random, valid collective algorithms for
// property-based testing: arbitrary spanning-tree broadcast/reduction
// structures with randomized shapes and step assignments. Every
// generated plan satisfies its operator's postcondition by
// construction, so the whole compilation and execution pipeline can be
// fuzzed end to end against the data-plane oracle.
package plangen

import (
	"fmt"
	"math/rand"

	"github.com/resccl/resccl/internal/ir"
)

// RandomAllGather builds an AllGather in which every chunk reaches all
// ranks over a random spanning tree rooted at its owner, with random
// fan-out and randomized (but dependency-respecting) step numbering.
func RandomAllGather(rng *rand.Rand, nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("plangen: need ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Random-AllGather",
		Op:      ir.OpAllGather,
		NRanks:  nRanks,
		NChunks: nRanks,
	}
	for c := 0; c < nRanks; c++ {
		appendBroadcastTree(rng, a, ir.Rank(c), ir.ChunkID(c), 0, ir.CommRecv)
	}
	return a, a.Validate()
}

// RandomAllReduce builds an AllReduce in which every chunk is reduced
// to its owner over a random in-tree (recvReduceCopy hops) and then
// broadcast back over an independent random out-tree.
func RandomAllReduce(rng *rand.Rand, nRanks int) (*ir.Algorithm, error) {
	if nRanks < 2 {
		return nil, fmt.Errorf("plangen: need ≥2 ranks, got %d", nRanks)
	}
	a := &ir.Algorithm{
		Name:    "Random-AllReduce",
		Op:      ir.OpAllReduce,
		NRanks:  nRanks,
		NChunks: nRanks,
	}
	for c := 0; c < nRanks; c++ {
		depth := appendReduceTree(rng, a, ir.Rank(c), ir.ChunkID(c))
		appendBroadcastTree(rng, a, ir.Rank(c), ir.ChunkID(c), depth, ir.CommRecv)
	}
	return a, a.Validate()
}

// appendBroadcastTree emits a random spanning out-tree of chunk c from
// root: ranks join in random order, each receiving from a random
// already-covered rank, one step after the parent's own receive. The
// returned transfers respect dependencies because a parent's step is
// always smaller than its children's.
func appendBroadcastTree(rng *rand.Rand, a *ir.Algorithm, root ir.Rank, c ir.ChunkID, base ir.Step, ct ir.CommType) {
	n := a.NRanks
	order := rng.Perm(n)
	covered := []ir.Rank{root}
	// receivedAt[r] is the step at which r obtained the chunk.
	receivedAt := map[ir.Rank]ir.Step{root: base - 1}
	for _, ri := range order {
		r := ir.Rank(ri)
		if r == root {
			continue
		}
		parent := covered[rng.Intn(len(covered))]
		step := receivedAt[parent] + 1 + ir.Step(rng.Intn(2))
		a.Transfers = append(a.Transfers, ir.Transfer{
			Src: parent, Dst: r, Step: step, Chunk: c, Type: ct,
		})
		receivedAt[r] = step
		covered = append(covered, r)
	}
}

// appendReduceTree emits a random in-tree reducing chunk c into root:
// every non-root rank eventually forwards its partial to a rank closer
// to the root. Children send before their parent forwards, and multiple
// children of one parent use distinct steps (ordered writes). Returns a
// step bound past the whole reduction for chaining a broadcast phase.
func appendReduceTree(rng *rand.Rand, a *ir.Algorithm, root ir.Rank, c ir.ChunkID) ir.Step {
	n := a.NRanks
	// Random parent assignment forming an in-tree: process ranks in a
	// random order; each picks a parent among ranks processed later or
	// the root, guaranteeing acyclicity (parent is "closer" by order).
	order := rng.Perm(n)
	pos := make([]int, n) // position in order; root treated as deepest
	for i, r := range order {
		pos[r] = i
	}
	parent := make([]ir.Rank, n)
	for _, ri := range order {
		r := ir.Rank(ri)
		if r == root {
			continue
		}
		// Candidates: root or any rank with a strictly larger position.
		cands := []ir.Rank{root}
		for q := 0; q < n; q++ {
			if ir.Rank(q) != root && pos[q] > pos[ri] {
				cands = append(cands, ir.Rank(q))
			}
		}
		parent[ri] = cands[rng.Intn(len(cands))]
	}
	// children lists.
	children := make(map[ir.Rank][]ir.Rank)
	for q := 0; q < n; q++ {
		if ir.Rank(q) == root {
			continue
		}
		children[parent[q]] = append(children[parent[q]], ir.Rank(q))
	}
	// sendStep[r]: when r forwards its partial — after all its children
	// arrived, with distinct steps among siblings.
	var assign func(r ir.Rank) ir.Step // returns the step after which r's partial is complete
	assign = func(r ir.Rank) ir.Step {
		ready := ir.Step(0)
		for _, ch := range children[r] {
			done := assign(ch)
			// The child sends at `done`; r is complete strictly after.
			if done+1 > ready {
				ready = done + 1
			}
		}
		// Distinct steps per sibling write are fixed up by the caller;
		// here return when r could send.
		return ready
	}
	// Emit sends bottom-up with per-parent step deduplication.
	var emit func(r ir.Rank) ir.Step
	usedSteps := make(map[[2]int]map[ir.Step]bool) // (dst, chunk) -> steps taken
	emit = func(r ir.Rank) ir.Step {
		ready := ir.Step(0)
		for _, ch := range children[r] {
			childSend := emit(ch)
			if childSend+1 > ready {
				ready = childSend + 1
			}
		}
		if r == root {
			return ready
		}
		p := parent[r]
		key := [2]int{int(p), int(c)}
		taken := usedSteps[key]
		if taken == nil {
			taken = make(map[ir.Step]bool)
			usedSteps[key] = taken
		}
		step := ready
		for taken[step] {
			step++
		}
		taken[step] = true
		a.Transfers = append(a.Transfers, ir.Transfer{
			Src: r, Dst: p, Step: step, Chunk: c, Type: ir.CommRecvReduceCopy,
		})
		return step
	}
	_ = assign
	rootReady := emit(root)
	// The broadcast phase must start after every reduction write into
	// any rank on the path — conservatively after the largest step used
	// for this chunk plus one.
	maxStep := rootReady
	for _, t := range a.Transfers {
		if t.Chunk == c && t.Step >= maxStep {
			maxStep = t.Step + 1
		}
	}
	return maxStep
}
