package plangen

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/resccl/resccl/internal/backend"
	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/rt"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

// Generated plans must satisfy their operator postcondition on the
// data-plane oracle, for many random shapes.
func TestGeneratedPlansCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(11)
		ag, err := RandomAllGather(rng, n)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if err := collective.Check(ag); err != nil {
			t.Fatalf("allgather n=%d iter=%d: %v", n, i, err)
		}
		ar, err := RandomAllReduce(rng, n)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if err := collective.Check(ar); err != nil {
			t.Fatalf("allreduce n=%d iter=%d: %v", n, i, err)
		}
	}
}

// End-to-end pipeline property: any generated plan compiles on every
// backend, simulates to completion deterministically, and executes
// correctly on the concurrent runtime. This fuzzes the dependency
// analysis, HPDS, TB allocation, kernel generation, simulator and
// runtime together against the oracle.
func TestPipelineOnRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	backends := []backend.Backend{backend.NewMSCCL(), backend.NewResCCL()}
	iters := 25
	if testing.Short() {
		iters = 6
	}
	for i := 0; i < iters; i++ {
		nNodes := 1 + rng.Intn(2)
		gpn := 2 + rng.Intn(3)
		n := nNodes * gpn
		tp := topo.New(nNodes, gpn, topo.A100())
		var build = RandomAllGather
		if rng.Intn(2) == 0 {
			build = RandomAllReduce
		}
		algo, err := build(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		algo.Name = fmt.Sprintf("%s-%d", algo.Name, i)
		for _, b := range backends {
			plan, err := b.Compile(context.Background(), backend.Request{Algo: algo, Topo: tp})
			if err != nil {
				t.Fatalf("iter %d %s: compile: %v", i, b.Name(), err)
			}
			r1, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 16 << 20, ChunkBytes: 1 << 20})
			if err != nil {
				t.Fatalf("iter %d %s: sim: %v", i, b.Name(), err)
			}
			r2, err := sim.Run(sim.Config{Topo: tp, Kernel: plan.Kernel, BufferBytes: 16 << 20, ChunkBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Completion != r2.Completion {
				t.Fatalf("iter %d %s: nondeterministic simulation", i, b.Name())
			}
			res, err := rt.Execute(rt.Config{Kernel: plan.Kernel, MicroBatches: 2})
			if err != nil {
				t.Fatalf("iter %d %s: rt: %v", i, b.Name(), err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("iter %d %s: rt verify: %v", i, b.Name(), err)
			}
		}
	}
}

func TestGeneratorRejectsTinyClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(0))
	if _, err := RandomAllGather(rng, 1); err == nil {
		t.Error("1 rank should fail")
	}
	if _, err := RandomAllReduce(rng, 0); err == nil {
		t.Error("0 ranks should fail")
	}
}
