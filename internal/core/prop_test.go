package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/fault"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/talloc"
	"github.com/resccl/resccl/internal/topo"
)

// Property sweep: seeded random small cluster shapes × all three
// scheduling policies × every applicable collective builder. Each
// combination must (a) pass the schedule, allocation and data-plane
// correctness gates, and (b) simulate deterministically — identical
// completion across two runs, both clean and under a non-empty seeded
// fault schedule.

// propCase is one collective builder applicable to a shape.
type propCase struct {
	name string
	algo *ir.Algorithm
}

func propCollectives(t *testing.T, nNodes, gpn int) []propCase {
	t.Helper()
	nRanks := nNodes * gpn
	type builder struct {
		name string
		fn   func() (*ir.Algorithm, error)
		ok   bool
	}
	builders := []builder{
		{"ring-allgather", func() (*ir.Algorithm, error) { return expert.RingAllGather(nRanks) }, nRanks >= 2},
		{"ring-allreduce", func() (*ir.Algorithm, error) { return expert.RingAllReduce(nRanks) }, nRanks >= 2},
		{"ring-reducescatter", func() (*ir.Algorithm, error) { return expert.RingReduceScatter(nRanks) }, nRanks >= 2},
		{"mesh-allreduce", func() (*ir.Algorithm, error) { return expert.MeshAllReduce(gpn) }, nNodes == 1 && gpn >= 2},
		{"mesh-allgather", func() (*ir.Algorithm, error) { return expert.MeshAllGather(gpn) }, nNodes == 1 && gpn >= 2},
		{"hm-allgather", func() (*ir.Algorithm, error) { return expert.HMAllGather(nNodes, gpn) }, nNodes >= 2},
		{"hm-allreduce", func() (*ir.Algorithm, error) { return expert.HMAllReduce(nNodes, gpn) }, nNodes >= 2},
		{"hm-reducescatter", func() (*ir.Algorithm, error) { return expert.HMReduceScatter(nNodes, gpn) }, nNodes >= 2},
		{"tree-allreduce", func() (*ir.Algorithm, error) { return expert.TreeAllReduce(nRanks) }, nRanks >= 2},
		{"binomial-broadcast", func() (*ir.Algorithm, error) { return expert.BinomialBroadcast(nRanks) }, nRanks >= 2},
		{"direct-alltoall", func() (*ir.Algorithm, error) { return expert.DirectAllToAll(nRanks) }, nRanks >= 2},
		{"bruck-allgather", func() (*ir.Algorithm, error) { return expert.BruckAllGather(nRanks) }, nRanks >= 2},
	}
	var out []propCase
	for _, b := range builders {
		if !b.ok {
			continue
		}
		algo, err := b.fn()
		if err != nil {
			t.Fatalf("%s on %d×%d: %v", b.name, nNodes, gpn, err)
		}
		out = append(out, propCase{b.name, algo})
	}
	return out
}

func TestPropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	policies := []sched.Policy{sched.PolicyHPDS, sched.PolicyRR, sched.PolicySequential}

	// Seeded random shapes: 1–2 nodes, 2–4 GPUs per node, plus the two
	// corners every run must cover.
	shapes := [][2]int{{1, 2}, {2, 4}}
	for len(shapes) < 6 {
		s := [2]int{1 + rng.Intn(2), 2 + rng.Intn(3)}
		shapes = append(shapes, s)
	}

	for _, shape := range shapes {
		nNodes, gpn := shape[0], shape[1]
		tp := topo.New(nNodes, gpn, topo.A100())
		for _, pc := range propCollectives(t, nNodes, gpn) {
			for _, pol := range policies {
				name := fmt.Sprintf("%dx%d/%s/%s", nNodes, gpn, pc.name, pol)
				t.Run(name, func(t *testing.T) {
					if err := collective.Check(pc.algo); err != nil {
						t.Fatalf("collective gate: %v", err)
					}
					c, err := Compile(context.Background(), pc.algo, tp, Options{Policy: pol})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					if err := sched.Validate(c.Graph, c.Pipeline); err != nil {
						t.Fatalf("sched.Validate: %v", err)
					}
					if err := talloc.Validate(c.Graph, c.Assignment); err != nil {
						t.Fatalf("talloc.Validate: %v", err)
					}
					cfg := sim.Config{Topo: tp, Kernel: c.Kernel, BufferBytes: 2 << 20, ChunkBytes: 256 << 10}
					a := mustRun(t, cfg)
					b := mustRun(t, cfg)
					if a.Completion != b.Completion {
						t.Fatalf("clean runs differ: %v vs %v", a.Completion, b.Completion)
					}
					// Determinism must survive a non-empty fault schedule.
					cfg.Faults = fault.Generate(tp, fault.Params{
						Seed: 77, N: 6, Horizon: a.Completion,
						MeanDuration: a.Completion / 4, NTBs: len(c.Kernel.TBs),
					})
					fa := mustRun(t, cfg)
					fb := mustRun(t, cfg)
					if fa.Completion != fb.Completion {
						t.Fatalf("faulted runs differ: %v vs %v", fa.Completion, fb.Completion)
					}
				})
			}
		}
	}
}

func mustRun(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
