package core

import (
	"container/heap"
	"fmt"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/topo"
)

// StrategyEstimate holds the analytic completion-time estimates of
// §3's three execution granularities (Eq. 3–5) for one algorithm on one
// topology — the model ResCCL's design argument is built on.
//
// TAlgorithm is an estimate (bubbles folded into the per-micro-batch
// critical path); TStage and TTask are steady-state bounds: TStage
// includes the Eq. 1 contention term γ·L(z) for stage channels that
// overlap on the bottleneck link, TTask omits residual bubbles and is
// therefore a lower bound the simulator should approach from above.
type StrategyEstimate struct {
	// MicroBatches is n; ChunkBytes the effective chunk size.
	MicroBatches int
	ChunkBytes   float64

	// Bottleneck is the most loaded communication link and
	// TasksOnBottleneck its per-micro-batch task count (m of Eq. 5).
	Bottleneck        topo.LinkID
	TasksOnBottleneck int

	// TAlgorithm, TStage and TTask estimate the completion time (in
	// seconds) under algorithm-level, stage-level and task-level
	// execution (Eq. 3, 4, 5).
	TAlgorithm, TStage, TTask float64
}

// String renders the estimate for CLI output.
func (e *StrategyEstimate) String() string {
	return fmt.Sprintf(
		"n=%d chunk=%.0fB bottleneck m=%d: algorithm-level %.3fms, stage-level %.3fms, task-level %.3fms",
		e.MicroBatches, e.ChunkBytes, e.TasksOnBottleneck,
		e.TAlgorithm*1e3, e.TStage*1e3, e.TTask*1e3)
}

// EstimateStrategies evaluates Eq. 3–5 for the algorithm underlying g
// when transferring bufferBytes per rank with the given target chunk
// size.
func EstimateStrategies(g *dag.Graph, bufferBytes, chunkBytes int64) (*StrategyEstimate, error) {
	// Micro-batch geometry, mirroring sim.PlanFor: the buffer divides
	// into NChunks chunks per micro-batch and the chunk shrinks so that
	// n·chunk·NChunks covers the buffer exactly.
	if bufferBytes <= 0 {
		bufferBytes = 1
	}
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	perMBBytes := chunkBytes * int64(g.Algo.NChunks)
	nMB := int((bufferBytes + perMBBytes - 1) / perMBBytes)
	if nMB < 1 {
		nMB = 1
	}
	effChunk := float64(bufferBytes) / (float64(nMB) * float64(g.Algo.NChunks))
	n := float64(nMB)
	t := g.Topo

	est := &StrategyEstimate{
		MicroBatches: nMB,
		ChunkBytes:   effChunk,
	}

	// Per-task single-chunk duration at full link rate (β = 1/linkBW).
	dur := make([]float64, len(g.Tasks))
	for i := range g.Tasks {
		p := g.Paths[i]
		dur[i] = p.Alpha.Seconds() + effChunk/p.TBCap
	}

	// Per-link load (m_e) and the bottleneck: link busy time per
	// micro-batch = Σ tasks' durations on it.
	linkTime := make(map[topo.LinkID]float64)
	linkCount := make(map[topo.LinkID]int)
	for i := range g.Tasks {
		for _, l := range g.Links[i] {
			w := g.LinkWindows[l]
			if w < 1 {
				w = 1
			}
			linkTime[l] += dur[i] / float64(w)
			linkCount[l]++
		}
	}
	bottleneckTime := 0.0
	for l, bt := range linkTime {
		if bt > bottleneckTime {
			bottleneckTime = bt
			est.Bottleneck = l
			est.TasksOnBottleneck = linkCount[l]
		}
	}

	// Eq. 5 — task-level: one-time load plus n passes of the bottleneck
	// link's serialized work (residual bubbles omitted: lower bound).
	est.TTask = t.KernelLoad.Seconds() + n*bottleneckTime

	// Eq. 3 — algorithm-level: every micro-batch pays the full
	// dependency-and-link-serialized makespan (the bubbles B_j are the
	// gap between the makespan and the bottleneck link's busy time).
	perMB, err := makespanOneMB(g, dur)
	if err != nil {
		return nil, err
	}
	interp := 2 * t.InterpCost.Seconds() // baselines interpret both sides
	est.TAlgorithm = n * (perMB + interp*float64(maxTasksPerLinkPath(g)))

	// Eq. 4 — stage-level: stages pipeline across micro-batches, so the
	// steady state is bound by the slowest stage's bottleneck link, with
	// the Eq. 1 penalty for the z_k channels that overlap on it
	// (duplicated intra channels and adjacent pipelined stages).
	stageTime := 0.0
	nStages := g.Algo.NStages()
	for k := 0; k < nStages; k++ {
		lt := make(map[topo.LinkID]float64)
		for i := range g.Tasks {
			if g.Algo.StageOf(g.Tasks[i].Step) != k {
				continue
			}
			for _, l := range g.Links[i] {
				w := g.LinkWindows[l]
				if w < 1 {
					w = 1
				}
				lt[l] += (dur[i] + interp) / float64(w)
			}
		}
		worst := 0.0
		for _, bt := range lt {
			if bt > worst {
				worst = bt
			}
		}
		// Two channels (the duplicated intra stage or the neighbouring
		// pipelined stage) overlap on the stage's links at steady state:
		// per Eq. 4 each task's transfer is stretched by the sharing
		// factor z_k and the γ·L(z_k) contention term.
		z := 2.0
		over := z - 1
		if over > 1 {
			over = 1
		}
		penalty := 1 + t.Gamma*over*over
		if st := worst * z * penalty; st > stageTime {
			stageTime = st
		}
	}
	est.TStage = n * stageTime

	return est, nil
}

// makespanOneMB list-schedules a single micro-batch: tasks start when
// their dependencies finish and a slot in each of their links' windows
// frees up; the result is the per-iteration time of lazy execution.
func makespanOneMB(g *dag.Graph, dur []float64) (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]float64, len(g.Tasks))
	// Per link, a min-heap of the window slots' free times.
	slots := make(map[topo.LinkID]*floatHeap)
	makespan := 0.0
	for _, t := range order {
		start := 0.0
		for _, d := range g.Deps[t] {
			if finish[d] > start {
				start = finish[d]
			}
		}
		for _, l := range g.Links[t] {
			h := slots[l]
			if h == nil {
				w := g.LinkWindows[l]
				if w < 1 {
					w = 1
				}
				h = &floatHeap{}
				for i := 0; i < w; i++ {
					heap.Push(h, 0.0)
				}
				slots[l] = h
			}
			if free := (*h)[0]; free > start {
				start = free
			}
		}
		end := start + dur[t]
		finish[t] = end
		for _, l := range g.Links[t] {
			h := slots[l]
			heap.Pop(h)
			heap.Push(h, end)
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan, nil
}

// maxTasksPerLinkPath returns the largest per-link task count — the
// number of interpreter invocations serialized on the bottleneck.
func maxTasksPerLinkPath(g *dag.Graph) int {
	counts := make(map[topo.LinkID]int)
	m := 0
	for i := range g.Tasks {
		for _, l := range g.Links[i] {
			counts[l]++
			if counts[l] > m {
				m = counts[l]
			}
		}
	}
	return m
}

type floatHeap []float64

func (h floatHeap) Len() int           { return len(h) }
func (h floatHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// TuneChunkSize sweeps candidate chunk sizes and returns the one whose
// Eq. 5 task-level estimate is smallest for the given buffer — the
// trade the chunk-size ablation exposes: small chunks pay α per
// invocation, large ones starve the pipeline of micro-batches. The
// candidates span 256 KiB to 8 MiB around the paper's 1 MiB default.
func TuneChunkSize(g *dag.Graph, bufferBytes int64) (int64, error) {
	candidates := []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	best := candidates[0]
	bestT := 0.0
	for i, c := range candidates {
		est, err := EstimateStrategies(g, bufferBytes, c)
		if err != nil {
			return 0, err
		}
		// Require a minimum of 4 micro-batches so pipelining (and the
		// scheduler's cross-micro-batch masking) stays effective.
		if est.MicroBatches < 4 && i > 0 {
			continue
		}
		if i == 0 || est.TTask < bestT {
			best, bestT = c, est.TTask
		}
	}
	return best, nil
}
