package core

import (
	"context"
	"strings"
	"testing"

	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/expert"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/sim"
	"github.com/resccl/resccl/internal/topo"
)

func TestCompileDefaults(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(context.Background(), algo, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Kernel.Mode != kernel.ModeDirect {
		t.Error("default mode must be direct")
	}
	if c.Pipeline.Policy != sched.PolicyHPDS {
		t.Error("default policy must be HPDS")
	}
	if c.Phases.Analyze <= 0 || c.Phases.Schedule <= 0 || c.Phases.Lower <= 0 {
		t.Error("phase timings must be recorded")
	}
	if c.Phases.Parse != 0 {
		t.Error("Compile (non-DSL) has no parse phase")
	}
	if c.Phases.Total() <= 0 {
		t.Error("total phase time must be positive")
	}
}

func TestCompileRejectsIncorrectAlgorithm(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	// An "AllGather" that never delivers anything to rank 3.
	bad := &ir.Algorithm{
		Name: "broken", Op: ir.OpAllGather, NRanks: 4, NChunks: 4,
		Transfers: []ir.Transfer{
			{Src: 0, Dst: 1, Step: 0, Chunk: 0, Type: ir.CommRecv},
			{Src: 1, Dst: 2, Step: 0, Chunk: 1, Type: ir.CommRecv},
		},
	}
	if _, err := Compile(context.Background(), bad, tp, Options{}); err == nil {
		t.Fatal("incomplete collective must fail verification")
	}
	// SkipVerify bypasses the data-plane gate (used by scalability
	// studies) — the plan still compiles structurally.
	if _, err := Compile(context.Background(), bad, tp, Options{SkipVerify: true}); err != nil {
		t.Fatalf("SkipVerify compile failed: %v", err)
	}
}

func TestCompileDSL(t *testing.T) {
	tp := topo.New(1, 4, topo.A100())
	src := `
def ResCCLAlgo(nRanks=4, AlgoName="Ring", OpType="Allgather"):
    N = 4
    for r in range(0, N):
        peer = (r+1)%N
        for step in range(0, N-1):
            transfer(r, peer, step, (r-step)%N, recv)
`
	c, err := CompileDSL(context.Background(), src, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Phases.Parse <= 0 {
		t.Error("DSL compile must record parse time")
	}
	if c.Algo.Name != "Ring" {
		t.Errorf("algorithm name %q", c.Algo.Name)
	}
	if _, err := CompileDSL(context.Background(), "garbage(", tp, Options{}); err == nil {
		t.Error("bad source must fail")
	}
}

func TestAllocPolicies(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllGather(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Compile(context.Background(), algo, tp, Options{Alloc: AllocConnectionBased})
	if err != nil {
		t.Fatal(err)
	}
	state, err := Compile(context.Background(), algo, tp, Options{Alloc: AllocStateBased})
	if err != nil {
		t.Fatal(err)
	}
	if state.Kernel.NTBs() > conn.Kernel.NTBs() {
		t.Errorf("state-based (%d TBs) worse than connection-based (%d)",
			state.Kernel.NTBs(), conn.Kernel.NTBs())
	}
	if _, err := Compile(context.Background(), algo, tp, Options{Alloc: AllocPolicy(9)}); err == nil {
		t.Error("unknown alloc policy must fail")
	}
	if !strings.Contains(AllocStateBased.String(), "state") {
		t.Error("alloc policy string")
	}
}

func TestPolicyOption(t *testing.T) {
	tp := topo.New(2, 4, topo.A100())
	algo, err := expert.HMAllReduce(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []sched.Policy{sched.PolicyHPDS, sched.PolicyRR, sched.PolicySequential} {
		c, err := Compile(context.Background(), algo, tp, Options{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if c.Pipeline.Policy != pol {
			t.Errorf("policy %v not applied", pol)
		}
	}
}

// The Eq. 3–5 estimates must reproduce the paper's ordering at large
// micro-batch counts (task ≤ stage ≤ algorithm) and roughly anticipate
// the simulated backends.
func TestEstimateStrategiesOrdering(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	algo, err := expert.HMAllReduce(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(algo, tp)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateStrategies(g, 1<<30, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if est.MicroBatches < 32 {
		t.Fatalf("expected many micro-batches, got %d", est.MicroBatches)
	}
	// Eq. 6 guarantees task-level beats both alternatives at large n;
	// stage vs algorithm can go either way (fewer bubbles vs added
	// contention, §3).
	if !(est.TTask < est.TStage && est.TTask < est.TAlgorithm) {
		t.Errorf("Eq. 6 violated: task %g should undercut stage %g and algorithm %g",
			est.TTask, est.TStage, est.TAlgorithm)
	}
	if est.TasksOnBottleneck <= 0 {
		t.Error("no bottleneck identified")
	}
	// The task-level estimate is a lower bound on the simulated ResCCL
	// run, and should be within 2x of it.
	c, err := Compile(context.Background(), algo, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Topo: tp, Kernel: c.Kernel, BufferBytes: 1 << 30, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion < est.TTask*0.99 {
		t.Errorf("simulated ResCCL (%g) beat the Eq. 5 lower bound (%g)", res.Completion, est.TTask)
	}
	if res.Completion > est.TTask*2 {
		t.Errorf("simulated ResCCL (%g) more than 2x the Eq. 5 bound (%g) — model drift", res.Completion, est.TTask)
	}
	if !strings.Contains(est.String(), "task-level") {
		t.Error("estimate String() incomplete")
	}
}

func TestTuneChunkSize(t *testing.T) {
	tp := topo.New(2, 8, topo.A100())
	algo, err := expert.HMAllReduce(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(algo, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Large buffer: bigger chunks amortize α, so the tuner should pick
	// above the 1 MiB default (the chunk ablation's finding).
	big, err := TuneChunkSize(g, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if big < 1<<20 {
		t.Errorf("large-buffer tuned chunk %d should be ≥ 1MiB", big)
	}
	// Small buffer: the micro-batch floor forces smaller chunks.
	small, err := TuneChunkSize(g, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if small > big {
		t.Errorf("small-buffer chunk (%d) should not exceed large-buffer chunk (%d)", small, big)
	}
	// The tuned chunk must actually beat the default in simulation.
	comp, err := Compile(context.Background(), algo, tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	def, err := sim.Run(sim.Config{Topo: tp, Kernel: comp.Kernel, BufferBytes: 1 << 30, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := sim.Run(sim.Config{Topo: tp, Kernel: comp.Kernel, BufferBytes: 1 << 30, ChunkBytes: big})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Completion >= def.Completion {
		t.Errorf("tuned chunk (%d → %g) not faster than default (%g)", big, tuned.Completion, def.Completion)
	}
}
