// Package core orchestrates the ResCCL backend-optimization workflow of
// §4.1 (Fig. 5): parse (ResCCLang → algorithm), analyze (algorithm →
// dependency DAG), schedule (HPDS → task pipeline), allocate (state-based
// TB assignment) and lower (pipeline → lightweight kernel). It records
// per-phase wall time, which Fig. 10(a) reports as the offline workflow
// cost.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/resccl/resccl/internal/collective"
	"github.com/resccl/resccl/internal/dag"
	"github.com/resccl/resccl/internal/ir"
	"github.com/resccl/resccl/internal/kernel"
	"github.com/resccl/resccl/internal/lang"
	"github.com/resccl/resccl/internal/obs"
	"github.com/resccl/resccl/internal/sched"
	"github.com/resccl/resccl/internal/talloc"
	"github.com/resccl/resccl/internal/topo"
)

// AllocPolicy selects the TB allocation strategy.
type AllocPolicy int

// Allocation policies.
const (
	// AllocStateBased is ResCCL's flexible allocation (§4.4).
	AllocStateBased AllocPolicy = iota
	// AllocConnectionBased is the rigid per-connection baseline, kept
	// for ablations.
	AllocConnectionBased
)

func (p AllocPolicy) String() string {
	if p == AllocStateBased {
		return "state-based"
	}
	return "connection-based"
}

// Options tune the compilation pipeline. The zero value is the paper's
// default configuration: HPDS scheduling, state-based allocation, direct
// kernels, 1 MiB chunks.
type Options struct {
	Policy sched.Policy
	Alloc  AllocPolicy
	Mode   kernel.ExecMode
	// ChunkBytes is the chunk size assumed for timeline analysis
	// (default 1 MiB).
	ChunkBytes int64
	// WindowMB is the micro-batch count assumed for timeline analysis
	// (default 8).
	WindowMB int
	// Protocol is the transport protocol tier stamped on the generated
	// kernel. Compilation itself is protocol-independent; the simulator
	// applies the tier's cost parameters at run time. The zero value
	// (auto) behaves as Simple.
	Protocol ir.Protocol
	// SkipVerify disables the data-plane correctness check of the input
	// algorithm. Verification is cheap and on by default; disable only
	// for scalability measurements on very large synthetic plans.
	SkipVerify bool
}

func (o Options) withDefaults() Options {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	if o.WindowMB <= 0 {
		o.WindowMB = 8
	}
	return o
}

// Phases records the wall time of each offline workflow phase (Fig.
// 10(a)).
type Phases struct {
	Parse    time.Duration
	Analyze  time.Duration
	Schedule time.Duration
	Alloc    time.Duration
	Lower    time.Duration
}

// Total returns the end-to-end offline cost.
func (p Phases) Total() time.Duration {
	return p.Parse + p.Analyze + p.Schedule + p.Alloc + p.Lower
}

// Stages renders the phases as observability stages in pipeline order,
// omitting phases that did not run (a zero Parse means the algorithm was
// built programmatically rather than compiled from ResCCLang).
func (p Phases) Stages() []obs.Stage {
	stages := make([]obs.Stage, 0, 5)
	if p.Parse > 0 {
		stages = append(stages, obs.Stage{Name: "parse", Duration: p.Parse})
	}
	stages = append(stages,
		obs.Stage{Name: "analyze", Duration: p.Analyze},
		obs.Stage{Name: "schedule", Duration: p.Schedule},
		obs.Stage{Name: "alloc", Duration: p.Alloc},
		obs.Stage{Name: "lower", Duration: p.Lower},
	)
	return stages
}

// Compiled bundles every artifact of one compilation.
type Compiled struct {
	Algo       *ir.Algorithm
	Graph      *dag.Graph
	Pipeline   *sched.Pipeline
	Windows    *talloc.Windows
	Assignment *talloc.Assignment
	Kernel     *kernel.Kernel
	Phases     Phases
	Options    Options
}

// checkpoint is the phase-boundary cancellation probe: a cancelled or
// deadline-expired ctx stops the pipeline before the named phase with a
// typed error (errors.Is context.Canceled / context.DeadlineExceeded).
// A nil ctx never cancels.
func checkpoint(ctx context.Context, phase string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: compile cancelled before %s: %w", phase, err)
	}
	return nil
}

// Compile runs the full ResCCL pipeline on an already-built algorithm.
// Each phase boundary (verify → analyze → schedule → alloc → lower) is a
// cancellation checkpoint for ctx, so a dropped caller stops burning CPU
// at the next phase instead of completing the plan.
func Compile(ctx context.Context, algo *ir.Algorithm, t *topo.Topology, opts Options) (*Compiled, error) {
	opts = opts.withDefaults()
	if !opts.Protocol.Valid() {
		return nil, fmt.Errorf("core: undefined protocol tier %d", int(opts.Protocol))
	}
	c := &Compiled{Algo: algo, Options: opts}

	if err := checkpoint(ctx, "verification"); err != nil {
		return nil, err
	}
	if !opts.SkipVerify {
		if err := collective.Check(algo); err != nil {
			return nil, fmt.Errorf("core: algorithm %q fails its %v postcondition: %w", algo.Name, algo.Op, err)
		}
	}

	if err := checkpoint(ctx, "dependency analysis"); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := dag.Build(algo, t)
	if err != nil {
		return nil, fmt.Errorf("core: dependency analysis: %w", err)
	}
	c.Graph = g
	c.Phases.Analyze = time.Since(start)

	if err := checkpoint(ctx, "scheduling"); err != nil {
		return nil, err
	}
	start = time.Now()
	p, err := sched.Schedule(g, opts.Policy)
	if err != nil {
		return nil, fmt.Errorf("core: scheduling: %w", err)
	}
	c.Pipeline = p
	c.Phases.Schedule = time.Since(start)

	if err := checkpoint(ctx, "TB allocation"); err != nil {
		return nil, err
	}
	start = time.Now()
	c.Windows = talloc.EstimateWindows(p, int(opts.ChunkBytes), opts.WindowMB)
	switch opts.Alloc {
	case AllocStateBased:
		c.Assignment = talloc.StateBased(p, c.Windows)
	case AllocConnectionBased:
		c.Assignment = talloc.ConnectionBased(p, c.Windows)
	default:
		return nil, fmt.Errorf("core: unknown allocation policy %v", opts.Alloc)
	}
	c.Phases.Alloc = time.Since(start)

	if err := checkpoint(ctx, "kernel lowering"); err != nil {
		return nil, err
	}
	start = time.Now()
	k, err := kernel.Generate(p, c.Assignment)
	if err != nil {
		return nil, fmt.Errorf("core: lowering: %w", err)
	}
	k.Mode = opts.Mode
	k.Protocol = opts.Protocol
	c.Kernel = k
	c.Phases.Lower = time.Since(start)
	return c, nil
}

// CompileDSL parses ResCCLang source and compiles it, recording the
// parse phase as well. The parse itself is preceded by a ctx checkpoint.
func CompileDSL(ctx context.Context, src string, t *topo.Topology, opts Options) (*Compiled, error) {
	if err := checkpoint(ctx, "parse"); err != nil {
		return nil, err
	}
	start := time.Now()
	algo, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	parse := time.Since(start)
	c, err := Compile(ctx, algo, t, opts)
	if err != nil {
		return nil, err
	}
	c.Phases.Parse = parse
	return c, nil
}
